// Statistical validation: pin the implementation's moments to the paper's
// closed forms with tight Monte-Carlo comparisons (not just bounds).
#include <gtest/gtest.h>

#include <cmath>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"

namespace disco::core {
namespace {

/// Mean and variance of T(S): traffic needed to reach counter value S under
/// uniform increments theta.
struct Moments {
  double mean;
  double variance;
};

Moments simulate_T(double b, std::uint64_t S, std::uint64_t theta, int runs,
                   util::Rng& rng) {
  DiscoParams params(b);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    double traffic = 0.0;
    while (c < S) {
      c = params.update(c, theta, rng);
      traffic += static_cast<double>(theta);
    }
    sum += traffic;
    sum2 += traffic * traffic;
  }
  const double mean = sum / runs;
  return Moments{mean, sum2 / runs - mean * mean};
}

TEST(StatisticalValidation, ExpectedTrafficMatchesEq15) {
  // E[T(S)] = f(S) for theta = 1 (eq. 15): tight MC comparison.
  const double b = 1.02;
  util::GeometricScale scale(b);
  util::Rng rng(1);
  for (std::uint64_t S : {50ull, 150ull, 250ull}) {
    const int runs = 1500;
    const Moments m = simulate_T(b, S, 1, runs, rng);
    const double expected = scale.f(static_cast<double>(S));
    const double tolerance = 5.0 * std::sqrt(m.variance / runs) + 1e-9;
    EXPECT_NEAR(m.mean, expected, tolerance) << "S=" << S;
  }
}

TEST(StatisticalValidation, CoefficientOfVariationMatchesEq17) {
  // e[T(S)] for theta = 1 (eq. 17): MC within 10% of the closed form.
  const double b = 1.05;
  util::Rng rng(2);
  for (std::uint64_t S : {40ull, 120ull}) {
    const int runs = 3000;
    const Moments m = simulate_T(b, S, 1, runs, rng);
    const double cv_mc = std::sqrt(std::max(0.0, m.variance)) / m.mean;
    const double cv_formula = theory::coefficient_of_variation(b, S, 1);
    EXPECT_NEAR(cv_mc, cv_formula, cv_formula * 0.10) << "S=" << S;
  }
}

TEST(StatisticalValidation, ThetaFormulaMatchesEq20InItsValidRegion) {
  // e[T(S)] for theta > 1 (eq. 20), at S large enough that theta <= b^c in
  // the geometric-trial region (see core/theory.cpp note).
  const double b = 1.05;
  const std::uint64_t theta = 20;  // x = f^-1(20) ~ 15; b^c >= theta for c >= ~61
  const std::uint64_t S = 200;
  util::Rng rng(3);
  const int runs = 2000;
  const Moments m = simulate_T(b, S, theta, runs, rng);
  const double cv_mc = std::sqrt(std::max(0.0, m.variance)) / m.mean;
  const double cv_formula = theory::coefficient_of_variation(b, S, theta);
  EXPECT_NEAR(cv_mc, cv_formula, cv_formula * 0.10);
  const double mean_formula = theory::expected_traffic(b, S, theta);
  EXPECT_NEAR(m.mean, mean_formula, mean_formula * 0.01);
}

TEST(StatisticalValidation, EstimatorVarianceShrinksWithCounterBits) {
  // At a fixed flow, doubling the counter budget (smaller b) must cut the
  // estimator's standard deviation roughly by the bound ratio.
  util::Rng rng(4);
  const std::uint64_t truth = 1 << 22;
  auto estimator_sd = [&](int bits) {
    const auto params = DiscoParams::for_budget(std::uint64_t{1} << 24, bits);
    const int runs = 600;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t c = 0;
      std::uint64_t sent = 0;
      while (sent < truth) {
        c = params.update(c, 1024, rng);
        sent += 1024;
      }
      const double est = params.estimate(c);
      sum += est;
      sum2 += est * est;
    }
    const double mean = sum / runs;
    return std::sqrt(std::max(0.0, sum2 / runs - mean * mean));
  };
  const double sd8 = estimator_sd(8);
  const double sd10 = estimator_sd(10);
  const double bound_ratio =
      theory::cv_bound(util::choose_b(std::uint64_t{1} << 24, 10)) /
      theory::cv_bound(util::choose_b(std::uint64_t{1} << 24, 8));
  EXPECT_NEAR(sd10 / sd8, bound_ratio, 0.2);
}

TEST(StatisticalValidation, SkewnessOfEstimateIsMild) {
  // The normal approximation behind confidence_interval needs the estimate
  // distribution to be roughly symmetric at realistic flow sizes; check the
  // standardized third moment is small.
  DiscoParams params(1.01);
  util::Rng rng(5);
  const std::uint64_t truth = 500000;
  const int runs = 4000;
  std::vector<double> estimates;
  estimates.reserve(runs);
  double mean = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      c = params.update(c, 800, rng);
      sent += 800;
    }
    estimates.push_back(params.estimate(c));
    mean += estimates.back();
  }
  mean /= runs;
  double m2 = 0.0;
  double m3 = 0.0;
  for (double e : estimates) {
    const double d = e - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= runs;
  m3 /= runs;
  const double skewness = m3 / std::pow(m2, 1.5);
  EXPECT_LT(std::fabs(skewness), 0.5);
}

TEST(StatisticalValidation, FlowSizeCountingMatchesAnlsVarianceFormula) {
  // For l = 1, Var[T(S)] = (b^2S - 1)/(b^2 - 1) - (b^S - 1)/(b - 1)
  // (eq. 16).  MC variance within 15%.
  const double b = 1.1;
  const std::uint64_t S = 40;
  util::Rng rng(6);
  const int runs = 10000;
  const Moments m = simulate_T(b, S, 1, runs, rng);
  const double s = static_cast<double>(S);
  const double var_formula = (std::pow(b, 2.0 * s) - 1.0) / (b * b - 1.0) -
                             (std::pow(b, s) - 1.0) / (b - 1.0);
  EXPECT_NEAR(m.variance, var_formula, var_formula * 0.15);
}

}  // namespace
}  // namespace disco::core
