// Unit tests for bit-packed counter storage.
#include "util/bitpack.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace disco::util {
namespace {

TEST(BitPackedArray, RejectsBadWidth) {
  EXPECT_THROW(BitPackedArray(8, 0), std::invalid_argument);
  EXPECT_THROW(BitPackedArray(8, 65), std::invalid_argument);
}

TEST(BitPackedArray, InitiallyZero) {
  BitPackedArray a(100, 10);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.get(i), 0u);
}

TEST(BitPackedArray, MaxValueMatchesWidth) {
  EXPECT_EQ(BitPackedArray(1, 1).max_value(), 1u);
  EXPECT_EQ(BitPackedArray(1, 8).max_value(), 255u);
  EXPECT_EQ(BitPackedArray(1, 10).max_value(), 1023u);
  EXPECT_EQ(BitPackedArray(1, 64).max_value(), ~std::uint64_t{0});
}

TEST(BitPackedArray, StorageBitsIsExact) {
  BitPackedArray a(1000, 9);
  EXPECT_EQ(a.storage_bits(), 9000u);
}

TEST(BitPackedArray, SetGetRoundTripsAcrossWordBoundaries) {
  // Width 9 guarantees values straddling 64-bit word boundaries.
  BitPackedArray a(200, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.set(i, (i * 37) & a.max_value());
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.get(i), (i * 37) & a.max_value()) << "i=" << i;
  }
}

TEST(BitPackedArray, NeighboursDoNotInterfere) {
  BitPackedArray a(64, 13);
  a.set(10, a.max_value());
  a.set(11, 0);
  a.set(12, a.max_value());
  EXPECT_EQ(a.get(10), a.max_value());
  EXPECT_EQ(a.get(11), 0u);
  EXPECT_EQ(a.get(12), a.max_value());
  a.set(11, 0x1555);
  EXPECT_EQ(a.get(10), a.max_value());
  EXPECT_EQ(a.get(12), a.max_value());
}

TEST(BitPackedArray, TryAddDetectsOverflow) {
  BitPackedArray a(4, 8);
  EXPECT_TRUE(a.try_add(0, 200));
  EXPECT_TRUE(a.try_add(0, 55));
  EXPECT_EQ(a.get(0), 255u);
  EXPECT_FALSE(a.try_add(0, 1));
  EXPECT_EQ(a.get(0), 255u);  // saturated, not wrapped
}

TEST(BitPackedArray, TryAddLargeDeltaSaturates) {
  BitPackedArray a(4, 8);
  EXPECT_FALSE(a.try_add(1, 1000));
  EXPECT_EQ(a.get(1), 255u);
}

TEST(BitPackedArray, FillZeroResets) {
  BitPackedArray a(32, 7);
  for (std::size_t i = 0; i < a.size(); ++i) a.set(i, 100);
  a.fill_zero();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.get(i), 0u);
}

TEST(BitPackedArray, Width64Works) {
  BitPackedArray a(10, 64);
  a.set(3, 0x0123456789abcdefULL);
  a.set(4, ~std::uint64_t{0});
  EXPECT_EQ(a.get(3), 0x0123456789abcdefULL);
  EXPECT_EQ(a.get(4), ~std::uint64_t{0});
}

class BitPackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidthTest, RandomizedRoundTrip) {
  const int width = GetParam();
  BitPackedArray a(257, width);  // prime-ish size to mix offsets
  Rng rng(static_cast<std::uint64_t>(width) * 1000003);
  std::vector<std::uint64_t> shadow(a.size());
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t v = rng.next() & a.max_value();
      a.set(i, v);
      shadow[i] = v;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.get(i), shadow[i]) << "width=" << width << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 12, 13, 16, 21,
                                           31, 32, 33, 48, 63, 64));

}  // namespace
}  // namespace disco::util
