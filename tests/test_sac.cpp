// Unit tests for the SAC (Small Active Counters) baseline.
#include "counters/sac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::counters {
namespace {

TEST(SacArray, RejectsBadConfig) {
  EXPECT_THROW(SacArray(4, 3, 3), std::invalid_argument);   // no exponent bits
  EXPECT_THROW(SacArray(4, 10, 0), std::invalid_argument);  // no estimation bits
}

TEST(SacArray, PaperDefaultSplit) {
  SacArray sac(16, 10);
  EXPECT_EQ(sac.estimation_bits(), 3);
  EXPECT_EQ(sac.exponent_bits(), 7);
  EXPECT_EQ(sac.total_bits(), 10);
  EXPECT_EQ(sac.storage_bits(), 160u);
}

TEST(SacArray, SmallValuesExact) {
  // With mode = 0 and r = 1 increments of 1 are exact until A overflows.
  SacArray sac(1, 10);
  util::Rng rng(1);
  for (int i = 0; i < 7; ++i) sac.add(0, 1, rng);
  EXPECT_DOUBLE_EQ(sac.estimate(0), 7.0);
}

TEST(SacArray, EstimateUnbiasedOverRuns) {
  const std::uint64_t truth = 500000;
  util::Rng rng(3);
  const int runs = 300;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    SacArray sac(1, 10);
    std::uint64_t sent = 0;
    while (sent < truth) {
      const std::uint64_t l = 500;
      sac.add(0, l, rng);
      sent += l;
    }
    sum += sac.estimate(0);
  }
  const double mean = sum / runs;
  EXPECT_NEAR(mean, static_cast<double>(truth), truth * 0.05);
}

TEST(SacArray, CountersAreIndependent) {
  SacArray sac(4, 10);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) sac.add(2, 1000, rng);
  EXPECT_DOUBLE_EQ(sac.estimate(0), 0.0);
  EXPECT_DOUBLE_EQ(sac.estimate(1), 0.0);
  EXPECT_GT(sac.estimate(2), 0.0);
}

TEST(SacArray, ModeGrowsWithValue) {
  SacArray sac(1, 10);
  util::Rng rng(7);
  EXPECT_EQ(sac.mode_part(0), 0u);
  for (int i = 0; i < 1000; ++i) sac.add(0, 1500, rng);
  EXPECT_GT(sac.mode_part(0), 0u);
  // A stays within its field by construction.
  EXPECT_LE(sac.estimation_part(0), 7u);
}

TEST(SacArray, RelativeErrorDrivenByEstimationBits) {
  // More estimation bits => finer mantissa => lower error; this is the knob
  // the paper's Figs. 5-7 sweep (total bits with k fixed).
  util::Rng rng(9);
  const std::uint64_t truth = 2000000;
  auto mean_error = [&](int total_bits, int k) {
    double err = 0.0;
    const int runs = 150;
    for (int r = 0; r < runs; ++r) {
      SacArray sac(SacArray::Config{1, total_bits, k, 1});
      std::uint64_t sent = 0;
      while (sent < truth) {
        sac.add(0, 1000, rng);
        sent += 1000;
      }
      err += util::relative_error(sac.estimate(0), static_cast<double>(truth));
    }
    return err / runs;
  };
  const double err_small = mean_error(8, 3);
  const double err_large = mean_error(12, 5);
  EXPECT_LT(err_large, err_small);
}

TEST(SacArray, GlobalRenormalizationTriggersAndPreservesMagnitude) {
  // Tiny exponent field (s = 2, mode max 3): growth forces r to increase and
  // the whole array to renormalise.  Renormalisation of an individual small
  // counter is probabilistic (it may round to 0 or up), so preservation is
  // asserted on the *mean* across many untouched counters.
  const std::size_t n = 257;
  SacArray sac(SacArray::Config{n, 5, 3, 1});
  util::Rng rng(11);
  // Preload counters 1..n-1 with the same mid-size value.
  for (std::size_t c = 1; c < n; ++c) {
    for (int i = 0; i < 20; ++i) sac.add(c, 10, rng);
  }
  double before = 0.0;
  for (std::size_t c = 1; c < n; ++c) before += sac.estimate(c);
  // Hammer counter 0 until the global r must grow.
  for (int i = 0; i < 3000; ++i) sac.add(0, 1000, rng);
  EXPECT_GT(sac.global_renormalizations(), 0u);
  EXPECT_GT(sac.r(), 1);
  double after = 0.0;
  for (std::size_t c = 1; c < n; ++c) after += sac.estimate(c);
  // Unbiased renormalisation: population total preserved in expectation.
  // Each global renorm coarsens small counters to {0, 2^(r*mode)} lotteries,
  // so after ~6 renorms the per-counter values are ~Bernoulli(0.2) * 1024
  // and the population sd is ~13% of the total -- exactly the accuracy
  // damage the paper holds against SAC.  Assert mean preservation at 3 sd.
  EXPECT_NEAR(after, before, before * 0.4);
  EXPECT_GT(after, 0.0);
  // And counter 0 must now represent ~3e6 at the right magnitude.
  EXPECT_NEAR(sac.estimate(0), 3.0e6, 3.0e6 * 0.5);
}

TEST(SacArray, ResetRestoresInitialState) {
  SacArray sac(2, 10);
  util::Rng rng(13);
  for (int i = 0; i < 100; ++i) sac.add(0, 999, rng);
  sac.reset();
  EXPECT_DOUBLE_EQ(sac.estimate(0), 0.0);
  EXPECT_EQ(sac.r(), 1);
  EXPECT_EQ(sac.global_renormalizations(), 0u);
}

class SacBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(SacBitsTest, ErrorWithinPlausibleEnvelope) {
  // Across budgets, SAC's error is roughly 2^r / 2^k-scaled mantissa noise;
  // assert it is bounded and positive (it cannot be exact for large values).
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits));
  const std::uint64_t truth = 4000000;
  double err = 0.0;
  const int runs = 100;
  for (int r = 0; r < runs; ++r) {
    SacArray sac(1, bits);
    std::uint64_t sent = 0;
    while (sent < truth) {
      sac.add(0, 800, rng);
      sent += 800;
    }
    err += util::relative_error(sac.estimate(0), static_cast<double>(truth));
  }
  err /= runs;
  EXPECT_GT(err, 0.001) << "bits=" << bits;
  EXPECT_LT(err, 0.5) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Budgets, SacBitsTest, ::testing::Values(8, 9, 10, 11, 12));

}  // namespace
}  // namespace disco::counters
