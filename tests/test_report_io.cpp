// Tests for epoch-report serialisation and collector-side combination, plus
// the sharded monitor's rotate/evict passthrough.
#include <gtest/gtest.h>

#include <sstream>

#include "flowtable/report_io.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "util/fault.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0b000000u + i, 0x08080808u,
                   static_cast<std::uint16_t>(3000 + i), 53, 17};
}

FlowMonitor::EpochReport sample_report() {
  FlowMonitor::Config c;
  c.max_flows = 64;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 24;
  c.max_flow_packets = 1 << 14;
  c.seed = 9;
  FlowMonitor monitor(c);
  for (int i = 0; i < 2000; ++i) {
    (void)monitor.ingest(tuple(static_cast<std::uint32_t>(i % 12)),
                         64 + static_cast<std::uint32_t>(i % 1400));
  }
  return monitor.rotate();
}

TEST(ReportIo, BinaryRoundTrip) {
  const auto report = sample_report();
  std::stringstream buf;
  write_report(buf, report);
  const auto parsed = read_report(buf);
  EXPECT_EQ(parsed.epoch, report.epoch);
  EXPECT_DOUBLE_EQ(parsed.totals.bytes, report.totals.bytes);
  EXPECT_DOUBLE_EQ(parsed.totals.packets, report.totals.packets);
  EXPECT_EQ(parsed.totals.flows, report.totals.flows);
  ASSERT_EQ(parsed.flows.size(), report.flows.size());
  for (std::size_t i = 0; i < report.flows.size(); ++i) {
    EXPECT_EQ(parsed.flows[i].flow, report.flows[i].flow) << i;
    EXPECT_DOUBLE_EQ(parsed.flows[i].bytes, report.flows[i].bytes) << i;
    EXPECT_DOUBLE_EQ(parsed.flows[i].packets, report.flows[i].packets) << i;
  }
}

TEST(ReportIo, EmptyReportRoundTrips) {
  FlowMonitor::EpochReport empty;
  empty.epoch = 7;
  std::stringstream buf;
  write_report(buf, empty);
  const auto parsed = read_report(buf);
  EXPECT_EQ(parsed.epoch, 7u);
  EXPECT_TRUE(parsed.flows.empty());
}

TEST(ReportIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage;
  garbage << "nope";
  EXPECT_THROW((void)read_report(garbage), std::runtime_error);

  const auto report = sample_report();
  std::stringstream buf;
  write_report(buf, report);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 9);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)read_report(cut), std::runtime_error);
}

TEST(ReportIo, CsvHasHeaderAndRows) {
  const auto report = sample_report();
  std::stringstream buf;
  write_report_csv(buf, report);
  std::string line;
  ASSERT_TRUE(std::getline(buf, line));
  EXPECT_EQ(line, "src_ip,dst_ip,src_port,dst_port,protocol,bytes,packets");
  std::size_t rows = 0;
  while (std::getline(buf, line)) ++rows;
  EXPECT_EQ(rows, report.flows.size());
}

TEST(ReportIo, CombineSumsTotals) {
  const auto a = sample_report();
  const auto b = sample_report();
  const auto merged = combine_reports(a, b);
  EXPECT_EQ(merged.flows.size(), a.flows.size() + b.flows.size());
  EXPECT_DOUBLE_EQ(merged.totals.bytes, a.totals.bytes + b.totals.bytes);
  EXPECT_EQ(merged.totals.flows, a.totals.flows + b.totals.flows);
}

// --- v2 pressure block -------------------------------------------------------

TEST(ReportIo, PressureStatsRoundTripAndCombine) {
  auto a = sample_report();
  a.pressure = PressureStats{11, 7, 3, 2};
  std::stringstream buf;
  write_report(buf, a);
  const auto parsed = read_report(buf);
  EXPECT_EQ(parsed.pressure.flows_rejected, 11u);
  EXPECT_EQ(parsed.pressure.flows_evicted, 7u);
  EXPECT_EQ(parsed.pressure.counters_saturated, 3u);
  EXPECT_EQ(parsed.pressure.rescale_events, 2u);

  auto b = sample_report();
  b.pressure = PressureStats{1, 2, 3, 4};
  const auto merged = combine_reports(a, b);
  EXPECT_EQ(merged.pressure.flows_rejected, 12u);
  EXPECT_EQ(merged.pressure.rescale_events, 6u);
}

TEST(ReportIo, ReadsLegacyV1WithZeroPressure) {
  // Hand-built v1 stream: magic, version 1, epoch, totals, zero flows --
  // exactly what a pre-pressure writer emitted.
  std::stringstream buf;
  auto put = [&buf](const auto& v) {
    buf.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(kReportMagic);
  put(std::uint32_t{1});
  put(std::uint64_t{5});  // epoch
  put(double{123.0});     // totals.bytes
  put(double{4.0});       // totals.packets
  put(std::uint64_t{2});  // totals.flows
  put(std::uint64_t{0});  // flow records
  const auto parsed = read_report(buf);
  EXPECT_EQ(parsed.epoch, 5u);
  EXPECT_EQ(parsed.totals.flows, 2u);
  EXPECT_EQ(parsed.pressure.flows_rejected, 0u);
  EXPECT_EQ(parsed.pressure.rescale_events, 0u);
}

// --- short-write detection ---------------------------------------------------

/// A sink that buffers every byte happily and only admits failure at sync
/// time -- the way an ofstream over a full disk behaves.  Pre-fix,
/// write_report never flushed, so this failure escaped into a silently
/// truncated report.
class FailOnSyncBuf : public std::stringbuf {
 protected:
  int sync() override { return -1; }
};

TEST(ReportIo, DetectsSinkThatFailsAtFlushTime) {
  FailOnSyncBuf sink;
  std::ostream out(&sink);
  EXPECT_THROW(write_report(out, sample_report()), std::runtime_error);
  EXPECT_THROW(write_report_csv(out, sample_report()), std::runtime_error);
}

/// A sink that stops accepting bytes after a quota -- a short write.
class ShortWriteBuf : public std::streambuf {
 public:
  explicit ShortWriteBuf(std::size_t quota) : quota_(quota) {}

 protected:
  std::streamsize xsputn(const char*, std::streamsize n) override {
    if (written_ + static_cast<std::size_t>(n) > quota_) return 0;
    written_ += static_cast<std::size_t>(n);
    return n;
  }
  int overflow(int) override { return traits_type::eof(); }

 private:
  std::size_t quota_;
  std::size_t written_ = 0;
};

TEST(ReportIo, DetectsShortWriteMidReport) {
  ShortWriteBuf sink(40);  // dies inside the header
  std::ostream out(&sink);
  EXPECT_THROW(write_report(out, sample_report()), std::runtime_error);
}

#if DISCO_FAULTS
TEST(ReportIo, InjectedShortWriteThrowsAndRecovers) {
  util::fault::Plan plan;
  plan.start_after = 5;  // header goes out, a flow record write fails
  plan.fail_count = 1;
  util::fault::arm(util::fault::Point::kShortWrite, plan);
  std::stringstream buf;
  EXPECT_THROW(write_report(buf, sample_report()), std::runtime_error);
  util::fault::disarm_all();
  std::stringstream clean;
  write_report(clean, sample_report());
  EXPECT_EQ(read_report(clean).flows.size(), sample_report().flows.size());
}
#endif  // DISCO_FAULTS

// --- sharded monitor lifecycle passthrough ----------------------------------

ShardedFlowMonitor::Config sharded_config() {
  ShardedFlowMonitor::Config c;
  c.base.max_flows = 256;
  c.base.counter_bits = 12;
  c.base.max_flow_bytes = 1 << 24;
  c.base.max_flow_packets = 1 << 14;
  c.base.seed = 11;
  c.shards = 4;
  return c;
}

TEST(ShardedLifecycle, RotateMergesShardsAndClears) {
  ShardedFlowMonitor monitor(sharded_config());
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (int p = 0; p < 50; ++p) (void)monitor.ingest(tuple(i), 500);
  }
  const auto report = monitor.rotate();
  EXPECT_EQ(report.flows.size(), 20u);
  EXPECT_NEAR(report.totals.bytes, 20.0 * 50 * 500, 20.0 * 50 * 500 * 0.2);
  EXPECT_EQ(monitor.totals().flows, 0u);
  // The merged report serialises like any single-monitor report.
  std::stringstream buf;
  write_report(buf, report);
  EXPECT_EQ(read_report(buf).flows.size(), 20u);
}

TEST(ShardedLifecycle, EvictIdleSpansShards) {
  ShardedFlowMonitor monitor(sharded_config());
  for (std::uint32_t i = 0; i < 16; ++i) {
    (void)monitor.ingest(tuple(i), 400, i < 8 ? 0 : 5'000'000'000ull);
  }
  const auto evicted = monitor.evict_idle(6'000'000'000ull, 2'000'000'000ull);
  EXPECT_EQ(evicted.size(), 8u);
  EXPECT_EQ(monitor.totals().flows, 8u);
}

}  // namespace
}  // namespace disco::flowtable
