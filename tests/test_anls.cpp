// Unit tests for ANLS and its two flow-volume extensions (E1/E2).
#include "counters/anls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/disco.hpp"
#include "util/math.hpp"

namespace disco::counters {
namespace {

TEST(AnlsCounter, FirstPacketAlwaysCounted) {
  // p(0) = 1: the first packet of a flow is never missed.
  AnlsCounter anls(1.01);
  util::Rng rng(1);
  anls.add_packet(rng);
  EXPECT_EQ(anls.value(), 1u);
}

TEST(AnlsCounter, UnbiasedFlowSizeEstimate) {
  const double b = 1.02;
  util::Rng rng(2);
  const int truth = 5000;
  const int runs = 500;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    AnlsCounter anls(b);
    for (int i = 0; i < truth; ++i) anls.add_packet(rng);
    sum += anls.estimate();
  }
  EXPECT_NEAR(sum / runs, truth, truth * 0.1 / std::sqrt(runs) * 5.0);
}

TEST(AnlsCounter, EquivalentToDiscoWithUnitLengths) {
  // Section IV-C: DISCO with l = 1 degenerates to ANLS.  Same seed, same
  // trajectory.
  const double b = 1.05;
  AnlsCounter anls(b);
  core::DiscoParams disco(b);
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  std::uint64_t c_disco = 0;
  for (int i = 0; i < 3000; ++i) {
    anls.add_packet(rng_a);
    c_disco = disco.update(c_disco, 1, rng_b);
    ASSERT_EQ(anls.value(), c_disco) << "i=" << i;
  }
}

TEST(AnlsICounter, RejectsBadRate) {
  EXPECT_THROW(AnlsICounter(0.0), std::invalid_argument);
  EXPECT_THROW(AnlsICounter(1.5), std::invalid_argument);
}

TEST(AnlsICounter, RateForBudgetFitsCounter) {
  const double p = AnlsICounter::rate_for_budget(1 << 20, 10);
  // E[counter] = p * max_flow must be <= 2^10 - 1.
  EXPECT_LE(p * static_cast<double>(1 << 20), 1023.0 + 1e-9);
  EXPECT_DOUBLE_EQ(AnlsICounter::rate_for_budget(100, 10), 1.0);
}

TEST(AnlsICounter, UnbiasedButNoisy) {
  // E1 is unbiased in expectation; its sin is variance, not bias.
  util::Rng rng(3);
  const int runs = 3000;
  double sum = 0.0;
  const std::vector<std::uint64_t> lens = {40, 1500, 40, 1500, 40, 1500};
  std::uint64_t truth = 0;
  for (auto l : lens) truth += l;
  for (int r = 0; r < runs; ++r) {
    AnlsICounter c(0.5);
    for (auto l : lens) c.add(l, rng);
    sum += c.estimate();
  }
  EXPECT_NEAR(sum / runs, static_cast<double>(truth),
              static_cast<double>(truth) * 0.05);
}

TEST(AnlsICounter, PaperE1Example) {
  // Paper Section II-B: with p = 1/2, sampling packets {81, 1420, 142, 691}
  // can produce estimates as far apart as 446 and 1544 -- reproduce the two
  // cited outcomes deterministically.
  AnlsICounter first_and_third(0.5);
  // Manually emulate: sampled packets 81 and 142 -> counter 223.
  // (Drive the bernoulli by constructing counters directly via add with a
  // forced RNG is fragile; instead verify the estimator arithmetic.)
  util::Rng rng(4);
  (void)first_and_third;
  AnlsICounter c(0.5);
  // estimate = value / p: 223 / 0.5 = 446, 772 / 0.5 = 1544.
  EXPECT_DOUBLE_EQ(223.0 / 0.5, 446.0);
  EXPECT_DOUBLE_EQ(772.0 / 0.5, 1544.0);
}

TEST(AnlsICounter, HighLengthVarianceInflatesError) {
  // The Table III mechanism: same total bytes, constant vs bimodal packet
  // sizes; E1's relative error must be far worse under variance.
  util::Rng rng(5);
  const double p = 0.01;
  const int runs = 400;
  auto mean_err = [&](const std::vector<std::uint64_t>& lens) {
    std::uint64_t truth = 0;
    for (auto l : lens) truth += l;
    double err = 0.0;
    for (int r = 0; r < runs; ++r) {
      AnlsICounter c(p);
      for (auto l : lens) c.add(l, rng);
      err += util::relative_error(c.estimate(), static_cast<double>(truth));
    }
    return err / runs;
  };
  std::vector<std::uint64_t> constant(200, 770);
  std::vector<std::uint64_t> bimodal;
  for (int i = 0; i < 100; ++i) {
    bimodal.push_back(40);
    bimodal.push_back(1500);
  }
  const double err_constant = mean_err(constant);
  const double err_bimodal = mean_err(bimodal);
  EXPECT_GT(err_bimodal, err_constant);
}

TEST(AnlsIICounter, UnbiasedVolumeEstimate) {
  const double b = 1.02;
  util::Rng rng(6);
  const std::vector<std::uint64_t> lens = {81, 1420, 142, 691};
  const double truth = 2334.0;
  const int runs = 2000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    AnlsIICounter c(b);
    for (auto l : lens) c.add(l, rng);
    sum += c.estimate();
  }
  EXPECT_NEAR(sum / runs, truth, truth * 0.05);
}

TEST(AnlsIICounter, AccuracyComparableToDisco) {
  // E2 is statistically sound -- its flaw is cost, not error.  Theorem 2
  // says per-byte trials (theta = 1) carry *more* variation than DISCO's
  // whole-packet updates (theta = packet length) at moderate counter values,
  // so DISCO must be at least as accurate, and E2 must stay within the
  // Corollary 1 envelope (sqrt((b-1)/(b+1)) ~ 0.07 for b = 1.01).
  const double b = 1.01;
  util::Rng rng(7);
  core::DiscoParams disco(b);
  const std::uint64_t truth = 60000;
  const int runs = 300;
  double err_e2 = 0.0;
  double err_disco = 0.0;
  for (int r = 0; r < runs; ++r) {
    AnlsIICounter e2(b);
    std::uint64_t cd = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      const std::uint64_t l = 600;
      e2.add(l, rng);
      cd = disco.update(cd, l, rng);
      sent += l;
    }
    err_e2 += util::relative_error(e2.estimate(), static_cast<double>(truth));
    err_disco += util::relative_error(disco.estimate(cd), static_cast<double>(truth));
  }
  err_e2 /= runs;
  err_disco /= runs;
  EXPECT_LE(err_disco, err_e2 * 1.1);          // DISCO at least as accurate
  EXPECT_LT(err_e2, 0.0705 * 1.3);             // within the Corollary 1 bound
  EXPECT_GT(err_e2, err_disco * 0.9);          // and not mysteriously better
}

TEST(AnlsIICounter, CounterMovesAtMostLPerPacket) {
  AnlsIICounter c(1.001);
  util::Rng rng(8);
  c.add(50, rng);
  EXPECT_LE(c.value(), 50u);
}

}  // namespace
}  // namespace disco::counters
