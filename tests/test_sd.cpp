// Unit tests for the hybrid SRAM&DRAM (SD) counter architecture.
#include "counters/sd.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace disco::counters {
namespace {

SdArray::Config base_config(std::size_t size) {
  SdArray::Config c;
  c.size = size;
  c.sram_bits = 6;
  c.dram_service_interval = 4;
  return c;
}

TEST(SdArray, RejectsBadConfig) {
  auto c = base_config(4);
  c.sram_bits = 0;
  EXPECT_THROW(SdArray{c}, std::invalid_argument);
  c = base_config(4);
  c.dram_service_interval = 0;
  EXPECT_THROW(SdArray{c}, std::invalid_argument);
}

TEST(SdArray, CountsExactly) {
  // SD is a full-size architecture: values are exact regardless of traffic.
  SdArray sd(base_config(8));
  util::Rng rng(1);
  std::vector<std::uint64_t> truth(8, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t f = rng.uniform_u64(0, 7);
    const std::uint64_t l = rng.uniform_u64(40, 1500);
    sd.add(f, l);
    truth[f] += l;
  }
  for (std::size_t f = 0; f < 8; ++f) EXPECT_EQ(sd.value(f), truth[f]);
}

TEST(SdArray, SingleGiantIncrementStillExact) {
  SdArray sd(base_config(2));
  sd.add(0, 1'000'000);
  EXPECT_EQ(sd.value(0), 1'000'000u);
  EXPECT_GT(sd.emergency_stalls(), 0u);  // blew through the 6-bit SRAM part
}

TEST(SdArray, BackgroundServiceGeneratesBusTraffic) {
  SdArray sd(base_config(16));
  for (int i = 0; i < 1000; ++i) sd.add(i % 16, 10);
  EXPECT_GT(sd.scheduled_flushes(), 0u);
  EXPECT_EQ(sd.bus_bytes(), (sd.scheduled_flushes() + sd.emergency_stalls()) * 8);
}

TEST(SdArray, LcfKeepsUpWherePossible) {
  // Unit increments with a fast service interval: LCF must avoid stalls.
  auto config = base_config(8);
  config.dram_service_interval = 2;  // one flush per two updates
  SdArray sd(config);
  for (int i = 0; i < 50000; ++i) sd.add(i % 8, 1);
  EXPECT_EQ(sd.emergency_stalls(), 0u);
}

TEST(SdArray, SlowServiceCausesStallsUnderByteCounting) {
  // Byte counting with big packets overwhelms a 6-bit SRAM part no matter
  // the CMA -- the paper's argument for why SD needs wide SRAM or loses.
  auto config = base_config(4);
  config.dram_service_interval = 64;
  SdArray sd(config);
  for (int i = 0; i < 1000; ++i) sd.add(i % 4, 1500);
  EXPECT_GT(sd.emergency_stalls(), 0u);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(sd.value(f), 1500u * 250u);  // still exact
  }
}

TEST(SdArray, RoundRobinAlsoExactButMoreStalls) {
  auto lcf_config = base_config(32);
  lcf_config.dram_service_interval = 8;
  auto rr_config = lcf_config;
  rr_config.cma = SdArray::Cma::kRoundRobin;

  SdArray lcf(lcf_config);
  SdArray rr(rr_config);
  util::Rng rng(7);
  std::vector<std::uint64_t> truth(32, 0);
  // Skewed load: a few hot counters -- exactly where LCF beats round-robin.
  for (int i = 0; i < 30000; ++i) {
    const std::size_t f = rng.bernoulli(0.8) ? rng.uniform_u64(0, 3)
                                             : rng.uniform_u64(4, 31);
    lcf.add(f, 7);
    rr.add(f, 7);
    truth[f] += 7;
  }
  for (std::size_t f = 0; f < 32; ++f) {
    EXPECT_EQ(lcf.value(f), truth[f]);
    EXPECT_EQ(rr.value(f), truth[f]);
  }
  EXPECT_LE(lcf.emergency_stalls(), rr.emergency_stalls());
}

TEST(SdArray, ResetClearsEverything) {
  SdArray sd(base_config(4));
  sd.add(0, 99999);
  sd.reset();
  EXPECT_EQ(sd.value(0), 0u);
  EXPECT_EQ(sd.scheduled_flushes(), 0u);
  EXPECT_EQ(sd.emergency_stalls(), 0u);
  sd.add(0, 5);
  EXPECT_EQ(sd.value(0), 5u);
}

TEST(SdArray, SramStorageAccounting) {
  SdArray sd(base_config(100));
  EXPECT_EQ(sd.sram_storage_bits(), 600u);
}

}  // namespace
}  // namespace disco::counters
