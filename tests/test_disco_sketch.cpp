// Tests for the Count-Min-with-DISCO-cells sketch.
#include "core/disco_sketch.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"
#include "util/math.hpp"

namespace disco::core {
namespace {

DiscoSketch::Config small_config() {
  DiscoSketch::Config c;
  c.width = 2048;
  c.depth = 3;
  c.cell_bits = 12;
  c.max_cell_traffic = std::uint64_t{1} << 28;
  return c;
}

TEST(DiscoSketch, RejectsBadGeometry) {
  DiscoSketch::Config c = small_config();
  c.width = 1;
  EXPECT_THROW(DiscoSketch{c}, std::invalid_argument);
  c = small_config();
  c.depth = 0;
  EXPECT_THROW(DiscoSketch{c}, std::invalid_argument);
}

TEST(DiscoSketch, EmptySketchEstimatesZero) {
  DiscoSketch sketch(small_config());
  EXPECT_DOUBLE_EQ(sketch.estimate(42), 0.0);
  EXPECT_DOUBLE_EQ(sketch.estimate(0xdeadbeef), 0.0);
}

TEST(DiscoSketch, ZeroLengthIsNoOp) {
  DiscoSketch sketch(small_config());
  sketch.add(1, 0);
  EXPECT_DOUBLE_EQ(sketch.estimate(1), 0.0);
}

TEST(DiscoSketch, SingleFlowTracksTraffic) {
  DiscoSketch sketch(small_config());
  std::uint64_t truth = 0;
  for (int i = 0; i < 2000; ++i) {
    sketch.add(7, 500);
    truth += 500;
  }
  EXPECT_NEAR(sketch.estimate(7), static_cast<double>(truth),
              static_cast<double>(truth) * 0.2);
}

TEST(DiscoSketch, StorageIsGeometryTimesBits) {
  const auto config = small_config();
  DiscoSketch sketch(config);
  EXPECT_EQ(sketch.storage_bits(),
            config.width * 3u * static_cast<std::size_t>(config.cell_bits));
}

TEST(DiscoSketch, SparsePopulationNearExact) {
  // Few flows in a wide sketch: collisions are rare, so errors are DISCO's
  // own estimation noise.
  DiscoSketch sketch(small_config());
  util::Rng rng(3);
  const auto flows = trace::scenario1().make_flows(50, rng);
  for (const auto& f : flows) {
    for (auto l : f.lengths) sketch.add(f.id, l);
  }
  double err = 0.0;
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.bytes() == 0) continue;
    err += util::relative_error(sketch.estimate(f.id),
                                static_cast<double>(f.bytes()));
    ++n;
  }
  EXPECT_LT(err / static_cast<double>(n), 0.1);
}

TEST(DiscoSketch, CollisionBiasIsOneSidedOnAverage) {
  // Load the sketch heavily; the mean signed error must be positive
  // (CMS over-estimates under collisions; DISCO noise is symmetric).
  DiscoSketch::Config config = small_config();
  config.width = 128;  // force collisions
  DiscoSketch sketch(config);
  util::Rng rng(5);
  std::vector<std::uint64_t> truth(1000, 0);
  for (std::uint64_t f = 0; f < truth.size(); ++f) {
    const std::uint64_t bytes = rng.uniform_u64(1000, 100000);
    truth[f] = bytes;
    std::uint64_t sent = 0;
    while (sent < bytes) {
      const std::uint64_t l = std::min<std::uint64_t>(1000, bytes - sent);
      sketch.add(f, l);
      sent += l;
    }
  }
  double signed_err = 0.0;
  for (std::uint64_t f = 0; f < truth.size(); ++f) {
    signed_err += sketch.estimate(f) - static_cast<double>(truth[f]);
  }
  EXPECT_GT(signed_err / static_cast<double>(truth.size()), 0.0);
}

TEST(DiscoSketch, DeeperSketchTightensEstimates) {
  // More rows => tighter min under the same collision pressure (total cell
  // budget deliberately NOT normalised: this isolates the depth mechanism).
  util::Rng rng(7);
  const auto flows = trace::scenario1().make_flows(600, rng);
  auto mean_err = [&](int depth) {
    DiscoSketch::Config config = small_config();
    config.width = 512;
    config.depth = depth;
    DiscoSketch sketch(config);
    for (const auto& f : flows) {
      for (auto l : f.lengths) sketch.add(f.id, l);
    }
    double err = 0.0;
    std::size_t n = 0;
    for (const auto& f : flows) {
      if (f.bytes() == 0) continue;
      err += util::relative_error(sketch.estimate(f.id),
                                  static_cast<double>(f.bytes()));
      ++n;
    }
    return err / static_cast<double>(n);
  };
  EXPECT_LT(mean_err(4), mean_err(1));
}

TEST(DiscoSketch, OverflowAccounting) {
  DiscoSketch::Config config = small_config();
  config.width = 2;
  config.depth = 1;
  config.cell_bits = 6;
  config.max_cell_traffic = 1000;  // tiny b; cells saturate fast
  DiscoSketch sketch(config);
  for (int i = 0; i < 2000; ++i) sketch.add(1, 1500);
  EXPECT_GT(sketch.overflow_count(), 0u);
}

TEST(DiscoSketch, DeterministicUnderSeeds) {
  DiscoSketch a(small_config());
  DiscoSketch b(small_config());
  for (int i = 0; i < 1000; ++i) {
    a.add(i % 37, 100 + i % 1400);
    b.add(i % 37, 100 + i % 1400);
  }
  for (std::uint64_t f = 0; f < 37; ++f) {
    ASSERT_DOUBLE_EQ(a.estimate(f), b.estimate(f));
  }
}

}  // namespace
}  // namespace disco::core
