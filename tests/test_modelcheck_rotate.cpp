// Model-check drivers for the epoch-rotation protocols: rotate-under-ingest
// (the worker swaps tables while the producer keeps feeding; the control
// side reads the published snapshot) and subscribe-during-rotate (the
// streaming-module registry mutates under a mutex while the rotator walks
// it).  These mirror src/pipeline/pipeline.cpp's rotate command and
// src/modules' subscriber registry, shrunk to the memory protocol.
//
// Compiled with DISCO_MODELCHECK=1; see test_modelcheck_ring.cpp for the
// harness conventions.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>

#include "pipeline/packet_ring.hpp"
#include "util/atomic.hpp"
#include "verify/model.hpp"

namespace verify = disco::verify;
namespace util = disco::util;
using disco::pipeline::SpscRing;

namespace {
constexpr std::uint64_t kRotate = ~std::uint64_t{0};
}

TEST(ModelCheckRotate, RotateUnderIngestPublishesAnExactSnapshot) {
  // Producer feeds 1, ROTATE, 2 and then waits for the snapshot the
  // worker publishes at the rotate boundary.  The worker accumulates into
  // its (plain) active table, and at the rotate copies it out and releases
  // `snap_ready`.  In every schedule the snapshot must be exactly the
  // pre-rotate feed and the producer's read of it must be race-free -- the
  // rotate command's entire contract.
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  verify::Result r = verify::explore(opts, [] {
    SpscRing<std::uint64_t> ring(2);
    verify::Shared<std::uint64_t> table;
    verify::Shared<std::uint64_t> snapshot;
    util::atomic<std::uint64_t> snap_ready{0};
    verify::label(&table, "table");
    verify::label(&snapshot, "snapshot");
    verify::label(&snap_ready, "snap_ready");
    std::uint64_t observed = 0;
    verify::run_threads({
        [&] {  // producer + control plane
          const std::uint64_t feed[] = {1, kRotate, 2};
          for (std::uint64_t v : feed) {
            while (!ring.try_push(v)) verify::spin_yield();
          }
          while (snap_ready.load(std::memory_order_acquire) == 0) {
            verify::spin_yield();
          }
          observed = snapshot;
        },
        [&] {  // worker
          std::uint64_t buf[2];
          std::size_t popped = 0;
          while (popped < 3) {
            const std::size_t got = ring.pop_batch(buf, 2);
            if (got == 0) {
              verify::spin_yield();
              continue;
            }
            popped += got;
            for (std::size_t i = 0; i < got; ++i) {
              if (buf[i] == kRotate) {
                snapshot = static_cast<std::uint64_t>(table);
                table = 0;
                snap_ready.store(1, std::memory_order_release);
              } else {
                table = static_cast<std::uint64_t>(table) + buf[i];
              }
            }
          }
        },
    });
    verify::mc_check(observed == 1, "snapshot must be exactly the pre-rotate feed");
    verify::mc_check(static_cast<std::uint64_t>(table) == 2,
                     "post-rotate table must hold exactly the tail feed");
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}

TEST(ModelCheckRotate, SubscribeDuringRotateIsCleanAndDelivers) {
  // The rotator walks the subscriber list under the registry mutex for two
  // epochs; a subscriber registers concurrently.  Depending on the
  // schedule it catches epoch 1 or only epoch 2 -- both are legal -- but
  // the walk must never race the registration and never deadlock.
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  verify::Result r = verify::explore(opts, [] {
    verify::Mutex registry;
    verify::Shared<int> n_subs;
    verify::Shared<std::uint64_t> delivered;
    util::atomic<std::uint64_t> rotator_done{0};
    verify::label(&registry, "registry_mutex");
    verify::label(&n_subs, "n_subs");
    verify::label(&delivered, "delivered");
    std::uint64_t first_seen = 0;
    verify::run_threads({
        [&] {  // rotator
          for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
            verify::MutexLock lock(registry);
            if (static_cast<int>(n_subs) > 0) delivered = epoch;
          }
          rotator_done.store(1, std::memory_order_release);
        },
        [&] {  // subscriber
          {
            verify::MutexLock lock(registry);
            n_subs = 1;
          }
          // Poll until a delivery lands or the rotator retires -- bounded
          // either way, so DFS terminates.
          for (;;) {
            {
              verify::MutexLock lock(registry);
              first_seen = delivered;
            }
            if (first_seen != 0 ||
                rotator_done.load(std::memory_order_acquire) != 0) {
              break;
            }
            verify::spin_yield();
          }
        },
    });
    // Which epoch (if any) the subscriber catches depends on the schedule;
    // the invariants are (a) no race / deadlock anywhere above, and (b) a
    // delivery, when it happens, is a real epoch number.
    verify::mc_check(first_seen <= 2, "delivered epoch must be 1 or 2");
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}
