// Seeded regression for the elephant-detection workflow demonstrated by
// examples/heavy_hitters.cpp: flows carrying more than a share of total
// traffic are detected from DISCO's compressed counters, scored against
// exact per-flow accounting, and the documented confidence bounds hold.
//
// The example prints a table; this test pins the numbers behind it -- if
// counter provisioning, the estimator, or the interval math regresses,
// detection quality drops and this fails long before a human reruns the
// example by eye.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/disco.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace disco {
namespace {

struct Detection {
  std::set<std::uint32_t> flagged;
  std::set<std::uint32_t> truth;
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 0.0;
};

/// Mirrors the example: 3000 flows from the calibrated trace model (seed
/// 99), elephants = flows above `threshold_pct` percent of total bytes,
/// detection by thresholding DISCO estimates at `bits`-wide counters.
Detection run_detection(const std::vector<trace::FlowRecord>& flows,
                        core::DiscoArray& counters, double threshold_pct) {
  std::uint64_t total_bytes = 0;
  for (const auto& f : flows) total_bytes += f.bytes();
  const auto threshold = static_cast<double>(total_bytes) * threshold_pct / 100.0;

  Detection out;
  for (const auto& f : flows) {
    if (static_cast<double>(f.bytes()) >= threshold) out.truth.insert(f.id);
    if (counters.estimate(f.id) >= threshold) out.flagged.insert(f.id);
  }
  std::size_t hits = 0;
  for (auto id : out.flagged) hits += out.truth.count(id);
  if (!out.flagged.empty()) {
    out.precision =
        static_cast<double>(hits) / static_cast<double>(out.flagged.size());
  }
  if (!out.truth.empty()) {
    out.recall =
        static_cast<double>(hits) / static_cast<double>(out.truth.size());
  }
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

class HeavyHittersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(99);  // the example's seed, so this pins the same run
    flows_ = trace::real_trace_model().make_flows(3000, rng);
    for (const auto& f : flows_) {
      max_flow_ = std::max(max_flow_, f.bytes());
    }
    rng_after_gen_ = rng;  // counter updates continue the same stream
  }

  core::DiscoArray count_all(int bits) {
    core::DiscoArray counters(flows_.size(), bits, 2 * max_flow_);
    for (const auto& f : flows_) {
      for (auto l : f.lengths) counters.add(f.id, l, rng_after_gen_);
    }
    return counters;
  }

  std::vector<trace::FlowRecord> flows_;
  std::uint64_t max_flow_ = 1;
  util::Rng rng_after_gen_{0};
};

TEST_F(HeavyHittersTest, TwelveBitCountersDetectNearPerfectly) {
  auto counters = count_all(12);
  const auto det = run_detection(flows_, counters, 0.1);
  ASSERT_FALSE(det.truth.empty()) << "degenerate workload: no elephants";
  // The example's documented claim: 12-bit counters are near-perfect at the
  // 0.1% threshold.  b is small at 12 bits, so per-flow CV is a few percent
  // and only flows sitting almost exactly on the threshold can flip.
  EXPECT_GE(det.precision, 0.95);
  EXPECT_GE(det.recall, 0.95);
  EXPECT_GE(det.f1, 0.95);
}

TEST_F(HeavyHittersTest, DetectionQualityClimbsWithCounterBits) {
  double previous_f1 = -1.0;
  for (int bits : {8, 10, 12}) {
    auto counters = count_all(bits);
    const auto det = run_detection(flows_, counters, 0.1);
    // Monotone in expectation and pinned by seed; even the coarsest
    // provisioning must stay usable (the paper's CMON comparison point).
    EXPECT_GE(det.f1, 0.75) << bits << "-bit counters";
    EXPECT_GE(det.f1 + 1e-9, previous_f1) << bits << "-bit counters";
    previous_f1 = det.f1;
  }
}

TEST_F(HeavyHittersTest, TopKMatchesExactGroundTruthWithinConfidenceBounds) {
  auto counters = count_all(12);

  // Exact and estimated top-10 by bytes.
  std::vector<std::uint32_t> ids(flows_.size());
  for (const auto& f : flows_) ids[f.id] = f.id;
  auto by_exact = ids;
  std::sort(by_exact.begin(), by_exact.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return flows_[a].bytes() > flows_[b].bytes();
            });
  auto by_estimate = ids;
  std::sort(by_estimate.begin(), by_estimate.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return counters.estimate(a) > counters.estimate(b);
            });

  // Pareto-tailed volumes separate the head far beyond the estimator CV:
  // the estimated top-10 must agree with ground truth in at least 9 flows.
  const std::set<std::uint32_t> exact_top(by_exact.begin(),
                                          by_exact.begin() + 10);
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    overlap += exact_top.count(by_estimate[i]);
  }
  EXPECT_GE(overlap, 9u);

  // Documented confidence bounds (core::DiscoParams::interval_for_estimate,
  // the same accessor the modules layer uses): the exact bytes of every
  // top-10 flow must fall inside its flow's 95% interval for at least 9 of
  // 10 -- cv_bound is conservative, so coverage runs above nominal.
  std::size_t covered = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto id = by_estimate[i];
    const auto ci =
        counters.params().interval_for_estimate(counters.estimate(id), 0.95);
    const auto exact = static_cast<double>(flows_[id].bytes());
    EXPECT_LT(ci.low, ci.high);
    if (ci.low <= exact && exact <= ci.high) ++covered;
  }
  EXPECT_GE(covered, 9u);
}

}  // namespace
}  // namespace disco
