// Tests for the Adaptive NetFlow / BNF baseline (paper reference [6]).
#include "counters/adaptive_netflow.hpp"

#include <gtest/gtest.h>

#include "util/math.hpp"

namespace disco::counters {
namespace {

TEST(AdaptiveNetFlow, RejectsBadConfig) {
  AdaptiveNetFlow::Config c;
  c.max_entries = 0;
  EXPECT_THROW(AdaptiveNetFlow{c}, std::invalid_argument);
  c = {};
  c.decrease_factor = 1.0;
  EXPECT_THROW(AdaptiveNetFlow{c}, std::invalid_argument);
}

TEST(AdaptiveNetFlow, ExactWhileMemoryLasts) {
  AdaptiveNetFlow::Config config;
  config.max_entries = 64;
  AdaptiveNetFlow nf(config);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) nf.add_packet(7, rng);
  EXPECT_DOUBLE_EQ(nf.estimate(7), 100.0);
  EXPECT_DOUBLE_EQ(nf.rate(), 1.0);
  EXPECT_EQ(nf.renormalizations(), 0u);
}

TEST(AdaptiveNetFlow, UntrackedFlowEstimatesZero) {
  AdaptiveNetFlow nf(AdaptiveNetFlow::Config{});
  EXPECT_DOUBLE_EQ(nf.estimate(42), 0.0);
}

TEST(AdaptiveNetFlow, RateAdaptsUnderMemoryPressure) {
  AdaptiveNetFlow::Config config;
  config.max_entries = 32;
  AdaptiveNetFlow nf(config);
  util::Rng rng(2);
  // 500 distinct flows through 32 entries: the rate must fall.
  for (std::uint64_t f = 0; f < 500; ++f) {
    for (int i = 0; i < 5; ++i) nf.add_packet(f, rng);
  }
  EXPECT_LT(nf.rate(), 1.0);
  EXPECT_GT(nf.renormalizations(), 0u);
  EXPECT_LE(nf.entries(), 32u);
  EXPECT_GT(nf.renormalization_work(), 0u);
}

TEST(AdaptiveNetFlow, LargeFlowEstimateSurvivesRenormalization) {
  AdaptiveNetFlow::Config config;
  config.max_entries = 16;
  util::Rng rng(3);
  const double truth = 20000.0;
  double sum = 0.0;
  const int runs = 150;
  for (int r = 0; r < runs; ++r) {
    AdaptiveNetFlow nf(config);
    // One elephant interleaved with mice churn that forces renorms.
    for (int i = 0; i < 20000; ++i) {
      nf.add_packet(0, rng);
      if (i % 10 == 0) nf.add_packet(1000 + static_cast<std::uint64_t>(i), rng);
    }
    sum += nf.estimate(0);
  }
  // Renormalisation is unbiased, so the elephant's mean estimate holds.
  EXPECT_NEAR(sum / runs, truth, truth * 0.1);
}

TEST(AdaptiveNetFlow, SubsampleIsUnbiasedAtBothCodePaths) {
  util::Rng rng(4);
  // Small-count exact path and large-count Gaussian path must both be
  // mean-preserving under factor 0.5.
  for (std::uint64_t count : {40ull, 10000ull}) {
    double sum = 0.0;
    const int runs = 4000;
    AdaptiveNetFlow::Config config;
    config.max_entries = 2;
    for (int r = 0; r < runs; ++r) {
      AdaptiveNetFlow nf(config);
      for (std::uint64_t i = 0; i < count; ++i) nf.add_packet(1, rng);
      // Force one renormalisation by inserting two new flows.
      nf.add_packet(2, rng);
      nf.add_packet(3, rng);
      nf.add_packet(4, rng);
      sum += nf.estimate(1);
    }
    EXPECT_NEAR(sum / runs, static_cast<double>(count),
                static_cast<double>(count) * 0.05)
        << "count=" << count;
  }
}

}  // namespace
}  // namespace disco::counters
