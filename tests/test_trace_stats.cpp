// Unit tests for ground-truth trace statistics.
#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace disco::trace {
namespace {

FlowRecord make_flow(std::uint32_t id, std::vector<std::uint32_t> lengths) {
  FlowRecord f;
  f.id = id;
  f.lengths = std::move(lengths);
  return f;
}

TEST(FlowRecord, BytesAndPackets) {
  const auto f = make_flow(0, {81, 1420, 142, 691});
  EXPECT_EQ(f.packets(), 4u);
  EXPECT_EQ(f.bytes(), 2334u);
}

TEST(FlowRecord, VarianceOfConstantLengthsIsZero) {
  const auto f = make_flow(0, {100, 100, 100});
  EXPECT_DOUBLE_EQ(f.length_variance(), 0.0);
}

TEST(FlowRecord, VarianceKnownValue) {
  // lengths {2, 4, 4, 4, 5, 5, 7, 9}: sample variance 32/7.
  const auto f = make_flow(0, {2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(f.length_variance(), 32.0 / 7.0, 1e-9);
}

TEST(FlowRecord, SinglePacketVarianceIsZero) {
  EXPECT_DOUBLE_EQ(make_flow(0, {1500}).length_variance(), 0.0);
}

TEST(FlowTruths, MirrorsFlows) {
  const std::vector<FlowRecord> flows = {make_flow(0, {10, 20}),
                                         make_flow(1, {1500})};
  const auto truths = flow_truths(flows);
  ASSERT_EQ(truths.size(), 2u);
  EXPECT_EQ(truths[0].packets, 2u);
  EXPECT_EQ(truths[0].bytes, 30u);
  EXPECT_EQ(truths[1].packets, 1u);
  EXPECT_EQ(truths[1].bytes, 1500u);
}

TEST(Summarize, EmptyIsAllZero) {
  const TraceSummary s = summarize({});
  EXPECT_EQ(s.flow_count, 0u);
  EXPECT_EQ(s.total_bytes, 0u);
}

TEST(Summarize, AggregatesCorrectly) {
  const std::vector<FlowRecord> flows = {make_flow(0, {100, 100}),
                                         make_flow(1, {40, 1500}),
                                         make_flow(2, {64})};
  const TraceSummary s = summarize(flows);
  EXPECT_EQ(s.flow_count, 3u);
  EXPECT_EQ(s.total_packets, 5u);
  EXPECT_EQ(s.total_bytes, 1804u);
  EXPECT_EQ(s.max_flow_bytes, 1540u);
  EXPECT_EQ(s.max_flow_packets, 2u);
  EXPECT_NEAR(s.mean_packets_per_flow, 5.0 / 3.0, 1e-12);
  // Only flow 1 has variance > 10.
  EXPECT_NEAR(s.share_length_variance_gt10, 1.0 / 3.0, 1e-12);
}

TEST(TruthsFromPackets, MatchesFlowView) {
  util::Rng rng(42);
  auto flows = scenario1().make_flows(40, rng);
  const auto direct = flow_truths(flows);

  PacketStream stream(flows, 1, 8, 7);
  const auto packets = stream.drain();
  const auto rebuilt = truths_from_packets(packets, 40);

  ASSERT_EQ(rebuilt.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(rebuilt[i].packets, direct[i].packets) << "i=" << i;
    EXPECT_EQ(rebuilt[i].bytes, direct[i].bytes) << "i=" << i;
    EXPECT_NEAR(rebuilt[i].length_variance, direct[i].length_variance,
                1e-6 * (direct[i].length_variance + 1.0))
        << "i=" << i;
  }
}

TEST(TruthsFromPackets, ThrowsOnOutOfRangeFlowId) {
  std::vector<PacketRecord> packets = {{5, 100, 0}};
  EXPECT_THROW((void)truths_from_packets(packets, 2), std::out_of_range);
}

}  // namespace
}  // namespace disco::trace
