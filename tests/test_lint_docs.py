#!/usr/bin/env python3
"""Self-test for tools/lint_docs.py.

Builds throwaway fixture repos in a tempdir -- one that must lint clean and
one with a seeded violation per rule -- and runs the linter over each.  The
final test runs the linter over THIS repo, which is the acceptance gate:
committed docs must have zero dead links, stale paths, or stale CLI flags.
"""

import os
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
LINTER = os.path.join(REPO_ROOT, "tools", "lint_docs.py")


def run_linter(root):
    proc = subprocess.run(
        [sys.executable, LINTER, root],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def make_good_tree(root):
    write(root, "tools/disco_analyze.cpp",
          '// usage: --bits N --modules a,b\nint main() {}\n')
    write(root, "src/core/disco.hpp", "#pragma once\n")
    write(root, "docs/guide.md",
          "See [the readme](../README.md) and `src/core/disco.hpp`.\n"
          "Run `disco_analyze trace.dtrc --bits 4 --modules all`.\n"
          "Template paths like src/<area>/file.cpp and docs/*.md are fine.\n"
          "Suppressed: [old](gone.md) "
          "<!-- docs-lint: allow(dead-link) kept for history -->\n"
          "\n"
          "## Flag reference\n"
          "<!-- docs-lint: flags(disco_analyze) -->\n"
          "| `--bits N` | counter bits |\n"
          "| `--modules LIST` | module set |\n"
          "<!-- docs-lint: end-flags -->\n"
          "After end-flags, unattributed flags pass: use --verbose freely.\n"
          "\n"
          "## Next section\n"
          "A heading also closes the context, so --whatever is unchecked.\n")
    write(root, "README.md",
          "Details in [the guide](docs/guide.md).\n"
          "External flags pass: cmake --build build && ctest "
          "--output-on-failure (mentions disco_analyze).\n")


def make_bad_tree(root):
    write(root, "tools/disco_analyze.cpp", '// usage: --bits N\nint main() {}\n')
    write(root, "README.md",
          "Broken: [missing doc](docs/nope.md).\n"
          "Stale ref: see src/core/vanished.hpp for details.\n"
          "Machine path: data lives in /root/related/some_repo/file.c.\n"
          "Dropped flag: disco_analyze trace.dtrc --frobnicate.\n"
          "\n"
          "<!-- docs-lint: flags(disco_analyze) -->\n"
          "| `--bits N` | still real |\n"
          "| `--defrobnicate` | dropped from the tool |\n"
          "\n"
          "<!-- docs-lint: flags(disco_vanished) -->\n")


class FixtureTrees(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def test_good_tree_is_clean(self):
        make_good_tree(self.tmp.name)
        code, out, err = run_linter(self.tmp.name)
        self.assertEqual(code, 0, f"expected clean run\nstdout:{out}\n"
                                  f"stderr:{err}")
        self.assertEqual(out.strip(), "")

    def test_bad_tree_fails(self):
        make_bad_tree(self.tmp.name)
        code, out, err = run_linter(self.tmp.name)
        self.assertEqual(code, 1, f"stdout:{out}\nstderr:{err}")

    def assert_finding(self, out, rule, fragment):
        for line in out.splitlines():
            if f"[{rule}]" in line and fragment in line:
                return
        self.fail(f"no [{rule}] finding mentioning {fragment!r} in:\n{out}")

    def test_each_rule_fires(self):
        make_bad_tree(self.tmp.name)
        _, out, _ = run_linter(self.tmp.name)
        self.assert_finding(out, "dead-link", "docs/nope.md")
        self.assert_finding(out, "stale-path", "src/core/vanished.hpp")
        self.assert_finding(out, "stale-path", "/root/related/")
        self.assert_finding(out, "stale-cli-flag", "--frobnicate")
        self.assert_finding(out, "stale-cli-flag", "--defrobnicate")
        self.assert_finding(out, "stale-cli-flag", "disco_vanished")

    def test_finding_count_is_exact(self):
        # Exactly the six seeded violations -- no overfiring on the rest of
        # the fixture text (in particular `--bits` inside the annotated flag
        # block must pass, since the tool still parses it).
        make_bad_tree(self.tmp.name)
        _, out, _ = run_linter(self.tmp.name)
        self.assertEqual(len(out.strip().splitlines()), 6, out)

    def test_suppression_is_honoured(self):
        make_good_tree(self.tmp.name)
        # The good tree carries a suppressed dead link; prove the violation
        # is really there by checking the fixture text (guards against the
        # fixture rotting into a trivially-clean file).
        with open(os.path.join(self.tmp.name, "docs", "guide.md"),
                  encoding="utf-8") as f:
            text = f.read()
        self.assertIn("docs-lint: allow(dead-link)", text)
        self.assertIn("(gone.md)", text)


class RealDocs(unittest.TestCase):
    def test_repo_docs_are_clean(self):
        code, out, err = run_linter(REPO_ROOT)
        self.assertEqual(code, 0, f"repo docs have lint findings:\n{out}\n"
                                  f"{err}")


if __name__ == "__main__":
    unittest.main()
