// Unit tests for streaming stats and sample sets.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace disco::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // unbiased (n-1)
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, CoefficientOfVariation) {
  StreamingStats s;
  for (double x : {10.0, 10.0, 10.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.coefficient_of_variation(), 0.0);
  StreamingStats t;
  t.add(0.0);
  t.add(20.0);
  // mean 10, sample stddev sqrt(200); cv = sqrt(200)/10.
  EXPECT_NEAR(t.coefficient_of_variation(), std::sqrt(200.0) / 10.0, 1e-12);
}

TEST(StreamingStats, AgreesWithBatchOnRandomData) {
  Rng rng(5);
  StreamingStats s;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double(-5.0, 17.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(SampleSet, QuantileEdgeCases) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSet, QuantilesOfUniformGrid) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(SampleSet, CdfMatchesDefinition) {
  SampleSet s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf(10.0), 1.0);
}

TEST(SampleSet, CdfCurveIsMonotone) {
  SampleSet s;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) s.add(rng.next_double());
  const auto curve = s.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSet, AddAfterQuantileInvalidatesCache) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);  // must see the new sample
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

}  // namespace
}  // namespace disco::util
