// Unit tests for binary/CSV trace serialisation.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/synthetic.hpp"

namespace disco::trace {
namespace {

std::vector<PacketRecord> sample_packets() {
  util::Rng rng(1);
  auto flows = scenario1().make_flows(10, rng);
  return PacketStream(std::move(flows), 1, 4, 2).drain();
}

TEST(TraceIo, RoundTripsThroughStream) {
  const auto packets = sample_packets();
  std::stringstream buf;
  write_trace(buf, packets, 10);
  const TraceData data = read_trace(buf);
  EXPECT_EQ(data.flow_count, 10u);
  ASSERT_EQ(data.packets.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    ASSERT_EQ(data.packets[i], packets[i]) << "i=" << i;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_trace(buf, {}, 0);
  const TraceData data = read_trace(buf);
  EXPECT_EQ(data.flow_count, 0u);
  EXPECT_TRUE(data.packets.empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE-not-a-trace-file";
  EXPECT_THROW((void)read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedHeader) {
  std::stringstream buf;
  const std::uint32_t magic = kTraceMagic;
  buf.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  EXPECT_THROW((void)read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedRecords) {
  const auto packets = sample_packets();
  std::stringstream buf;
  write_trace(buf, packets, 10);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 7);  // chop mid-record
  std::stringstream cut(bytes);
  EXPECT_THROW((void)read_trace(cut), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buf;
  const std::uint32_t magic = kTraceMagic;
  const std::uint32_t version = kTraceVersion + 1;
  buf.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  buf.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint32_t flows = 0;
  const std::uint64_t count = 0;
  buf.write(reinterpret_cast<const char*>(&flows), sizeof(flows));
  buf.write(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_THROW((void)read_trace(buf), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto packets = sample_packets();
  const std::string path = ::testing::TempDir() + "/disco_trace_test.dtrc";
  write_trace_file(path, packets, 10);
  const TraceData data = read_trace_file(path);
  EXPECT_EQ(data.packets.size(), packets.size());
  EXPECT_EQ(data.packets, packets);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/definitely/missing.dtrc"),
               std::runtime_error);
}

TEST(TraceIo, CsvHasHeaderAndAllRows) {
  const auto packets = sample_packets();
  std::stringstream buf;
  write_trace_csv(buf, packets);
  std::string line;
  ASSERT_TRUE(std::getline(buf, line));
  EXPECT_EQ(line, "flow_id,length,timestamp_ns");
  std::size_t rows = 0;
  while (std::getline(buf, line)) ++rows;
  EXPECT_EQ(rows, packets.size());
}

}  // namespace
}  // namespace disco::trace
