// Tests for the uniform method-adapter layer.
#include "stats/methods.hpp"

#include <gtest/gtest.h>

#include "util/math.hpp"

namespace disco::stats {
namespace {

TEST(MakeMethod, KnownNamesResolve) {
  for (const char* name :
       {"DISCO", "DISCO-fixed", "SAC", "ANLS-I", "ANLS-II", "exact", "SD"}) {
    const MethodPtr m = make_method(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->name(), name);
  }
}

TEST(MakeMethod, UnknownNameThrows) {
  EXPECT_THROW((void)make_method("NETFLOW-9000"), std::invalid_argument);
}

class MethodContractTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MethodContractTest, PrepareAddEstimateLifecycle) {
  const MethodPtr method = make_method(GetParam());
  method->prepare(16, 10, 1 << 20);
  util::Rng rng(1);

  // Feed flow 3 a known byte volume.
  const std::uint64_t truth = 100000;
  std::uint64_t sent = 0;
  while (sent < truth) {
    method->add(3, 500, rng);
    sent += 500;
  }
  // Untouched flows estimate zero.
  EXPECT_DOUBLE_EQ(method->estimate(0), 0.0);
  EXPECT_EQ(method->counter_value(0), 0u);
  // The fed flow estimates within a single-run envelope.  ANLS-I's envelope
  // is enormous by design (that is its documented failure: with ~0.2
  // expected samples it frequently estimates 0) -- the contract here is the
  // lifecycle, not accuracy, which Table III's bench quantifies.
  const double slack = std::string(GetParam()) == "ANLS-I" ? 10.0 : 0.5;
  EXPECT_NEAR(method->estimate(3), static_cast<double>(truth), truth * slack)
      << GetParam();
  EXPECT_GT(method->storage_bits(), 0u);
}

TEST_P(MethodContractTest, ReprepareResetsState) {
  const MethodPtr method = make_method(GetParam());
  method->prepare(4, 10, 1 << 20);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) method->add(0, 1000, rng);
  method->prepare(4, 10, 1 << 20);
  EXPECT_DOUBLE_EQ(method->estimate(0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodContractTest,
                         ::testing::Values("DISCO", "DISCO-fixed", "SAC",
                                           "ANLS-I", "ANLS-II", "exact", "SD"));

TEST(MethodStorage, BitBudgetsHonoured) {
  // Every SRAM-only method must allocate exactly flows x bits of counter
  // storage (plus, for the fixed-point path, the shared table).
  for (const char* name : {"DISCO", "SAC", "ANLS-I", "ANLS-II"}) {
    const MethodPtr m = make_method(name);
    m->prepare(100, 9, 1 << 20);
    EXPECT_EQ(m->storage_bits(), 900u) << name;
  }
  const MethodPtr fixed = make_method("DISCO-fixed");
  fixed->prepare(100, 9, 1 << 20);
  EXPECT_GT(fixed->storage_bits(), 900u);       // includes the 96 Kb table
  const MethodPtr sd = make_method("SD");
  sd->prepare(100, 9, 1 << 20);
  EXPECT_EQ(sd->storage_bits(), 900u);          // SRAM side only
}

TEST(MethodSemantics, ExactIsExact) {
  const MethodPtr m = make_method("exact");
  m->prepare(2, 10, 1000);
  util::Rng rng(3);
  m->add(0, 123, rng);
  m->add(0, 456, rng);
  EXPECT_DOUBLE_EQ(m->estimate(0), 579.0);
  EXPECT_EQ(m->counter_value(0), 579u);
}

TEST(MethodSemantics, SdIsExactToo) {
  const MethodPtr m = make_method("SD");
  m->prepare(2, 6, 1000000);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) m->add(1, 999, rng);
  EXPECT_DOUBLE_EQ(m->estimate(1), 99900.0);
}

TEST(MethodSemantics, DiscoCounterValueCompressed) {
  const MethodPtr m = make_method("DISCO");
  m->prepare(1, 10, 1 << 22);
  util::Rng rng(5);
  std::uint64_t sent = 0;
  while (sent < (1 << 22)) {
    m->add(0, 1500, rng);
    sent += 1500;
  }
  EXPECT_LE(m->counter_value(0), 1023u);  // honours the 10-bit budget
}

}  // namespace
}  // namespace disco::stats
