// Unit tests for the numeric core: GeometricScale and choose_b.
#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace disco::util {
namespace {

TEST(GeometricScale, RejectsInvalidBase) {
  EXPECT_THROW(GeometricScale(1.0), std::invalid_argument);
  EXPECT_THROW(GeometricScale(0.5), std::invalid_argument);
  EXPECT_THROW(GeometricScale(std::nan("")), std::invalid_argument);
}

TEST(GeometricScale, PaperBoundaryValues) {
  // Eq. 1 requires f(0) = 0 and f(1) = 1 for any b.
  for (double b : {1.0005, 1.002, 1.01, 1.1, 1.5, 2.0}) {
    GeometricScale s(b);
    EXPECT_NEAR(s.f(0.0), 0.0, 1e-12) << "b=" << b;
    EXPECT_NEAR(s.f(1.0), 1.0, 1e-9) << "b=" << b;
  }
}

TEST(GeometricScale, MatchesClosedFormAtModerateBase) {
  GeometricScale s(1.1);
  // Direct evaluation of (b^c - 1)/(b - 1) is stable at b = 1.1.
  for (double c : {0.5, 1.0, 5.0, 17.0, 42.0, 100.0}) {
    const double direct = (std::pow(1.1, c) - 1.0) / 0.1;
    EXPECT_NEAR(s.f(c), direct, direct * 1e-12) << "c=" << c;
  }
}

TEST(GeometricScale, StableNearOne) {
  // The naive form loses precision for b close to 1; expm1/log1p must not.
  GeometricScale s(1.0000001);
  EXPECT_NEAR(s.f(1.0), 1.0, 1e-9);
  EXPECT_NEAR(s.f(2.0), 2.0 + 1e-7, 1e-6);  // f(2) = 1 + b
}

TEST(GeometricScale, InverseRoundTrips) {
  for (double b : {1.001, 1.01, 1.3}) {
    GeometricScale s(b);
    for (double c : {0.0, 1.0, 3.7, 20.0, 500.0}) {
      EXPECT_NEAR(s.f_inv(s.f(c)), c, 1e-7 * (c + 1.0)) << "b=" << b << " c=" << c;
    }
  }
}

TEST(GeometricScale, FIsIncreasingAndConvex) {
  GeometricScale s(1.05);
  double prev = s.f(0.0);
  double prev_gap = 0.0;
  for (int c = 1; c <= 200; ++c) {
    const double cur = s.f(c);
    const double gap = cur - prev;
    EXPECT_GT(cur, prev);
    EXPECT_GT(gap, prev_gap);  // convexity: increments strictly grow
    prev = cur;
    prev_gap = gap;
  }
}

TEST(GeometricScale, StepEqualsIncrement) {
  GeometricScale s(1.02);
  for (int c = 0; c < 100; c += 7) {
    const double inc = s.f(c + 1.0) - s.f(static_cast<double>(c));
    EXPECT_NEAR(s.step(static_cast<double>(c)), inc, inc * 1e-9);
  }
}

TEST(ChooseB, CoversRequestedFlow) {
  for (int bits : {8, 9, 10, 12, 16}) {
    for (std::uint64_t max_flow : {std::uint64_t{100000}, std::uint64_t{40} << 30}) {
      const double b = choose_b(max_flow, bits);
      ASSERT_GT(b, 1.0);
      GeometricScale s(b);
      const double c_max = static_cast<double>((std::uint64_t{1} << bits) - 1);
      EXPECT_GE(s.f(c_max), static_cast<double>(max_flow) * (1.0 - 1e-9))
          << "bits=" << bits << " max_flow=" << max_flow;
    }
  }
}

TEST(ChooseB, IsMinimalWithinTolerance) {
  // A slightly smaller base must NOT cover the flow: b is the provisioning
  // optimum, not merely sufficient.
  const std::uint64_t max_flow = std::uint64_t{1} << 30;
  const int bits = 10;
  const double b = choose_b(max_flow, bits);
  GeometricScale smaller(1.0 + (b - 1.0) * 0.999);
  const double c_max = static_cast<double>((std::uint64_t{1} << bits) - 1);
  EXPECT_LT(smaller.f(c_max), static_cast<double>(max_flow));
}

TEST(ChooseB, MoreBitsMeanSmallerBase) {
  const std::uint64_t max_flow = std::uint64_t{40} << 30;
  double prev = choose_b(max_flow, 8);
  for (int bits = 9; bits <= 14; ++bits) {
    const double b = choose_b(max_flow, bits);
    EXPECT_LT(b, prev) << "bits=" << bits;
    prev = b;
  }
}

TEST(ChooseB, TinyFlowsGetNearExactBase) {
  // When the counter can hold the flow directly, b collapses toward 1 and
  // counting is essentially exact.
  const double b = choose_b(100, 10);
  GeometricScale s(b);
  EXPECT_NEAR(s.f(100.0), 100.0, 0.01);
}

TEST(ChooseB, RejectsBadArguments) {
  EXPECT_THROW((void)choose_b(0, 10), std::invalid_argument);
  EXPECT_THROW((void)choose_b(100, 0), std::invalid_argument);
  EXPECT_THROW((void)choose_b(100, 63), std::invalid_argument);
}

TEST(BitWidth, KnownValues) {
  EXPECT_EQ(bit_width_u64(0), 0);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(2), 2);
  EXPECT_EQ(bit_width_u64(255), 8);
  EXPECT_EQ(bit_width_u64(256), 9);
  EXPECT_EQ(bit_width_u64(~std::uint64_t{0}), 64);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
}

}  // namespace
}  // namespace disco::util
