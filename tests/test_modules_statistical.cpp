// Statistical validation of the analysis modules against exact ground
// truth: seeded Zipf workloads run through a real FlowMonitor (so the
// module inputs are genuine DISCO estimates, not fixtures), with exact
// byte/packet accounting kept side by side.
//
// What is pinned here:
//   * topports ranks agree with exact ground truth where the ground truth
//     is statistically distinguishable (Zipf head), and its Theorem 2
//     aggregate intervals cover the exact values at ~the stated confidence
//     across independent seeded runs;
//   * autofocus reports a planted heavy /24 at the right granularity with
//     a byte estimate close to, and an interval covering, the exact total;
//   * scanner-detector finds a planted thin-fanout scanner with zero false
//     positives among ordinary heavy clients.
//
// Everything is seeded: these are regressions, not flaky Monte Carlo.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "flowtable/monitor.hpp"
#include "modules/autofocus.hpp"
#include "modules/host.hpp"
#include "modules/scanner.hpp"
#include "modules/top_keys.hpp"
#include "trace/distributions.hpp"
#include "util/rng.hpp"

namespace disco::modules {
namespace {

using flowtable::FiveTuple;
using flowtable::FlowMonitor;

constexpr int kBits = 12;

FlowMonitor::Config monitor_config(std::uint64_t seed) {
  FlowMonitor::Config config;
  config.max_flows = 4096;
  config.counter_bits = kBits;
  config.seed = seed;
  config.telemetry_prefix = "modstat";
  return config;
}

// --- topports vs exact ground truth -----------------------------------------

struct PortWorkload {
  std::map<std::uint16_t, double> exact_bytes;  ///< ground truth per port
  double total_bytes = 0.0;
};

/// 600 flows whose destination port follows Zipf(1.2) over 64 ports, each
/// flow 16 packets with uniform lengths.  Ingests into `monitor`, returns
/// the exact accounting.
PortWorkload run_port_workload(FlowMonitor& monitor, std::uint64_t seed) {
  util::Rng rng(seed);
  trace::ZipfCount port_rank(1.2, 64);
  PortWorkload truth;
  for (std::uint32_t i = 0; i < 600; ++i) {
    const auto rank = static_cast<std::uint16_t>(port_rank.sample(rng));
    const FiveTuple flow{0x0a000000u + i, 0xc0000000u + i,
                         static_cast<std::uint16_t>(40000 + (i & 1023)),
                         static_cast<std::uint16_t>(1000 + rank), 6};
    for (int p = 0; p < 16; ++p) {
      const auto len =
          static_cast<std::uint32_t>(rng.uniform_u64(200, 1400));
      EXPECT_TRUE(monitor.ingest(flow, len)) << "flow table unexpectedly full";
      truth.exact_bytes[flow.dst_port] += len;
      truth.total_bytes += len;
    }
  }
  return truth;
}

std::vector<std::uint16_t> exact_top(const PortWorkload& truth,
                                     std::size_t k) {
  std::vector<std::pair<double, std::uint16_t>> ranked;
  for (const auto& [port, bytes] : truth.exact_bytes) {
    ranked.emplace_back(bytes, port);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  std::vector<std::uint16_t> out;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

TEST(ModulesStatistical, TopPortsMatchesExactGroundTruth) {
  FlowMonitor monitor(monitor_config(0xd15c0'01));
  ModuleHost host("modstat_topports");
  ModuleOptions options;
  options.top_k = 10;
  host.attach(std::make_unique<TopKeysModule>(TopKeyKind::DstPort, options));
  host.subscribe_to(monitor);

  PortWorkload truth;
  {
    SCOPED_TRACE("workload");
    truth = run_port_workload(monitor, 20100621);
  }
  (void)monitor.rotate();

  const auto* module =
      dynamic_cast<const TopKeysModule*>(host.find("topports"));
  ASSERT_NE(module, nullptr);
  const auto top = module->top();
  ASSERT_EQ(top.size(), 10u);

  // The Zipf head is far above the estimation noise: ranks 1-3 carry
  // ~19/8/5 percent of all bytes while the per-key aggregate CV is well
  // under a percent, so the top-3 must match exactly and in order.
  const auto exact3 = exact_top(truth, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top[i].key, exact3[i]) << "rank " << i;
  }

  // Deeper ranks may legitimately swap with near-ties; require the
  // estimated top-10 to overlap the exact top-10 in at least 8 keys.
  const auto exact10 = exact_top(truth, 10);
  const std::set<std::uint32_t> exact_set(exact10.begin(), exact10.end());
  std::size_t overlap = 0;
  for (const auto& entry : top) overlap += exact_set.count(entry.key);
  EXPECT_GE(overlap, 8u);

  // Estimates are unbiased and each reported key aggregates many flows:
  // every top-10 estimate must sit within 10% of the exact bytes, and the
  // 95% intervals must cover the exact value for at least 8 of 10 keys
  // (they are *bounds*, so coverage should in fact be higher).
  std::size_t covered = 0;
  for (const auto& entry : top) {
    const double exact =
        truth.exact_bytes.at(static_cast<std::uint16_t>(entry.key));
    EXPECT_NEAR(entry.bytes.estimate, exact, 0.10 * exact)
        << "port " << entry.key;
    EXPECT_LT(entry.bytes.low, entry.bytes.high);
    if (entry.bytes.low <= exact && exact <= entry.bytes.high) ++covered;
  }
  EXPECT_GE(covered, 8u);
}

TEST(ModulesStatistical, TopPortsIntervalCoverageAcrossRuns) {
  // Theorem 2 interval calibration: across independent seeded runs, the 95%
  // interval on the heaviest port's aggregate must cover the exact bytes in
  // nearly every run.  cv_bound is an upper bound on the relative standard
  // deviation, so empirical coverage is ABOVE the nominal level; 90% leaves
  // slack for the normal approximation without ever passing a broken
  // interval (a sign error or dropped sqrt fails this instantly).
  constexpr int kRuns = 20;
  int covered = 0;
  for (int run = 0; run < kRuns; ++run) {
    FlowMonitor monitor(monitor_config(0xc0ffee00u + run));
    ModuleHost host("modstat_coverage");
    TopKeysModule* module = nullptr;
    {
      ModuleOptions options;
      options.top_k = 1;
      auto owned =
          std::make_unique<TopKeysModule>(TopKeyKind::DstPort, options);
      module = owned.get();
      host.attach(std::move(owned));
    }
    host.subscribe_to(monitor);
    PortWorkload truth;
    {
      SCOPED_TRACE(run);
      truth = run_port_workload(monitor, 7000u + run);
    }
    (void)monitor.rotate();

    const auto top = module->top();
    ASSERT_EQ(top.size(), 1u);
    const double exact =
        truth.exact_bytes.at(static_cast<std::uint16_t>(top[0].key));
    if (top[0].bytes.low <= exact && exact <= top[0].bytes.high) ++covered;
  }
  EXPECT_GE(covered, 18) << "95% intervals covered only " << covered << "/"
                         << kRuns << " runs";
}

// --- autofocus vs a planted heavy prefix ------------------------------------

TEST(ModulesStatistical, AutofocusReportsPlantedHeavyPrefix) {
  FlowMonitor monitor(monitor_config(0xd15c0'02));
  ModuleHost host("modstat_autofocus");
  ModuleOptions options;
  options.heavy_share = 0.20;  // the /24 clears this; each /25 does not
  AutofocusModule* module = nullptr;
  {
    auto owned = std::make_unique<AutofocusModule>(options);
    module = owned.get();
    host.attach(std::move(owned));
  }
  host.subscribe_to(monitor);

  util::Rng rng(42);
  double planted_exact = 0.0;
  constexpr std::uint32_t kPrefix = 0x0a010200u;  // 10.1.2.0/24

  // Planted /24: 64 hosts spread across the whole /24 (stride 4), each
  // ~0.45% of total -- individually invisible, collectively ~29%.  The
  // spread matters: AutoFocus reports the most specific covering prefix,
  // and 64 contiguous hosts would legitimately surface as a /26.
  for (std::uint32_t h = 0; h < 64; ++h) {
    const FiveTuple flow{0x01000000u + h, kPrefix + 4 * h, 40000, 80, 6};
    for (int p = 0; p < 8; ++p) {
      const auto len = static_cast<std::uint32_t>(rng.uniform_u64(600, 1400));
      ASSERT_TRUE(monitor.ingest(flow, len));
      planted_exact += len;
    }
  }
  // Scattered background, one flow per distinct /16, ~71% of total.
  for (std::uint32_t i = 0; i < 250; ++i) {
    const FiveTuple flow{0x02000000u + i, 0xc0000000u + (i << 16), 40000,
                         443, 6};
    for (int p = 0; p < 5; ++p) {
      ASSERT_TRUE(monitor.ingest(
          flow, static_cast<std::uint32_t>(rng.uniform_u64(600, 1400))));
    }
  }
  (void)monitor.rotate();

  const AutofocusModule::Prefix* planted = nullptr;
  for (const auto& p : module->report()) {
    if (p.prefix == kPrefix && p.length == 24) planted = &p;
    // Nothing below the /24 may be reported: no /25 reaches 20% and no
    // single host reaches it either.  A violation means residual
    // accounting over-reports descendants.
    if (p.length > 24) {
      EXPECT_FALSE(kPrefix <= p.prefix && p.prefix < kPrefix + 256)
          << "over-specific prefix inside the planted /24";
    }
  }
  ASSERT_NE(planted, nullptr) << "planted 10.1.2.0/24 not reported";
  EXPECT_NEAR(planted->bytes, planted_exact, 0.10 * planted_exact);
  EXPECT_LE(planted->bytes_ci.low, planted_exact);
  EXPECT_GE(planted->bytes_ci.high, planted_exact);
  EXPECT_GT(module->total_bytes(), planted_exact);
}

// --- scanner detection with zero false positives ----------------------------

TEST(ModulesStatistical, ScannerDetectedWithNoFalsePositives) {
  FlowMonitor monitor(monitor_config(0xd15c0'03));
  ModuleHost host("modstat_scanner");
  ModuleOptions options;
  options.scanner_min_fanout = 64;
  options.scanner_max_packets_per_flow = 4.0;
  ScannerDetectorModule* module = nullptr;
  {
    auto owned = std::make_unique<ScannerDetectorModule>(options);
    module = owned.get();
    host.attach(std::move(owned));
  }
  host.subscribe_to(monitor);

  util::Rng rng(7);
  constexpr std::uint32_t kScanner = 0xac100001u;  // 172.16.0.1

  // The scan: 200 distinct targets, one 60-byte SYN each.  The size
  // estimates feeding packets-per-target are DISCO estimates, so this also
  // checks that single-packet flows estimate near 1 packet.
  for (std::uint32_t t = 0; t < 200; ++t) {
    const FiveTuple probe{kScanner, 0x0a640000u + t,
                          static_cast<std::uint16_t>(50000 + (t & 255)),
                          static_cast<std::uint16_t>(1 + (t % 1024)), 6};
    ASSERT_TRUE(monitor.ingest(probe, 60));
  }
  // 30 legitimate clients, each talking to 40 servers with fat flows --
  // fanout below threshold AND packets-per-flow far above the thin-flow
  // cut, so neither criterion alone may fire.
  for (std::uint32_t c = 0; c < 30; ++c) {
    for (std::uint32_t s = 0; s < 40; ++s) {
      const FiveTuple flow{0x0b000000u + c, 0x0c000000u + s, 40000, 443, 6};
      for (int p = 0; p < 12; ++p) {
        ASSERT_TRUE(monitor.ingest(
            flow, static_cast<std::uint32_t>(rng.uniform_u64(400, 1400))));
      }
    }
  }
  (void)monitor.rotate();

  const auto suspects = module->suspects();
  ASSERT_EQ(suspects.size(), 1u) << "expected exactly the planted scanner";
  EXPECT_EQ(suspects[0].src_ip, kScanner);
  EXPECT_EQ(suspects[0].peak_fanout, 200u);
  // Single-packet probes: the mean estimated packets per target must sit
  // near 1 (small DISCO counters are exact or near-exact).
  EXPECT_NEAR(suspects[0].packets_per_target, 1.0, 0.25);
}

}  // namespace
}  // namespace disco::modules
