// Unit tests for the relative-error metrics (paper Section V-A definitions).
#include "stats/error.hpp"

#include <gtest/gtest.h>

namespace disco::stats {
namespace {

TEST(RelativeErrorReport, SizeMismatchThrows) {
  EXPECT_THROW((void)relative_error_report({1.0}, {}), std::invalid_argument);
}

TEST(RelativeErrorReport, EmptyInputsYieldZeroes) {
  const ErrorReport r = relative_error_report({}, {});
  EXPECT_DOUBLE_EQ(r.average, 0.0);
  EXPECT_DOUBLE_EQ(r.maximum, 0.0);
  EXPECT_TRUE(r.samples.empty());
}

TEST(RelativeErrorReport, KnownValues) {
  // R = |n_hat - n| / n per flow.
  const std::vector<double> estimates = {110.0, 90.0, 100.0, 400.0};
  const std::vector<std::uint64_t> truths = {100, 100, 100, 200};
  const ErrorReport r = relative_error_report(estimates, truths);
  ASSERT_EQ(r.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(r.maximum, 1.0);                       // |400-200|/200
  EXPECT_DOUBLE_EQ(r.average, (0.1 + 0.1 + 0.0 + 1.0) / 4.0);
}

TEST(RelativeErrorReport, SkipsZeroTruthFlows) {
  const std::vector<double> estimates = {5.0, 100.0};
  const std::vector<std::uint64_t> truths = {0, 100};
  const ErrorReport r = relative_error_report(estimates, truths);
  EXPECT_EQ(r.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(r.average, 0.0);
}

TEST(RelativeErrorReport, OptimisticQuantileDefinition) {
  // 100 flows: 95 with error 0.01, 5 with error 0.5.  R_o(0.95) must sit at
  // the boundary between the populations (~0.01), not at the max.
  std::vector<double> estimates;
  std::vector<std::uint64_t> truths;
  for (int i = 0; i < 95; ++i) {
    estimates.push_back(101.0);
    truths.push_back(100);
  }
  for (int i = 0; i < 5; ++i) {
    estimates.push_back(150.0);
    truths.push_back(100);
  }
  const ErrorReport r = relative_error_report(estimates, truths);
  EXPECT_LT(r.optimistic95, 0.2);
  EXPECT_GE(r.optimistic95, 0.01 - 1e-12);
  EXPECT_DOUBLE_EQ(r.maximum, 0.5);
  // alpha = 1 recovers the maximum.
  EXPECT_DOUBLE_EQ(r.optimistic(1.0), 0.5);
}

TEST(RelativeErrorReport, AverageBelowMaxAboveZeroOnNoisyData) {
  std::vector<double> estimates;
  std::vector<std::uint64_t> truths;
  for (int i = 1; i <= 50; ++i) {
    truths.push_back(1000);
    estimates.push_back(1000.0 + (i % 7) * 10.0);
  }
  const ErrorReport r = relative_error_report(estimates, truths);
  EXPECT_GT(r.average, 0.0);
  EXPECT_LE(r.average, r.maximum);
  EXPECT_LE(r.optimistic95, r.maximum);
}

}  // namespace
}  // namespace disco::stats
