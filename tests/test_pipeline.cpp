// Tests for the lock-free threaded ingest pipeline (src/pipeline): the SPSC
// ring, the burst coalescer, and PipelineMonitor -- including the estimate
// parity proof against a single FlowMonitor and the coalescer unbiasedness
// check against the Theorem 2 variance bound.
#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "pipeline/burst_coalescer.hpp"
#include "pipeline/packet_ring.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::pipeline {
namespace {

using flowtable::FiveTuple;
using flowtable::FlowMonitor;

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i * 131, 0xc0a80101u,
                   static_cast<std::uint16_t>(1024 + (i % 50000)), 443, 6};
}

PipelineMonitor::Config pipeline_config(unsigned workers, unsigned producers) {
  PipelineMonitor::Config c;
  c.base.max_flows = 4096;
  c.base.counter_bits = 12;
  c.base.max_flow_bytes = 1 << 26;
  c.base.max_flow_packets = 1 << 18;
  c.base.seed = 20100621;
  c.workers = workers;
  c.producers = producers;
  c.ring_capacity = 1u << 12;
  return c;
}

// --- SpscRing ---------------------------------------------------------------

TEST(SpscRing, RejectsBadCapacity) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(1), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(100), std::invalid_argument);  // not a power of two
}

TEST(SpscRing, FifoWithWraparound) {
  SpscRing<int> ring(8);
  int out[8];
  int next_in = 0, next_out = 0;
  // Push/pop more than the capacity so the indices wrap several times.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(next_in++));
    std::size_t n = ring.pop_batch(out, 3);
    ASSERT_EQ(n, 3u);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], next_out++);
    n = ring.pop_batch(out, 8);
    ASSERT_EQ(n, 2u);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], next_out++);
  }
  EXPECT_EQ(ring.pop_batch(out, 8), 0u);
}

TEST(SpscRing, FullRingRejectsUntilPopped) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int out[4];
  ASSERT_EQ(ring.pop_batch(out, 1), 1u);
  EXPECT_EQ(out[0], 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRing, TwoThreadStress) {
  // One producer, one consumer, every value delivered exactly once in order.
  SpscRing<std::uint64_t> ring(1u << 10);
  constexpr std::uint64_t kCount = 200000;
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t out[64];
    while (expected < kCount) {
      const std::size_t n = ring.pop_batch(out, 64);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], expected);
        ++expected;
      }
      if (n == 0) std::this_thread::yield();
    }
  });
  for (std::uint64_t v = 0; v < kCount; ++v) {
    while (!ring.try_push(v)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ring.empty_approx());
}

// --- BurstCoalescer ---------------------------------------------------------

std::vector<BurstUpdate> collect_flush(BurstCoalescer& c) {
  std::vector<BurstUpdate> out;
  c.flush([&](const BurstUpdate& b) { out.push_back(b); });
  return out;
}

TEST(BurstCoalescer, MergesConsecutiveSameFlowPackets) {
  BurstCoalescer c({.slots = 16});
  std::vector<BurstUpdate> emitted;
  auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
  for (int i = 0; i < 5; ++i) c.add(tuple(1), 100, 10 + i, sink);
  EXPECT_TRUE(emitted.empty());  // the burst is still open
  EXPECT_EQ(c.open_bursts(), 1u);
  EXPECT_EQ(c.merged(), 4u);
  const auto flushed = collect_flush(c);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].flow, tuple(1));
  EXPECT_EQ(flushed[0].bytes, 500u);
  EXPECT_EQ(flushed[0].packets, 5u);
  EXPECT_EQ(flushed[0].last_ns, 14u);
  EXPECT_EQ(c.open_bursts(), 0u);
}

TEST(BurstCoalescer, InterleavedFlowsMergeIndependently) {
  BurstCoalescer c({.slots = 64});
  std::vector<BurstUpdate> emitted;
  auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
  // a b a b a b -- with a table, both runs coalesce despite interleaving.
  for (int i = 0; i < 3; ++i) {
    c.add(tuple(1), 100, 0, sink);
    c.add(tuple(2), 200, 0, sink);
  }
  // Distinct flows may still collide in the small table; merged() tells us
  // how much survived.  With 64 slots and 2 flows a collision is unlikely
  // but hash-dependent, so assert on conservation instead of exact layout.
  const auto flushed = collect_flush(c);
  std::uint64_t bytes = 0, packets = 0;
  for (const auto& b : emitted) { bytes += b.bytes; packets += b.packets; }
  for (const auto& b : flushed) { bytes += b.bytes; packets += b.packets; }
  EXPECT_EQ(bytes, 3u * 100 + 3u * 200);
  EXPECT_EQ(packets, 6u);
}

TEST(BurstCoalescer, CapsCloseTheBurst) {
  BurstCoalescer c({.slots = 4, .max_burst_packets = 3});
  std::vector<BurstUpdate> emitted;
  auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
  for (int i = 0; i < 7; ++i) c.add(tuple(9), 10, 0, sink);
  ASSERT_EQ(emitted.size(), 2u);  // closed at 3 packets, twice
  EXPECT_EQ(emitted[0].packets, 3u);
  EXPECT_EQ(emitted[1].packets, 3u);
  const auto flushed = collect_flush(c);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].packets, 1u);
}

TEST(BurstCoalescer, ByteCapClosesTheBurst) {
  BurstCoalescer c({.slots = 4, .max_burst_bytes = 1000});
  std::vector<BurstUpdate> emitted;
  auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
  c.add(tuple(9), 600, 0, sink);
  EXPECT_TRUE(emitted.empty());
  c.add(tuple(9), 600, 0, sink);  // 1200 >= 1000: closed
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].bytes, 1200u);
}

TEST(BurstCoalescer, ZeroSlotsPassesThrough) {
  BurstCoalescer c({.slots = 0});
  std::vector<BurstUpdate> emitted;
  auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
  for (int i = 0; i < 4; ++i) c.add(tuple(1), 100, i, sink);
  ASSERT_EQ(emitted.size(), 4u);
  for (const auto& b : emitted) {
    EXPECT_EQ(b.packets, 1u);
    EXPECT_EQ(b.bytes, 100u);
  }
  EXPECT_EQ(c.merged(), 0u);
  EXPECT_TRUE(collect_flush(c).empty());
}

TEST(BurstCoalescer, DeterministicAcrossRuns) {
  // Same packet sequence => same emitted burst sequence, twice.
  util::Rng rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> packets;
  for (int i = 0; i < 2000; ++i) {
    packets.emplace_back(static_cast<std::uint32_t>(rng.uniform_u64(0, 31)),
                         static_cast<std::uint32_t>(rng.uniform_u64(64, 1500)));
  }
  auto run = [&packets] {
    BurstCoalescer c({.slots = 8, .max_burst_packets = 16});
    std::vector<BurstUpdate> emitted;
    auto sink = [&](const BurstUpdate& b) { emitted.push_back(b); };
    for (const auto& [f, len] : packets) c.add(tuple(f), len, 0, sink);
    c.flush(sink);
    return emitted;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].packets, b[i].packets);
  }
}

// The acceptance property for coalesced counting: grouping packets into
// bursts keeps DISCO's estimate unbiased, with per-flow relative error
// governed by Theorem 2.  >= 1000 trials (one independent flow each); the
// mean relative error must sit within the CV bound scaled for the sample
// size (4.5 sigma of the sample mean -- comfortably deterministic with a
// fixed seed, impossible if coalescing introduced bias).
TEST(BurstCoalescer, CoalescedUpdatesStayUnbiased) {
  constexpr int kTrials = 1200;
  constexpr int kPacketsPerTrial = 300;
  const int bits = 12;
  const std::uint64_t max_flow = 1 << 26;
  const core::DiscoParams params = core::DiscoParams::for_budget(max_flow, bits);
  util::Rng traffic_rng(42);
  util::Rng counter_rng(43);

  double sum_rel_err = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    BurstCoalescer coalescer({.slots = 8, .max_burst_packets = 32});
    std::uint64_t counter = 0;
    std::uint64_t truth = 0;
    auto sink = [&](const BurstUpdate& b) {
      counter = params.update(counter, b.bytes, counter_rng);
    };
    for (int i = 0; i < kPacketsPerTrial; ++i) {
      const auto len =
          static_cast<std::uint32_t>(traffic_rng.uniform_u64(40, 1500));
      truth += len;
      coalescer.add(tuple(static_cast<std::uint32_t>(trial)), len, 0, sink);
    }
    coalescer.flush(sink);
    sum_rel_err += (params.estimate(counter) - static_cast<double>(truth)) /
                   static_cast<double>(truth);
  }
  const double mean_rel_err = sum_rel_err / kTrials;
  // Theorem 2 / Corollary 1: per-trial relative error has std <= cv_bound(b);
  // the mean of kTrials independent trials concentrates by sqrt(kTrials).
  const double cv = core::theory::cv_bound(params.b());
  EXPECT_LT(std::abs(mean_rel_err), 4.5 * cv / std::sqrt(kTrials))
      << "mean relative error " << mean_rel_err << " vs cv bound " << cv;
}

// --- PipelineMonitor --------------------------------------------------------

TEST(PipelineMonitor, RejectsBadConfig) {
  auto c = pipeline_config(1, 1);
  c.workers = 0;
  EXPECT_THROW(PipelineMonitor{c}, std::invalid_argument);
  c = pipeline_config(1, 1);
  c.producers = 0;
  EXPECT_THROW(PipelineMonitor{c}, std::invalid_argument);
  c = pipeline_config(1, 1);
  c.ring_capacity = 100;  // not a power of two
  EXPECT_THROW(PipelineMonitor{c}, std::invalid_argument);
  c = pipeline_config(1, 1);
  c.pop_batch = 0;
  EXPECT_THROW(PipelineMonitor{c}, std::invalid_argument);
}

// The tentpole acceptance test: with coalescing off, the pipeline (after
// drain) returns, flow for flow, the BIT-EXACT estimates of single
// FlowMonitors fed the same per-shard packet sequences.  The pipeline adds
// concurrency, not approximation.
TEST(PipelineMonitor, EstimateParityWithFlowMonitor) {
  auto config = pipeline_config(4, 1);
  config.coalescer.slots = 0;  // per-packet updates, deterministic RNG stream

  // One deterministic trace, some flows hot, some cold.
  util::Rng rng(99);
  std::vector<std::pair<FiveTuple, std::uint32_t>> trace;
  trace.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 199));
    const auto hot = static_cast<std::uint32_t>(rng.uniform_u64(0, 9));
    trace.emplace_back(tuple(rng.bernoulli(0.5) ? hot : f),
                       static_cast<std::uint32_t>(rng.uniform_u64(40, 1500)));
  }

  // Reference: one FlowMonitor per shard, fed that shard's subsequence.
  std::vector<FlowMonitor> reference;
  reference.reserve(config.workers);
  for (unsigned w = 0; w < config.workers; ++w) {
    reference.emplace_back(PipelineMonitor::shard_config(config, w));
  }
  for (const auto& [flow, len] : trace) {
    ASSERT_TRUE(
        reference[PipelineMonitor::worker_of(flow, config.workers)].ingest(flow, len));
  }

  PipelineMonitor pipeline(config);
  for (const auto& [flow, len] : trace) {
    ASSERT_TRUE(pipeline.ingest(0, flow, len));
  }
  pipeline.drain();

  EXPECT_EQ(pipeline.packets_seen(), 20000u);
  for (std::uint32_t f = 0; f < 200; ++f) {
    const auto& ref =
        reference[PipelineMonitor::worker_of(tuple(f), config.workers)];
    const auto expected = ref.query(tuple(f));
    const auto actual = pipeline.query(tuple(f));
    ASSERT_EQ(expected.has_value(), actual.has_value()) << "flow " << f;
    if (expected) {
      EXPECT_DOUBLE_EQ(expected->bytes, actual->bytes) << "flow " << f;
      EXPECT_DOUBLE_EQ(expected->packets, actual->packets) << "flow " << f;
    }
  }
}

// The batched producer path (hash up front, bucket by worker, write spans
// of ring slots, one release store per span) must be invisible to the
// measurement: flow for flow, bit-exact against the per-packet ingest()
// path.  Multiple workers so the bucketing step actually routes.
TEST(PipelineMonitor, BatchedIngestMatchesPerPacketIngest) {
  auto config = pipeline_config(4, 1);
  config.coalescer.slots = 0;  // deterministic per-packet RNG stream
  config.telemetry_prefix = "pipeline_batched_a";

  util::Rng rng(4242);
  std::vector<PipelineMonitor::PacketEvent> trace;
  trace.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 199));
    trace.push_back({tuple(f),
                     static_cast<std::uint32_t>(rng.uniform_u64(40, 1500)), 0});
  }

  PipelineMonitor per_packet(config);
  for (const auto& pkt : trace) {
    ASSERT_TRUE(per_packet.ingest(0, pkt.flow, pkt.length));
  }
  per_packet.drain();

  config.telemetry_prefix = "pipeline_batched_b";
  PipelineMonitor batched(config);
  // Uneven chunk sizes so span grants hit ring wrap points at odd offsets.
  std::size_t off = 0;
  std::size_t chunk = 1;
  while (off < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - off);
    ASSERT_EQ(batched.ingest_batch(0, trace.data() + off, n), n);
    off += n;
    chunk = (chunk * 7 + 3) % 509 + 1;
  }
  batched.drain();

  EXPECT_EQ(batched.packets_seen(), per_packet.packets_seen());
  for (std::uint32_t f = 0; f < 200; ++f) {
    const auto expected = per_packet.query(tuple(f));
    const auto actual = batched.query(tuple(f));
    ASSERT_EQ(expected.has_value(), actual.has_value()) << "flow " << f;
    if (expected) {
      EXPECT_DOUBLE_EQ(expected->bytes, actual->bytes) << "flow " << f;
      EXPECT_DOUBLE_EQ(expected->packets, actual->packets) << "flow " << f;
    }
  }
  EXPECT_THROW((void)batched.ingest_batch(99, trace.data(), 1),
               std::invalid_argument);
}

// The precomputed-hash overload the pipeline feeds (BurstCoalescer::add
// with hash_tuple already in hand) must emit exactly what the hashing
// overload emits.
TEST(BurstCoalescer, ExplicitHashOverloadMatchesImplicit) {
  BurstCoalescer a({.slots = 16});
  BurstCoalescer b({.slots = 16});
  std::vector<BurstUpdate> ea, eb;
  util::Rng rng(777);
  for (int i = 0; i < 5000; ++i) {
    const auto f = tuple(static_cast<std::uint32_t>(rng.uniform_u64(0, 39)));
    const auto len = static_cast<std::uint32_t>(rng.uniform_u64(64, 1500));
    a.add(f, len, i, [&](const BurstUpdate& u) { ea.push_back(u); });
    b.add(f, flowtable::hash_tuple(f), len, i,
          [&](const BurstUpdate& u) { eb.push_back(u); });
  }
  a.flush([&](const BurstUpdate& u) { ea.push_back(u); });
  b.flush([&](const BurstUpdate& u) { eb.push_back(u); });
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].flow, eb[i].flow);
    EXPECT_EQ(ea[i].bytes, eb[i].bytes);
    EXPECT_EQ(ea[i].packets, eb[i].packets);
  }
  EXPECT_EQ(a.merged(), b.merged());
}

TEST(PipelineMonitor, CoalescedPipelineTracksTruth) {
  // With coalescing ON the estimates are not bit-identical to the per-packet
  // path (different update grouping), but they must stay unbiased: totals
  // land near the exact truth, and the coalescer must have merged something
  // on this bursty input.
  auto config = pipeline_config(2, 1);
  config.coalescer.slots = 64;
  PipelineMonitor pipeline(config);

  util::Rng rng(1234);
  std::uint64_t truth_bytes = 0;
  std::uint64_t packets = 0;
  for (int burst = 0; burst < 4000; ++burst) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 63));
    const auto burst_len = 1 + rng.uniform_u64(0, 7);
    for (std::uint64_t i = 0; i < burst_len; ++i) {
      const auto len = static_cast<std::uint32_t>(rng.uniform_u64(64, 1500));
      ASSERT_TRUE(pipeline.ingest(0, tuple(f), len));
      truth_bytes += len;
      ++packets;
    }
  }
  pipeline.drain();
  EXPECT_EQ(pipeline.packets_seen(), packets);
  EXPECT_GT(pipeline.coalesced(), packets / 4);  // bursts really merged
  const auto totals = pipeline.totals();
  EXPECT_EQ(totals.flows, 64u);
  EXPECT_NEAR(totals.bytes, static_cast<double>(truth_bytes),
              static_cast<double>(truth_bytes) * 0.05);
  EXPECT_NEAR(totals.packets, static_cast<double>(packets),
              static_cast<double>(packets) * 0.05);
}

TEST(PipelineMonitor, RotateDuringConcurrentIngestLosesNothing) {
  // Producers ingest with Block backpressure while the control plane keeps
  // rotating: every accepted packet must land in exactly one epoch, and
  // cumulative packets_seen survives rotation.
  auto config = pipeline_config(2, 2);
  config.ring_capacity = 1u << 10;
  PipelineMonitor pipeline(config);

  constexpr int kPerProducer = 15000;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(500 + p);
      std::uint64_t local = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 127));
        if (pipeline.ingest(p, tuple(f), 400)) ++local;
      }
      accepted += local;
    });
  }

  double reported_packets = 0.0;
  std::uint64_t epochs_seen = 0;
  for (int r = 0; r < 5; ++r) {
    const auto report = pipeline.rotate();
    reported_packets += report.totals.packets;
    epochs_seen += 1;
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  pipeline.drain();
  const auto final_report = pipeline.rotate();
  reported_packets += final_report.totals.packets;

  EXPECT_EQ(accepted.load(), 2u * kPerProducer);  // Block never drops
  EXPECT_EQ(pipeline.packets_seen(), accepted.load());
  EXPECT_EQ(pipeline.totals().flows, 0u);  // everything rotated out
  // The per-epoch reports carry unbiased estimates; summed across epochs
  // they must reconstruct the accepted packet count closely.
  EXPECT_NEAR(reported_packets, static_cast<double>(accepted.load()),
              static_cast<double>(accepted.load()) * 0.05);
  EXPECT_EQ(epochs_seen, 5u);
}

TEST(PipelineMonitor, DropBackpressureCountsEveryLostPacket) {
  auto config = pipeline_config(1, 1);
  config.ring_capacity = 8;  // absurdly small: force drops
  config.backpressure = Backpressure::Drop;
  config.coalescer.slots = 0;
  PipelineMonitor pipeline(config);

  constexpr std::uint64_t kAttempted = 50000;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kAttempted; ++i) {
    if (pipeline.ingest(0, tuple(static_cast<std::uint32_t>(i % 16)), 100)) {
      ++accepted;
    }
  }
  pipeline.drain();
  EXPECT_EQ(accepted + pipeline.dropped(), kAttempted);
  EXPECT_EQ(pipeline.packets_seen(), accepted);
  EXPECT_GT(accepted, 0u);
}

TEST(PipelineMonitor, QueriesRunConcurrentlyWithIngest) {
  auto config = pipeline_config(2, 1);
  PipelineMonitor pipeline(config);
  std::atomic<bool> stop{false};

  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)pipeline.totals();
      (void)pipeline.top_k(5);
      (void)pipeline.query(tuple(1));
      (void)pipeline.memory();
    }
  });
  util::Rng rng(77);
  for (int i = 0; i < 30000; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 31));
    ASSERT_TRUE(pipeline.ingest(0, tuple(f), 256));
  }
  pipeline.drain();
  stop.store(true);
  querier.join();

  EXPECT_EQ(pipeline.packets_seen(), 30000u);
  EXPECT_EQ(pipeline.totals().flows, 32u);
  const auto top = pipeline.top_k(3);
  EXPECT_EQ(top.size(), 3u);
}

TEST(PipelineMonitor, StopIsIdempotentAndAllowsPostMortemQueries) {
  auto config = pipeline_config(2, 1);
  PipelineMonitor pipeline(config);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pipeline.ingest(0, tuple(static_cast<std::uint32_t>(i % 8)), 512));
  }
  pipeline.stop();
  pipeline.stop();  // idempotent
  EXPECT_FALSE(pipeline.ingest(0, tuple(1), 64));  // fail-fast after stop
  // Control plane now runs inline on the joined shards.
  EXPECT_EQ(pipeline.packets_seen(), 1000u);
  EXPECT_EQ(pipeline.totals().flows, 8u);
  EXPECT_TRUE(pipeline.query(tuple(1)).has_value());
  const auto report = pipeline.rotate();
  EXPECT_EQ(report.totals.flows, 8u);
}

TEST(PipelineMonitor, EvictIdleRemovesStaleFlows) {
  auto config = pipeline_config(2, 1);
  PipelineMonitor pipeline(config);
  ASSERT_TRUE(pipeline.ingest(0, tuple(1), 500, 1'000));
  ASSERT_TRUE(pipeline.ingest(0, tuple(2), 500, 900'000));
  pipeline.drain();
  const auto evicted = pipeline.evict_idle(1'000'000, 100'000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].flow, tuple(1));
  EXPECT_FALSE(pipeline.query(tuple(1)).has_value());
  EXPECT_TRUE(pipeline.query(tuple(2)).has_value());
}

}  // namespace
}  // namespace disco::pipeline
