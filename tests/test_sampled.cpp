// Unit tests for the uniform-sampling (Sampled NetFlow) baseline.
#include "counters/sampled.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace disco::counters {
namespace {

TEST(SampledNetFlow, RejectsBadRate) {
  EXPECT_THROW(SampledNetFlow(0.0), std::invalid_argument);
  EXPECT_THROW(SampledNetFlow(-0.5), std::invalid_argument);
  EXPECT_THROW(SampledNetFlow(1.01), std::invalid_argument);
}

TEST(SampledNetFlow, RateOneIsExact) {
  SampledNetFlow c(1.0);
  util::Rng rng(1);
  for (int i = 0; i < 1234; ++i) c.add_packet(rng);
  EXPECT_EQ(c.value(), 1234u);
  EXPECT_DOUBLE_EQ(c.estimate(), 1234.0);
}

TEST(SampledNetFlow, UnbiasedEstimate) {
  const double p = 0.05;
  util::Rng rng(2);
  const int truth = 20000;
  const int runs = 300;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    SampledNetFlow c(p);
    for (int i = 0; i < truth; ++i) c.add_packet(rng);
    sum += c.estimate();
  }
  // sigma = sqrt((1-p)/ (p n)) * n ~ 616; 5 sigma / sqrt(runs).
  EXPECT_NEAR(sum / runs, truth, 5.0 * 616.0 / std::sqrt(runs));
}

TEST(SampledNetFlow, CounterCompression) {
  // The whole point: the stored value is ~p times the flow size.
  SampledNetFlow c(0.01);
  util::Rng rng(3);
  for (int i = 0; i < 100000; ++i) c.add_packet(rng);
  EXPECT_LT(c.value(), 2000u);
  EXPECT_GT(c.value(), 500u);
}

TEST(SampledNetFlow, SmallFlowsOftenInvisible) {
  // The classic sampling failure the paper's ANLS lineage addresses: at
  // p = 0.01 most 10-packet flows record nothing.
  util::Rng rng(4);
  int invisible = 0;
  const int flows = 2000;
  for (int f = 0; f < flows; ++f) {
    SampledNetFlow c(0.01);
    for (int i = 0; i < 10; ++i) c.add_packet(rng);
    if (c.value() == 0) ++invisible;
  }
  EXPECT_GT(invisible, flows / 2);  // (1-p)^10 ~ 0.904
}

TEST(SampledNetFlow, ResetClears) {
  SampledNetFlow c(0.5);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) c.add_packet(rng);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace disco::counters
