// Unit tests for the Counter Braids implementation (paper reference [14]).
#include "counters/counter_braids.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace disco::counters {
namespace {

CounterBraids::Config small_config(std::size_t flows) {
  CounterBraids::Config c;
  c.flow_capacity = flows;
  return c;
}

TEST(CounterBraids, RejectsBadConfig) {
  CounterBraids::Config c;
  c.flow_capacity = 0;
  EXPECT_THROW(CounterBraids{c}, std::invalid_argument);
  c = small_config(16);
  c.layer1_hashes = 1;
  EXPECT_THROW(CounterBraids{c}, std::invalid_argument);
  c = small_config(16);
  c.layer1_counters = 2;  // smaller than the hash fan-out
  EXPECT_THROW(CounterBraids{c}, std::invalid_argument);
}

TEST(CounterBraids, DerivedGeometryReported) {
  CounterBraids cb(small_config(100));
  EXPECT_EQ(cb.config().layer1_counters, 150u);
  EXPECT_GT(cb.config().layer2_counters, 0u);
  EXPECT_GT(cb.storage_bits(), 0u);
}

TEST(CounterBraids, AddRejectsUnknownFlow) {
  CounterBraids cb(small_config(8));
  EXPECT_THROW(cb.add(8, 1), std::out_of_range);
}

TEST(CounterBraids, EmptyBraidDecodesToZero) {
  CounterBraids cb(small_config(32));
  const auto result = cb.decode();
  EXPECT_TRUE(result.verified);
  for (auto v : result.counts) EXPECT_EQ(v, 0u);
}

TEST(CounterBraids, SingleFlowExact) {
  CounterBraids cb(small_config(32));
  cb.add(5, 12345);
  const auto result = cb.decode();
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.counts[5], 12345u);
  for (std::size_t i = 0; i < 32; ++i) {
    if (i != 5) { EXPECT_EQ(result.counts[i], 0u) << i; }
  }
}

TEST(CounterBraids, Layer1OverflowCarriesIntoLayer2) {
  // 8-bit layer-1 counters: a 300-byte add must carry.
  CounterBraids cb(small_config(32));
  cb.add(0, 300);
  EXPECT_GT(cb.layer1_carries(), 0u);
  const auto result = cb.decode();
  EXPECT_EQ(result.counts[0], 300u);
}

TEST(CounterBraids, ManySmallFlowsDecodeExactly) {
  // Dimensioned per the header guidance: per-counter sums reach ~1.5k, so
  // 12-bit layer-1 counters keep overflow rare enough for layer 2.
  const std::size_t flows = 256;
  auto config = small_config(flows);
  config.layer1_bits = 12;
  CounterBraids cb(config);
  util::Rng rng(7);
  std::vector<std::uint64_t> truth(flows, 0);
  for (int update = 0; update < 4000; ++update) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, flows - 1));
    const std::uint64_t amount = rng.uniform_u64(1, 50);
    cb.add(f, amount);
    truth[f] += amount;
  }
  const auto result = cb.decode(100);
  ASSERT_TRUE(result.verified);
  for (std::size_t i = 0; i < flows; ++i) {
    ASSERT_EQ(result.counts[i], truth[i]) << "flow " << i;
  }
}

TEST(CounterBraids, HeavyTailedWorkloadDecodesExactly) {
  // The realistic case: counts spanning five orders of magnitude, overflow
  // carries active throughout.
  const std::size_t flows = 200;
  CounterBraids::Config config = small_config(flows);
  // Scenario 1 elephants reach ~1e8 bytes; 16-bit layer-1 counters confine
  // overflow to the elephant tail, which the 75-counter layer 2 absorbs.
  config.layer1_bits = 16;
  CounterBraids cb(config);
  util::Rng rng(11);
  auto records = trace::scenario1().make_flows(static_cast<std::uint32_t>(flows), rng);
  std::vector<std::uint64_t> truth(flows, 0);
  for (const auto& f : records) {
    for (auto l : f.lengths) {
      cb.add(f.id, l);
      truth[f.id] += l;
    }
  }
  const auto result = cb.decode(100);
  ASSERT_TRUE(result.verified);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < flows; ++i) {
    if (result.counts[i] != truth[i]) ++wrong;
  }
  EXPECT_EQ(wrong, 0u);
}

TEST(CounterBraids, OverloadDegradesGracefully) {
  // Push the braid far past its decoding threshold: layer-1 array barely
  // larger than the flow count with k = 3 edges each.  Decoding may fail to
  // converge or mis-estimate, but must terminate and never crash.
  CounterBraids::Config config;
  config.flow_capacity = 400;
  config.layer1_counters = 420;
  CounterBraids cb(config);
  util::Rng rng(13);
  for (std::uint32_t f = 0; f < 400; ++f) {
    cb.add(f, rng.uniform_u64(100, 10000));
  }
  const auto result = cb.decode(30);
  EXPECT_EQ(result.counts.size(), 400u);
  EXPECT_LE(result.iterations_used, 30);
}

TEST(CounterBraids, DeterministicDecode) {
  CounterBraids a(small_config(64));
  CounterBraids b(small_config(64));
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 63));
    const std::uint64_t amount = rng.uniform_u64(1, 1000);
    a.add(f, amount);
    b.add(f, amount);
  }
  EXPECT_EQ(a.decode().counts, b.decode().counts);
}

TEST(CounterBraids, ComposesWithDiscoValues) {
  // The paper's complementarity claim, in miniature: braid DISCO counter
  // *values* (small integers) instead of raw bytes -- layer-1 stays small
  // and the decode recovers the DISCO counters exactly, from which the
  // usual unbiased estimates follow.
  const std::size_t flows = 128;
  auto config = small_config(flows);
  config.layer1_bits = 12;  // DISCO values are small: no overflow expected
  CounterBraids cb(config);
  util::Rng rng(19);
  std::vector<std::uint64_t> disco_counters(flows, 0);
  // Pretend these are final DISCO counter values (hundreds, not millions).
  for (std::size_t i = 0; i < flows; ++i) {
    disco_counters[i] = rng.uniform_u64(0, 900);
    cb.add(static_cast<std::uint32_t>(i), disco_counters[i]);
  }
  const auto result = cb.decode(100);
  ASSERT_TRUE(result.verified);
  for (std::size_t i = 0; i < flows; ++i) {
    ASSERT_EQ(result.counts[i], disco_counters[i]);
  }
}

}  // namespace
}  // namespace disco::counters
