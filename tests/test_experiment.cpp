// Tests for the accuracy-experiment harness.
#include "stats/experiment.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace disco::stats {
namespace {

std::vector<trace::FlowRecord> small_trace() {
  util::Rng rng(11);
  return trace::scenario1().make_flows(150, rng);
}

TEST(MaxFlowLength, VolumeAndSizeViews) {
  const auto flows = small_trace();
  std::uint64_t max_bytes = 0;
  std::uint64_t max_packets = 0;
  for (const auto& f : flows) {
    max_bytes = std::max(max_bytes, f.bytes());
    max_packets = std::max(max_packets, f.packets());
  }
  EXPECT_EQ(max_flow_length(flows, CountingMode::kVolume), max_bytes);
  EXPECT_EQ(max_flow_length(flows, CountingMode::kSize), max_packets);
}

TEST(RunAccuracy, ExactMethodHasZeroError) {
  const auto flows = small_trace();
  const auto method = make_method("exact");
  const AccuracyResult r =
      run_accuracy(*method, flows, CountingMode::kVolume, 10, 1);
  EXPECT_DOUBLE_EQ(r.errors.average, 0.0);
  EXPECT_DOUBLE_EQ(r.errors.maximum, 0.0);
}

TEST(RunAccuracy, TruthsMatchTrace) {
  const auto flows = small_trace();
  const auto method = make_method("exact");
  const AccuracyResult r =
      run_accuracy(*method, flows, CountingMode::kVolume, 10, 1);
  ASSERT_EQ(r.truths.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(r.truths[i], flows[i].bytes());
  }
  const AccuracyResult rs =
      run_accuracy(*method, flows, CountingMode::kSize, 10, 1);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(rs.truths[i], flows[i].packets());
  }
}

TEST(RunAccuracy, DiscoVolumeErrorsAreModest) {
  const auto flows = small_trace();
  const auto method = make_method("DISCO");
  const AccuracyResult r =
      run_accuracy(*method, flows, CountingMode::kVolume, 10, 2);
  EXPECT_GT(r.errors.average, 0.0);
  EXPECT_LT(r.errors.average, 0.2);
  EXPECT_LE(r.max_counter_bits, 10);
  EXPECT_EQ(r.method, "DISCO");
  EXPECT_EQ(r.bits, 10);
}

TEST(RunAccuracy, DeterministicUnderSeed) {
  const auto flows = small_trace();
  const auto m1 = make_method("DISCO");
  const auto m2 = make_method("DISCO");
  const auto r1 = run_accuracy(*m1, flows, CountingMode::kVolume, 10, 42);
  const auto r2 = run_accuracy(*m2, flows, CountingMode::kVolume, 10, 42);
  EXPECT_EQ(r1.estimates, r2.estimates);
  const auto r3 = run_accuracy(*m2, flows, CountingMode::kVolume, 10, 43);
  EXPECT_NE(r1.estimates, r3.estimates);
}

TEST(RunAccuracy, MoreBitsReduceDiscoError) {
  // The headline trend of Figs. 5-7: error falls as counter size grows.
  const auto flows = small_trace();
  double prev = 1e9;
  for (int bits : {8, 10, 12}) {
    const auto method = make_method("DISCO");
    const auto r = run_accuracy(*method, flows, CountingMode::kVolume, bits, 3);
    EXPECT_LT(r.errors.average, prev) << "bits=" << bits;
    prev = r.errors.average;
  }
}

TEST(RunAccuracy, DiscoBeatsSacAtEqualBits) {
  // The paper's headline comparison, on a small population.
  const auto flows = small_trace();
  const auto disco = make_method("DISCO");
  const auto sac = make_method("SAC");
  const auto rd = run_accuracy(*disco, flows, CountingMode::kVolume, 10, 4);
  const auto rs = run_accuracy(*sac, flows, CountingMode::kVolume, 10, 4);
  EXPECT_LT(rd.errors.average, rs.errors.average);
}

TEST(RunAccuracy, SizeModeMatchesPacketCounts) {
  const auto flows = small_trace();
  const auto method = make_method("DISCO");
  const auto r = run_accuracy(*method, flows, CountingMode::kSize, 12, 5);
  EXPECT_LT(r.errors.average, 0.15);
}

TEST(ToString, Modes) {
  EXPECT_STREQ(to_string(CountingMode::kVolume), "volume");
  EXPECT_STREQ(to_string(CountingMode::kSize), "size");
}

}  // namespace
}  // namespace disco::stats
