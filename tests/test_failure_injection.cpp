// Failure injection: corrupted inputs, overload, saturation, and adversarial
// patterns.  Every component must fail loudly (throw / report) or degrade
// gracefully (saturate / reject and count) -- never crash, hang, or corrupt
// neighbouring state.
#include <gtest/gtest.h>

#include <sstream>

#include "core/disco.hpp"
#include "counters/counter_braids.hpp"
#include "counters/sac.hpp"
#include "flowtable/flow_table.hpp"
#include "flowtable/monitor.hpp"
#include "trace/pcap.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

namespace disco {
namespace {

// --- corrupted trace inputs --------------------------------------------------

TEST(FailureInjection, TraceReaderSurvivesRandomCorruption) {
  // Flip bytes at every position of a (small, fixed-size) valid trace; the
  // reader must either throw or return records -- never crash.  (Payload
  // corruption is not detectable without checksums, and that is fine: the
  // contract is memory safety plus loud failure on structural damage.)
  util::Rng rng(1);
  const trace::Scenario tiny("tiny", std::make_shared<trace::UniformCount>(3, 6),
                             std::make_shared<trace::UniformLength>(40, 1500));
  auto flows = tiny.make_flows(5, rng);
  trace::PacketStream stream(std::move(flows), 1, 2, 2);
  std::stringstream buf;
  trace::write_trace(buf, stream.drain(), 5);
  const std::string original = buf.str();

  int threw = 0;
  int parsed = 0;
  for (std::size_t pos = 0; pos < original.size(); pos += 3) {
    std::string corrupt = original;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0xff);
    std::stringstream in(corrupt);
    try {
      const auto data = trace::read_trace(in);
      ++parsed;
      (void)data;
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0);   // header corruption must be detected
  EXPECT_GT(parsed, 0);  // payload corruption parses (structurally valid)
}

TEST(FailureInjection, PcapReaderSurvivesRandomCorruption) {
  std::vector<trace::PacketRecord> packets = {{1, 500, 1000}, {2, 800, 2000}};
  std::stringstream buf;
  trace::write_pcap(buf, packets);
  const std::string original = buf.str();
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string corrupt = original;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    std::stringstream in(corrupt);
    try {
      (void)trace::read_pcap(in);
    } catch (const std::runtime_error&) {
      // expected for structural damage
    }
  }
  SUCCEED();  // the contract is "no crash"; throws are fine
}

TEST(FailureInjection, SnapshotRestoreSurvivesBitFlips) {
  flowtable::FlowMonitor monitor({.max_flows = 64,
                                  .counter_bits = 10,
                                  .max_flow_bytes = 1 << 20,
                                  .max_flow_packets = 1 << 12,
                                  .seed = 3});
  for (int i = 0; i < 500; ++i) {
    (void)monitor.ingest({static_cast<std::uint32_t>(i % 9), 1, 2, 3, 6}, 500);
  }
  std::stringstream buf;
  monitor.snapshot(buf);
  const std::string original = buf.str();
  for (std::size_t pos = 0; pos < original.size(); pos += 5) {
    std::string corrupt = original;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x80);
    std::stringstream in(corrupt);
    try {
      const auto restored = flowtable::FlowMonitor::restore(in);
      (void)restored;  // undetectable (counter-value) corruption: no crash
    } catch (const std::exception&) {
      // structural corruption: loud failure
    }
  }
  SUCCEED();
}

// --- overload and saturation ---------------------------------------------------

TEST(FailureInjection, MonitorOverloadRejectsButKeepsServing) {
  flowtable::FlowMonitor monitor({.max_flows = 8,
                                  .counter_bits = 10,
                                  .max_flow_bytes = 1 << 20,
                                  .max_flow_packets = 1 << 12,
                                  .seed = 4});
  auto key = [](std::uint32_t i) {
    return flowtable::FiveTuple{i, 0, 0, 0, 6};
  };
  // 100 distinct flows through an 8-entry table.
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (!monitor.ingest(key(i), 100)) ++rejected;
  }
  EXPECT_EQ(rejected, 92u);
  EXPECT_EQ(monitor.table().rejected_flows(), 92u);
  // The 8 admitted flows are still fully functional.
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(monitor.ingest(key(i), 100));
    ASSERT_TRUE(monitor.query(key(i)).has_value());
  }
}

TEST(FailureInjection, DiscoAbsurdPacketLengthSaturatesCleanly) {
  // A single "packet" of 2^40 bytes against a counter provisioned for 1 MB:
  // must saturate, count the overflow, and leave neighbours untouched.
  core::DiscoArray array(4, 10, 1 << 20);
  util::Rng rng(5);
  array.add(1, std::uint64_t{1} << 40, rng);
  EXPECT_EQ(array.overflow_count(), 1u);
  EXPECT_EQ(array.value(1), 1023u);
  EXPECT_EQ(array.value(0), 0u);
  EXPECT_EQ(array.value(2), 0u);
  // Subsequent normal updates on other slots still work.
  array.add(2, 500, rng);
  EXPECT_GT(array.value(2), 0u);
}

TEST(FailureInjection, SacAdversarialAlternation) {
  // Alternating tiny/huge increments force SAC through its whole escalation
  // ladder repeatedly; the estimate must remain in the right ballpark.
  counters::SacArray sac(1, 10);
  util::Rng rng(6);
  std::uint64_t truth = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t l = (i % 2 == 0) ? 1 : 9000;
    sac.add(0, l, rng);
    truth += l;
  }
  EXPECT_NEAR(sac.estimate(0), static_cast<double>(truth),
              static_cast<double>(truth) * 0.5);
}

TEST(FailureInjection, BraidOverCapacityThrowsNotCorrupts) {
  counters::CounterBraids cb(counters::CounterBraids::Config{.flow_capacity = 4});
  cb.add(0, 100);
  EXPECT_THROW(cb.add(4, 100), std::out_of_range);
  EXPECT_THROW(cb.add(0xffffffff, 100), std::out_of_range);
  // Valid state unaffected.
  const auto decoded = cb.decode();
  EXPECT_EQ(decoded.counts[0], 100u);
}

// --- adversarial flow-table patterns ------------------------------------------

TEST(FailureInjection, FlowTableClusteredKeysStillResolve) {
  // Keys crafted to be near-identical (sequential ports, one host pair):
  // the avalanche hash must keep probes short and lookups correct.
  flowtable::FlowTable table(4096);
  for (std::uint16_t port = 0; port < 4000; ++port) {
    const flowtable::FiveTuple key{0x0a000001, 0x0a000002, port, 80, 6};
    const auto slot = table.insert_or_get(key);
    ASSERT_TRUE(slot.has_value());
  }
  EXPECT_EQ(table.size(), 4000u);
  EXPECT_LT(table.mean_probe_length(), 8.0);
  // Every key still resolves to its original slot.
  for (std::uint16_t port = 0; port < 4000; ++port) {
    const flowtable::FiveTuple key{0x0a000001, 0x0a000002, port, 80, 6};
    ASSERT_TRUE(table.find(key).has_value());
  }
}

TEST(FailureInjection, RotateUnderOverloadResetsRejectionPressure) {
  flowtable::FlowMonitor monitor({.max_flows = 4,
                                  .counter_bits = 10,
                                  .max_flow_bytes = 1 << 20,
                                  .max_flow_packets = 1 << 12,
                                  .seed = 8});
  auto key = [](std::uint32_t i) {
    return flowtable::FiveTuple{i, 9, 9, 9, 17};
  };
  for (std::uint32_t i = 0; i < 20; ++i) (void)monitor.ingest(key(i), 100);
  const auto report = monitor.rotate();
  EXPECT_EQ(report.flows.size(), 4u);
  // Fresh epoch: capacity available again for new flows.
  for (std::uint32_t i = 20; i < 24; ++i) {
    EXPECT_TRUE(monitor.ingest(key(i), 100)) << i;
  }
}

}  // namespace
}  // namespace disco
