// Unit tests for the open-addressing flow table.
#include "flowtable/flow_table.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/rng.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(i * 7 + 1),
                   static_cast<std::uint16_t>(443), 6};
}

TEST(FiveTuple, EqualityAndHash) {
  const FiveTuple a = tuple(1);
  FiveTuple b = tuple(1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash_tuple(a), hash_tuple(b));
  b.dst_port = 80;
  EXPECT_NE(a, b);
  EXPECT_NE(hash_tuple(a), hash_tuple(b));  // avalanche makes this near-sure
}

TEST(FlowTable, RejectsBadConfig) {
  EXPECT_THROW(FlowTable(0), std::invalid_argument);
  EXPECT_THROW(FlowTable(10, 0.99), std::invalid_argument);
  EXPECT_THROW(FlowTable(10, 0.0), std::invalid_argument);
}

TEST(FlowTable, InsertAssignsDenseSequentialSlots) {
  FlowTable table(100);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto slot = table.insert_or_get(tuple(i));
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(table.size(), 50u);
}

TEST(FlowTable, ReinsertReturnsSameSlot) {
  FlowTable table(10);
  const auto first = table.insert_or_get(tuple(3));
  const auto second = table.insert_or_get(tuple(3));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, FindWithoutInsert) {
  FlowTable table(10);
  EXPECT_FALSE(table.find(tuple(1)).has_value());
  (void)table.insert_or_get(tuple(1));
  const auto slot = table.find(tuple(1));
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 0u);
}

TEST(FlowTable, RejectsWhenFullAndCounts) {
  FlowTable table(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(table.insert_or_get(tuple(i)).has_value());
  }
  EXPECT_FALSE(table.insert_or_get(tuple(99)).has_value());
  EXPECT_EQ(table.rejected_flows(), 1u);
  // Existing flows still resolve after rejections.
  EXPECT_TRUE(table.insert_or_get(tuple(2)).has_value());
}

TEST(FlowTable, KeysMatchSlotOrder) {
  FlowTable table(10);
  for (std::uint32_t i = 0; i < 5; ++i) (void)table.insert_or_get(tuple(i * 3));
  const auto& keys = table.keys();
  ASSERT_EQ(keys.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(keys[i], tuple(i * 3));
  }
}

TEST(FlowTable, AgreesWithUnorderedMapUnderChurn) {
  FlowTable table(2000);
  std::unordered_map<FiveTuple, std::uint32_t> shadow;
  util::Rng rng(5);
  for (int op = 0; op < 50000; ++op) {
    const auto key = tuple(static_cast<std::uint32_t>(rng.uniform_u64(0, 1500)));
    const auto slot = table.insert_or_get(key);
    ASSERT_TRUE(slot.has_value());
    const auto [it, inserted] = shadow.emplace(key, *slot);
    if (!inserted) { ASSERT_EQ(it->second, *slot); }
  }
  EXPECT_EQ(table.size(), shadow.size());
}

TEST(FlowTable, ProbeLengthStaysModestBelowMaxLoad) {
  FlowTable table(10000, 0.75);
  for (std::uint32_t i = 0; i < 10000; ++i) (void)table.insert_or_get(tuple(i));
  // At 75% load linear probing averages a handful of probes.
  EXPECT_LT(table.mean_probe_length(), 4.0);
}

TEST(FlowTable, StorageAccountingNonZero) {
  FlowTable table(100);
  EXPECT_GT(table.storage_bits(), 100u * 8u);
}

}  // namespace
}  // namespace disco::flowtable
