// Unit tests for the fixed-point Log&Exp lookup table.
#include "util/log_table.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hpp"

namespace disco::util {
namespace {

TEST(LogExpTable, RejectsBadConfig) {
  LogExpTable::Config config;
  config.entries = 1;
  EXPECT_THROW(LogExpTable{config}, std::invalid_argument);
  config = {};
  config.pow_mantissa_bits = 2;
  EXPECT_THROW(LogExpTable{config}, std::invalid_argument);
  config = {};
  config.b = 1.0;
  EXPECT_THROW(LogExpTable{config}, std::invalid_argument);
}

TEST(LogExpTable, DefaultConfigMatchesPaperBudget) {
  // 3 K entries x 32-bit packed fields = 96 Kb of table proper.
  LogExpTable table(1.002);
  const std::size_t packed_bits = 3072u * 32u;
  EXPECT_EQ(packed_bits, 96u * 1024u);
  EXPECT_GE(table.storage_bits(), packed_bits);
  // Side shift bytes are small relative to the table.
  EXPECT_LE(table.storage_bits(), packed_bits * 2);
}

TEST(LogExpTable, AnchorsExact) {
  LogExpTable table(1.002);
  EXPECT_EQ(table.f(0), 0u);
  EXPECT_EQ(table.f(1), 1u);  // f(1) = 1 for every base
}

TEST(LogExpTable, QuantisedFTracksReal) {
  const double b = 1.002;
  LogExpTable table(b);
  GeometricScale scale(b);
  for (std::uint64_t c = 1; c < 3072; c += 13) {
    const double real = scale.f(static_cast<double>(c));
    const double quant = static_cast<double>(table.f(c));
    // 20-bit mantissa: relative error under ~2^-19 plus integer rounding.
    EXPECT_NEAR(quant, real, std::max(1.0, real * 4e-6)) << "c=" << c;
  }
}

TEST(LogExpTable, FStrictlyIncreasing) {
  // Strictly increasing until the true f leaves uint64 range, at which point
  // the quantised estimator saturates at UINT64_MAX and stays pinned there
  // (b=1.02 crosses near c ~ 3085).  Counter values that deep are orders of
  // magnitude past any physical byte count; monotonicity is all that update
  // probabilities and inverse_at_least() need.
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  for (double b : {1.0005, 1.002, 1.02}) {
    LogExpTable table(b);
    std::uint64_t prev = table.f(0);
    for (std::uint64_t c = 1; c < 3500; ++c) {  // crosses the table boundary
      const std::uint64_t cur = table.f(c);
      if (prev == kMax) {
        ASSERT_EQ(cur, kMax) << "b=" << b << " c=" << c;  // stays saturated
      } else {
        ASSERT_GT(cur, prev) << "b=" << b << " c=" << c;
      }
      prev = cur;
    }
  }
}

TEST(LogExpTable, ShiftAndSumExtensionTracksReal) {
  const double b = 1.002;
  LogExpTable table(b);
  GeometricScale scale(b);
  for (std::uint64_t c : {3072ull, 3500ull, 4095ull, 6000ull}) {
    const double real = scale.f(static_cast<double>(c));
    const double quant = static_cast<double>(table.f(c));
    // The extension multiplies by the 12-bit step mantissa of b^(entries-1),
    // so its relative error is bounded by ~2^-11 per peeled chunk.
    EXPECT_NEAR(quant, real, real * 1e-3) << "c=" << c;
  }
}

TEST(LogExpTable, DeepShiftAndSumExtension) {
  // c beyond 2x the table length peels multiple chunks; growth must stay
  // monotone and within the compounding per-chunk mantissa error.
  const double b = 1.002;
  LogExpTable table(b);
  GeometricScale scale(b);
  std::uint64_t prev = 0;
  for (std::uint64_t c = 6200; c <= 9300; c += 310) {  // 2-3 chunks deep
    const std::uint64_t quant = table.f(c);
    ASSERT_GT(quant, prev) << "c=" << c;
    prev = quant;
    const double real = scale.f(static_cast<double>(c));
    EXPECT_NEAR(static_cast<double>(quant), real, real * 3e-3) << "c=" << c;
  }
}

TEST(LogExpTable, StepTracksRealIncrement) {
  const double b = 1.01;
  LogExpTable table(b);
  GeometricScale scale(b);
  for (std::uint64_t c = 0; c < 3072; c += 97) {
    const double real = scale.step(static_cast<double>(c));  // b^c
    const double quant = static_cast<double>(table.step(c));
    // 12-bit mantissa: ~2^-11 relative error plus rounding to >= 1.
    EXPECT_NEAR(quant, real, std::max(1.0, real * 1e-3)) << "c=" << c;
  }
}

TEST(LogExpTable, InverseAtLeastIsExactOnTableValues) {
  LogExpTable table(1.002);
  for (std::uint64_t j : {1ull, 2ull, 57ull, 400ull, 3000ull, 3400ull}) {
    const std::uint64_t target = table.f(j);
    // Smallest index whose f reaches f(j) is j itself (strict monotonicity).
    EXPECT_EQ(table.inverse_at_least(target, 0), j) << "j=" << j;
  }
}

TEST(LogExpTable, InverseAtLeastBracketsArbitraryTargets) {
  LogExpTable table(1.004);
  for (std::uint64_t target : {2ull, 100ull, 54321ull, 1000000ull}) {
    const std::uint64_t j = table.inverse_at_least(target, 0);
    ASSERT_GE(table.f(j), target);
    ASSERT_LT(table.f(j - 1), target);
  }
}

TEST(LogExpTable, InverseBeyondTableUsesExtension) {
  // Targets whose preimage lies past the table end must resolve through the
  // shift-and-sum extension and still bracket correctly.
  LogExpTable table(1.001);  // slow growth: f(3071) is modest, inverse lands high
  const std::uint64_t far_target = table.f(4000) + 5;
  const std::uint64_t j = table.inverse_at_least(far_target, 100);
  ASSERT_GT(j, 3072u);
  ASSERT_GE(table.f(j), far_target);
  ASSERT_LT(table.f(j - 1), far_target);
}

TEST(LogExpTable, InverseRespectsLowerBoundCounter) {
  LogExpTable table(1.004);
  // Starting from c, the result must exceed c even for tiny targets.
  const std::uint64_t c = 500;
  const std::uint64_t target = table.f(c) + 1;
  const std::uint64_t j = table.inverse_at_least(target, c);
  EXPECT_EQ(j, c + 1);
}

TEST(LogExpTable, ResolutionAblationImprovesAccuracy) {
  // More mantissa bits => tighter f; the ablation bench relies on this.
  const double b = 1.002;
  GeometricScale scale(b);
  LogExpTable::Config coarse;
  coarse.b = b;
  coarse.pow_mantissa_bits = 12;
  LogExpTable::Config fine;
  fine.b = b;
  fine.pow_mantissa_bits = 24;
  LogExpTable coarse_table(coarse);
  LogExpTable fine_table(fine);
  double coarse_err = 0.0;
  double fine_err = 0.0;
  for (std::uint64_t c = 100; c < 3000; c += 50) {
    const double real = scale.f(static_cast<double>(c));
    coarse_err += std::fabs(static_cast<double>(coarse_table.f(c)) - real) / real;
    fine_err += std::fabs(static_cast<double>(fine_table.f(c)) - real) / real;
  }
  EXPECT_LT(fine_err, coarse_err);
}

class LogTableBaseTest : public ::testing::TestWithParam<double> {};

TEST_P(LogTableBaseTest, MonotoneAndAnchoredForAllBases) {
  LogExpTable table(GetParam());
  EXPECT_EQ(table.f(0), 0u);
  EXPECT_GE(table.f(1), 1u);
  std::uint64_t prev = 0;
  for (std::uint64_t c = 1; c < 2000; c += 3) {
    const std::uint64_t cur = table.f(c);
    ASSERT_GT(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, LogTableBaseTest,
                         ::testing::Values(1.0002, 1.001, 1.002, 1.005, 1.01,
                                           1.02, 1.05, 1.1));

}  // namespace
}  // namespace disco::util
