// Tests for FlowMonitor measurement epochs and checkpoint/restore.
#include <gtest/gtest.h>

#include <sstream>

#include "flowtable/monitor.hpp"
#include "trace/synthetic.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0xac100000u + i, 0x08080808u,
                   static_cast<std::uint16_t>(40000 + i), 53, 17};
}

FlowMonitor::Config config() {
  FlowMonitor::Config c;
  c.max_flows = 256;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 24;
  c.max_flow_packets = 1 << 16;
  c.seed = 31337;
  return c;
}

TEST(MonitorEpochs, RotateReportsAndClears) {
  FlowMonitor monitor(config());
  for (int i = 0; i < 500; ++i) (void)monitor.ingest(tuple(i % 5), 700);
  EXPECT_EQ(monitor.epoch(), 0u);

  const auto report = monitor.rotate();
  EXPECT_EQ(report.epoch, 0u);
  EXPECT_EQ(report.flows.size(), 5u);
  EXPECT_NEAR(report.totals.bytes, 500.0 * 700, 500.0 * 700 * 0.2);

  // The monitor is fresh: epoch advanced, no flows, zero totals.
  EXPECT_EQ(monitor.epoch(), 1u);
  EXPECT_EQ(monitor.table().size(), 0u);
  EXPECT_DOUBLE_EQ(monitor.totals().bytes, 0.0);
  EXPECT_FALSE(monitor.query(tuple(0)).has_value());
}

TEST(MonitorEpochs, CapacityAvailableAgainAfterRotate) {
  auto c = config();
  c.max_flows = 4;
  FlowMonitor monitor(c);
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(monitor.ingest(tuple(i), 100));
  EXPECT_FALSE(monitor.ingest(tuple(9), 100));
  (void)monitor.rotate();
  // New epoch: previously-rejected flow now fits.
  EXPECT_TRUE(monitor.ingest(tuple(9), 100));
}

TEST(MonitorEpochs, SuccessiveEpochsIndependent) {
  FlowMonitor monitor(config());
  for (int i = 0; i < 200; ++i) (void)monitor.ingest(tuple(1), 500);
  const auto first = monitor.rotate();
  for (int i = 0; i < 200; ++i) (void)monitor.ingest(tuple(1), 500);
  const auto second = monitor.rotate();
  EXPECT_EQ(second.epoch, 1u);
  // Same flow, same traffic: estimates agree across epochs within noise.
  ASSERT_EQ(first.flows.size(), 1u);
  ASSERT_EQ(second.flows.size(), 1u);
  EXPECT_NEAR(first.flows[0].bytes, second.flows[0].bytes,
              first.flows[0].bytes * 0.3);
}

TEST(MonitorSnapshot, RoundTripPreservesEverything) {
  FlowMonitor original(config());
  util::Rng traffic(5);
  for (int i = 0; i < 3000; ++i) {
    (void)original.ingest(tuple(static_cast<std::uint32_t>(traffic.uniform_u64(0, 40))),
                          static_cast<std::uint32_t>(traffic.uniform_u64(64, 1500)));
  }

  std::stringstream buf;
  original.snapshot(buf);
  FlowMonitor restored = FlowMonitor::restore(buf);

  EXPECT_EQ(restored.packets_seen(), original.packets_seen());
  EXPECT_EQ(restored.epoch(), original.epoch());
  EXPECT_EQ(restored.table().size(), original.table().size());
  for (std::uint32_t i = 0; i <= 40; ++i) {
    const auto a = original.query(tuple(i));
    const auto b = restored.query(tuple(i));
    ASSERT_EQ(a.has_value(), b.has_value()) << i;
    if (a) {
      EXPECT_DOUBLE_EQ(a->bytes, b->bytes) << i;
      EXPECT_DOUBLE_EQ(a->packets, b->packets) << i;
    }
  }
}

TEST(MonitorSnapshot, ResumedStreamIsBitExact) {
  // A monitor restored from a snapshot must continue *identically* to the
  // original (same RNG stream position), so monitoring survives restarts
  // without statistical discontinuity.
  FlowMonitor a(config());
  for (int i = 0; i < 1000; ++i) (void)a.ingest(tuple(i % 7), 800);

  std::stringstream buf;
  a.snapshot(buf);
  FlowMonitor b = FlowMonitor::restore(buf);

  for (int i = 0; i < 1000; ++i) {
    (void)a.ingest(tuple(i % 7), 800);
    (void)b.ingest(tuple(i % 7), 800);
  }
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(a.query(tuple(i))->bytes, b.query(tuple(i))->bytes) << i;
  }
}

TEST(MonitorSnapshot, RejectsGarbage) {
  std::stringstream buf;
  buf << "this is not a snapshot";
  EXPECT_THROW((void)FlowMonitor::restore(buf), std::runtime_error);
}

TEST(MonitorSnapshot, RejectsTruncated) {
  FlowMonitor monitor(config());
  for (int i = 0; i < 100; ++i) (void)monitor.ingest(tuple(i % 3), 500);
  std::stringstream buf;
  monitor.snapshot(buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)FlowMonitor::restore(cut), std::runtime_error);
}

}  // namespace
}  // namespace disco::flowtable
