// AdditiveErrorArray: unit coverage plus the statistical regressions that
// pin its accuracy claims (unbiasedness through halve-all rescales and
// merges, and the additive_error_sd envelope from core/theory.hpp), in the
// style of the DISCO pressure-layer suites: fixed seeds, fixed workloads,
// deterministic outcomes.  Ends with FlowMonitor end-to-end coverage of
// Config.estimator == AdditiveError.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/additive.hpp"
#include "core/theory.hpp"
#include "flowtable/monitor.hpp"
#include "util/rng.hpp"

namespace disco::core {
namespace {

// --- unit behaviour ---------------------------------------------------------

TEST(AdditiveErrorArray, ExactAtScaleZero) {
  // Before the first overflow the scale is 0, the grid is 1 byte, and every
  // update lands exactly: the additive estimator starts as a plain counter.
  AdditiveErrorArray array(4, 20);
  util::Rng rng(0x1);
  array.add(0, 1000, rng);
  array.add(0, 337, rng);
  array.add(2, 65535, rng);
  EXPECT_EQ(array.scale(), 0u);
  EXPECT_EQ(array.unit(), 1.0);
  EXPECT_EQ(array.rescale_count(), 0u);
  EXPECT_EQ(array.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(array.estimate(0), 1337.0);
  EXPECT_DOUBLE_EQ(array.estimate(1), 0.0);
  EXPECT_DOUBLE_EQ(array.estimate(2), 65535.0);
  EXPECT_EQ(array.max_value(), 65535u);
}

TEST(AdditiveErrorArray, AddDrawsExactlyOnceAndZeroIsFree) {
  // The hot-path contract CounterBank relies on: one draw per positive
  // update (mirroring DiscoArray::add), none for l == 0.
  AdditiveErrorArray array(1, 16);
  util::Rng rng(0x2c0ffee);
  util::Rng shadow(0x2c0ffee);
  array.add(0, 4096, rng);
  (void)shadow.next_double();
  EXPECT_EQ(rng.next(), shadow.next());
  array.add(0, 0, rng);  // no-op: no draw
  EXPECT_EQ(rng.next(), shadow.next());
}

TEST(AdditiveErrorArray, SetValueRejectsOverWidth) {
  AdditiveErrorArray array(2, 8);
  array.set_value(0, 255);
  EXPECT_EQ(array.value(0), 255u);
  EXPECT_THROW(array.set_value(0, 256), std::out_of_range);
}

TEST(AdditiveErrorArray, ResetRestoresExactScale) {
  // reset() starts a new epoch: counters zeroed AND the scale re-exacted
  // (unlike DiscoArray, whose rescaled b is permanent).  The halve-all
  // tally stays cumulative -- it feeds the monitor's pressure watermark.
  AdditiveErrorArray array(1, 8);
  util::Rng rng(0x7);
  array.add(0, 100000, rng);  // forces several halvings into 8 bits
  ASSERT_GT(array.scale(), 0u);
  const std::uint64_t halvings = array.rescale_count();
  ASSERT_GE(halvings, 1u);
  array.reset();
  EXPECT_EQ(array.scale(), 0u);
  EXPECT_EQ(array.value(0), 0u);
  EXPECT_EQ(array.rescale_count(), halvings);
  array.add(0, 200, rng);
  EXPECT_DOUBLE_EQ(array.estimate(0), 200.0);  // exact again post-reset
}

TEST(AdditiveErrorArray, MergeRejectsGeometryMismatch) {
  util::Rng rng(0x9);
  const AdditiveErrorArray a(4, 8);
  const AdditiveErrorArray b(8, 8);
  const AdditiveErrorArray c(4, 10);
  EXPECT_THROW((void)AdditiveErrorArray::merge(a, b, rng), std::invalid_argument);
  EXPECT_THROW((void)AdditiveErrorArray::merge(a, c, rng), std::invalid_argument);
}

TEST(AdditiveErrorArray, MergeRetriesAtHigherScaleOnOverflow) {
  // Two near-full scale-0 arrays cannot merge at scale 0 (250 + 250 > 255),
  // so the merge must retry one scale up and still land near the sum.
  util::Rng rng(0x11);
  AdditiveErrorArray a(1, 8);
  AdditiveErrorArray b(1, 8);
  a.set_value(0, 250);
  b.set_value(0, 250);
  const AdditiveErrorArray merged = AdditiveErrorArray::merge(a, b, rng);
  EXPECT_GE(merged.scale(), 1u);
  // Each operand rounds once per halving step: at scale 1 the estimate can
  // move by at most unit() per operand.
  EXPECT_NEAR(merged.estimate(0), 500.0, 2.0 * merged.unit());
}

TEST(Theory, AdditiveErrorSdFormula) {
  // sd = unit * sqrt(roundings) / 2 -- each grid rounding is mean-zero with
  // variance at most unit^2 / 4.
  EXPECT_DOUBLE_EQ(theory::additive_error_sd(1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(theory::additive_error_sd(2.0, 4), 2.0);
  EXPECT_DOUBLE_EQ(theory::additive_error_sd(512.0, 100), 2560.0);
}

// --- statistical regressions (pinned seeds) ---------------------------------

TEST(AdditiveRegression, HalvingKeepsEstimatesUnbiasedWithin3Sigma) {
  // The additive analogue of RescaleBEstimatesUnbiasedWithin3Sigma
  // (test_disco_properties.cpp): 400 independent trials of one 8-bit
  // counter driven to 64 KiB in 1 KiB bursts, far past its 255-count width,
  // so every trial rescales repeatedly.  Randomized-rounding halvings
  // promise E[halved] = c/2, so the mean estimate must sit within 3 sigma
  // of the true volume -- a halve-all that truncated would bias low and
  // trip this.
  constexpr int kTrials = 400;
  constexpr std::uint64_t kTrue = 1 << 16;
  constexpr std::uint64_t kBurst = 1024;
  constexpr std::uint64_t kBursts = kTrue / kBurst;

  double sum = 0.0;
  double final_unit = 0.0;
  std::uint64_t max_halvings = 0;
  for (int t = 0; t < kTrials; ++t) {
    util::Rng rng(0xadd1 + static_cast<std::uint64_t>(t));
    AdditiveErrorArray array(1, 8);
    for (std::uint64_t sent = 0; sent < kTrue; sent += kBurst) {
      array.add(0, kBurst, rng);
    }
    EXPECT_GE(array.rescale_count(), 1u);
    sum += array.estimate(0);
    final_unit = array.unit();
    max_halvings = std::max(max_halvings, array.rescale_count());
  }
  const double mean = sum / kTrials;
  // Conservative per-trial roundings bound at the FINAL (largest) unit: one
  // per add, plus one counter rounding and one increment rounding per
  // halve-all.
  const double sigma =
      theory::additive_error_sd(final_unit, kBursts + 2 * max_halvings);
  EXPECT_NEAR(mean, static_cast<double>(kTrue),
              3.0 * sigma / std::sqrt(static_cast<double>(kTrials)));
}

TEST(AdditiveRegression, MergeIsUnbiasedWithin3Sigma) {
  // 300 trials: two single-slot arrays at (typically) different scales are
  // merged; the mean merged estimate must match the summed traffic.  The
  // scale-alignment shift_down is where a floor instead of a randomized
  // rounding would bias low.
  constexpr int kTrials = 300;
  constexpr std::uint64_t kTrueA = 50000;  // rescales an 8-bit counter
  constexpr std::uint64_t kTrueB = 200;    // stays exact at scale 0

  double sum = 0.0;
  double final_unit = 0.0;
  std::uint64_t max_halvings = 0;
  for (int t = 0; t < kTrials; ++t) {
    util::Rng rng(0x3e16e + static_cast<std::uint64_t>(t));
    AdditiveErrorArray a(1, 8);
    AdditiveErrorArray b(1, 8);
    for (int i = 0; i < 50; ++i) a.add(0, kTrueA / 50, rng);
    for (int i = 0; i < 4; ++i) b.add(0, kTrueB / 4, rng);
    ASSERT_GT(a.scale(), b.scale());
    const AdditiveErrorArray merged = AdditiveErrorArray::merge(a, b, rng);
    EXPECT_EQ(merged.rescale_count(), a.rescale_count() + b.rescale_count());
    sum += merged.estimate(0);
    final_unit = std::max(final_unit, merged.unit());
    max_halvings = std::max(max_halvings, merged.rescale_count());
  }
  const double mean = sum / kTrials;
  const double sigma =
      theory::additive_error_sd(final_unit, 54 + 2 * max_halvings + 2);
  EXPECT_NEAR(mean, static_cast<double>(kTrueA + kTrueB),
              3.0 * sigma / std::sqrt(static_cast<double>(kTrials)));
}

TEST(AdditiveRegression, ZipfErrorsWithinTheoryEnvelope) {
  // Zipf(1.0) burst trace (the RapZipfHeavyHitters workload shape) into one
  // AdditiveErrorArray: every top-100 flow's absolute error must sit inside
  // 6x the additive_error_sd envelope computed from its own rounding count,
  // and the aggregate estimate must track total traffic.  Pinned seed =>
  // deterministic outcome; a regression in add()'s rounding or halve_all
  // moves these errors by orders of magnitude, not fractions.
  constexpr std::uint32_t kFlows = 4096;
  constexpr std::uint32_t kBursts = 200000;
  constexpr std::uint64_t kBurstBytes = 999;  // never a multiple of 2^s

  std::vector<double> cdf(kFlows);
  double h = 0.0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    h += 1.0 / static_cast<double>(i + 1);
    cdf[i] = h;
  }
  for (double& x : cdf) x /= h;

  AdditiveErrorArray array(kFlows, 16);
  util::Rng rng(0x21bf);
  util::Rng trace_rng(0x217f);
  std::vector<double> truth(kFlows, 0.0);
  std::vector<std::uint64_t> adds(kFlows, 0);
  for (std::uint32_t burst = 0; burst < kBursts; ++burst) {
    const double u = trace_rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto flow = static_cast<std::uint32_t>(it - cdf.begin());
    truth[flow] += static_cast<double>(kBurstBytes);
    array.add(flow, kBurstBytes, rng);
    ++adds[flow];
  }
  ASSERT_GE(array.rescale_count(), 1u);  // 16-bit counters must have halved

  double est_total = 0.0, true_total = 0.0;
  std::uint64_t total_roundings = 0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    est_total += array.estimate(i);
    true_total += truth[i];
    total_roundings += adds[i] + array.rescale_count();
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    const double sd = theory::additive_error_sd(
        array.unit(), adds[i] + array.rescale_count());
    EXPECT_LE(std::abs(array.estimate(i) - truth[i]), 6.0 * sd)
        << "flow " << i << ": est " << array.estimate(i) << " truth "
        << truth[i] << " unit " << array.unit();
  }
  // Per-flow errors are independent draws, so the total's sd adds in
  // quadrature -- the same envelope with the summed rounding count.
  EXPECT_NEAR(est_total, true_total,
              6.0 * theory::additive_error_sd(array.unit(), total_roundings));
}

// --- FlowMonitor integration ------------------------------------------------

flowtable::FiveTuple tuple_of(std::uint32_t i) {
  return flowtable::FiveTuple{0x0a000000u + i, 0xc0a80001u,
                              static_cast<std::uint16_t>(1024 + (i & 0x3fff)),
                              443, 17};
}

TEST(AdditiveMonitor, ExactEstimatesBeforeFirstRescale) {
  // With 16-bit counters and per-flow totals under 2^16, additive mode is a
  // plain exact counter: queries and totals must equal ground truth to the
  // bit, something DISCO mode can never promise.
  flowtable::FlowMonitor::Config config;
  config.max_flows = 1024;
  config.counter_bits = 16;
  config.estimator = flowtable::EstimatorKind::AdditiveError;
  config.seed = 0xadd;
  flowtable::FlowMonitor monitor(config);

  constexpr std::uint32_t kFlows = 300;
  constexpr int kBurstsPerFlow = 20;
  for (int r = 0; r < kBurstsPerFlow; ++r) {
    for (std::uint32_t i = 0; i < kFlows; ++i) {
      ASSERT_TRUE(monitor.ingest_burst(tuple_of(i), 1400, 3));
    }
  }
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    const auto est = monitor.query(tuple_of(i));
    ASSERT_TRUE(est.has_value());
    EXPECT_DOUBLE_EQ(est->bytes, 1400.0 * kBurstsPerFlow);
    EXPECT_DOUBLE_EQ(est->packets, 3.0 * kBurstsPerFlow);
  }
  const auto totals = monitor.totals();
  EXPECT_DOUBLE_EQ(totals.bytes, 1400.0 * kBurstsPerFlow * kFlows);
  EXPECT_DOUBLE_EQ(totals.packets, 3.0 * kBurstsPerFlow * kFlows);
  EXPECT_EQ(totals.flows, kFlows);
}

TEST(AdditiveMonitor, RotateReportsErrorUnitInsteadOfBase) {
  flowtable::FlowMonitor::Config config;
  config.max_flows = 256;
  config.counter_bits = 12;  // 4095 max: one elephant flow forces halvings
  config.estimator = flowtable::EstimatorKind::AdditiveError;
  config.seed = 0xadd2;
  flowtable::FlowMonitor monitor(config);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(monitor.ingest_burst(tuple_of(0), 1400, 1));
  }
  auto report = monitor.rotate();
  // Additive mode: no DISCO base -- b == 1.0 marks the estimates exact-in-
  // expectation for the modules layer (confidence intervals degenerate),
  // and the additive grid rides in volume_error_unit.
  EXPECT_DOUBLE_EQ(report.volume_b, 1.0);
  EXPECT_DOUBLE_EQ(report.size_b, 1.0);
  // 200 * 1400 = 280000 >> 4095: the volume array must have halved, so its
  // grid is a real power of two > 1.  Sizes (200 packets) stayed exact.
  EXPECT_GE(report.volume_error_unit, 2.0);
  EXPECT_DOUBLE_EQ(report.size_error_unit, 1.0);
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_NEAR(report.flows[0].bytes, 280000.0,
              6.0 * theory::additive_error_sd(
                        report.volume_error_unit,
                        200 + 2 * monitor.pressure().rescale_events));
  EXPECT_GT(monitor.pressure().rescale_events, 0u);

  // Next epoch starts exact again (reset() re-exacts the scale).
  ASSERT_TRUE(monitor.ingest_burst(tuple_of(1), 100, 1));
  const auto report2 = monitor.rotate();
  EXPECT_DOUBLE_EQ(report2.volume_error_unit, 1.0);
  ASSERT_EQ(report2.flows.size(), 1u);
  EXPECT_DOUBLE_EQ(report2.flows[0].bytes, 100.0);
}

TEST(AdditiveMonitor, SnapshotThrows) {
  // The v3 snapshot format stores an effective DISCO base; additive mode
  // has none and must refuse loudly rather than write a lying snapshot.
  flowtable::FlowMonitor::Config config;
  config.estimator = flowtable::EstimatorKind::AdditiveError;
  flowtable::FlowMonitor monitor(config);
  ASSERT_TRUE(monitor.ingest(tuple_of(0), 100));
  std::ostringstream out;
  EXPECT_THROW(monitor.snapshot(out), std::runtime_error);
}

TEST(AdditiveMonitor, BatchedPrefetchPathIsBitIdentical) {
  // The two-phase prefetch walk must preserve the RNG stream for additive
  // counters too (their add() draws once per update, like DISCO's): same
  // bursts, prefetch_depth 0 vs 8, bit-identical estimates and reports.
  flowtable::FlowMonitor::Config base;
  base.max_flows = 512;
  base.counter_bits = 12;
  base.estimator = flowtable::EstimatorKind::AdditiveError;
  base.seed = 0xfe7c;
  auto single = base;
  single.prefetch_depth = 0;
  single.telemetry_prefix = "additive_single";
  auto batched = base;
  batched.prefetch_depth = 8;
  batched.telemetry_prefix = "additive_batched";
  flowtable::FlowMonitor mono(single);
  flowtable::FlowMonitor duo(batched);

  std::vector<flowtable::FlowBurst> bursts;
  util::Rng rng(0xbeef);
  for (int i = 0; i < 5000; ++i) {
    bursts.push_back(flowtable::FlowBurst{
        tuple_of(static_cast<std::uint32_t>(rng.uniform_u64(0, 700))),
        rng.uniform_u64(64, 9000), rng.uniform_u64(1, 6), 0});
  }
  ASSERT_EQ(mono.ingest_batch(bursts), duo.ingest_batch(bursts));
  for (std::uint32_t i = 0; i <= 700; ++i) {
    const auto a = mono.query(tuple_of(i));
    const auto b = duo.query(tuple_of(i));
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_DOUBLE_EQ(a->bytes, b->bytes);
      EXPECT_DOUBLE_EQ(a->packets, b->packets);
    }
  }
  const auto ra = mono.rotate();
  const auto rb = duo.rotate();
  EXPECT_DOUBLE_EQ(ra.totals.bytes, rb.totals.bytes);
  EXPECT_DOUBLE_EQ(ra.totals.packets, rb.totals.packets);
  EXPECT_DOUBLE_EQ(ra.volume_error_unit, rb.volume_error_unit);
}

}  // namespace
}  // namespace disco::core
