// Tests for DISCO counter merging (distributed aggregation) and the
// Theorem 2-based confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

namespace disco::core {
namespace {

TEST(Merge, ZeroCountersAreIdentity) {
  DiscoParams params(1.01);
  util::Rng rng(1);
  EXPECT_EQ(params.merge(0, 0, rng), 0u);
  EXPECT_EQ(params.merge(42, 0, rng), 42u);
  EXPECT_EQ(params.merge(0, 42, rng), 42u);
}

TEST(Merge, ResultAtLeastMaxInput) {
  DiscoParams params(1.02);
  util::Rng rng(2);
  for (std::uint64_t c1 : {1ull, 50ull, 300ull}) {
    for (std::uint64_t c2 : {1ull, 50ull, 300ull}) {
      const std::uint64_t m = params.merge(c1, c2, rng);
      ASSERT_GE(m, std::max(c1, c2)) << c1 << "," << c2;
    }
  }
}

TEST(Merge, UnbiasedCombination) {
  // E[f(merge(c1, c2))] = f(c1) + f(c2): the merged counter estimates the
  // union traffic.
  const DiscoParams params(1.02);
  util::Rng rng(3);
  const std::uint64_t c1 = 200;
  const std::uint64_t c2 = 180;
  const double expected = params.estimate(c1) + params.estimate(c2);
  const int runs = 20000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    sum += params.estimate(params.merge(c1, c2, rng));
  }
  EXPECT_NEAR(sum / runs, expected, expected * 0.01);
}

TEST(Merge, DistributedCountingMatchesCentralizedInExpectation) {
  // Split one flow's packets across two "shards", merge the counters, and
  // compare with counting centrally: both must estimate the total traffic.
  const DiscoParams params(1.015);
  util::Rng rng(4);
  const int runs = 3000;
  double sum_merged = 0.0;
  double sum_central = 0.0;
  const std::uint64_t truth = 200000;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t shard_a = 0;
    std::uint64_t shard_b = 0;
    std::uint64_t central = 0;
    std::uint64_t sent = 0;
    bool flip = false;
    while (sent < truth) {
      const std::uint64_t l = 500;
      (flip ? shard_a : shard_b) = params.update(flip ? shard_a : shard_b, l, rng);
      central = params.update(central, l, rng);
      flip = !flip;
      sent += l;
    }
    sum_merged += params.estimate(params.merge(shard_a, shard_b, rng));
    sum_central += params.estimate(central);
  }
  EXPECT_NEAR(sum_merged / runs, static_cast<double>(truth), truth * 0.01);
  EXPECT_NEAR(sum_central / runs, static_cast<double>(truth), truth * 0.01);
}

TEST(Merge, ChainAggregationStaysUnbiased) {
  // Merging many shard counters sequentially (epoch aggregation).
  const DiscoParams params(1.05);
  util::Rng rng(5);
  const std::vector<std::uint64_t> shards = {30, 45, 12, 60, 25};
  double expected = 0.0;
  for (auto c : shards) expected += params.estimate(c);
  const int runs = 8000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t acc = 0;
    for (auto c : shards) acc = params.merge(acc, c, rng);
    sum += params.estimate(acc);
  }
  EXPECT_NEAR(sum / runs, expected, expected * 0.02);
}

TEST(ConfidenceInterval, RejectsBadConfidence) {
  DiscoParams params(1.01);
  EXPECT_THROW((void)params.confidence_interval(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)params.confidence_interval(10, 1.0), std::invalid_argument);
}

TEST(ConfidenceInterval, BracketsEstimateSymmetrically) {
  DiscoParams params(1.01);
  const auto ci = params.confidence_interval(500, 0.95);
  EXPECT_LT(ci.low, ci.estimate);
  EXPECT_GT(ci.high, ci.estimate);
  EXPECT_NEAR(ci.estimate - ci.low, ci.high - ci.estimate, 1e-6 * ci.estimate);
  // Relative half-width = z(0.975) * sqrt((b-1)/(b+1)) ~ 1.96 * 0.0705.
  EXPECT_NEAR((ci.high - ci.estimate) / ci.estimate, 1.96 * 0.0705, 0.002);
}

TEST(ConfidenceInterval, WidensWithConfidence) {
  DiscoParams params(1.02);
  const auto narrow = params.confidence_interval(300, 0.80);
  const auto wide = params.confidence_interval(300, 0.99);
  EXPECT_LT(narrow.high - narrow.low, wide.high - wide.low);
}

TEST(ConfidenceInterval, EmpiricalCoverageAtLeastNominal) {
  // The bound-based interval is conservative: empirical coverage of the true
  // traffic must be >= the nominal level.
  const DiscoParams params(1.02);
  util::Rng rng(6);
  const std::uint64_t truth = 100000;
  int covered = 0;
  const int runs = 2000;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      c = params.update(c, 500, rng);
      sent += 500;
    }
    const auto ci = params.confidence_interval(c, 0.95);
    if (static_cast<double>(truth) >= ci.low &&
        static_cast<double>(truth) <= ci.high) {
      ++covered;
    }
  }
  EXPECT_GE(static_cast<double>(covered) / runs, 0.95);
}

}  // namespace
}  // namespace disco::core
