// Unit coverage for the analysis-module layer: epoch subscriptions on all
// three monitors, every built-in module against hand-built epoch reports,
// the ModuleHost lifecycle, and the name-based factory.  Statistical
// validation against ground truth on seeded Zipf traces lives in
// test_modules_statistical.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "flowtable/monitor.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "modules/active_flows.hpp"
#include "modules/anomaly_ewma.hpp"
#include "modules/application.hpp"
#include "modules/autofocus.hpp"
#include "modules/confidence.hpp"
#include "modules/host.hpp"
#include "modules/scanner.hpp"
#include "modules/top_keys.hpp"
#include "pipeline/pipeline.hpp"
#include "telemetry/registry.hpp"

namespace disco::modules {
namespace {

using flowtable::FiveTuple;

FiveTuple tuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t dst_port, std::uint8_t protocol = 6) {
  return FiveTuple{src_ip, dst_ip, 40000, dst_port, protocol};
}

/// Hand-built epoch report with exact estimates (volume_b/size_b = 1 makes
/// every confidence interval degenerate, so assertions are equalities).
EpochReport make_report(std::uint64_t epoch,
                        std::vector<FlowEstimate> flows) {
  EpochReport report;
  report.epoch = epoch;
  report.volume_b = 1.0;
  report.size_b = 1.0;
  for (const auto& f : flows) {
    report.totals.bytes += f.bytes;
    report.totals.packets += f.packets;
  }
  report.totals.flows = flows.size();
  report.flows = std::move(flows);
  return report;
}

// --- epoch subscriptions ----------------------------------------------------

TEST(EpochSubscription, FlowMonitorNotifiesOnRotate) {
  flowtable::FlowMonitor monitor({.max_flows = 64, .counter_bits = 10});
  std::vector<EpochReport> seen;
  monitor.subscribe([&](const EpochReport& r) { seen.push_back(r); });
  EXPECT_EQ(monitor.subscriber_count(), 1u);

  monitor.ingest(tuple(1, 2, 80), 1000);
  monitor.ingest(tuple(1, 3, 443), 500);
  const auto report = monitor.rotate();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].epoch, report.epoch);
  EXPECT_EQ(seen[0].flows.size(), 2u);
  EXPECT_GT(seen[0].volume_b, 1.0);
  EXPECT_GT(seen[0].size_b, 1.0);

  (void)monitor.rotate();
  EXPECT_EQ(seen.size(), 2u);  // every rotation notifies, even empty ones
}

TEST(EpochSubscription, NullSubscriberIsIgnored) {
  flowtable::FlowMonitor monitor({.max_flows = 16, .counter_bits = 8});
  monitor.subscribe(nullptr);
  EXPECT_EQ(monitor.subscriber_count(), 0u);
  (void)monitor.rotate();  // must not crash
}

TEST(EpochSubscription, ShardedMonitorNotifiesOnceWithMergedReport) {
  flowtable::ShardedFlowMonitor monitor(
      {.base = {.max_flows = 256, .counter_bits = 10}, .shards = 4});
  std::vector<EpochReport> seen;
  monitor.subscribe([&](const EpochReport& r) { seen.push_back(r); });

  for (std::uint32_t i = 0; i < 40; ++i) {
    monitor.ingest(tuple(i, 1000 + i, 80), 700);
  }
  const auto merged = monitor.rotate();

  ASSERT_EQ(seen.size(), 1u);  // merged report, not one per shard
  EXPECT_EQ(seen[0].flows.size(), 40u);
  EXPECT_EQ(seen[0].flows.size(), merged.flows.size());
  EXPECT_GT(seen[0].volume_b, 1.0);  // max over shards survived the merge
}

TEST(EpochSubscription, PipelineMonitorNotifiesWithMergedReport) {
  pipeline::PipelineMonitor::Config config;
  config.base = {.max_flows = 256, .counter_bits = 10};
  config.workers = 2;
  config.producers = 1;
  pipeline::PipelineMonitor monitor(config);

  std::vector<EpochReport> seen;
  monitor.subscribe([&](const EpochReport& r) { seen.push_back(r); });

  for (std::uint32_t i = 0; i < 40; ++i) {
    monitor.ingest(0, tuple(i, 1000 + i, 80), 700);
  }
  monitor.drain();
  const auto merged = monitor.rotate();
  monitor.stop();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].flows.size(), merged.flows.size());
  EXPECT_EQ(seen[0].flows.size(), 40u);
}

// --- confidence accumulator -------------------------------------------------

TEST(EstimateAccumulator, AggregateIntervalIsTighterThanNaiveSum) {
  EstimateAccumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(1000.0);
  const double b = 1.05;
  const auto ci = acc.interval(b, 0.95);
  EXPECT_DOUBLE_EQ(ci.estimate, 100'000.0);
  EXPECT_LT(ci.low, ci.estimate);
  EXPECT_GT(ci.high, ci.estimate);
  // Var(sum) <= e^2 * sum(est^2): the half-width shrinks ~sqrt(n) versus
  // treating the aggregate as one estimate.
  const double half = ci.high - ci.estimate;
  const double naive_half =
      core::theory::normal_quantile(0.975) * core::theory::cv_bound(b) * 100'000.0;
  EXPECT_LT(half, naive_half / 5.0);
}

TEST(EstimateAccumulator, ExactBaseDegeneratesToPoint) {
  EstimateAccumulator acc;
  acc.add(42.0);
  const auto ci = acc.interval(1.0, 0.95);
  EXPECT_DOUBLE_EQ(ci.low, 42.0);
  EXPECT_DOUBLE_EQ(ci.high, 42.0);
}

// --- built-in modules -------------------------------------------------------

TEST(TopKeysModule, RanksPortsAcrossEpochs) {
  ModuleOptions options;
  options.top_k = 2;
  TopKeysModule module(TopKeyKind::DstPort, options);
  EXPECT_EQ(module.name(), "topports");

  module.on_epoch(make_report(0, {{tuple(1, 2, 443), 4000.0, 4.0},
                                  {tuple(1, 3, 80), 1000.0, 1.0},
                                  {tuple(1, 4, 53), 500.0, 1.0}}));
  module.on_epoch(make_report(1, {{tuple(1, 2, 80), 5000.0, 5.0}}));

  const auto top = module.top();
  ASSERT_EQ(top.size(), 2u);  // top_k truncation
  EXPECT_EQ(top[0].key, 80u);  // 6000 cumulative
  EXPECT_DOUBLE_EQ(top[0].bytes.estimate, 6000.0);
  EXPECT_EQ(top[0].flows, 2u);
  EXPECT_EQ(top[1].key, 443u);
  // volume_b == 1: intervals collapse onto the estimate.
  EXPECT_DOUBLE_EQ(top[0].bytes.low, 6000.0);
  EXPECT_DOUBLE_EQ(top[0].bytes.high, 6000.0);

  module.reset();
  EXPECT_TRUE(module.top().empty());
  EXPECT_EQ(module.epochs(), 0u);
}

TEST(TopKeysModule, TopDestAggregatesByAddress) {
  TopKeysModule module(TopKeyKind::DstIp);
  EXPECT_EQ(module.name(), "topdest");
  module.on_epoch(make_report(0, {{tuple(1, 0x0a000001, 80), 100.0, 1.0},
                                  {tuple(2, 0x0a000001, 443), 200.0, 1.0},
                                  {tuple(3, 0x0a000002, 80), 50.0, 1.0}}));
  const auto top = module.top();
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].key, 0x0a000001u);
  EXPECT_DOUBLE_EQ(top[0].bytes.estimate, 300.0);
  const std::string json = module.export_json();
  EXPECT_NE(json.find("\"module\": \"topdest\""), std::string::npos);
  EXPECT_NE(json.find("10.0.0.1"), std::string::npos);
}

TEST(ApplicationModule, ClassifiesByWellKnownPort) {
  EXPECT_EQ(classify_flow(tuple(1, 2, 443)), AppClass::Web);
  EXPECT_EQ(classify_flow(tuple(1, 2, 53, 17)), AppClass::Dns);
  EXPECT_EQ(classify_flow(tuple(1, 2, 22)), AppClass::Ssh);
  EXPECT_EQ(classify_flow(tuple(1, 2, 9999, 1)), AppClass::Icmp);
  EXPECT_EQ(classify_flow(tuple(1, 2, 9999)), AppClass::Other);
  // Server port on the SOURCE side still classifies (response direction).
  FiveTuple response{1, 2, 443, 50000, 6};
  EXPECT_EQ(classify_flow(response), AppClass::Web);

  ApplicationModule module;
  module.on_epoch(make_report(0, {{tuple(1, 2, 443), 900.0, 1.0},
                                  {tuple(1, 3, 53, 17), 100.0, 1.0}}));
  EXPECT_DOUBLE_EQ(module.stats(AppClass::Web).bytes.sum(), 900.0);
  EXPECT_DOUBLE_EQ(module.stats(AppClass::Dns).bytes.sum(), 100.0);
  EXPECT_DOUBLE_EQ(module.total_bytes(), 1000.0);
}

TEST(ActiveFlowsModule, TracksEwmaAndPeak) {
  ModuleOptions options;
  options.ewma_alpha = 0.5;
  ActiveFlowsModule module(options);
  module.on_epoch(make_report(0, {{tuple(1, 2, 80), 100.0, 1.0},
                                  {tuple(1, 3, 80), 100.0, 1.0}}));
  EXPECT_EQ(module.last_flows(), 2u);
  EXPECT_DOUBLE_EQ(module.ewma_flows(), 2.0);  // first epoch seeds the EWMA
  module.on_epoch(make_report(1, {{tuple(1, 2, 80), 100.0, 1.0},
                                  {tuple(1, 3, 80), 100.0, 1.0},
                                  {tuple(1, 4, 80), 100.0, 1.0},
                                  {tuple(1, 5, 80), 100.0, 1.0}}));
  EXPECT_DOUBLE_EQ(module.ewma_flows(), 3.0);  // 0.5*4 + 0.5*2
  EXPECT_EQ(module.peak_flows(), 4u);
  EXPECT_EQ(module.total_flows(), 6u);
}

TEST(AnomalyEwmaModule, AlarmsAfterWarmupOnSpike) {
  ModuleOptions options;
  options.ewma_alpha = 0.3;
  options.alarm_sigmas = 3.0;
  options.alarm_warmup_epochs = 3;
  AnomalyEwmaModule module(options);

  // Steady baseline with mild jitter, then a 20x spike.
  for (std::uint64_t e = 0; e < 8; ++e) {
    const double bytes = 10'000.0 + static_cast<double>(e % 2) * 200.0;
    module.on_epoch(make_report(e, {{tuple(1, 2, 80), bytes, 10.0}}));
  }
  EXPECT_TRUE(module.alarms().empty());

  module.on_epoch(make_report(8, {{tuple(1, 2, 80), 200'000.0, 200.0}}));
  ASSERT_FALSE(module.alarms().empty());
  bool bytes_alarm = false;
  for (const auto& alarm : module.alarms()) {
    if (alarm.metric == "bytes") {
      bytes_alarm = true;
      EXPECT_EQ(alarm.epoch, 8u);
      EXPECT_DOUBLE_EQ(alarm.value, 200'000.0);
      EXPECT_GT(alarm.sigma, 0.0);
      EXPECT_LT(alarm.forecast, 20'000.0);  // EWMA of the quiet baseline
    }
  }
  EXPECT_TRUE(bytes_alarm);
}

TEST(AnomalyEwmaModule, NoAlarmsDuringWarmupEvenOnSpike) {
  ModuleOptions options;
  options.alarm_warmup_epochs = 10;
  AnomalyEwmaModule module(options);
  module.on_epoch(make_report(0, {{tuple(1, 2, 80), 100.0, 1.0}}));
  module.on_epoch(make_report(1, {{tuple(1, 2, 80), 1e9, 1.0}}));
  EXPECT_TRUE(module.alarms().empty());
}

TEST(ScannerDetectorModule, FlagsHighFanoutThinSources) {
  ModuleOptions options;
  options.scanner_min_fanout = 10;
  options.scanner_max_packets_per_flow = 2.0;
  ScannerDetectorModule module(options);

  std::vector<FlowEstimate> flows;
  // Scanner: one source touching 20 distinct targets, 1 packet each.
  for (std::uint32_t t = 0; t < 20; ++t) {
    flows.push_back({tuple(0xdead0001, 0x0a000000 + t,
                           static_cast<std::uint16_t>(1000 + t)),
                     60.0, 1.0});
  }
  // Busy client: high fanout but fat flows -- must NOT be flagged.
  for (std::uint32_t t = 0; t < 20; ++t) {
    flows.push_back({tuple(0xbeef0001, 0x0b000000 + t, 443), 50'000.0, 50.0});
  }
  // Normal client: low fanout.
  flows.push_back({tuple(0xcafe0001, 0x0c000000, 80), 1000.0, 1.0});
  module.on_epoch(make_report(0, flows));

  const auto suspects = module.suspects();
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].src_ip, 0xdead0001u);
  EXPECT_EQ(suspects[0].peak_fanout, 20u);
  EXPECT_DOUBLE_EQ(suspects[0].packets_per_target, 1.0);
}

TEST(AutofocusModule, ReportsPrefixAtTheRightGranularity) {
  // Total 108000 bytes, threshold 35% = 37800: the planted /24 (48000)
  // clears it while each of its /25 halves (24000) does not, so AutoFocus
  // must report exactly the /24; the hot host (40000) clears it alone, so
  // it must surface as a /32; the scattered remainder (20000) does not.
  ModuleOptions options;
  options.heavy_share = 0.35;
  AutofocusModule module(options);

  std::vector<FlowEstimate> flows;
  // 32 small hosts spread across the whole /24 (stride 8), ~1.4% each.
  for (std::uint32_t h = 0; h < 32; ++h) {
    flows.push_back({tuple(1, 0x0a010200u + 8 * h, 80), 1500.0, 2.0});
  }
  flows.push_back({tuple(2, 0xc0a80707u, 443), 40'000.0, 30.0});
  for (std::uint32_t i = 0; i < 20; ++i) {
    flows.push_back({tuple(3, 0x30000000u + i * 65536u, 80), 1000.0, 1.0});
  }
  module.on_epoch(make_report(0, flows));

  bool found_slash24 = false;
  bool found_hot_host = false;
  for (const auto& p : module.report()) {
    if (p.length == 24 && p.prefix == 0x0a010200u) {
      found_slash24 = true;
      EXPECT_DOUBLE_EQ(p.bytes, 32 * 1500.0);
      EXPECT_DOUBLE_EQ(p.residual, 32 * 1500.0);  // no reported descendants
    }
    if (p.length == 32 && p.prefix == 0xc0a80707u) found_hot_host = true;
    // The hot host is reported at /32, so no ancestor of it may re-report
    // its traffic (residual accounting), and nothing below the /24 clears
    // the threshold.
    EXPECT_FALSE(p.length < 32 && p.length > 0 &&
                 (0xc0a80707u & ~((1u << (32 - p.length)) - 1)) == p.prefix)
        << "ancestor of the hot host re-reported: " << p.prefix << "/"
        << p.length;
    // No reported prefix's residual may exceed its total bytes.
    EXPECT_LE(p.residual, p.bytes + 1e-9);
  }
  EXPECT_TRUE(found_slash24);
  EXPECT_TRUE(found_hot_host);
  ASSERT_EQ(module.report().size(), 2u);  // nothing else clears 35%
}

// --- host + factory ---------------------------------------------------------

TEST(ModuleHost, DispatchesTelemetryAndExports) {
  telemetry::set_enabled(true);
  ModuleHost host("modules_test");
  host.attach(make_module("topports"));
  host.attach(make_module("active-flows"));
  EXPECT_EQ(host.size(), 2u);

  host.on_epoch(make_report(0, {{tuple(1, 2, 443), 100.0, 1.0},
                                {tuple(1, 3, 80), 50.0, 1.0}}));
  host.flush();
  EXPECT_EQ(host.epochs_dispatched(), 1u);

  // In a -DDISCO_TELEMETRY=OFF build the registry is a constexpr no-op
  // stub and enabled() stays false; the dispatch behaviour above is still
  // fully exercised, only the metric readback is configuration-dependent.
  if (telemetry::enabled()) {
    auto& registry = telemetry::Registry::global();
    EXPECT_EQ(registry.counter("modules_test.topports.epochs_total").value(),
              1u);
    EXPECT_EQ(registry.counter("modules_test.topports.flows_total").value(),
              2u);
    EXPECT_EQ(
        registry.counter("modules_test.active_flows.epochs_total").value(),
        1u);
  }
  telemetry::set_enabled(false);

  EXPECT_NE(host.find("topports"), nullptr);
  EXPECT_EQ(host.find("nope"), nullptr);

  std::ostringstream text;
  host.export_text(text);
  EXPECT_NE(text.str().find("topports"), std::string::npos);
  EXPECT_NE(text.str().find("active-flows"), std::string::npos);

  const std::string json = host.export_json();
  EXPECT_NE(json.find("\"epochs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"module\": \"topports\""), std::string::npos);

  host.reset();
  EXPECT_EQ(host.epochs_dispatched(), 0u);
}

TEST(ModuleHost, RejectsDuplicatesAndNull) {
  ModuleHost host("modules_test_dup");
  host.attach(make_module("topports"));
  EXPECT_THROW(host.attach(make_module("topports")), std::invalid_argument);
  EXPECT_THROW(host.attach(nullptr), std::invalid_argument);
}

TEST(ModuleHost, SubscribesToMonitorEndToEnd) {
  flowtable::FlowMonitor monitor({.max_flows = 64, .counter_bits = 10});
  ModuleHost host("modules_test_e2e");
  host.attach(make_module("active-flows"));
  host.subscribe_to(monitor);

  monitor.ingest(tuple(1, 2, 80), 1000);
  (void)monitor.rotate();
  (void)monitor.rotate();
  EXPECT_EQ(host.epochs_dispatched(), 2u);
  const auto* af =
      dynamic_cast<const ActiveFlowsModule*>(host.find("active-flows"));
  ASSERT_NE(af, nullptr);
  EXPECT_EQ(af->epochs(), 2u);
  EXPECT_EQ(af->peak_flows(), 1u);
}

TEST(ModuleFactory, BuildsEveryAdvertisedModule) {
  EXPECT_EQ(available_modules().size(), 7u);
  for (const auto& name : available_modules()) {
    const auto module = make_module(name);
    ASSERT_NE(module, nullptr);
    EXPECT_EQ(module->name(), name);
  }
  EXPECT_THROW((void)make_module("nope"), std::invalid_argument);
}

TEST(ModuleFactory, ParsesSelections) {
  EXPECT_EQ(make_modules("all").size(), available_modules().size());
  EXPECT_EQ(make_modules("").size(), available_modules().size());
  const auto picked = make_modules("topports,autofocus");
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0]->name(), "topports");
  EXPECT_EQ(picked[1]->name(), "autofocus");
  EXPECT_THROW((void)make_modules("topports,topports"), std::invalid_argument);
  EXPECT_THROW((void)make_modules("topports,,autofocus"),
               std::invalid_argument);
  EXPECT_THROW((void)make_modules("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace disco::modules
