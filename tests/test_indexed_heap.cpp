// Unit tests for the indexed max-heap behind the SD architecture's LCF CMA.
#include "util/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace disco::util {
namespace {

TEST(IndexedMaxHeap, InitiallyAllZero) {
  IndexedMaxHeap h(5);
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h.top_priority(), 0u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(h.priority(k), 0u);
}

TEST(IndexedMaxHeap, TopTracksMaximum) {
  IndexedMaxHeap h(4);
  h.set(2, 10);
  EXPECT_EQ(h.top(), 2u);
  h.set(0, 20);
  EXPECT_EQ(h.top(), 0u);
  h.set(0, 5);  // decrease: 2 should resurface
  EXPECT_EQ(h.top(), 2u);
  EXPECT_EQ(h.top_priority(), 10u);
}

TEST(IndexedMaxHeap, IncreaseAccumulates) {
  IndexedMaxHeap h(3);
  h.increase(1, 7);
  h.increase(1, 3);
  EXPECT_EQ(h.priority(1), 10u);
  EXPECT_EQ(h.top(), 1u);
}

TEST(IndexedMaxHeap, SetSameValueIsStable) {
  IndexedMaxHeap h(3);
  h.set(0, 5);
  h.set(0, 5);
  EXPECT_EQ(h.top(), 0u);
  EXPECT_EQ(h.priority(0), 5u);
}

TEST(IndexedMaxHeap, RandomizedAgainstLinearScan) {
  const std::size_t n = 200;
  IndexedMaxHeap h(n);
  std::vector<std::uint64_t> shadow(n, 0);
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_u64(0, n - 1));
    const std::uint64_t v = rng.uniform_u64(0, 1000);
    h.set(k, v);
    shadow[k] = v;
    const std::uint64_t want =
        *std::max_element(shadow.begin(), shadow.end());
    ASSERT_EQ(h.top_priority(), want) << "op=" << op;
    ASSERT_EQ(shadow[h.top()], want);
  }
}

TEST(IndexedMaxHeap, SimulatesLcfDrainOrder) {
  // SD usage pattern: increase priorities, repeatedly flush the top to zero;
  // drain order must be non-increasing in the drained priority.
  IndexedMaxHeap h(10);
  Rng rng(81);
  for (std::size_t k = 0; k < 10; ++k) h.set(k, rng.uniform_u64(1, 100));
  std::uint64_t prev = ~std::uint64_t{0};
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t p = h.top_priority();
    EXPECT_LE(p, prev);
    prev = p;
    h.set(h.top(), 0);
  }
  EXPECT_EQ(h.top_priority(), 0u);
}

}  // namespace
}  // namespace disco::util
