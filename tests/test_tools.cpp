// Smoke tests for the CLI tools: invoke the real binaries end to end and
// validate their outputs (generation -> file format -> analysis).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "trace/pcap.hpp"
#include "trace/trace_io.hpp"

#ifndef DISCO_TOOLS_DIR
#error "DISCO_TOOLS_DIR must be defined by the build"
#endif

namespace disco {
namespace {

std::string tool(const std::string& name) {
  return std::string(DISCO_TOOLS_DIR) + "/" + name;
}

int run(const std::string& command) {
  const int status = std::system(command.c_str());
  return status;
}

TEST(Tools, TracegenUsageErrorOnNoArgs) {
  EXPECT_NE(run(tool("disco_tracegen") + " >/dev/null 2>&1"), 0);
}

TEST(Tools, TracegenWritesParsableDtrc) {
  const std::string path = ::testing::TempDir() + "/tools_test.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario1 20 " + path +
                " --seed 5 >/dev/null"),
            0);
  const auto data = trace::read_trace_file(path);
  EXPECT_EQ(data.flow_count, 20u);
  EXPECT_GT(data.packets.size(), 0u);
  std::remove(path.c_str());
}

TEST(Tools, TracegenWritesParsablePcap) {
  const std::string path = ::testing::TempDir() + "/tools_test.pcap";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario3 10 " + path +
                " --burst 1:4 >/dev/null"),
            0);
  const auto packets = trace::read_pcap_file(path);
  EXPECT_GT(packets.size(), 0u);
  std::remove(path.c_str());
}

TEST(Tools, TracegenRejectsUnknownScenario) {
  EXPECT_NE(run(tool("disco_tracegen") + " bogus 10 /tmp/x.dtrc >/dev/null 2>&1"),
            0);
}

TEST(Tools, AnalyzeRunsOnGeneratedTrace) {
  const std::string path = ::testing::TempDir() + "/tools_analyze.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " real 50 " + path + " >/dev/null"), 0);
  EXPECT_EQ(run(tool("disco_analyze") + " " + path +
                " --bits 10 --methods DISCO,SAC --top 2 >/dev/null"),
            0);
  std::remove(path.c_str());
}

TEST(Tools, AnalyzeWithConfidenceIntervals) {
  const std::string path = ::testing::TempDir() + "/tools_ci.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario2 30 " + path + " >/dev/null"), 0);
  EXPECT_EQ(run(tool("disco_analyze") + " " + path +
                " --bits 12 --methods DISCO --ci >/dev/null"),
            0);
  std::remove(path.c_str());
}

TEST(Tools, AnalyzeFailsOnMissingFile) {
  EXPECT_NE(run(tool("disco_analyze") + " /nonexistent.dtrc >/dev/null 2>&1"), 0);
}

}  // namespace
}  // namespace disco
