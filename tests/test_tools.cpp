// Smoke tests for the CLI tools: invoke the real binaries end to end and
// validate their outputs (generation -> file format -> analysis).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"  // defines the DISCO_TELEMETRY default
#include "trace/pcap.hpp"
#include "trace/trace_io.hpp"

#ifndef DISCO_TOOLS_DIR
#error "DISCO_TOOLS_DIR must be defined by the build"
#endif

namespace disco {
namespace {

std::string tool(const std::string& name) {
  return std::string(DISCO_TOOLS_DIR) + "/" + name;
}

int run(const std::string& command) {
  const int status = std::system(command.c_str());
  return status;
}

TEST(Tools, TracegenUsageErrorOnNoArgs) {
  EXPECT_NE(run(tool("disco_tracegen") + " >/dev/null 2>&1"), 0);
}

TEST(Tools, TracegenWritesParsableDtrc) {
  const std::string path = ::testing::TempDir() + "/tools_test.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario1 20 " + path +
                " --seed 5 >/dev/null"),
            0);
  const auto data = trace::read_trace_file(path);
  EXPECT_EQ(data.flow_count, 20u);
  EXPECT_GT(data.packets.size(), 0u);
  std::remove(path.c_str());
}

TEST(Tools, TracegenWritesParsablePcap) {
  const std::string path = ::testing::TempDir() + "/tools_test.pcap";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario3 10 " + path +
                " --burst 1:4 >/dev/null"),
            0);
  const auto packets = trace::read_pcap_file(path);
  EXPECT_GT(packets.size(), 0u);
  std::remove(path.c_str());
}

TEST(Tools, TracegenRejectsUnknownScenario) {
  EXPECT_NE(run(tool("disco_tracegen") + " bogus 10 /tmp/x.dtrc >/dev/null 2>&1"),
            0);
}

TEST(Tools, AnalyzeRunsOnGeneratedTrace) {
  const std::string path = ::testing::TempDir() + "/tools_analyze.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " real 50 " + path + " >/dev/null"), 0);
  EXPECT_EQ(run(tool("disco_analyze") + " " + path +
                " --bits 10 --methods DISCO,SAC --top 2 >/dev/null"),
            0);
  std::remove(path.c_str());
}

TEST(Tools, AnalyzeWithConfidenceIntervals) {
  const std::string path = ::testing::TempDir() + "/tools_ci.dtrc";
  ASSERT_EQ(run(tool("disco_tracegen") + " scenario2 30 " + path + " >/dev/null"), 0);
  EXPECT_EQ(run(tool("disco_analyze") + " " + path +
                " --bits 12 --methods DISCO --ci >/dev/null"),
            0);
  std::remove(path.c_str());
}

TEST(Tools, AnalyzeFailsOnMissingFile) {
  EXPECT_NE(run(tool("disco_analyze") + " /nonexistent.dtrc >/dev/null 2>&1"), 0);
}

TEST(Tools, AnalyzeMetricsEmitsParsableTelemetrySnapshot) {
  const std::string trace_path = ::testing::TempDir() + "/tools_metrics.dtrc";
  const std::string out_path = ::testing::TempDir() + "/tools_metrics.out";
  ASSERT_EQ(run(tool("disco_tracegen") + " real 60 " + trace_path + " >/dev/null"), 0);
  ASSERT_EQ(run(tool("disco_analyze") + " " + trace_path +
                " --bits 10 --methods DISCO --metrics > " + out_path),
            0);
  std::ifstream in(out_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string output = buffer.str();
  const auto marker = output.find("telemetry snapshot:\n");
  ASSERT_NE(marker, std::string::npos);
  const auto snapshot = disco::telemetry::snapshot_from_json(
      output.substr(marker + std::string("telemetry snapshot:\n").size()));
#if DISCO_TELEMETRY
  // The replay must surface the operational signals: per-shard ingests,
  // evictions, and the probe-length histogram.
  std::uint64_t ingests = 0;
  std::uint64_t evictions = 0;
  bool probe_hist = false;
  for (const auto& m : snapshot.metrics) {
    if (m.name.starts_with("sharded_monitor.shard_") &&
        m.name.ends_with(".ingest_total")) {
      ingests += static_cast<std::uint64_t>(m.value);
    }
    if (m.name.ends_with(".evictions_total")) {
      evictions += static_cast<std::uint64_t>(m.value);
    }
    if (m.name == "flow_table.probe_length") {
      probe_hist = m.histogram.count > 0;
    }
  }
  EXPECT_GT(ingests, 0u);
  EXPECT_GT(evictions, 0u);
  EXPECT_TRUE(probe_hist);
#else
  EXPECT_TRUE(snapshot.metrics.empty());
#endif
  std::remove(trace_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace disco
