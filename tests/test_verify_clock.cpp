// Self-coverage for the model checker (src/verify): vector-clock algebra,
// then classic memory-model litmus tests run through explore() -- the
// checker must find the weak outcomes the C++ model allows (store
// buffering under relaxed, stale reads) and must NOT find the ones
// acquire/release or seq_cst forbid.  If these fail, every
// test_modelcheck_* verdict is meaningless, so this binary is the first
// gate on the harness itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "verify/model.hpp"
#include "verify/vector_clock.hpp"

namespace verify = disco::verify;

// ---------------------------------------------------------------------------
// VectorClock algebra.
// ---------------------------------------------------------------------------

TEST(VectorClock, StartsAtZeroAndTicks) {
  verify::VectorClock c;
  EXPECT_TRUE(c.is_zero());
  EXPECT_EQ(c.at(2), 0u);
  EXPECT_EQ(c.tick(2), 1u);
  EXPECT_EQ(c.tick(2), 2u);
  EXPECT_EQ(c.at(2), 2u);
  EXPECT_FALSE(c.is_zero());
  c.clear();
  EXPECT_TRUE(c.is_zero());
}

TEST(VectorClock, MergeIsPointwiseMax) {
  verify::VectorClock a;
  verify::VectorClock b;
  a.set(0, 3);
  a.set(1, 1);
  b.set(1, 5);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.at(0), 3u);
  EXPECT_EQ(a.at(1), 5u);
  EXPECT_EQ(a.at(2), 2u);
}

TEST(VectorClock, LeqIsThePartialOrder) {
  verify::VectorClock lo;
  verify::VectorClock hi;
  lo.set(0, 1);
  hi.set(0, 2);
  hi.set(1, 1);
  EXPECT_TRUE(lo.leq(hi));
  EXPECT_FALSE(hi.leq(lo));
  // Incomparable pair: neither leq the other.
  verify::VectorClock x;
  verify::VectorClock y;
  x.set(0, 1);
  y.set(1, 1);
  EXPECT_FALSE(x.leq(y));
  EXPECT_FALSE(y.leq(x));
  EXPECT_TRUE(x.leq(x));
}

TEST(VectorClock, CoversIsTheEpochTest) {
  verify::VectorClock c;
  c.set(3, 7);
  EXPECT_TRUE(c.covers(3, 7));
  EXPECT_TRUE(c.covers(3, 1));
  EXPECT_FALSE(c.covers(3, 8));
  EXPECT_TRUE(c.covers(1, 0));  // stamp 0 == "before everything"
}

TEST(VectorClock, StrElidesTrailingZeros) {
  verify::VectorClock c;
  EXPECT_EQ(c.str(), "[0]");
  c.set(0, 3);
  c.set(2, 7);
  EXPECT_EQ(c.str(), "[3 0 7]");
}

// ---------------------------------------------------------------------------
// Litmus: message passing.
// ---------------------------------------------------------------------------

namespace {

/// data is plain; flag is the synchronisation.  `store_order`/`load_order`
/// select the variant; with_fences upgrades relaxed ops via thread fences.
verify::Result message_passing(std::memory_order store_order,
                               std::memory_order load_order,
                               bool with_fences) {
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 100000;
  return verify::explore(opts, [=] {
    verify::ModelAtomic<std::uint64_t> flag{0};
    verify::Shared<std::uint64_t> data;
    verify::label(&flag, "flag");
    verify::label(&data, "data");
    std::uint64_t seen = 0;
    verify::run_threads({
        [&] {
          data = 42;
          if (with_fences) verify::model_fence(std::memory_order_release);
          flag.store(1, store_order);
        },
        [&] {
          while (flag.load(load_order) == 0) verify::spin_yield();
          if (with_fences) verify::model_fence(std::memory_order_acquire);
          seen = data;
        },
    });
    verify::mc_check(seen == 42, "consumer must observe the payload");
  });
}

}  // namespace

TEST(Litmus, MessagePassingReleaseAcquireIsClean) {
  verify::Result r = message_passing(std::memory_order_release,
                                     std::memory_order_acquire, false);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_GT(r.executions, 1u);
}

TEST(Litmus, MessagePassingRelaxedIsARace) {
  verify::Result r = message_passing(std::memory_order_relaxed,
                                     std::memory_order_relaxed, false);
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.report.find("DATA RACE"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("data"), std::string::npos) << r.report;
  // The trace must show where the consumer's knowledge came from.
  EXPECT_NE(r.report.find("reads-from"), std::string::npos) << r.report;
}

TEST(Litmus, MessagePassingRelaxedPlusFencesIsClean) {
  verify::Result r = message_passing(std::memory_order_relaxed,
                                     std::memory_order_relaxed, true);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

TEST(Litmus, MessagePassingReleaseStoreRelaxedLoadIsARace) {
  // The planted-bug shape used by test_modelcheck_ring: publisher is
  // correct, the consumer's acquire was downgraded.
  verify::Result r = message_passing(std::memory_order_release,
                                     std::memory_order_relaxed, false);
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.report.find("DATA RACE"), std::string::npos) << r.report;
}

// ---------------------------------------------------------------------------
// Litmus: store buffering -- the weak outcome exists under relaxed and must
// be *found*; under seq_cst it must not exist.
// ---------------------------------------------------------------------------

namespace {

std::set<std::pair<std::uint64_t, std::uint64_t>> store_buffering_outcomes(
    std::memory_order order) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> outcomes;
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 100000;
  verify::Result r = verify::explore(opts, [&outcomes, order] {
    verify::ModelAtomic<std::uint64_t> x{0};
    verify::ModelAtomic<std::uint64_t> y{0};
    std::uint64_t r1 = 0;
    std::uint64_t r2 = 0;
    verify::run_threads({
        [&] {
          x.store(1, order);
          r1 = y.load(order);
        },
        [&] {
          y.store(1, order);
          r2 = x.load(order);
        },
    });
    outcomes.emplace(r1, r2);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  return outcomes;
}

}  // namespace

TEST(Litmus, StoreBufferingWeakOutcomeFoundUnderRelaxed) {
  auto outcomes = store_buffering_outcomes(std::memory_order_relaxed);
  EXPECT_TRUE(outcomes.count({0, 0}))
      << "the r1==r2==0 outcome is allowed by relaxed atomics and must be "
         "explored";
  EXPECT_TRUE(outcomes.count({1, 1}));
  EXPECT_TRUE(outcomes.count({0, 1}));
  EXPECT_TRUE(outcomes.count({1, 0}));
}

TEST(Litmus, StoreBufferingWeakOutcomeAbsentUnderSeqCst) {
  auto outcomes = store_buffering_outcomes(std::memory_order_seq_cst);
  EXPECT_FALSE(outcomes.count({0, 0}))
      << "seq_cst forbids both threads missing each other's store";
  EXPECT_TRUE(outcomes.count({1, 1}));
}

// ---------------------------------------------------------------------------
// Mutexes, deadlock, and mc_check plumbing.
// ---------------------------------------------------------------------------

TEST(ModelMutex, GuardedCounterIsCleanAndExact) {
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 100000;
  verify::Result r = verify::explore(opts, [] {
    verify::Mutex mu;
    verify::Shared<int> counter;
    verify::label(&mu, "mu");
    auto add_one = [&] {
      verify::MutexLock lock(mu);
      counter = static_cast<int>(counter) + 1;
    };
    verify::run_threads({add_one, add_one});
    verify::mc_check(static_cast<int>(counter) == 2,
                     "both increments must land");
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelMutex, UnguardedCounterIsARace) {
  verify::Options opts;
  opts.exhaustive = true;
  verify::Result r = verify::explore(opts, [] {
    verify::Shared<int> counter;
    verify::label(&counter, "counter");
    auto add_one = [&] { counter = static_cast<int>(counter) + 1; };
    verify::run_threads({add_one, add_one});
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.report.find("DATA RACE"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("counter"), std::string::npos) << r.report;
}

TEST(ModelMutex, LockOrderInversionIsReportedAsDeadlock) {
  verify::Options opts;
  opts.exhaustive = true;
  verify::Result r = verify::explore(opts, [] {
    verify::Mutex a;
    verify::Mutex b;
    verify::label(&a, "mu_a");
    verify::label(&b, "mu_b");
    verify::run_threads({
        [&] {
          verify::MutexLock la(a);
          verify::MutexLock lb(b);
        },
        [&] {
          verify::MutexLock lb(b);
          verify::MutexLock la(a);
        },
    });
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.report.find("DEADLOCK"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("mu_a"), std::string::npos) << r.report;
}

TEST(Explore, FailedCheckCarriesTheMessageAndStopsExploration) {
  verify::Options opts;
  opts.exhaustive = true;
  verify::Result r = verify::explore(opts, [] {
    verify::ModelAtomic<std::uint64_t> x{0};
    verify::run_threads({[&] { x.store(1, std::memory_order_relaxed); }});
    verify::mc_check(false, "always fails");
  });
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.executions, 1u);
  EXPECT_NE(r.report.find("CHECK FAILED: always fails"), std::string::npos)
      << r.report;
}

TEST(Explore, RandomWalksAreBoundedAndSeeded) {
  verify::Options opts;
  opts.exhaustive = false;
  opts.max_executions = 64;
  opts.seed = 7;
  verify::Result r = verify::explore(opts, [] {
    verify::ModelAtomic<std::uint64_t> x{0};
    verify::run_threads({
        [&] { x.store(1, std::memory_order_release); },
        [&] { (void)x.load(std::memory_order_acquire); },
    });
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_FALSE(r.exhausted);  // random mode never claims exhaustion
  EXPECT_EQ(r.executions, 64u);
}

TEST(Explore, RmwChainsCountExactlyOnce) {
  // fetch_add is atomic even relaxed: no lost updates, no race on the cell.
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 100000;
  verify::Result r = verify::explore(opts, [] {
    verify::ModelAtomic<std::uint64_t> n{0};
    auto bump = [&] { n.fetch_add(1, std::memory_order_relaxed); };
    verify::run_threads({bump, bump});
    verify::mc_check(n.load(std::memory_order_relaxed) == 2,
                     "relaxed fetch_add must not lose updates");
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}
