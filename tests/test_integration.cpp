// Cross-module integration tests: trace generation -> serialisation ->
// monitoring -> estimation -> error reporting, plus end-to-end reproductions
// of the paper's qualitative claims at test scale.
#include <gtest/gtest.h>

#include <sstream>

#include "core/disco.hpp"
#include "flowtable/monitor.hpp"
#include "stats/experiment.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace disco {
namespace {

TEST(Integration, TraceRoundTripThenMonitorMatchesDirectFeed) {
  // Generate -> serialise -> parse -> monitor must equal generate -> monitor.
  util::Rng rng(21);
  auto flows = trace::scenario1().make_flows(60, rng);
  trace::PacketStream stream(flows, 1, 4, 5);
  const auto packets = stream.drain();

  std::stringstream buf;
  trace::write_trace(buf, packets, 60);
  const auto parsed = trace::read_trace(buf);

  auto make_monitor = [] {
    flowtable::FlowMonitor::Config c;
    c.max_flows = 128;
    c.counter_bits = 12;
    c.max_flow_bytes = 1 << 24;
    c.max_flow_packets = 1 << 16;
    c.seed = 7;
    return flowtable::FlowMonitor(c);
  };
  auto monitor_a = make_monitor();
  auto monitor_b = make_monitor();
  auto key = [](std::uint32_t id) {
    return flowtable::FiveTuple{id, 1, 2, 3, 6};
  };
  for (const auto& p : packets) (void)monitor_a.ingest(key(p.flow_id), p.length);
  for (const auto& p : parsed.packets) {
    (void)monitor_b.ingest(key(p.flow_id), p.length);
  }
  EXPECT_DOUBLE_EQ(monitor_a.totals().bytes, monitor_b.totals().bytes);
}

TEST(Integration, MonitorEstimatesTrackGroundTruthPerFlow) {
  util::Rng rng(22);
  auto flows = trace::scenario2().make_flows(40, rng);
  const auto truths = trace::flow_truths(flows);

  flowtable::FlowMonitor::Config c;
  c.max_flows = 64;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 26;
  c.max_flow_packets = 1 << 18;
  flowtable::FlowMonitor monitor(c);

  trace::PacketStream stream(std::move(flows), 1, 8, 9);
  auto key = [](std::uint32_t id) {
    return flowtable::FiveTuple{id * 17 + 3, 99, 1000, 53, 17};
  };
  while (auto p = stream.next()) (void)monitor.ingest(key(p->flow_id), p->length);

  double total_err = 0.0;
  for (const auto& t : truths) {
    const auto est = monitor.query(key(t.id));
    ASSERT_TRUE(est.has_value()) << "flow " << t.id;
    total_err += util::relative_error(est->bytes, static_cast<double>(t.bytes));
  }
  EXPECT_LT(total_err / static_cast<double>(truths.size()), 0.05);
}

TEST(Integration, PaperHeadlineOrderingAtTestScale) {
  // DISCO < SAC average error at equal bits for flow volume counting -- the
  // paper's headline -- on the real-trace stand-in.  (The size-counting
  // ordering of Fig. 10 needs paper-scale flow-length dispersion; the bench
  // covers it, and here we only require DISCO's size errors to be small.)
  util::Rng rng(23);
  const auto flows = trace::real_trace_model().make_flows(120, rng);
  const auto disco = stats::make_method("DISCO");
  const auto sac = stats::make_method("SAC");
  const auto rd =
      stats::run_accuracy(*disco, flows, stats::CountingMode::kVolume, 10, 31);
  const auto rs =
      stats::run_accuracy(*sac, flows, stats::CountingMode::kVolume, 10, 31);
  EXPECT_LT(rd.errors.average, rs.errors.average);

  const auto disco_size = stats::make_method("DISCO");
  const auto rds =
      stats::run_accuracy(*disco_size, flows, stats::CountingMode::kSize, 10, 31);
  EXPECT_LT(rds.errors.average, 0.05);
}

TEST(Integration, AnlsIFailsWhereDiscoSucceeds) {
  // Table III's story end to end: same bit budget, ANLS-I error is at least
  // an order of magnitude worse on variance-heavy traffic.
  util::Rng rng(24);
  const auto flows = trace::scenario1().make_flows(200, rng);
  const auto disco = stats::make_method("DISCO");
  const auto anls1 = stats::make_method("ANLS-I");
  const auto rd = stats::run_accuracy(*disco, flows, stats::CountingMode::kVolume, 10, 8);
  const auto ra = stats::run_accuracy(*anls1, flows, stats::CountingMode::kVolume, 10, 8);
  EXPECT_GT(ra.errors.average, rd.errors.average * 10.0);
}

TEST(Integration, BurstAggregationMatchesPlainInExpectation) {
  // Counting through BurstAggregator and counting packet-by-packet must
  // estimate the same flow, with aggregation at least as accurate.
  const auto params = core::DiscoParams::for_budget(1 << 24, 12);
  util::Rng rng(25);
  util::Rng traffic(26);
  const int runs = 400;
  double err_plain = 0.0;
  double err_burst = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> lens;
    for (int i = 0; i < 200; ++i) lens.push_back(traffic.uniform_u64(64, 1024));
    std::uint64_t truth = 0;
    for (auto l : lens) truth += l;

    std::uint64_t c_plain = 0;
    for (auto l : lens) c_plain = params.update(c_plain, l, rng);

    std::uint64_t c_burst = 0;
    core::BurstAggregator agg(params);
    for (std::size_t i = 0; i < lens.size(); ++i) {
      agg.add(lens[i], c_burst, rng);
      if (i % 8 == 7) agg.flush(c_burst, rng);  // bursts of 8
    }
    agg.flush(c_burst, rng);

    err_plain += util::relative_error(params.estimate(c_plain),
                                      static_cast<double>(truth));
    err_burst += util::relative_error(params.estimate(c_burst),
                                      static_cast<double>(truth));
  }
  err_plain /= runs;
  err_burst /= runs;
  EXPECT_LT(err_burst, err_plain * 1.05);
}

TEST(Integration, TextTableRendersExperimentRows) {
  stats::TextTable table({"method", "bits", "avg error"});
  table.add_row({"DISCO", "10", stats::fmt(0.0123)});
  table.add_row({"SAC", "10", stats::fmt(0.0541)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("DISCO"), std::string::npos);
  EXPECT_NE(out.find("0.0541"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("DISCO,10,0.0123"), std::string::npos);
}

TEST(Integration, TextTableRejectsRaggedRows) {
  stats::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace disco
