// DecisionTable: the transcendental-free DISCO update fast path
// (src/core/decision_table.hpp).  The contract under test is strict
// BIT-IDENTITY with the double-precision path: same delta, same p_d (to the
// last mantissa bit), same RNG consumption -- so attaching a table can never
// change an estimate, a parity baseline, or a snapshot.
#include "core/decision_table.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::core {
namespace {

/// EXPECT bitwise equality of doubles: NaN == NaN, +0 != -0.  Parity must
/// hold at this strength because p_d feeds rng.bernoulli() -- any mantissa
/// difference could flip a coin and desynchronise the RNG stream.
void expect_bits_eq(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

struct SweepConfig {
  std::uint64_t max_flow;
  int bits;
};

// The ISSUE acceptance sweep: EVERY counter value the table covers, crossed
// with the packet lengths that matter (min, typical, MTU, jumbo, and the
// provisioning-limit addend), at two counter widths.  ~40k decisions; this
// is the proof that the fast path is a pure lookup optimisation.
TEST(DecisionTable, ExhaustiveParityWithDoublePath) {
  const std::vector<SweepConfig> configs = {
      {std::uint64_t{1} << 30, 12},
      {std::uint64_t{1} << 24, 8},
  };
  for (const auto& config : configs) {
    const DiscoParams plain = DiscoParams::for_budget(config.max_flow, config.bits);
    DiscoParams fast = plain;
    const std::uint64_t c_max = (std::uint64_t{1} << config.bits) - 1;
    fast.attach_table(c_max);
    ASSERT_NE(fast.decision_table(), nullptr);
    ASSERT_EQ(fast.decision_table()->c_max(), c_max);

    const std::uint64_t lens[] = {1, 64, 1500, 9000, config.max_flow};
    for (std::uint64_t c = 0; c <= c_max; ++c) {
      for (std::uint64_t l : lens) {
        const UpdateDecision expected = plain.decide(c, l);
        const UpdateDecision got = fast.decide(c, l);
        ASSERT_EQ(got.delta, expected.delta)
            << "bits=" << config.bits << " c=" << c << " l=" << l;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got.p_d),
                  std::bit_cast<std::uint64_t>(expected.p_d))
            << "bits=" << config.bits << " c=" << c << " l=" << l
            << " p_d " << got.p_d << " vs " << expected.p_d;
      }
    }
  }
}

TEST(DecisionTable, TableEntriesMatchScaleExactly) {
  // The table must store the very doubles GeometricScale computes -- that,
  // not approximate agreement, is what makes the comparisons above hold.
  const util::GeometricScale scale(util::choose_b(1 << 24, 10));
  const auto table = DecisionTable::shared(scale, 1023);
  for (std::uint64_t c = 0; c <= table->c_max() + 1; ++c) {
    expect_bits_eq(table->f(c), scale.f(static_cast<double>(c)), "f");
    expect_bits_eq(table->step(c), scale.step(static_cast<double>(c)), "step");
  }
}

TEST(DecisionTable, RngStreamIdenticalAfterManyUpdates) {
  // Drive two counters through the same packet stream, one with the table.
  // Counters must agree after every step AND the RNGs must remain in
  // lockstep (checked by comparing their next outputs at the end).
  const DiscoParams plain = DiscoParams::for_budget(1 << 30, 12);
  DiscoParams fast = plain;
  fast.attach_table((std::uint64_t{1} << 12) - 1);

  util::Rng rng_plain(77), rng_fast(77), lens(123);
  std::uint64_t c_plain = 0, c_fast = 0;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t l = lens.uniform_u64(1, 9000);
    c_plain = plain.update(c_plain, l, rng_plain);
    c_fast = fast.update(c_fast, l, rng_fast);
    ASSERT_EQ(c_fast, c_plain) << "diverged at packet " << i;
  }
  EXPECT_EQ(rng_fast.next(), rng_plain.next());
}

TEST(DecisionTable, MergeParityWithDoublePath) {
  const DiscoParams plain = DiscoParams::for_budget(1 << 30, 12);
  DiscoParams fast = plain;
  fast.attach_table((std::uint64_t{1} << 12) - 1);
  for (std::uint64_t c1 : {0ull, 5ull, 117ull, 900ull, 4000ull}) {
    for (std::uint64_t c2 : {1ull, 33ull, 512ull, 4095ull}) {
      util::Rng rng_plain(c1 * 131 + c2), rng_fast(c1 * 131 + c2);
      EXPECT_EQ(fast.merge(c1, c2, rng_fast), plain.merge(c1, c2, rng_plain))
          << "c1=" << c1 << " c2=" << c2;
      EXPECT_EQ(rng_fast.next(), rng_plain.next());
    }
  }
}

TEST(DecisionTable, SmallTableFallsBackBitIdentically) {
  // A table covering only c <= 16: decisions above it (and targets beyond
  // its last entry) must route to the scalar path and still agree.
  const DiscoParams plain = DiscoParams::for_budget(1 << 24, 10);
  DiscoParams fast = plain;
  fast.attach_table(16);
  for (std::uint64_t c = 0; c <= 64; ++c) {
    for (std::uint64_t l : {1ull, 1500ull, 1ull << 24}) {
      const UpdateDecision expected = plain.decide(c, l);
      const UpdateDecision got = fast.decide(c, l);
      ASSERT_EQ(got.delta, expected.delta) << "c=" << c << " l=" << l;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got.p_d),
                std::bit_cast<std::uint64_t>(expected.p_d))
          << "c=" << c << " l=" << l;
    }
  }
}

TEST(DecisionTable, OverflowSaturationParityAtExtremeCounters) {
  // b = 3 overflows double range near c ~ 646: the table must truncate
  // there, and decisions around the edge (where f(c), the target, or
  // target*(b-1) goes non-finite) must agree with the guarded scalar path.
  const DiscoParams plain(3.0);
  DiscoParams fast = plain;
  fast.attach_table(DecisionTable::kMaxCmax);
  const DecisionTable* table = fast.decision_table();
  ASSERT_NE(table, nullptr);
  EXPECT_LT(table->c_max(), 700u);  // truncated well below the request
  for (std::uint64_t c = 600; c <= table->c_max() + 8; ++c) {
    for (std::uint64_t l : {std::uint64_t{1}, std::uint64_t{1} << 40,
                            ~std::uint64_t{0} >> 1}) {
      const UpdateDecision expected = plain.decide(c, l);
      const UpdateDecision got = fast.decide(c, l);
      ASSERT_EQ(got.delta, expected.delta) << "c=" << c << " l=" << l;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got.p_d),
                std::bit_cast<std::uint64_t>(expected.p_d))
          << "c=" << c << " l=" << l;
    }
  }
}

TEST(DecisionTable, SharedCacheReturnsSameTable) {
  const util::GeometricScale scale(1.0125);
  const auto a = DecisionTable::shared(scale, 4095);
  const auto b = DecisionTable::shared(scale, 4095);
  EXPECT_EQ(a.get(), b.get());  // one table per (b, c_max) process-wide
  const auto c = DecisionTable::shared(scale, 255);
  EXPECT_NE(a.get(), c.get());
}

TEST(DecisionTable, StorageIsTwoDoublesPerEntry) {
  const util::GeometricScale scale(1.02);
  const DecisionTable table(scale, 1023);
  // Entries 0..c_max+1 (sentinel), two doubles each: f and b^c.
  EXPECT_EQ(table.storage_bytes(), (1023 + 2) * 2 * sizeof(double));
}

TEST(DecisionTable, AttachRejectsMismatchedBase) {
  DiscoParams params(1.02);
  const util::GeometricScale other(1.05);
  EXPECT_THROW(params.attach_table(DecisionTable::shared(other, 255)),
               std::invalid_argument);
  EXPECT_NO_THROW(params.attach_table(nullptr));  // detach via null is fine
}

TEST(DecisionTable, UpdateBatchMatchesSequentialUpdates) {
  DiscoParams params = DiscoParams::for_budget(1 << 30, 12);
  params.attach_table((std::uint64_t{1} << 12) - 1);

  util::Rng lens(5);
  std::vector<std::uint64_t> counters_batch(257, 0), counters_seq(257, 0);
  std::vector<std::uint64_t> lengths(257);
  for (auto& l : lengths) l = lens.uniform_u64(40, 1500);

  util::Rng rng_batch(9), rng_seq(9);
  params.update_batch(counters_batch, lengths, rng_batch);
  for (std::size_t i = 0; i < counters_seq.size(); ++i) {
    counters_seq[i] = params.update(counters_seq[i], lengths[i], rng_seq);
  }
  EXPECT_EQ(counters_batch, counters_seq);
  EXPECT_EQ(rng_batch.next(), rng_seq.next());
}

TEST(DecisionTable, ArrayAddBatchMatchesSequentialAdds) {
  const auto params = DiscoParams::for_budget(1 << 30, 12);
  DiscoArray batched(64, 12, params);
  DiscoArray sequential(64, 12, params);
  batched.attach_decision_table();  // only one side uses the fast path

  util::Rng source(21);
  std::vector<std::size_t> slots(500);
  std::vector<std::uint64_t> lengths(500);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i] = source.uniform_u64(0, 63);
    lengths[i] = source.uniform_u64(40, 9000);
  }

  util::Rng rng_batch(33), rng_seq(33);
  batched.add_batch(slots, lengths, rng_batch);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    sequential.add(slots[i], lengths[i], rng_seq);
  }
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched.value(i), sequential.value(i)) << "slot " << i;
  }
  EXPECT_EQ(rng_batch.next(), rng_seq.next());
}

TEST(DecisionTable, EstimatesStayUnbiasedAndWithinTheorem2Cv) {
  // Statistical closure through the table path: counting n bytes many times
  // must land on n in the mean with relative spread within the Theorem 2
  // bound.  (Parity already implies this -- the check guards the harness
  // itself against a future change that breaks both paths together.)
  DiscoParams params = DiscoParams::for_budget(1 << 24, 12);
  params.attach_table((std::uint64_t{1} << 12) - 1);
  const double cv_limit = theory::cv_bound(params.b());

  constexpr int kTrials = 400;
  constexpr int kPackets = 300;
  util::Rng rng(2026);
  double sum = 0.0, sum_sq = 0.0;
  std::uint64_t n = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t c = 0, total = 0;
    util::Rng lens(1000 + t);
    for (int p = 0; p < kPackets; ++p) {
      const std::uint64_t l = lens.uniform_u64(64, 1500);
      c = params.update(c, l, rng);
      total += l;
    }
    n = total;  // same per-trial total: lens streams differ only in order
    const double est = params.estimate(c);
    sum += est;
    sum_sq += est * est;
  }
  const double mean = sum / kTrials;
  const double var = sum_sq / kTrials - mean * mean;
  const double cv = std::sqrt(std::max(0.0, var)) / mean;
  // Trial totals differ slightly (independent length streams), which only
  // widens the spread -- the bound plus sampling slack must still hold.
  EXPECT_NEAR(mean, static_cast<double>(n), 0.05 * static_cast<double>(n));
  EXPECT_LT(cv, cv_limit * 1.5 + 0.02);
}

}  // namespace
}  // namespace disco::core
