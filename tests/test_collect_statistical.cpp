// Statistical regression suite for the cross-site merge (src/collect).
//
// A fleet of REAL monitors -- heterogeneous counter widths (so each site
// runs a different effective base b) plus an additive-error site -- splits
// one deterministic workload; the Collector merges their epoch reports.
// The suite pins the two properties the aggregation tier sells:
//
//   * unbiasedness survives the merge: the mean signed error of the merged
//     global estimate across seeded trials is zero within 3 standard
//     errors (Theorem 1 is per-update, and summing unbiased estimators
//     with ANY mix of error models stays unbiased);
//   * the aggregate intervals are honest: Theorem-2 confidence intervals
//     on merged totals and merged top-k flows cover the exact ground truth
//     at no less than ~the nominal rate (the variance bound is
//     conservative, so empirical coverage should exceed it).
//
// Everything is seeded: failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "collect/collector.hpp"
#include "flowtable/monitor.hpp"

namespace disco::collect {
namespace {

constexpr int kTrials = 50;
constexpr std::uint32_t kFlows = 32;
constexpr std::uint32_t kPacketLen = 800;

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(1024 + i), 443, 6};
}

/// True packet count of flow i (deterministic, skewed).
std::uint64_t true_packets(std::uint32_t i) { return 40 + 22ull * i * i / 7; }

double true_total_bytes() {
  double total = 0.0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    total += static_cast<double>(true_packets(i)) * kPacketLen;
  }
  return total;
}

/// One heterogeneous fleet trial: three sites with different error models
/// split every flow's packets round-robin, rotate, and merge.
Collector::GlobalTotals run_trial(int trial, std::vector<GlobalEstimate>* top,
                                  double confidence = 0.95) {
  flowtable::FlowMonitor::Config wide;   // fine-grained DISCO counters
  wide.max_flows = 256;
  wide.counter_bits = 12;
  wide.max_flow_bytes = 1 << 26;
  wide.max_flow_packets = 1 << 16;
  flowtable::FlowMonitor::Config narrow = wide;  // coarser: larger b
  narrow.counter_bits = 9;
  flowtable::FlowMonitor::Config additive = wide;  // different model entirely
  additive.estimator = flowtable::EstimatorKind::AdditiveError;

  std::vector<flowtable::FlowMonitor> sites;
  wide.seed = static_cast<std::uint64_t>(trial) * 1009 + 1;
  narrow.seed = static_cast<std::uint64_t>(trial) * 1009 + 2;
  additive.seed = static_cast<std::uint64_t>(trial) * 1009 + 3;
  sites.emplace_back(wide);
  sites.emplace_back(narrow);
  sites.emplace_back(additive);

  for (std::uint32_t i = 0; i < kFlows; ++i) {
    const std::uint64_t packets = true_packets(i);
    for (std::uint64_t p = 0; p < packets; ++p) {
      (void)sites[p % sites.size()].ingest(tuple(i), kPacketLen);
    }
  }

  CollectorConfig config;
  config.confidence = confidence;
  Collector collector(config);
  for (std::uint32_t s = 0; s < sites.size(); ++s) {
    (void)collector.ingest(s, flowtable::kReportVersion, sites[s].rotate());
  }
  collector.finalize_all();
  if (top != nullptr) *top = collector.top_k(8);
  return collector.totals();
}

TEST(CollectStatistical, MergedTotalsAreUnbiasedAcrossHeterogeneousFleet) {
  const double truth = true_total_bytes();
  std::vector<double> errors;
  errors.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto totals = run_trial(trial, nullptr);
    EXPECT_TRUE(totals.interval_valid);
    errors.push_back(totals.bytes - truth);
  }
  const double n = static_cast<double>(errors.size());
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= n;
  double var = 0.0;
  for (double e : errors) var += (e - mean) * (e - mean);
  var /= (n - 1.0);
  const double stderr_mean = std::sqrt(var / n);
  // Unbiasedness at 3 standard errors (~99.7% under the CLT).  Guard the
  // degenerate all-exact case with a tiny absolute floor.
  EXPECT_LE(std::abs(mean), 3.0 * stderr_mean + 1e-6 * truth)
      << "mean signed error " << mean << " vs stderr " << stderr_mean;
}

TEST(CollectStatistical, AggregateIntervalsCoverTruthAtNominalRate) {
  const double truth = true_total_bytes();
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto totals = run_trial(trial, nullptr);
    ASSERT_TRUE(totals.interval_valid);
    ASSERT_LT(totals.bytes_low, totals.bytes_high);
    if (totals.bytes_low <= truth && truth <= totals.bytes_high) ++covered;
  }
  // Nominal 95%; the Theorem-2 variance bound is conservative, so the
  // empirical rate should not dip below 90% over 50 seeded trials.
  EXPECT_GE(covered, static_cast<int>(0.90 * kTrials))
      << covered << "/" << kTrials << " trials covered";
}

TEST(CollectStatistical, TopKIntervalsCoverPerFlowTruth) {
  int checks = 0;
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<GlobalEstimate> top;
    (void)run_trial(trial, &top);
    ASSERT_FALSE(top.empty());
    for (const auto& flow : top) {
      ASSERT_TRUE(flow.interval_valid);
      EXPECT_EQ(flow.sites, 3u);  // every site saw every flow
      const std::uint32_t id = flow.flow.src_ip & 0xffffu;
      const double flow_truth =
          static_cast<double>(true_packets(id)) * kPacketLen;
      ++checks;
      if (flow.bytes_low <= flow_truth && flow_truth <= flow.bytes_high) {
        ++covered;
      }
    }
  }
  EXPECT_GE(covered, static_cast<int>(0.90 * checks))
      << covered << "/" << checks << " per-flow intervals covered";
}

TEST(CollectStatistical, HigherConfidenceWidensIntervals) {
  const auto t95 = run_trial(0, nullptr, 0.95);
  const auto t999 = run_trial(0, nullptr, 0.999);
  EXPECT_DOUBLE_EQ(t95.bytes, t999.bytes);  // estimate itself unchanged
  EXPECT_LT(t95.bytes_high - t95.bytes_low, t999.bytes_high - t999.bytes_low);
}

}  // namespace
}  // namespace disco::collect
