// Property-based suites for the DISCO core: invariants that must hold across
// the whole (b, l, workload) parameter space, exercised with parameterized
// gtest sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/disco.hpp"
#include "core/theory.hpp"
#include "flowtable/monitor.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::core {
namespace {

// --- Property: per-update expectation identity across the parameter grid ----

class DecideGrid
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DecideGrid, ExpectationIdentityHolds) {
  const auto [b, l] = GetParam();
  DiscoParams params(b);
  const auto& scale = params.scale();
  // Walk the counter up with this packet size; at every state the decision
  // must satisfy E[f(c')] = f(c) + l.
  std::uint64_t c = 0;
  util::Rng rng(std::hash<double>{}(b) ^ l);
  for (int step = 0; step < 200; ++step) {
    const UpdateDecision d = params.decide(c, l);
    ASSERT_GE(d.p_d, 0.0);
    ASSERT_LE(d.p_d, 1.0);
    const double f_lo = scale.f(static_cast<double>(c + d.delta));
    const double f_hi = scale.f(static_cast<double>(c + d.delta + 1));
    const double fc = scale.f(static_cast<double>(c));
    const double expectation = (1.0 - d.p_d) * f_lo + d.p_d * f_hi - fc;
    ASSERT_NEAR(expectation, static_cast<double>(l),
                std::max(1e-9, 1e-6 * static_cast<double>(l)))
        << "b=" << b << " l=" << l << " c=" << c;
    c = params.update(c, l, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BaseByLength, DecideGrid,
    ::testing::Combine(::testing::Values(1.0005, 1.002, 1.01, 1.05, 1.2, 2.0),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{40},
                                         std::uint64_t{64}, std::uint64_t{576},
                                         std::uint64_t{1500},
                                         std::uint64_t{9000})));

// --- Property: unbiasedness across mixed-length workloads -------------------

class UnbiasednessGrid : public ::testing::TestWithParam<double> {};

TEST_P(UnbiasednessGrid, MixedWorkloadMeanConvergesToTruth) {
  const double b = GetParam();
  DiscoParams params(b);
  util::Rng rng(static_cast<std::uint64_t>(b * 1e6));
  util::Rng len_rng(4242);  // one fixed workload shared by all runs

  std::vector<std::uint64_t> lens;
  std::uint64_t truth = 0;
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t l = len_rng.uniform_u64(40, 1500);
    lens.push_back(l);
    truth += l;
  }

  const int runs = 2500;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    for (auto l : lens) c = params.update(c, l, rng);
    sum += params.estimate(c);
  }
  const double mean = sum / runs;
  // Tolerance: 5 sigma with sigma <= bound * truth / sqrt(runs).
  const double sigma =
      theory::cv_bound(b) * static_cast<double>(truth) / std::sqrt(runs);
  EXPECT_NEAR(mean, static_cast<double>(truth),
              5.0 * sigma + 1e-6 * static_cast<double>(truth))
      << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Bases, UnbiasednessGrid,
                         ::testing::Values(1.001, 1.005, 1.02, 1.1, 1.5));

// --- Property: flow size counting degenerates to ANLS (Section IV-C) --------

TEST(FlowSizeDegeneration, UnitUpdatesNeverSkipCounterValues) {
  // With l = 1, f(c) + 1 <= f(c+1) for any b > 1, so delta must be 0: the
  // counter moves by at most one -- exactly ANLS behaviour.
  for (double b : {1.001, 1.02, 1.3, 2.0}) {
    DiscoParams params(b);
    for (std::uint64_t c = 0; c < 500; c += 7) {
      const UpdateDecision d = params.decide(c, 1);
      ASSERT_EQ(d.delta, 0u) << "b=" << b << " c=" << c;
      // p_d = 1 / b^c, the ANLS sampling probability.
      const double expected_p = std::exp(-static_cast<double>(c) * std::log(b));
      ASSERT_NEAR(d.p_d, expected_p, expected_p * 1e-6 + 1e-12)
          << "b=" << b << " c=" << c;
    }
  }
}

// --- Property: counter growth is concave in the flow length -----------------

TEST(ConcaveGrowth, CounterBitsGrowSubLinearly) {
  // Doubling the traffic must add a roughly constant number of counter
  // values (log growth), not double the counter.
  DiscoParams params(1.01);
  util::Rng rng(55);
  std::vector<double> counters;
  for (std::uint64_t target = 1 << 10; target <= (1 << 20); target <<= 1) {
    double mean_c = 0.0;
    const int runs = 30;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t c = 0;
      std::uint64_t sent = 0;
      while (sent < target) {
        c = params.update(c, 512, rng);
        sent += 512;
      }
      mean_c += static_cast<double>(c);
    }
    counters.push_back(mean_c / runs);
  }
  // Successive differences (per doubling) must shrink or stay flat-ish:
  // geometric counter spacing => equal steps per doubling asymptotically.
  for (std::size_t i = 2; i < counters.size(); ++i) {
    const double step_prev = counters[i - 1] - counters[i - 2];
    const double step_cur = counters[i] - counters[i - 1];
    EXPECT_LT(step_cur, step_prev * 1.25) << "i=" << i;
  }
  // And the final counter is dramatically below the traffic it represents.
  EXPECT_LT(counters.back(), (1 << 20) / 100.0);
}

// --- Property: determinism ----------------------------------------------------

TEST(Determinism, SameSeedSameTrajectory) {
  DiscoParams params(1.013);
  util::Rng a(9001);
  util::Rng b_rng(9001);
  std::uint64_t ca = 0;
  std::uint64_t cb = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t l = 40 + (i * 131) % 1460;
    ca = params.update(ca, l, a);
    cb = params.update(cb, l, b_rng);
    ASSERT_EQ(ca, cb) << "i=" << i;
  }
}

// --- Property: provisioning honours the bit budget across the grid -----------

class BudgetGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BudgetGrid, ProvisionedCounterRespectsBudgetContract) {
  // The provisioning contract is in expectation (Theorem 3 bounds E[c], not
  // every trajectory): at exactly max_flow the counter sits at the budget
  // edge and random fluctuation can cross it occasionally, while a workload
  // with headroom must never overflow.
  const auto [bits, max_flow] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * max_flow);

  // Full load: overflows must be rare events, not systematic.
  DiscoArray full(1, bits, max_flow);
  std::uint64_t sent = 0;
  while (sent < max_flow) {
    const std::uint64_t l = std::min<std::uint64_t>(1500, max_flow - sent);
    full.add(0, l, rng);
    sent += l;
  }
  const auto updates = static_cast<double>(max_flow / 1500 + 1);
  EXPECT_LT(static_cast<double>(full.overflow_count()), 0.01 * updates + 64.0)
      << "bits=" << bits << " max_flow=" << max_flow;

  // Half load (2x headroom): zero overflows, every run.
  DiscoArray headroom(1, bits, max_flow);
  sent = 0;
  while (sent < max_flow / 2) {
    headroom.add(0, 1500, rng);
    sent += 1500;
  }
  EXPECT_EQ(headroom.overflow_count(), 0u)
      << "bits=" << bits << " max_flow=" << max_flow;
}

INSTANTIATE_TEST_SUITE_P(
    BitsByFlow, BudgetGrid,
    ::testing::Combine(::testing::Values(8, 10, 12),
                       ::testing::Values(std::uint64_t{100000},
                                         std::uint64_t{1} << 22,
                                         std::uint64_t{1} << 25)));


// --- Statistical regressions for the pressure layer (pinned seeds) ----------
//
// These pin the robustness layer's accuracy claims (docs/robustness.md) as
// regressions: fixed seeds, fixed workloads, deterministic outcomes.

TEST(PressureRegression, RapZipfHeavyHittersWithinTwiceUnboundedError) {
  // Zipf(1.0) burst trace: burst f sampled with P(flow i) ~ 1/i over 20k
  // flows, replayed into an UNBOUNDED monitor (every flow tracked; pure
  // DISCO estimation error) and into a 4k-budget monitor under RAP.  The
  // top-100 weighted relative error of the bounded monitor must stay within
  // 2x the unbounded baseline -- i.e. admission churn may at most double the
  // paper's native error on the flows that matter.
  constexpr std::uint32_t kFlows = 20000;
  constexpr std::uint32_t kBursts = 150000;
  constexpr std::uint64_t kBurstBytes = 1000;

  std::vector<double> cdf(kFlows);
  double h = 0.0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    h += 1.0 / static_cast<double>(i + 1);
    cdf[i] = h;
  }
  for (double& x : cdf) x /= h;

  using flowtable::FlowMonitor;
  auto make_tuple = [](std::uint32_t i) {
    return flowtable::FiveTuple{0x0a000000u + i, 0xc0a80001u,
                                static_cast<std::uint16_t>(1024 + (i & 0x3fff)),
                                443, 17};
  };
  FlowMonitor::Config bounded_config;
  bounded_config.max_flows = 4096;
  bounded_config.seed = 0x2a9;
  bounded_config.pressure.admission = flowtable::AdmissionPolicy::RandomizedAdmission;
  FlowMonitor bounded(bounded_config);
  FlowMonitor::Config unbounded_config = bounded_config;
  unbounded_config.max_flows = kFlows;
  unbounded_config.pressure.admission = flowtable::AdmissionPolicy::Drop;
  FlowMonitor unbounded(unbounded_config);

  std::vector<double> truth(kFlows, 0.0);
  util::Rng trace_rng(0x217f);  // the pinned workload
  for (std::uint32_t burst = 0; burst < kBursts; ++burst) {
    const double u = trace_rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto flow = static_cast<std::uint32_t>(it - cdf.begin());
    truth[flow] += static_cast<double>(kBurstBytes);
    (void)bounded.ingest_burst(make_tuple(flow), kBurstBytes, 1);
    (void)unbounded.ingest_burst(make_tuple(flow), kBurstBytes, 1);
  }

  // Weighted relative error over the top-100 true heavy hitters: absolute
  // estimate error weighted by (i.e. summed against) true volume.  An
  // untracked flow contributes its full volume as error.
  auto weighted_error = [&](FlowMonitor& monitor) {
    double err = 0.0, mass = 0.0;
    for (std::uint32_t i = 0; i < 100; ++i) {
      const auto est = monitor.query(make_tuple(i));
      const double e = est ? est->bytes : 0.0;
      err += std::abs(e - truth[i]);
      mass += truth[i];
    }
    return err / mass;
  };
  const double base = weighted_error(unbounded);
  const double rap = weighted_error(bounded);
  EXPECT_LT(base, 0.10);  // sanity: the baseline is the native DISCO error
  EXPECT_LE(rap, 2.0 * base)
      << "RAP churn more than doubled the heavy-hitter error (base=" << base
      << ", rap=" << rap << ")";
}

TEST(PressureRegression, RescaleBEstimatesUnbiasedWithin3Sigma) {
  // 400 independent trials of one 8-bit counter provisioned for 64 KiB and
  // driven to 256 KiB under RescaleB (two growth-2x rescales).  Randomized-
  // rounding remaps promise E[f_new(c')] = f_old(c), so the mean estimate
  // must sit within 3 sigma of the true volume -- a rescale that clamped or
  // floored would bias low and trip this.
  constexpr int kTrials = 400;
  constexpr std::uint64_t kBudget = 1 << 16;
  constexpr std::uint64_t kTrue = 4 * kBudget;
  constexpr std::uint64_t kBurst = 1024;

  double sum = 0.0;
  double final_b = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    util::Rng rng(0xbead + static_cast<std::uint64_t>(t));
    DiscoArray array(1, 8, DiscoParams::for_budget(kBudget, 8));
    array.enable_rescale(2.0, 16);
    for (std::uint64_t sent = 0; sent < kTrue; sent += kBurst) {
      array.add(0, kBurst, rng);
    }
    EXPECT_EQ(array.overflow_count(), 0u);
    EXPECT_GE(array.rescale_count(), 1u);
    sum += array.estimate(0);
    final_b = array.params().b();
  }
  const double mean = sum / kTrials;
  // Conservative per-trial sigma: the Theorem 2 CV bound at the FINAL
  // (largest) base times the true volume.
  const double sigma =
      std::sqrt((final_b - 1.0) / 2.0) * static_cast<double>(kTrue);
  EXPECT_NEAR(mean, static_cast<double>(kTrue),
              3.0 * sigma / std::sqrt(static_cast<double>(kTrials)));
}

}  // namespace
}  // namespace disco::core
