// Differential suite: the SIMD tag-probe engine vs. the scalar reference.
//
// BasicFlowTable is templated on its scan engine (flowtable/tag_probe.hpp)
// precisely so this suite can run both engines side by side in ONE binary
// and demand bit-identical tables: identical group masks => identical probe
// decisions => identical slots, sizes, rejections, probe statistics, and
// backward-shift deletions.  Every randomized trial also checks both tables
// against a std::unordered_map mirror, so "identical" can never mean
// "identically wrong".
//
// On builds without SIMD (non-x86, -DDISCO_SIMD=OFF) the UseSimd=true
// instantiation degrades to the scalar engine and this suite pins
// scalar-vs-scalar -- still worth running, since CI's scalar-probe job
// executes exactly that configuration under UBSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flowtable/flow_table.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {
namespace {

using SimdTable = BasicFlowTable<FiveTuple, true>;
using ScalarTable = BasicFlowTable<FiveTuple, false>;

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(1024 + (i & 0x3fff)), 443, 17};
}

/// Asserts every observable of the two tables matches: counters, sizes, and
/// the full (slot, key) relation from for_each.
template <typename A, typename B>
void expect_tables_identical(const A& simd, const B& scalar) {
  ASSERT_EQ(simd.size(), scalar.size());
  ASSERT_EQ(simd.bucket_count(), scalar.bucket_count());
  EXPECT_EQ(simd.rejected_flows(), scalar.rejected_flows());
  EXPECT_EQ(simd.total_probes(), scalar.total_probes());
  EXPECT_EQ(simd.total_lookups(), scalar.total_lookups());
  std::vector<std::pair<std::uint32_t, FiveTuple>> a, b;
  simd.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    a.emplace_back(slot, key);
  });
  scalar.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    b.emplace_back(slot, key);
  });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
}

// The core fuzz: randomized insert/find/erase interleavings over a key pool
// larger than capacity (so the table saturates and rejects), with erase
// weight high enough that slots recycle and backward-shift clusters churn.
// Every operation's return value must match across engines AND against an
// unordered_map mirror of flow -> slot.
TEST(FlowTableDifferential, RandomizedInterleavingsAreBitIdentical) {
  constexpr std::size_t kCapacity = 256;
  constexpr std::uint32_t kPool = 600;  // > capacity: forces rejections
  constexpr int kOps = 20000;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimdTable simd(kCapacity);
    ScalarTable scalar(kCapacity);
    std::unordered_map<std::uint32_t, std::uint32_t> mirror;  // flow -> slot
    util::Rng rng(0xd1f * seed);

    for (int op = 0; op < kOps; ++op) {
      const auto flow = static_cast<std::uint32_t>(rng.uniform_u64(0, kPool - 1));
      const FiveTuple key = make_tuple(flow);
      const double what = rng.next_double();
      if (what < 0.5) {
        const auto a = simd.insert_or_get(key);
        const auto b = scalar.insert_or_get(key);
        ASSERT_EQ(a, b) << "seed " << seed << " op " << op;
        if (a) {
          auto [it, inserted] = mirror.emplace(flow, *a);
          if (!inserted) {
            ASSERT_EQ(it->second, *a)
                << "existing flow returned a different slot";
          }
        } else {
          ASSERT_EQ(mirror.count(flow), 0u)
              << "tracked flow was rejected";
          ASSERT_EQ(mirror.size(), kCapacity) << "rejected below capacity";
        }
      } else if (what < 0.8) {
        const auto a = simd.find(key);
        const auto b = scalar.find(key);
        ASSERT_EQ(a, b) << "seed " << seed << " op " << op;
        const auto it = mirror.find(flow);
        if (it == mirror.end()) {
          ASSERT_FALSE(a.has_value());
        } else {
          ASSERT_TRUE(a.has_value());
          ASSERT_EQ(*a, it->second);
        }
      } else {
        const auto a = simd.erase(key);
        const auto b = scalar.erase(key);
        ASSERT_EQ(a, b) << "seed " << seed << " op " << op;
        const auto it = mirror.find(flow);
        if (it == mirror.end()) {
          ASSERT_FALSE(a.has_value());
        } else {
          ASSERT_EQ(*a, it->second);
          mirror.erase(it);
        }
      }
    }

    expect_tables_identical(simd, scalar);
    ASSERT_EQ(simd.size(), mirror.size());
    // Post-trial sweep: every mirrored flow findable at its slot, every
    // non-mirrored pool flow absent -- in both engines.
    for (std::uint32_t flow = 0; flow < kPool; ++flow) {
      const FiveTuple key = make_tuple(flow);
      const auto a = simd.find(key);
      const auto b = scalar.find(key);
      ASSERT_EQ(a, b);
      const auto it = mirror.find(flow);
      if (it == mirror.end()) {
        ASSERT_FALSE(a.has_value()) << "ghost flow " << flow;
      } else {
        ASSERT_TRUE(a.has_value()) << "lost flow " << flow;
        ASSERT_EQ(*a, it->second);
      }
    }
    expect_tables_identical(simd, scalar);  // sweep lookups counted equally
  }
}

// Backward-shift torture: a tiny table (one or two probe groups) packed to
// capacity so every cluster spans group boundaries and wraps the array,
// then erased in random order with reinserts in between.  This is where a
// tag that failed to move with its bucket -- or a wrap-mirror that went
// stale -- breaks probe sequences.
TEST(FlowTableDifferential, BackwardShiftDeletionUnderWrapAround) {
  constexpr std::size_t kCapacity = 23;  // 32 buckets: two probe groups
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SimdTable simd(kCapacity);
    ScalarTable scalar(kCapacity);
    ASSERT_EQ(simd.bucket_count(), 32u);
    util::Rng rng(0xbacc + seed);

    std::vector<std::uint32_t> live;
    std::uint32_t next_flow = 0;
    // Fill to capacity, then alternate erase-one / insert-one 500 times so
    // clusters continually re-form across the wrap point.
    for (std::size_t i = 0; i < kCapacity; ++i) {
      const FiveTuple key = make_tuple(next_flow);
      ASSERT_EQ(simd.insert_or_get(key), scalar.insert_or_get(key));
      live.push_back(next_flow++);
    }
    for (int round = 0; round < 500; ++round) {
      const auto victim_idx =
          static_cast<std::size_t>(rng.uniform_u64(0, live.size() - 1));
      const std::uint32_t victim = live[victim_idx];
      live[victim_idx] = live.back();
      live.pop_back();
      const FiveTuple vkey = make_tuple(victim);
      const auto ea = simd.erase(vkey);
      const auto eb = scalar.erase(vkey);
      ASSERT_EQ(ea, eb);
      ASSERT_TRUE(ea.has_value());

      const FiveTuple nkey = make_tuple(next_flow);
      const auto ia = simd.insert_or_get(nkey);
      const auto ib = scalar.insert_or_get(nkey);
      ASSERT_EQ(ia, ib);
      ASSERT_TRUE(ia.has_value());
      // Slot recycling: the table is at capacity, so the insert must reuse
      // the slot the erase just freed.
      EXPECT_EQ(*ia, *ea);
      live.push_back(next_flow++);

      // Every live flow must remain reachable after the shift.
      for (const std::uint32_t flow : live) {
        const auto fa = simd.find(make_tuple(flow));
        ASSERT_EQ(fa, scalar.find(make_tuple(flow)));
        ASSERT_TRUE(fa.has_value()) << "flow " << flow << " lost after "
                                    << "erasing " << victim;
      }
    }
    expect_tables_identical(simd, scalar);
  }
}

// clear() must restore both engines to an identical pristine state (tags,
// mirror region, slot lists) while preserving the probe statistics.
TEST(FlowTableDifferential, ClearResetsBothEnginesIdentically) {
  SimdTable simd(64);
  ScalarTable scalar(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(simd.insert_or_get(make_tuple(i)),
              scalar.insert_or_get(make_tuple(i)));
  }
  simd.clear();
  scalar.clear();
  expect_tables_identical(simd, scalar);
  EXPECT_EQ(simd.size(), 0u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto a = simd.insert_or_get(make_tuple(i));
    ASSERT_EQ(a, scalar.insert_or_get(make_tuple(i)));
    ASSERT_TRUE(a.has_value());
  }
  expect_tables_identical(simd, scalar);
}

// The caller-supplied-hash overloads (the batched-prefetch ingest path)
// must behave exactly like the hashing ones.
TEST(FlowTableDifferential, ExplicitHashOverloadsMatchImplicit) {
  SimdTable simd(128);
  ScalarTable scalar(128);
  util::Rng rng(0x4a5);
  for (int op = 0; op < 4000; ++op) {
    const auto flow = static_cast<std::uint32_t>(rng.uniform_u64(0, 199));
    const FiveTuple key = make_tuple(flow);
    const std::uint64_t hash = SimdTable::hash_of(key);
    ASSERT_EQ(hash, ScalarTable::hash_of(key));
    simd.prefetch(hash);  // must be a pure hint: no observable effect
    if ((op & 3) == 0) {
      ASSERT_EQ(simd.find(key, hash), scalar.find(key));
    } else {
      ASSERT_EQ(simd.insert_or_get(key, hash), scalar.insert_or_get(key));
    }
  }
  expect_tables_identical(simd, scalar);
}

}  // namespace
}  // namespace disco::flowtable
