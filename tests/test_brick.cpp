// Unit tests for the BRICK-style variable-width counter store.
#include "counters/brick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace disco::counters {
namespace {

TEST(BrickStore, RejectsBadConfig) {
  BrickStore::Config c;
  c.size = 10;
  c.granularity = 0;
  EXPECT_THROW(BrickStore{c}, std::invalid_argument);
  c = BrickStore::Config{};
  c.size = 10;
  c.bucket_size = 0;
  EXPECT_THROW(BrickStore{c}, std::invalid_argument);
}

TEST(BrickStore, InitiallyZeroAtMinimalWidth) {
  BrickStore store(100, 4);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(store.get(i), 0u);
  // 100 counters x (4 payload + 4 metadata) bits.
  EXPECT_EQ(store.storage_bits(), 800u);
  EXPECT_EQ(store.rebuilds(), 0u);
}

TEST(BrickStore, SmallValuesNeedNoRebuild) {
  BrickStore store(64, 4);
  for (std::size_t i = 0; i < 64; ++i) store.set(i, i % 16);
  EXPECT_EQ(store.rebuilds(), 0u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(store.get(i), i % 16);
}

TEST(BrickStore, WideningPreservesNeighbours) {
  BrickStore store(64, 4);
  for (std::size_t i = 0; i < 64; ++i) store.set(i, 15);
  store.set(10, 0xffff);  // 16 bits: forces a widen + bucket rebuild
  EXPECT_GT(store.rebuilds(), 0u);
  EXPECT_EQ(store.get(10), 0xffffu);
  for (std::size_t i = 0; i < 64; ++i) {
    if (i != 10) { ASSERT_EQ(store.get(i), 15u) << "i=" << i; }
  }
}

TEST(BrickStore, AddAccumulates) {
  BrickStore store(8, 4);
  store.add(3, 100);
  store.add(3, 200);
  EXPECT_EQ(store.get(3), 300u);
}

TEST(BrickStore, ThrowsOnMaxWidthOverflow) {
  BrickStore::Config c;
  c.size = 4;
  c.granularity = 4;
  c.max_width = 8;
  BrickStore store(c);
  store.set(0, 255);
  EXPECT_THROW(store.set(0, 256), std::overflow_error);
}

TEST(BrickStore, StorageGrowsWithValues) {
  BrickStore store(64, 4);
  const std::size_t before = store.storage_bits();
  for (std::size_t i = 0; i < 64; ++i) store.set(i, 1u << 20);
  EXPECT_GT(store.storage_bits(), before);
  // 64 counters at 24-bit quantised width + 4 metadata bits each.
  EXPECT_EQ(store.storage_bits(), 64u * (24 + 4));
}

TEST(BrickStore, CompactVersusFixedWidth) {
  // The composition claim: skewed values (most small, few large) cost far
  // less than provisioning every counter at the maximum width.
  const std::size_t n = 1024;
  BrickStore store(n, 4);
  util::Rng rng(3);
  std::uint64_t max_value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // 95% small counters, 5% large -- the shape DISCO arrays produce under
    // heavy-tailed traffic.
    const std::uint64_t v =
        rng.bernoulli(0.05) ? rng.uniform_u64(1 << 16, 1 << 20)
                            : rng.uniform_u64(0, 255);
    store.set(i, v);
    max_value = std::max(max_value, v);
  }
  const std::size_t fixed_bits = n * 20;  // fixed width sized for the max
  // ~95% of counters shrink from 20 to 8+4 bits; expect a >= 30% saving
  // even after charging per-counter width metadata.
  EXPECT_LT(store.storage_bits(), fixed_bits * 7 / 10);
}

TEST(BrickStore, RandomizedShadowComparison) {
  const std::size_t n = 300;
  BrickStore store(n, 4);
  std::vector<std::uint64_t> shadow(n, 0);
  util::Rng rng(9);
  for (int op = 0; op < 20000; ++op) {
    const std::size_t i = rng.uniform_u64(0, n - 1);
    if (rng.bernoulli(0.7)) {
      const std::uint64_t delta = rng.uniform_u64(0, 10000);
      store.add(i, delta);
      shadow[i] += delta;
    } else {
      const std::uint64_t v = rng.uniform_u64(0, 1u << 30);
      store.set(i, v);
      shadow[i] = v;
    }
    ASSERT_EQ(store.get(i), shadow[i]) << "op=" << op;
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(store.get(i), shadow[i]);
}

TEST(BrickStore, NonMultipleBucketSize) {
  // Size not divisible by bucket_size: the tail bucket is short.
  BrickStore::Config c;
  c.size = 70;
  c.bucket_size = 64;
  BrickStore store(c);
  store.set(69, 12345);
  EXPECT_EQ(store.get(69), 12345u);
  EXPECT_EQ(store.get(68), 0u);
}

}  // namespace
}  // namespace disco::counters
