// Policy-matrix tests for the bounded-memory robustness layer
// (flowtable/pressure.hpp, docs/robustness.md): every admission x saturation
// combination across FlowMonitor, ShardedFlowMonitor, and PipelineMonitor
// must (a) never exceed the flow budget, (b) reconcile its PressureStats
// with ground truth, and (c) keep heavy-flow estimates accurate under
// eviction churn.  The DISCO_FAULTS sections additionally drive the same
// paths through injected allocation failures, ring-full backpressure, and
// clock skew (src/util/fault.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "flowtable/monitor.hpp"
#include "flowtable/sharded_monitor.hpp"
#include "pipeline/pipeline.hpp"
#include "util/fault.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(1024 + (i & 0x3fff)), 443, 17};
}

FlowMonitor::Config policy_config(AdmissionPolicy admission,
                                  SaturationPolicy saturation) {
  FlowMonitor::Config c;
  c.max_flows = 64;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 24;
  c.max_flow_packets = 1 << 16;
  c.seed = 0x5eed;
  c.pressure.admission = admission;
  c.pressure.saturation = saturation;
  return c;
}

struct PolicyCase {
  AdmissionPolicy admission;
  SaturationPolicy saturation;
};

constexpr PolicyCase kMatrix[] = {
    {AdmissionPolicy::Drop, SaturationPolicy::Saturate},
    {AdmissionPolicy::Drop, SaturationPolicy::RescaleB},
    {AdmissionPolicy::RandomizedAdmission, SaturationPolicy::Saturate},
    {AdmissionPolicy::RandomizedAdmission, SaturationPolicy::RescaleB},
    {AdmissionPolicy::EvictSmallest, SaturationPolicy::Saturate},
    {AdmissionPolicy::EvictSmallest, SaturationPolicy::RescaleB},
};

// The one invariant every policy satisfies on a distinct-flow trace:
//   live flows == accepted - rejected - evicted
// (Drop never evicts; RAP and EvictSmallest free one slot per admission
// beyond capacity, so occupancy pins at the budget).
void check_reconciliation(std::size_t live, std::uint64_t offered,
                          std::uint64_t accepted, const PressureStats& p) {
  EXPECT_EQ(accepted + p.flows_rejected, offered);
  EXPECT_EQ(live, accepted - p.flows_evicted);
}

TEST(PressureMatrix, FlowMonitorBudgetNeverExceeded) {
  for (const PolicyCase& pc : kMatrix) {
    FlowMonitor monitor(policy_config(pc.admission, pc.saturation));
    constexpr std::uint32_t kOffered = 512;
    std::uint64_t accepted = 0;
    for (std::uint32_t i = 0; i < kOffered; ++i) {
      if (monitor.ingest(tuple(i), 200 + i)) ++accepted;
      ASSERT_LE(monitor.table().size(), monitor.config().max_flows)
          << "admission=" << static_cast<int>(pc.admission);
    }
    check_reconciliation(monitor.table().size(), kOffered, accepted,
                         monitor.pressure());
    if (pc.admission == AdmissionPolicy::Drop) {
      EXPECT_EQ(monitor.pressure().flows_evicted, 0u);
      EXPECT_EQ(accepted, monitor.config().max_flows);
    } else {
      // Policies that evict keep the table pinned at the budget.
      EXPECT_EQ(monitor.table().size(), monitor.config().max_flows);
    }
    if (pc.admission == AdmissionPolicy::EvictSmallest) {
      // Deterministic admission: every offered flow gets in.
      EXPECT_EQ(accepted, kOffered);
      EXPECT_EQ(monitor.pressure().flows_evicted,
                kOffered - monitor.config().max_flows);
    }
  }
}

TEST(PressureMatrix, ShardedBudgetAndReconciliation) {
  for (const PolicyCase& pc : kMatrix) {
    ShardedFlowMonitor::Config config;
    config.base = policy_config(pc.admission, pc.saturation);
    config.base.max_flows = 256;
    config.shards = 4;
    ShardedFlowMonitor monitor(config);
    // Per-shard budget replicates the constructor's split (25% headroom).
    const std::size_t per_shard =
        std::max<std::size_t>(16, (config.base.max_flows / config.shards) * 5 / 4);
    constexpr std::uint32_t kOffered = 2048;
    std::uint64_t accepted = 0;
    for (std::uint32_t i = 0; i < kOffered; ++i) {
      if (monitor.ingest(tuple(i), 300)) ++accepted;
    }
    EXPECT_LE(monitor.totals().flows, per_shard * config.shards);
    check_reconciliation(monitor.totals().flows, kOffered, accepted,
                         monitor.pressure());
  }
}

TEST(PressureMatrix, PipelineBudgetAndReconciliation) {
  for (const PolicyCase& pc : kMatrix) {
    pipeline::PipelineMonitor::Config config;
    config.base = policy_config(pc.admission, pc.saturation);
    config.base.max_flows = 256;
    config.workers = 2;
    config.producers = 1;
    config.backpressure = pipeline::Backpressure::Block;
    pipeline::PipelineMonitor monitor(config);
    const std::size_t per_shard =
        pipeline::PipelineMonitor::shard_config(config, 0).max_flows;
    constexpr std::uint32_t kOffered = 2048;
    std::uint64_t accepted = 0;
    for (std::uint32_t i = 0; i < kOffered; ++i) {
      if (monitor.ingest(0, tuple(i), 300)) ++accepted;
    }
    monitor.drain();
    EXPECT_EQ(accepted, kOffered);  // Block backpressure is lossless
    EXPECT_LE(monitor.totals().flows, per_shard * config.workers);
    // Pipeline ingest() success means "enqueued", not "admitted": table
    // pressure resolves later, on the worker.  With every offered flow
    // distinct, each is either live, rejected at a full shard, or was
    // admitted and then evicted for a later flow.
    const auto p = monitor.pressure();
    EXPECT_EQ(monitor.totals().flows + p.flows_rejected + p.flows_evicted,
              kOffered);
    monitor.stop();
  }
}

TEST(PressureMatrix, EpochReportCarriesPressure) {
  FlowMonitor monitor(policy_config(AdmissionPolicy::Drop,
                                    SaturationPolicy::Saturate));
  for (std::uint32_t i = 0; i < 256; ++i) (void)monitor.ingest(tuple(i), 100);
  const auto report = monitor.rotate();
  EXPECT_EQ(report.pressure.flows_rejected, 256u - monitor.config().max_flows);
  EXPECT_EQ(report.pressure.flows_rejected,
            monitor.pressure().flows_rejected);
}

// --- saturation policies ----------------------------------------------------

FlowMonitor::Config tiny_budget_config(SaturationPolicy saturation) {
  FlowMonitor::Config c;
  c.max_flows = 16;
  c.counter_bits = 8;
  c.max_flow_bytes = 1 << 16;   // provisioned for 64 KiB flows...
  c.max_flow_packets = 1 << 16;
  c.seed = 0xfeed;
  c.pressure.saturation = saturation;
  return c;
}

TEST(SaturationPolicy, SaturateClampsAndCounts) {
  FlowMonitor monitor(tiny_budget_config(SaturationPolicy::Saturate));
  // ...then driven 16x past the budget: the volume counter must clamp.
  for (int i = 0; i < 1024; ++i) (void)monitor.ingest_burst(tuple(1), 1024, 1);
  EXPECT_GT(monitor.pressure().counters_saturated, 0u);
  EXPECT_EQ(monitor.pressure().rescale_events, 0u);
  const auto est = monitor.query(tuple(1));
  ASSERT_TRUE(est.has_value());
  // A clamped counter under-reports -- that is the policy's documented trade.
  EXPECT_LT(est->bytes, 1024.0 * 1024.0);
}

TEST(SaturationPolicy, RescaleBExtendsRangeUnbiasedly) {
  FlowMonitor monitor(tiny_budget_config(SaturationPolicy::RescaleB));
  constexpr double kTrue = 1024.0 * 1024.0;  // 16x the provisioned budget
  for (int i = 0; i < 1024; ++i) (void)monitor.ingest_burst(tuple(1), 1024, 1);
  EXPECT_GT(monitor.pressure().rescale_events, 0u);
  const auto est = monitor.query(tuple(1));
  ASSERT_TRUE(est.has_value());
  // The grown scale keeps tracking: the estimate must reach well past the
  // original 64 KiB ceiling and land near the true volume (the CV bound
  // after a few growth-2x rescales is still ~0.2 at 8-bit counters).
  EXPECT_GT(est->bytes, 2.0 * (1 << 16));
  EXPECT_NEAR(est->bytes, kTrue, 0.5 * kTrue);
}

TEST(SaturationPolicy, RescaledScaleSurvivesSnapshotRestore) {
  FlowMonitor monitor(tiny_budget_config(SaturationPolicy::RescaleB));
  for (int i = 0; i < 1024; ++i) (void)monitor.ingest_burst(tuple(1), 1024, 1);
  ASSERT_GT(monitor.pressure().rescale_events, 0u);

  std::stringstream buffer;
  monitor.snapshot(buffer);
  FlowMonitor restored = FlowMonitor::restore(buffer);

  const auto before = monitor.query(tuple(1));
  const auto after = restored.query(tuple(1));
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  // Raw counters are only meaningful under the rescaled b; a restore that
  // reverted to the configured scale would deflate the estimate ~16x.
  EXPECT_DOUBLE_EQ(after->bytes, before->bytes);
  EXPECT_DOUBLE_EQ(after->packets, before->packets);
  EXPECT_EQ(restored.pressure().rescale_events,
            monitor.pressure().rescale_events);
}

TEST(SaturationPolicy, RescaledScalePersistsAcrossRotate) {
  FlowMonitor monitor(tiny_budget_config(SaturationPolicy::RescaleB));
  for (int i = 0; i < 1024; ++i) (void)monitor.ingest_burst(tuple(1), 1024, 1);
  const std::uint64_t rescales = monitor.pressure().rescale_events;
  ASSERT_GT(rescales, 0u);
  (void)monitor.rotate();
  // The grown b is a deployment property: the same over-budget flow in the
  // next epoch must NOT trigger a fresh cascade of rescales.
  for (int i = 0; i < 1024; ++i) (void)monitor.ingest_burst(tuple(2), 1024, 1);
  EXPECT_EQ(monitor.pressure().rescale_events, rescales);
}

// --- accuracy under eviction churn ------------------------------------------

TEST(PressureAccuracy, HeavyFlowsSurviveChurnWithinCvBound) {
  // 16 heavy flows and a horde of mice fight over a 64-slot table under RAP.
  // Heavy flows must end up tracked, with estimates within the Theorem 2
  // normal-approximation envelope of their true volume.
  auto config = policy_config(AdmissionPolicy::RandomizedAdmission,
                              SaturationPolicy::Saturate);
  config.max_flows = 64;
  FlowMonitor monitor(config);

  constexpr std::uint32_t kHeavy = 16;
  constexpr int kRounds = 200;
  constexpr std::uint64_t kHeavyBurst = 2000;
  std::uint32_t mouse = 1000;
  for (int round = 0; round < kRounds; ++round) {
    for (std::uint32_t h = 0; h < kHeavy; ++h) {
      (void)monitor.ingest_burst(tuple(h), kHeavyBurst, 2);
    }
    for (int m = 0; m < 8; ++m) {
      (void)monitor.ingest_burst(tuple(mouse++), 120, 1);
    }
  }

  const double b =
      core::DiscoParams::for_budget(config.max_flow_bytes, config.counter_bits).b();
  const double cv = std::sqrt((b - 1.0) / 2.0);
  const double true_bytes = static_cast<double>(kHeavyBurst) * kRounds;
  int tracked = 0;
  for (std::uint32_t h = 0; h < kHeavy; ++h) {
    const auto est = monitor.query(tuple(h));
    if (!est) continue;
    ++tracked;
    // 6 sigma, plus 10% slack for counter inheritance on re-admission.
    EXPECT_NEAR(est->bytes, true_bytes, (6.0 * cv + 0.1) * true_bytes)
        << "heavy flow " << h;
  }
  // RAP's guarantee is probabilistic; with pinned seeds this is a fixed
  // outcome and virtually all heavy flows should hold a slot.
  EXPECT_GE(tracked, static_cast<int>(kHeavy) - 1);
}

TEST(PressureAccuracy, EvictSmallestKeepsTopFlows) {
  auto config = policy_config(AdmissionPolicy::EvictSmallest,
                              SaturationPolicy::Saturate);
  config.max_flows = 64;
  FlowMonitor monitor(config);
  constexpr std::uint32_t kHeavy = 16;
  std::uint32_t mouse = 1000;
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t h = 0; h < kHeavy; ++h) {
      (void)monitor.ingest_burst(tuple(h), 4000, 2);
    }
    for (int m = 0; m < 4; ++m) (void)monitor.ingest_burst(tuple(mouse++), 80, 1);
  }
  const auto top = monitor.top_k(kHeavy);
  int heavy_in_top = 0;
  for (const auto& e : top) {
    if (e.flow.src_ip - 0x0a000000u < kHeavy) ++heavy_in_top;
  }
  EXPECT_GE(heavy_in_top, static_cast<int>(kHeavy) - 2);
}

// --- fault-injection sections (compiled only with -DDISCO_FAULTS=ON) --------

#if DISCO_FAULTS

class FaultFixture : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::disarm_all(); }
};

TEST_F(FaultFixture, AllocFailureCountdownRejectsExactly) {
  util::fault::Plan plan;
  plan.fail_count = 3;  // first 3 slot allocations fail, the rest pass
  util::fault::arm(util::fault::Point::kAllocFailure, plan);

  FlowMonitor monitor(policy_config(AdmissionPolicy::Drop,
                                    SaturationPolicy::Saturate));
  std::uint64_t accepted = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (monitor.ingest(tuple(i), 100)) ++accepted;
  }
  EXPECT_EQ(accepted, 7u);
  EXPECT_EQ(monitor.pressure().flows_rejected, 3u);
  EXPECT_EQ(util::fault::trips(util::fault::Point::kAllocFailure), 3u);
  // Re-ingesting a rejected flow after disarm must succeed (full recovery).
  util::fault::disarm_all();
  EXPECT_TRUE(monitor.ingest(tuple(0), 100));
}

TEST_F(FaultFixture, AllocFailureNeverBreaksBudgetUnderEviction) {
  // Probabilistic allocation failure while an evicting policy churns: the
  // budget invariant must hold even when the post-eviction re-insert fails
  // (the slot is then simply lost until the next admission).
  util::fault::Plan plan;
  plan.probability = 0.2;
  plan.seed = 42;
  util::fault::arm(util::fault::Point::kAllocFailure, plan);

  FlowMonitor monitor(policy_config(AdmissionPolicy::EvictSmallest,
                                    SaturationPolicy::Saturate));
  for (std::uint32_t i = 0; i < 512; ++i) {
    (void)monitor.ingest(tuple(i), 200);
    ASSERT_LE(monitor.table().size(), monitor.config().max_flows);
  }
  EXPECT_GT(util::fault::trips(util::fault::Point::kAllocFailure), 0u);
}

TEST_F(FaultFixture, RingFullDropsAreCountedExactly) {
  util::fault::Plan plan;
  plan.start_after = 100;
  plan.period = 4;  // every 4th push attempt past the first 100 fails
  util::fault::arm(util::fault::Point::kRingFull, plan);

  pipeline::PipelineMonitor::Config config;
  config.base = policy_config(AdmissionPolicy::Drop, SaturationPolicy::Saturate);
  config.base.max_flows = 4096;
  config.workers = 1;
  config.backpressure = pipeline::Backpressure::Drop;
  pipeline::PipelineMonitor monitor(config);

  constexpr std::uint32_t kPackets = 1000;
  std::uint64_t accepted = 0;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    if (monitor.ingest(0, tuple(i), 100)) ++accepted;
  }
  monitor.drain();
  const std::uint64_t trips = util::fault::trips(util::fault::Point::kRingFull);
  EXPECT_GT(trips, 0u);
  EXPECT_EQ(monitor.dropped(), trips);
  EXPECT_EQ(accepted + monitor.dropped(), kPackets);
  // Every accepted packet must be applied downstream despite the faults.
  EXPECT_EQ(monitor.packets_seen(), accepted);
  monitor.stop();
}

TEST_F(FaultFixture, ClockSkewShiftsIdleEviction) {
  // Skew every ingest timestamp 2s into the past: flows stamped at t=3s look
  // idle at t=4s with a 1.5s timeout, which they would not without the skew.
  util::fault::Plan plan;
  plan.fail_count = ~std::uint64_t{0};  // every call
  plan.skew_ns = -2'000'000'000;
  util::fault::arm(util::fault::Point::kClockSkew, plan);

  pipeline::PipelineMonitor::Config config;
  config.base = policy_config(AdmissionPolicy::Drop, SaturationPolicy::Saturate);
  config.workers = 1;
  pipeline::PipelineMonitor monitor(config);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(monitor.ingest(0, tuple(i), 100, 3'000'000'000ull));
  }
  monitor.drain();
  const auto evicted = monitor.evict_idle(4'000'000'000ull, 1'500'000'000ull);
  EXPECT_EQ(evicted.size(), 8u);
  monitor.stop();
}

#endif  // DISCO_FAULTS

}  // namespace
}  // namespace disco::flowtable
