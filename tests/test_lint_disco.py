#!/usr/bin/env python3
"""Self-test for tools/lint_disco.py.

Runs the linter over the fixture trees in tests/lint_fixtures/: the `good`
tree must pass with zero findings, and the `bad` tree must fail with each
rule firing on its seeded violation.  This is what keeps the linter honest:
a regex change that silently stops detecting a rule breaks this test, not
just CI coverage.
"""

import os
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
LINTER = os.path.join(REPO_ROOT, "tools", "lint_disco.py")
FIXTURES = os.path.join(TESTS_DIR, "lint_fixtures")


def run_linter(*args):
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT)
    return proc.returncode, proc.stdout, proc.stderr


class GoodFixtures(unittest.TestCase):
    def test_good_tree_is_clean(self):
        code, out, err = run_linter(os.path.join(FIXTURES, "good"))
        self.assertEqual(code, 0, f"expected clean run\nstdout:{out}\n"
                                  f"stderr:{err}")
        self.assertEqual(out.strip(), "")

    def test_justified_suppression_is_honoured(self):
        # good/src/core/disco.cpp contains a std::exp in a non-whitelisted
        # function, silenced by a disco-lint: allow(...) with a reason.  If
        # suppression handling breaks, the good tree stops being clean and
        # test_good_tree_is_clean catches it -- this test pins that the
        # violation IS there to be suppressed (guards against the fixture
        # rotting into a trivially-clean file).
        fixture = os.path.join(FIXTURES, "good", "src", "core", "disco.cpp")
        with open(fixture, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("disco-lint: allow(hot-path-transcendental)", text)
        self.assertIn("std::exp", text)


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.code, cls.out, cls.err = run_linter(os.path.join(FIXTURES, "bad"))

    def test_bad_tree_fails(self):
        self.assertEqual(self.code, 1, f"stdout:{self.out}\n"
                                       f"stderr:{self.err}")

    def assert_finding(self, rule, path_fragment):
        for line in self.out.splitlines():
            if f"[{rule}]" in line and path_fragment in line:
                return
        self.fail(f"no [{rule}] finding for {path_fragment} in:\n{self.out}")

    def test_hot_path_transcendental_fires(self):
        self.assert_finding("hot-path-transcendental", "src/core/disco.cpp")

    def test_atomic_memory_order_fires_on_defaulted_call(self):
        self.assert_finding("atomic-memory-order",
                            "src/pipeline/packet_ring.hpp:13")

    def test_atomic_memory_order_fires_on_operator_form(self):
        self.assert_finding("atomic-memory-order",
                            "src/pipeline/packet_ring.hpp:18")

    def test_explicit_order_on_same_line_does_not_mask(self):
        # Line 13 mixes head_.load() (bad) with tail_.load(acquire) (fine);
        # exactly one finding must point at it.
        hits = [l for l in self.out.splitlines()
                if "packet_ring.hpp:13" in l]
        self.assertEqual(len(hits), 1, self.out)

    def test_rng_call_site_fires(self):
        self.assert_finding("rng-call-site", "src/core/disco_fixed.hpp")

    def test_header_self_contained_fires(self):
        self.assert_finding("header-self-contained",
                            "src/telemetry/metrics.hpp")

    def test_reasonless_suppression_is_rejected(self):
        self.assert_finding("bad-suppression", "src/core/suppressed.cpp")

    def test_simd_intrinsics_confined_fires(self):
        self.assert_finding("simd-intrinsics-confined",
                            "src/flowtable/simd_probe.cpp")

    def test_atomic_shim_confined_fires(self):
        self.assert_finding("atomic-shim-confined",
                            "src/core/raw_atomic.hpp")

    def test_atomic_shim_confined_fires_on_raw_fence(self):
        # Both the member declaration and the fence call must be reported.
        hits = [l for l in self.out.splitlines()
                if "[atomic-shim-confined]" in l
                and "src/core/raw_atomic.hpp" in l]
        self.assertEqual(len(hits), 2, self.out)
        self.assertTrue(any("atomic_thread_fence" in l for l in hits),
                        self.out)

    def test_shim_header_and_verify_dir_are_exempt(self):
        # good/src/util/atomic.hpp and good/src/verify/model.hpp hold raw
        # std::atomic (+ a raw fence) and the good tree is clean
        # (test_good_tree_is_clean); this pins that the raw usage is really
        # there, so both exemptions are actually tested.
        shim = os.path.join(FIXTURES, "good", "src", "util", "atomic.hpp")
        with open(shim, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("std::atomic<", text)
        self.assertIn("std::atomic_thread_fence", text)
        verify = os.path.join(FIXTURES, "good", "src", "verify", "model.hpp")
        with open(verify, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("std::atomic<", text)

    def test_probe_header_is_exempt(self):
        # good/src/flowtable/tag_probe.hpp holds raw intrinsics and the good
        # tree is clean (test_good_tree_is_clean); this pins that the
        # intrinsics are really there, so the exemption is actually tested.
        fixture = os.path.join(FIXTURES, "good", "src", "flowtable",
                               "tag_probe.hpp")
        with open(fixture, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("_mm_loadu_si128", text)


class RuleSelection(unittest.TestCase):
    def test_rules_flag_filters(self):
        code, out, _ = run_linter("--rules", "rng-call-site",
                                  os.path.join(FIXTURES, "bad"))
        self.assertEqual(code, 1)
        self.assertIn("[rng-call-site]", out)
        self.assertNotIn("[hot-path-transcendental]", out)
        self.assertNotIn("[atomic-memory-order]", out)
        self.assertNotIn("[header-self-contained]", out)
        self.assertNotIn("[atomic-shim-confined]", out)

    def test_unknown_rule_is_usage_error(self):
        code, _, err = run_linter("--rules", "no-such-rule",
                                  os.path.join(FIXTURES, "bad"))
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_list_rules(self):
        code, out, _ = run_linter("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("hot-path-transcendental", "atomic-memory-order",
                     "rng-call-site", "header-self-contained",
                     "simd-intrinsics-confined", "atomic-shim-confined"):
            self.assertIn(rule, out)


class RealSources(unittest.TestCase):
    def test_src_tree_is_clean(self):
        # The invariant gate over the real sources; the same check CI runs.
        code, out, err = run_linter(os.path.join(REPO_ROOT, "src"))
        self.assertEqual(code, 0, f"src/ has lint findings:\n{out}\n{err}")


if __name__ == "__main__":
    unittest.main()
