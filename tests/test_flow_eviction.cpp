// Tests for flow-table deletion (backward-shift) and the monitor's
// NetFlow-style idle eviction.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "flowtable/flow_table.hpp"
#include "flowtable/monitor.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0xc0000000u + i * 7919, 0x0a0a0a0au,
                   static_cast<std::uint16_t>(i), 443, 6};
}

TEST(FlowTableErase, MissingKeyIsNoOp) {
  FlowTable table(16);
  EXPECT_FALSE(table.erase(tuple(1)).has_value());
}

TEST(FlowTableErase, FreesSlotForReuse) {
  FlowTable table(4);
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(table.insert_or_get(tuple(i)));
  EXPECT_FALSE(table.insert_or_get(tuple(9)).has_value());  // full
  const auto freed = table.erase(tuple(2));
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(table.size(), 3u);
  const auto slot = table.insert_or_get(tuple(9));
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, *freed);  // recycled slot
  EXPECT_FALSE(table.find(tuple(2)).has_value());
  EXPECT_TRUE(table.find(tuple(9)).has_value());
}

TEST(FlowTableErase, BackwardShiftKeepsClusterSearchable) {
  // Build a probe cluster, delete from its middle, and verify every
  // remaining key still resolves (the classic tombstone-free deletion trap).
  FlowTable table(512);
  std::vector<FiveTuple> keys;
  for (std::uint32_t i = 0; i < 400; ++i) {
    keys.push_back(tuple(i));
    ASSERT_TRUE(table.insert_or_get(keys.back()).has_value());
  }
  // Delete every third key.
  for (std::size_t i = 0; i < keys.size(); i += 3) {
    ASSERT_TRUE(table.erase(keys[i]).has_value()) << i;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool deleted = (i % 3 == 0);
    EXPECT_EQ(table.find(keys[i]).has_value(), !deleted) << i;
  }
}

TEST(FlowTableErase, RandomizedChurnAgainstUnorderedMap) {
  FlowTable table(300);
  std::unordered_map<FiveTuple, std::uint32_t> shadow;
  util::Rng rng(7);
  for (int op = 0; op < 40000; ++op) {
    const auto key = tuple(static_cast<std::uint32_t>(rng.uniform_u64(0, 500)));
    if (rng.bernoulli(0.6)) {
      const auto slot = table.insert_or_get(key);
      const auto it = shadow.find(key);
      if (it != shadow.end()) {
        ASSERT_TRUE(slot.has_value());
        ASSERT_EQ(*slot, it->second) << "op=" << op;
      } else if (shadow.size() < 300) {
        ASSERT_TRUE(slot.has_value());
        shadow.emplace(key, *slot);
      } else {
        ASSERT_FALSE(slot.has_value());
      }
    } else {
      const auto erased = table.erase(key);
      ASSERT_EQ(erased.has_value(), shadow.erase(key) > 0) << "op=" << op;
    }
    ASSERT_EQ(table.size(), shadow.size());
  }
  // Final sweep: every shadow key resolves to its recorded slot.
  for (const auto& [key, slot] : shadow) {
    const auto found = table.find(key);
    ASSERT_TRUE(found.has_value());
    ASSERT_EQ(*found, slot);
  }
}

TEST(FlowTableErase, ForEachSkipsFreedSlots) {
  FlowTable table(8);
  for (std::uint32_t i = 0; i < 5; ++i) (void)table.insert_or_get(tuple(i));
  (void)table.erase(tuple(1));
  (void)table.erase(tuple(3));
  std::unordered_set<std::uint16_t> seen;
  table.for_each([&](std::uint32_t, const FiveTuple& key) {
    seen.insert(key.src_port);
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_FALSE(seen.contains(1));
  EXPECT_FALSE(seen.contains(3));
}

// --- monitor idle eviction ----------------------------------------------------

FlowMonitor::Config monitor_config() {
  FlowMonitor::Config c;
  c.max_flows = 16;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 24;
  c.max_flow_packets = 1 << 16;
  c.seed = 1;
  return c;
}

TEST(MonitorEviction, IdleFlowsExportedAndRemoved) {
  FlowMonitor monitor(monitor_config());
  // Flow 0 active at t = 0 only; flow 1 active through t = 10s.
  for (int i = 0; i < 100; ++i) (void)monitor.ingest(tuple(0), 500, 0);
  for (int i = 0; i < 100; ++i) {
    (void)monitor.ingest(tuple(1), 500, static_cast<std::uint64_t>(i) * 100'000'000);
  }
  const auto evicted = monitor.evict_idle(10'000'000'000ull, 5'000'000'000ull);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].flow, tuple(0));
  EXPECT_NEAR(evicted[0].bytes, 50000.0, 50000.0 * 0.3);
  EXPECT_FALSE(monitor.query(tuple(0)).has_value());
  EXPECT_TRUE(monitor.query(tuple(1)).has_value());
}

TEST(MonitorEviction, EvictedSlotReusedCleanly) {
  auto config = monitor_config();
  config.max_flows = 2;
  FlowMonitor monitor(config);
  (void)monitor.ingest(tuple(0), 1000, 0);
  (void)monitor.ingest(tuple(1), 1000, 0);
  EXPECT_FALSE(monitor.ingest(tuple(2), 1000, 1));  // full
  (void)monitor.evict_idle(10'000'000'000ull, 1'000'000'000ull);
  // Both idle flows evicted; new flows start from zero counters.
  ASSERT_TRUE(monitor.ingest(tuple(2), 700, 10'000'000'001ull));
  const auto est = monitor.query(tuple(2));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->bytes, 700.0, 700.0 * 0.5);
  EXPECT_NEAR(est->packets, 1.0, 0.6);
}

TEST(MonitorEviction, NothingIdleNothingEvicted) {
  FlowMonitor monitor(monitor_config());
  for (std::uint32_t i = 0; i < 5; ++i) (void)monitor.ingest(tuple(i), 100, 1000);
  EXPECT_TRUE(monitor.evict_idle(1500, 1000).empty());
  EXPECT_EQ(monitor.totals().flows, 5u);
}

TEST(MonitorEviction, SnapshotAfterEvictionRoundTrips) {
  FlowMonitor monitor(monitor_config());
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (int p = 0; p < 50; ++p) {
      (void)monitor.ingest(tuple(i), 600, i < 5 ? 0 : 9'000'000'000ull);
    }
  }
  (void)monitor.evict_idle(10'000'000'000ull, 5'000'000'000ull);  // drops 0-4
  std::stringstream buf;
  monitor.snapshot(buf);
  const auto restored = FlowMonitor::restore(buf);
  EXPECT_EQ(restored.totals().flows, 5u);
  for (std::uint32_t i = 5; i < 10; ++i) {
    const auto a = monitor.query(tuple(i));
    const auto b = restored.query(tuple(i));
    ASSERT_TRUE(a && b);
    EXPECT_DOUBLE_EQ(a->bytes, b->bytes);
  }
}

}  // namespace
}  // namespace disco::flowtable
