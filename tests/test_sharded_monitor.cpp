// Tests for the thread-safe sharded monitor, including a multi-threaded
// ingest stress test.
#include "flowtable/sharded_monitor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a800000u + i * 31, 0x01010101u,
                   static_cast<std::uint16_t>(2000 + i), 443, 6};
}

ShardedFlowMonitor::Config config(unsigned shards) {
  ShardedFlowMonitor::Config c;
  c.base.max_flows = 4096;
  c.base.counter_bits = 12;
  c.base.max_flow_bytes = 1 << 26;
  c.base.max_flow_packets = 1 << 18;
  c.base.seed = 77;
  c.shards = shards;
  return c;
}

TEST(ShardedMonitor, RejectsBadShardCount) {
  auto c = config(1);
  c.shards = 0;
  EXPECT_THROW(ShardedFlowMonitor{c}, std::invalid_argument);
}

TEST(ShardedMonitor, SingleThreadBehavesLikeMonitor) {
  ShardedFlowMonitor sharded(config(8));
  std::uint64_t truth = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t len = 64 + (i * 97) % 1400;
    ASSERT_TRUE(sharded.ingest(tuple(i % 50), len));
    truth += len;
  }
  EXPECT_EQ(sharded.packets_seen(), 5000u);
  const auto totals = sharded.totals();
  EXPECT_EQ(totals.flows, 50u);
  EXPECT_NEAR(totals.bytes, static_cast<double>(truth),
              static_cast<double>(truth) * 0.1);
}

TEST(ShardedMonitor, QueriesRouteToOwningShard) {
  ShardedFlowMonitor sharded(config(4));
  for (int i = 0; i < 100; ++i) (void)sharded.ingest(tuple(3), 1000);
  const auto est = sharded.query(tuple(3));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->bytes, 100000.0, 100000.0 * 0.3);
  EXPECT_FALSE(sharded.query(tuple(4)).has_value());
}

TEST(ShardedMonitor, TopKMergesAcrossShards) {
  ShardedFlowMonitor sharded(config(4));
  // Volumes 1x..8x across 8 flows which land on different shards.
  for (std::uint32_t f = 0; f < 8; ++f) {
    for (std::uint32_t i = 0; i < (f + 1) * 50; ++i) {
      (void)sharded.ingest(tuple(f), 500);
    }
  }
  const auto top = sharded.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].flow, tuple(7));
  EXPECT_GE(top[0].bytes, top[1].bytes);
  EXPECT_GE(top[1].bytes, top[2].bytes);
}

TEST(ShardedMonitor, MemoryAggregates) {
  ShardedFlowMonitor sharded(config(8));
  const auto m = sharded.memory();
  EXPECT_GT(m.volume_counter_bits, 0u);
  EXPECT_EQ(m.volume_counter_bits, m.size_counter_bits);
}

TEST(ShardedMonitor, ConcurrentIngestCountsEveryPacket) {
  // 8 threads hammer overlapping flow sets; every accepted packet must be
  // accounted exactly once (packets_seen) and per-flow estimates must land
  // near the exact per-flow truth.
  ShardedFlowMonitor sharded(config(8));
  const unsigned threads = 8;
  const int packets_per_thread = 20000;
  const std::uint32_t flow_count = 64;
  const std::uint32_t packet_len = 512;

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1000 + t);
      std::uint64_t local = 0;
      for (int i = 0; i < packets_per_thread; ++i) {
        const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, flow_count - 1));
        if (sharded.ingest(tuple(f), packet_len)) ++local;
      }
      accepted += local;
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(accepted.load(), static_cast<std::uint64_t>(threads) * packets_per_thread);
  EXPECT_EQ(sharded.packets_seen(), accepted.load());

  const auto totals = sharded.totals();
  const double truth_bytes =
      static_cast<double>(accepted.load()) * packet_len;
  EXPECT_EQ(totals.flows, flow_count);
  EXPECT_NEAR(totals.bytes, truth_bytes, truth_bytes * 0.05);
  EXPECT_NEAR(totals.packets, static_cast<double>(accepted.load()),
              static_cast<double>(accepted.load()) * 0.05);
}

TEST(ShardedMonitor, RotateUnderConcurrentIngest) {
  // Epoch rotation while other threads are mid-ingest: every accepted packet
  // must land in exactly one epoch (the per-shard epoch-boundary semantics
  // documented on rotate()), cumulative packets_seen must survive rotation,
  // and nothing deadlocks.  This is the TSan-facing companion to
  // ConcurrentIngestCountsEveryPacket, which never rotates.
  ShardedFlowMonitor sharded(config(4));
  const unsigned threads = 4;
  const int packets_per_thread = 15000;

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      util::Rng rng(3000 + t);
      std::uint64_t local = 0;
      for (int i = 0; i < packets_per_thread; ++i) {
        const auto f = static_cast<std::uint32_t>(rng.uniform_u64(0, 63));
        if (sharded.ingest(tuple(f), 300)) ++local;
      }
      accepted += local;
    });
  }

  double reported_packets = 0.0;
  for (int r = 0; r < 5; ++r) {
    const auto report = sharded.rotate();
    reported_packets += report.totals.packets;
    std::this_thread::yield();
  }
  for (auto& w : writers) w.join();
  reported_packets += sharded.rotate().totals.packets;

  EXPECT_EQ(accepted.load(),
            static_cast<std::uint64_t>(threads) * packets_per_thread);
  EXPECT_EQ(sharded.packets_seen(), accepted.load());
  EXPECT_EQ(sharded.totals().flows, 0u);  // everything rotated out
  // Per-epoch totals are unbiased estimates; summed across epochs they must
  // reconstruct the accepted packet count closely.
  EXPECT_NEAR(reported_packets, static_cast<double>(accepted.load()),
              static_cast<double>(accepted.load()) * 0.05);
}

TEST(ShardedMonitor, ConcurrentMixedReadersAndWriters) {
  // Writers ingest while readers continuously query and aggregate; nothing
  // crashes, tears, or deadlocks, and final state is consistent.
  ShardedFlowMonitor sharded(config(4));
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sharded.totals();
      (void)sharded.top_k(5);
      (void)sharded.query(tuple(1));
    }
  });
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        (void)sharded.ingest(tuple((t * 16 + i) % 32), 256);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(sharded.packets_seen(), 40000u);
  EXPECT_EQ(sharded.totals().flows, 32u);
}

}  // namespace
}  // namespace disco::flowtable
