// Tests for the pcap export/import path.
#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "trace/synthetic.hpp"

namespace disco::trace {
namespace {

std::vector<PacketRecord> sample_packets() {
  util::Rng rng(3);
  auto flows = scenario2().make_flows(8, rng);
  return PacketStream(std::move(flows), 1, 4, 9).drain();
}

TEST(Pcap, RoundTripPreservesRecords) {
  const auto packets = sample_packets();
  std::stringstream buf;
  write_pcap(buf, packets);
  const auto parsed = read_pcap(buf);
  ASSERT_EQ(parsed.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    ASSERT_EQ(parsed[i].flow_id, packets[i].flow_id) << i;
    // Lengths below the IP+UDP minimum (28 B) are clamped on export; the
    // synthetic generators never produce them (40 B floor).
    ASSERT_EQ(parsed[i].length, packets[i].length) << i;
    ASSERT_EQ(parsed[i].timestamp_ns, packets[i].timestamp_ns) << i;
  }
}

TEST(Pcap, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_pcap(buf, {});
  EXPECT_TRUE(read_pcap(buf).empty());
}

TEST(Pcap, GlobalHeaderIsWellFormed) {
  std::stringstream buf;
  write_pcap(buf, {});
  const std::string bytes = buf.str();
  ASSERT_EQ(bytes.size(), 24u);  // classic pcap global header
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  EXPECT_EQ(magic, kPcapMagicNanos);
}

TEST(Pcap, TinyPacketsClampToWireMinimum) {
  std::vector<PacketRecord> packets = {{0, 10, 0}};  // below IP+UDP minimum
  std::stringstream buf;
  write_pcap(buf, packets);
  const auto parsed = read_pcap(buf);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].length, 28u);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream buf;
  buf << "not a pcap file at all.....";
  EXPECT_THROW((void)read_pcap(buf), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedFrame) {
  const auto packets = sample_packets();
  std::stringstream buf;
  write_pcap(buf, packets);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 20);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)read_pcap(cut), std::runtime_error);
}

// --- malformed-input hardening ----------------------------------------------
// Offsets within a single-record capture: global header [0,24), record header
// [24,40) = ts_sec, ts_nsec, incl_len (32), orig_len (36), frame from 40.

std::string one_packet_bytes() {
  std::vector<PacketRecord> packets = {{7, 400, 1000}};
  std::stringstream buf;
  write_pcap(buf, packets);
  return buf.str();
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  ASSERT_LE(offset + 4, bytes.size());
  std::memcpy(bytes.data() + offset, &value, 4);
}

TEST(Pcap, RejectsTruncatedGlobalHeader) {
  std::string bytes = one_packet_bytes();
  bytes.resize(10);  // magic survives, rest of the global header gone
  std::stringstream cut(bytes);
  EXPECT_THROW((void)read_pcap(cut), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedRecordHeader) {
  std::string bytes = one_packet_bytes();
  bytes.resize(24 + 8);  // timestamps only; incl_len/orig_len missing
  std::stringstream cut(bytes);
  EXPECT_THROW((void)read_pcap(cut), std::runtime_error);
}

TEST(Pcap, RejectsAbsurdCaplen) {
  // A hostile incl_len must be rejected outright, not used as a read size.
  std::string bytes = one_packet_bytes();
  patch_u32(bytes, 32, 0xffffffffu);
  std::stringstream evil(bytes);
  EXPECT_THROW((void)read_pcap(evil), std::runtime_error);
}

TEST(Pcap, RejectsZeroLengthPacket) {
  // orig_len = 0 with a valid frame: pre-fix this wrapped through
  // `orig_len - kEthernetHeader` into a ~4 GiB length.
  std::string bytes = one_packet_bytes();
  patch_u32(bytes, 36, 0);
  std::stringstream evil(bytes);
  EXPECT_THROW((void)read_pcap(evil), std::runtime_error);
}

TEST(Pcap, RejectsOrigLenBelowHeaders) {
  std::string bytes = one_packet_bytes();
  patch_u32(bytes, 36, 20);  // shorter than Ethernet+IP+UDP headers
  std::stringstream evil(bytes);
  EXPECT_THROW((void)read_pcap(evil), std::runtime_error);
}

TEST(Pcap, FileRoundTrip) {
  const auto packets = sample_packets();
  const std::string path = ::testing::TempDir() + "/disco_test.pcap";
  write_pcap_file(path, packets);
  const auto parsed = read_pcap_file(path);
  EXPECT_EQ(parsed.size(), packets.size());
  std::remove(path.c_str());
}

TEST(Pcap, ChecksumFieldIsValid) {
  // The IPv4 checksum over the emitted header must verify to zero when
  // recomputed including the checksum field (RFC 1071 property).
  std::vector<PacketRecord> packets = {{42, 500, 123456789}};
  std::stringstream buf;
  write_pcap(buf, packets);
  const std::string bytes = buf.str();
  // global header 24 + record header 16 + ethernet 14 -> IP at offset 54.
  const auto* ip = reinterpret_cast<const std::uint8_t*>(bytes.data()) + 54;
  std::uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += static_cast<std::uint32_t>((ip[i] << 8) | ip[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(static_cast<std::uint16_t>(~sum), 0u);
}

}  // namespace
}  // namespace disco::trace
