// Unit tests for the traffic distributions.
#include "trace/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/histogram.hpp"

namespace disco::trace {
namespace {

constexpr int kSamples = 200000;

TEST(ParetoCount, RejectsBadParameters) {
  EXPECT_THROW(ParetoCount(0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(ParetoCount(1.1, 0.5), std::invalid_argument);
}

TEST(ParetoCount, SamplesAtLeastScale) {
  ParetoCount dist(1.053, 4.0);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(dist.sample(rng), 4u);
}

TEST(ParetoCount, TailFollowsPowerLaw) {
  // Samples are floored to integers, so P(sample > 8) = P(X >= 9) =
  // (scale/9)^shape for the continuous Pareto X.
  const double shape = 1.5;
  ParetoCount dist(shape, 4.0);
  util::Rng rng(2);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.sample(rng) > 8) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::pow(4.0 / 9.0, shape),
              0.01);
}

TEST(ParetoCount, CapTruncatesTail) {
  ParetoCount dist(1.05, 4.0, 100);
  util::Rng rng(3);
  for (int i = 0; i < 50000; ++i) ASSERT_LE(dist.sample(rng), 100u);
}

TEST(ExponentialCount, MeanMatches) {
  ExponentialCount dist(800.0);
  util::Rng rng(4);
  util::StreamingStats s;
  for (int i = 0; i < kSamples; ++i) s.add(static_cast<double>(dist.sample(rng)));
  // Integer floor costs ~0.5; the min-floor at 1 adds a hair.
  EXPECT_NEAR(s.mean(), 800.0, 8.0);
}

TEST(ExponentialCount, RespectsMinimum) {
  ExponentialCount dist(2.0, 5);
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(dist.sample(rng), 5u);
}

TEST(UniformCount, RangeAndMean) {
  UniformCount dist(2, 1600);
  util::Rng rng(6);
  util::StreamingStats s;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = dist.sample(rng);
    ASSERT_GE(v, 2u);
    ASSERT_LE(v, 1600u);
    s.add(static_cast<double>(v));
  }
  EXPECT_NEAR(s.mean(), 801.0, 5.0);  // paper Scenario 3: observed ~772-801
}

TEST(TruncatedExponentialLength, StaysInBounds) {
  TruncatedExponentialLength dist(100.0, 40, 1500);
  util::Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t l = dist.sample(rng);
    ASSERT_GE(l, 40u);
    ASSERT_LE(l, 1500u);
  }
}

TEST(TruncatedExponentialLength, ClippedMeanNearPaperScenarios) {
  // The paper's scenarios report ~106 B mean packet length; clipping an
  // Exp(100) into [40, 1500] lands close to that.
  TruncatedExponentialLength dist(100.0, 40, 1500);
  util::Rng rng(8);
  util::StreamingStats s;
  for (int i = 0; i < kSamples; ++i) s.add(static_cast<double>(dist.sample(rng)));
  EXPECT_GT(s.mean(), 100.0);
  EXPECT_LT(s.mean(), 125.0);
}

TEST(UniformLength, RangeIsInclusive) {
  UniformLength dist(64, 1024);
  util::Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t l = dist.sample(rng);
    ASSERT_GE(l, 64u);
    ASSERT_LE(l, 1024u);
    saw_lo |= (l == 64);
    saw_hi |= (l == 1024);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ConstantLength, AlwaysSame) {
  ConstantLength dist(1);
  util::Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 1u);
}

TEST(BimodalLength, RejectsInconsistentConfig) {
  BimodalLength::Config bad;
  bad.small_weight = 0.8;
  bad.full_weight = 0.4;  // weights > 1
  EXPECT_THROW(BimodalLength{bad}, std::invalid_argument);
  bad = {};
  bad.mtu = 50;  // below small_hi
  EXPECT_THROW(BimodalLength{bad}, std::invalid_argument);
}

TEST(BimodalLength, ModesHaveConfiguredMass) {
  BimodalLength dist;  // defaults: 50% small, 28% MTU
  util::Rng rng(11);
  int small = 0;
  int mtu = 0;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint32_t l = dist.sample(rng);
    ASSERT_GE(l, 40u);
    ASSERT_LE(l, 1500u);
    if (l <= 64) ++small;
    if (l == 1500) ++mtu;
  }
  EXPECT_NEAR(static_cast<double>(small) / kSamples, 0.50, 0.01);
  EXPECT_NEAR(static_cast<double>(mtu) / kSamples, 0.28, 0.01);
}

TEST(BimodalLength, MeanNearRealTraceTarget) {
  // DESIGN.md: mean ~620 B so the real-trace stand-in's mean flow volume
  // lands near the paper's 409.5 KB.
  BimodalLength dist;
  util::Rng rng(12);
  util::StreamingStats s;
  for (int i = 0; i < kSamples; ++i) s.add(static_cast<double>(dist.sample(rng)));
  EXPECT_NEAR(s.mean(), 620.0, 25.0);
}

}  // namespace
}  // namespace disco::trace
