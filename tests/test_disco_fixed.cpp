// Unit tests for the fixed-point (Log&Exp table) DISCO implementation path.
#include "core/disco_fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/disco.hpp"
#include "util/math.hpp"

namespace disco::core {
namespace {

util::LogExpTable make_table(double b) { return util::LogExpTable(b); }

TEST(FixedPointDisco, DecisionInvariants) {
  const auto table = make_table(1.004);
  FixedPointDisco logic(table);
  for (std::uint64_t c : {0ull, 1ull, 50ull, 700ull, 2500ull}) {
    for (std::uint64_t l : {1ull, 40ull, 1500ull, 100000ull}) {
      const FixedUpdateDecision d = logic.decide(c, l);
      ASSERT_GT(d.denominator, 0u) << "c=" << c << " l=" << l;
      ASSERT_LE(d.numerator, d.denominator) << "c=" << c << " l=" << l;
      // The landing interval must bracket the target.
      const std::uint64_t j = c + d.delta + 1;
      ASSERT_GE(table.f(j), table.f(c) + l);
      ASSERT_LT(table.f(j - 1), table.f(c) + l);
    }
  }
}

TEST(FixedPointDisco, ExactIntegerExpectationPerUpdate) {
  // E[ftilde(c')] - ftilde(c) == l exactly -- quantisation costs variance,
  // never bias (see header).  Verified from the integer decision directly.
  const auto table = make_table(1.002);
  FixedPointDisco logic(table);
  for (std::uint64_t c : {0ull, 10ull, 321ull, 1500ull}) {
    for (std::uint64_t l : {1ull, 81ull, 1420ull, 65536ull}) {
      const FixedUpdateDecision d = logic.decide(c, l);
      const std::uint64_t j = c + d.delta + 1;
      const std::uint64_t f_lo = table.f(j - 1);
      const std::uint64_t f_hi = table.f(j);
      // Expected new f value, in exact rational arithmetic:
      //   f_lo + num/den * (f_hi - f_lo)   with den == f_hi - f_lo
      // => f_lo + num == ftilde(c) + l.
      EXPECT_EQ(f_hi - f_lo, d.denominator);
      EXPECT_EQ(f_lo + d.numerator, table.f(c) + l) << "c=" << c << " l=" << l;
    }
  }
}

TEST(FixedPointDisco, UpdateMonotoneNonDecreasing) {
  const auto table = make_table(1.01);
  FixedPointDisco logic(table);
  util::Rng rng(3);
  std::uint64_t c = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t next = logic.update(c, 1 + (i * 7) % 1500, rng);
    ASSERT_GE(next, c);
    c = next;
  }
}

TEST(FixedPointDisco, ZeroLengthIsNoOp) {
  const auto table = make_table(1.01);
  FixedPointDisco logic(table);
  util::Rng rng(3);
  EXPECT_EQ(logic.update(17, 0, rng), 17u);
}

TEST(FixedPointDisco, UnbiasedOverManyRuns) {
  const auto table = make_table(1.02);
  FixedPointDisco logic(table);
  const std::vector<std::uint64_t> lens = {81, 1420, 142, 691};
  const double truth = 2334.0;
  util::Rng rng(13);
  const int runs = 5000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    for (auto l : lens) c = logic.update(c, l, rng);
    sum += logic.estimate(c);
  }
  EXPECT_NEAR(sum / runs, truth, truth * 0.4 / std::sqrt(runs) * 4.0);
}

TEST(FixedPointDisco, AgreesWithDoublePathOnAverage) {
  // Same b, same workload: the two math paths must estimate the same truth
  // within Monte-Carlo noise.  This pins the NP implementation to the
  // reference implementation like the paper's exact checking element does.
  const double b = 1.01;
  const auto table = make_table(b);
  FixedPointDisco fixed(table);
  DiscoParams ref(b);

  util::Rng rng_fixed(101);
  util::Rng rng_ref(202);
  const int runs = 3000;
  double sum_fixed = 0.0;
  double sum_ref = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t cf = 0;
    std::uint64_t cr = 0;
    for (std::uint64_t l : {300ull, 64ull, 1500ull, 977ull}) {
      cf = fixed.update(cf, l, rng_fixed);
      cr = ref.update(cr, l, rng_ref);
    }
    sum_fixed += fixed.estimate(cf);
    sum_ref += ref.estimate(cr);
  }
  const double mean_fixed = sum_fixed / runs;
  const double mean_ref = sum_ref / runs;
  EXPECT_NEAR(mean_fixed, mean_ref, mean_ref * 0.02);
}

TEST(FixedPointDiscoArray, IndependentSlotsAndOverflowAccounting) {
  const auto table = make_table(1.02);
  FixedPointDiscoArray array(4, 10, table);
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) array.add(1, 1000, rng);
  EXPECT_EQ(array.value(0), 0u);
  EXPECT_GT(array.value(1), 0u);
  EXPECT_EQ(array.overflow_count(), 0u);
  EXPECT_EQ(array.storage_bits(), 40u);
  EXPECT_NEAR(array.estimate(1), 50000.0, 50000.0 * 0.5);
}

TEST(FixedPointDiscoArray, SaturatesAndCountsOverflow) {
  const auto table = make_table(1.0005);  // slow growth: tiny capacity in 4 bits
  FixedPointDiscoArray array(1, 4, table);
  util::Rng rng(37);
  for (int i = 0; i < 200; ++i) array.add(0, 1500, rng);
  EXPECT_GT(array.overflow_count(), 0u);
  EXPECT_EQ(array.value(0), 15u);
}

class FixedVsDoubleBits : public ::testing::TestWithParam<int> {};

TEST_P(FixedVsDoubleBits, FixedPathErrorComparableAcrossBudgets) {
  // For each counter budget, run a modest workload and require the
  // fixed-point estimate to stay within a small factor of the double-path
  // accuracy -- table quantisation must not dominate estimation error.
  const int bits = GetParam();
  const std::uint64_t max_flow = 1 << 22;
  const double b = util::choose_b(max_flow, bits);
  const auto table = make_table(b);
  FixedPointDisco fixed(table);
  DiscoParams ref(b);

  util::Rng rng(bits * 1000u + 7u);
  const std::uint64_t truth = 500000;
  double err_fixed = 0.0;
  double err_ref = 0.0;
  const int runs = 60;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t cf = 0;
    std::uint64_t cr = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      const std::uint64_t l = 500;
      cf = fixed.update(cf, l, rng);
      cr = ref.update(cr, l, rng);
      sent += l;
    }
    err_fixed += util::relative_error(fixed.estimate(cf), static_cast<double>(sent));
    err_ref += util::relative_error(ref.estimate(cr), static_cast<double>(sent));
  }
  err_fixed /= runs;
  err_ref /= runs;
  EXPECT_LT(err_fixed, err_ref * 2.0 + 0.01) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Budgets, FixedVsDoubleBits, ::testing::Values(8, 9, 10, 12));

}  // namespace
}  // namespace disco::core
