// Unit tests for the discrete-event core and the pipelined-resource model.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace disco::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMaySpawnEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.schedule_in(5, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunLimitStopsEarly) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, RunUntilExecutesStrictlyBefore) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(10); });
  q.schedule_at(20, [&] { order.push_back(20); });
  q.schedule_at(30, [&] { order.push_back(30); });
  q.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{10}));
  EXPECT_EQ(q.now(), 20u);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(PipelinedResource, BackToBackReservationsSpaceByIssueInterval) {
  PipelinedResource r(10, 100);
  EXPECT_EQ(r.reserve(0), 100u);   // starts at 0, completes at 100
  EXPECT_EQ(r.reserve(0), 110u);   // starts at 10
  EXPECT_EQ(r.reserve(0), 120u);   // starts at 20
  EXPECT_EQ(r.next_free(), 30u);
}

TEST(PipelinedResource, IdleResourceStartsImmediately) {
  PipelinedResource r(10, 100);
  (void)r.reserve(0);
  EXPECT_EQ(r.reserve(1000), 1100u);  // no queueing after a gap
}

TEST(PipelinedResource, BusyTimeAccumulatesIssueSlots) {
  PipelinedResource r(7, 50);
  for (int i = 0; i < 10; ++i) (void)r.reserve(0);
  EXPECT_EQ(r.busy_time(), 70u);
}

TEST(PipelinedResource, ModelsPaperSramRoundTrip) {
  // One write + one read at 93 ns latency each ~ the paper's 186 ns figure.
  PipelinedResource sram(45, 93);
  const SimTime write_done = sram.reserve(0);
  const SimTime read_done = sram.reserve(write_done);
  EXPECT_EQ(read_done, 93u + 93u);
}

}  // namespace
}  // namespace disco::sim
