// Unit tests for the DISCO core: update rule (Algorithm 1), unbiased
// estimation (Theorem 1), arrays, and burst aggregation.
#include "core/disco.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace disco::core {
namespace {

TEST(DiscoParams, EstimateOfZeroCounterIsZero) {
  DiscoParams params(1.01);
  EXPECT_DOUBLE_EQ(params.estimate(0), 0.0);
}

TEST(DiscoParams, EstimateOfOneIsOne) {
  // f(1) = 1 for every base: the smallest flow costs one counter unit.
  for (double b : {1.001, 1.02, 1.5}) {
    DiscoParams params(b);
    EXPECT_NEAR(params.estimate(1), 1.0, 1e-9) << "b=" << b;
  }
}

TEST(DiscoParams, DecideProbabilityInRange) {
  DiscoParams params(1.02);
  for (std::uint64_t c : {0ull, 1ull, 10ull, 100ull, 500ull}) {
    for (std::uint64_t l : {1ull, 40ull, 81ull, 1420ull, 65535ull}) {
      const UpdateDecision d = params.decide(c, l);
      EXPECT_GE(d.p_d, 0.0) << "c=" << c << " l=" << l;
      EXPECT_LE(d.p_d, 1.0) << "c=" << c << " l=" << l;
    }
  }
}

TEST(DiscoParams, DecideExpectationEqualsLength) {
  // E[f(c')] - f(c) must equal l exactly -- the substance of Theorem 1,
  // checked deterministically from the (delta, p_d) pair.
  DiscoParams params(1.013);
  const auto& scale = params.scale();
  for (std::uint64_t c : {0ull, 3ull, 57ull, 300ull}) {
    for (std::uint64_t l : {1ull, 59ull, 642ull, 1500ull}) {
      const UpdateDecision d = params.decide(c, l);
      const double f_lo = scale.f(static_cast<double>(c + d.delta));
      const double f_hi = scale.f(static_cast<double>(c + d.delta + 1));
      const double expected = (1.0 - d.p_d) * f_lo + d.p_d * f_hi;
      const double fc = scale.f(static_cast<double>(c));
      EXPECT_NEAR(expected - fc, static_cast<double>(l),
                  1e-6 * static_cast<double>(l) + 1e-9)
          << "c=" << c << " l=" << l;
    }
  }
}

TEST(DiscoParams, ExactLandingGetsProbabilityOne) {
  // If l + f(c) lands exactly on f(j), the update must reach j surely.
  DiscoParams params(2.0);  // f(c) = 2^c - 1: integer landings easy to build
  // c=0, l = f(3) = 7: target exactly f(3).
  const UpdateDecision d = params.decide(0, 7);
  EXPECT_EQ(d.delta + 1, 3u);
  EXPECT_NEAR(d.p_d, 1.0, 1e-9);
}

TEST(DiscoParams, UpdateNeverDecreasesCounter) {
  DiscoParams params(1.005);
  util::Rng rng(99);
  std::uint64_t c = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t next = params.update(c, 1 + (i % 1500), rng);
    ASSERT_GE(next, c);
    c = next;
  }
}

TEST(DiscoParams, NumericSaturationIsANoOpNotUb) {
  // A counter far past any provisioned budget overflows f(c) in doubles;
  // the decision must degrade to a no-op, never undefined behaviour.
  DiscoParams params(1.5);  // ln(1.5)*5000 >> 709: f(c) = inf
  const UpdateDecision d = params.decide(5000, 1500);
  EXPECT_EQ(d.delta, 0u);
  EXPECT_DOUBLE_EQ(d.p_d, 0.0);
  util::Rng rng(1);
  EXPECT_EQ(params.update(5000, 1500, rng), 5000u);
}

TEST(DiscoParams, ZeroLengthIsNoOp) {
  DiscoParams params(1.01);
  util::Rng rng(1);
  EXPECT_EQ(params.update(42, 0, rng), 42u);
}

TEST(DiscoParams, LargerPacketsGiveSmallerRelativeIncrements) {
  // The discount property (paper Fig. 1): counter increments grow much more
  // slowly than packet sizes once the counter is warm.
  DiscoParams params(1.01);
  const UpdateDecision small = params.decide(400, 100);
  const UpdateDecision large = params.decide(400, 1000);
  // 10x the bytes must cost far less than 10x the increment.
  const double inc_small = static_cast<double>(small.delta) + small.p_d;
  const double inc_large = static_cast<double>(large.delta) + large.p_d;
  EXPECT_LT(inc_large, 10.0 * inc_small);
  EXPECT_GT(inc_large, inc_small);
}

TEST(DiscoParams, ForBudgetCoversMaxFlow) {
  const auto params = DiscoParams::for_budget(std::uint64_t{1} << 30, 12);
  const double c_max = static_cast<double>((1 << 12) - 1);
  EXPECT_GE(params.scale().f(c_max), std::exp2(30) * (1 - 1e-9));
}

TEST(DiscoCounter, Fig1WalkthroughCompresses) {
  // The paper's Fig. 1: packets 81, 1420, 142, 691 (total 2334).  DISCO's
  // counter must end far below 2334 while estimating near it.
  DiscoParams params(DiscoParams::for_budget(1 << 20, 10));
  DiscoCounter counter(params);
  util::Rng rng(2334);
  for (std::uint64_t l : {81ull, 1420ull, 142ull, 691ull}) counter.add(l, rng);
  EXPECT_LT(counter.value(), 2334u / 4);  // strong compression
  EXPECT_GT(counter.value(), 0u);
  EXPECT_NEAR(counter.estimate(), 2334.0, 2334.0 * 0.5);  // single run, loose
}

TEST(DiscoCounter, UnbiasedOverManyRuns) {
  // Theorem 1 end-to-end: average estimate over repetitions converges to the
  // true byte count.
  const DiscoParams params(1.02);
  const std::vector<std::uint64_t> packet_lens = {81, 1420, 142, 691, 40, 1500, 333};
  std::uint64_t truth = 0;
  for (auto l : packet_lens) truth += l;

  util::Rng rng(7);
  const int runs = 4000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    DiscoCounter c(params);
    for (auto l : packet_lens) c.add(l, rng);
    sum += c.estimate();
  }
  const double mean = sum / runs;
  // cv bound for b=1.02 is ~0.099; tolerance 4 sigma / sqrt(runs).
  EXPECT_NEAR(mean, static_cast<double>(truth),
              4.0 * 0.1 * static_cast<double>(truth) / std::sqrt(runs));
}

TEST(DiscoCounter, ResetClearsState) {
  DiscoCounter c(DiscoParams(1.05));
  util::Rng rng(5);
  c.add(1000, rng);
  EXPECT_GT(c.value(), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(c.estimate(), 0.0);
}

TEST(DiscoArray, TracksIndependentFlows) {
  DiscoArray array(8, 10, DiscoParams::for_budget(1 << 20, 10));
  util::Rng rng(17);
  for (int rep = 0; rep < 100; ++rep) {
    array.add(2, 100, rng);
    array.add(5, 1000, rng);
  }
  EXPECT_EQ(array.value(0), 0u);
  EXPECT_GT(array.value(5), array.value(2));
  EXPECT_NEAR(array.estimate(2), 10000.0, 10000.0 * 0.6);
  EXPECT_NEAR(array.estimate(5), 100000.0, 100000.0 * 0.6);
}

TEST(DiscoArray, ProvisionedArrayDoesNotOverflow) {
  // Feeding exactly the provisioned maximum must stay within the bit budget.
  const std::uint64_t max_flow = 1 << 22;
  DiscoArray array(2, 10, max_flow);
  util::Rng rng(23);
  std::uint64_t sent = 0;
  while (sent < max_flow) {
    array.add(0, 1500, rng);
    sent += 1500;
  }
  EXPECT_EQ(array.overflow_count(), 0u);
  EXPECT_LE(array.value(0), (std::uint64_t{1} << 10) - 1);
}

TEST(DiscoArray, UnderProvisionedArrayReportsOverflow) {
  // A 4-bit counter with b sized for 100 bytes cannot absorb 1e6 bytes.
  DiscoArray array(1, 4, DiscoParams::for_budget(100, 4));
  util::Rng rng(29);
  for (int i = 0; i < 1000; ++i) array.add(0, 1500, rng);
  EXPECT_GT(array.overflow_count(), 0u);
  EXPECT_EQ(array.value(0), 15u);  // saturated at 2^4 - 1
}

TEST(DiscoArray, MaxValueAndStorageAccounting) {
  DiscoArray array(100, 9, DiscoParams(1.05));
  EXPECT_EQ(array.storage_bits(), 900u);
  util::Rng rng(31);
  array.add(7, 5000, rng);
  EXPECT_EQ(array.max_value(), array.value(7));
}

TEST(DiscoParams, MergeSaturatesInsteadOfOverflowingAtExtremeCounters) {
  // Regression: f(646) with b = 3 is ~8.4e307, so merging two such
  // counters makes target = f(c1) + f(c2) finite but target * (b - 1)
  // infinite -- f_inv(target) is then non-finite, and the decision loop
  // used to cast that to an integer (undefined behaviour).  The guarded
  // path must saturate: no movement, no UB, deterministically.
  const DiscoParams params(3.0);
  util::Rng rng(53);
  EXPECT_EQ(params.merge(646, 646, rng), 646u);
  // Fully infinite targets saturate the same way.
  EXPECT_EQ(params.merge(700, 700, rng), 700u);
  // And an ordinary in-range merge still moves the counter: absorbing
  // f(20) into c = 10 must land well above 10.
  EXPECT_GT(params.merge(10, 20, rng), 10u);
}

TEST(BurstAggregator, AccumulatesUntilFlush) {
  DiscoParams params(1.01);
  BurstAggregator burst(params);
  util::Rng rng(37);
  std::uint64_t counter = 0;
  EXPECT_EQ(burst.add(100, counter, rng), 0);
  EXPECT_EQ(burst.add(200, counter, rng), 0);
  EXPECT_EQ(counter, 0u);  // nothing hit SRAM yet
  EXPECT_EQ(burst.pending(), 300u);
  EXPECT_EQ(burst.flush(counter, rng), 1);
  EXPECT_GT(counter, 0u);
  EXPECT_EQ(burst.pending(), 0u);
}

TEST(BurstAggregator, ScratchOverflowForcesFlush) {
  DiscoParams params(1.01);
  BurstAggregator burst(params, /*scratch_bits=*/8);  // limit 255 bytes
  util::Rng rng(41);
  std::uint64_t counter = 0;
  int flushes = 0;
  for (int i = 0; i < 10; ++i) flushes += burst.add(100, counter, rng);
  EXPECT_GT(flushes, 0);
  EXPECT_GT(counter, 0u);
}

TEST(BurstAggregator, AggregationPreservesUnbiasedness) {
  // One aggregated update of (a+b) and two updates of a then b must both
  // estimate a+b; aggregated variance is lower, mean identical.
  const DiscoParams params(1.02);
  util::Rng rng(43);
  const int runs = 4000;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    BurstAggregator burst(params);
    std::uint64_t counter = 0;
    burst.add(700, counter, rng);
    burst.add(800, counter, rng);
    burst.flush(counter, rng);
    sum += params.estimate(counter);
  }
  EXPECT_NEAR(sum / runs, 1500.0, 1500.0 * 0.4 / std::sqrt(runs) * 4.0);
}

TEST(BurstAggregator, FlushOnEmptyIsNoOp) {
  BurstAggregator burst(DiscoParams(1.1));
  util::Rng rng(47);
  std::uint64_t counter = 5;
  EXPECT_EQ(burst.flush(counter, rng), 0);
  EXPECT_EQ(counter, 5u);
}

}  // namespace
}  // namespace disco::core
