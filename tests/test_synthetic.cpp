// Unit tests for scenario generators and the packet stream interleaver.
#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "trace/trace_stats.hpp"

namespace disco::trace {
namespace {

TEST(Scenario, MakeFlowsAssignsDenseIds) {
  util::Rng rng(1);
  const auto flows = scenario1().make_flows(50, rng);
  ASSERT_EQ(flows.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(flows[i].id, i);
    EXPECT_GE(flows[i].packets(), 1u);
  }
}

TEST(Scenario, DeterministicUnderSeed) {
  util::Rng a(7);
  util::Rng b(7);
  const auto fa = scenario2().make_flows(20, a);
  const auto fb = scenario2().make_flows(20, b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].lengths, fb[i].lengths);
  }
}

TEST(Scenario1, HeavyTailedSmallFlowsDominate) {
  util::Rng rng(2);
  const auto flows = scenario1().make_flows(2000, rng);
  std::size_t tiny = 0;
  for (const auto& f : flows) {
    if (f.packets() <= 8) ++tiny;
  }
  // Pareto shape 1.053, scale 4: more than a third of flows are tiny.
  EXPECT_GT(tiny, flows.size() / 3);
}

TEST(Scenario2, MeanPacketsNearPaper) {
  util::Rng rng(3);
  const auto flows = scenario2().make_flows(3000, rng);
  const auto summary = summarize(flows);
  // Paper: 778.30 packets per flow on average (Exp(800) floored).
  EXPECT_NEAR(summary.mean_packets_per_flow, 800.0, 40.0);
}

TEST(Scenario3, MeanPacketsNearPaper) {
  util::Rng rng(4);
  const auto flows = scenario3().make_flows(3000, rng);
  const auto summary = summarize(flows);
  // Paper: 772.01 (uniform 2..1600).
  EXPECT_NEAR(summary.mean_packets_per_flow, 801.0, 25.0);
}

TEST(ScenarioSynthetics, PacketLengthVarianceIsHigh) {
  // Table III: 100% of synthetic flows have packet length variance > 10.
  util::Rng rng(5);
  for (const auto& scenario : {scenario1(), scenario2(), scenario3()}) {
    const auto flows = scenario.make_flows(300, rng);
    const auto summary = summarize(flows);
    EXPECT_GT(summary.share_length_variance_gt10, 0.95) << scenario.name();
    EXPECT_GT(summary.mean_length_variance, 1e3) << scenario.name();
  }
}

TEST(RealTraceModel, MeanFlowVolumeNearNlanrTrace) {
  // Paper's trace: mean flow 409.5 KB.  Heavy-tailed sample means wander, so
  // assert the right order of magnitude over a decent population.
  util::Rng rng(6);
  const auto flows = real_trace_model().make_flows(4000, rng);
  const auto summary = summarize(flows);
  EXPECT_GT(summary.mean_bytes_per_flow, 150.0e3);
  EXPECT_LT(summary.mean_bytes_per_flow, 1.2e6);
}

TEST(RealTraceModel, HighVarianceShare) {
  // Paper: variance > 10 for 62.78% of real-trace flows; the bimodal model
  // exceeds that (any flow with >= 2 packets almost surely qualifies).
  util::Rng rng(7);
  const auto flows = real_trace_model().make_flows(1000, rng);
  const auto summary = summarize(flows);
  EXPECT_GT(summary.share_length_variance_gt10, 0.6);
}

TEST(AsFlowSize, CollapsesLengthsToOne) {
  util::Rng rng(8);
  const auto sized = as_flow_size(scenario1());
  const auto flows = sized.make_flows(100, rng);
  for (const auto& f : flows) {
    for (auto l : f.lengths) ASSERT_EQ(l, 1u);
    EXPECT_EQ(f.bytes(), f.packets());
  }
}

TEST(Make8020Flows, TwentyPercentCarryMostTraffic) {
  util::Rng rng(9);
  auto flows = make_8020_flows(2560, 400.0, 64, 1024, rng);
  ASSERT_EQ(flows.size(), 2560u);
  std::vector<std::uint64_t> volumes;
  std::uint64_t total = 0;
  for (const auto& f : flows) {
    volumes.push_back(f.bytes());
    total += f.bytes();
  }
  std::sort(volumes.rbegin(), volumes.rend());
  std::uint64_t top20 = 0;
  for (std::size_t i = 0; i < volumes.size() / 5; ++i) top20 += volumes[i];
  const double share = static_cast<double>(top20) / static_cast<double>(total);
  EXPECT_GT(share, 0.65);  // canonical 80/20, sampling slack allowed
  EXPECT_LT(share, 0.95);
}

TEST(Make8020Flows, LengthsWithinConfiguredRange) {
  util::Rng rng(10);
  const auto flows = make_8020_flows(100, 50.0, 64, 1024, rng);
  for (const auto& f : flows) {
    for (auto l : f.lengths) {
      ASSERT_GE(l, 64u);
      ASSERT_LE(l, 1024u);
    }
  }
}

TEST(PacketStream, EmitsEveryPacketExactlyOnce) {
  util::Rng rng(11);
  auto flows = scenario3().make_flows(30, rng);
  std::map<std::uint32_t, std::uint64_t> expected;
  for (const auto& f : flows) expected[f.id] = f.packets();

  PacketStream stream(std::move(flows), 1, 4, 99);
  std::map<std::uint32_t, std::uint64_t> seen;
  std::uint64_t count = 0;
  while (auto p = stream.next()) {
    ++seen[p->flow_id];
    ++count;
  }
  EXPECT_EQ(count, stream.total_packets());
  EXPECT_EQ(seen, expected);
}

TEST(PacketStream, BurstOneNeverRepeatsFlowBackToBack) {
  util::Rng rng(12);
  auto flows = scenario3().make_flows(50, rng);
  PacketStream stream(std::move(flows), 1, 1, 123);
  std::uint32_t prev = 0xffffffff;
  int repeats = 0;
  std::uint64_t n = 0;
  while (auto p = stream.next()) {
    if (p->flow_id == prev) ++repeats;
    prev = p->flow_id;
    ++n;
  }
  // Only permissible at the very tail when one flow remains active.
  EXPECT_LT(static_cast<double>(repeats), 0.05 * static_cast<double>(n));
}

TEST(PacketStream, BurstRangeRespected) {
  util::Rng rng(13);
  auto flows = scenario2().make_flows(40, rng);
  PacketStream stream(std::move(flows), 2, 8, 321);
  // Runs must be <= 8 while multiple flows are active; once a single flow
  // remains (end of trace) its bursts necessarily chain, so a sliver of
  // longer runs is tolerated.
  std::uint32_t prev = 0xffffffff;
  int run = 0;
  std::uint64_t total = 0;
  std::uint64_t overlong = 0;
  while (auto p = stream.next()) {
    if (p->flow_id == prev) {
      ++run;
    } else {
      run = 1;
      prev = p->flow_id;
    }
    ++total;
    if (run > 8) ++overlong;
  }
  EXPECT_LT(static_cast<double>(overlong), 0.02 * static_cast<double>(total));
}

TEST(PacketStream, TimestampsStrictlyIncrease) {
  util::Rng rng(14);
  auto flows = scenario1().make_flows(20, rng);
  PacketStream stream(std::move(flows), 1, 2, 555);
  std::uint64_t prev_ts = 0;
  bool first = true;
  while (auto p = stream.next()) {
    if (!first) { ASSERT_GT(p->timestamp_ns, prev_ts); }
    prev_ts = p->timestamp_ns;
    first = false;
  }
}

TEST(PacketStream, DrainMatchesTotal) {
  util::Rng rng(15);
  auto flows = scenario1().make_flows(25, rng);
  std::uint64_t total = 0;
  for (const auto& f : flows) total += f.packets();
  PacketStream stream(std::move(flows), 1, 8, 777);
  EXPECT_EQ(stream.total_packets(), total);
  EXPECT_EQ(stream.drain().size(), total);
}

TEST(PacketStream, RejectsBadBurstRange) {
  EXPECT_THROW(PacketStream({}, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(PacketStream({}, 5, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace disco::trace
