// Tests for the Sample-and-Hold baseline (paper reference [7]).
#include "counters/sample_hold.hpp"

#include <gtest/gtest.h>

#include "util/math.hpp"

namespace disco::counters {
namespace {

TEST(SampleAndHold, RejectsBadRate) {
  EXPECT_THROW(SampleAndHold(0.0), std::invalid_argument);
  EXPECT_THROW(SampleAndHold(1.5), std::invalid_argument);
}

TEST(SampleAndHold, UnheldFlowEstimatesZero) {
  SampleAndHold c(1e-9);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) c.add(40, rng);
  EXPECT_FALSE(c.held());
  EXPECT_DOUBLE_EQ(c.estimate(), 0.0);
}

TEST(SampleAndHold, RateOneHoldsImmediatelyAndCountsExactly) {
  SampleAndHold c(1.0);
  util::Rng rng(2);
  c.add(100, rng);
  EXPECT_TRUE(c.held());
  c.add(200, rng);
  EXPECT_EQ(c.raw_count(), 300u);
  // With p = 1 the pre-detection correction vanishes.
  EXPECT_DOUBLE_EQ(c.estimate(), 300.0);
}

TEST(SampleAndHold, ElephantsAlmostAlwaysHeld) {
  // A 1 MB flow at p = 1e-4: detection within ~10 KB, so held with
  // overwhelming probability and counted near-exactly thereafter.
  util::Rng rng(3);
  int held = 0;
  double err = 0.0;
  const int runs = 200;
  for (int r = 0; r < runs; ++r) {
    SampleAndHold c(1e-4);
    for (int i = 0; i < 1000; ++i) c.add(1000, rng);  // 1 MB
    if (c.held()) {
      ++held;
      err += util::relative_error(c.estimate(), 1e6);
    }
  }
  EXPECT_EQ(held, runs);
  EXPECT_LT(err / held, 0.02);
}

TEST(SampleAndHold, MiceUsuallyInvisible) {
  // A 500-byte flow at p = 1e-4 is detected with probability ~5%.
  util::Rng rng(4);
  int held = 0;
  const int runs = 2000;
  for (int r = 0; r < runs; ++r) {
    SampleAndHold c(1e-4);
    c.add(500, rng);
    if (c.held()) ++held;
  }
  EXPECT_NEAR(static_cast<double>(held) / runs, 0.0488, 0.02);
}

TEST(SampleAndHold, EstimateCorrectionIsUnbiasedForHeldFlows) {
  // Over many runs, conditioning on detection, the estimate's mean should
  // land near the true bytes for a large flow (the 1/p correction undoes
  // the expected pre-detection loss).
  util::Rng rng(5);
  const double truth = 400000.0;
  double sum = 0.0;
  int held = 0;
  const int runs = 3000;
  for (int r = 0; r < runs; ++r) {
    SampleAndHold c(5e-5);
    for (int i = 0; i < 400; ++i) c.add(1000, rng);
    if (c.held()) {
      ++held;
      sum += c.estimate();
    }
  }
  ASSERT_GT(held, runs / 2);
  EXPECT_NEAR(sum / held, truth, truth * 0.03);
}

TEST(SampleAndHold, ResetClears) {
  SampleAndHold c(1.0);
  util::Rng rng(6);
  c.add(100, rng);
  c.reset();
  EXPECT_FALSE(c.held());
  EXPECT_DOUBLE_EQ(c.estimate(), 0.0);
}

}  // namespace
}  // namespace disco::counters
