// Model-check drivers for the pipeline's command protocols
// (src/pipeline/pipeline.cpp): commands travel IN-BAND through the same
// SpscRing as data, so their ordering against surrounding messages is the
// correctness property -- a rotate lands exactly between the packets pushed
// before and after it.  The completion side (worker fills a result the
// issuer then reads) is a publish/subscribe handshake on a flag.
//
// Compiled with DISCO_MODELCHECK=1; see test_modelcheck_ring.cpp for the
// harness conventions.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "pipeline/packet_ring.hpp"
#include "util/atomic.hpp"
#include "verify/model.hpp"

namespace verify = disco::verify;
namespace util = disco::util;
using disco::pipeline::SpscRing;

namespace {

/// In-band control marker, mirroring pipeline.cpp's convention of pushing
/// command tokens through the data ring.
constexpr std::uint64_t kRotate = ~std::uint64_t{0};

}  // namespace

TEST(ModelCheckCommand, InBandRotateBoundaryIsExact) {
  // Producer: 1, 2, ROTATE, 3.  Consumer accumulates per epoch; the rotate
  // must cut exactly after 1+2 in EVERY schedule -- that is the whole point
  // of in-band commands (no separate control channel to race with the
  // data).
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  verify::Result r = verify::explore(opts, [] {
    SpscRing<std::uint64_t> ring(4);
    std::uint64_t epoch0 = 0;
    std::uint64_t epoch1 = 0;
    verify::run_threads({
        [&] {
          const std::uint64_t feed[] = {1, 2, kRotate, 3};
          for (std::uint64_t v : feed) {
            while (!ring.try_push(v)) verify::spin_yield();
          }
        },
        [&] {
          std::uint64_t buf[4];
          bool rotated = false;
          std::uint64_t acc = 0;
          std::size_t popped = 0;
          while (popped < 4) {
            const std::size_t got = ring.pop_batch(buf, 4);
            if (got == 0) {
              verify::spin_yield();
              continue;
            }
            popped += got;
            for (std::size_t i = 0; i < got; ++i) {
              if (buf[i] == kRotate) {
                epoch0 = acc;
                acc = 0;
                rotated = true;
              } else {
                acc += buf[i];
              }
            }
          }
          verify::mc_check(rotated, "the rotate marker must arrive");
          epoch1 = acc;
        },
    });
    verify::mc_check(epoch0 == 3, "epoch 0 must hold exactly 1+2");
    verify::mc_check(epoch1 == 3, "epoch 1 must hold exactly the tail");
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}

namespace {

/// The synchronous command handshake from pipeline.cpp, reduced to its
/// memory protocol: the issuer stack-allocates the command, passes a
/// POINTER through the ring, and waits on a completion flag; the worker
/// writes the result through the pointer and releases the flag.  The
/// issuer's read of `result` is only safe because of that release/acquire
/// pair -- which is exactly what the buggy variant severs.
struct Command {
  util::shared<std::uint64_t> arg;
  util::shared<std::uint64_t> result;
  util::atomic<std::uint64_t> done{0};
};

template <bool kBuggy>
verify::Result explore_handshake() {
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  return verify::explore(opts, [] {
    SpscRing<Command*> ring(2);
    Command cmd;
    verify::label(&cmd.done, "cmd.done");
    verify::label(&cmd.result, "cmd.result");
    std::uint64_t answer = 0;
    verify::run_threads({
        [&] {  // issuer
          cmd.arg = 7;
          while (!ring.try_push(&cmd)) verify::spin_yield();
          while (cmd.done.load(std::memory_order_acquire) == 0) {
            verify::spin_yield();
          }
          answer = cmd.result;
        },
        [&] {  // worker
          Command* c = nullptr;
          while (ring.pop_batch(&c, 1) == 0) verify::spin_yield();
          c->result = static_cast<std::uint64_t>(c->arg) * 2;
          c->done.store(1, kBuggy ? std::memory_order_relaxed
                                  : std::memory_order_release);
        },
    });
    verify::mc_check(answer == 14, "issuer must read the worker's result");
  });
}

}  // namespace

TEST(ModelCheckCommand, CompletionHandshakeExhaustive) {
  verify::Result r = explore_handshake<false>();
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}

TEST(ModelCheckCommand, CompletionHandshakeRelaxedDoneIsFlagged) {
  verify::Result r = explore_handshake<true>();
  ASSERT_TRUE(r.failed)
      << "a relaxed completion store must be reported as a race on result";
  EXPECT_NE(r.report.find("DATA RACE"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("cmd.result"), std::string::npos) << r.report;
}
