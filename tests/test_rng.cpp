// Unit tests for the deterministic PRNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace disco::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, ReproducibleAcrossInstances) {
  Xoshiro256StarStar a(0xdeadbeef);
  Xoshiro256StarStar b(0xdeadbeef);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanIsHalf) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro, BernoulliFrequencyMatchesP) {
  Xoshiro256StarStar rng(13);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      if (rng.bernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(Xoshiro, BernoulliDegenerateProbabilities) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, UniformU64StaysInRange) {
  Xoshiro256StarStar rng(19);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
  }
}

TEST(Xoshiro, UniformU64CoversAllValues) {
  Xoshiro256StarStar rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, UniformU64IsUnbiased) {
  // Chi-square-lite: each of 16 outcomes within 5% of expectation.
  Xoshiro256StarStar rng(29);
  std::array<int, 16> counts{};
  const int n = 1600000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(0, 15)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 16.0, n / 16.0 * 0.05);
  }
}

TEST(Xoshiro, SingleValueRange) {
  Xoshiro256StarStar rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Xoshiro, ForkProducesIndependentStream) {
  Xoshiro256StarStar parent(37);
  Xoshiro256StarStar child = parent.fork();
  // The child's stream should differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() == ~std::uint64_t{0});
  Xoshiro256StarStar rng(41);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace disco::util
