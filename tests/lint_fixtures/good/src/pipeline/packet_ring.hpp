// Fixture: SPSC ring whose atomics all name their memory_order and are
// declared through the model-check shim (atomic-shim-confined).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/atomic.hpp"

namespace disco::pipeline {

class MiniRing {
 public:
  [[nodiscard]] bool try_push(std::uint64_t v) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kCapacity) return false;
    slot_[head % kCapacity] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  void count() noexcept { ops_.fetch_add(1, std::memory_order_relaxed); }

 private:
  static constexpr std::uint64_t kCapacity = 64;
  std::uint64_t slot_[kCapacity] = {};
  util::atomic<std::uint64_t> head_{0};
  util::atomic<std::uint64_t> tail_{0};
  util::atomic<std::uint64_t> ops_{0};
};

}  // namespace disco::pipeline
