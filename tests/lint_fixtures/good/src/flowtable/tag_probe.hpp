// Fixture: raw intrinsics in the one file allowed to hold them -- the
// dedicated probe kernel header.  simd-intrinsics-confined must stay quiet
// here (suffix match against SIMD_ALLOWED_FILES).
#pragma once

#include <cstdint>

namespace disco::flowtable::tagprobe {

inline std::uint32_t scan_sse2(const std::uint8_t* tags) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(group));
}

}  // namespace disco::flowtable::tagprobe
