// Fixture: header that directly includes what it uses and declares its
// counter through the model-check shim (atomic-shim-confined).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/atomic.hpp"

namespace disco::telemetry {

class MiniCounter {
 public:
  void inc() noexcept { value_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  util::atomic<std::uint64_t> value_{0};
};

}  // namespace disco::telemetry
