// Fixture: model-checker implementation file -- everything under
// src/verify/ may use raw std::atomic (atomic-shim-confined exempts the
// directory: the checker IS the thing the shim routes to).
#pragma once

#include <atomic>
#include <cstdint>

namespace disco::verify {

struct MiniCell {
  std::atomic<std::uint64_t> cell{0};
};

}  // namespace disco::verify
