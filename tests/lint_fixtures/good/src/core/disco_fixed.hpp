// Fixture: RNG draw confined to the canonical update function.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace disco::core {

class FixedDisco {
 public:
  [[nodiscard]] std::uint64_t update(std::uint64_t c, std::uint64_t l,
                                     util::Rng& rng) const noexcept {
    if (l == 0) return c;
    const bool extra = rng.uniform_u64(0, 9) < 5;
    return c + (extra ? 1 : 0);
  }
};

}  // namespace disco::core
