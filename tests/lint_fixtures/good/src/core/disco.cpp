// Fixture: hot-path file that follows every invariant.  Transcendentals
// appear only inside whitelisted cold-path functions; the RNG draw is in
// the canonical merge site; one justified suppression exercises the
// allow() syntax.
#include "core/disco.hpp"

#include <cmath>

namespace disco::core {

namespace {

double interval_for_estimate(double p) {
  // Whitelisted: confidence-interval math, not the per-packet path.
  const double q = std::sqrt(-2.0 * std::log(p));
  return q;
}

}  // namespace

UpdateDecision DiscoParams::decide_real(std::uint64_t c,
                                        std::uint64_t l) const noexcept {
  UpdateDecision d;
  d.delta = c + l;
  // disco-lint: allow(hot-path-transcendental) one-time setup, off hot path
  d.p_d = std::exp(-static_cast<double>(l));
  return d;
}

std::uint64_t DiscoParams::merge(std::uint64_t c1, std::uint64_t c2,
                                 util::Rng& rng) const noexcept {
  const UpdateDecision d = decide_real(c1, c2);
  return c1 + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
}

double DiscoParams::confidence_interval(double level) const {
  return std::sqrt(level) * interval_for_estimate(level);
}

}  // namespace disco::core
