// Fixture: the shim header itself -- the one file outside src/verify/ that
// may spell raw std::atomic and std::atomic_thread_fence
// (atomic-shim-confined exempts exactly this path).
#pragma once

#include <atomic>

namespace disco::util {

template <typename T>
using atomic = std::atomic<T>;

inline void atomic_fence(std::memory_order order) noexcept {
  std::atomic_thread_fence(order);
}

}  // namespace disco::util
