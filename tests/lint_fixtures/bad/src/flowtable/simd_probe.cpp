// Fixture: seeded simd-intrinsics-confined violation.  Raw vector
// intrinsics are only allowed in src/flowtable/tag_probe.hpp; this file
// uses one directly and must be flagged.
#include <cstdint>

namespace disco::flowtable {

std::uint32_t scan_inline(const std::uint8_t* tags) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));  // VIOLATION
  return static_cast<std::uint32_t>(_mm_movemask_epi8(group));
}

}  // namespace disco::flowtable
