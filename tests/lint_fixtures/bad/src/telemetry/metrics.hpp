// Fixture: seeded header-self-contained violation (std::atomic with no
// direct <atomic> include) plus a .store() without a memory_order.
#pragma once

#include <cstdint>

namespace disco::telemetry {

class MiniCounter {
 public:
  void reset() noexcept {
    value_.store(0);  // VIOLATION: defaulted seq_cst
  }

 private:
  std::atomic<std::uint64_t> value_{0};  // VIOLATION: <atomic> not included
};

}  // namespace disco::telemetry
