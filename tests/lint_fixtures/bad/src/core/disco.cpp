// Fixture: seeded hot-path-transcendental violation.  decide_real is NOT
// in the whitelist for this file, so the std::log call below must be
// flagged.
#include "core/disco.hpp"

#include <cmath>

namespace disco::core {

UpdateDecision DiscoParams::decide_real(std::uint64_t c,
                                        std::uint64_t l) const noexcept {
  UpdateDecision d;
  const double target = static_cast<double>(c + l);
  d.p_d = std::log(target);  // VIOLATION: transcendental on the hot path
  d.delta = c;
  return d;
}

}  // namespace disco::core
