// Fixture: seeded atomic-shim-confined violations -- a raw std::atomic
// member and a raw std::atomic_thread_fence outside src/util/atomic.hpp
// and src/verify/.  Both are invisible to -DDISCO_MODELCHECK builds.
#pragma once

#include <atomic>
#include <cstdint>

namespace disco::core {

class RawFlag {
 public:
  void publish() noexcept {
    std::atomic_thread_fence(std::memory_order_release);  // VIOLATION
    ready_.store(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ready_{0};  // VIOLATION: raw std::atomic
};

}  // namespace disco::core
