// Fixture: seeded rng-call-site violation.  Only 'update' may draw in this
// file; the helper below desynchronises the RNG stream contract and must
// be flagged.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace disco::core {

class FixedDisco {
 public:
  [[nodiscard]] std::uint64_t warm_up(util::Rng& rng) const noexcept {
    return rng.uniform_u64(0, 9);  // VIOLATION: draw outside update
  }
};

}  // namespace disco::core
