// Fixture: a suppression without a reason is itself an error -- the
// exception must be documented, not just waved through.
#include <cmath>

namespace disco::core {

double helper(double p) {
  // disco-lint: allow(hot-path-transcendental)
  return std::log(p);
}

}  // namespace disco::core
