// Fixture: seeded atomic-memory-order violations -- a defaulted .load()
// and an operator-form increment, both implicit seq_cst.
#pragma once

#include <atomic>
#include <cstdint>

namespace disco::pipeline {

class MiniRing {
 public:
  [[nodiscard]] std::uint64_t size() const noexcept {
    return head_.load() - tail_.load(std::memory_order_acquire);
    // ^ VIOLATION: head_.load() defaults to seq_cst
  }

  void count() noexcept {
    ops_++;  // VIOLATION: operator-form atomic increment
  }

 private:
  util::atomic<std::uint64_t> head_{0};
  util::atomic<std::uint64_t> tail_{0};
  util::atomic<std::uint64_t> ops_{0};
};

}  // namespace disco::pipeline
