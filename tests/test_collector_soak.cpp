// Multi-process convergence soak: N disco_monitor processes, one answer.
//
// Each run spawns N real monitor processes (the disco_monitor tool) that
// regenerate ONE deterministic Zipf trace from a shared seed and split it
// ECMP-style (arrival index mod N), measure their slices with independent
// per-site randomness, and ship DRPT v3 epoch reports over a spool file --
// one seed also exercises the live socket path.  The test then collects,
// and asserts the distributed answer converges:
//
//   * stream hygiene is perfect on a healthy fleet: N*epochs reports, no
//     duplicates, nothing late, every epoch finalised;
//   * the merged global totals and merged top-k carry Theorem-2 aggregate
//     intervals that cover EXACT ground truth (recomputed in-process from
//     the same seed) -- at 99.9% confidence, with a single-violation
//     budget across every check in the suite;
//   * the merged answer is statistically indistinguishable from a
//     single-process monitor that saw the whole trace: both estimates of
//     the same truth, their 99.9% intervals must overlap.
//
// Everything is seeded; failures reproduce exactly.  Runtime is bounded:
// the traces are small (hundreds of flows) and the processes run
// concurrently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "flowtable/monitor.hpp"
#include "flowtable/report_io.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace disco::collect {
namespace {

constexpr int kSites = 4;
constexpr std::uint32_t kEpochs = 3;
constexpr std::uint32_t kFlows = 300;
constexpr double kAlpha = 1.1;
// One-sided slack is ~0.05% per check at this confidence; the suite's
// violation budget below tolerates a single unlucky tail event.
constexpr double kConfidence = 0.999;

int g_interval_violations = 0;

/// Same mapping as disco_monitor / disco_analyze.
flowtable::FiveTuple tuple_for_flow(std::uint32_t flow_id) {
  flowtable::FiveTuple t;
  t.src_ip = 0x0a000000u | flow_id;
  t.dst_ip = 0xc0a80001u;
  t.src_port = static_cast<std::uint16_t>(1024 + (flow_id & 0x7fff));
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

struct GroundTruth {
  std::unordered_map<std::uint32_t, double> flow_bytes;
  double total_bytes = 0.0;
  double total_packets = 0.0;
};

/// Exact per-flow truth, regenerated from the same seed and scenario the
/// monitor processes use (trace::zipf_scenario is the shared definition).
GroundTruth exact_truth(std::uint64_t seed) {
  util::Rng rng(seed);
  auto flows = trace::zipf_scenario(kAlpha).make_flows(kFlows, rng);
  trace::PacketStream stream(std::move(flows), 1, 4, seed + 1);
  GroundTruth truth;
  while (auto packet = stream.next()) {
    truth.flow_bytes[packet->flow_id] += packet->length;
    truth.total_bytes += packet->length;
    truth.total_packets += 1.0;
  }
  return truth;
}

/// The single-process reference: ONE monitor sees the whole trace, rotating
/// at the same epoch boundaries as the fleet, its reports merged through a
/// second Collector so both answers carry comparable intervals.
std::unique_ptr<Collector> single_process_reference(std::uint64_t seed) {
  util::Rng rng(seed);
  auto flows = trace::zipf_scenario(kAlpha).make_flows(kFlows, rng);
  trace::PacketStream stream(std::move(flows), 1, 4, seed + 1);
  const std::uint64_t total_packets = stream.total_packets();

  flowtable::FlowMonitor::Config config;
  config.max_flows = 4096;
  config.counter_bits = 12;
  config.seed = seed * 104729 + 17;  // independent of every site's stream
  flowtable::FlowMonitor monitor(config);

  CollectorConfig collect_config;
  collect_config.confidence = kConfidence;
  auto reference = std::make_unique<Collector>(collect_config);
  const std::uint64_t per_epoch =
      total_packets / kEpochs > 0 ? total_packets / kEpochs : 1;
  std::uint64_t index = 0;
  std::uint32_t rotated = 0;
  while (auto packet = stream.next()) {
    (void)monitor.ingest(tuple_for_flow(packet->flow_id), packet->length);
    ++index;
    if (rotated + 1 < kEpochs && index == per_epoch * (rotated + 1)) {
      (void)reference->ingest(0, flowtable::kReportVersion, monitor.rotate());
      ++rotated;
    }
  }
  (void)reference->ingest(0, flowtable::kReportVersion, monitor.rotate());
  reference->finalize_all();
  return reference;
}

std::string monitor_command(std::uint64_t seed, int site,
                            const std::string& transport_flag,
                            const std::string& transport_value) {
  std::string cmd = std::string(DISCO_TOOLS_DIR) + "/disco_monitor";
  cmd += " --site " + std::to_string(site);
  cmd += " --sites " + std::to_string(kSites);
  cmd += " --flows " + std::to_string(kFlows);
  cmd += " --epochs " + std::to_string(kEpochs);
  cmd += " --seed " + std::to_string(seed);
  cmd += " " + transport_flag + " " + transport_value;
  cmd += " > /dev/null 2>&1";
  return cmd;
}

/// Runs the N monitor processes concurrently; returns every exit status.
std::vector<int> spawn_fleet(const std::vector<std::string>& commands) {
  std::vector<int> status(commands.size(), -1);
  std::vector<std::thread> processes;
  processes.reserve(commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    processes.emplace_back([&commands, &status, i] {
      status[i] = std::system(commands[i].c_str());
    });
  }
  for (auto& p : processes) p.join();
  return status;
}

void check_interval(double low, double high, double truth,
                    const std::string& what) {
  EXPECT_LT(low, high) << what;
  if (truth < low || truth > high) {
    ++g_interval_violations;
    ADD_FAILURE() << what << ": truth " << truth << " outside interval ["
                  << low << ", " << high << "] (budgeted violation)";
  }
}

/// Shared assertions once a collector holds the whole fleet's reports.
void check_convergence(Collector& collector, std::uint64_t seed) {
  collector.finalize_all();

  // Healthy fleet: perfect stream hygiene.
  EXPECT_EQ(collector.reports_ingested(),
            static_cast<std::uint64_t>(kSites) * kEpochs);
  EXPECT_EQ(collector.epochs_finalized(), kEpochs);
  const auto sites = collector.sites();
  ASSERT_EQ(sites.size(), static_cast<std::size_t>(kSites));
  for (const auto& site : sites) {
    EXPECT_EQ(site.reports, kEpochs) << site.site_id;
    EXPECT_EQ(site.duplicates, 0u) << site.site_id;
    EXPECT_EQ(site.late, 0u) << site.site_id;
    EXPECT_EQ(site.epoch_gaps, 0u) << site.site_id;
    EXPECT_EQ(site.legacy, 0u) << site.site_id;
  }

  const GroundTruth truth = exact_truth(seed);

  // Theorem-2 aggregate interval covers exact truth, globally...
  const auto totals = collector.totals();
  ASSERT_TRUE(totals.interval_valid);
  check_interval(totals.bytes_low, totals.bytes_high, truth.total_bytes,
                 "seed " + std::to_string(seed) + " global bytes");
  EXPECT_NEAR(totals.packets, truth.total_packets,
              0.05 * truth.total_packets);

  // ...and per merged top-k flow.  On a mod-N split every site sees a
  // slice of each heavy hitter.
  const auto top = collector.top_k(10);
  ASSERT_EQ(top.size(), 10u);
  for (const auto& flow : top) {
    ASSERT_TRUE(flow.interval_valid);
    EXPECT_EQ(flow.sites, static_cast<std::uint32_t>(kSites));
    const std::uint32_t id = flow.flow.src_ip & 0x00ffffffu;
    const auto it = truth.flow_bytes.find(id);
    ASSERT_NE(it, truth.flow_bytes.end());
    check_interval(flow.bytes_low, flow.bytes_high, it->second,
                   "seed " + std::to_string(seed) + " flow " +
                       std::to_string(id));
  }

  // Distributed vs single-process: two estimates of the same truth, both
  // with honest 99.9% intervals -- they must overlap.
  const auto reference = single_process_reference(seed);
  const auto single = reference->totals();
  ASSERT_TRUE(single.interval_valid);
  EXPECT_TRUE(totals.bytes_low <= single.bytes_high &&
              single.bytes_low <= totals.bytes_high)
      << "merged [" << totals.bytes_low << ", " << totals.bytes_high
      << "] vs single-process [" << single.bytes_low << ", "
      << single.bytes_high << "]";
}

class CollectorSoak : public ::testing::Test {
 protected:
  static void TearDownTestSuite() {
    // The per-check failures above are real coverage misses; at 99.9%
    // confidence the suite's documented budget is at most one across all
    // seeds (docs/collector.md "Convergence guarantees").
    EXPECT_LE(g_interval_violations, 1)
        << "Theorem-2 coverage violated more than the budget allows";
  }
};

TEST_F(CollectorSoak, SpooledFleetConvergesAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 29ull}) {
    std::vector<std::string> spools;
    std::vector<std::string> commands;
    for (int site = 0; site < kSites; ++site) {
      spools.push_back(std::string(::testing::TempDir()) + "soak_seed" +
                       std::to_string(seed) + "_s" + std::to_string(site) +
                       ".drpt");
      std::remove(spools.back().c_str());
      commands.push_back(
          monitor_command(seed, site, "--spool", spools.back()));
    }
    const auto status = spawn_fleet(commands);
    for (std::size_t i = 0; i < status.size(); ++i) {
      ASSERT_EQ(status[i], 0) << commands[i];
    }

    CollectorConfig config;
    config.confidence = kConfidence;
    Collector collector(config);
    for (int site = 0; site < kSites; ++site) {
      collector.expect_site(static_cast<std::uint32_t>(site));
    }
    SpoolSource source(spools);
    const auto stats = source.poll(collector);
    EXPECT_EQ(stats.truncated_tails, 0u);
    EXPECT_EQ(stats.unreadable, 0u);
    check_convergence(collector, seed);
    for (const auto& spool : spools) std::remove(spool.c_str());
  }
}

TEST_F(CollectorSoak, LiveSocketFleetConverges) {
  const std::uint64_t seed = 47;
  CollectorConfig config;
  config.confidence = kConfidence;
  // Connections drain at the scheduler's whim; the known fleet is
  // pre-registered and the window out-sized so finalisation waits for
  // every site instead of declaring stragglers late.
  config.liveness_window = 1000;
  Collector collector(config);
  for (int site = 0; site < kSites; ++site) {
    collector.expect_site(static_cast<std::uint32_t>(site));
  }
  std::unique_ptr<ReportServer> server;
  try {
    server = std::make_unique<ReportServer>(collector);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind loopback socket: " << e.what();
  }

  std::vector<std::string> commands;
  for (int site = 0; site < kSites; ++site) {
    commands.push_back(monitor_command(
        seed, site, "--connect",
        "127.0.0.1:" + std::to_string(server->port())));
  }
  const auto status = spawn_fleet(commands);
  for (std::size_t i = 0; i < status.size(); ++i) {
    ASSERT_EQ(status[i], 0) << commands[i];
  }

  // The processes exited 0, so every report was written to a connected
  // socket; wait (bounded) for the handler threads to drain them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    {
      util::MutexLock lock(server->ingest_mutex());
      if (collector.reports_ingested() >=
          static_cast<std::uint64_t>(kSites) * kEpochs) {
        break;
      }
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "fleet reports did not drain in time";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server->stop();
  EXPECT_EQ(server->connections_accepted(),
            static_cast<std::uint64_t>(kSites));
  EXPECT_EQ(server->truncated_streams(), 0u);
  check_convergence(collector, seed);
}

}  // namespace
}  // namespace disco::collect
