// Unit + adversarial coverage for the aggregation tier (src/collect):
//
//   * DRPT v3 wire format: site-id / error-metadata round-trip, downlevel
//     (v1/v2) emission, streaming ReportReader semantics (clean EOF vs
//     mid-report truncation);
//   * Collector merge semantics: disjoint-site sums, cross-site key fusion
//     with variance-accounted intervals, duplicate / reordered / late /
//     lagging-site stream hygiene (traffic counted at most once, always),
//     legacy reports without error metadata, mixed DISCO+additive fleets,
//     PressureStats reconciliation, subscriber + ModuleHost integration;
//   * transports: spool files with torn tails (including DISCO_FAULTS
//     short-write injection) and the loopback socket path.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "core/estimate_merge.hpp"
#include "core/theory.hpp"
#include "flowtable/report_io.hpp"
#include "modules/host.hpp"
#include "util/fault.hpp"

namespace disco::collect {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(1024 + i), 443, 6};
}

struct FlowSpec {
  std::uint32_t id;
  double bytes;
  double packets;
};

/// Hand-built epoch report with known estimates and error metadata --
/// deterministic input for merge-semantics tests.
EpochReport make_report(std::uint64_t epoch, double b,
                        const std::vector<FlowSpec>& flows) {
  EpochReport report;
  report.epoch = epoch;
  report.volume_b = b;
  report.size_b = b;
  for (const FlowSpec& f : flows) {
    report.flows.push_back({tuple(f.id), f.bytes, f.packets});
    report.totals.bytes += f.bytes;
    report.totals.packets += f.packets;
  }
  report.totals.flows = report.flows.size();
  return report;
}

EpochReport make_additive_report(std::uint64_t epoch, double unit,
                                 const std::vector<FlowSpec>& flows) {
  EpochReport report = make_report(epoch, 1.0, flows);
  report.volume_error_unit = unit;
  report.size_error_unit = unit;
  return report;
}

// --- wire format -------------------------------------------------------------

TEST(ReportIoV3, SiteIdAndErrorMetadataRoundTrip) {
  auto report = make_report(4, 1.0625, {{1, 1000.0, 10.0}, {2, 500.0, 5.0}});
  report.pressure = flowtable::PressureStats{3, 2, 1, 4};
  report.volume_error_unit = 0.0;
  std::stringstream buf;
  flowtable::write_report(buf, report, /*site_id=*/9);

  flowtable::ReportReader reader(buf);
  const auto item = reader.next();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->version, flowtable::kReportVersion);
  EXPECT_EQ(item->site_id, 9u);
  EXPECT_EQ(item->report.epoch, 4u);
  EXPECT_DOUBLE_EQ(item->report.volume_b, 1.0625);
  EXPECT_DOUBLE_EQ(item->report.size_b, 1.0625);
  EXPECT_EQ(item->report.pressure.flows_rejected, 3u);
  ASSERT_EQ(item->report.flows.size(), 2u);
  EXPECT_EQ(item->report.flows[0].flow, tuple(1));
  EXPECT_DOUBLE_EQ(item->report.flows[0].bytes, 1000.0);
  EXPECT_FALSE(reader.next().has_value());  // clean EOF
  EXPECT_EQ(reader.items_read(), 1u);
}

TEST(ReportIoV3, DownlevelEmissionDropsNewerFields) {
  auto report = make_report(7, 1.03, {{1, 64.0, 1.0}});
  report.pressure = flowtable::PressureStats{1, 1, 1, 1};

  std::stringstream v1;
  flowtable::write_report(v1, report, /*site_id=*/5, /*version=*/1);
  flowtable::ReportReader r1(v1);
  const auto item1 = r1.next();
  ASSERT_TRUE(item1.has_value());
  EXPECT_EQ(item1->version, 1u);
  EXPECT_EQ(item1->site_id, 0u);  // v1/v2 carry no site id
  EXPECT_EQ(item1->report.pressure.flows_rejected, 0u);
  EXPECT_DOUBLE_EQ(item1->report.volume_b, 0.0);  // legacy marker

  std::stringstream v2;
  flowtable::write_report(v2, report, /*site_id=*/5, /*version=*/2);
  flowtable::ReportReader r2(v2);
  const auto item2 = r2.next();
  ASSERT_TRUE(item2.has_value());
  EXPECT_EQ(item2->version, 2u);
  EXPECT_EQ(item2->report.pressure.flows_rejected, 1u);  // v2 keeps pressure
  EXPECT_DOUBLE_EQ(item2->report.volume_b, 0.0);

  std::stringstream bad;
  EXPECT_THROW(flowtable::write_report(bad, report, 0, 4),
               std::invalid_argument);
}

TEST(ReportIoV3, ReaderStreamsConcatenatedMixedVersions) {
  std::stringstream buf;
  flowtable::write_report(buf, make_report(0, 1.05, {{1, 10.0, 1.0}}), 0, 2);
  flowtable::write_report(buf, make_report(1, 1.05, {{2, 20.0, 1.0}}), 3, 3);
  flowtable::write_report(buf, make_report(2, 1.05, {{3, 30.0, 1.0}}), 3, 3);

  flowtable::ReportReader reader(buf);
  std::vector<std::uint64_t> epochs;
  while (auto item = reader.next()) epochs.push_back(item->report.epoch);
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(reader.items_read(), 3u);
}

TEST(ReportIoV3, ReaderThrowsOnTruncationAndStaysPoisoned) {
  std::stringstream buf;
  flowtable::write_report(buf, make_report(0, 1.05, {{1, 10.0, 1.0}}));
  flowtable::write_report(buf, make_report(1, 1.05, {{2, 20.0, 2.0}}));
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 5);  // tear the second report mid-record
  std::stringstream cut(bytes);

  flowtable::ReportReader reader(cut);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_THROW((void)reader.next(), std::runtime_error);
  // Poisoned: no resync attempts that could smuggle in a half-read report.
  EXPECT_THROW((void)reader.next(), std::runtime_error);
  EXPECT_EQ(reader.items_read(), 1u);
}

// --- collector merge semantics ----------------------------------------------

TEST(Collector, DisjointSitesSumExactly) {
  Collector collector;
  EXPECT_EQ(collector.ingest(0, 3, make_report(0, 1.05, {{1, 100.0, 2.0}})),
            Collector::IngestResult::Accepted);
  EXPECT_EQ(collector.ingest(1, 3, make_report(0, 1.05, {{2, 300.0, 4.0}})),
            Collector::IngestResult::Accepted);
  collector.finalize_all();

  const auto totals = collector.totals();
  EXPECT_DOUBLE_EQ(totals.bytes, 400.0);
  EXPECT_DOUBLE_EQ(totals.packets, 6.0);
  EXPECT_EQ(totals.flows, 2u);
  EXPECT_TRUE(totals.interval_valid);

  const auto top = collector.top_k(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].flow, tuple(2));  // descending by bytes
  EXPECT_DOUBLE_EQ(top[0].bytes, 300.0);
  EXPECT_EQ(top[0].sites, 1u);
  EXPECT_EQ(top[1].flow, tuple(1));
}

TEST(Collector, KeyFusionPoolsVarianceAcrossSites) {
  // The same flow measured independently at two sites: the merged estimate
  // sums, and the pooled interval is NARROWER than a single-site estimate
  // of the same total would be (sum of squares < square of sum).
  Collector collector;
  (void)collector.ingest(0, 3, make_report(0, 1.05, {{1, 1000.0, 10.0}}));
  (void)collector.ingest(1, 3, make_report(0, 1.05, {{1, 1000.0, 10.0}}));
  collector.finalize_all();

  const auto top = collector.top_k(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].sites, 2u);
  EXPECT_DOUBLE_EQ(top[0].bytes, 2000.0);
  EXPECT_TRUE(top[0].interval_valid);

  const double e = core::theory::cv_bound(1.05);
  const double z = core::theory::normal_quantile(0.5 + 0.95 / 2.0);
  const double pooled_half = z * std::sqrt(2.0 * e * e * 1000.0 * 1000.0);
  const double single_half = z * e * 2000.0;
  EXPECT_NEAR(top[0].bytes_high - top[0].bytes, pooled_half,
              1e-9 * pooled_half);
  EXPECT_LT(top[0].bytes_high - top[0].bytes, single_half);
}

TEST(Collector, DuplicateReportRejectedWithoutDoubleCount) {
  Collector collector;
  const auto report = make_report(0, 1.05, {{1, 100.0, 2.0}});
  EXPECT_EQ(collector.ingest(0, 3, report), Collector::IngestResult::Accepted);
  EXPECT_EQ(collector.ingest(0, 3, report), Collector::IngestResult::Duplicate);
  collector.finalize_all();

  EXPECT_DOUBLE_EQ(collector.totals().bytes, 100.0);
  EXPECT_EQ(collector.reports_ingested(), 1u);
  const auto sites = collector.sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].duplicates, 1u);
  EXPECT_EQ(sites[0].reports, 1u);
}

TEST(Collector, ReorderedDeliveryConvergesToInOrderState) {
  const auto e0 = make_report(0, 1.05, {{1, 10.0, 1.0}});
  const auto e1 = make_report(1, 1.05, {{1, 20.0, 1.0}, {2, 5.0, 1.0}});
  const auto e2 = make_report(2, 1.05, {{2, 40.0, 2.0}});

  Collector in_order;
  (void)in_order.ingest(0, 3, e0);
  (void)in_order.ingest(0, 3, e1);
  (void)in_order.ingest(0, 3, e2);
  in_order.finalize_all();

  Collector shuffled;
  (void)shuffled.ingest(0, 3, e2);
  (void)shuffled.ingest(0, 3, e0);
  (void)shuffled.ingest(0, 3, e1);
  shuffled.finalize_all();

  EXPECT_DOUBLE_EQ(shuffled.totals().bytes, in_order.totals().bytes);
  EXPECT_EQ(shuffled.totals().flows, in_order.totals().flows);
  const auto a = in_order.top_k(10);
  const auto b = shuffled.top_k(10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow) << i;
    EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes) << i;
  }
  ASSERT_EQ(shuffled.sites().size(), 1u);
  EXPECT_EQ(shuffled.sites()[0].reordered, 2u);
  EXPECT_EQ(shuffled.sites()[0].duplicates, 0u);
}

TEST(Collector, LateReportFoldsOnceAndIsNotReEmitted) {
  Collector collector;
  std::vector<std::uint64_t> emitted;
  collector.subscribe(
      [&emitted](const EpochReport& r) { emitted.push_back(r.epoch); });

  // Site 0 races ahead: epochs 0 and 1 finalise (2 stays open as the
  // fleet highwater).
  (void)collector.ingest(0, 3, make_report(0, 1.05, {{1, 10.0, 1.0}}));
  (void)collector.ingest(0, 3, make_report(1, 1.05, {{1, 10.0, 1.0}}));
  (void)collector.ingest(0, 3, make_report(2, 1.05, {{1, 10.0, 1.0}}));
  ASSERT_EQ(collector.epochs_finalized(), 2u);

  // A site the collector has never seen shows up with the finalised epoch
  // 0: late.  Its traffic still counts exactly once, but epoch 0 is not
  // re-emitted to subscribers.
  EXPECT_EQ(collector.ingest(1, 3, make_report(0, 1.05, {{2, 50.0, 1.0}})),
            Collector::IngestResult::Late);
  collector.finalize_all();

  EXPECT_DOUBLE_EQ(collector.totals().bytes, 80.0);
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{0, 1, 2}));
  const auto sites = collector.sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[1].late, 1u);
  EXPECT_EQ(sites[1].reports, 1u);
}

TEST(Collector, NewestEpochStaysOpenUntilFinalizeAll) {
  // Watermark rule: with every site current, nothing below highwater is
  // missing, but the newest epoch itself must stay open -- an unknown site
  // may still contribute to it.
  Collector collector;
  (void)collector.ingest(0, 3, make_report(0, 1.05, {{1, 10.0, 1.0}}));
  (void)collector.ingest(1, 3, make_report(0, 1.05, {{2, 10.0, 1.0}}));
  EXPECT_EQ(collector.epochs_finalized(), 0u);
  (void)collector.ingest(2, 3, make_report(0, 1.05, {{3, 10.0, 1.0}}));
  EXPECT_EQ(collector.epochs_finalized(), 0u);
  collector.finalize_all();
  EXPECT_EQ(collector.epochs_finalized(), 1u);
  for (const auto& site : collector.sites()) {
    EXPECT_EQ(site.late, 0u) << site.site_id;
  }
}

TEST(Collector, LaggingSiteStopsGatingFinalisation) {
  CollectorConfig config;
  config.liveness_window = 2;
  Collector collector(config);
  // Site 1 delivers epoch 0 then goes quiet; site 0 keeps rotating.
  (void)collector.ingest(1, 3, make_report(0, 1.05, {{9, 5.0, 1.0}}));
  for (std::uint64_t epoch = 0; epoch <= 5; ++epoch) {
    (void)collector.ingest(0, 3, make_report(epoch, 1.05, {{1, 10.0, 1.0}}));
  }
  // Epochs 1+ cannot wait forever on site 1: once its lag exceeds the
  // window it stops gating, and epochs below the highwater finalise.
  EXPECT_GE(collector.epochs_finalized(), 3u);

  const auto sites = collector.sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_FALSE(sites[0].lagging);
  EXPECT_TRUE(sites[1].lagging);
  EXPECT_EQ(sites[1].lag_epochs, 5u);
  EXPECT_GE(sites[1].epoch_gaps, 3u);
  collector.finalize_all();
  EXPECT_DOUBLE_EQ(collector.totals().bytes, 65.0);
}

TEST(Collector, LegacyReportsInvalidateIntervalUnlessFallback) {
  auto legacy = make_report(0, 0.0, {{1, 100.0, 2.0}});  // v2: no metadata
  Collector strict;
  (void)strict.ingest(0, 2, legacy);
  strict.finalize_all();
  EXPECT_DOUBLE_EQ(strict.totals().bytes, 100.0);  // still unbiased
  EXPECT_FALSE(strict.totals().interval_valid);
  EXPECT_FALSE(strict.top_k(1)[0].interval_valid);
  ASSERT_EQ(strict.sites().size(), 1u);
  EXPECT_EQ(strict.sites()[0].legacy, 1u);

  CollectorConfig config;
  config.fallback_b = 1.05;
  Collector lenient(config);
  (void)lenient.ingest(0, 2, legacy);
  lenient.finalize_all();
  EXPECT_TRUE(lenient.totals().interval_valid);
  EXPECT_GT(lenient.totals().bytes_high, lenient.totals().bytes);
}

TEST(Collector, MixedDiscoAndAdditiveSitesMerge) {
  Collector collector;
  (void)collector.ingest(0, 3, make_report(0, 1.05, {{1, 1000.0, 10.0}}));
  (void)collector.ingest(1, 3,
                         make_additive_report(0, 4.0, {{1, 1000.0, 10.0}}));
  collector.finalize_all();

  const auto top = collector.top_k(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].bytes, 2000.0);
  EXPECT_TRUE(top[0].interval_valid);
  EXPECT_EQ(top[0].sites, 2u);

  // The additive site's contribution uses sd = unit*sqrt(roundings)/2 with
  // roundings = round(packets); the DISCO site's uses e*est.
  const double e = core::theory::cv_bound(1.05);
  const double sd = core::theory::additive_error_sd(4.0, 10);
  const double z = core::theory::normal_quantile(0.5 + 0.95 / 2.0);
  const double half =
      z * std::sqrt(e * e * 1000.0 * 1000.0 + sd * sd);
  EXPECT_NEAR(top[0].bytes_high - top[0].bytes, half, 1e-9 * half);
}

TEST(Collector, PressureReconciliationSumsLatestPerSite) {
  Collector collector;
  auto a0 = make_report(0, 1.05, {{1, 1.0, 1.0}});
  a0.pressure = flowtable::PressureStats{10, 0, 0, 1};
  auto a1 = make_report(1, 1.05, {{1, 1.0, 1.0}});
  a1.pressure = flowtable::PressureStats{25, 3, 0, 2};  // cumulative
  auto b0 = make_report(0, 1.05, {{2, 1.0, 1.0}});
  b0.pressure = flowtable::PressureStats{0, 0, 7, 0};
  (void)collector.ingest(0, 3, a0);
  (void)collector.ingest(0, 3, a1);
  (void)collector.ingest(1, 3, b0);
  collector.finalize_all();

  // Per-site counters are cumulative: fleet pressure is the sum of each
  // site's LATEST values, not the sum over reports.
  const auto pressure = collector.pressure();
  EXPECT_EQ(pressure.flows_rejected, 25u);
  EXPECT_EQ(pressure.flows_evicted, 3u);
  EXPECT_EQ(pressure.counters_saturated, 7u);
  EXPECT_EQ(pressure.rescale_events, 2u);
}

TEST(Collector, TrackedFlowCapKeepsTotalsExact) {
  CollectorConfig config;
  config.max_tracked_flows = 4;
  Collector collector(config);
  std::vector<FlowSpec> flows;
  for (std::uint32_t i = 0; i < 10; ++i) {
    flows.push_back({i, 100.0, 1.0});
  }
  (void)collector.ingest(0, 3, make_report(0, 1.05, flows));
  collector.finalize_all();

  EXPECT_EQ(collector.tracked_flows(), 4u);
  EXPECT_EQ(collector.flows_dropped(), 6u);
  EXPECT_DOUBLE_EQ(collector.totals().bytes, 1000.0);  // exact past the cap
}

TEST(Collector, SubscribersAndModuleHostSeeMergedReports) {
  Collector collector;
  modules::ModuleHost host("collector_modules_test");
  host.attach(modules::make_module("topports"));
  host.subscribe_to(collector);  // duck-typed: same surface as a monitor

  (void)collector.ingest(0, 3, make_report(0, 1.05, {{1, 100.0, 2.0}}));
  (void)collector.ingest(1, 3, make_report(0, 1.05, {{1, 50.0, 1.0}}));
  (void)collector.ingest(0, 3, make_report(1, 1.05, {{2, 10.0, 1.0}}));
  (void)collector.ingest(1, 3, make_report(1, 1.05, {{3, 20.0, 1.0}}));
  collector.finalize_all();

  EXPECT_EQ(host.epochs_dispatched(), 2u);
  std::stringstream out;
  host.export_text(out);
  EXPECT_NE(out.str().find("topports"), std::string::npos);
}

TEST(Collector, MergedEpochReportFusesDuplicateKeys) {
  Collector collector;
  std::vector<EpochReport> emitted;
  collector.subscribe(
      [&emitted](const EpochReport& r) { emitted.push_back(r); });
  (void)collector.ingest(0, 3, make_report(0, 1.04, {{1, 100.0, 2.0}}));
  (void)collector.ingest(1, 3, make_report(0, 1.08, {{1, 60.0, 1.0},
                                                     {2, 40.0, 1.0}}));
  collector.finalize_all();

  ASSERT_EQ(emitted.size(), 1u);
  const EpochReport& merged = emitted[0];
  EXPECT_EQ(merged.epoch, 0u);
  ASSERT_EQ(merged.flows.size(), 2u);  // flow 1 fused, not duplicated
  double flow1 = 0.0;
  for (const auto& f : merged.flows) {
    if (f.flow == tuple(1)) flow1 = f.bytes;
  }
  EXPECT_DOUBLE_EQ(flow1, 160.0);
  EXPECT_DOUBLE_EQ(merged.totals.bytes, 200.0);
  EXPECT_EQ(merged.totals.flows, 2u);
  EXPECT_DOUBLE_EQ(merged.volume_b, 1.08);  // conservative max across sites
}

// --- spool transport ---------------------------------------------------------

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void append_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string serialized(const EpochReport& report, std::uint32_t site_id) {
  std::stringstream buf;
  flowtable::write_report(buf, report, site_id);
  return buf.str();
}

TEST(SpoolSource, TornTailFreezesOffsetThenResumes) {
  TempFile spool("collect_spool_torn.bin");
  const std::string first = serialized(make_report(0, 1.05, {{1, 10.0, 1.0}}), 0);
  const std::string second =
      serialized(make_report(1, 1.05, {{2, 20.0, 1.0}}), 0);
  append_bytes(spool.path(), first);
  append_bytes(spool.path(), second.substr(0, second.size() / 2));

  Collector collector;
  SpoolSource source({spool.path()});
  auto stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 1u);
  EXPECT_EQ(stats.truncated_tails, 1u);

  // The monitor finishes its flush: the tail completes in place and the
  // next poll picks up exactly the missing report -- no double count.
  append_bytes(spool.path(), second.substr(second.size() / 2));
  stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 1u);
  EXPECT_EQ(stats.truncated_tails, 0u);
  EXPECT_EQ(source.reports_delivered(), 2u);

  collector.finalize_all();
  EXPECT_DOUBLE_EQ(collector.totals().bytes, 30.0);
  ASSERT_EQ(collector.sites().size(), 1u);
  EXPECT_EQ(collector.sites()[0].duplicates, 0u);
}

TEST(SpoolSource, MissingFileRetriesWithoutFailing) {
  TempFile spool("collect_spool_missing.bin");
  Collector collector;
  SpoolSource source({spool.path()});
  auto stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 0u);
  EXPECT_EQ(stats.unreadable, 1u);

  append_bytes(spool.path(),
               serialized(make_report(0, 1.05, {{1, 10.0, 1.0}}), 0));
  stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 1u);
  EXPECT_EQ(stats.unreadable, 0u);
}

TEST(SpoolSource, RoundRobinInterleavesFleetEpochs) {
  // Two spool files, three epochs each: round-robin delivery means the
  // watermark advances fleet-wide and nothing is misclassified late.
  TempFile a("collect_spool_a.bin");
  TempFile b("collect_spool_b.bin");
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    append_bytes(a.path(), serialized(
        make_report(epoch, 1.05, {{1, 10.0, 1.0}}), 0));
    append_bytes(b.path(), serialized(
        make_report(epoch, 1.05, {{2, 10.0, 1.0}}), 1));
  }
  Collector collector;
  SpoolSource source({a.path(), b.path()});
  const auto stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 6u);
  collector.finalize_all();
  EXPECT_EQ(collector.epochs_finalized(), 3u);
  for (const auto& site : collector.sites()) {
    EXPECT_EQ(site.late, 0u) << site.site_id;
    EXPECT_EQ(site.reports, 3u) << site.site_id;
  }
}

#if DISCO_FAULTS
TEST(SpoolSource, InjectedShortWriteLeavesRecoverableSpool) {
  TempFile spool("collect_spool_fault.bin");
  const auto report = make_report(0, 1.05, {{1, 10.0, 1.0}, {2, 20.0, 2.0}});
  {
    // The monitor's write dies mid-report (disk full / kill -9 mid-flush).
    util::fault::Plan plan;
    plan.start_after = 5;
    plan.fail_count = 1;
    util::fault::arm(util::fault::Point::kShortWrite, plan);
    std::ofstream out(spool.path(), std::ios::binary);
    EXPECT_THROW(flowtable::write_report(out, report, 0), std::runtime_error);
    util::fault::disarm_all();
  }
  Collector collector;
  SpoolSource source({spool.path()});
  auto stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 0u);
  EXPECT_EQ(stats.truncated_tails, 1u);
  EXPECT_EQ(collector.reports_ingested(), 0u);  // nothing half-counted

  // The monitor restarts and rewrites its spool from the frozen offset.
  {
    std::ofstream out(spool.path(), std::ios::binary | std::ios::trunc);
    flowtable::write_report(out, report, 0);
  }
  stats = source.poll(collector);
  EXPECT_EQ(stats.reports, 1u);
  collector.finalize_all();
  EXPECT_DOUBLE_EQ(collector.totals().bytes, 30.0);
}
#endif  // DISCO_FAULTS

// --- socket transport --------------------------------------------------------

TEST(SocketTransport, ClientServerRoundTrip) {
  // Handler threads drain each connection at their own pace: one site can
  // race every epoch in before another site's first report.  Known fleet
  // => pre-register it (and keep the liveness window wider than the run),
  // so finalisation waits instead of misclassifying the slow site late.
  CollectorConfig config;
  config.liveness_window = 8;
  Collector collector(config);
  collector.expect_site(0);
  collector.expect_site(1);
  std::unique_ptr<ReportServer> server;
  try {
    server = std::make_unique<ReportServer>(collector);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind loopback socket: " << e.what();
  }

  {
    ReportClient c0("127.0.0.1", server->port());
    ReportClient c1("127.0.0.1", server->port());
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      c0.send(make_report(epoch, 1.05, {{1, 10.0, 1.0}}), 0);
      c1.send(make_report(epoch, 1.05, {{2, 20.0, 1.0}}), 1);
    }
  }  // destructors flush + close

  // Wait for all 6 reports to drain through the handler threads.
  for (int spins = 0; spins < 1000; ++spins) {
    {
      util::MutexLock lock(server->ingest_mutex());
      if (collector.reports_ingested() == 6) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->stop();
  EXPECT_EQ(server->connections_accepted(), 2u);
  EXPECT_EQ(server->truncated_streams(), 0u);

  collector.finalize_all();
  EXPECT_EQ(collector.reports_ingested(), 6u);
  EXPECT_EQ(collector.epochs_finalized(), 3u);
  EXPECT_DOUBLE_EQ(collector.totals().bytes, 90.0);
  for (const auto& site : collector.sites()) {
    EXPECT_EQ(site.late, 0u) << site.site_id;
    EXPECT_EQ(site.duplicates, 0u) << site.site_id;
  }
}

TEST(SocketTransport, StopCutsLiveConnectionsCleanly) {
  Collector collector;
  std::unique_ptr<ReportServer> server;
  try {
    server = std::make_unique<ReportServer>(collector);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind loopback socket: " << e.what();
  }
  ReportClient client("127.0.0.1", server->port());
  client.send(make_report(0, 1.05, {{1, 10.0, 1.0}}), 0);
  for (int spins = 0; spins < 1000; ++spins) {
    {
      util::MutexLock lock(server->ingest_mutex());
      if (collector.reports_ingested() == 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->stop();  // connection still open: shutdown must not hang
  server->stop();  // idempotent
  EXPECT_EQ(collector.reports_ingested(), 1u);
}

}  // namespace
}  // namespace disco::collect
