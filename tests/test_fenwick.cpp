// Unit tests for the Fenwick tree used by the traffic interleaver.
#include "util/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace disco::util {
namespace {

TEST(FenwickTree, InitiallyEmpty) {
  FenwickTree t(8);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.prefix_sum(8), 0u);
}

TEST(FenwickTree, SetAndPrefixSums) {
  FenwickTree t(5);
  t.set(0, 3);
  t.set(2, 7);
  t.set(4, 1);
  EXPECT_EQ(t.total(), 11u);
  EXPECT_EQ(t.prefix_sum(0), 0u);
  EXPECT_EQ(t.prefix_sum(1), 3u);
  EXPECT_EQ(t.prefix_sum(3), 10u);
  EXPECT_EQ(t.prefix_sum(5), 11u);
}

TEST(FenwickTree, OverwriteAndAdd) {
  FenwickTree t(3);
  t.set(1, 10);
  t.set(1, 4);
  EXPECT_EQ(t.total(), 4u);
  t.add(1, -3);
  EXPECT_EQ(t.value(1), 1u);
  EXPECT_EQ(t.total(), 1u);
}

TEST(FenwickTree, SampleHitsCorrectBuckets) {
  FenwickTree t(4);
  t.set(0, 2);  // targets 0,1
  t.set(1, 0);  // never
  t.set(2, 3);  // targets 2,3,4
  t.set(3, 1);  // target 5
  EXPECT_EQ(t.sample(0), 0u);
  EXPECT_EQ(t.sample(1), 0u);
  EXPECT_EQ(t.sample(2), 2u);
  EXPECT_EQ(t.sample(4), 2u);
  EXPECT_EQ(t.sample(5), 3u);
}

TEST(FenwickTree, SampleNeverReturnsZeroWeight) {
  FenwickTree t(100);
  Rng rng(3);
  for (std::size_t i = 0; i < 100; i += 2) t.set(i, rng.uniform_u64(1, 10));
  for (int trial = 0; trial < 10000; ++trial) {
    const std::size_t i = t.sample(rng.uniform_u64(0, t.total() - 1));
    ASSERT_GT(t.value(i), 0u);
    ASSERT_EQ(i % 2, 0u);
  }
}

TEST(FenwickTree, SampleFrequenciesMatchWeights) {
  FenwickTree t(3);
  t.set(0, 1);
  t.set(1, 2);
  t.set(2, 7);
  Rng rng(5);
  std::vector<int> hits(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++hits[t.sample(rng.uniform_u64(0, t.total() - 1))];
  }
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(FenwickTree, RandomizedAgainstLinearScan) {
  const std::size_t n = 37;  // non power of two
  FenwickTree t(n);
  std::vector<std::uint64_t> shadow(n, 0);
  Rng rng(7);
  for (int op = 0; op < 20000; ++op) {
    const std::size_t i = rng.uniform_u64(0, n - 1);
    const std::uint64_t w = rng.uniform_u64(0, 50);
    t.set(i, w);
    shadow[i] = w;
    const std::size_t q = rng.uniform_u64(0, n);
    std::uint64_t want = 0;
    for (std::size_t j = 0; j < q; ++j) want += shadow[j];
    ASSERT_EQ(t.prefix_sum(q), want) << "op=" << op;
    if (t.total() > 0) {
      const std::uint64_t target = rng.uniform_u64(0, t.total() - 1);
      const std::size_t idx = t.sample(target);
      // Definition check: prefix_sum(idx) <= target < prefix_sum(idx+1).
      ASSERT_LE(t.prefix_sum(idx), target);
      ASSERT_GT(t.prefix_sum(idx + 1), target);
    }
  }
}

}  // namespace
}  // namespace disco::util
