// Tests for the Section IV closed forms -- and Monte-Carlo experiments that
// pin the *implementation* to the *analysis* (Theorems 2 and 3).
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/disco.hpp"
#include "util/math.hpp"

namespace disco::core::theory {
namespace {

TEST(CvBound, MatchesPaperExample) {
  // Paper, below Corollary 1: b = 1.002 gives a bound of 0.0316.
  EXPECT_NEAR(cv_bound(1.002), 0.0316, 5e-4);
}

TEST(CvBound, IncreasesWithB) {
  // Paper Fig. 3: smaller b means smaller relative error.
  double prev = 0.0;
  for (double b : {1.0005, 1.001, 1.002, 1.005, 1.01, 1.05}) {
    const double e = cv_bound(b);
    EXPECT_GT(e, prev) << "b=" << b;
    prev = e;
  }
}

TEST(CvBound, RejectsBadBase) {
  EXPECT_THROW((void)cv_bound(1.0), std::invalid_argument);
}

TEST(CoefficientOfVariation, ZeroAtZeroOrOneCounter) {
  // S = 1 with theta = 1 is deterministic: one unit always sets c = 1.
  EXPECT_DOUBLE_EQ(coefficient_of_variation(1.002, 0, 1), 0.0);
  EXPECT_NEAR(coefficient_of_variation(1.002, 1, 1), 0.0, 1e-9);
}

TEST(CoefficientOfVariation, MonotoneInSAndBounded) {
  // Paper Fig. 2 shape: e grows with S and saturates at the Corollary 1 bound.
  const double b = 1.002;
  const double bound = cv_bound(b);
  for (std::uint64_t theta : {1ull, 64ull, 512ull, 1024ull}) {
    double prev = 0.0;
    for (std::uint64_t S = 2; S <= 4096; S *= 2) {
      const double e = coefficient_of_variation(b, S, theta);
      EXPECT_GE(e + 1e-12, prev) << "theta=" << theta << " S=" << S;
      EXPECT_LE(e, bound + 1e-9) << "theta=" << theta << " S=" << S;
      prev = e;
    }
    EXPECT_NEAR(coefficient_of_variation(b, 100000, theta), bound, bound * 0.01)
        << "theta=" << theta;
  }
}

TEST(CoefficientOfVariation, LargerThetaLowersEarlyVariation) {
  // A bigger deterministic first jump removes early randomness: at moderate
  // S the theta > 1 curves sit below theta = 1 (visible in paper Fig. 2).
  const double b = 1.002;
  const std::uint64_t S = 1024;
  const double e1 = coefficient_of_variation(b, S, 1);
  const double e512 = coefficient_of_variation(b, S, 512);
  EXPECT_LT(e512, e1);
}

TEST(ExpectedTraffic, ThetaOneIsF) {
  const double b = 1.01;
  util::GeometricScale scale(b);
  for (std::uint64_t S : {1ull, 10ull, 100ull, 1000ull}) {
    EXPECT_NEAR(expected_traffic(b, S, 1), scale.f(static_cast<double>(S)),
                scale.f(static_cast<double>(S)) * 1e-9);
  }
}

TEST(ExpectedTraffic, LargeThetaShortCircuits) {
  // If one trial of theta already exceeds f(S), E[T] is just theta.
  const double b = 1.01;
  EXPECT_DOUBLE_EQ(expected_traffic(b, 5, 1000000), 1000000.0);
}

TEST(ExpectedCounterBound, IsInverseF) {
  util::GeometricScale scale(1.004);
  for (double n : {10.0, 1000.0, 1e6}) {
    EXPECT_NEAR(expected_counter_upper_bound(1.004, n), scale.f_inv(n), 1e-9);
  }
}

// --- Monte-Carlo pinning: implementation obeys the analysis -----------------

double simulated_cv(double b, std::uint64_t target_traffic, std::uint64_t theta,
                    int runs, std::uint64_t seed) {
  // Feed uniform increments of size theta and record the traffic T needed to
  // reach counter value S* = f^-1-ish of the target; instead we fix the
  // total traffic and measure the estimate spread, which shares the same
  // asymptotic coefficient of variation.
  DiscoParams params(b);
  util::Rng rng(seed);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < target_traffic) {
      c = params.update(c, theta, rng);
      sent += theta;
    }
    const double est = params.estimate(c);
    sum += est;
    sum2 += est * est;
  }
  const double mean = sum / runs;
  const double var = sum2 / runs - mean * mean;
  return std::sqrt(std::max(0.0, var)) / mean;
}

TEST(MonteCarlo, EstimatorSpreadRespectsCorollaryBound) {
  // The estimator's relative spread must stay at/below the Corollary 1 bound
  // (within Monte-Carlo slack) and shrink when b shrinks.
  const std::uint64_t traffic = 200000;
  const double cv_large_b = simulated_cv(1.02, traffic, 100, 400, 11);
  const double cv_small_b = simulated_cv(1.002, traffic, 100, 400, 12);
  EXPECT_LE(cv_large_b, cv_bound(1.02) * 1.25);
  EXPECT_LE(cv_small_b, cv_bound(1.002) * 1.25);
  EXPECT_LT(cv_small_b, cv_large_b);
}

TEST(MonteCarlo, Theorem3BoundHolds) {
  // E[c(n)] <= f^-1(n), and the gap is tiny (paper Fig. 4: relative gap
  // ~1e-4).  50 runs, like the paper.
  const double b = 1.01;
  DiscoParams params(b);
  util::Rng rng(21);
  for (std::uint64_t n : {1000ull, 10000ull, 100000ull}) {
    const int runs = 50;
    double mean_counter = 0.0;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t c = 0;
      std::uint64_t sent = 0;
      while (sent < n) {
        const std::uint64_t l = std::min<std::uint64_t>(500, n - sent);
        c = params.update(c, l, rng);
        sent += l;
      }
      mean_counter += static_cast<double>(c);
    }
    mean_counter /= runs;
    const double bound = expected_counter_upper_bound(b, static_cast<double>(n));
    // Monte-Carlo mean of 50 runs: allow half a percent of slack above.
    EXPECT_LE(mean_counter, bound * 1.005) << "n=" << n;
    // The bound is tight: the mean must not sit far below it either.
    EXPECT_GE(mean_counter, bound * 0.97) << "n=" << n;
  }
}

class CvFormulaTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(CvFormulaTest, ThetaFormulaConsistentAcrossGrid) {
  const auto [b, theta] = GetParam();
  const double bound = cv_bound(b);
  for (std::uint64_t S = 2; S <= 2048; S *= 4) {
    const double e = coefficient_of_variation(b, S, theta);
    ASSERT_GE(e, 0.0);
    ASSERT_LE(e, bound + 1e-9) << "b=" << b << " theta=" << theta << " S=" << S;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CvFormulaTest,
    ::testing::Combine(::testing::Values(1.001, 1.002, 1.01, 1.05),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{64},
                                         std::uint64_t{512}, std::uint64_t{1024})));

}  // namespace
}  // namespace disco::core::theory
