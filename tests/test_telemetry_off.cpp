// The compiled-out telemetry configuration.  This file is built with
// DISCO_TELEMETRY=0 forced on the command line (see tests/CMakeLists.txt),
// so it exercises the stub primitives in every build -- including the
// default one where the rest of the repo has telemetry compiled in.  It
// deliberately includes only telemetry headers: the stubs are header-only,
// and the exporters (export.cpp) are configuration-independent.
#include <gtest/gtest.h>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

static_assert(DISCO_TELEMETRY == 0,
              "test_telemetry_off must be compiled with DISCO_TELEMETRY=0");

namespace disco {
namespace {

TEST(TelemetryOff, EnableIsIgnored) {
  telemetry::set_enabled(true);
  EXPECT_FALSE(telemetry::enabled());
}

TEST(TelemetryOff, PrimitivesAreNoOps) {
  telemetry::set_enabled(true);
  telemetry::Counter c;
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
  telemetry::Gauge g;
  g.set(42);
  g.add(1);
  EXPECT_EQ(g.value(), 0);
  telemetry::LatencyHistogram h;
  h.record(123);
  { const telemetry::ScopeTimer timer(h); }
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(TelemetryOff, RegistryHandsOutStubsAndEmptySnapshots) {
  auto& registry = telemetry::Registry::global();
  registry.counter("a.total").inc(5);
  registry.gauge("a.level").set(5);
  registry.histogram("a.dist").record(5);
  const telemetry::Snapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.metrics.empty());
  registry.reset_values();  // must be callable
}

TEST(TelemetryOff, EmptySnapshotStillExportsValidJson) {
  const telemetry::Snapshot empty;
  const std::string json = telemetry::to_json(empty);
  const telemetry::Snapshot parsed = telemetry::snapshot_from_json(json);
  EXPECT_TRUE(parsed.metrics.empty());
  EXPECT_EQ(telemetry::to_text(empty), "");
}

}  // namespace
}  // namespace disco
