// Telemetry subsystem: primitives, registry snapshots, exporters, and the
// instrumentation wired through the monitor stack.  These tests run against
// the compiled-in configuration; test_telemetry_off.cpp covers the
// DISCO_TELEMETRY=0 stubs.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "flowtable/sharded_monitor.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"

#if DISCO_TELEMETRY

namespace disco {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::LatencyHistogram;
using telemetry::MetricType;
using telemetry::Registry;
using telemetry::ScopeTimer;
using telemetry::Snapshot;

/// Enables telemetry for one test and restores the disabled default after,
/// so tests stay independent of execution order.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    Registry::global().reset_values();
  }
  void TearDown() override { telemetry::set_enabled(false); }
};

TEST_F(TelemetryTest, CounterCountsAndResets) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, CounterIsDroppedWhileDisabled) {
  Counter c;
  telemetry::set_enabled(false);
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
  telemetry::set_enabled(true);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(TelemetryTest, CounterIsAtomicUnderThreads) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 100'000;
  Counter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
}

TEST_F(TelemetryTest, GaugeSetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.set(-4);
  EXPECT_EQ(g.value(), -4);
}

TEST_F(TelemetryTest, HistogramBucketIndexRoundTrips) {
  // Every sample must land in a bucket whose range contains it.
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{15}, std::uint64_t{16},
        std::uint64_t{100}, std::uint64_t{1000}, std::uint64_t{123456789},
        std::uint64_t{1} << 40, ~std::uint64_t{0}}) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets);
    EXPECT_GE(LatencyHistogram::bucket_upper(index), v) << "value " << v;
    if (index > 0) {
      EXPECT_LT(LatencyHistogram::bucket_upper(index - 1), v) << "value " << v;
    }
  }
  // Upper bounds are strictly increasing -- the quantile walk relies on it.
  for (std::size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::bucket_upper(i), LatencyHistogram::bucket_upper(i - 1));
  }
}

TEST_F(TelemetryTest, HistogramQuantilesOfUniformRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500'500u);
  // Quantiles report bucket upper bounds: never below the true quantile,
  // and less than one sub-bucket width (25%) above it.
  EXPECT_GE(h.quantile(0.50), 500.0);
  EXPECT_LE(h.quantile(0.50), 500.0 * 1.25);
  EXPECT_GE(h.quantile(0.95), 950.0);
  EXPECT_LE(h.quantile(0.95), 950.0 * 1.25);
  EXPECT_GE(h.quantile(0.99), 990.0);
  EXPECT_LE(h.quantile(0.99), 990.0 * 1.25);
  // Degenerate quantiles stay within the recorded range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1023.0);
}

TEST_F(TelemetryTest, HistogramSmallValuesAreExact) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(3);
  h.record(7);
  EXPECT_EQ(h.quantile(0.5), 3.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
}

TEST_F(TelemetryTest, HistogramMergePreservesDistribution) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v = 1; v <= 500; ++v) a.record(v);
  for (std::uint64_t v = 501; v <= 1000; ++v) b.record(v);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.sum(), 500'500u);
  LatencyHistogram whole;
  for (std::uint64_t v = 1; v <= 1000; ++v) whole.record(v);
  // Merged and directly-recorded histograms are bucket-identical.
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.quantile(0.95), whole.quantile(0.95));
}

TEST_F(TelemetryTest, ScopeTimerRecordsNanoseconds) {
  LatencyHistogram h;
  {
    const ScopeTimer timer(h);
    // Any nonzero amount of work; the assertion is only on count.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(TelemetryTest, ScopeTimerIsInertWhileDisabled) {
  LatencyHistogram h;
  telemetry::set_enabled(false);
  { const ScopeTimer timer(h); }
  telemetry::set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(TelemetryTest, RegistrySharesMetricsByName) {
  Registry registry;
  Counter& a = registry.counter("x.events_total");
  Counter& b = registry.counter("x.events_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(&a, &registry.counter("y.events_total"));
}

TEST_F(TelemetryTest, RegistrySnapshotIsSortedAndComplete) {
  Registry registry;
  registry.counter("b.count").inc(2);
  registry.gauge("a.level").set(-7);
  registry.histogram("c.dist").record(100);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.level");
  EXPECT_EQ(snap.metrics[0].type, MetricType::kGauge);
  EXPECT_EQ(snap.metrics[0].value, -7);
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.metrics[1].value, 2);
  EXPECT_EQ(snap.metrics[2].name, "c.dist");
  EXPECT_EQ(snap.metrics[2].histogram.count, 1u);
  ASSERT_EQ(snap.metrics[2].histogram.buckets.size(), 1u);
  EXPECT_GE(snap.metrics[2].histogram.buckets[0].upper, 100u);
}

TEST_F(TelemetryTest, SnapshotJsonRoundTrip) {
  Registry registry;
  registry.counter("flow_monitor.ingest_total").inc(123456);
  registry.gauge("flow_monitor.table_occupancy").set(512);
  auto& h = registry.histogram("flow_table.probe_length");
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) h.record(rng.uniform_u64(1, 40));
  const Snapshot original = registry.snapshot();
  const std::string json = telemetry::to_json(original);
  const Snapshot parsed = telemetry::snapshot_from_json(json);
  EXPECT_EQ(parsed, original);
}

TEST_F(TelemetryTest, JsonParserRejectsGarbage) {
  EXPECT_THROW(telemetry::snapshot_from_json("not json"), std::runtime_error);
  EXPECT_THROW(telemetry::snapshot_from_json("{}"), std::runtime_error);
  EXPECT_THROW(telemetry::snapshot_from_json(
                   R"({"metrics": [{"name": "x", "type": "widget"}]})"),
               std::runtime_error);
  EXPECT_THROW(telemetry::snapshot_from_json(
                   R"({"metrics": [{"name": "x", "type": "counter"}]})"),
               std::runtime_error);
}

TEST_F(TelemetryTest, TextExportListsEveryMetric) {
  Registry registry;
  registry.counter("a.total").inc(5);
  registry.histogram("b.dist").record(9);
  const std::string text = telemetry::to_text(registry.snapshot());
  EXPECT_NE(text.find("counter a.total 5"), std::string::npos);
  EXPECT_NE(text.find("histogram b.dist count=1 sum=9"), std::string::npos);
}

TEST_F(TelemetryTest, RegistryResetValuesKeepsNames) {
  Registry registry;
  registry.counter("a.total").inc(5);
  registry.histogram("b.dist").record(9);
  registry.reset_values();
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].value, 0);
  EXPECT_EQ(snap.metrics[1].histogram.count, 0u);
}

// --- instrumentation through the monitor stack ------------------------------

flowtable::FiveTuple random_tuple(util::Rng& rng) {
  flowtable::FiveTuple t;
  t.src_ip = static_cast<std::uint32_t>(rng.next());
  t.dst_ip = static_cast<std::uint32_t>(rng.next());
  t.src_port = static_cast<std::uint16_t>(rng.uniform_u64(1024, 65535));
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

TEST_F(TelemetryTest, ShardedMonitorPerShardCountersSumToTotal) {
  flowtable::ShardedFlowMonitor monitor(
      {.base = {.max_flows = 4096, .counter_bits = 10}, .shards = 8});
  // Draw packets from a flow pool well under capacity so no shard rejects
  // and every ingest must be accounted somewhere.
  util::Rng pool_rng(555);
  std::vector<flowtable::FiveTuple> pool;
  for (int i = 0; i < 2000; ++i) pool.push_back(random_tuple(pool_rng));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPacketsPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&monitor, &pool, t] {
      util::Rng rng(900 + t);
      for (std::uint64_t i = 0; i < kPacketsPerThread; ++i) {
        const auto& tuple = pool[rng.uniform_u64(0, pool.size() - 1)];
        ASSERT_TRUE(monitor.ingest(tuple, 100, i));
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::uint64_t total = monitor.packets_seen();
  EXPECT_EQ(total, kThreads * kPacketsPerThread);
  std::uint64_t shard_sum = 0;
  for (unsigned s = 0; s < monitor.shard_count(); ++s) {
    shard_sum += monitor.shard_ingests(s);
  }
  EXPECT_EQ(shard_sum, total);

  // The registry view agrees with the accessor view.
  std::uint64_t registry_sum = 0;
  for (unsigned s = 0; s < monitor.shard_count(); ++s) {
    registry_sum += Registry::global()
                        .counter("sharded_monitor.shard_" + std::to_string(s) +
                                 ".ingest_total")
                        .value();
  }
  EXPECT_EQ(registry_sum, total);
}

TEST_F(TelemetryTest, MonitorStackPopulatesGlobalSnapshot) {
  flowtable::ShardedFlowMonitor monitor(
      {.base = {.max_flows = 1024, .counter_bits = 10}, .shards = 2});
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    monitor.ingest(random_tuple(rng), 64, static_cast<std::uint64_t>(i));
  }
  monitor.evict_idle(10'000'000, 0);

  const Snapshot snap = Registry::global().snapshot();
  auto value_of = [&](const std::string& name) -> std::int64_t {
    for (const auto& m : snap.metrics) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return -1;
  };
  EXPECT_GT(value_of("sharded_monitor.shard_0.ingest_total") +
                value_of("sharded_monitor.shard_1.ingest_total"),
            0);
  EXPECT_GT(value_of("sharded_monitor.shard_0.evictions_total") +
                value_of("sharded_monitor.shard_1.evictions_total"),
            0);
  // The flow-table probe histogram fills as a side effect of ingest.
  bool found_probe_hist = false;
  for (const auto& m : snap.metrics) {
    if (m.name == "flow_table.probe_length") {
      found_probe_hist = true;
      EXPECT_EQ(m.type, MetricType::kHistogram);
      EXPECT_GT(m.histogram.count, 0u);
      EXPECT_GE(m.histogram.p50, 1.0);
    }
  }
  EXPECT_TRUE(found_probe_hist);
}

}  // namespace
}  // namespace disco

#else  // DISCO_TELEMETRY == 0

TEST(Telemetry, CompiledOut) {
  // The full suite targets the compiled-in configuration; the stub behaviour
  // is covered (in every configuration) by test_telemetry_off.
  GTEST_SKIP() << "telemetry compiled out (DISCO_TELEMETRY=0)";
}

#endif  // DISCO_TELEMETRY
