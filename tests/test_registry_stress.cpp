// Concurrency stress tests for the telemetry Registry: the structure whose
// maps are DISCO_GUARDED_BY(mutex_).  Many threads register (colliding and
// distinct names), increment, snapshot, and reset concurrently; reference
// stability and exact counting must survive.  Run under TSan in CI, this is
// the dynamic companion to the static thread-safety annotations.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace disco::telemetry {
namespace {

#if DISCO_TELEMETRY

// Telemetry is opt-in process-wide; enable it for the duration of each test
// (same pattern as test_telemetry.cpp).
class RegistryStress : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(false); }
};

TEST_F(RegistryStress, ConcurrentLookupsOfOneNameShareOneCounter) {
  Registry registry;
  const unsigned threads = 8;
  const int lookups = 2000;
  std::vector<Counter*> first(threads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < lookups; ++i) {
        Counter& c = registry.counter("stress.shared_total");
        if (first[t] == nullptr) first[t] = &c;
        // Address must be stable across repeated lookups from this thread.
        ASSERT_EQ(&c, first[t]);
        c.inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every thread resolved the same metric object...
  for (unsigned t = 1; t < threads; ++t) ASSERT_EQ(first[t], first[0]);
  // ...and no increment was lost.
  EXPECT_EQ(first[0]->value(),
            static_cast<std::uint64_t>(threads) * lookups);
}

TEST_F(RegistryStress, DistinctNamesStayIndependentUnderChurn) {
  Registry registry;
  const unsigned threads = 8;
  const int metrics_per_thread = 50;
  const int increments = 200;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int m = 0; m < metrics_per_thread; ++m) {
        Counter& c = registry.counter("stress.t" + std::to_string(t) +
                                      ".m" + std::to_string(m));
        for (int i = 0; i < increments; ++i) c.inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.metrics.size(),
            static_cast<std::size_t>(threads) * metrics_per_thread);
  for (const auto& m : snap.metrics) {
    EXPECT_EQ(m.value, increments) << m.name;
  }
}

TEST_F(RegistryStress, SnapshotsDuringRegistrationSeeConsistentState) {
  // Writers register-and-bump while a reader snapshots continuously: no
  // crash, no torn map state, and every observed value is a multiple of
  // the per-metric increment pattern (each metric is bumped to completion
  // before its writer moves on, so values are 0..increments).
  Registry registry;
  std::atomic<bool> stop{false};
  const int increments = 100;

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot snap = registry.snapshot();
      for (const auto& m : snap.metrics) {
        ASSERT_GE(m.value, 0);
        ASSERT_LE(m.value, increments);
      }
    }
  });
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int m = 0; m < 100; ++m) {
        Counter& c = registry.counter("churn.t" + std::to_string(t) +
                                      ".m" + std::to_string(m));
        for (int i = 0; i < increments; ++i) c.inc();
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.snapshot().metrics.size(), 400u);
}

TEST_F(RegistryStress, ResetRacesWithIncrementsWithoutCorruption) {
  // reset_values is documented as epoch-style: concurrent in-flight
  // increments may survive, but the value must always be a sane count
  // (never torn/garbage) and references stay valid.
  Registry registry;
  Counter& c = registry.counter("stress.reset_total");
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.reset_values();
      std::this_thread::yield();
    }
  });
  const int increments = 200000;
  for (int i = 0; i < increments; ++i) c.inc();
  stop.store(true);
  resetter.join();
  EXPECT_LE(c.value(), static_cast<std::uint64_t>(increments));
  // Reference still valid and functional after all the resets.
  registry.reset_values();
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(RegistryStress, MixedMetricTypesUnderConcurrentRegistration) {
  Registry registry;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        registry.counter("mixed.counter_total").inc();
        registry.gauge("mixed.gauge").set(static_cast<std::int64_t>(t));
        registry.histogram("mixed.latency").record(100 + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].value, 6 * 300);
  EXPECT_EQ(snap.metrics[2].histogram.count, 6u * 300u);
}

#else  // DISCO_TELEMETRY == 0

TEST(RegistryStressStub, ConcurrentUseOfStubRegistryIsHarmless) {
  // The compiled-out registry hands every caller the same no-op metrics;
  // hammering it from several threads must not crash and snapshots must
  // stay empty.
  Registry registry;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        registry.counter("stub.counter_total").inc();
        registry.gauge("stub.gauge").set(1);
        registry.histogram("stub.latency").record(5);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(registry.snapshot().metrics.empty());
}

#endif  // DISCO_TELEMETRY

}  // namespace
}  // namespace disco::telemetry
