// Tests for generic regulation functions and GenericDisco.
#include "core/regulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace disco::core {
namespace {

TEST(GeometricRegulation, MatchesScale) {
  GeometricRegulation f(1.01);
  util::GeometricScale scale(1.01);
  for (double c : {0.0, 1.0, 17.5, 400.0}) {
    EXPECT_DOUBLE_EQ(f.value(c), scale.f(c));
    EXPECT_DOUBLE_EQ(f.inverse(scale.f(c)), scale.f_inv(scale.f(c)));
  }
}

TEST(QuadraticRegulation, RejectsBadParameter) {
  EXPECT_THROW(QuadraticRegulation(0.0), std::invalid_argument);
  EXPECT_THROW(QuadraticRegulation(-1.0), std::invalid_argument);
}

TEST(QuadraticRegulation, AnchorsAndInverse) {
  QuadraticRegulation f(0.5);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 1.5);
  for (double c : {0.0, 1.0, 10.0, 321.0}) {
    EXPECT_NEAR(f.inverse(f.value(c)), c, 1e-9 * (c + 1.0));
  }
}

TEST(QuadraticRegulation, ForBudgetCoversMaxFlow) {
  const auto f = QuadraticRegulation::for_budget(1 << 20, 12);
  const double c_max = static_cast<double>((1 << 12) - 1);
  EXPECT_GE(f.value(c_max), static_cast<double>(1 << 20) * (1 - 1e-9));
}

TEST(GenericDisco, GeometricPathMatchesDiscoParamsExactly) {
  // Same f, same RNG stream: GenericDisco<Geometric> must reproduce the
  // hand-optimised DiscoParams trajectory bit for bit.
  const double b = 1.013;
  GenericDisco<GeometricRegulation> generic{GeometricRegulation(b)};
  DiscoParams optimized(b);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  std::uint64_t ca = 0;
  std::uint64_t cb = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t l = 40 + (i * 199) % 1460;
    ca = generic.update(ca, l, rng_a);
    cb = optimized.update(cb, l, rng_b);
    ASSERT_EQ(ca, cb) << "i=" << i;
  }
}

TEST(GenericDisco, QuadraticExpectationIdentity) {
  // The unbiasedness mechanism is f-agnostic: E[f(c')] - f(c) = l must hold
  // for the quadratic regulation exactly as for the geometric one.
  GenericDisco<QuadraticRegulation> disco{QuadraticRegulation(0.05)};
  const auto& f = disco.regulation();
  for (std::uint64_t c : {0ull, 5ull, 100ull, 2000ull}) {
    for (std::uint64_t l : {1ull, 64ull, 1500ull}) {
      const UpdateDecision d = disco.decide(c, l);
      const double f_lo = f.value(static_cast<double>(c + d.delta));
      const double f_hi = f.value(static_cast<double>(c + d.delta + 1));
      const double expected = (1.0 - d.p_d) * f_lo + d.p_d * f_hi;
      EXPECT_NEAR(expected - f.value(static_cast<double>(c)),
                  static_cast<double>(l), 1e-6 * static_cast<double>(l) + 1e-9)
          << "c=" << c << " l=" << l;
    }
  }
}

TEST(GenericDisco, QuadraticUnbiasedOverRuns) {
  GenericDisco<QuadraticRegulation> disco{QuadraticRegulation(0.1)};
  util::Rng rng(7);
  const std::uint64_t truth = 100000;
  const int runs = 1500;
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    std::uint64_t c = 0;
    std::uint64_t sent = 0;
    while (sent < truth) {
      c = disco.update(c, 500, rng);
      c = disco.update(c, 0, rng);  // zero-length update is a no-op
      c = disco.update(c, 500, rng);
      sent += 1000;
    }
    sum += disco.estimate(c);
  }
  EXPECT_NEAR(sum / runs, static_cast<double>(truth), truth * 0.02);
}

TEST(GenericDisco, QuadraticErrorShrinksWithFlowLength) {
  // The quadratic profile's selling point: for unit increments (flow size
  // counting) the relative error decays like n^-1/4 instead of saturating
  // at a constant as the geometric profile does.  (With large fixed packet
  // increments the decay cancels against the deterministic-jump effect --
  // the regulation ablation bench shows that regime.)
  GenericDisco<QuadraticRegulation> disco{QuadraticRegulation(0.1)};
  util::Rng rng(11);
  auto mean_error = [&](std::uint64_t truth) {
    const int runs = 50;
    double err = 0.0;
    for (int r = 0; r < runs; ++r) {
      std::uint64_t c = 0;
      for (std::uint64_t sent = 0; sent < truth; ++sent) {
        c = disco.update(c, 1, rng);
      }
      err += util::relative_error(disco.estimate(c), static_cast<double>(truth));
    }
    return err / runs;
  };
  const double err_small = mean_error(10000);
  const double err_large = mean_error(400000);
  // n grows 40x, so the error should fall by roughly 40^(1/4) ~ 2.5.
  EXPECT_LT(err_large, err_small * 0.65);
}

TEST(GenericDisco, QuadraticCounterGrowsLikeSqrt) {
  GenericDisco<QuadraticRegulation> disco{QuadraticRegulation(1.0)};
  util::Rng rng(13);
  std::uint64_t c = 0;
  std::uint64_t sent = 0;
  while (sent < 1000000) {
    c = disco.update(c, 1000, rng);
    sent += 1000;
  }
  // f(c) = c + c^2 ~ 1e6 => c ~ 1000.
  EXPECT_NEAR(static_cast<double>(c), 1000.0, 150.0);
}

}  // namespace
}  // namespace disco::core
