// Tests for the generic flow table instantiated with IPv6 keys.
#include <gtest/gtest.h>

#include <unordered_map>

#include "flowtable/flow_table.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {
namespace {

FiveTupleV6 tuple6(std::uint32_t i) {
  FiveTupleV6 t;
  // 2001:db8::/32 documentation prefix with the id scattered through the
  // interface identifier.
  t.src_ip = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0,
              0, 0, 0, 0,
              static_cast<std::uint8_t>(i >> 24), static_cast<std::uint8_t>(i >> 16),
              static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i)};
  t.dst_ip = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x53};
  t.src_port = static_cast<std::uint16_t>(1024 + i % 50000);
  t.dst_port = 443;
  t.protocol = 6;
  return t;
}

TEST(FiveTupleV6, EqualityAndHashSensitivity) {
  const FiveTupleV6 a = tuple6(7);
  FiveTupleV6 b = tuple6(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash_tuple(a), hash_tuple(b));
  b.src_ip[15] ^= 1;  // single-bit address change
  EXPECT_NE(a, b);
  EXPECT_NE(hash_tuple(a), hash_tuple(b));
  b = tuple6(7);
  b.dst_port = 80;
  EXPECT_NE(hash_tuple(a), hash_tuple(b));
}

TEST(FlowTableV6, InsertFindEraseLifecycle) {
  FlowTableV6 table(128);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto slot = table.insert_or_get(tuple6(i));
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_TRUE(table.find(tuple6(42)).has_value());
  EXPECT_TRUE(table.erase(tuple6(42)).has_value());
  EXPECT_FALSE(table.find(tuple6(42)).has_value());
  EXPECT_EQ(table.size(), 99u);
}

TEST(FlowTableV6, RandomizedChurnAgainstUnorderedMap) {
  FlowTableV6 table(200);
  std::unordered_map<FiveTupleV6, std::uint32_t> shadow;
  util::Rng rng(9);
  for (int op = 0; op < 20000; ++op) {
    const auto key = tuple6(static_cast<std::uint32_t>(rng.uniform_u64(0, 400)));
    if (rng.bernoulli(0.6)) {
      const auto slot = table.insert_or_get(key);
      const auto it = shadow.find(key);
      if (it != shadow.end()) {
        ASSERT_TRUE(slot.has_value());
        ASSERT_EQ(*slot, it->second);
      } else if (shadow.size() < 200) {
        ASSERT_TRUE(slot.has_value());
        shadow.emplace(key, *slot);
      } else {
        ASSERT_FALSE(slot.has_value());
      }
    } else {
      ASSERT_EQ(table.erase(key).has_value(), shadow.erase(key) > 0);
    }
  }
  EXPECT_EQ(table.size(), shadow.size());
}

TEST(FlowTableV6, StorageAccountsWiderKeys) {
  FlowTableV6 v6(100);
  BasicFlowTable<FiveTuple> v4(100);
  // IPv6 keys are ~3x the IPv4 key size; the bucket bill must reflect it.
  EXPECT_GT(v6.storage_bits(), 2 * v4.storage_bits());
}

TEST(FlowTableV6, ProbeLengthStaysShort) {
  FlowTableV6 table(4096, 0.75);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    ASSERT_TRUE(table.insert_or_get(tuple6(i)).has_value());
  }
  EXPECT_LT(table.mean_probe_length(), 4.0);
}

}  // namespace
}  // namespace disco::flowtable
