// Model-check drivers for SpscRing (src/pipeline/packet_ring.hpp).  This
// TU is compiled with DISCO_MODELCHECK=1 (tests/CMakeLists.txt), so the
// ring instantiates against the modeled atomics from src/verify: every
// index load/store is a scheduling + reads-from decision and every slot
// access is race-checked.
//
// Coverage:
//   * the pristine ring, explored to exhaustion at small bounds -- the
//     acceptance gate: zero races, values FIFO and exact;
//   * the span API (push_prepare/push_commit), same exhaustive treatment;
//   * a planted bug (FixtureRing with the consumer's acquire load of the
//     producer's index downgraded to relaxed) that the checker MUST flag
//     with a readable trace -- the regression that proves the harness can
//     see the class of bug it exists for.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "pipeline/packet_ring.hpp"
#include "util/atomic.hpp"
#include "verify/model.hpp"

namespace verify = disco::verify;
namespace util = disco::util;
using disco::pipeline::SpscRing;

namespace {

/// Producer pushes 1..count; consumer drains; both spin politely.  Returns
/// what the consumer saw, in order, via `out`.
void ring_driver(std::size_t capacity, std::uint64_t count,
                 std::vector<std::uint64_t>* out) {
  SpscRing<std::uint64_t> ring(capacity);
  out->clear();
  verify::run_threads({
      [&] {
        for (std::uint64_t v = 1; v <= count; ++v) {
          while (!ring.try_push(v)) verify::spin_yield();
        }
      },
      [&] {
        std::uint64_t buf[8];
        while (out->size() < count) {
          const std::size_t got = ring.pop_batch(buf, 8);
          if (got == 0) {
            verify::spin_yield();
            continue;
          }
          out->insert(out->end(), buf, buf + got);
        }
      },
  });
  verify::mc_check(out->size() == count, "consumer must see every value");
  for (std::uint64_t i = 0; i < out->size(); ++i) {
    verify::mc_check((*out)[i] == i + 1, "values must arrive in FIFO order");
  }
  verify::mc_check(ring.size_approx() == 0, "ring must drain empty");
}

}  // namespace

TEST(ModelCheckRing, PushPopTinyFullyExhaustive) {
  // Smallest interesting instance with NO preemption bound: the entire
  // decision tree, every interleaving and every stale read.
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 500000;
  std::vector<std::uint64_t> seen;
  verify::Result r =
      verify::explore(opts, [&] { ring_driver(2, 2, &seen); });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted) << "tree larger than cap: raise max_executions";
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_GT(r.executions, 8u);
}

TEST(ModelCheckRing, PushPopExhaustivePreemptionBounded) {
  // The acceptance-criteria instance: 4 slots, wrap-around traffic, every
  // schedule reachable with <= 2 preemptions (voluntary yields stay free).
  // Sized so exhaustion stays well under the 60 s ctest budget even with
  // ASan and a slow CI host on top.
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  std::vector<std::uint64_t> seen;
  verify::Result r =
      verify::explore(opts, [&] { ring_driver(4, 5, &seen); });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}

TEST(ModelCheckRing, SpanReserveCommitExhaustive) {
  verify::Options opts;
  opts.exhaustive = true;
  opts.preemption_bound = 2;
  opts.max_executions = 500000;
  verify::Result r = verify::explore(opts, [] {
    SpscRing<std::uint64_t> ring(4);
    std::vector<std::uint64_t> seen;
    verify::run_threads({
        [&] {
          // Reserve a 3-slot span (may be granted in pieces at the wrap),
          // write directly into the ring, publish each piece with one
          // commit; then one plain push on top.
          std::uint64_t next = 1;
          std::size_t remaining = 3;
          while (remaining > 0) {
            std::size_t granted = remaining;
            auto* span = ring.push_prepare(granted);
            if (span == nullptr) {
              verify::spin_yield();
              continue;
            }
            for (std::size_t i = 0; i < granted; ++i) span[i] = next++;
            ring.push_commit(granted);
            remaining -= granted;
          }
          while (!ring.try_push(4)) verify::spin_yield();
        },
        [&] {
          std::uint64_t buf[4];
          while (seen.size() < 4) {
            const std::size_t got = ring.pop_batch(buf, 4);
            if (got == 0) {
              verify::spin_yield();
              continue;
            }
            seen.insert(seen.end(), buf, buf + got);
          }
        },
    });
    verify::mc_check(seen.size() == 4, "span + push must all arrive");
    for (std::uint64_t i = 0; i < seen.size(); ++i) {
      verify::mc_check(seen[i] == i + 1, "span values must stay ordered");
    }
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.pruned, 0u);
}

TEST(ModelCheckRing, RandomWalksOverDeeperTraffic) {
  // Seeded random smoke well past the exhaustive bounds: more values than
  // capacity, so the cached-index refresh paths and wrap handling run many
  // times per execution.
  verify::Options opts;
  opts.exhaustive = false;
  opts.max_executions = 512;
  opts.seed = 0xd15c0;
  std::vector<std::uint64_t> seen;
  verify::Result r =
      verify::explore(opts, [&] { ring_driver(4, 12, &seen); });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_EQ(r.executions, 512u);
}

// ---------------------------------------------------------------------------
// The planted bug.
// ---------------------------------------------------------------------------

namespace {

/// Minimal SPSC ring following packet_ring.hpp's protocol, with the one
/// deliberate defect selected by `kBuggy`: the consumer's load of the
/// producer's index is relaxed instead of acquire, so observing the new
/// index no longer makes the slot bytes visible -- the exact bug class a
/// wrong memory_order edit to SpscRing::pop_batch would introduce.
template <bool kBuggy>
class FixtureRing {
 public:
  bool try_push(std::uint64_t value) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= kCap) return false;
    slots_[tail & (kCap - 1)] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(std::uint64_t& out) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(
        kBuggy ? std::memory_order_relaxed : std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[head & (kCap - 1)];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  static constexpr std::size_t kCap = 2;
  util::atomic<std::size_t> head_{0};
  util::atomic<std::size_t> tail_{0};
  std::array<util::shared<std::uint64_t>, kCap> slots_{};
};

template <bool kBuggy>
verify::Result explore_fixture_ring() {
  verify::Options opts;
  opts.exhaustive = true;
  opts.max_executions = 500000;
  return verify::explore(opts, [] {
    FixtureRing<kBuggy> ring;
    std::uint64_t got = 0;
    verify::run_threads({
        [&] {
          while (!ring.try_push(41)) verify::spin_yield();
          while (!ring.try_push(42)) verify::spin_yield();
        },
        [&] {
          std::uint64_t v = 0;
          for (int n = 0; n < 2;) {
            if (!ring.try_pop(v)) {
              verify::spin_yield();
              continue;
            }
            got = v;
            ++n;
          }
        },
    });
    verify::mc_check(got == 42, "last value must be the last push");
  });
}

}  // namespace

TEST(ModelCheckRing, FixtureRingPristinePassesExhaustively) {
  verify::Result r = explore_fixture_ring<false>();
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelCheckRing, FixtureRingRelaxedDowngradeIsFlagged) {
  verify::Result r = explore_fixture_ring<true>();
  ASSERT_TRUE(r.failed)
      << "a relaxed consumer-side index load must be reported as a race";
  // The report must be actionable: verdict, the racing access, and the
  // reads-from chain that let the consumer observe the index early.
  EXPECT_NE(r.report.find("DATA RACE"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("load.relaxed"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("reads-from"), std::string::npos) << r.report;
  // Print it once so humans can eyeball what a failure looks like.
  std::fputs(r.report.c_str(), stdout);
}
