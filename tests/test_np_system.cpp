// Tests for the IXP2850 whole-system model (Table V substrate).
//
// These assert the *shape* the paper reports -- throughput calibration, ME
// scaling, burst-aggregation gains, error behaviour -- on reduced workloads
// so the suite stays fast; the full-size sweep lives in
// bench_table5_np_throughput.
#include "sim/np_system.hpp"

#include <gtest/gtest.h>

namespace disco::sim {
namespace {

NpConfig small_config() {
  NpConfig c;
  c.flow_count = 256;
  c.mean_packets = 100.0;
  c.seed = 7;
  return c;
}

TEST(NpSystem, RejectsBadMeCount) {
  auto c = small_config();
  c.num_mes = 0;
  EXPECT_THROW((void)run_np_simulation(c), std::invalid_argument);
}

TEST(NpSystem, RejectsBadChannelCount) {
  auto c = small_config();
  c.sram_channels = 0;
  EXPECT_THROW((void)run_np_simulation(c), std::invalid_argument);
  c.sram_channels = 99;
  EXPECT_THROW((void)run_np_simulation(c), std::invalid_argument);
}

TEST(NpSystem, ExtraChannelsNeverHurtAndRelieveSaturation) {
  // ME-bound regime: more channels change nothing.  Channel-bound regime
  // (many MEs, minimum-size packets): a second channel lifts throughput.
  auto c = small_config();
  c.len_lo = 64;
  c.len_hi = 64;
  c.num_mes = 32;
  const NpResult one = run_np_simulation(c);
  c.sram_channels = 2;
  const NpResult two = run_np_simulation(c);
  EXPECT_GT(two.throughput_gbps, one.throughput_gbps * 1.2);

  c.num_mes = 1;
  c.sram_channels = 1;
  const NpResult small_one = run_np_simulation(c);
  c.sram_channels = 4;
  const NpResult small_four = run_np_simulation(c);
  EXPECT_NEAR(small_four.throughput_gbps, small_one.throughput_gbps,
              small_one.throughput_gbps * 0.02);
}

TEST(NpSystem, SingleMeNearCalibrationTarget) {
  auto c = small_config();
  const NpResult r = run_np_simulation(c);
  EXPECT_GT(r.packets, 0u);
  // Calibrated to the paper's 11.1 Gbps (avg 544 B packets, burst 1).
  EXPECT_NEAR(r.throughput_gbps, 11.1, 1.5);
  // Counting error is small and positive.
  EXPECT_GT(r.avg_relative_error, 0.0);
  EXPECT_LT(r.avg_relative_error, 0.1);
}

TEST(NpSystem, ThroughputScalesNearlyLinearlyInMes) {
  auto c = small_config();
  const NpResult one = run_np_simulation(c);
  c.num_mes = 2;
  const NpResult two = run_np_simulation(c);
  c.num_mes = 4;
  const NpResult four = run_np_simulation(c);
  EXPECT_GT(two.throughput_gbps, one.throughput_gbps * 1.7);
  EXPECT_LE(two.throughput_gbps, one.throughput_gbps * 2.1);
  EXPECT_GT(four.throughput_gbps, one.throughput_gbps * 3.0);
  EXPECT_LE(four.throughput_gbps, one.throughput_gbps * 4.2);
}

TEST(NpSystem, BurstAggregationBoostsThroughput) {
  auto c = small_config();
  c.burst_lo = 1;
  c.burst_hi = 8;
  const NpResult plain = run_np_simulation(c);
  c.burst_aggregation = true;
  const NpResult aggregated = run_np_simulation(c);
  // Paper: ~2.5x gain from updating SRAM once per burst.
  EXPECT_GT(aggregated.throughput_gbps, plain.throughput_gbps * 1.8);
  // Fewer SRAM round trips is the mechanism.
  EXPECT_LT(aggregated.sram_updates, plain.sram_updates);
}

TEST(NpSystem, BurstAggregationReducesError) {
  // Larger effective theta => lower coefficient of variation (Theorem 2);
  // the paper reports the error halving.  Use a bigger population to make
  // the effect stable.
  NpConfig c = small_config();
  c.flow_count = 1024;
  c.mean_packets = 200.0;
  c.burst_lo = 1;
  c.burst_hi = 8;
  const NpResult plain = run_np_simulation(c);
  c.burst_aggregation = true;
  const NpResult aggregated = run_np_simulation(c);
  EXPECT_LT(aggregated.avg_relative_error, plain.avg_relative_error);
}

TEST(NpSystem, WorstCaseSmallPacketsNeedManyMes) {
  // Paper: with all-64 B packets and no bursts, 8 MEs are needed for 10 Gbps.
  auto c = small_config();
  c.len_lo = 64;
  c.len_hi = 64;
  const NpResult one = run_np_simulation(c);
  EXPECT_LT(one.throughput_gbps, 2.0);
  c.num_mes = 8;
  const NpResult eight = run_np_simulation(c);
  EXPECT_GT(eight.throughput_gbps, 8.0);
}

TEST(NpSystem, UtilizationAndAccountingConsistent) {
  auto c = small_config();
  const NpResult r = run_np_simulation(c);
  EXPECT_GT(r.sram_utilization, 0.0);
  EXPECT_LE(r.sram_utilization, 1.0);
  EXPECT_GT(r.ring_utilization, 0.0);
  EXPECT_LE(r.ring_utilization, 1.0);
  EXPECT_EQ(r.sram_updates, r.packets);  // one update per packet sans bursts
  // The shared table matches the paper's 96 Kb on-chip budget (plus side
  // shift bytes, see LogExpTable::storage_bits).
  EXPECT_GE(r.table_storage_bits, 96u * 1024u);
  EXPECT_LE(r.table_storage_bits, 2u * 96u * 1024u);
}

TEST(NpSystem, TraceDrivenRunMatchesAccounting) {
  // Replaying an explicit packet stream must account every byte and packet
  // and produce sane throughput/error figures.
  std::vector<trace::PacketRecord> packets;
  std::uint64_t bytes = 0;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const std::uint32_t len = 64 + (i * 131) % 960;
    packets.push_back({i % 64, len, static_cast<std::uint64_t>(i)});
    bytes += len;
  }
  auto c = small_config();
  const NpResult r = run_np_simulation_on_trace(c, packets, 64);
  EXPECT_EQ(r.packets, packets.size());
  EXPECT_EQ(r.bytes, bytes);
  EXPECT_GT(r.throughput_gbps, 5.0);
  EXPECT_LT(r.avg_relative_error, 0.1);
}

TEST(NpSystem, TraceDrivenBurstAggregationUsesRuns) {
  // Back-to-back same-flow packets in the provided trace must aggregate.
  std::vector<trace::PacketRecord> packets;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    packets.push_back({(i / 8) % 32, 512, static_cast<std::uint64_t>(i)});
  }
  auto c = small_config();
  c.burst_aggregation = true;
  const NpResult r = run_np_simulation_on_trace(c, packets, 32);
  EXPECT_NEAR(static_cast<double>(r.sram_updates),
              static_cast<double>(packets.size()) / 8.0,
              static_cast<double>(packets.size()) * 0.02);
}

TEST(NpSystem, DeterministicUnderSeed) {
  const auto c = small_config();
  const NpResult a = run_np_simulation(c);
  const NpResult b = run_np_simulation(c);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_DOUBLE_EQ(a.avg_relative_error, b.avg_relative_error);
}

}  // namespace
}  // namespace disco::sim
