// Unit tests for the FlowMonitor facade.
#include "flowtable/monitor.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"
#include "util/math.hpp"

namespace disco::flowtable {
namespace {

FiveTuple tuple(std::uint32_t i) {
  return FiveTuple{0x0a000000u + i, 0xc0a80001u,
                   static_cast<std::uint16_t>(1024 + i), 443, 17};
}

FlowMonitor::Config small_config() {
  FlowMonitor::Config c;
  c.max_flows = 512;
  c.counter_bits = 12;
  c.max_flow_bytes = 1 << 24;
  c.max_flow_packets = 1 << 16;
  c.seed = 99;
  return c;
}

TEST(FlowMonitor, QueryUnknownFlowIsEmpty) {
  FlowMonitor monitor(small_config());
  EXPECT_FALSE(monitor.query(tuple(0)).has_value());
}

TEST(FlowMonitor, TracksBytesAndPackets) {
  FlowMonitor monitor(small_config());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(monitor.ingest(tuple(1), 500));
  const auto est = monitor.query(tuple(1));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->bytes, 500.0 * 1000, 500.0 * 1000 * 0.25);
  EXPECT_NEAR(est->packets, 1000.0, 1000.0 * 0.25);
  EXPECT_EQ(monitor.packets_seen(), 1000u);
}

TEST(FlowMonitor, RejectsWhenTableFull) {
  auto config = small_config();
  config.max_flows = 8;
  FlowMonitor monitor(config);
  for (std::uint32_t i = 0; i < 8; ++i) ASSERT_TRUE(monitor.ingest(tuple(i), 100));
  EXPECT_FALSE(monitor.ingest(tuple(100), 100));
  EXPECT_EQ(monitor.table().rejected_flows(), 1u);
  EXPECT_EQ(monitor.packets_seen(), 8u);  // rejected packet not counted
}

TEST(FlowMonitor, TopKOrderingAndSize) {
  FlowMonitor monitor(small_config());
  // Flow volumes 1x, 5x, 25x.
  for (int i = 0; i < 20; ++i) (void)monitor.ingest(tuple(0), 200);
  for (int i = 0; i < 100; ++i) (void)monitor.ingest(tuple(1), 200);
  for (int i = 0; i < 500; ++i) (void)monitor.ingest(tuple(2), 200);
  const auto top = monitor.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].flow, tuple(2));
  EXPECT_EQ(top[1].flow, tuple(1));
  EXPECT_GE(top[0].bytes, top[1].bytes);
  // k larger than population clips.
  EXPECT_EQ(monitor.top_k(50).size(), 3u);
}

TEST(FlowMonitor, TotalsApproximateTruth) {
  FlowMonitor monitor(small_config());
  util::Rng rng(3);
  const auto flows = trace::scenario1().make_flows(100, rng);
  std::uint64_t truth_bytes = 0;
  std::uint64_t truth_packets = 0;
  for (const auto& f : flows) {
    for (auto l : f.lengths) (void)monitor.ingest(tuple(f.id), l);
    truth_bytes += f.bytes();
    truth_packets += f.packets();
  }
  const auto totals = monitor.totals();
  EXPECT_EQ(totals.flows, 100u);
  EXPECT_NEAR(totals.bytes, static_cast<double>(truth_bytes),
              static_cast<double>(truth_bytes) * 0.1);
  EXPECT_NEAR(totals.packets, static_cast<double>(truth_packets),
              static_cast<double>(truth_packets) * 0.1);
}

TEST(FlowMonitor, MemoryReportScalesWithBudget) {
  auto config = small_config();
  const FlowMonitor monitor(config);
  const auto memory = monitor.memory();
  EXPECT_EQ(memory.volume_counter_bits,
            config.max_flows * static_cast<std::size_t>(config.counter_bits));
  EXPECT_EQ(memory.size_counter_bits, memory.volume_counter_bits);
  EXPECT_GT(memory.flow_table_bits, 0u);
  EXPECT_EQ(memory.total(), memory.volume_counter_bits +
                                memory.size_counter_bits + memory.flow_table_bits);
}

TEST(FlowMonitor, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    auto config = small_config();
    config.seed = seed;
    FlowMonitor monitor(config);
    for (int i = 0; i < 5000; ++i) {
      (void)monitor.ingest(tuple(static_cast<std::uint32_t>(i % 37)),
                           64 + static_cast<std::uint32_t>(i % 1400));
    }
    return monitor.totals().bytes;
  };
  EXPECT_DOUBLE_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(FlowMonitor, IngestBatchMatchesSequentialBursts) {
  // The batch API's contract is exact equivalence: same accepted count,
  // same counters, same RNG stream position as per-element ingest_burst.
  std::vector<FlowBurst> bursts;
  util::Rng source(7);
  for (int i = 0; i < 3000; ++i) {
    bursts.push_back(FlowBurst{tuple(static_cast<std::uint32_t>(i % 600)),
                               source.uniform_u64(64, 90'000),
                               source.uniform_u64(1, 60),
                               static_cast<std::uint64_t>(i) * 1000});
  }

  FlowMonitor batched(small_config());
  FlowMonitor sequential(small_config());
  std::size_t accepted_batched = batched.ingest_batch(bursts);
  std::size_t accepted_seq = 0;
  for (const FlowBurst& b : bursts) {
    accepted_seq += sequential.ingest_burst(b.flow, b.bytes, b.packets,
                                            b.last_ns)
                        ? 1
                        : 0;
  }
  // max_flows = 512 < 600 distinct flows: both paths must reject the same
  // tail bursts.
  EXPECT_EQ(accepted_batched, accepted_seq);
  EXPECT_LT(accepted_batched, bursts.size());
  EXPECT_EQ(batched.packets_seen(), sequential.packets_seen());
  for (std::uint32_t i = 0; i < 600; ++i) {
    const auto eb = batched.query(tuple(i));
    const auto es = sequential.query(tuple(i));
    ASSERT_EQ(eb.has_value(), es.has_value()) << "flow " << i;
    if (eb) {
      ASSERT_EQ(eb->bytes, es->bytes) << "flow " << i;
      ASSERT_EQ(eb->packets, es->packets) << "flow " << i;
    }
  }
  // RNG streams still in lockstep: one more identical ingest on each side
  // must stay bit-identical.
  ASSERT_TRUE(batched.ingest(tuple(3), 999));
  ASSERT_TRUE(sequential.ingest(tuple(3), 999));
  EXPECT_EQ(batched.query(tuple(3))->bytes, sequential.query(tuple(3))->bytes);
}

TEST(FlowMonitor, DecisionTableDoesNotChangeEstimates) {
  // The config knob toggles only the fast path; every estimate must be
  // bit-identical either way (the DecisionTable parity guarantee, observed
  // end to end through the monitor).
  auto config_on = small_config();
  auto config_off = small_config();
  config_off.decision_table = false;
  FlowMonitor with_table(config_on);
  FlowMonitor without(config_off);
  for (int i = 0; i < 20'000; ++i) {
    const auto t = tuple(static_cast<std::uint32_t>(i % 101));
    const auto len = 64 + static_cast<std::uint32_t>((i * 37) % 9000);
    ASSERT_TRUE(with_table.ingest(t, len));
    ASSERT_TRUE(without.ingest(t, len));
  }
  for (std::uint32_t i = 0; i < 101; ++i) {
    const auto a = with_table.query(tuple(i));
    const auto b = without.query(tuple(i));
    ASSERT_TRUE(a.has_value() && b.has_value());
    ASSERT_EQ(a->bytes, b->bytes) << "flow " << i;
    ASSERT_EQ(a->packets, b->packets) << "flow " << i;
  }
  EXPECT_EQ(with_table.totals().bytes, without.totals().bytes);
}

}  // namespace
}  // namespace disco::flowtable
