#include "collect/transport.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace disco::collect {

// --- SpoolSource ------------------------------------------------------------

SpoolSource::SpoolSource(std::vector<std::string> paths) {
  files_.reserve(paths.size());
  for (auto& path : paths) files_.push_back(File{std::move(path), 0});
}

SpoolSource::PollStats SpoolSource::poll(Collector& collector) {
  PollStats stats;
  struct Open {
    File* file = nullptr;
    std::unique_ptr<std::ifstream> in;
    std::optional<flowtable::ReportReader> reader;
    bool done = false;
  };
  std::vector<Open> open;
  open.reserve(files_.size());
  for (File& file : files_) {
    auto in = std::make_unique<std::ifstream>(file.path, std::ios::binary);
    if (*in) in->seekg(static_cast<std::streamoff>(file.offset));
    if (!*in) {
      // Not created yet (monitor still starting) or unreadable; retry on
      // the next poll.
      ++stats.unreadable;
      continue;
    }
    Open o;
    o.file = &file;
    o.in = std::move(in);
    o.reader.emplace(*o.in);
    open.push_back(std::move(o));
  }
  // Round-robin, one report per file per round.  Monitors append in epoch
  // order, so this interleaves the fleet's epochs instead of letting the
  // first file race the collector's epoch watermark ahead and turn every
  // other site's backlog into "late" reports.
  bool progress = true;
  while (progress) {
    progress = false;
    for (Open& o : open) {
      if (o.done) continue;
      std::optional<flowtable::ReportReader::Item> item;
      try {
        item = o.reader->next();
      } catch (const std::exception&) {
        // Torn tail: freeze the offset at the last complete report.  If
        // the monitor was mid-flush the bytes complete later and the next
        // poll resumes; if the file is permanently torn, every poll counts
        // it (the caller decides when to give up).
        ++stats.truncated_tails;
        o.done = true;
        continue;
      }
      if (!item) {  // clean end of spool (for now)
        o.done = true;
        continue;
      }
      collector.ingest(*item);
      ++stats.reports;
      ++delivered_;
      o.file->offset = static_cast<std::uint64_t>(o.in->tellg());
      progress = true;
    }
  }
  return stats;
}

// --- socket plumbing --------------------------------------------------------

namespace {

/// std::streambuf over a connected socket fd, read side.  Unbuffered
/// beyond one recv-sized block: report streams are parsed incrementally
/// and the reader never needs to seek.
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) {}

 private:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t got;
    do {
      got = ::recv(fd_, buffer_, sizeof(buffer_), 0);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + got);
    return traits_type::to_int_type(*gptr());
  }

  int fd_;
  char buffer_[4096];
};

/// Write side: buffers one block, flushes on overflow/sync.  A failed
/// flush poisons the stream (badbit via returning eof), which
/// write_report turns into its std::runtime_error.
class FdOutBuf final : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }

 private:
  bool flush_buffer() {
    const char* data = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      ssize_t sent;
      do {
        sent = ::send(fd_, data, left, 0);
      } while (sent < 0 && errno == EINTR);
      if (sent <= 0) return false;
      data += sent;
      left -= static_cast<std::size_t>(sent);
    }
    setp(buffer_, buffer_ + sizeof(buffer_));
    return true;
  }

  int_type overflow(int_type ch) override {
    if (!flush_buffer()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() ? 0 : -1; }

  int fd_;
  char buffer_[4096];
};

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("collect: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    throw std::runtime_error("collect: bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    close_fd(fd);
    throw std::runtime_error("collect: connect to " + host + " failed: " +
                             std::strerror(errno));
  }
  return fd;
}

}  // namespace

// --- ReportClient -----------------------------------------------------------

struct ReportClient::Impl {
  explicit Impl(int fd) : fd_(fd), buf_(fd), out_(&buf_) {}
  ~Impl() { close_fd(fd_); }
  int fd_;
  FdOutBuf buf_;
  std::ostream out_;
};

ReportClient::ReportClient(const std::string& host, std::uint16_t port)
    : impl_(std::make_unique<Impl>(connect_tcp(host, port))) {}

ReportClient::~ReportClient() = default;
ReportClient::ReportClient(ReportClient&&) noexcept = default;
ReportClient& ReportClient::operator=(ReportClient&&) noexcept = default;

void ReportClient::send(const EpochReport& report, std::uint32_t site_id,
                        std::uint32_t version) {
  flowtable::write_report(impl_->out_, report, site_id, version);
}

// --- ReportServer -----------------------------------------------------------

struct ReportServer::Impl {
  Impl(Collector& collector, std::uint16_t port) : collector_(collector) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("collect: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      const std::string why = std::strerror(errno);
      close_fd(listen_fd_);
      throw std::runtime_error("collect: cannot listen: " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      close_fd(listen_fd_);
      throw std::runtime_error("collect: getsockname failed");
    }
    port_ = ntohs(bound.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Impl() { stop(); }

  void accept_loop() {
    for (;;) {
      int fd;
      do {
        fd = ::accept(listen_fd_, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) return;  // listener closed by stop()
      {
        util::MutexLock lock(state_mutex_);
        if (stopping_) {
          close_fd(fd);
          return;
        }
        conn_fds_.push_back(fd);
        ++accepted_;
      }
      // The acceptor owns the handler threads; stop() joins the acceptor
      // first, so no handler is ever spawned after the join sweep starts.
      handlers_.emplace_back([this, fd] { serve(fd); });
    }
  }

  void serve(int fd) {
    FdInBuf buf(fd);
    std::istream in(&buf);
    flowtable::ReportReader reader(in);
    try {
      while (auto item = reader.next()) {
        util::MutexLock lock(ingest_mutex_);
        collector_.ingest(*item);
      }
    } catch (const std::exception&) {
      // Torn stream (client died mid-report / stop() cut the socket):
      // everything before the tear was ingested; the tear is counted.
      util::MutexLock lock(state_mutex_);
      ++truncated_;
    }
    {
      util::MutexLock lock(state_mutex_);
      for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
        if (*it == fd) {
          conn_fds_.erase(it);
          break;
        }
      }
    }
    close_fd(fd);
  }

  void stop() {
    {
      util::MutexLock lock(state_mutex_);
      if (stopping_) return;
      stopping_ = true;
      // Shut down (not close) live connections: their handler threads own
      // the fds and will close them on the EOF this produces.
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    ::shutdown(listen_fd_, SHUT_RDWR);
    close_fd(listen_fd_);
    listen_fd_ = -1;
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& handler : handlers_) {
      if (handler.joinable()) handler.join();
    }
  }

  Collector& collector_;  // accessed only under ingest_mutex_ until stop()
  util::Mutex ingest_mutex_;
  util::Mutex state_mutex_;
  bool stopping_ DISCO_GUARDED_BY(state_mutex_) = false;
  std::vector<int> conn_fds_ DISCO_GUARDED_BY(state_mutex_);
  std::uint64_t accepted_ DISCO_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t truncated_ DISCO_GUARDED_BY(state_mutex_) = 0;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;  // touched by acceptor, joined by stop
};

ReportServer::ReportServer(Collector& collector, std::uint16_t port)
    : impl_(std::make_unique<Impl>(collector, port)) {}

ReportServer::~ReportServer() = default;

std::uint16_t ReportServer::port() const noexcept { return impl_->port_; }

void ReportServer::stop() { impl_->stop(); }

util::Mutex& ReportServer::ingest_mutex() noexcept {
  return impl_->ingest_mutex_;
}

std::uint64_t ReportServer::connections_accepted() const noexcept {
  util::MutexLock lock(impl_->state_mutex_);
  return impl_->accepted_;
}

std::uint64_t ReportServer::truncated_streams() const noexcept {
  util::MutexLock lock(impl_->state_mutex_);
  return impl_->truncated_;
}

}  // namespace disco::collect
