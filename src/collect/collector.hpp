// The aggregation tier: one collector, N monitor processes, one answer.
//
// Each monitoring site (a FlowMonitor / ShardedFlowMonitor / PipelineMonitor
// in its own process) rotates epochs and ships DRPT reports
// (flowtable/report_io.hpp) over a spool file or a socket
// (collect/transport.hpp).  The Collector folds them into one global view:
//
//   * unbiased cross-site merge at the estimate level
//     (core/estimate_merge.hpp) -- sites may run different counter widths,
//     drift apart under RescaleB, or use additive-error estimators; each
//     contribution is weighted into the per-flow variance bound with ITS
//     OWN error metadata, so global top-k answers carry honest Theorem 2
//     aggregate confidence intervals;
//   * per-site liveness / lag / epoch-gap tracking: a site whose highest
//     epoch trails the fleet by more than `liveness_window` epochs is
//     marked lagging and stops gating epoch finalisation;
//   * stream hygiene: duplicate (site, epoch) reports are rejected and
//     counted, reordered reports merge if their epoch is still open and
//     fold as `Late` after it finalised -- in every case a report's traffic
//     is counted at most once;
//   * PressureStats reconciliation: each site's cumulative degradation
//     counters are tracked at their latest epoch and summed fleet-wide.
//
// The Collector exposes the SAME epoch-subscription surface as a local
// monitor (subscribe(EpochSubscriber)), so the analysis-module layer
// attaches unchanged: ModuleHost::subscribe_to(collector) delivers merged
// global epoch reports to every module (docs/collector.md, docs/modules.md).
//
// Threading: externally synchronised, like FlowMonitor -- drive it from one
// thread, or wrap calls in a mutex (collect::ReportServer does exactly
// that).  No RNG anywhere: estimate-level merging is deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <map>
#include <vector>

#include "core/estimate_merge.hpp"
#include "flowtable/monitor.hpp"
#include "flowtable/pressure.hpp"
#include "flowtable/report_io.hpp"
#include "telemetry/metrics.hpp"

namespace disco::collect {

using flowtable::FiveTuple;
using EpochReport = flowtable::FlowMonitor::EpochReport;
using EpochSubscriber = flowtable::FlowMonitor::EpochSubscriber;

struct CollectorConfig {
  /// Two-sided confidence level of every interval the collector serves.
  double confidence = 0.95;
  /// A site whose highest epoch trails the collector highwater by MORE than
  /// this many epochs is lagging: it stops gating epoch finalisation (and
  /// is flagged in sites()) until it catches back up.
  std::uint64_t liveness_window = 2;
  /// Effective base assumed for legacy (v1/v2) reports, whose wire format
  /// predates error metadata.  0 (default) = none: their estimates still
  /// merge unbiasedly but mark the affected flows' intervals invalid.
  double fallback_b = 0.0;
  /// Cap on distinct flow keys tracked for top-k (the global totals stay
  /// exact past the cap; overflowing keys are counted in flows_dropped).
  std::size_t max_tracked_flows = std::size_t{1} << 20;
  /// Prefix for the collector's metric names (docs/telemetry.md).
  std::string telemetry_prefix = "collector";
};

/// Point-in-time view of one site's stream state (sites() snapshot).
struct SiteStatus {
  std::uint32_t site_id = 0;
  std::uint64_t reports = 0;         ///< accepted (incl. late) reports
  std::uint64_t duplicates = 0;      ///< rejected duplicate (site, epoch)
  std::uint64_t late = 0;            ///< accepted after their epoch finalised
  std::uint64_t reordered = 0;       ///< arrived below the site's highwater
  std::uint64_t legacy = 0;          ///< v1/v2 reports (no error metadata)
  std::uint64_t epoch_gaps = 0;      ///< epochs finalised without this site
  std::uint32_t last_version = 0;    ///< wire version of the latest report
  bool seen = false;                 ///< any report accepted yet
  std::uint64_t highwater_epoch = 0; ///< highest epoch seen (if seen)
  std::uint64_t lag_epochs = 0;      ///< collector highwater - site highwater
  bool lagging = false;              ///< lag_epochs > liveness_window
  double volume_b = 0.0;             ///< max effective bases / error units
  double size_b = 0.0;               ///  observed from this site
  double volume_error_unit = 0.0;
  double size_error_unit = 0.0;
  flowtable::PressureStats pressure{};  ///< cumulative, at latest epoch
};

/// One row of the global top-k answer.
struct GlobalEstimate {
  FiveTuple flow;
  double bytes = 0.0;
  double packets = 0.0;
  double bytes_low = 0.0;   ///< Theorem 2 aggregate interval at
  double bytes_high = 0.0;  ///  CollectorConfig::confidence
  bool interval_valid = true;
  std::uint32_t sites = 0;  ///< distinct sites that contributed
};

class Collector {
 public:
  explicit Collector(CollectorConfig config = {});

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Pre-registers a site so epoch finalisation waits for it (liveness
  /// window permitting) before its first report arrives.  Sites also
  /// register implicitly on first ingest.
  void expect_site(std::uint32_t site_id);

  enum class IngestResult {
    Accepted,   ///< merged into the global state (epoch still open)
    Duplicate,  ///< (site, epoch) already ingested: rejected, counted
    Late,       ///< epoch already finalised: merged into cumulative state,
                ///  counted, but not re-emitted to subscribers
  };

  /// Folds one site report into the global state.  `version` is the wire
  /// version it arrived as (reports constructed in-process pass
  /// flowtable::kReportVersion).  Never throws on stream-hygiene issues --
  /// those are the return value -- only on programmer error.
  IngestResult ingest(std::uint32_t site_id, std::uint32_t version,
                      const EpochReport& report);
  /// Convenience for transport code: ingest a ReportReader item.
  IngestResult ingest(const flowtable::ReportReader::Item& item) {
    return ingest(item.site_id, item.version, item.report);
  }

  /// Registers a subscriber for merged global epoch reports, delivered in
  /// epoch order as each epoch finalises.  An epoch finalises once the
  /// fleet has visibly moved past it (it is below the collector highwater
  /// -- the newest epoch always stays open, since a site the collector has
  /// never heard from may still contribute) and every known, non-lagging
  /// site has delivered or skipped it; finalize_all() closes the rest at
  /// end of collection.  Same contract as the monitors' subscribe --
  /// ModuleHost::subscribe_to(collector) works unchanged.
  void subscribe(EpochSubscriber subscriber);

  /// Finalises every still-open epoch in order (end of collection run /
  /// final drain), emitting merged reports for them.  Idempotent.
  void finalize_all();

  /// The k globally-largest flows by merged byte estimate, descending,
  /// with aggregate confidence intervals.
  [[nodiscard]] std::vector<GlobalEstimate> top_k(std::size_t k) const;

  /// Global totals with an aggregate interval over ALL ingested traffic
  /// (exact even past the max_tracked_flows cap).
  struct GlobalTotals {
    double bytes = 0.0;
    double packets = 0.0;
    double bytes_low = 0.0;
    double bytes_high = 0.0;
    bool interval_valid = true;
    std::uint64_t flows = 0;  ///< distinct tracked keys
  };
  [[nodiscard]] GlobalTotals totals() const;

  /// Per-site stream state, ordered by site id.
  [[nodiscard]] std::vector<SiteStatus> sites() const;

  /// Fleet-wide degradation: the sum of every site's latest cumulative
  /// PressureStats.
  [[nodiscard]] flowtable::PressureStats pressure() const;

  [[nodiscard]] std::uint64_t reports_ingested() const noexcept {
    return reports_ingested_;
  }
  [[nodiscard]] std::uint64_t epochs_finalized() const noexcept {
    return epochs_finalized_;
  }
  /// Highest epoch seen across all sites (0 before any report).
  [[nodiscard]] std::uint64_t highwater_epoch() const noexcept {
    return highwater_;
  }
  [[nodiscard]] std::uint64_t flows_dropped() const noexcept {
    return flows_dropped_;
  }
  [[nodiscard]] std::size_t tracked_flows() const noexcept {
    return keys_.size();
  }
  /// Max effective volume base observed fleet-wide (conservative interval
  /// base for consumers that want the homogeneous Theorem 2 formula).
  [[nodiscard]] double volume_b() const noexcept { return max_volume_b_; }

  [[nodiscard]] const CollectorConfig& config() const noexcept {
    return config_;
  }

 private:
  struct SiteState {
    SiteStatus status;                          // counters + metadata
    std::unordered_set<std::uint64_t> epochs;   // ingested epochs (dedup)
    std::uint32_t index = 0;                    // registration order
    std::uint64_t pressure_epoch = 0;           // epoch of status.pressure
    telemetry::Counter* reports_metric = nullptr;
    telemetry::Counter* duplicates_metric = nullptr;
    telemetry::Counter* late_metric = nullptr;
  };

  struct KeyState {
    core::MixedEstimateAccumulator bytes;
    core::MixedEstimateAccumulator packets;
    std::uint64_t site_mask = 0;  // bit per site index (first 64 sites)
  };

  SiteState& site_state(std::uint32_t site_id);
  void fold_report(SiteState& site, const EpochReport& report);
  void try_finalize();
  void finalize_epoch(std::uint64_t epoch);
  [[nodiscard]] bool site_lagging(const SiteState& site) const;

  CollectorConfig config_;
  std::map<std::uint32_t, SiteState> sites_;
  std::unordered_map<FiveTuple, KeyState> keys_;
  core::MixedEstimateAccumulator total_bytes_;
  core::MixedEstimateAccumulator total_packets_;
  // Open epochs: per-epoch per-site reports awaiting finalisation.
  std::map<std::uint64_t, std::map<std::uint32_t, EpochReport>> pending_;
  std::vector<EpochSubscriber> subscribers_;
  std::uint64_t next_epoch_to_finalize_ = 0;
  bool any_finalized_ = false;
  std::uint64_t highwater_ = 0;
  bool any_report_ = false;
  std::uint64_t reports_ingested_ = 0;
  std::uint64_t epochs_finalized_ = 0;
  std::uint64_t flows_dropped_ = 0;
  double max_volume_b_ = 0.0;
  telemetry::Counter* epochs_metric_ = nullptr;
  telemetry::Counter* reports_metric_ = nullptr;
  telemetry::Counter* dropped_metric_ = nullptr;
  telemetry::Gauge* tracked_metric_ = nullptr;
  telemetry::Gauge* lagging_metric_ = nullptr;
};

}  // namespace disco::collect
