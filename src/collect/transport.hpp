// Report transports: how DRPT epoch reports travel from monitor processes
// to the collector.
//
//   * SpoolSource -- each monitor appends reports to its own spool file;
//     the collector polls the files incrementally.  A poll picks up where
//     the previous one stopped (byte offset of the last complete report),
//     so a report the monitor is still flushing is retried, not lost, and
//     a torn tail (crash / short write) is detected and counted instead of
//     being silently dropped.
//   * ReportServer / ReportClient -- a TCP listener that accepts monitor
//     connections and feeds every received report into a Collector, with
//     its own mutex making the externally-synchronised Collector safe
//     under concurrent connections.  Clients stream write_report bytes;
//     the framing is the DRPT format itself.
//
// Both transports speak every wire version the repo can read (v1..v3);
// version skew is the collector's problem to reconcile, not the
// transport's (docs/collector.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collect/collector.hpp"
#include "flowtable/report_io.hpp"
#include "util/thread_annotations.hpp"

namespace disco::collect {

/// Incremental reader over a set of append-only spool files (one per
/// monitor process).  Not thread-safe; poll from the collector thread.
class SpoolSource {
 public:
  explicit SpoolSource(std::vector<std::string> paths);

  struct PollStats {
    std::uint64_t reports = 0;          ///< reports delivered this poll
    std::uint64_t truncated_tails = 0;  ///< files ending mid-report
    std::uint64_t unreadable = 0;       ///< files that could not be opened
  };

  /// Reads every complete report appended since the last poll, in file
  /// order, feeding each into `collector`.  A file's torn tail freezes that
  /// file's offset at the last complete report: if the missing bytes arrive
  /// later (the monitor was mid-flush), the next poll resumes cleanly; if
  /// they never do, every poll reports the truncation.  Never throws on
  /// stream damage -- damage is counted, not fatal.
  PollStats poll(Collector& collector);

  /// Total complete reports delivered across all polls.
  [[nodiscard]] std::uint64_t reports_delivered() const noexcept {
    return delivered_;
  }

 private:
  struct File {
    std::string path;
    std::uint64_t offset = 0;  // byte offset of the next unread report
  };
  std::vector<File> files_;
  std::uint64_t delivered_ = 0;
};

/// TCP client side: connects to a collector's ReportServer and streams
/// reports.  Throws std::runtime_error when the network stack refuses
/// (socket/connect/write failure).  Movable, not copyable.
class ReportClient {
 public:
  ReportClient(const std::string& host, std::uint16_t port);
  ~ReportClient();
  ReportClient(ReportClient&&) noexcept;
  ReportClient& operator=(ReportClient&&) noexcept;
  ReportClient(const ReportClient&) = delete;
  ReportClient& operator=(const ReportClient&) = delete;

  /// Writes one report (write_report framing) and flushes it to the socket.
  void send(const EpochReport& report, std::uint32_t site_id,
            std::uint32_t version = flowtable::kReportVersion);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// TCP server side: accepts monitor connections on a loopback/INADDR_ANY
/// port and ingests every received report into the wrapped Collector under
/// an internal mutex.  Pass port 0 for an ephemeral port (port() reports
/// the bound one).  The Collector must outlive the server; other threads
/// may keep using the Collector through with_collector().  Throws
/// std::runtime_error when the listener cannot be set up (sandboxes that
/// forbid bind -- callers should treat that as "transport unavailable").
class ReportServer {
 public:
  explicit ReportServer(Collector& collector, std::uint16_t port = 0);
  ~ReportServer();
  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stops accepting, closes every connection, joins the service threads.
  /// Reports already on the wire are drained first.  Idempotent.
  void stop();

  /// The mutex serialising every ingest from connection threads.  Hold it
  /// (util::MutexLock) around any direct Collector access made while
  /// connections are live; after stop() returns no locking is needed.
  [[nodiscard]] util::Mutex& ingest_mutex() noexcept;

  [[nodiscard]] std::uint64_t connections_accepted() const noexcept;
  /// Connections that ended mid-report (torn stream): their complete
  /// reports were ingested, the torn tail was discarded and counted.
  [[nodiscard]] std::uint64_t truncated_streams() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace disco::collect
