#include "collect/collector.hpp"

#include <algorithm>
#include <bitset>
#include <cmath>
#include <utility>

#include "core/theory.hpp"
#include "telemetry/registry.hpp"

namespace disco::collect {
namespace {

using FlowEstimate = flowtable::FlowMonitor::FlowEstimate;

// The error model one report declares for one of its two metric axes
// (bytes come from the volume array, packets from the size array).
struct ErrorModel {
  enum class Kind { kMultiplicative, kAdditive, kUnbounded };
  Kind kind = Kind::kMultiplicative;
  double b = 1.0;     // kMultiplicative: effective DISCO base (1 = exact)
  double unit = 0.0;  // kAdditive: counting grid of additive_error_sd
};

[[nodiscard]] ErrorModel axis_model(double b, double error_unit,
                                    double fallback_b) {
  if (error_unit > 0.0) {
    return {ErrorModel::Kind::kAdditive, 1.0, error_unit};
  }
  if (b >= 1.0) return {ErrorModel::Kind::kMultiplicative, b, 0.0};
  // Legacy report (v1/v2): the wire carried no error metadata.
  if (fallback_b >= 1.0) {
    return {ErrorModel::Kind::kMultiplicative, fallback_b, 0.0};
  }
  return {ErrorModel::Kind::kUnbounded, 0.0, 0.0};
}

// Folds one per-flow estimate into an accumulator under the report's error
// model.  `packets_hint` bounds the number of randomized roundings behind an
// additive-error estimate: each packet update rounds once, so the flow's
// (estimated) packet count is the natural bound (docs/collector.md).
void fold_estimate(core::MixedEstimateAccumulator& acc, double estimate,
                   const ErrorModel& model, double packets_hint) {
  switch (model.kind) {
    case ErrorModel::Kind::kMultiplicative:
      acc.add_multiplicative(estimate, model.b);
      break;
    case ErrorModel::Kind::kAdditive: {
      const long long rounded = std::llround(packets_hint);
      const std::uint64_t roundings =
          rounded > 0 ? static_cast<std::uint64_t>(rounded) : 1;
      acc.add_additive(estimate,
                       core::theory::additive_error_sd(model.unit, roundings));
      break;
    }
    case ErrorModel::Kind::kUnbounded:
      acc.add_unbounded(estimate);
      break;
  }
}

// Deterministic total order for equal byte estimates, so top_k output is
// stable across runs and platforms.
[[nodiscard]] bool tuple_less(const FiveTuple& a, const FiveTuple& b) {
  if (a.src_ip != b.src_ip) return a.src_ip < b.src_ip;
  if (a.dst_ip != b.dst_ip) return a.dst_ip < b.dst_ip;
  if (a.src_port != b.src_port) return a.src_port < b.src_port;
  if (a.dst_port != b.dst_port) return a.dst_port < b.dst_port;
  return a.protocol < b.protocol;
}

}  // namespace

Collector::Collector(CollectorConfig config) : config_(std::move(config)) {
  auto& registry = telemetry::Registry::global();
  const std::string& prefix = config_.telemetry_prefix;
  reports_metric_ = &registry.counter(prefix + ".reports_total");
  epochs_metric_ = &registry.counter(prefix + ".epochs_finalized_total");
  dropped_metric_ = &registry.counter(prefix + ".flows_dropped_total");
  tracked_metric_ = &registry.gauge(prefix + ".flows_tracked");
  lagging_metric_ = &registry.gauge(prefix + ".sites_lagging");
}

Collector::SiteState& Collector::site_state(std::uint32_t site_id) {
  auto it = sites_.find(site_id);
  if (it != sites_.end()) return it->second;
  SiteState state;
  state.status.site_id = site_id;
  state.index = static_cast<std::uint32_t>(sites_.size());
  auto& registry = telemetry::Registry::global();
  const std::string base =
      config_.telemetry_prefix + ".site_" + std::to_string(site_id);
  state.reports_metric = &registry.counter(base + ".reports_total");
  state.duplicates_metric = &registry.counter(base + ".duplicates_total");
  state.late_metric = &registry.counter(base + ".late_total");
  return sites_.emplace(site_id, std::move(state)).first->second;
}

void Collector::expect_site(std::uint32_t site_id) { site_state(site_id); }

bool Collector::site_lagging(const SiteState& site) const {
  if (!any_report_) return false;
  if (!site.status.seen) return highwater_ + 1 > config_.liveness_window;
  return highwater_ - site.status.highwater_epoch > config_.liveness_window;
}

void Collector::fold_report(SiteState& site, const EpochReport& report) {
  const ErrorModel volume = axis_model(report.volume_b,
                                       report.volume_error_unit,
                                       config_.fallback_b);
  const ErrorModel size = axis_model(report.size_b, report.size_error_unit,
                                     config_.fallback_b);
  const std::uint64_t site_bit =
      site.index < 64 ? (std::uint64_t{1} << site.index) : 0;
  for (const FlowEstimate& flow : report.flows) {
    // Totals stay exact past the key cap: fold before admission.
    fold_estimate(total_bytes_, flow.bytes, volume, flow.packets);
    fold_estimate(total_packets_, flow.packets, size, flow.packets);
    auto it = keys_.find(flow.flow);
    if (it == keys_.end()) {
      if (keys_.size() >= config_.max_tracked_flows) {
        ++flows_dropped_;
        dropped_metric_->inc();
        continue;
      }
      it = keys_.emplace(flow.flow, KeyState{}).first;
    }
    KeyState& key = it->second;
    fold_estimate(key.bytes, flow.bytes, volume, flow.packets);
    fold_estimate(key.packets, flow.packets, size, flow.packets);
    key.site_mask |= site_bit;
  }
  tracked_metric_->set(static_cast<std::int64_t>(keys_.size()));
  site.status.volume_b = std::max(site.status.volume_b, report.volume_b);
  site.status.size_b = std::max(site.status.size_b, report.size_b);
  site.status.volume_error_unit =
      std::max(site.status.volume_error_unit, report.volume_error_unit);
  site.status.size_error_unit =
      std::max(site.status.size_error_unit, report.size_error_unit);
  max_volume_b_ = std::max(max_volume_b_, report.volume_b);
  // PressureStats on the wire are cumulative per site; keep the newest.
  if (report.epoch >= site.pressure_epoch) {
    site.status.pressure = report.pressure;
    site.pressure_epoch = report.epoch;
  }
}

Collector::IngestResult Collector::ingest(std::uint32_t site_id,
                                          std::uint32_t version,
                                          const EpochReport& report) {
  SiteState& site = site_state(site_id);
  site.status.last_version = version;
  if (site.epochs.count(report.epoch) != 0) {
    ++site.status.duplicates;
    site.duplicates_metric->inc();
    return IngestResult::Duplicate;
  }
  const bool late =
      any_finalized_ && report.epoch < next_epoch_to_finalize_;
  if (version < 3) ++site.status.legacy;
  if (!site.status.seen) {
    site.status.seen = true;
    site.status.highwater_epoch = report.epoch;
  } else if (report.epoch > site.status.highwater_epoch) {
    site.status.highwater_epoch = report.epoch;
  } else {
    ++site.status.reordered;
  }
  site.epochs.insert(report.epoch);
  any_report_ = true;
  highwater_ = std::max(highwater_, report.epoch);

  fold_report(site, report);
  ++site.status.reports;
  site.reports_metric->inc();
  ++reports_ingested_;
  reports_metric_->inc();

  if (late) {
    // The merged report for this epoch already went out; the traffic is in
    // the cumulative state (exactly once), but the epoch is not re-emitted.
    ++site.status.late;
    site.late_metric->inc();
    return IngestResult::Late;
  }
  pending_[report.epoch].emplace(site_id, report);
  try_finalize();
  return IngestResult::Accepted;
}

void Collector::subscribe(EpochSubscriber subscriber) {
  if (subscriber) subscribers_.push_back(std::move(subscriber));
}

void Collector::try_finalize() {
  while (!pending_.empty()) {
    const std::uint64_t epoch = pending_.begin()->first;
    // The newest epoch always stays open: a site the collector has never
    // heard from may still contribute to it (watermark rule -- an epoch is
    // only provably complete once the fleet has moved past it).
    // finalize_all() force-closes it at end of collection.
    if (epoch >= highwater_) return;
    // Below the highwater, an epoch finalises when every known site either
    // delivered it, has visibly moved past it (epoch gap), or is lagging
    // beyond the liveness window (stops gating the fleet).
    for (const auto& [id, site] : sites_) {
      (void)id;
      if (site.epochs.count(epoch) != 0) continue;
      if (site.status.seen && site.status.highwater_epoch >= epoch) continue;
      if (site_lagging(site)) continue;
      return;  // still waiting on this site
    }
    finalize_epoch(epoch);
  }
}

void Collector::finalize_epoch(std::uint64_t epoch) {
  auto it = pending_.find(epoch);
  if (it != pending_.end() && !it->second.empty()) {
    EpochReport merged;
    merged.epoch = epoch;
    std::unordered_map<FiveTuple, std::size_t> fused;
    for (const auto& [site_id, report] : it->second) {
      (void)site_id;
      merged.totals.bytes += report.totals.bytes;
      merged.totals.packets += report.totals.packets;
      merged.pressure += report.pressure;
      merged.volume_b = std::max(merged.volume_b, report.volume_b);
      merged.size_b = std::max(merged.size_b, report.size_b);
      merged.volume_error_unit =
          std::max(merged.volume_error_unit, report.volume_error_unit);
      merged.size_error_unit =
          std::max(merged.size_error_unit, report.size_error_unit);
      for (const FlowEstimate& flow : report.flows) {
        auto [pos, inserted] = fused.try_emplace(flow.flow,
                                                 merged.flows.size());
        if (inserted) {
          merged.flows.push_back(flow);
        } else {
          merged.flows[pos->second].bytes += flow.bytes;
          merged.flows[pos->second].packets += flow.packets;
        }
      }
    }
    merged.totals.flows = merged.flows.size();
    for (const auto& subscriber : subscribers_) subscriber(merged);
  }
  for (auto& [id, site] : sites_) {
    (void)id;
    if (site.epochs.count(epoch) == 0) ++site.status.epoch_gaps;
  }
  pending_.erase(epoch);
  ++epochs_finalized_;
  epochs_metric_->inc();
  any_finalized_ = true;
  next_epoch_to_finalize_ = epoch + 1;
  std::int64_t lagging = 0;
  for (const auto& [id, site] : sites_) {
    (void)id;
    if (site_lagging(site)) ++lagging;
  }
  lagging_metric_->set(lagging);
}

void Collector::finalize_all() {
  while (!pending_.empty()) finalize_epoch(pending_.begin()->first);
}

std::vector<GlobalEstimate> Collector::top_k(std::size_t k) const {
  std::vector<GlobalEstimate> out;
  out.reserve(keys_.size());
  for (const auto& [flow, key] : keys_) {
    GlobalEstimate g;
    g.flow = flow;
    g.bytes = key.bytes.sum();
    g.packets = key.packets.sum();
    const core::MergedInterval interval =
        key.bytes.interval(config_.confidence);
    g.bytes_low = interval.low;
    g.bytes_high = interval.high;
    g.interval_valid = interval.valid;
    g.sites = static_cast<std::uint32_t>(
        std::bitset<64>(key.site_mask).count());
    out.push_back(g);
  }
  std::sort(out.begin(), out.end(),
            [](const GlobalEstimate& a, const GlobalEstimate& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return tuple_less(a.flow, b.flow);
            });
  if (out.size() > k) out.resize(k);
  return out;
}

Collector::GlobalTotals Collector::totals() const {
  GlobalTotals totals;
  totals.bytes = total_bytes_.sum();
  totals.packets = total_packets_.sum();
  const core::MergedInterval interval =
      total_bytes_.interval(config_.confidence);
  totals.bytes_low = interval.low;
  totals.bytes_high = interval.high;
  totals.interval_valid = interval.valid;
  totals.flows = keys_.size();
  return totals;
}

std::vector<SiteStatus> Collector::sites() const {
  std::vector<SiteStatus> out;
  out.reserve(sites_.size());
  for (const auto& [id, site] : sites_) {
    (void)id;
    SiteStatus status = site.status;
    if (any_report_) {
      status.lag_epochs = site.status.seen
                              ? highwater_ - site.status.highwater_epoch
                              : highwater_ + 1;
    }
    status.lagging = site_lagging(site);
    out.push_back(status);
  }
  return out;
}

flowtable::PressureStats Collector::pressure() const {
  flowtable::PressureStats total;
  for (const auto& [id, site] : sites_) {
    (void)id;
    total += site.status.pressure;
  }
  return total;
}

}  // namespace disco::collect
