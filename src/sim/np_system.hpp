// Whole-system model of the paper's IXP2850 implementation (Section VI).
//
// Substitution note (DESIGN.md): we cannot run IXA SDK 4.0 or real IXP2850
// silicon, so the test-bench of the paper's Fig. 11 is reproduced as a
// resource-reservation simulation:
//
//   TGEN MEs --> scratchpad ring (packet handlers) --> DISCO MEs --> SRAM
//                                           \--> exact checking element
//
//   * packet handlers carry (flow id, length), as in the paper;
//   * the scratchpad ring and the SRAM channel are pipelined resources with
//     an issue interval and an access latency (one SRAM write + read is
//     ~186 ns, the figure the paper quotes);
//   * each MicroEngine's eight hardware threads hide SRAM *latency* but not
//     SRAM *issue bandwidth* or the ME's own compute time -- the classic NP
//     overlap model;
//   * per-packet compute cost is calibrated so one ME reaches ~11.1 Gbps on
//     the paper's traffic pattern (2560 flows, 80/20 volume split, uniform
//     64 B - 1 KB lengths, burst length 1).  Scaling *shape* -- near-linear
//     in MEs, ~2.5x from burst aggregation, halved error under bursts --
//     emerges from the model, not the calibration constant.
//
// Counting inside the model uses the fixed-point Log&Exp path, exactly what
// the hardware ran, and an exact counter array plays the paper's "exact
// counting element" for error measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "trace/packet.hpp"
#include "util/log_table.hpp"

namespace disco::sim {

/// Calibrated per-operation costs (ns).  Defaults reproduce Table V's shape.
struct MicroEngineCosts {
  SimTime ring_pop_issue_ns = 16;  ///< scratchpad ring dequeue slot (shared)
  SimTime ring_pop_latency_ns = 50;
  SimTime compute_ns = 328;        ///< hash + Log&Exp lookups + Algorithm 1
  SimTime accumulate_ns = 40;      ///< burst mode: local-memory add only
  SimTime sram_issue_ns = 12;      ///< QDR SRAM issue slot per operation
  SimTime sram_latency_ns = 93;    ///< per op; write+read round trip ~186 ns
  int sram_ops_per_update = 2;     ///< counter read + write
};

struct NpConfig {
  int num_mes = 1;
  int sram_channels = 1;            ///< independent SRAM channels (IXP2850: 4)
  std::uint32_t burst_lo = 1;       ///< flow burst length in the arrival stream
  std::uint32_t burst_hi = 1;
  bool burst_aggregation = false;   ///< Section VI optimisation on/off
  std::uint32_t flow_count = 2560;  ///< paper's traffic pattern
  double mean_packets = 400.0;      ///< packets per flow (workload scale)
  std::uint32_t len_lo = 64;
  std::uint32_t len_hi = 1024;
  int counter_bits = 12;
  MicroEngineCosts costs;
  std::uint64_t seed = 0x1f2e3d4c;
};

struct NpResult {
  double throughput_gbps = 0.0;
  double avg_relative_error = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  SimTime makespan_ns = 0;
  double sram_utilization = 0.0;   ///< SRAM channel issue-busy / makespan
  double ring_utilization = 0.0;
  std::uint64_t sram_updates = 0;  ///< counter read-modify-writes performed
  std::uint64_t table_storage_bits = 0;
};

/// Runs the full test-bench once and reports Table V-style figures.
[[nodiscard]] NpResult run_np_simulation(const NpConfig& config);

/// Trace-driven variant: replays the given packet arrival stream through the
/// NP model instead of generating the synthetic 80/20 pattern.  Flow ids
/// must be dense in [0, flow_count).  The burst/traffic fields of `config`
/// are ignored; timing, counting, and error accounting work as in
/// run_np_simulation.
[[nodiscard]] NpResult run_np_simulation_on_trace(
    const NpConfig& config, const std::vector<trace::PacketRecord>& packets,
    std::uint32_t flow_count);

}  // namespace disco::sim
