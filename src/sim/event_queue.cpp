#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace disco::sim {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the callback handle (shared ownership in std::function is cheap
  // relative to simulated work).
  Event ev = events_.top();
  events_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime t) {
  std::uint64_t n = 0;
  while (!events_.empty() && events_.top().at < t) {
    step();
    ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

}  // namespace disco::sim
