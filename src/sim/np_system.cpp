#include "sim/np_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/disco_fixed.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::sim {

NpResult run_np_simulation(const NpConfig& config) {
  util::Rng rng(config.seed);
  // TGEN: the paper's traffic pattern.
  auto flows = trace::make_8020_flows(config.flow_count, config.mean_packets,
                                      config.len_lo, config.len_hi, rng);
  trace::PacketStream stream(std::move(flows), config.burst_lo, config.burst_hi,
                             rng.next());
  return run_np_simulation_on_trace(config, stream.drain(), config.flow_count);
}

NpResult run_np_simulation_on_trace(const NpConfig& config,
                                    const std::vector<trace::PacketRecord>& packets,
                                    std::uint32_t flow_count) {
  if (config.num_mes < 1 || config.num_mes > 64) {
    throw std::invalid_argument("run_np_simulation: num_mes out of range");
  }

  util::Rng rng(config.seed ^ 0xF00D);

  // Ground truth (the exact counting element).
  std::vector<std::uint64_t> truth_bytes(flow_count, 0);
  std::uint64_t total_bytes = 0;
  std::uint64_t max_flow_bytes = 1;
  for (const auto& p : packets) {
    truth_bytes[p.flow_id] += p.length;
    total_bytes += p.length;
  }
  for (std::uint64_t v : truth_bytes) max_flow_bytes = std::max(max_flow_bytes, v);

  // --- DISCO MEs: fixed-point path, shared Log&Exp table --------------------
  util::LogExpTable::Config table_config;
  table_config.b = util::choose_b(max_flow_bytes, config.counter_bits);
  const util::LogExpTable table(table_config);
  core::FixedPointDisco logic(table);
  std::vector<std::uint64_t> counters(flow_count, 0);
  std::vector<std::uint64_t> pending(flow_count, 0);  // burst aggregation

  // --- timing model ----------------------------------------------------------
  if (config.sram_channels < 1 || config.sram_channels > 16) {
    throw std::invalid_argument("run_np_simulation: sram_channels out of range");
  }
  const MicroEngineCosts& costs = config.costs;
  PipelinedResource ring(costs.ring_pop_issue_ns, costs.ring_pop_latency_ns);
  // Counters are striped across channels by flow id (as SRAM banks would be).
  std::vector<PipelinedResource> sram(
      static_cast<std::size_t>(config.sram_channels),
      PipelinedResource(costs.sram_issue_ns, costs.sram_latency_ns));
  std::vector<SimTime> me_free(static_cast<std::size_t>(config.num_mes), 0);
  SimTime makespan = 0;
  std::uint64_t sram_updates = 0;

  // Per-stage packet counters of the TGEN -> ring -> DISCO ME -> SRAM
  // pipeline (docs/telemetry.md).
  auto& registry = telemetry::Registry::global();
  telemetry::Counter& stage_ring_pops = registry.counter("np.ring_pop_total");
  telemetry::Counter& stage_updates = registry.counter("np.counter_update_total");
  telemetry::Counter& stage_accumulates =
      registry.counter("np.burst_accumulate_total");
  telemetry::Counter& stage_sram_ops = registry.counter("np.sram_op_total");

  auto charge_counter_update = [&](std::size_t me, SimTime ready,
                                   std::uint32_t flow, std::uint64_t amount) {
    // The compute phase occupies the ME.  SRAM *latency* is hidden by the
    // ME's other hardware threads, but the thread holds the packet until its
    // operations are issued into the channel, so channel backlog (shared
    // across MEs) feeds back into ME pacing.
    PipelinedResource& channel = sram[flow % sram.size()];
    const SimTime compute_done = ready + costs.compute_ns;
    SimTime completion = compute_done;
    for (int op = 0; op < costs.sram_ops_per_update; ++op) {
      completion = channel.reserve(compute_done);
    }
    const SimTime last_issue_start = completion - costs.sram_latency_ns;
    ++sram_updates;
    stage_updates.inc();
    stage_sram_ops.inc(static_cast<std::uint64_t>(costs.sram_ops_per_update));
    counters[flow] = logic.update(counters[flow], amount, rng);
    me_free[me] = std::max(compute_done, last_issue_start);
    makespan = std::max(makespan, completion);
  };

  for (std::size_t idx = 0; idx < packets.size(); ++idx) {
    const trace::PacketRecord& p = packets[idx];
    // The shared ring serves the least-loaded ME first (all MEs poll it).
    const std::size_t me = static_cast<std::size_t>(
        std::min_element(me_free.begin(), me_free.end()) - me_free.begin());
    const SimTime popped = ring.reserve(me_free[me]);
    stage_ring_pops.inc();

    if (!config.burst_aggregation) {
      charge_counter_update(me, popped, p.flow_id, p.length);
      continue;
    }

    // Burst aggregation: accumulate in local memory; flush at burst end
    // (next packet belongs to a different flow) with one discounted update.
    pending[p.flow_id] += p.length;
    stage_accumulates.inc();
    const bool burst_ends =
        idx + 1 >= packets.size() || packets[idx + 1].flow_id != p.flow_id;
    if (burst_ends) {
      const SimTime ready = popped + costs.accumulate_ns;
      charge_counter_update(me, ready, p.flow_id, pending[p.flow_id]);
      pending[p.flow_id] = 0;
    } else {
      me_free[me] = popped + costs.accumulate_ns;
      makespan = std::max(makespan, me_free[me]);
    }
  }

  // Flush any residue (streams always end bursts, but stay safe).
  for (std::uint32_t f = 0; f < flow_count; ++f) {
    if (pending[f] != 0) {
      counters[f] = logic.update(counters[f], pending[f], rng);
      pending[f] = 0;
      ++sram_updates;
    }
  }

  // --- error measurement against the exact element ---------------------------
  double error_sum = 0.0;
  std::size_t error_count = 0;
  for (std::uint32_t f = 0; f < flow_count; ++f) {
    if (truth_bytes[f] == 0) continue;
    const double est = logic.estimate(counters[f]);
    error_sum += util::relative_error(est, static_cast<double>(truth_bytes[f]));
    ++error_count;
  }

  NpResult result;
  result.packets = packets.size();
  result.bytes = total_bytes;
  result.makespan_ns = makespan;
  result.throughput_gbps =
      makespan == 0 ? 0.0
                    : static_cast<double>(total_bytes) * 8.0 /
                          static_cast<double>(makespan);
  result.avg_relative_error =
      error_count == 0 ? 0.0 : error_sum / static_cast<double>(error_count);
  SimTime sram_busy = 0;
  for (const auto& channel : sram) sram_busy += channel.busy_time();
  result.sram_utilization =
      makespan == 0 ? 0.0
                    : static_cast<double>(sram_busy) /
                          static_cast<double>(makespan * sram.size());
  result.ring_utilization =
      makespan == 0 ? 0.0
                    : static_cast<double>(ring.busy_time()) /
                          static_cast<double>(makespan);
  result.sram_updates = sram_updates;
  result.table_storage_bits = table.storage_bits();
  return result;
}

}  // namespace disco::sim
