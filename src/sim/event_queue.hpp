// Minimal discrete-event simulation core.
//
// A time-ordered queue of callbacks with deterministic tie-breaking (FIFO
// among equal timestamps).  The NP model's resources are simple enough to
// advance with reservation arithmetic, but the queue is the general substrate
// for anything event-shaped -- tests drive it directly, and the burst-sweep
// ablation uses it for arrival-process generation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace disco::sim {

using SimTime = std::uint64_t;  ///< nanoseconds

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` `delay` ns after the current time.
  void schedule_in(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

  /// Runs the next event; returns false if none remain.
  bool step();

  /// Runs until the queue drains or `limit` events fire; returns events run.
  std::uint64_t run(std::uint64_t limit = ~std::uint64_t{0});

  /// Runs all events scheduled strictly before `t`, then sets now() = t.
  std::uint64_t run_until(SimTime t);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// A pipelined hardware resource: accepts a new operation every
/// `issue_interval` ns; each operation completes `latency` ns after issue.
/// Models the SRAM channel (QDR: ~1 op issue slot, ~90 ns access => the
/// paper's "one write and a read ... about 186 ns" round trip) and the
/// scratchpad ring ports.
class PipelinedResource {
 public:
  PipelinedResource(SimTime issue_interval, SimTime latency)
      : issue_interval_(issue_interval), latency_(latency) {}

  /// Reserves the next issue slot at or after `ready`; returns completion
  /// time.  Advances internal state (this is a mutating reservation).
  SimTime reserve(SimTime ready) noexcept {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + issue_interval_;
    busy_ += issue_interval_;
    return start + latency_;
  }

  /// When the next operation could be issued.
  [[nodiscard]] SimTime next_free() const noexcept { return next_free_; }

  /// Total busy (issue-occupied) time, for utilisation accounting.
  [[nodiscard]] SimTime busy_time() const noexcept { return busy_; }

  [[nodiscard]] SimTime issue_interval() const noexcept { return issue_interval_; }
  [[nodiscard]] SimTime latency() const noexcept { return latency_; }

 private:
  SimTime issue_interval_;
  SimTime latency_;
  SimTime next_free_ = 0;
  SimTime busy_ = 0;
};

}  // namespace disco::sim
