// DISCO: DIScount COunting (Hu et al., ICDCS 2010) -- the paper's core
// contribution.
//
// A DISCO counter holds a small integer c that is regulated to track
// f^-1(n) of the true accumulated traffic n, where
//
//     f(c) = (b^c - 1) / (b - 1),     b > 1.                    (eq. 1)
//
// For a packet of l bytes (l = 1 for flow *size* counting) the update is
//
//     delta(c,l) = ceil( f^-1(l + f(c)) - c ) - 1               (eq. 2)
//     p_d(c,l)   = (l + f(c) - f(c+delta)) /
//                  (f(c+delta+1) - f(c+delta))                  (eq. 3)
//     c <- c + delta + 1  with probability p_d, else c + delta  (Alg. 1)
//
// and f(c) is an unbiased estimator of n (Theorem 1).  Because c grows like
// log_b(n), a fixed-width SRAM counter of a handful of bits suffices for
// flows of arbitrary practical length.
//
// This header provides:
//   * DiscoParams     -- base b plus a provisioning factory from an SRAM
//                        budget (counter bits + largest expected flow); an
//                        attached DecisionTable (core/decision_table.hpp)
//                        makes decide/update transcendental-free with
//                        bit-identical decisions;
//   * DiscoCounter    -- a single counter, double-precision math path;
//   * DiscoArray      -- N counters bit-packed at exactly `bits` per counter
//                        with overflow accounting;
//   * BurstAggregator -- the paper's Section VI optimisation: accumulate a
//                        burst in a small exact on-chip counter and apply it
//                        as one discounted update.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/decision_table.hpp"
#include "util/bitpack.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::core {

/// Parameters of a DISCO deployment: the base b (and derived scale), plus an
/// optional attached DecisionTable fast path.
class DiscoParams {
 public:
  explicit DiscoParams(double b) : scale_(b) {}

  /// Provision for an SRAM budget: smallest b such that `counter_bits`-wide
  /// counters can represent flows up to `max_flow` (paper's evaluation sweeps
  /// counter bits and derives b exactly this way).
  ///
  /// The guarantee is in expectation: Theorem 3 bounds E[c] by f^-1(n), but
  /// individual counter trajectories fluctuate a few values above it.  A
  /// deployment that must never saturate should pass a max_flow with
  /// headroom (e.g. 2x the largest expected flow); the counter cost of that
  /// headroom is only log_b(2).
  static DiscoParams for_budget(std::uint64_t max_flow, int counter_bits) {
    return DiscoParams(util::choose_b(max_flow, counter_bits));
  }

  [[nodiscard]] double b() const noexcept { return scale_.b(); }
  [[nodiscard]] const util::GeometricScale& scale() const noexcept { return scale_; }

  /// Unbiased estimate for counter value c (Theorem 1).
  [[nodiscard]] double estimate(std::uint64_t c) const noexcept {
    return scale_.f(static_cast<double>(c));
  }

  /// Inverse provisioning query: counter value needed to represent traffic n
  /// (upper bound on E[c] by Theorem 3).
  [[nodiscard]] double counter_bound(double n) const noexcept {
    return scale_.f_inv(n);
  }

  // --- decision-table fast path ----------------------------------------------
  /// Attaches a precomputed DecisionTable so decide()/update() resolve
  /// without transcendentals for counter values up to the table's c_max.
  /// Decisions are bit-identical to the unattached path (same delta, same
  /// p_d, same RNG consumption), so attaching a table is purely a
  /// performance choice.  `table` must have been built for this b.
  void attach_table(std::shared_ptr<const DecisionTable> table);

  /// Builds (or fetches from the process-wide cache) a table covering
  /// counter values up to c_max and attaches it.
  void attach_table(std::uint64_t c_max) {
    attach_table(DecisionTable::shared(scale_, c_max));
  }

  void detach_table() noexcept { table_.reset(); }
  [[nodiscard]] const DecisionTable* decision_table() const noexcept {
    return table_.get();
  }

  /// Computes (delta, p_d) for counter value c and packet length l > 0.
  [[nodiscard]] UpdateDecision decide(std::uint64_t c, std::uint64_t l) const noexcept {
    return decide_value(c, static_cast<double>(l));
  }

  /// Merges two DISCO counters of the SAME deployment (same b) into one:
  /// the result estimates the combined traffic, unbiasedly.  Works in
  /// f-space -- merge(c1, c2) applies f(c2) as one discounted update to c1
  /// -- so distributed monitors (shards, epochs, mirrored taps) can
  /// aggregate without ever expanding to full-size counters.  The merge adds
  /// one update's worth of variance, bounded by Theorem 2 as usual.
  [[nodiscard]] std::uint64_t merge(std::uint64_t c1, std::uint64_t c2,
                                    util::Rng& rng) const noexcept;

  /// Two-sided confidence interval for the traffic estimate from counter
  /// value c: [low, high] such that the true n lies inside with probability
  /// ~confidence under the Theorem 2 normal approximation.  `confidence` in
  /// (0, 1); the relative half-width is z * cv_bound(b).
  struct ConfidenceInterval {
    double low = 0.0;
    double estimate = 0.0;
    double high = 0.0;
  };
  [[nodiscard]] ConfidenceInterval confidence_interval(
      std::uint64_t c, double confidence = 0.95) const;

  /// Same interval directly from a traffic estimate f(c) rather than a raw
  /// counter -- the epoch-report accessor: rotate() exports estimates, so
  /// downstream consumers (analysis modules, collectors) can attach
  /// Theorem 2 intervals without inverting back to counter space.  Requires
  /// estimate >= 0 and confidence in (0, 1).
  [[nodiscard]] ConfidenceInterval interval_for_estimate(
      double estimate, double confidence = 0.95) const;

  /// Applies Algorithm 1: returns the new counter value.
  [[nodiscard]] std::uint64_t update(std::uint64_t c, std::uint64_t l,
                                     util::Rng& rng) const noexcept {
    if (l == 0) return c;
    const UpdateDecision d = decide(c, l);
    return c + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
  }

  /// Applies Algorithm 1 to each (counter, length) pair in order, in place.
  /// Consumes the RNG stream exactly as the equivalent sequence of update()
  /// calls would, so batched and one-at-a-time ingestion are
  /// interchangeable; the point of the batch is keeping the attached
  /// decision table hot in cache across it.  Spans must be equally sized.
  void update_batch(std::span<std::uint64_t> counters,
                    std::span<const std::uint64_t> lengths,
                    util::Rng& rng) const noexcept {
    assert(counters.size() == lengths.size());
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counters[i] = update(counters[i], lengths[i], rng);
    }
  }

 private:
  /// Routes a decision to the attached table when it can resolve it, with
  /// the scalar path as the (bit-identical) fallback for detached params,
  /// counters beyond the table, and targets overrunning it.
  [[nodiscard]] UpdateDecision decide_value(std::uint64_t c, double l) const noexcept {
    if (const DecisionTable* t = table_.get(); t && c <= t->c_max()) {
      UpdateDecision d;
      if (t->decide(c, l, d)) return d;
    }
    return decide_real(c, l);
  }

  /// Algorithm 1's decision via transcendentals, for any real addend.
  [[nodiscard]] UpdateDecision decide_real(std::uint64_t c, double l) const noexcept;

  util::GeometricScale scale_;
  std::shared_ptr<const DecisionTable> table_;
};

/// A single DISCO counter (value + params reference semantics kept simple by
/// storing params by value; DiscoParams is two doubles).
class DiscoCounter {
 public:
  explicit DiscoCounter(DiscoParams params) : params_(params) {}

  /// Count a packet of l bytes (l = 1 for flow size counting).
  void add(std::uint64_t l, util::Rng& rng) noexcept {
    value_ = params_.update(value_, l, rng);
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept { return params_.estimate(value_); }
  [[nodiscard]] const DiscoParams& params() const noexcept { return params_; }
  void reset() noexcept { value_ = 0; }

 private:
  DiscoParams params_;
  std::uint64_t value_ = 0;
};

/// Fixed-width array of DISCO counters, bit-packed at exactly `bits` bits per
/// counter so SRAM accounting matches the paper's "largest counter bits"
/// methodology.  An update that would exceed the width follows the array's
/// saturation policy: by default it saturates the counter and is counted;
/// with enable_rescale() the whole array is re-derived under a larger base b
/// first (ICE-Buckets-style scale management -- see docs/robustness.md).
class DiscoArray {
 public:
  DiscoArray(std::size_t size, int bits, DiscoParams params)
      : params_(params), store_(size, bits) {}

  /// Provisioned constructor: picks b so that `bits` covers `max_flow`.
  DiscoArray(std::size_t size, int bits, std::uint64_t max_flow)
      : DiscoArray(size, bits, DiscoParams::for_budget(max_flow, bits)) {}

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] int bits() const noexcept { return store_.width(); }
  [[nodiscard]] const DiscoParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t storage_bits() const noexcept { return store_.storage_bits(); }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflows_; }

  /// Attaches a decision table sized to this array's counter width, so
  /// every reachable counter value resolves through the fast path (see
  /// core/decision_table.hpp; decisions stay bit-identical).
  void attach_decision_table() { params_.attach_table(store_.max_value()); }

  // --- saturation policy ------------------------------------------------------
  /// Switches the array from saturate-and-count to RescaleB: when an update
  /// would exceed the counter width, the array is re-provisioned for
  /// `growth` x its current representable maximum (a larger b, same bits)
  /// and every counter is remapped with randomized rounding, keeping
  /// estimates unbiased.  At most `max_rescales` re-derivations happen; past
  /// the cap -- or if provisioning fails (b would exceed choose_b's range)
  /// -- the array falls back to saturating.  Each rescale raises the
  /// Theorem 2 CV bound, which is exactly the graceful accuracy-for-range
  /// trade the robustness layer documents.
  void enable_rescale(double growth, unsigned max_rescales) noexcept {
    rescale_enabled_ = growth > 1.0 && max_rescales > 0;
    rescale_growth_ = growth;
    max_rescales_ = max_rescales;
  }
  [[nodiscard]] std::uint64_t rescale_count() const noexcept { return rescales_; }

  /// Restores a rescaled deployment's effective base (checkpoint/restore
  /// path): rebuilds params for `b` (re-deriving the attached decision
  /// table, if any) and resets the rescale-event count.  The raw counter
  /// values restored afterwards are interpreted under this b.
  void restore_scale(double b, std::uint64_t rescales) {
    if (b != params_.b()) {
      const bool had_table = params_.decision_table() != nullptr;
      params_ = DiscoParams(b);
      if (had_table) params_.attach_table(store_.max_value());
    }
    rescales_ = rescales;
  }

  void add(std::size_t i, std::uint64_t l, util::Rng& rng) noexcept {
    const std::uint64_t c = store_.get(i);
    const std::uint64_t next = params_.update(c, l, rng);
    if (next <= store_.max_value()) [[likely]] {
      store_.set(i, next);
      return;
    }
    saturate_or_rescale(i, next, rng);
  }

  /// Applies add(slots[i], lengths[i]) for each i in order; RNG consumption
  /// is identical to the equivalent sequence of add() calls.  Spans must be
  /// equally sized.
  void add_batch(std::span<const std::size_t> slots,
                 std::span<const std::uint64_t> lengths,
                 util::Rng& rng) noexcept {
    assert(slots.size() == lengths.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      add(slots[i], lengths[i], rng);
    }
  }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept { return store_.get(i); }
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return params_.estimate(store_.get(i));
  }

  /// Restores a raw counter value (checkpoint/restore path).  The value must
  /// fit the configured width.
  void set_value(std::size_t i, std::uint64_t v) {
    if (v > store_.max_value()) {
      throw std::out_of_range("DiscoArray::set_value: value exceeds counter width");
    }
    store_.set(i, v);
  }

  /// Largest counter value currently held -- determines the bits a
  /// fixed-width deployment of this workload actually needed.
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < store_.size(); ++i) m = std::max(m, store_.get(i));
    return m;
  }

  /// Clears counter values and the overflow count for a new epoch.  A
  /// rescaled b is a deployment property, not epoch state: it persists (as
  /// does rescale_count()), exactly as reprovisioned hardware would.
  void reset() noexcept {
    store_.fill_zero();
    overflows_ = 0;
  }

  /// Pulls slot i's word toward the cache (batched-ingest prefetch path).
  void prefetch(std::size_t i) const noexcept { store_.prefetch(i); }

  /// Advisory transparent-hugepage backing for the counter words.
  void advise_hugepages() noexcept { store_.advise_hugepages(); }

 private:
  /// Cold overflow path (disco.cpp): applies the saturation policy when the
  /// update at slot `i` realised a counter `next` that exceeds the width.
  /// Under RescaleB this re-derives the array and remaps the ALREADY-DECIDED
  /// `next` into the new scale with randomized rounding.  Remapping (rather
  /// than re-drawing the update) matters for unbiasedness: this path only
  /// runs on the conditional branch where the first draw came out high, so a
  /// re-draw would keep low outcomes and re-randomize high ones -- a
  /// systematic negative bias.  When rescaling is exhausted or impossible it
  /// clamps to the top value and counts the overflow, consuming no
  /// randomness beyond the original decision.
  void saturate_or_rescale(std::size_t i, std::uint64_t next,
                           util::Rng& rng) noexcept;

  /// One RescaleB event: re-provisions for rescale_growth_ x the current
  /// representable maximum and remaps every counter with randomized
  /// rounding (E[f_new(c')] = f_old(c), so estimates stay unbiased).
  /// Returns false -- permanently disabling rescale -- when choose_b cannot
  /// provision the grown budget at this width.
  bool rescale_once(util::Rng& rng) noexcept;

  DiscoParams params_;
  util::BitPackedArray store_;
  std::uint64_t overflows_ = 0;
  bool rescale_enabled_ = false;
  double rescale_growth_ = 2.0;
  unsigned max_rescales_ = 16;
  std::uint64_t rescales_ = 0;
};

/// Section VI burst optimisation: back-to-back packets of one flow are first
/// accumulated exactly in a small on-chip counter; when the burst ends (or
/// the small counter would overflow) the total is applied as a single
/// discounted update.  Fewer SRAM round-trips *and* lower estimation variance
/// (one large update replaces several small ones).
class BurstAggregator {
 public:
  /// `scratch_bits` bounds the exact on-chip accumulator (paper: "a small
  /// naive on-chip counter").
  BurstAggregator(DiscoParams params, int scratch_bits = 16)
      : params_(params),
        scratch_limit_((std::uint64_t{1} << scratch_bits) - 1) {}

  /// Adds a packet to the current burst.  Returns the number of SRAM counter
  /// updates performed (0 while accumulating, 1 on forced flush).
  int add(std::uint64_t l, std::uint64_t& counter, util::Rng& rng) noexcept {
    if (l >= scratch_limit_ - pending_) {
      pending_ += l;
      flush(counter, rng);
      return 1;
    }
    pending_ += l;
    return 0;
  }

  /// Ends the burst: applies any pending bytes as one update.
  int flush(std::uint64_t& counter, util::Rng& rng) noexcept {
    if (pending_ == 0) return 0;
    counter = params_.update(counter, pending_, rng);
    pending_ = 0;
    return 1;
  }

  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

 private:
  DiscoParams params_;
  std::uint64_t scratch_limit_;
  std::uint64_t pending_ = 0;
};

}  // namespace disco::core
