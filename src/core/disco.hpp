// DISCO: DIScount COunting (Hu et al., ICDCS 2010) -- the paper's core
// contribution.
//
// A DISCO counter holds a small integer c that is regulated to track
// f^-1(n) of the true accumulated traffic n, where
//
//     f(c) = (b^c - 1) / (b - 1),     b > 1.                    (eq. 1)
//
// For a packet of l bytes (l = 1 for flow *size* counting) the update is
//
//     delta(c,l) = ceil( f^-1(l + f(c)) - c ) - 1               (eq. 2)
//     p_d(c,l)   = (l + f(c) - f(c+delta)) /
//                  (f(c+delta+1) - f(c+delta))                  (eq. 3)
//     c <- c + delta + 1  with probability p_d, else c + delta  (Alg. 1)
//
// and f(c) is an unbiased estimator of n (Theorem 1).  Because c grows like
// log_b(n), a fixed-width SRAM counter of a handful of bits suffices for
// flows of arbitrary practical length.
//
// This header provides:
//   * DiscoParams     -- base b plus a provisioning factory from an SRAM
//                        budget (counter bits + largest expected flow);
//   * DiscoCounter    -- a single counter, double-precision math path;
//   * DiscoArray      -- N counters bit-packed at exactly `bits` per counter
//                        with overflow accounting;
//   * BurstAggregator -- the paper's Section VI optimisation: accumulate a
//                        burst in a small exact on-chip counter and apply it
//                        as one discounted update.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitpack.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::core {

/// Result of a single counter-update computation, exposed for tests, the
/// fixed-point implementation, and the walkthrough example (paper Fig. 1).
struct UpdateDecision {
  std::uint64_t delta = 0;  ///< deterministic part of the increment
  double p_d = 0.0;         ///< probability of the extra +1
};

/// Parameters of a DISCO deployment: the base b (and derived scale).
class DiscoParams {
 public:
  explicit DiscoParams(double b) : scale_(b) {}

  /// Provision for an SRAM budget: smallest b such that `counter_bits`-wide
  /// counters can represent flows up to `max_flow` (paper's evaluation sweeps
  /// counter bits and derives b exactly this way).
  ///
  /// The guarantee is in expectation: Theorem 3 bounds E[c] by f^-1(n), but
  /// individual counter trajectories fluctuate a few values above it.  A
  /// deployment that must never saturate should pass a max_flow with
  /// headroom (e.g. 2x the largest expected flow); the counter cost of that
  /// headroom is only log_b(2).
  static DiscoParams for_budget(std::uint64_t max_flow, int counter_bits) {
    return DiscoParams(util::choose_b(max_flow, counter_bits));
  }

  [[nodiscard]] double b() const noexcept { return scale_.b(); }
  [[nodiscard]] const util::GeometricScale& scale() const noexcept { return scale_; }

  /// Unbiased estimate for counter value c (Theorem 1).
  [[nodiscard]] double estimate(std::uint64_t c) const noexcept {
    return scale_.f(static_cast<double>(c));
  }

  /// Inverse provisioning query: counter value needed to represent traffic n
  /// (upper bound on E[c] by Theorem 3).
  [[nodiscard]] double counter_bound(double n) const noexcept {
    return scale_.f_inv(n);
  }

  /// Computes (delta, p_d) for counter value c and packet length l > 0.
  [[nodiscard]] UpdateDecision decide(std::uint64_t c, std::uint64_t l) const noexcept;

  /// Merges two DISCO counters of the SAME deployment (same b) into one:
  /// the result estimates the combined traffic, unbiasedly.  Works in
  /// f-space -- merge(c1, c2) applies f(c2) as one discounted update to c1
  /// -- so distributed monitors (shards, epochs, mirrored taps) can
  /// aggregate without ever expanding to full-size counters.  The merge adds
  /// one update's worth of variance, bounded by Theorem 2 as usual.
  [[nodiscard]] std::uint64_t merge(std::uint64_t c1, std::uint64_t c2,
                                    util::Rng& rng) const noexcept;

  /// Two-sided confidence interval for the traffic estimate from counter
  /// value c: [low, high] such that the true n lies inside with probability
  /// ~confidence under the Theorem 2 normal approximation.  `confidence` in
  /// (0, 1); the relative half-width is z * cv_bound(b).
  struct ConfidenceInterval {
    double low = 0.0;
    double estimate = 0.0;
    double high = 0.0;
  };
  [[nodiscard]] ConfidenceInterval confidence_interval(
      std::uint64_t c, double confidence = 0.95) const;

  /// Applies Algorithm 1: returns the new counter value.
  [[nodiscard]] std::uint64_t update(std::uint64_t c, std::uint64_t l,
                                     util::Rng& rng) const noexcept {
    if (l == 0) return c;
    const UpdateDecision d = decide(c, l);
    return c + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
  }

 private:
  /// Algorithm 1's decision for a real-valued addend (merge path).
  [[nodiscard]] UpdateDecision decide_real(std::uint64_t c, double l) const noexcept;

  util::GeometricScale scale_;
};

/// A single DISCO counter (value + params reference semantics kept simple by
/// storing params by value; DiscoParams is two doubles).
class DiscoCounter {
 public:
  explicit DiscoCounter(DiscoParams params) : params_(params) {}

  /// Count a packet of l bytes (l = 1 for flow size counting).
  void add(std::uint64_t l, util::Rng& rng) noexcept {
    value_ = params_.update(value_, l, rng);
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept { return params_.estimate(value_); }
  [[nodiscard]] const DiscoParams& params() const noexcept { return params_; }
  void reset() noexcept { value_ = 0; }

 private:
  DiscoParams params_;
  std::uint64_t value_ = 0;
};

/// Fixed-width array of DISCO counters, bit-packed at exactly `bits` bits per
/// counter so SRAM accounting matches the paper's "largest counter bits"
/// methodology.  Overflowing updates saturate the counter and are counted.
class DiscoArray {
 public:
  DiscoArray(std::size_t size, int bits, DiscoParams params)
      : params_(params), store_(size, bits) {}

  /// Provisioned constructor: picks b so that `bits` covers `max_flow`.
  DiscoArray(std::size_t size, int bits, std::uint64_t max_flow)
      : DiscoArray(size, bits, DiscoParams::for_budget(max_flow, bits)) {}

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] int bits() const noexcept { return store_.width(); }
  [[nodiscard]] const DiscoParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t storage_bits() const noexcept { return store_.storage_bits(); }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflows_; }

  void add(std::size_t i, std::uint64_t l, util::Rng& rng) noexcept {
    const std::uint64_t c = store_.get(i);
    const std::uint64_t next = params_.update(c, l, rng);
    if (!store_.try_add(i, next - c)) ++overflows_;
  }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept { return store_.get(i); }
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return params_.estimate(store_.get(i));
  }

  /// Restores a raw counter value (checkpoint/restore path).  The value must
  /// fit the configured width.
  void set_value(std::size_t i, std::uint64_t v) {
    if (v > store_.max_value()) {
      throw std::out_of_range("DiscoArray::set_value: value exceeds counter width");
    }
    store_.set(i, v);
  }

  /// Largest counter value currently held -- determines the bits a
  /// fixed-width deployment of this workload actually needed.
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < store_.size(); ++i) m = std::max(m, store_.get(i));
    return m;
  }

  void reset() noexcept {
    store_.fill_zero();
    overflows_ = 0;
  }

 private:
  DiscoParams params_;
  util::BitPackedArray store_;
  std::uint64_t overflows_ = 0;
};

/// Section VI burst optimisation: back-to-back packets of one flow are first
/// accumulated exactly in a small on-chip counter; when the burst ends (or
/// the small counter would overflow) the total is applied as a single
/// discounted update.  Fewer SRAM round-trips *and* lower estimation variance
/// (one large update replaces several small ones).
class BurstAggregator {
 public:
  /// `scratch_bits` bounds the exact on-chip accumulator (paper: "a small
  /// naive on-chip counter").
  BurstAggregator(DiscoParams params, int scratch_bits = 16)
      : params_(params),
        scratch_limit_((std::uint64_t{1} << scratch_bits) - 1) {}

  /// Adds a packet to the current burst.  Returns the number of SRAM counter
  /// updates performed (0 while accumulating, 1 on forced flush).
  int add(std::uint64_t l, std::uint64_t& counter, util::Rng& rng) noexcept {
    if (l >= scratch_limit_ - pending_) {
      pending_ += l;
      flush(counter, rng);
      return 1;
    }
    pending_ += l;
    return 0;
  }

  /// Ends the burst: applies any pending bytes as one update.
  int flush(std::uint64_t& counter, util::Rng& rng) noexcept {
    if (pending_ == 0) return 0;
    counter = params_.update(counter, pending_, rng);
    pending_ = 0;
    return 1;
  }

  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

 private:
  DiscoParams params_;
  std::uint64_t scratch_limit_;
  std::uint64_t pending_ = 0;
};

}  // namespace disco::core
