#include "core/decision_table.hpp"

#include <bit>
#include <map>
#include <mutex>
#include <utility>

namespace disco::core {

DecisionTable::DecisionTable(const util::GeometricScale& scale,
                             std::uint64_t c_max)
    : b_(scale.b()), bm1_(scale.b() - 1.0), c_max_(std::min(c_max, kMaxCmax)) {
  // Entries 0..c_max+1: the sentinel at c_max+1 lets a decision that lands
  // exactly one past the widest representable counter still resolve here.
  // The values MUST be produced by the same GeometricScale calls the scalar
  // decide path makes -- that identity is what makes table decisions
  // bit-identical to transcendental ones.
  f_.reserve(c_max_ + 2);
  step_.reserve(c_max_ + 2);
  for (std::uint64_t c = 0; c <= c_max_ + 1; ++c) {
    const double fc = scale.f(static_cast<double>(c));
    if (!std::isfinite(fc)) break;  // saturated tail: scalar fallback territory
    f_.push_back(fc);
    step_.push_back(scale.step(static_cast<double>(c)));
  }
  // f(0) = 0 and f(1) = 1 are always finite, so at least c_max_ = 0 remains.
  c_max_ = static_cast<std::uint64_t>(f_.size()) - 2;
}

std::shared_ptr<const DecisionTable> DecisionTable::shared(
    const util::GeometricScale& scale, std::uint64_t c_max) {
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  static std::mutex mutex;
  static std::map<Key, std::weak_ptr<const DecisionTable>> cache;

  const Key key{std::bit_cast<std::uint64_t>(scale.b()),
                std::min(c_max, kMaxCmax)};
  const std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[key];
  if (auto existing = slot.lock()) return existing;
  auto table = std::make_shared<const DecisionTable>(scale, c_max);
  slot = table;
  return table;
}

}  // namespace disco::core
