#include "core/disco_fixed.hpp"

// All members are inline today; the translation unit anchors the library and
// keeps a home for future out-of-line additions.
namespace disco::core {}
