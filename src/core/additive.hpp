// Additive-error counter array -- the alternate estimator frontier.
//
// DISCO regulates a logarithmic counter and pays a MULTIPLICATIVE error
// (CV bounded by Theorem 2's e(b)).  Additive-error counters (Ben Basat,
// Einziger, Friedman, "Faster and More Accurate Measurement through
// Additive-Error Counters", INFOCOM 2019; PAPERS.md) take the other trade:
// counters advance by l * p for a global sampling probability p = 2^-s,
// and the estimate c / p carries an ADDITIVE error of order 2^s * sqrt(N)
// -- tiny relative error for elephants, a fixed absolute noise floor for
// mice.  The update is a shift, a compare, and one randomized rounding: no
// f-space search at all, which is why FlowMonitor exposes it as a
// selectable estimator (Config.estimator) for workloads that tolerate
// additive error.
//
// Scale management is global, like the paper's MAX-SPEED mode run in
// reverse: all counters start EXACT (s = 0).  When an increment would
// overflow the fixed width, every counter is halved with randomized
// rounding and s grows by one -- an unbiased remap (E[halved] = c/2), so
// estimates stay unbiased through any number of scale-ups.  This is the
// additive analogue of DiscoArray's RescaleB, and it reuses that telemetry
// surface: each halve-all shows up as one rescale_count() event.
//
// Error model (core/theory.hpp, additive_error_sd): each update and each
// halving rounds to the 2^s grid with mean-zero error of variance at most
// (2^s)^2 / 4, so after N roundings the estimate's standard deviation is
// at most 2^s * sqrt(N) / 2.  tests/test_additive.cpp pins both the
// unbiasedness and this envelope on seeded Zipf workloads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/bitpack.hpp"
#include "util/rng.hpp"

namespace disco::core {

/// Fixed-width array of additive-error counters, bit-packed at exactly
/// `bits` bits per counter (same SRAM accounting as DiscoArray).
class AdditiveErrorArray {
 public:
  AdditiveErrorArray(std::size_t size, int bits) : store_(size, bits) {}

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] int bits() const noexcept { return store_.width(); }
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return store_.storage_bits();
  }

  /// Current scale exponent s: counters hold multiples of unit() = 2^s.
  [[nodiscard]] unsigned scale() const noexcept { return scale_; }

  /// The counting grid 2^s -- the quantum of the additive error model.
  [[nodiscard]] double unit() const noexcept {
    return static_cast<double>(std::uint64_t{1} << scale_);
  }

  /// Halve-all events since construction (cumulative, monotone: feeds the
  /// same pressure watermark DiscoArray's rescale_count does).
  [[nodiscard]] std::uint64_t rescale_count() const noexcept { return halvings_; }

  /// Additive counters never saturate -- they rescale instead.  The
  /// accessor exists so CounterBank can treat both estimator families
  /// uniformly.
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return 0; }

  /// Counts a packet/burst of l bytes into slot i.  Consumes exactly one
  /// draw for the grid rounding (plus halve-all draws on the overflow cold
  /// path), mirroring DiscoArray::add's one-draw-per-update contract.
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) noexcept {
    if (l == 0) return;
    const double u = rng.next_double();
    std::uint64_t inc = l >> scale_;
    const std::uint64_t rem = l - (inc << scale_);
    // Randomized rounding to the 2^s grid: round up with probability
    // rem / 2^s, so E[inc * 2^s] = l exactly.
    if (rem != 0 &&
        u * static_cast<double>(std::uint64_t{1} << scale_) <
            static_cast<double>(rem)) {
      ++inc;
    }
    while (inc > store_.max_value() - store_.get(i)) [[unlikely]] {
      halve_all(rng);
      inc = shift_down(inc, 1, rng);
    }
    store_.set(i, store_.get(i) + inc);
  }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept {
    return store_.get(i);
  }

  /// Unbiased estimate of the true accumulated traffic: c * 2^s.
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return static_cast<double>(store_.get(i)) * unit();
  }

  /// Restores a raw counter value (eviction zeroing, tests).  The value
  /// must fit the configured width; it is interpreted at the CURRENT scale.
  void set_value(std::size_t i, std::uint64_t v) {
    if (v > store_.max_value()) {
      throw std::out_of_range(
          "AdditiveErrorArray::set_value: value exceeds counter width");
    }
    store_.set(i, v);
  }

  /// Largest counter value currently held (provisioning diagnostics).
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < store_.size(); ++i) {
      m = std::max(m, store_.get(i));
    }
    return m;
  }

  /// Clears counters AND returns to the exact scale (s = 0) for a new
  /// epoch: unlike a rescaled b, the additive scale is pure workload state,
  /// so a fresh epoch starts exact again.  rescale_count() stays cumulative.
  void reset() noexcept {
    store_.fill_zero();
    scale_ = 0;
  }

  /// Merges two arrays of the SAME geometry into one whose counters
  /// estimate the summed traffic, unbiasedly: the lower-scale operand is
  /// brought to the common scale with randomized rounding, and the whole
  /// merge retries one scale higher if any slot would overflow.  Cold
  /// control-plane path (collector / shard aggregation); draw count varies.
  [[nodiscard]] static AdditiveErrorArray merge(const AdditiveErrorArray& a,
                                                const AdditiveErrorArray& b,
                                                util::Rng& rng);

  /// Pulls slot i's word toward the cache (batched-ingest prefetch path).
  void prefetch(std::size_t i) const noexcept { store_.prefetch(i); }

  /// Advisory transparent-hugepage backing for the counter words.
  void advise_hugepages() noexcept { store_.advise_hugepages(); }

 private:
  /// Halves every counter with randomized rounding and bumps the scale:
  /// E[new * 2^(s+1)] = old * 2^s, so estimates stay unbiased.
  void halve_all(util::Rng& rng) noexcept;

  /// v / 2^k with randomized rounding per halving step (E = v / 2^k).
  [[nodiscard]] static std::uint64_t shift_down(std::uint64_t v, unsigned k,
                                                util::Rng& rng) noexcept;

  util::BitPackedArray store_;
  unsigned scale_ = 0;
  std::uint64_t halvings_ = 0;
};

}  // namespace disco::core
