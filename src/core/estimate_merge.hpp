// Cross-site merging of flow ESTIMATES with mixed error models.
//
// Counter-level merging (core::DiscoParams::merge) requires both counters to
// share one DiscoParams deployment.  A collector aggregating epoch reports
// from many monitor processes does not have that luxury: sites run different
// counter widths, RescaleB drifts their effective bases apart, and some
// sites may use additive-error counters (core/additive.hpp) instead of
// DISCO.  What every site exports is an UNBIASED per-flow estimate plus
// enough error metadata (effective base b, or additive error unit) to bound
// its variance -- so the collector merges at the estimate level:
//
//   X = sum_i X_i,   E[X] = sum_i n_i = n   (unbiasedness survives the sum)
//
// and, because distinct sites consume independent randomness,
//
//   Var(X) = sum_i Var(X_i)
//     <=  sum_{i in DISCO}  e_i^2 * est_i^2     (Theorem 2, e_i = cv_bound(b_i))
//       + sum_{i in additive} sd_i^2            (additive_error_sd bound)
//
// MixedEstimateAccumulator tracks exactly (sum, variance bound) and yields
// the normal-approximation interval for the merged estimate.  This is the
// heterogeneous generalisation of modules/confidence.hpp's
// EstimateAccumulator, which assumes one uniform base for every member --
// that homogeneous formula is preserved here verbatim (aggregate_interval)
// so the modules layer can delegate without changing a single bit of its
// output.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/theory.hpp"

namespace disco::core {

/// A two-sided interval around a merged estimate.  `valid` is false when a
/// contribution carried no usable error metadata (e.g. a v1/v2 legacy
/// report with unknown base and no collector-level fallback): the estimate
/// itself is still the unbiased sum, but no variance bound exists for it.
struct MergedInterval {
  double estimate = 0.0;
  double low = 0.0;   ///< clamped at 0: traffic cannot be negative
  double high = 0.0;
  bool valid = true;
};

/// Streaming accumulator for a sum of independent unbiased estimates with
/// per-contribution error models.  Copyable POD-style state: a collector
/// keeps one per (flow key, metric).
class MixedEstimateAccumulator {
 public:
  /// A DISCO (multiplicative-error) contribution measured at effective base
  /// `b`.  b == 1 is exact counting (zero variance); b must be >= 1.
  void add_multiplicative(double estimate, double b) {
    sum_ += estimate;
    if (b > 1.0) {
      const double e = theory::cv_bound(b);
      variance_ += e * e * estimate * estimate;
    } else if (!(b >= 1.0)) {
      valid_ = false;  // unknown base: sum stays unbiased, bound is gone
    }
  }

  /// An additive-error contribution with standard-deviation bound `sd`
  /// (core::theory::additive_error_sd).
  void add_additive(double estimate, double sd) {
    sum_ += estimate;
    variance_ += sd * sd;
  }

  /// An unbiased contribution with NO error metadata (legacy report, no
  /// fallback base): keeps the sum right, invalidates the interval.
  void add_unbounded(double estimate) {
    sum_ += estimate;
    valid_ = false;
  }

  void merge(const MixedEstimateAccumulator& other) {
    sum_ += other.sum_;
    variance_ += other.variance_;
    valid_ = valid_ && other.valid_;
  }

  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Upper bound on Var(sum); meaningless when !interval_valid().
  [[nodiscard]] double variance_bound() const noexcept { return variance_; }
  [[nodiscard]] bool interval_valid() const noexcept { return valid_; }

  /// Normal-approximation interval for the merged sum at the given
  /// two-sided confidence level.  Degenerates to [sum, sum] when the
  /// variance bound is zero (all contributions exact) and to an invalid
  /// interval when any contribution lacked error metadata.
  [[nodiscard]] MergedInterval interval(double confidence) const {
    MergedInterval out;
    out.estimate = sum_;
    out.valid = valid_;
    if (!valid_ || confidence <= 0.0 || confidence >= 1.0 ||
        variance_ <= 0.0) {
      out.low = out.high = sum_;
      return out;
    }
    const double z = theory::normal_quantile(0.5 + confidence / 2.0);
    const double half = z * std::sqrt(variance_);
    out.low = std::max(0.0, sum_ - half);
    out.high = sum_ + half;
    return out;
  }

 private:
  double sum_ = 0.0;
  double variance_ = 0.0;
  bool valid_ = true;
};

/// The homogeneous special case: every member estimate shares one base `b`,
/// and the caller tracked (sum, sum of squares).  This is the EXACT formula
/// modules/confidence.hpp has always used -- half = z * e * sqrt(sum sq) --
/// kept as one canonical implementation so the modules layer and any other
/// uniform-base consumer produce bit-identical intervals to the pre-collect
/// releases (the statistical regression suites pin its coverage).
[[nodiscard]] inline MergedInterval aggregate_interval(double sum,
                                                       double sum_squares,
                                                       double b,
                                                       double confidence) {
  MergedInterval out;
  out.estimate = sum;
  if (b <= 1.0 || confidence <= 0.0 || confidence >= 1.0) {
    out.low = out.high = sum;  // degenerate: b == 1 counts exactly
    return out;
  }
  const double e = theory::cv_bound(b);
  const double z = theory::normal_quantile(0.5 + confidence / 2.0);
  const double half = z * e * std::sqrt(sum_squares);
  out.low = std::max(0.0, sum - half);
  out.high = sum + half;
  return out;
}

}  // namespace disco::core
