// Closed-form results from the paper's Section IV analysis.
//
//   * Theorem 2: coefficient of variation of T(S) -- the traffic needed to
//     drive a counter to value S -- under uniform per-trial increments theta;
//   * Corollary 1: the b-only bound sqrt((b-1)/(b+1));
//   * Theorem 3: E[c(n)] <= f^-1(n).
//
// These feed Figs. 2-4 and the property tests that pin the Monte-Carlo
// behaviour of the implementation to the analysis.
#pragma once

#include <cstdint>

namespace disco::core::theory {

/// Corollary 1: sup over S of the coefficient of variation, for any theta.
[[nodiscard]] double cv_bound(double b);

/// Theorem 2: coefficient of variation e[T(S)] for counter value S >= 1 and
/// uniform increment size theta >= 1 (theta = 1 covers flow size counting;
/// theta > 1 models fixed-length packets in flow volume counting).
[[nodiscard]] double coefficient_of_variation(double b, std::uint64_t S,
                                              std::uint64_t theta);

/// E[T(S)]: expected traffic needed to reach counter value S under uniform
/// increments theta (eq. 15 / eq. 18) -- the x-axis of the paper's Fig. 2.
[[nodiscard]] double expected_traffic(double b, std::uint64_t S,
                                      std::uint64_t theta);

/// Theorem 3: upper bound f^-1(n) on the expected counter value after
/// counting total traffic n.
[[nodiscard]] double expected_counter_upper_bound(double b, double n);

/// Additive-error counters (core/additive.hpp): upper bound on the standard
/// deviation of the estimate after `roundings` randomized roundings on the
/// grid `unit` = 2^s (each update contributes one rounding; each halve-all
/// event contributes one more per counter).  Every rounding has mean zero
/// and variance at most unit^2 / 4, so sd <= unit * sqrt(roundings) / 2.
/// Pair with normal_quantile for additive confidence intervals -- the
/// additive analogue of Theorem 2's multiplicative CV bound.
[[nodiscard]] double additive_error_sd(double unit, std::uint64_t roundings);

/// Standard normal quantile (probit) via the Acklam rational approximation
/// (|error| < 1.15e-9 over (0, 1)).  This is the z in every Theorem 2
/// normal-approximation interval: DiscoParams::confidence_interval uses it
/// for single counters, and the modules layer for aggregates of estimates.
[[nodiscard]] double normal_quantile(double p);

}  // namespace disco::core::theory
