// Generic discount counting over arbitrary regulation functions.
//
// DISCO's update rule (Algorithm 1) never uses any property of
// f(c) = (b^c - 1)/(b - 1) beyond "increasing and convex with f(0) = 0":
// given ANY such f, incrementing by delta + Bernoulli(p_d) with
//
//     delta = ceil(f^-1(l + f(c))) - 1 - c
//     p_d   = (l + f(c) - f(c + delta)) / (f(c + delta + 1) - f(c + delta))
//
// keeps E[f(c')] = f(c) + l, so f(c) stays an unbiased estimator.  The
// choice of f decides the memory/accuracy profile:
//   * geometric f (the paper): counter ~ log_b(n); relative error bounded by
//     a constant (Corollary 1);
//   * polynomial f (e.g. f(c) = c + a c^2): counter ~ sqrt(n/a); relative
//     error VANISHES as flows grow (at a steeper memory price) -- the
//     trade-off the ANLS paper discusses and bench_ablation_regulation
//     measures.
//
// GenericDisco<F> implements Algorithm 1 for any RegulationFunction.  The
// production path (DiscoParams) stays the hand-optimised geometric version;
// tests pin GenericDisco<GeometricRegulation> to it exactly.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/disco.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::core {

/// An increasing convex regulation function with f(0) = 0, plus its inverse.
template <typename F>
concept RegulationFunction = requires(const F f, double x) {
  { f.value(x) } -> std::convertible_to<double>;    // f(x)
  { f.inverse(x) } -> std::convertible_to<double>;  // f^-1(x)
};

/// The paper's geometric regulation (eq. 1), as a RegulationFunction.
class GeometricRegulation {
 public:
  explicit GeometricRegulation(double b) : scale_(b) {}
  [[nodiscard]] double value(double c) const noexcept { return scale_.f(c); }
  [[nodiscard]] double inverse(double n) const noexcept { return scale_.f_inv(n); }
  [[nodiscard]] double b() const noexcept { return scale_.b(); }

 private:
  util::GeometricScale scale_;
};

/// Polynomial regulation f(c) = c + a c^2 (a > 0): counter grows like
/// sqrt(n/a), relative error decays like n^-1/4 instead of saturating.
class QuadraticRegulation {
 public:
  explicit QuadraticRegulation(double a) : a_(a) {
    if (!(a > 0.0)) {
      throw std::invalid_argument("QuadraticRegulation: a must be positive");
    }
  }

  [[nodiscard]] double value(double c) const noexcept { return c + a_ * c * c; }

  [[nodiscard]] double inverse(double n) const noexcept {
    // Positive root of a c^2 + c - n = 0.
    return (std::sqrt(1.0 + 4.0 * a_ * n) - 1.0) / (2.0 * a_);
  }

  [[nodiscard]] double a() const noexcept { return a_; }

  /// Provisioning: the `a` whose counter stays within `counter_bits` bits
  /// for flows up to max_flow: value(2^bits - 1) >= max_flow.
  [[nodiscard]] static QuadraticRegulation for_budget(std::uint64_t max_flow,
                                                      int counter_bits) {
    const double c_max =
        static_cast<double>((std::uint64_t{1} << counter_bits) - 1);
    const double a = (static_cast<double>(max_flow) - c_max) / (c_max * c_max);
    return QuadraticRegulation(a > 1e-12 ? a : 1e-12);
  }

 private:
  double a_;
};

/// Algorithm 1 over an arbitrary regulation function.
template <RegulationFunction F>
class GenericDisco {
 public:
  explicit GenericDisco(F regulation) : f_(std::move(regulation)) {}

  [[nodiscard]] const F& regulation() const noexcept { return f_; }

  [[nodiscard]] UpdateDecision decide(std::uint64_t c, std::uint64_t l) const noexcept {
    const double fc = f_.value(static_cast<double>(c));
    const double target = fc + static_cast<double>(l);
    if (!std::isfinite(target)) return UpdateDecision{0, 0.0};  // saturated
    const double j_real = f_.inverse(target);
    auto j = static_cast<std::uint64_t>(std::ceil(j_real - 1e-9));
    if (j <= c) j = c + 1;
    const double tolerance = 1e-9 * std::max(1.0, target);
    while (f_.value(static_cast<double>(j)) < target - tolerance) ++j;

    UpdateDecision d;
    d.delta = j - c - 1;
    const double f_lo = f_.value(static_cast<double>(j - 1));
    const double f_hi = f_.value(static_cast<double>(j));
    d.p_d = std::clamp((target - f_lo) / (f_hi - f_lo), 0.0, 1.0);
    return d;
  }

  [[nodiscard]] std::uint64_t update(std::uint64_t c, std::uint64_t l,
                                     util::Rng& rng) const noexcept {
    if (l == 0) return c;
    const UpdateDecision d = decide(c, l);
    return c + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
  }

  [[nodiscard]] double estimate(std::uint64_t c) const noexcept {
    return f_.value(static_cast<double>(c));
  }

 private:
  F f_;
};

}  // namespace disco::core
