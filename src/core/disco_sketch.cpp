#include "core/disco_sketch.hpp"

namespace disco::core {

DiscoSketch::DiscoSketch(const Config& config)
    : config_(config),
      params_(DiscoParams::for_budget(config.max_cell_traffic, config.cell_bits)),
      cells_(config.width * static_cast<std::size_t>(config.depth),
             config.cell_bits),
      rng_(config.rng_seed) {
  if (config.width < 2 || config.depth < 1 || config.depth > 16) {
    throw std::invalid_argument("DiscoSketch: need width >= 2, depth in [1, 16]");
  }
}

std::size_t DiscoSketch::cell_index(std::uint64_t flow_key, int row) const noexcept {
  // SplitMix64 finaliser over (key, row, seed); rows use disjoint salts.
  std::uint64_t z = flow_key ^ (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) ^
                    config_.hash_seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(row) * config_.width +
         static_cast<std::size_t>(z % config_.width);
}

void DiscoSketch::add(std::uint64_t flow_key, std::uint64_t length) {
  if (length == 0) return;
  for (int row = 0; row < config_.depth; ++row) {
    const std::size_t i = cell_index(flow_key, row);
    const std::uint64_t c = cells_.get(i);
    const std::uint64_t next = params_.update(c, length, rng_);
    if (!cells_.try_add(i, next - c)) ++overflows_;
  }
}

double DiscoSketch::estimate(std::uint64_t flow_key) const {
  double best = -1.0;
  for (int row = 0; row < config_.depth; ++row) {
    const double e = params_.estimate(cells_.get(cell_index(flow_key, row)));
    if (best < 0.0 || e < best) best = e;
  }
  return best < 0.0 ? 0.0 : best;
}

}  // namespace disco::core
