#include "core/additive.hpp"

#include <algorithm>

namespace disco::core {

void AdditiveErrorArray::halve_all(util::Rng& rng) noexcept {
  for (std::size_t j = 0; j < store_.size(); ++j) {
    const std::uint64_t c = store_.get(j);
    std::uint64_t halved = c >> 1;
    // Odd counters round up with probability 1/2 (even ones draw nothing),
    // so E[halved] = c / 2 exactly -- the unbiasedness invariant.
    if ((c & 1) != 0 && rng.bernoulli(0.5)) ++halved;
    store_.set(j, halved);
  }
  ++scale_;
  ++halvings_;
}

std::uint64_t AdditiveErrorArray::shift_down(std::uint64_t v, unsigned k,
                                             util::Rng& rng) noexcept {
  for (unsigned step = 0; step < k; ++step) {
    std::uint64_t halved = v >> 1;
    if ((v & 1) != 0 && rng.bernoulli(0.5)) ++halved;
    v = halved;
  }
  return v;
}

AdditiveErrorArray AdditiveErrorArray::merge(const AdditiveErrorArray& a,
                                             const AdditiveErrorArray& b,
                                             util::Rng& rng) {
  if (a.size() != b.size() || a.bits() != b.bits()) {
    throw std::invalid_argument(
        "AdditiveErrorArray::merge: geometry mismatch");
  }
  // Start at the coarser operand's scale; a slot pair that still overflows
  // restarts the whole merge one scale higher (every slot must live on one
  // common grid).  Terminates: counters halve toward zero as s grows.
  for (unsigned s = std::max(a.scale_, b.scale_);; ++s) {
    AdditiveErrorArray out(a.size(), a.bits());
    out.scale_ = s;
    out.halvings_ = a.halvings_ + b.halvings_;
    bool fits = true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t va =
          shift_down(a.store_.get(i), s - a.scale_, rng);
      const std::uint64_t vb =
          shift_down(b.store_.get(i), s - b.scale_, rng);
      if (vb > out.store_.max_value() - va) {
        fits = false;
        break;
      }
      out.store_.set(i, va + vb);
    }
    if (fits) return out;
  }
}

}  // namespace disco::core
