#include "core/disco.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/theory.hpp"

namespace disco::core {

void DiscoParams::attach_table(std::shared_ptr<const DecisionTable> table) {
  if (!table) {
    table_.reset();
    return;
  }
  if (table->b() != scale_.b()) {
    throw std::invalid_argument(
        "DiscoParams::attach_table: table built for a different base b");
  }
  table_ = std::move(table);
}

UpdateDecision DiscoParams::decide_real(std::uint64_t c, double l) const noexcept {
  const auto& s = scale();
  const double fc = s.f(static_cast<double>(c));
  const double target = fc + l;
  if (!std::isfinite(target)) {
    // The counter sits beyond double range (far past any provisioned
    // budget): treat it as numerically saturated rather than invoke UB on
    // the ceil cast below.
    return UpdateDecision{0, 0.0};
  }

  // j = the smallest integer >= c+1 with f(j) >= target, up to a relative
  // tolerance that forgives float noise at exact-integer landings (where
  // p_d must come out as 1, not roll over to the next step with p_d ~ 0).
  // The closed form gives the neighbourhood; direct comparisons against the
  // SAME f the DecisionTable stores make the landing canonical, so table
  // and transcendental decisions agree bit for bit.
  const double cutoff = target - 1e-9 * std::max(1.0, target);
  const double j_real = s.f_inv(target);
  if (!std::isfinite(j_real)) {
    // target*(b-1) overflowed inside f^-1 even though the target itself is
    // finite (reachable by merging two nearly-saturated counters at large
    // b): saturate, mirroring the !isfinite(target) branch, instead of
    // feeding inf to the ceil cast below.
    return UpdateDecision{0, 0.0};
  }
  auto j = static_cast<std::uint64_t>(std::ceil(j_real - 1e-9));
  if (j <= c) j = c + 1;
  double f_prev = s.f(static_cast<double>(j - 1));  // f(j-1)
  while (j > c + 1 && f_prev >= cutoff) {
    --j;
    f_prev = s.f(static_cast<double>(j - 1));
  }
  for (double f_j = s.f(static_cast<double>(j)); f_j < cutoff;
       f_j = s.f(static_cast<double>(j))) {
    ++j;
    f_prev = f_j;
  }

  UpdateDecision d;
  d.delta = j - c - 1;
  d.p_d = std::clamp((target - f_prev) / s.step(static_cast<double>(j - 1)),
                     0.0, 1.0);
  return d;
}

std::uint64_t DiscoParams::merge(std::uint64_t c1, std::uint64_t c2,
                                 util::Rng& rng) const noexcept {
  if (c2 == 0) return c1;
  if (c1 == 0) return c2;
  // Apply f(c2) -- the second counter's traffic estimate -- as one real-
  // valued discounted update to c1: E[f(result)] = f(c1) + f(c2).
  const double addend = estimate(c2);
  const UpdateDecision d = decide_value(c1, addend);
  return c1 + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
}

void DiscoArray::saturate_or_rescale(std::size_t i, std::uint64_t next,
                                     util::Rng& rng) noexcept {
  // The f-value the realised (oversized) counter stands for in the scale
  // that decided it.  Held fixed across rescale rounds: the decision is
  // final, only its representation changes, so E[f_new(mapped)] = f_old(next)
  // and no overflow-conditioned re-draw can skew the estimator (see the
  // declaration comment in disco.hpp).
  const double x = params_.scale().f(static_cast<double>(next));
  while (rescale_enabled_ && rescales_ < max_rescales_) {
    if (!rescale_once(rng)) break;
    const util::GeometricScale& ns = params_.scale();
    double lo = std::floor(ns.f_inv(x));
    if (lo < 0.0) lo = 0.0;
    const double f_lo = ns.f(lo);
    const double width = ns.step(lo);  // f(lo+1) - f(lo)
    const double frac = std::clamp((x - f_lo) / width, 0.0, 1.0);
    const std::uint64_t mapped = static_cast<std::uint64_t>(lo) +
                                 (rng.bernoulli(frac) ? 1 : 0);
    if (mapped <= store_.max_value()) {
      store_.set(i, mapped);
      return;
    }
  }
  store_.set(i, store_.max_value());
  ++overflows_;
}

bool DiscoArray::rescale_once(util::Rng& rng) noexcept {
  // Target budget: growth x what the full-width counter represents today.
  const double old_budget = params_.estimate(store_.max_value());
  const double target = old_budget * rescale_growth_;
  if (!std::isfinite(target) || target <= old_budget || target >= 9.2e18) {
    rescale_enabled_ = false;
    return false;
  }
  double new_b = 0.0;
  try {
    new_b = util::choose_b(static_cast<std::uint64_t>(target), store_.width());
  } catch (const std::exception&) {
    // Even b = 4 cannot reach the grown budget at this width; from here on
    // the array saturates (and counts) like the default policy.
    rescale_enabled_ = false;
    return false;
  }
  const util::GeometricScale old_scale = params_.scale();
  DiscoParams new_params(new_b);
  const util::GeometricScale& ns = new_params.scale();
  // Remap every live counter into the new scale with randomized rounding:
  // c' = floor(f_new^-1(f_old(c))) + Bernoulli(frac), so conditional on the
  // old value E[f_new(c')] = f_old(c) and the estimator stays unbiased
  // through any number of rescales (tower property).
  for (std::size_t j = 0; j < store_.size(); ++j) {
    const std::uint64_t c = store_.get(j);
    if (c == 0) continue;
    const double x = old_scale.f(static_cast<double>(c));
    double lo = std::floor(ns.f_inv(x));
    if (lo < 0.0) lo = 0.0;
    const double f_lo = ns.f(lo);
    const double width = ns.step(lo);  // f(lo+1) - f(lo)
    const double frac = std::clamp((x - f_lo) / width, 0.0, 1.0);
    std::uint64_t mapped = static_cast<std::uint64_t>(lo) +
                           (rng.bernoulli(frac) ? 1 : 0);
    if (mapped > store_.max_value()) mapped = store_.max_value();
    store_.set(j, mapped);
  }
  const bool had_table = params_.decision_table() != nullptr;
  params_ = new_params;
  if (had_table) params_.attach_table(store_.max_value());
  ++rescales_;
  return true;
}

DiscoParams::ConfidenceInterval DiscoParams::confidence_interval(
    std::uint64_t c, double confidence) const {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument(
        "DiscoParams::confidence_interval: confidence must be in (0, 1)");
  }
  ConfidenceInterval ci;
  ci.estimate = estimate(c);
  // Corollary 1 bounds the coefficient of variation by sqrt((b-1)/(b+1));
  // under the normal approximation the two-sided interval is z * e wide.
  const double e = std::sqrt((b() - 1.0) / (b() + 1.0));
  const double z = theory::normal_quantile(0.5 + confidence / 2.0);
  ci.low = std::max(0.0, ci.estimate * (1.0 - z * e));
  ci.high = ci.estimate * (1.0 + z * e);
  return ci;
}

DiscoParams::ConfidenceInterval DiscoParams::interval_for_estimate(
    double estimate, double confidence) const {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument(
        "DiscoParams::interval_for_estimate: confidence must be in (0, 1)");
  }
  if (!(estimate >= 0.0)) {
    throw std::invalid_argument(
        "DiscoParams::interval_for_estimate: estimate must be >= 0");
  }
  // Same Corollary 1 relative half-width as confidence_interval, applied to
  // a continuous estimate directly: epoch reports carry f(c), not c, so
  // consumers of rotate() output never need to invert through the counter.
  ConfidenceInterval ci;
  ci.estimate = estimate;
  const double e = std::sqrt((b() - 1.0) / (b() + 1.0));
  const double z = theory::normal_quantile(0.5 + confidence / 2.0);
  ci.low = std::max(0.0, estimate * (1.0 - z * e));
  ci.high = estimate * (1.0 + z * e);
  return ci;
}

}  // namespace disco::core
