#include "core/disco.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace disco::core {

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.2e-9) -- enough for confidence intervals.
double probit(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

UpdateDecision DiscoParams::decide(std::uint64_t c, std::uint64_t l) const noexcept {
  return decide_real(c, static_cast<double>(l));
}

UpdateDecision DiscoParams::decide_real(std::uint64_t c, double l) const noexcept {
  const auto& s = scale();
  const double ln_b = s.ln_b();
  const double bm1 = s.b() - 1.0;
  const double fc = std::expm1(static_cast<double>(c) * ln_b) / bm1;
  const double target = fc + l;
  if (!std::isfinite(target)) {
    // The counter sits beyond double range (far past any provisioned
    // budget): treat it as numerically saturated rather than invoke UB on
    // the ceil cast below.
    return UpdateDecision{0, 0.0};
  }

  // j = ceil(f^-1(target)) = smallest integer >= c+1 with f(j) >= target.
  // Computed via the closed form, then nudged to defeat floating-point noise
  // at exact-integer landings (where p_d must come out as 1, not roll over to
  // the next step with p_d ~ 0).
  const double j_real = std::log1p(target * bm1) / ln_b;
  auto j = static_cast<std::uint64_t>(std::ceil(j_real - 1e-9));
  if (j <= c) j = c + 1;
  const double tolerance = 1e-9 * std::max(1.0, target);
  // One exp serves both f(j-1) = (b^(j-1) - 1)/(b - 1) and the interval
  // width f(j) - f(j-1) = b^(j-1); the nudge loop rarely iterates.
  double b_jm1 = std::exp(static_cast<double>(j - 1) * ln_b);
  while ((b_jm1 * s.b() - 1.0) / bm1 < target - tolerance) {
    ++j;
    b_jm1 *= s.b();
  }

  UpdateDecision d;
  d.delta = j - c - 1;
  const double f_lo = (b_jm1 - 1.0) / bm1;
  d.p_d = std::clamp((target - f_lo) / b_jm1, 0.0, 1.0);
  return d;
}

std::uint64_t DiscoParams::merge(std::uint64_t c1, std::uint64_t c2,
                                 util::Rng& rng) const noexcept {
  if (c2 == 0) return c1;
  if (c1 == 0) return c2;
  // Apply f(c2) -- the second counter's traffic estimate -- as one real-
  // valued discounted update to c1: E[f(result)] = f(c1) + f(c2).
  const double addend = estimate(c2);
  const UpdateDecision d = decide_real(c1, addend);
  return c1 + d.delta + (rng.bernoulli(d.p_d) ? 1 : 0);
}

DiscoParams::ConfidenceInterval DiscoParams::confidence_interval(
    std::uint64_t c, double confidence) const {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument(
        "DiscoParams::confidence_interval: confidence must be in (0, 1)");
  }
  ConfidenceInterval ci;
  ci.estimate = estimate(c);
  // Corollary 1 bounds the coefficient of variation by sqrt((b-1)/(b+1));
  // under the normal approximation the two-sided interval is z * e wide.
  const double e = std::sqrt((b() - 1.0) / (b() + 1.0));
  const double z = probit(0.5 + confidence / 2.0);
  ci.low = std::max(0.0, ci.estimate * (1.0 - z * e));
  ci.high = ci.estimate * (1.0 + z * e);
  return ci;
}

}  // namespace disco::core
