// Table-driven fast path for the DISCO update decision.
//
// Every per-packet update solves the same tiny problem: given a counter
// value c and an addend l, find
//
//     j  = the smallest integer > c with f(j) >= f(c) + l,          (eq. 2)
//     p  = (f(c) + l - f(j-1)) / (f(j) - f(j-1)),                   (eq. 3)
//
// and the reference implementation pays three transcendentals (expm1,
// log1p, exp) per decision to do it.  But DISCO's entire premise (eq. 1,
// Theorem 3) is that c stays SMALL -- c <= f^-1(max_flow), a few thousand
// for any realistic SRAM budget -- so f(c) and the interval widths b^c are
// enumerable up front.  This is the same insight behind the paper's IXP2850
// Log&Exp table (src/util/log_table.hpp), applied to the full-precision
// host path: where the NP table quantises mantissas to fit 96 Kb of on-chip
// memory, this table stores the EXACT doubles the reference path computes,
// so decisions are bit-identical to the transcendental path -- same delta,
// same p_d, same RNG consumption (tests/test_decision_table.cpp proves it
// exhaustively).
//
// Lookup strategy: f is strictly increasing, so j = ceil(f^-1(target))
// becomes a search over the table.  At operating range a packet rarely
// moves the counter more than a step or two, so the common case is resolved
// by probing c+1..c+4 directly; larger jumps (burst-coalesced updates,
// merges) fall through to a gallop + binary search.  Targets beyond the
// table's last entry return false and the caller falls back to the
// transcendental path, which is bit-identical by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/math.hpp"

namespace disco::core {

/// Result of a single counter-update computation, exposed for tests, the
/// fixed-point implementation, and the walkthrough example (paper Fig. 1).
struct UpdateDecision {
  std::uint64_t delta = 0;  ///< deterministic part of the increment
  double p_d = 0.0;         ///< probability of the extra +1
};

/// Precomputed dense table of f(c) and b^c over c in [0, c_max], driving a
/// transcendental-free DISCO decision that is bit-identical to the double
/// path.  Immutable after construction, so one table can serve any number
/// of threads and DiscoParams copies concurrently.
class DecisionTable {
 public:
  /// Builds the table for counter values 0..c_max (plus one sentinel entry
  /// at c_max+1 so a decision landing exactly past the last representable
  /// value still resolves in-table).  c_max is clamped to kMaxCmax, and the
  /// table is truncated at the first non-finite f value (everything beyond
  /// is numerically saturated and falls back to the scalar path anyway).
  DecisionTable(const util::GeometricScale& scale, std::uint64_t c_max);

  /// Process-wide cache keyed by (b, c_max): shard-per-worker deployments
  /// (ShardedFlowMonitor, PipelineMonitor) build dozens of monitors with
  /// identical provisioning, and all of them share one physical table.
  [[nodiscard]] static std::shared_ptr<const DecisionTable> shared(
      const util::GeometricScale& scale, std::uint64_t c_max);

  /// Tables larger than this are pointless: the entries beyond any real
  /// provisioning are either saturated or never reached, and the scalar
  /// fallback covers them bit-identically.
  static constexpr std::uint64_t kMaxCmax = (std::uint64_t{1} << 16) - 2;

  [[nodiscard]] double b() const noexcept { return b_; }
  /// Largest counter value whose decision the table can resolve.
  [[nodiscard]] std::uint64_t c_max() const noexcept { return c_max_; }
  /// Host memory footprint of the table payload.
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return (f_.size() + step_.size()) * sizeof(double);
  }

  /// f(c) exactly as the scalar path computes it (expm1(c ln b)/(b-1)).
  [[nodiscard]] double f(std::uint64_t c) const noexcept { return f_[c]; }
  /// Interval width f(c+1) - f(c) = b^c, exactly as the scalar path
  /// computes it (exp(c ln b)).
  [[nodiscard]] double step(std::uint64_t c) const noexcept { return step_[c]; }

  /// Computes the update decision for counter value c (<= c_max()) and
  /// addend l > 0.  Returns true and fills `d` when the decision resolves
  /// within the table; false when the target overruns it (or sits in a
  /// numerically saturated corner), in which case the caller must use the
  /// scalar path -- which produces the identical decision by construction.
  bool decide(std::uint64_t c, double l, UpdateDecision& d) const noexcept {
    const double target = f_[c] + l;
    if (!std::isfinite(target) || !std::isfinite(target * bm1_)) {
      // Mirrors the scalar path's two saturation exits exactly: f(c)+l
      // beyond double range, or target*(b-1) overflowing inside f^-1.
      return false;
    }
    const double cutoff = target - 1e-9 * std::max(1.0, target);
    const std::uint64_t limit = c_max_ + 1;  // last valid index

    // Common case: small packets move a warm counter at most a few steps.
    const std::uint64_t probe_end = std::min(c + 4, limit);
    std::uint64_t j = c + 1;
    while (j <= probe_end && f_[j] < cutoff) ++j;
    if (j > probe_end) {
      if (probe_end == limit) return false;  // table exhausted
      // Gallop from the probe frontier, then binary-search the bracket.
      std::uint64_t lo = probe_end;  // f_[lo] < cutoff
      std::uint64_t hi = lo;
      std::uint64_t stride = 4;
      for (;;) {
        if (hi == limit) return false;  // f_[limit] < cutoff: beyond table
        hi = (limit - hi > stride) ? hi + stride : limit;
        stride <<= 1;
        if (f_[hi] >= cutoff) break;
        lo = hi;
      }
      while (hi - lo > 1) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (f_[mid] >= cutoff) hi = mid;
        else lo = mid;
      }
      j = hi;
    }

    d.delta = j - c - 1;
    d.p_d = std::clamp((target - f_[j - 1]) / step_[j - 1], 0.0, 1.0);
    return true;
  }

 private:
  double b_;
  double bm1_;  // b - 1
  std::uint64_t c_max_;
  std::vector<double> f_;     // f_[c] = f(c), c in [0, c_max+1]
  std::vector<double> step_;  // step_[c] = b^c, same index range
};

}  // namespace disco::core
