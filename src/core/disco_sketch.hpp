// DiscoSketch: a Count-Min sketch whose cells are DISCO counters.
//
// The paper's system pairs per-flow counters with an exact flow table.  The
// table-less alternative is a sketch: d hash rows of w cells, each flow
// added to one cell per row, queries taking the minimum across rows (Cormode
// & Muthukrishnan's Count-Min, a close cousin of the paper's references).
// Sketch cells accumulate many flows, so full-size cells are wide -- exactly
// the problem DISCO's discount counting solves.  A DiscoSketch cell holds a
// few bits regardless of how much traffic lands in it:
//
//   * update: the packet's length is applied to one DISCO cell per row
//     (Algorithm 1 per cell, independent randomness);
//   * query: min over the rows' unbiased cell estimates -- the classic CMS
//     one-sided collision bias (over-estimation) plus DISCO's two-sided
//     estimation noise, both measured in bench_ablation_sketch;
//   * memory: d * w * bits packed, plus nothing per flow -- no flow table.
//
// The ordinary accuracy/width trade of CMS applies: widen w to dilute
// collisions, deepen d to tighten the min.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/disco.hpp"
#include "util/bitpack.hpp"
#include "util/rng.hpp"

namespace disco::core {

class DiscoSketch {
 public:
  struct Config {
    std::size_t width = 1024;   ///< w: cells per row
    int depth = 3;              ///< d: rows (independent hashes)
    int cell_bits = 12;         ///< DISCO counter width per cell
    /// Largest traffic a single CELL may need to represent (provisioning
    /// input for b; remember cells absorb collisions, so budget above the
    /// largest flow).
    std::uint64_t max_cell_traffic = std::uint64_t{1} << 32;
    std::uint64_t hash_seed = 0x5ce7c4;
    std::uint64_t rng_seed = 0xd15c05;
  };

  explicit DiscoSketch(const Config& config);

  /// Adds a packet of `length` bytes (or 1 for flow size) to `flow_key`'s
  /// cells.  Any 64-bit flow identity works (hash a FiveTuple upstream).
  void add(std::uint64_t flow_key, std::uint64_t length);

  /// Point query: estimated traffic of `flow_key` (>= truth in expectation;
  /// collision bias is one-sided up, DISCO noise two-sided).
  [[nodiscard]] double estimate(std::uint64_t flow_key) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const DiscoParams& params() const noexcept { return params_; }

  /// Counter SRAM in bits: d * w * cell_bits.
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return cells_.storage_bits();
  }

  /// Cells that saturated their bit budget (provisioning feedback).
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflows_; }

 private:
  [[nodiscard]] std::size_t cell_index(std::uint64_t flow_key, int row) const noexcept;

  Config config_;
  DiscoParams params_;
  util::BitPackedArray cells_;  // row-major d x w
  util::Rng rng_;
  std::uint64_t overflows_ = 0;
};

}  // namespace disco::core
