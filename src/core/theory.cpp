#include "core/theory.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace disco::core::theory {
namespace {

double pow_b(double b, double e) { return std::exp(e * std::log(b)); }

}  // namespace

double cv_bound(double b) {
  if (!(b > 1.0)) throw std::invalid_argument("cv_bound: b must be > 1");
  return std::sqrt((b - 1.0) / (b + 1.0));
}

double expected_traffic(double b, std::uint64_t S, std::uint64_t theta) {
  if (!(b > 1.0)) throw std::invalid_argument("expected_traffic: b must be > 1");
  if (theta == 0) throw std::invalid_argument("expected_traffic: theta >= 1");
  const util::GeometricScale scale(b);
  const auto s = static_cast<double>(S);
  if (theta == 1) {
    return scale.f(s);  // eq. 15
  }
  // Counter jumps to x after the first theta-sized trial, f(x) <= theta <=
  // f(x+1); from there on each increment is geometric (eq. 18).
  const double x = std::floor(scale.f_inv(static_cast<double>(theta)));
  if (x >= s) return static_cast<double>(theta);
  const double th = static_cast<double>(theta);
  return th + pow_b(b, x) * (pow_b(b, s - x) - 1.0) / (b - 1.0);
}

double coefficient_of_variation(double b, std::uint64_t S, std::uint64_t theta) {
  if (!(b > 1.0)) {
    throw std::invalid_argument("coefficient_of_variation: b must be > 1");
  }
  if (theta == 0) {
    throw std::invalid_argument("coefficient_of_variation: theta >= 1");
  }
  if (S == 0) return 0.0;
  const auto s = static_cast<double>(S);

  // For large S the expression is (inf/inf)-shaped in doubles but converges
  // to the Corollary 1 bound; short-circuit before b^(2S) overflows.
  if (2.0 * s * std::log(b) > 600.0) return cv_bound(b);

  if (theta == 1) {
    // eq. 17: e = sqrt( (b-1)(b^S - b) / ((b+1)(b^S - 1)) ).
    const double num = (b - 1.0) * (pow_b(b, s) - b);
    const double den = (b + 1.0) * (pow_b(b, s) - 1.0);
    return num <= 0.0 ? 0.0 : std::sqrt(num / den);
  }

  // eq. 20 with x s.t. f(x) <= theta <= f(x+1).
  const util::GeometricScale scale(b);
  const double th = static_cast<double>(theta);
  const double x = std::floor(scale.f_inv(th));
  if (x >= s) return 0.0;  // a single trial already reaches S: deterministic
  const double bx = pow_b(b, x);
  const double bsx = pow_b(b, s - x);
  const double num =
      (b - 1.0) * (bx * bx * (bsx * bsx - 1.0) - th * bx * (bsx - 1.0) * (b + 1.0));
  const double den_base = bx * (bsx - 1.0) + (b - 1.0) * th;
  const double den = (b + 1.0) * den_base * den_base;
  // The paper's geometric-trial model assumes p_c = theta/b^c <= 1; in the
  // early region where theta exceeds b^c the counter advances several values
  // deterministically and the closed form can dip (slightly) negative.
  // Clamp at zero: the true variation there is negligible (see the
  // Monte-Carlo column of bench_fig2).
  return num <= 0.0 ? 0.0 : std::sqrt(num / den);
}

double expected_counter_upper_bound(double b, double n) {
  const util::GeometricScale scale(b);
  return scale.f_inv(n);
}

}  // namespace disco::core::theory
