#include "core/theory.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace disco::core::theory {
namespace {

double pow_b(double b, double e) { return std::exp(e * std::log(b)); }

}  // namespace

double cv_bound(double b) {
  if (!(b > 1.0)) throw std::invalid_argument("cv_bound: b must be > 1");
  return std::sqrt((b - 1.0) / (b + 1.0));
}

double expected_traffic(double b, std::uint64_t S, std::uint64_t theta) {
  if (!(b > 1.0)) throw std::invalid_argument("expected_traffic: b must be > 1");
  if (theta == 0) throw std::invalid_argument("expected_traffic: theta >= 1");
  const util::GeometricScale scale(b);
  const auto s = static_cast<double>(S);
  if (theta == 1) {
    return scale.f(s);  // eq. 15
  }
  // Counter jumps to x after the first theta-sized trial, f(x) <= theta <=
  // f(x+1); from there on each increment is geometric (eq. 18).
  const double x = std::floor(scale.f_inv(static_cast<double>(theta)));
  if (x >= s) return static_cast<double>(theta);
  const double th = static_cast<double>(theta);
  return th + pow_b(b, x) * (pow_b(b, s - x) - 1.0) / (b - 1.0);
}

double coefficient_of_variation(double b, std::uint64_t S, std::uint64_t theta) {
  if (!(b > 1.0)) {
    throw std::invalid_argument("coefficient_of_variation: b must be > 1");
  }
  if (theta == 0) {
    throw std::invalid_argument("coefficient_of_variation: theta >= 1");
  }
  if (S == 0) return 0.0;
  const auto s = static_cast<double>(S);

  // For large S the expression is (inf/inf)-shaped in doubles but converges
  // to the Corollary 1 bound; short-circuit before b^(2S) overflows.
  if (2.0 * s * std::log(b) > 600.0) return cv_bound(b);

  if (theta == 1) {
    // eq. 17: e = sqrt( (b-1)(b^S - b) / ((b+1)(b^S - 1)) ).
    const double num = (b - 1.0) * (pow_b(b, s) - b);
    const double den = (b + 1.0) * (pow_b(b, s) - 1.0);
    return num <= 0.0 ? 0.0 : std::sqrt(num / den);
  }

  // eq. 20 with x s.t. f(x) <= theta <= f(x+1).
  const util::GeometricScale scale(b);
  const double th = static_cast<double>(theta);
  const double x = std::floor(scale.f_inv(th));
  if (x >= s) return 0.0;  // a single trial already reaches S: deterministic
  const double bx = pow_b(b, x);
  const double bsx = pow_b(b, s - x);
  const double num =
      (b - 1.0) * (bx * bx * (bsx * bsx - 1.0) - th * bx * (bsx - 1.0) * (b + 1.0));
  const double den_base = bx * (bsx - 1.0) + (b - 1.0) * th;
  const double den = (b + 1.0) * den_base * den_base;
  // The paper's geometric-trial model assumes p_c = theta/b^c <= 1; in the
  // early region where theta exceeds b^c the counter advances several values
  // deterministically and the closed form can dip (slightly) negative.
  // Clamp at zero: the true variation there is negligible (see the
  // Monte-Carlo column of bench_fig2).
  return num <= 0.0 ? 0.0 : std::sqrt(num / den);
}

double expected_counter_upper_bound(double b, double n) {
  const util::GeometricScale scale(b);
  return scale.f_inv(n);
}

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0, 1)");
  }
  // Acklam's rational approximation, tail / central / tail.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b_[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b_[0] * r + b_[1]) * r + b_[2]) * r + b_[3]) * r + b_[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double additive_error_sd(double unit, std::uint64_t roundings) {
  // Each randomized rounding on the 2^s grid is mean-zero with variance at
  // most unit^2 / 4 (Bernoulli rounding: unit^2 * q * (1 - q) <= unit^2/4);
  // roundings are independent, so variances add.
  return unit * std::sqrt(static_cast<double>(roundings)) / 2.0;
}

}  // namespace disco::core::theory
