// Fixed-point DISCO -- the network-processor implementation path.
//
// The IXP2850 has no floating point and no log/exp instructions; the paper's
// implementation precomputes both into a combined 96 Kb Log&Exp table
// (util::LogExpTable).  This module reimplements Algorithm 1 on top of that
// table using integer arithmetic only.
//
// A pleasant property of this construction (proved in tests/test_disco_fixed
// by simulation): because the update probability is computed *from the
// quantised table itself*,
//
//     E[ftilde(c')] = ftilde(c) + l      exactly,
//
// i.e. the fixed-point estimator ftilde(c) is unbiased with respect to the
// true traffic.  Table quantisation costs only variance, not bias, which is
// why the paper's NP implementation sees errors (0.013) comparable to the
// floating-point simulation.
#pragma once

#include <cstdint>

#include "util/bitpack.hpp"
#include "util/log_table.hpp"
#include "util/rng.hpp"

namespace disco::core {

/// Integer-only (delta, accept-threshold) decision derived from the table.
struct FixedUpdateDecision {
  std::uint64_t delta = 0;
  std::uint64_t numerator = 0;    ///< p_d = numerator / denominator, exact
  std::uint64_t denominator = 1;
};

/// DISCO update/estimate logic bound to a shared Log&Exp table.  The table is
/// borrowed (one table serves every counter of a deployment, exactly as the
/// 96 Kb on-chip table serves all MicroEngines); the caller owns its
/// lifetime.
class FixedPointDisco {
 public:
  explicit FixedPointDisco(const util::LogExpTable& table) : table_(&table) {}

  [[nodiscard]] const util::LogExpTable& table() const noexcept { return *table_; }

  [[nodiscard]] FixedUpdateDecision decide(std::uint64_t c,
                                           std::uint64_t l) const noexcept {
    FixedUpdateDecision d;
    const std::uint64_t fc = table_->f(c);
    const std::uint64_t target = fc + l;
    const std::uint64_t j = table_->inverse_at_least(target, c);
    d.delta = j - c - 1;
    const std::uint64_t f_lo = table_->f(j - 1);
    d.numerator = target - f_lo;
    d.denominator = table_->f(j) - f_lo;
    return d;
  }

  /// Algorithm 1 with an exact integer Bernoulli trial.
  [[nodiscard]] std::uint64_t update(std::uint64_t c, std::uint64_t l,
                                     util::Rng& rng) const noexcept {
    if (l == 0) return c;
    const FixedUpdateDecision d = decide(c, l);
    const bool extra =
        rng.uniform_u64(0, d.denominator - 1) < d.numerator;
    return c + d.delta + (extra ? 1 : 0);
  }

  /// Unbiased estimate of accumulated traffic from counter value c.
  [[nodiscard]] double estimate(std::uint64_t c) const noexcept {
    return static_cast<double>(table_->f(c));
  }

 private:
  const util::LogExpTable* table_;
};

/// Bit-packed array of fixed-point DISCO counters sharing one table.
class FixedPointDiscoArray {
 public:
  FixedPointDiscoArray(std::size_t size, int bits, const util::LogExpTable& table)
      : logic_(table), store_(size, bits) {}

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] int bits() const noexcept { return store_.width(); }
  [[nodiscard]] std::size_t storage_bits() const noexcept { return store_.storage_bits(); }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflows_; }

  void add(std::size_t i, std::uint64_t l, util::Rng& rng) noexcept {
    const std::uint64_t c = store_.get(i);
    const std::uint64_t next = logic_.update(c, l, rng);
    if (!store_.try_add(i, next - c)) ++overflows_;
  }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept { return store_.get(i); }
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return logic_.estimate(store_.get(i));
  }

 private:
  FixedPointDisco logic_;
  util::BitPackedArray store_;
  std::uint64_t overflows_ = 0;
};

}  // namespace disco::core
