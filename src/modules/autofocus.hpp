// autofocus -- hierarchical heavy-hitter prefixes (AutoFocus-style).
//
// Modeled on the CoMo exemplar autofocus.c, which implements Estan et al.'s
// AutoFocus compression: instead of listing every heavy /32, report the
// most specific prefixes whose UNEXPLAINED (residual) traffic -- bytes not
// already attributed to a reported descendant prefix -- reaches
// `heavy_share` of total bytes.  A single hot host surfaces as its /32; a
// scanned /24 whose individual hosts are all small surfaces as the /24; the
// root absorbs whatever is left only if the leftovers themselves clear the
// threshold.
//
// State is a cumulative per-/32 destination byte map (DISCO estimates);
// each epoch the prefix tree is re-derived bottom-up from it, 33 levels of
// hash-map folding -- O(distinct dsts * 33), trivial next to ingest.
//
// Options read: heavy_share, confidence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "modules/confidence.hpp"
#include "modules/module.hpp"

namespace disco::modules {

class AutofocusModule final : public AnalysisModule {
 public:
  explicit AutofocusModule(const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "autofocus";
  }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  struct Prefix {
    std::uint32_t prefix = 0;  ///< network address (low bits zero)
    int length = 0;            ///< prefix length, 0..32
    double bytes = 0.0;        ///< total estimated bytes under the prefix
    double residual = 0.0;     ///< bytes minus reported-descendant bytes
    AggregateInterval bytes_ci;  ///< Theorem 2 interval on `bytes`
  };
  /// Reported prefixes, residual descending (recomputed each epoch).
  [[nodiscard]] const std::vector<Prefix>& report() const noexcept {
    return reported_;
  }
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  void recompute();

  struct Leaf {
    EstimateAccumulator bytes;
  };

  ModuleOptions options_;
  std::unordered_map<std::uint32_t, Leaf> leaves_;  ///< per dst /32
  std::vector<Prefix> reported_;
  double total_bytes_ = 0.0;
  double volume_b_ = 0.0;
  std::uint64_t epochs_ = 0;
};

}  // namespace disco::modules
