#include "modules/host.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "modules/active_flows.hpp"
#include "modules/anomaly_ewma.hpp"
#include "modules/application.hpp"
#include "modules/autofocus.hpp"
#include "modules/scanner.hpp"
#include "modules/top_keys.hpp"
#include "telemetry/registry.hpp"

namespace disco::modules {

namespace {

/// Registry-safe spelling of a module name: '-' becomes '_' so metric paths
/// stay single-token per dot segment.
std::string metric_name(std::string_view module_name) {
  std::string out(module_name);
  for (char& c : out) {
    if (c == '-') c = '_';
  }
  return out;
}

}  // namespace

ModuleHost::ModuleHost(std::string telemetry_prefix)
    : telemetry_prefix_(std::move(telemetry_prefix)) {}

AnalysisModule& ModuleHost::attach(std::unique_ptr<AnalysisModule> module) {
  if (module == nullptr) {
    throw std::invalid_argument("ModuleHost::attach: null module");
  }
  if (find(module->name()) != nullptr) {
    throw std::invalid_argument("ModuleHost::attach: duplicate module name '" +
                                std::string(module->name()) + "'");
  }
  auto& registry = telemetry::Registry::global();
  const std::string base =
      telemetry_prefix_ + '.' + metric_name(module->name());
  Entry entry;
  entry.module = std::move(module);
  entry.epochs = &registry.counter(base + ".epochs_total");
  entry.flows = &registry.counter(base + ".flows_total");
  entry.epoch_ns = &registry.histogram(base + ".epoch_ns");
  entries_.push_back(std::move(entry));
  return *entries_.back().module;
}

void ModuleHost::on_epoch(const EpochReport& report) {
  for (Entry& entry : entries_) {
    {
      telemetry::ScopeTimer timer(*entry.epoch_ns);
      entry.module->on_epoch(report);
    }
    entry.epochs->inc();
    entry.flows->inc(report.flows.size());
  }
  ++epochs_dispatched_;
}

void ModuleHost::flush() {
  for (Entry& entry : entries_) entry.module->flush();
}

void ModuleHost::reset() {
  for (Entry& entry : entries_) entry.module->reset();
  epochs_dispatched_ = 0;
}

AnalysisModule* ModuleHost::find(std::string_view name) noexcept {
  for (Entry& entry : entries_) {
    if (entry.module->name() == name) return entry.module.get();
  }
  return nullptr;
}

const AnalysisModule* ModuleHost::find(std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.module->name() == name) return entry.module.get();
  }
  return nullptr;
}

void ModuleHost::export_text(std::ostream& out) const {
  for (const Entry& entry : entries_) {
    entry.module->export_text(out);
  }
}

std::string ModuleHost::export_json() const {
  std::ostringstream out;
  out << "{\"epochs\": " << epochs_dispatched_ << ", \"modules\": [";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) out << ", ";
    first = false;
    out << entry.module->export_json();
  }
  out << "]}";
  return out.str();
}

// --- factory ----------------------------------------------------------------

const std::vector<std::string>& available_modules() {
  static const std::vector<std::string> names = {
      "topports",     "topdest",          "application", "active-flows",
      "anomaly-ewma", "scanner-detector", "autofocus",
  };
  return names;
}

std::unique_ptr<AnalysisModule> make_module(std::string_view name,
                                            const ModuleOptions& options) {
  if (name == "topports") {
    return std::make_unique<TopKeysModule>(TopKeyKind::DstPort, options);
  }
  if (name == "topdest") {
    return std::make_unique<TopKeysModule>(TopKeyKind::DstIp, options);
  }
  if (name == "application") {
    return std::make_unique<ApplicationModule>(options);
  }
  if (name == "active-flows") {
    return std::make_unique<ActiveFlowsModule>(options);
  }
  if (name == "anomaly-ewma") {
    return std::make_unique<AnomalyEwmaModule>(options);
  }
  if (name == "scanner-detector") {
    return std::make_unique<ScannerDetectorModule>(options);
  }
  if (name == "autofocus") {
    return std::make_unique<AutofocusModule>(options);
  }
  std::string known;
  for (const std::string& n : available_modules()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown module '" + std::string(name) +
                              "' (known: " + known + ")");
}

std::vector<std::unique_ptr<AnalysisModule>> make_modules(
    std::string_view selection, const ModuleOptions& options) {
  std::vector<std::unique_ptr<AnalysisModule>> out;
  if (selection.empty() || selection == "all") {
    for (const std::string& name : available_modules()) {
      out.push_back(make_module(name, options));
    }
    return out;
  }
  std::size_t start = 0;
  while (start <= selection.size()) {
    std::size_t end = selection.find(',', start);
    if (end == std::string_view::npos) end = selection.size();
    const std::string_view name = selection.substr(start, end - start);
    if (name.empty()) {
      throw std::invalid_argument("make_modules: empty name in selection");
    }
    for (const auto& existing : out) {
      if (existing->name() == name) {
        throw std::invalid_argument("make_modules: duplicate module '" +
                                    std::string(name) + "'");
      }
    }
    out.push_back(make_module(name, options));
    start = end + 1;
  }
  return out;
}

}  // namespace disco::modules
