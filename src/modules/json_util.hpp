// Minimal JSON emission helpers shared by the built-in modules' exports.
//
// The repo deliberately has no JSON library (telemetry/export.cpp hand-rolls
// its documents the same way); these helpers keep the modules' hand-rolled
// output consistent: escaped strings, locale-independent numbers, and no
// NaN/Inf leakage (JSON has no spelling for them).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <locale>
#include <sstream>
#include <string>
#include <string_view>

namespace disco::modules::json {

/// Escapes a string for use inside a JSON string literal (quotes excluded).
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A finite double as a JSON number (NaN/Inf map to 0 -- exports must stay
/// parseable even if a module's math goes degenerate).
inline std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(12);
  out << v;
  return out.str();
}

/// Dotted-quad rendering of a host-order IPv4 address ("10.1.2.3").
inline std::string ipv4(std::uint32_t ip) {
  std::ostringstream out;
  out << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
      << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return out.str();
}

}  // namespace disco::modules::json
