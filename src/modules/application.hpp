// application -- traffic breakdown by application class.
//
// Modeled on the CoMo exemplar application.c: classify each flow by its
// well-known port (the smaller-numbered of src/dst wins, matching the
// convention that servers sit on the registered port) and report each
// class's share of total estimated bytes, packets, and flows, cumulative
// across epochs.  Byte totals carry Theorem 2 intervals.
//
// Options read: confidence.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "modules/confidence.hpp"
#include "modules/module.hpp"

namespace disco::modules {

/// Application classes the classifier distinguishes.  Kept coarse on
/// purpose: port-based classification is a triage signal, not DPI.
enum class AppClass : std::uint8_t {
  Web,      ///< 80, 443, 8080, 8443
  Dns,      ///< 53
  Mail,     ///< 25, 110, 143, 465, 587, 993, 995
  Ssh,      ///< 22
  Ftp,      ///< 20, 21
  Ntp,      ///< 123
  Icmp,     ///< protocol 1 (ports are meaningless)
  Other,    ///< everything else
};
inline constexpr std::size_t kAppClassCount = 8;

/// Class of one flow, from protocol + well-known ports.
[[nodiscard]] AppClass classify_flow(const FiveTuple& flow) noexcept;

/// Stable lowercase label ("web", "dns", ...).
[[nodiscard]] std::string_view app_class_name(AppClass c) noexcept;

class ApplicationModule final : public AnalysisModule {
 public:
  explicit ApplicationModule(const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "application";
  }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  struct ClassStats {
    EstimateAccumulator bytes;
    EstimateAccumulator packets;
    std::uint64_t flows = 0;
  };
  /// Cumulative stats for one class (index by static_cast<size_t>(AppClass)).
  [[nodiscard]] const ClassStats& stats(AppClass c) const noexcept {
    return classes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  std::array<ClassStats, kAppClassCount> classes_{};
  double total_bytes_ = 0.0;
  std::uint64_t epochs_ = 0;
  double volume_b_ = 0.0;
  ModuleOptions options_;
};

}  // namespace disco::modules
