#include "modules/scanner.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "modules/json_util.hpp"

namespace disco::modules {

ScannerDetectorModule::ScannerDetectorModule(const ModuleOptions& options)
    : options_(options) {}

void ScannerDetectorModule::on_epoch(const EpochReport& report) {
  struct Source {
    std::unordered_set<std::uint64_t> targets;
    double packets = 0.0;
  };
  std::unordered_map<std::uint32_t, Source> sources;
  for (const auto& flow : report.flows) {
    Source& src = sources[flow.flow.src_ip];
    src.targets.insert((static_cast<std::uint64_t>(flow.flow.dst_ip) << 16) |
                       flow.flow.dst_port);
    src.packets += flow.packets;
  }
  for (const auto& [ip, src] : sources) {
    const std::size_t fanout = src.targets.size();
    if (fanout < options_.scanner_min_fanout) continue;
    const double per_target = src.packets / static_cast<double>(fanout);
    if (per_target > options_.scanner_max_packets_per_flow) continue;
    Suspect& suspect = suspects_[ip];
    suspect.src_ip = ip;
    if (fanout >= suspect.peak_fanout) {
      suspect.peak_fanout = fanout;
      suspect.packets_per_target = per_target;
    }
    suspect.epochs_flagged += 1;
    suspect.last_epoch = report.epoch;
  }
  ++epochs_;
}

void ScannerDetectorModule::reset() {
  suspects_.clear();
  epochs_ = 0;
}

std::vector<ScannerDetectorModule::Suspect> ScannerDetectorModule::suspects()
    const {
  std::vector<Suspect> out;
  out.reserve(suspects_.size());
  for (const auto& [ip, suspect] : suspects_) out.push_back(suspect);
  std::sort(out.begin(), out.end(), [](const Suspect& a, const Suspect& b) {
    if (a.peak_fanout != b.peak_fanout) return a.peak_fanout > b.peak_fanout;
    return a.src_ip < b.src_ip;
  });
  if (out.size() > options_.top_k) out.resize(options_.top_k);
  return out;
}

void ScannerDetectorModule::export_text(std::ostream& out) const {
  out << "scanner-detector: " << suspects_.size() << " suspect(s) after "
      << epochs_ << " epoch(s) (fanout >= " << options_.scanner_min_fanout
      << ", <= " << options_.scanner_max_packets_per_flow << " pkt/target)\n";
  for (const Suspect& suspect : suspects()) {
    out << "  " << json::ipv4(suspect.src_ip) << "  fanout "
        << suspect.peak_fanout << "  pkt/target " << suspect.packets_per_target
        << "  flagged in " << suspect.epochs_flagged << " epoch(s), last "
        << suspect.last_epoch << '\n';
  }
}

std::string ScannerDetectorModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"scanner-detector\", \"epochs\": " << epochs_
      << ", \"suspect_count\": " << suspects_.size() << ", \"suspects\": [";
  bool first = true;
  for (const Suspect& suspect : suspects()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"src\": \"" << json::ipv4(suspect.src_ip)
        << "\", \"peak_fanout\": " << suspect.peak_fanout
        << ", \"packets_per_target\": "
        << json::number(suspect.packets_per_target)
        << ", \"epochs_flagged\": " << suspect.epochs_flagged
        << ", \"last_epoch\": " << suspect.last_epoch << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::modules
