#include "modules/active_flows.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "modules/json_util.hpp"

namespace disco::modules {

ActiveFlowsModule::ActiveFlowsModule(const ModuleOptions& options)
    : options_(options) {}

void ActiveFlowsModule::on_epoch(const EpochReport& report) {
  const std::size_t flows = report.totals.flows;
  last_flows_ = flows;
  peak_flows_ = std::max(peak_flows_, flows);
  total_flows_ += flows;
  const double alpha = options_.ewma_alpha;
  ewma_flows_ = epochs_ == 0
                    ? static_cast<double>(flows)
                    : alpha * static_cast<double>(flows) + (1.0 - alpha) * ewma_flows_;
  last_bytes_ = report.totals.bytes;
  last_bytes_per_flow_ = flows > 0 ? report.totals.bytes / static_cast<double>(flows) : 0.0;
  ++epochs_;
}

void ActiveFlowsModule::reset() {
  epochs_ = 0;
  last_flows_ = 0;
  peak_flows_ = 0;
  total_flows_ = 0;
  ewma_flows_ = 0.0;
  last_bytes_ = 0.0;
  last_bytes_per_flow_ = 0.0;
}

void ActiveFlowsModule::export_text(std::ostream& out) const {
  out << "active-flows: " << epochs_ << " epoch(s)\n"
      << "  last " << last_flows_ << "  ewma " << ewma_flows_ << "  peak "
      << peak_flows_ << "  flow-epochs " << total_flows_ << '\n'
      << "  last epoch bytes " << last_bytes_ << "  bytes/flow "
      << last_bytes_per_flow_ << '\n';
}

std::string ActiveFlowsModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"active-flows\", \"epochs\": " << epochs_
      << ", \"last_flows\": " << last_flows_
      << ", \"ewma_flows\": " << json::number(ewma_flows_)
      << ", \"peak_flows\": " << peak_flows_
      << ", \"flow_epochs\": " << total_flows_
      << ", \"last_bytes\": " << json::number(last_bytes_)
      << ", \"last_bytes_per_flow\": " << json::number(last_bytes_per_flow_)
      << '}';
  return out.str();
}

}  // namespace disco::modules
