// scanner-detector -- per-source fanout scan detection.
//
// Modeled on the CoMo exemplar scanner-detector.c (with the vertical-scan
// refinement of superaddr.c): a scanning source touches many distinct
// (dst ip, dst port) targets with very few packets each.  Per epoch, group
// the flow records by source address; a source is flagged when its distinct
// target count reaches `scanner_min_fanout` AND its mean estimated packets
// per target stays at or below `scanner_max_packets_per_flow`.  Flagged
// sources accumulate across epochs; the report lists the top_k by peak
// fanout.
//
// The packets-per-flow filter uses DISCO *size* estimates -- this is where
// the paper's claim that one SRAM budget serves both volume and size pays
// off: fanout alone flags busy servers, fanout + thin flows does not.
//
// Options read: top_k, scanner_min_fanout, scanner_max_packets_per_flow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "modules/module.hpp"

namespace disco::modules {

class ScannerDetectorModule final : public AnalysisModule {
 public:
  explicit ScannerDetectorModule(const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "scanner-detector";
  }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  struct Suspect {
    std::uint32_t src_ip = 0;
    std::size_t peak_fanout = 0;       ///< max distinct targets in one epoch
    double packets_per_target = 0.0;   ///< at the peak-fanout epoch
    std::uint64_t epochs_flagged = 0;
    std::uint64_t last_epoch = 0;
  };
  /// Current suspects, peak fanout descending, capped at top_k.
  [[nodiscard]] std::vector<Suspect> suspects() const;
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  ModuleOptions options_;
  std::unordered_map<std::uint32_t, Suspect> suspects_;
  std::uint64_t epochs_ = 0;
};

}  // namespace disco::modules
