// ModuleHost -- owns a set of analysis modules and drives their lifecycle.
//
// The host is the glue between a monitor's epoch subscription and the
// modules: attach() modules, subscribe_to() a monitor (or call on_epoch()
// by hand), and every rotate() fans the report out to every module with
// per-module telemetry around each dispatch:
//
//   modules.<name>.epochs_total   epochs delivered to the module
//   modules.<name>.flows_total    flow records the module has seen
//   modules.<name>.epoch_ns       wall time of each on_epoch call
//
// ('-' in module names maps to '_' in metric names, keeping the registry's
// dotted-path convention; docs/telemetry.md has the catalogue entry.)
//
// The factory functions at the bottom are the CLI's registry: every
// built-in module is constructible by name, so tools expose
// `--modules=topports,autofocus` without knowing the concrete types.
//
// Ownership/lifetime: the host must outlive any monitor it subscribed to
// (monitors hold a raw `this` in the subscriber closure), and like the
// modules themselves it is single-threaded -- drive it from the rotating /
// control-plane thread only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "modules/module.hpp"
#include "telemetry/metrics.hpp"

namespace disco::modules {

class ModuleHost {
 public:
  /// `telemetry_prefix` scopes the per-module metrics ("modules" gives the
  /// documented names above).
  explicit ModuleHost(std::string telemetry_prefix = "modules");

  ModuleHost(const ModuleHost&) = delete;
  ModuleHost& operator=(const ModuleHost&) = delete;

  /// Takes ownership of `module`.  Throws std::invalid_argument when a
  /// module with the same name is already attached (names are the CLI and
  /// export identity, so duplicates would shadow each other).  Returns the
  /// attached module for convenience.
  AnalysisModule& attach(std::unique_ptr<AnalysisModule> module);

  /// Delivers one epoch report to every module, in attach order.
  void on_epoch(const EpochReport& report);

  /// Forwards flush() / reset() to every module.
  void flush();
  void reset();

  /// Registers this host's on_epoch with a monitor's epoch subscription.
  /// Works for FlowMonitor, ShardedFlowMonitor, and PipelineMonitor -- any
  /// type with subscribe(EpochSubscriber).  The host must outlive `monitor`.
  template <typename Monitor>
  void subscribe_to(Monitor& monitor) {
    monitor.subscribe([this](const EpochReport& report) { on_epoch(report); });
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t epochs_dispatched() const noexcept {
    return epochs_dispatched_;
  }

  /// The attached module with this name, or nullptr.
  [[nodiscard]] AnalysisModule* find(std::string_view name) noexcept;
  [[nodiscard]] const AnalysisModule* find(std::string_view name) const noexcept;

  /// Concatenated text reports (one block per module, attach order).
  void export_text(std::ostream& out) const;

  /// Combined document: {"epochs": N, "modules": [<module docs>]}.
  [[nodiscard]] std::string export_json() const;

 private:
  struct Entry {
    std::unique_ptr<AnalysisModule> module;
    telemetry::Counter* epochs = nullptr;
    telemetry::Counter* flows = nullptr;
    telemetry::LatencyHistogram* epoch_ns = nullptr;
  };

  std::string telemetry_prefix_;
  std::vector<Entry> entries_;
  std::uint64_t epochs_dispatched_ = 0;
};

// --- factory ----------------------------------------------------------------

/// Names of every built-in module, in canonical (documentation) order.
[[nodiscard]] const std::vector<std::string>& available_modules();

/// Constructs a built-in module by name.  Throws std::invalid_argument for
/// unknown names (the message lists the valid ones).
[[nodiscard]] std::unique_ptr<AnalysisModule> make_module(
    std::string_view name, const ModuleOptions& options = {});

/// Parses a comma-separated selection ("topports,autofocus"; "all" or ""
/// selects every built-in) and constructs each named module.  Throws
/// std::invalid_argument on unknown names or duplicates.
[[nodiscard]] std::vector<std::unique_ptr<AnalysisModule>> make_modules(
    std::string_view selection, const ModuleOptions& options = {});

}  // namespace disco::modules
