// active-flows -- flow-count tracking with EWMA smoothing.
//
// Modeled on the CoMo exemplar active-flows.c: how many distinct flows were
// live in each epoch, smoothed so a collector can plot load without epoch
// noise, plus per-flow byte averages.  The flow count comes from the flow
// table (exact, not estimated); byte totals are DISCO estimates.
//
// Options read: ewma_alpha.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "modules/module.hpp"

namespace disco::modules {

class ActiveFlowsModule final : public AnalysisModule {
 public:
  explicit ActiveFlowsModule(const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "active-flows";
  }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t last_flows() const noexcept { return last_flows_; }
  [[nodiscard]] double ewma_flows() const noexcept { return ewma_flows_; }
  [[nodiscard]] std::size_t peak_flows() const noexcept { return peak_flows_; }
  [[nodiscard]] std::uint64_t total_flows() const noexcept { return total_flows_; }

 private:
  ModuleOptions options_;
  std::uint64_t epochs_ = 0;
  std::size_t last_flows_ = 0;
  std::size_t peak_flows_ = 0;
  std::uint64_t total_flows_ = 0;  ///< sum over epochs (flow-epochs)
  double ewma_flows_ = 0.0;
  double last_bytes_ = 0.0;
  double last_bytes_per_flow_ = 0.0;
};

}  // namespace disco::modules
