// Confidence intervals for AGGREGATES of DISCO estimates.
//
// core::DiscoParams::interval_for_estimate covers one flow's estimate; a
// module usually reports a sum over many flows (all traffic to port 443,
// all bytes under 10.1.2.0/24, ...).  Per-flow estimates are unbiased with
// relative standard deviation at most e = cv_bound(b) (Theorem 2 /
// Corollary 1), and distinct flows consume independent randomness, so for a
// sum X = sum_i X_i:
//
//   Var(X) = sum_i Var(X_i) <= e^2 * sum_i est_i^2
//
// giving the half-width  z * e * sqrt(sum est_i^2)  at confidence level z.
// This is strictly tighter than the naive z * e * sum(est_i) whenever more
// than one flow contributes -- aggregation *helps* accuracy, which is why
// the paper's per-port error plots beat its per-flow ones.  The accumulator
// below tracks exactly the two moments the bound needs.
// Since the collector landed (src/collect, docs/collector.md) the canonical
// implementation of this bound lives in core/estimate_merge.hpp, which also
// generalises it to heterogeneous bases and mixed DISCO/additive estimator
// fleets; interval() below delegates to core::aggregate_interval and is
// bit-identical to the historical in-place formula.
#pragma once

#include "core/estimate_merge.hpp"

namespace disco::modules {

/// A DISCO interval around an aggregate estimate.
struct AggregateInterval {
  double estimate = 0.0;
  double low = 0.0;   ///< clamped at 0: traffic cannot be negative
  double high = 0.0;
};

/// Streaming accumulator for a sum of independent per-flow DISCO estimates.
/// add() each member estimate; interval() yields the Theorem 2 normal-
/// approximation bound for the sum.  Copyable POD-style state, so modules
/// can keep one per reported key.
class EstimateAccumulator {
 public:
  void add(double estimate) {
    sum_ += estimate;
    sum_squares_ += estimate * estimate;
  }

  /// Merges another accumulator (e.g. the same key seen in a later epoch).
  void merge(const EstimateAccumulator& other) {
    sum_ += other.sum_;
    sum_squares_ += other.sum_squares_;
  }

  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double sum_squares() const noexcept { return sum_squares_; }

  /// Interval for the accumulated sum, at DISCO base `b` and the given
  /// two-sided confidence level.  `b` should be the max effective base over
  /// every epoch that contributed (EpochReport::volume_b / size_b), which
  /// keeps the bound conservative under RescaleB drift.
  [[nodiscard]] AggregateInterval interval(double b, double confidence) const {
    const core::MergedInterval merged =
        core::aggregate_interval(sum_, sum_squares_, b, confidence);
    return AggregateInterval{merged.estimate, merged.low, merged.high};
  }

 private:
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
};

}  // namespace disco::modules
