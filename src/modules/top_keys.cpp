#include "modules/top_keys.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "modules/json_util.hpp"

namespace disco::modules {

TopKeysModule::TopKeysModule(TopKeyKind kind, const ModuleOptions& options)
    : kind_(kind),
      name_(kind == TopKeyKind::DstPort ? "topports" : "topdest"),
      options_(options) {}

void TopKeysModule::on_epoch(const EpochReport& report) {
  for (const auto& flow : report.flows) {
    const std::uint32_t key = kind_ == TopKeyKind::DstPort
                                  ? flow.flow.dst_port
                                  : flow.flow.dst_ip;
    Agg& agg = aggregates_[key];
    agg.bytes.add(flow.bytes);
    agg.packets.add(flow.packets);
    agg.flows += 1;
  }
  volume_b_ = std::max(volume_b_, report.volume_b);
  size_b_ = std::max(size_b_, report.size_b);
  ++epochs_;
}

void TopKeysModule::reset() {
  aggregates_.clear();
  epochs_ = 0;
  volume_b_ = 0.0;
  size_b_ = 0.0;
}

std::vector<TopKeysModule::Entry> TopKeysModule::top() const {
  std::vector<Entry> entries;
  entries.reserve(aggregates_.size());
  for (const auto& [key, agg] : aggregates_) {
    Entry entry;
    entry.key = key;
    entry.bytes = agg.bytes.interval(volume_b_, options_.confidence);
    entry.packets = agg.packets.interval(size_b_, options_.confidence);
    entry.flows = agg.flows;
    entries.push_back(entry);
  }
  // Deterministic order: bytes descending, key ascending as tie-break.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.bytes.estimate != b.bytes.estimate) {
      return a.bytes.estimate > b.bytes.estimate;
    }
    return a.key < b.key;
  });
  if (entries.size() > options_.top_k) entries.resize(options_.top_k);
  return entries;
}

std::string TopKeysModule::render_key(std::uint32_t key) const {
  return kind_ == TopKeyKind::DstPort ? std::to_string(key) : json::ipv4(key);
}

void TopKeysModule::export_text(std::ostream& out) const {
  const char* label = kind_ == TopKeyKind::DstPort ? "port" : "dest";
  out << name_ << ": top " << options_.top_k << " by bytes after " << epochs_
      << " epoch(s)\n";
  for (const Entry& entry : top()) {
    out << "  " << label << ' ' << render_key(entry.key) << "  bytes "
        << entry.bytes.estimate << " [" << entry.bytes.low << ", "
        << entry.bytes.high << "]  packets " << entry.packets.estimate
        << "  flows " << entry.flows << '\n';
  }
}

std::string TopKeysModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"" << name_ << "\", \"epochs\": " << epochs_
      << ", \"confidence\": " << json::number(options_.confidence)
      << ", \"top\": [";
  bool first = true;
  for (const Entry& entry : top()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"key\": \"" << render_key(entry.key)
        << "\", \"bytes\": " << json::number(entry.bytes.estimate)
        << ", \"bytes_low\": " << json::number(entry.bytes.low)
        << ", \"bytes_high\": " << json::number(entry.bytes.high)
        << ", \"packets\": " << json::number(entry.packets.estimate)
        << ", \"packets_low\": " << json::number(entry.packets.low)
        << ", \"packets_high\": " << json::number(entry.packets.high)
        << ", \"flows\": " << entry.flows << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::modules
