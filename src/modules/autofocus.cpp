#include "modules/autofocus.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "modules/json_util.hpp"

namespace disco::modules {

AutofocusModule::AutofocusModule(const ModuleOptions& options)
    : options_(options) {}

void AutofocusModule::on_epoch(const EpochReport& report) {
  for (const auto& flow : report.flows) {
    leaves_[flow.flow.dst_ip].bytes.add(flow.bytes);
    total_bytes_ += flow.bytes;
  }
  volume_b_ = std::max(volume_b_, report.volume_b);
  ++epochs_;
  recompute();
}

void AutofocusModule::reset() {
  leaves_.clear();
  reported_.clear();
  total_bytes_ = 0.0;
  volume_b_ = 0.0;
  epochs_ = 0;
}

void AutofocusModule::recompute() {
  reported_.clear();
  if (total_bytes_ <= 0.0) return;
  const double threshold = options_.heavy_share * total_bytes_;

  // Per-node fold state at the current level: total traffic under the
  // prefix, traffic already explained by reported descendants, and the
  // moment sums needed for the interval on `bytes`.
  struct Node {
    EstimateAccumulator bytes;
    double explained = 0.0;
  };

  std::unordered_map<std::uint32_t, Node> level;
  level.reserve(leaves_.size());
  for (const auto& [ip, leaf] : leaves_) {
    level[ip].bytes = leaf.bytes;
  }

  // Bottom-up: examine each level, then fold pairs into the parent level.
  // A node is reported when its residual clears the threshold; a reported
  // node's FULL traffic counts as explained for its ancestors (AutoFocus's
  // compression rule), so ancestors only surface for what their reported
  // children do not cover.
  for (int length = 32; length >= 0; --length) {
    for (auto& [prefix, node] : level) {
      const double residual = node.bytes.sum() - node.explained;
      if (residual >= threshold) {
        Prefix out;
        out.prefix = prefix;
        out.length = length;
        out.bytes = node.bytes.sum();
        out.residual = residual;
        out.bytes_ci = node.bytes.interval(volume_b_, options_.confidence);
        reported_.push_back(out);
        node.explained = node.bytes.sum();
      }
    }
    if (length == 0) break;
    std::unordered_map<std::uint32_t, Node> parents;
    parents.reserve(level.size());
    const std::uint32_t parent_mask =
        length >= 2 ? ~((std::uint32_t{1} << (33 - length)) - 1) : 0;
    for (auto& [prefix, node] : level) {
      Node& parent = parents[prefix & parent_mask];
      parent.bytes.merge(node.bytes);
      parent.explained += node.explained;
    }
    level = std::move(parents);
  }

  std::sort(reported_.begin(), reported_.end(),
            [](const Prefix& a, const Prefix& b) {
              if (a.residual != b.residual) return a.residual > b.residual;
              if (a.length != b.length) return a.length > b.length;
              return a.prefix < b.prefix;
            });
}

void AutofocusModule::export_text(std::ostream& out) const {
  out << "autofocus: " << reported_.size() << " prefix(es) >= "
      << options_.heavy_share * 100.0 << "% residual of " << total_bytes_
      << " bytes, " << epochs_ << " epoch(s)\n";
  for (const Prefix& p : reported_) {
    out << "  " << json::ipv4(p.prefix) << '/' << p.length << "  bytes "
        << p.bytes << " [" << p.bytes_ci.low << ", " << p.bytes_ci.high
        << "]  residual " << p.residual << '\n';
  }
}

std::string AutofocusModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"autofocus\", \"epochs\": " << epochs_
      << ", \"total_bytes\": " << json::number(total_bytes_)
      << ", \"heavy_share\": " << json::number(options_.heavy_share)
      << ", \"prefixes\": [";
  bool first = true;
  for (const Prefix& p : reported_) {
    if (!first) out << ", ";
    first = false;
    out << "{\"prefix\": \"" << json::ipv4(p.prefix) << '/' << p.length
        << "\", \"bytes\": " << json::number(p.bytes)
        << ", \"bytes_low\": " << json::number(p.bytes_ci.low)
        << ", \"bytes_high\": " << json::number(p.bytes_ci.high)
        << ", \"residual\": " << json::number(p.residual) << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::modules
