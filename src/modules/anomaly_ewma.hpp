// anomaly-ewma -- EWMA-based volume anomaly alarms.
//
// Modeled on the CoMo exemplar anomaly-ewma.c: track exponentially weighted
// mean and variance of each epoch's total byte and packet estimates, and
// raise an alarm when an epoch deviates from its forecast by more than
// `alarm_sigmas` EW standard deviations.  Warmup epochs build the baseline
// before alarms may fire; the EWMA is updated with the anomalous value too
// (a level shift eventually becomes the new normal, as in the original).
//
// Options read: ewma_alpha, alarm_sigmas, alarm_warmup_epochs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "modules/module.hpp"

namespace disco::modules {

class AnomalyEwmaModule final : public AnalysisModule {
 public:
  explicit AnomalyEwmaModule(const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "anomaly-ewma";
  }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  struct Alarm {
    std::uint64_t epoch = 0;
    std::string_view metric;  ///< "bytes" or "packets" (static storage)
    double value = 0.0;
    double forecast = 0.0;  ///< EWMA mean before this epoch was folded in
    double sigma = 0.0;     ///< EW standard deviation before this epoch
  };
  [[nodiscard]] const std::vector<Alarm>& alarms() const noexcept {
    return alarms_;
  }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] double forecast_bytes() const noexcept { return bytes_.mean; }

 private:
  /// One EW-tracked series (bytes or packets).
  struct Series {
    double mean = 0.0;
    double variance = 0.0;
    /// Folds `value` in; returns true when it breached the alarm band
    /// (checked against the mean/variance BEFORE the update).
    bool update(double value, double alpha, double sigmas, bool armed,
                Alarm* alarm);
  };

  void track(Series& series, double value, std::string_view metric);

  ModuleOptions options_;
  Series bytes_;
  Series packets_;
  std::uint64_t epochs_ = 0;
  std::uint64_t current_epoch_ = 0;  ///< epoch id of the report in flight
  std::vector<Alarm> alarms_;

  /// Alarm history is capped; older alarms are dropped from the front.
  static constexpr std::size_t kMaxAlarms = 64;
};

}  // namespace disco::modules
