// Streaming analysis modules: the repo's user-extensible answer layer.
//
// The monitors produce per-flow estimates once per epoch (rotate()); what a
// production user wants is *answers* -- top ports, per-application
// breakdowns, scan alarms, hierarchical heavy hitters.  An AnalysisModule
// is a streaming consumer of epoch reports: it subscribes (via ModuleHost,
// host.hpp) to rotate() on any of the three monitors, keeps its own state
// across epochs, and exports its current answer as text and JSON.
//
// One ingest pipeline, many concurrent questions: every module attached to
// a host sees the same EpochReport, so adding a question never costs a
// second pass over the packet stream.
//
// Lifecycle (the contract a module author implements -- the full guide with
// a worked example is docs/modules.md):
//
//   construct -> [attach to ModuleHost] -> on_epoch() per rotate()
//             -> flush() at end of stream -> export_text()/export_json()
//             -> reset() to drop state and go again
//
// Threading: on_epoch() is invoked synchronously on whichever thread calls
// rotate() (the control-plane thread for PipelineMonitor), one epoch at a
// time.  A module therefore needs no internal locking as long as exports
// also happen on that thread between rotations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "flowtable/monitor.hpp"

namespace disco::modules {

using flowtable::FiveTuple;
using EpochReport = flowtable::FlowMonitor::EpochReport;
using FlowEstimate = flowtable::FlowMonitor::FlowEstimate;

/// Tuning knobs shared by the built-in modules (each documents which fields
/// it reads).  Defaults are sane for a 10k-100k flow link; docs/modules.md
/// tabulates them per module.
struct ModuleOptions {
  /// How many keys top-k style modules report (topports, topdest, scanner).
  std::size_t top_k = 10;
  /// Confidence level for every DISCO interval a module attaches.
  double confidence = 0.95;
  /// autofocus: a prefix is reported when its unexplained (residual) traffic
  /// reaches this share of the epoch's total bytes.
  double heavy_share = 0.05;
  /// anomaly-ewma / active-flows: smoothing factor in (0, 1]; higher reacts
  /// faster.
  double ewma_alpha = 0.3;
  /// anomaly-ewma: alarm when an epoch aggregate deviates from its EWMA by
  /// more than this many EW standard deviations.
  double alarm_sigmas = 3.0;
  /// anomaly-ewma: epochs observed before alarms may fire (the EWMA needs a
  /// baseline first).
  std::uint64_t alarm_warmup_epochs = 3;
  /// scanner-detector: minimum distinct (dst ip, dst port) targets touched
  /// by one source in one epoch to qualify as a scan candidate.
  std::size_t scanner_min_fanout = 32;
  /// scanner-detector: candidates must also average at most this many
  /// estimated packets per touched target (scans are thin).
  double scanner_max_packets_per_flow = 4.0;
};

/// Base class of every streaming analysis module.
///
/// Implementations own all their state; the host never inspects it.  The
/// export pair must be callable at any point between epochs (including
/// before the first one) and must not mutate state.
class AnalysisModule {
 public:
  virtual ~AnalysisModule() = default;

  /// Stable identifier: lowercase, [a-z0-9-], unique per host.  Used for
  /// CLI selection (--modules=topports,...), JSON export, and -- with '-'
  /// mapped to '_' -- telemetry naming (modules.<name>.*; docs/modules.md).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Consumes one epoch report.  Called once per rotate(), in epoch order,
  /// on the rotating thread.  The report outlives the call only until the
  /// next rotation: copy what you keep.
  virtual void on_epoch(const EpochReport& report) = 0;

  /// End of stream: finalise any cumulative state (e.g. close an open
  /// window).  Exports stay valid afterwards; further epochs may follow (a
  /// flush is a checkpoint, not a terminal state).
  virtual void flush() {}

  /// Drops all state, as if freshly constructed.
  virtual void reset() = 0;

  /// Human-readable report of the module's current answer.
  virtual void export_text(std::ostream& out) const = 0;

  /// Machine-readable report: one self-contained JSON object, shaped
  /// {"module": "<name>", "epochs": N, ...} -- the host stitches these into
  /// its combined document (docs/modules.md documents each built-in's
  /// schema).
  [[nodiscard]] virtual std::string export_json() const = 0;
};

}  // namespace disco::modules
