// topports / topdest -- top-k aggregation with DISCO confidence intervals.
//
// Modeled on the CoMo exemplars topports.c / topdest.c: fold every epoch's
// per-flow estimates into per-key aggregates (destination port or
// destination address), keep the running totals across epochs, and report
// the k heaviest keys by estimated bytes.  Unlike CoMo's exact counters,
// the inputs here are DISCO estimates, so each reported key carries a
// Theorem 2 confidence interval (confidence.hpp) at the max effective base
// observed -- the number a collector needs to decide whether #1 and #2 are
// really distinguishable.
//
// Options read: top_k, confidence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "modules/confidence.hpp"
#include "modules/module.hpp"

namespace disco::modules {

/// What a TopKeysModule aggregates by.
enum class TopKeyKind {
  DstPort,  ///< key = destination port (module name "topports")
  DstIp,    ///< key = destination IPv4 address (module name "topdest")
};

class TopKeysModule final : public AnalysisModule {
 public:
  explicit TopKeysModule(TopKeyKind kind, const ModuleOptions& options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  void on_epoch(const EpochReport& report) override;
  void reset() override;
  void export_text(std::ostream& out) const override;
  [[nodiscard]] std::string export_json() const override;

  /// One reported key, heaviest first.
  struct Entry {
    std::uint32_t key = 0;  ///< port number or IPv4 address, per kind()
    AggregateInterval bytes;   ///< estimate + Theorem 2 interval
    AggregateInterval packets;
    std::uint64_t flows = 0;  ///< flow records folded into this key
  };

  /// The current top-k, recomputed on demand from the cumulative aggregates.
  [[nodiscard]] std::vector<Entry> top() const;

  [[nodiscard]] TopKeyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  struct Agg {
    EstimateAccumulator bytes;
    EstimateAccumulator packets;
    std::uint64_t flows = 0;
  };

  [[nodiscard]] std::string render_key(std::uint32_t key) const;

  TopKeyKind kind_;
  std::string name_;
  ModuleOptions options_;
  std::unordered_map<std::uint32_t, Agg> aggregates_;
  std::uint64_t epochs_ = 0;
  double volume_b_ = 0.0;  ///< max effective base seen (conservative CIs)
  double size_b_ = 0.0;
};

}  // namespace disco::modules
