#include "modules/anomaly_ewma.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "modules/json_util.hpp"

namespace disco::modules {

AnomalyEwmaModule::AnomalyEwmaModule(const ModuleOptions& options)
    : options_(options) {}

bool AnomalyEwmaModule::Series::update(double value, double alpha,
                                       double sigmas, bool armed,
                                       Alarm* alarm) {
  bool fired = false;
  const double sigma = std::sqrt(variance);
  if (armed && sigma > 0.0 && std::abs(value - mean) > sigmas * sigma) {
    alarm->value = value;
    alarm->forecast = mean;
    alarm->sigma = sigma;
    fired = true;
  }
  const double delta = value - mean;
  mean += alpha * delta;
  // EW variance of the one-step forecast error (Roberts' EWMA control
  // chart form): decays old surprise, absorbs the new one.
  variance = (1.0 - alpha) * (variance + alpha * delta * delta);
  return fired;
}

void AnomalyEwmaModule::track(Series& series, double value,
                              std::string_view metric) {
  const bool armed = epochs_ >= options_.alarm_warmup_epochs;
  Alarm alarm;
  alarm.epoch = current_epoch_;
  alarm.metric = metric;
  if (series.update(value, options_.ewma_alpha, options_.alarm_sigmas, armed,
                    &alarm)) {
    if (alarms_.size() >= kMaxAlarms) {
      alarms_.erase(alarms_.begin());
    }
    alarms_.push_back(alarm);
  }
}

void AnomalyEwmaModule::on_epoch(const EpochReport& report) {
  current_epoch_ = report.epoch;
  track(bytes_, report.totals.bytes, "bytes");
  track(packets_, report.totals.packets, "packets");
  ++epochs_;
}

void AnomalyEwmaModule::reset() {
  bytes_ = {};
  packets_ = {};
  epochs_ = 0;
  current_epoch_ = 0;
  alarms_.clear();
}

void AnomalyEwmaModule::export_text(std::ostream& out) const {
  out << "anomaly-ewma: " << epochs_ << " epoch(s), " << alarms_.size()
      << " alarm(s)\n"
      << "  forecast bytes " << bytes_.mean << " sigma "
      << std::sqrt(bytes_.variance) << "  packets " << packets_.mean << '\n';
  for (const Alarm& alarm : alarms_) {
    out << "  ALARM epoch " << alarm.epoch << ' ' << alarm.metric << ' '
        << alarm.value << " vs forecast " << alarm.forecast << " (sigma "
        << alarm.sigma << ")\n";
  }
}

std::string AnomalyEwmaModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"anomaly-ewma\", \"epochs\": " << epochs_
      << ", \"forecast_bytes\": " << json::number(bytes_.mean)
      << ", \"forecast_packets\": " << json::number(packets_.mean)
      << ", \"alarms\": [";
  bool first = true;
  for (const Alarm& alarm : alarms_) {
    if (!first) out << ", ";
    first = false;
    out << "{\"epoch\": " << alarm.epoch << ", \"metric\": \"" << alarm.metric
        << "\", \"value\": " << json::number(alarm.value)
        << ", \"forecast\": " << json::number(alarm.forecast)
        << ", \"sigma\": " << json::number(alarm.sigma) << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::modules
