#include "modules/application.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "modules/json_util.hpp"

namespace disco::modules {

namespace {

AppClass classify_port(std::uint16_t port) noexcept {
  switch (port) {
    case 80: case 443: case 8080: case 8443: return AppClass::Web;
    case 53: return AppClass::Dns;
    case 25: case 110: case 143: case 465: case 587: case 993: case 995:
      return AppClass::Mail;
    case 22: return AppClass::Ssh;
    case 20: case 21: return AppClass::Ftp;
    case 123: return AppClass::Ntp;
    default: return AppClass::Other;
  }
}

}  // namespace

AppClass classify_flow(const FiveTuple& flow) noexcept {
  if (flow.protocol == 1) return AppClass::Icmp;
  // The server side of a connection carries the registered port; it is
  // almost always the smaller of the two (ephemeral ports start at 1024+).
  const std::uint16_t lo = std::min(flow.src_port, flow.dst_port);
  const std::uint16_t hi = std::max(flow.src_port, flow.dst_port);
  const AppClass by_lo = classify_port(lo);
  return by_lo != AppClass::Other ? by_lo : classify_port(hi);
}

std::string_view app_class_name(AppClass c) noexcept {
  switch (c) {
    case AppClass::Web: return "web";
    case AppClass::Dns: return "dns";
    case AppClass::Mail: return "mail";
    case AppClass::Ssh: return "ssh";
    case AppClass::Ftp: return "ftp";
    case AppClass::Ntp: return "ntp";
    case AppClass::Icmp: return "icmp";
    case AppClass::Other: return "other";
  }
  return "other";
}

ApplicationModule::ApplicationModule(const ModuleOptions& options)
    : options_(options) {}

void ApplicationModule::on_epoch(const EpochReport& report) {
  for (const auto& flow : report.flows) {
    ClassStats& stats = classes_[static_cast<std::size_t>(classify_flow(flow.flow))];
    stats.bytes.add(flow.bytes);
    stats.packets.add(flow.packets);
    stats.flows += 1;
    total_bytes_ += flow.bytes;
  }
  volume_b_ = std::max(volume_b_, report.volume_b);
  ++epochs_;
}

void ApplicationModule::reset() {
  classes_ = {};
  total_bytes_ = 0.0;
  epochs_ = 0;
  volume_b_ = 0.0;
}

void ApplicationModule::export_text(std::ostream& out) const {
  out << "application: byte share by class after " << epochs_ << " epoch(s)\n";
  for (std::size_t i = 0; i < kAppClassCount; ++i) {
    const ClassStats& stats = classes_[i];
    if (stats.flows == 0) continue;
    const double share =
        total_bytes_ > 0.0 ? stats.bytes.sum() / total_bytes_ : 0.0;
    out << "  " << app_class_name(static_cast<AppClass>(i)) << "  "
        << share * 100.0 << "%  bytes " << stats.bytes.sum() << "  flows "
        << stats.flows << '\n';
  }
}

std::string ApplicationModule::export_json() const {
  std::ostringstream out;
  out << "{\"module\": \"application\", \"epochs\": " << epochs_
      << ", \"total_bytes\": " << json::number(total_bytes_)
      << ", \"classes\": [";
  bool first = true;
  for (std::size_t i = 0; i < kAppClassCount; ++i) {
    const ClassStats& stats = classes_[i];
    if (stats.flows == 0) continue;
    if (!first) out << ", ";
    first = false;
    const auto ci = stats.bytes.interval(volume_b_, options_.confidence);
    const double share = total_bytes_ > 0.0 ? ci.estimate / total_bytes_ : 0.0;
    out << "{\"class\": \"" << app_class_name(static_cast<AppClass>(i))
        << "\", \"bytes\": " << json::number(ci.estimate)
        << ", \"bytes_low\": " << json::number(ci.low)
        << ", \"bytes_high\": " << json::number(ci.high)
        << ", \"share\": " << json::number(share)
        << ", \"packets\": " << json::number(stats.packets.sum())
        << ", \"flows\": " << stats.flows << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace disco::modules
