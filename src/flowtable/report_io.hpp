// Epoch-report serialisation: the export half of a measurement pipeline.
//
// A monitoring appliance rotates epochs and ships each interval's per-flow
// records to a collector.  This module defines the wire format ("DRPT"): a
// fixed header (epoch id, totals) followed by per-flow records (5-tuple,
// estimated bytes, estimated packets).  Binary for collectors, CSV for
// humans.  The collector side can re-aggregate reports from several
// appliances (see merge semantics in core/disco.hpp for counter-level
// aggregation; reports aggregate at the estimate level).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "flowtable/monitor.hpp"

namespace disco::flowtable {

inline constexpr std::uint32_t kReportMagic = 0x54505244;  // "DRPT" LE
/// v2 inserts the report's PressureStats (flowtable/pressure.hpp) between
/// the totals and the flow records, so a collector can tell a clean report
/// from one produced under table pressure.  v1 reports remain readable
/// (their pressure fields read as zero).
inline constexpr std::uint32_t kReportVersion = 2;

/// Writes one epoch report.  Throws std::runtime_error on I/O failure --
/// including short writes a buffered sink only surfaces at flush time: the
/// stream is flushed before this returns, so a report that came back without
/// an exception is fully on the wire.
void write_report(std::ostream& out, const FlowMonitor::EpochReport& report);

/// Reads a report written by write_report.  Throws std::runtime_error on
/// malformed input.
[[nodiscard]] FlowMonitor::EpochReport read_report(std::istream& in);

/// Human-readable CSV: header row then "src_ip,dst_ip,src_port,dst_port,
/// protocol,bytes,packets" per flow.
void write_report_csv(std::ostream& out, const FlowMonitor::EpochReport& report);

/// Collector-side aggregation: sums the totals and concatenates the flow
/// records of two reports (same-key flows from different appliances appear
/// as separate records; key-level fusion is the collector's policy choice).
[[nodiscard]] FlowMonitor::EpochReport combine_reports(
    const FlowMonitor::EpochReport& a, const FlowMonitor::EpochReport& b);

}  // namespace disco::flowtable
