// Epoch-report serialisation: the export half of a measurement pipeline.
//
// A monitoring appliance rotates epochs and ships each interval's per-flow
// records to a collector.  This module defines the wire format ("DRPT"): a
// fixed header (epoch id, totals) followed by per-flow records (5-tuple,
// estimated bytes, estimated packets).  Binary for collectors, CSV for
// humans.  The collector side (src/collect, docs/collector.md) re-aggregates
// reports from several appliances at the estimate level; counter-level
// aggregation is core/disco.hpp's merge.
//
// Version history (docs/collector.md has the byte-level tables):
//   v1  header (epoch, totals) + flow records.
//   v2  inserts the report's PressureStats between totals and flows, so a
//       collector can tell a clean report from one produced under pressure.
//   v3  adds a site id after the epoch, and the estimator error metadata
//       (effective bases volume_b/size_b, additive error units) after the
//       pressure block -- everything a collector needs to attach Theorem 2
//       / additive confidence intervals to estimates merged across sites.
// Readers accept all versions; absent fields read as zero (volume_b == 0
// marks a legacy report whose base is unknown).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "flowtable/monitor.hpp"

namespace disco::flowtable {

inline constexpr std::uint32_t kReportMagic = 0x54505244;  // "DRPT" LE
inline constexpr std::uint32_t kReportVersion = 3;

/// Writes one epoch report.  `site_id` identifies the producing monitor
/// process in a multi-site deployment (v3+ field; dropped when emitting
/// older versions).  `version` selects the wire version, for mixed fleets
/// where the collector is newer than some monitors.  Throws
/// std::runtime_error on I/O failure -- including short writes a buffered
/// sink only surfaces at flush time: the stream is flushed before this
/// returns, so a report that came back without an exception is fully on the
/// wire.
void write_report(std::ostream& out, const FlowMonitor::EpochReport& report,
                  std::uint32_t site_id = 0,
                  std::uint32_t version = kReportVersion);

/// Reads a report written by write_report (any supported version).  Throws
/// std::runtime_error on malformed input.  Fields a version lacks read as
/// zero; the v3 site id is not surfaced here (use ReportReader).
[[nodiscard]] FlowMonitor::EpochReport read_report(std::istream& in);

/// Streaming reader for a concatenated sequence of reports -- a spool file
/// a monitor appends to, or a collector socket.  next() distinguishes the
/// two ways a stream can end: cleanly BETWEEN reports (nullopt) versus
/// mid-report (std::runtime_error), so a truncated spool tail or a torn
/// socket write is detected, never silently dropped.
class ReportReader {
 public:
  explicit ReportReader(std::istream& in) : in_(&in) {}

  struct Item {
    std::uint32_t version = 0;  ///< wire version this report arrived as
    std::uint32_t site_id = 0;  ///< 0 for pre-v3 reports
    FlowMonitor::EpochReport report;
  };

  /// The next report, or nullopt at a clean end-of-stream.  Throws
  /// std::runtime_error on truncation or malformed bytes; the reader is
  /// then poisoned (every later call rethrows) because resynchronising
  /// inside a torn binary stream would risk double-counting.
  [[nodiscard]] std::optional<Item> next();

  /// Reports returned so far (spool-offset bookkeeping for pollers).
  [[nodiscard]] std::uint64_t items_read() const noexcept { return items_; }

 private:
  std::istream* in_;
  std::uint64_t items_ = 0;
  bool poisoned_ = false;
};

/// Human-readable CSV: header row then "src_ip,dst_ip,src_port,dst_port,
/// protocol,bytes,packets" per flow.
void write_report_csv(std::ostream& out, const FlowMonitor::EpochReport& report);

/// Collector-side aggregation: sums the totals and concatenates the flow
/// records of two reports (same-key flows from different appliances appear
/// as separate records; key-level fusion is the collector's policy choice
/// -- collect::Collector implements it with per-key accumulators).
[[nodiscard]] FlowMonitor::EpochReport combine_reports(
    const FlowMonitor::EpochReport& a, const FlowMonitor::EpochReport& b);

}  // namespace disco::flowtable
