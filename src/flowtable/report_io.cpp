#include "flowtable/report_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/fault.hpp"

namespace disco::flowtable {
namespace {

template <typename T>
void put(std::ostream& out, const T& value) {
  // kShortWrite models the collector socket / spool disk failing mid-report:
  // the sink stops taking bytes, which on a std::ostream manifests as badbit.
  // Compiles to the bare write() when DISCO_FAULTS is off.
  if (util::fault::fires(util::fault::Point::kShortWrite)) {
    out.setstate(std::ios::badbit);
    return;
  }
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("report_io: truncated input");
  return value;
}

}  // namespace

void write_report(std::ostream& out, const FlowMonitor::EpochReport& report) {
  put(out, kReportMagic);
  put(out, kReportVersion);
  put(out, report.epoch);
  put(out, report.totals.bytes);
  put(out, report.totals.packets);
  put(out, static_cast<std::uint64_t>(report.totals.flows));
  put(out, report.pressure.flows_rejected);
  put(out, report.pressure.flows_evicted);
  put(out, report.pressure.counters_saturated);
  put(out, report.pressure.rescale_events);
  put(out, static_cast<std::uint64_t>(report.flows.size()));
  for (const auto& flow : report.flows) {
    put(out, flow.flow.src_ip);
    put(out, flow.flow.dst_ip);
    put(out, flow.flow.src_port);
    put(out, flow.flow.dst_port);
    put(out, flow.flow.protocol);
    put(out, flow.bytes);
    put(out, flow.packets);
  }
  // A buffered sink can swallow every write() above and only hit the device
  // at flush time; flushing here makes short/failed writes THIS call's
  // exception instead of a silently truncated report discovered by the
  // collector.
  out.flush();
  if (!out) throw std::runtime_error("report_io: write failed");
}

FlowMonitor::EpochReport read_report(std::istream& in) {
  if (get<std::uint32_t>(in) != kReportMagic) {
    throw std::runtime_error("report_io: bad magic (not a DRPT report)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kReportVersion && version != 1) {
    throw std::runtime_error("report_io: unsupported version");
  }
  FlowMonitor::EpochReport report;
  report.epoch = get<std::uint64_t>(in);
  report.totals.bytes = get<double>(in);
  report.totals.packets = get<double>(in);
  report.totals.flows = static_cast<std::size_t>(get<std::uint64_t>(in));
  if (version >= 2) {
    report.pressure.flows_rejected = get<std::uint64_t>(in);
    report.pressure.flows_evicted = get<std::uint64_t>(in);
    report.pressure.counters_saturated = get<std::uint64_t>(in);
    report.pressure.rescale_events = get<std::uint64_t>(in);
  }
  const auto count = get<std::uint64_t>(in);
  report.flows.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowMonitor::FlowEstimate flow;
    flow.flow.src_ip = get<std::uint32_t>(in);
    flow.flow.dst_ip = get<std::uint32_t>(in);
    flow.flow.src_port = get<std::uint16_t>(in);
    flow.flow.dst_port = get<std::uint16_t>(in);
    flow.flow.protocol = get<std::uint8_t>(in);
    flow.bytes = get<double>(in);
    flow.packets = get<double>(in);
    report.flows.push_back(flow);
  }
  return report;
}

void write_report_csv(std::ostream& out, const FlowMonitor::EpochReport& report) {
  out << "src_ip,dst_ip,src_port,dst_port,protocol,bytes,packets\n";
  for (const auto& flow : report.flows) {
    out << flow.flow.src_ip << ',' << flow.flow.dst_ip << ','
        << flow.flow.src_port << ',' << flow.flow.dst_port << ','
        << static_cast<int>(flow.flow.protocol) << ',' << flow.bytes << ','
        << flow.packets << '\n';
  }
  out.flush();  // same short-write rationale as write_report
  if (!out) throw std::runtime_error("report_io: CSV write failed");
}

FlowMonitor::EpochReport combine_reports(const FlowMonitor::EpochReport& a,
                                         const FlowMonitor::EpochReport& b) {
  FlowMonitor::EpochReport merged;
  merged.epoch = a.epoch;
  merged.flows = a.flows;
  merged.flows.insert(merged.flows.end(), b.flows.begin(), b.flows.end());
  merged.totals.bytes = a.totals.bytes + b.totals.bytes;
  merged.totals.packets = a.totals.packets + b.totals.packets;
  merged.totals.flows = a.totals.flows + b.totals.flows;
  merged.pressure = a.pressure;
  merged.pressure += b.pressure;
  return merged;
}

}  // namespace disco::flowtable
