#include "flowtable/report_io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/fault.hpp"

namespace disco::flowtable {
namespace {

template <typename T>
void put(std::ostream& out, const T& value) {
  // kShortWrite models the collector socket / spool disk failing mid-report:
  // the sink stops taking bytes, which on a std::ostream manifests as badbit.
  // Compiles to the bare write() when DISCO_FAULTS is off.
  if (util::fault::fires(util::fault::Point::kShortWrite)) {
    out.setstate(std::ios::badbit);
    return;
  }
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("report_io: truncated input");
  return value;
}

// Body shared by read_report and ReportReader: everything after the magic.
[[nodiscard]] ReportReader::Item read_after_magic(std::istream& in) {
  ReportReader::Item item;
  const auto version = get<std::uint32_t>(in);
  if (version < 1 || version > kReportVersion) {
    throw std::runtime_error("report_io: unsupported version");
  }
  item.version = version;
  FlowMonitor::EpochReport& report = item.report;
  report.epoch = get<std::uint64_t>(in);
  if (version >= 3) item.site_id = get<std::uint32_t>(in);
  report.totals.bytes = get<double>(in);
  report.totals.packets = get<double>(in);
  report.totals.flows = static_cast<std::size_t>(get<std::uint64_t>(in));
  if (version >= 2) {
    report.pressure.flows_rejected = get<std::uint64_t>(in);
    report.pressure.flows_evicted = get<std::uint64_t>(in);
    report.pressure.counters_saturated = get<std::uint64_t>(in);
    report.pressure.rescale_events = get<std::uint64_t>(in);
  }
  if (version >= 3) {
    report.volume_b = get<double>(in);
    report.size_b = get<double>(in);
    report.volume_error_unit = get<double>(in);
    report.size_error_unit = get<double>(in);
  }
  const auto count = get<std::uint64_t>(in);
  report.flows.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowMonitor::FlowEstimate flow;
    flow.flow.src_ip = get<std::uint32_t>(in);
    flow.flow.dst_ip = get<std::uint32_t>(in);
    flow.flow.src_port = get<std::uint16_t>(in);
    flow.flow.dst_port = get<std::uint16_t>(in);
    flow.flow.protocol = get<std::uint8_t>(in);
    flow.bytes = get<double>(in);
    flow.packets = get<double>(in);
    report.flows.push_back(flow);
  }
  return item;
}

}  // namespace

void write_report(std::ostream& out, const FlowMonitor::EpochReport& report,
                  std::uint32_t site_id, std::uint32_t version) {
  if (version < 1 || version > kReportVersion) {
    // Programmer error (a caller invented a version), not an I/O failure.
    throw std::invalid_argument("report_io: cannot write unsupported version");
  }
  put(out, kReportMagic);
  put(out, version);
  put(out, report.epoch);
  if (version >= 3) put(out, site_id);
  put(out, report.totals.bytes);
  put(out, report.totals.packets);
  put(out, static_cast<std::uint64_t>(report.totals.flows));
  if (version >= 2) {
    put(out, report.pressure.flows_rejected);
    put(out, report.pressure.flows_evicted);
    put(out, report.pressure.counters_saturated);
    put(out, report.pressure.rescale_events);
  }
  if (version >= 3) {
    put(out, report.volume_b);
    put(out, report.size_b);
    put(out, report.volume_error_unit);
    put(out, report.size_error_unit);
  }
  put(out, static_cast<std::uint64_t>(report.flows.size()));
  for (const auto& flow : report.flows) {
    put(out, flow.flow.src_ip);
    put(out, flow.flow.dst_ip);
    put(out, flow.flow.src_port);
    put(out, flow.flow.dst_port);
    put(out, flow.flow.protocol);
    put(out, flow.bytes);
    put(out, flow.packets);
  }
  // A buffered sink can swallow every write() above and only hit the device
  // at flush time; flushing here makes short/failed writes THIS call's
  // exception instead of a silently truncated report discovered by the
  // collector.
  out.flush();
  if (!out) throw std::runtime_error("report_io: write failed");
}

FlowMonitor::EpochReport read_report(std::istream& in) {
  if (get<std::uint32_t>(in) != kReportMagic) {
    throw std::runtime_error("report_io: bad magic (not a DRPT report)");
  }
  return read_after_magic(in).report;
}

std::optional<ReportReader::Item> ReportReader::next() {
  if (poisoned_) {
    throw std::runtime_error("report_io: reader poisoned by earlier error");
  }
  // Clean end-of-stream is only clean BETWEEN reports: probe for the magic
  // byte-by-byte so EOF before any magic byte means "no more reports" while
  // EOF inside the magic -- or anywhere after it -- means truncation.
  std::uint32_t magic = 0;
  char* bytes = reinterpret_cast<char*>(&magic);
  for (std::size_t i = 0; i < sizeof(magic); ++i) {
    if (!in_->read(bytes + i, 1)) {
      if (i == 0 && in_->eof()) return std::nullopt;
      poisoned_ = true;
      throw std::runtime_error("report_io: truncated input");
    }
  }
  try {
    if (magic != kReportMagic) {
      throw std::runtime_error("report_io: bad magic (not a DRPT report)");
    }
    Item item = read_after_magic(*in_);
    ++items_;
    return item;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void write_report_csv(std::ostream& out, const FlowMonitor::EpochReport& report) {
  out << "src_ip,dst_ip,src_port,dst_port,protocol,bytes,packets\n";
  for (const auto& flow : report.flows) {
    out << flow.flow.src_ip << ',' << flow.flow.dst_ip << ','
        << flow.flow.src_port << ',' << flow.flow.dst_port << ','
        << static_cast<int>(flow.flow.protocol) << ',' << flow.bytes << ','
        << flow.packets << '\n';
  }
  out.flush();  // same short-write rationale as write_report
  if (!out) throw std::runtime_error("report_io: CSV write failed");
}

FlowMonitor::EpochReport combine_reports(const FlowMonitor::EpochReport& a,
                                         const FlowMonitor::EpochReport& b) {
  FlowMonitor::EpochReport merged;
  merged.epoch = a.epoch;
  merged.flows = a.flows;
  merged.flows.insert(merged.flows.end(), b.flows.begin(), b.flows.end());
  merged.totals.bytes = a.totals.bytes + b.totals.bytes;
  merged.totals.packets = a.totals.packets + b.totals.packets;
  merged.totals.flows = a.totals.flows + b.totals.flows;
  merged.pressure = a.pressure;
  merged.pressure += b.pressure;
  // Error metadata merges like the sharded rotate: max across contributors,
  // keeping any interval derived from the combined report conservative.
  merged.volume_b = std::max(a.volume_b, b.volume_b);
  merged.size_b = std::max(a.size_b, b.size_b);
  merged.volume_error_unit = std::max(a.volume_error_unit, b.volume_error_unit);
  merged.size_error_unit = std::max(a.size_error_unit, b.size_error_unit);
  return merged;
}

}  // namespace disco::flowtable
