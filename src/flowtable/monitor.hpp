// FlowMonitor -- the public-facing facade of the library.
//
// This is what a downstream user embeds in a monitoring appliance: a flow
// table plus DISCO counters for *both* flow volume (bytes) and flow size
// (packets), the combination the paper's abstract promises from one small
// SRAM budget.  The monitor supports on-line queries at any time (the
// "active counter" property: estimation on a per-packet basis without DRAM
// access), top-k reports, and a memory breakdown.
//
//   FlowMonitor monitor({.max_flows = 100'000, .counter_bits = 10,
//                        .max_flow_bytes = 1u << 30});
//   monitor.ingest(tuple, packet_len);
//   auto stats = monitor.query(tuple);          // bytes and packets, unbiased
//   auto heavy = monitor.top_k(10);             // heaviest flows by bytes
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/disco.hpp"
#include "flowtable/burst.hpp"
#include "flowtable/counter_bank.hpp"
#include "flowtable/flow_table.hpp"
#include "flowtable/pressure.hpp"
#include "telemetry/metrics.hpp"
#include "trace/packet.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {

class FlowMonitor {
 public:
  struct Config {
    std::size_t max_flows = 65536;
    int counter_bits = 10;                   ///< per counter, volume and size
    std::uint64_t max_flow_bytes = std::uint64_t{1} << 32;
    std::uint64_t max_flow_packets = std::uint64_t{1} << 24;
    std::uint64_t seed = 0x5eed;
    /// Attach core::DecisionTable fast paths to the volume and size
    /// counters (transcendental-free updates, bit-identical decisions --
    /// see src/core/decision_table.hpp).  Purely a performance knob: the
    /// estimate and RNG streams are unchanged either way, so it is not
    /// persisted by snapshot()/restore().
    bool decision_table = true;
    /// Registry prefix for this monitor's metrics (docs/telemetry.md).
    /// Instances sharing a prefix share counters; ShardedFlowMonitor gives
    /// each shard its own.  Not persisted by snapshot()/restore().
    std::string telemetry_prefix = "flow_monitor";
    /// What to do when the flow table fills or a counter would overflow
    /// (flowtable/pressure.hpp, docs/robustness.md).  The default -- reject
    /// new flows, clamp saturating counters -- is the seed behaviour and
    /// consumes no randomness, so it is bit-identical to builds that predate
    /// the policy layer.  Like telemetry_prefix this is runtime deployment
    /// config, not measurement state: snapshot()/restore() does not persist
    /// it (restore() preserves the *effects* -- the effective base b after
    /// RescaleB events and the cumulative PressureStats -- but the restoring
    /// process chooses its own policies).
    PressureConfig pressure{};
    /// Estimator family for the volume/size counters (counter_bank.hpp):
    /// DISCO logarithmic counters (default, multiplicative error), or
    /// additive-error counters (cheaper updates, additive noise floor).
    /// snapshot()/restore() is DISCO-only; additive mode throws there.
    /// Under AdditiveError the pressure saturation policy is moot (those
    /// counters rescale natively by halving; events surface through the
    /// usual rescale telemetry).
    EstimatorKind estimator = EstimatorKind::Disco;
    /// Batched-ingest lookahead (ingest_batch): hash and prefetch this many
    /// bursts ahead of the probe, then run the counter updates as a second
    /// pass over cache-warm slots.  0 restores the single-pass loop.  Only
    /// a memory-latency knob: estimates, RNG stream, and rejections are
    /// bit-identical either way (the two-phase walk needs admission ==
    /// Drop; other policies always take the single-pass loop).
    std::size_t prefetch_depth = 8;
    /// Advisory transparent-hugepage backing (util/hugepage.hpp) for the
    /// flow-table bucket/tag arrays and both counter stores -- trims TLB
    /// misses at millions of flows.  No-op off Linux or without THP.
    bool hugepages = false;
  };

  explicit FlowMonitor(const Config& config);

  /// Counts one packet.  Returns false if the packet's flow was rejected
  /// because the flow table is full (the packet is then unaccounted, and the
  /// rejection is visible in table().rejected_flows()).  `now_ns` stamps the
  /// flow's last activity for idle eviction; pass 0 when not using timers.
  bool ingest(const FiveTuple& flow, std::uint32_t length,
              std::uint64_t now_ns = 0);

  /// Counts a pre-aggregated burst of `packets` same-flow packets totalling
  /// `bytes` as ONE discounted volume update and ONE discounted size update
  /// (the paper's Section VI burst aggregation; src/pipeline feeds this).
  /// Unbiasedness is per-update (Theorem 1), so estimates stay unbiased for
  /// any grouping -- with lower variance than per-packet updates, since one
  /// large update replaces several small ones (Theorem 2).
  /// `ingest_burst(f, l, 1, t)` consumes the same randomness as
  /// `ingest(f, l, t)`, so burst and per-packet paths are interchangeable
  /// packet for packet.
  bool ingest_burst(const FiveTuple& flow, std::uint64_t bytes,
                    std::uint64_t packets, std::uint64_t now_ns = 0);

  /// Counts a batch of pre-aggregated bursts in order.  Exactly equivalent
  /// to calling ingest_burst once per element (same RNG stream, same
  /// estimates, same rejection behaviour); the batch form amortises
  /// telemetry updates and keeps the attached decision tables hot across
  /// the whole batch -- the pipeline's pop-batch loop feeds it directly.
  /// Returns the number of bursts accepted into the flow table.
  std::size_t ingest_batch(std::span<const FlowBurst> bursts);

  /// Per-flow on-line estimates.
  struct FlowEstimate {
    FiveTuple flow;
    double bytes = 0.0;
    double packets = 0.0;
  };

  [[nodiscard]] std::optional<FlowEstimate> query(const FiveTuple& flow) const;

  /// NetFlow-style inactive timeout: exports and removes every flow idle for
  /// longer than `idle_timeout_ns` as of `now_ns`, freeing table slots and
  /// counters for new flows mid-epoch.  Returns the evicted flows' final
  /// estimates.
  std::vector<FlowEstimate> evict_idle(std::uint64_t now_ns,
                                       std::uint64_t idle_timeout_ns);

  /// The k flows with the largest estimated byte volume, descending.
  [[nodiscard]] std::vector<FlowEstimate> top_k(std::size_t k) const;

  /// Totals across all tracked flows.
  struct Totals {
    double bytes = 0.0;
    double packets = 0.0;
    std::size_t flows = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// Memory breakdown in bits, the quantity the paper budgets.
  struct MemoryReport {
    std::size_t volume_counter_bits = 0;
    std::size_t size_counter_bits = 0;
    std::size_t flow_table_bits = 0;
    [[nodiscard]] std::size_t total() const noexcept {
      return volume_counter_bits + size_counter_bits + flow_table_bits;
    }
  };
  [[nodiscard]] MemoryReport memory() const;

  [[nodiscard]] const FlowTable& table() const noexcept { return table_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- measurement epochs ----------------------------------------------------
  /// Ends the current measurement interval: returns every tracked flow's
  /// final estimates, then clears the flow table and counters so the next
  /// interval starts fresh.  This is how a monitoring appliance exports
  /// per-interval reports without ever widening its SRAM.
  struct EpochReport {
    std::uint64_t epoch = 0;
    std::vector<FlowEstimate> flows;
    Totals totals;
    /// Cumulative degradation counters as of rotation, so a collector can
    /// tell a clean report from one produced under table pressure.
    PressureStats pressure{};
    /// Effective DISCO base of the volume / size counter arrays when this
    /// report was produced (b drifts upward under RescaleB).  Downstream
    /// consumers attach Theorem 2 confidence intervals to the estimates via
    /// core::DiscoParams(b).interval_for_estimate(...) -- the modules layer
    /// (src/modules, docs/modules.md) does exactly this.  Merged reports
    /// (sharded / pipeline rotate) carry the max across shards, so derived
    /// intervals are conservative for every member flow.
    double volume_b = 0.0;
    double size_b = 0.0;
    /// Additive-error mode only (Config.estimator == AdditiveError): the
    /// counting grid 2^s of each array when the report was produced -- the
    /// `unit` of core::theory::additive_error_sd.  0.0 under DISCO
    /// estimators (whose error is multiplicative, carried by volume_b /
    /// size_b).  Merged reports carry the max across shards, like the
    /// bases.
    double volume_error_unit = 0.0;
    double size_error_unit = 0.0;
  };
  EpochReport rotate();

  // --- epoch subscriptions ---------------------------------------------------
  /// A streaming consumer of epoch reports (the analysis-module layer's entry
  /// point -- see docs/modules.md).  Called synchronously inside rotate(), on
  /// the rotating thread, after the report is fully built and the tables have
  /// been cleared for the next epoch.
  using EpochSubscriber = std::function<void(const EpochReport&)>;

  /// Registers a subscriber for every future rotate().  Subscribers are
  /// invoked in registration order and may not call back into this monitor
  /// from inside the callback.  Like telemetry_prefix, subscriptions are
  /// runtime wiring, not measurement state: snapshot()/restore() does not
  /// persist them.
  void subscribe(EpochSubscriber subscriber);

  /// Number of registered epoch subscribers.
  [[nodiscard]] std::size_t subscriber_count() const noexcept {
    return subscribers_.size();
  }

  /// Cumulative degradation counters since construction (docs/robustness.md).
  /// Always current at API boundaries: saturation/rescale events are synced
  /// from the counter arrays at the end of every ingest call.
  [[nodiscard]] const PressureStats& pressure() const noexcept {
    return pressure_;
  }

  // --- checkpoint / restore ----------------------------------------------------
  /// Serialises the complete monitor state (config, flow table, counters,
  /// RNG stream position) so monitoring can resume bit-exactly after a
  /// restart.  Throws std::runtime_error on I/O failure.
  void snapshot(std::ostream& out) const;

  /// Rebuilds a monitor from a snapshot.  Throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static FlowMonitor restore(std::istream& in);

 private:
  /// Registry-owned metrics under config_.telemetry_prefix; plain pointers
  /// keep the monitor movable (restore() returns by value).
  struct Metrics {
    telemetry::Counter* ingests = nullptr;
    telemetry::Counter* rejects = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* queries = nullptr;
    telemetry::Gauge* occupancy = nullptr;
    telemetry::Counter* flows_rejected = nullptr;
    telemetry::Counter* flows_evicted = nullptr;
    telemetry::Counter* saturations = nullptr;
    telemetry::Counter* rescales = nullptr;
  };

  /// Admission policy fallback when insert_or_get rejects a new flow: picks a
  /// victim and applies config_.pressure.admission (RAP coin flip with
  /// counter inheritance, or deterministic evict-smallest).  Returns the slot
  /// the burst may use, or nullopt when the burst stays rejected.  Draws only
  /// from pressure_rng_, leaving the measurement stream rng_ untouched.
  [[nodiscard]] std::optional<std::uint32_t> admit_under_pressure(
      const FlowBurst& burst);

  /// Samples config_.pressure.victim_samples occupied slots uniformly and
  /// returns the one with the smallest volume counter (sampled-min victim
  /// selection -- see flowtable/pressure.hpp for the quantile argument).
  [[nodiscard]] std::optional<std::uint32_t> select_victim();

  /// Folds the counter arrays' overflow/rescale tallies into pressure_ and
  /// the telemetry registry (delta since the last sync).
  void sync_pressure_counters();

  /// The two-phase batched walk behind ingest_batch when prefetch_depth > 0
  /// and admission == Drop: hash + prefetch a few bursts ahead, probe the
  /// whole window recording slots, then apply the counter updates in burst
  /// order over cache-warm words.  Bit-identical to the single-pass loop
  /// (inserts draw no randomness; the adds run in the same order).
  std::size_t ingest_batch_prefetch(std::span<const FlowBurst> bursts);

  Config config_;
  FlowTable table_;
  CounterBank volume_;
  CounterBank size_;
  std::vector<std::uint64_t> last_seen_ns_;
  util::Rng rng_;
  /// Dedicated stream for pressure decisions (victim sampling, RAP coins):
  /// keeping it apart from rng_ means enabling a pressure policy never
  /// perturbs the measurement stream, so estimates under Drop stay
  /// bit-identical to a build without the policy layer.
  util::Rng pressure_rng_;
  PressureStats pressure_;
  std::uint64_t saturations_seen_ = 0;  ///< array overflows already synced
  std::uint64_t rescales_seen_ = 0;     ///< array rescales already synced
  std::uint64_t packets_seen_ = 0;
  std::uint64_t epoch_ = 0;
  Metrics metrics_;
  std::vector<EpochSubscriber> subscribers_;
};

}  // namespace disco::flowtable
