#include "flowtable/monitor.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace disco::flowtable {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4e4f4d44;  // "DMON" LE
constexpr std::uint32_t kSnapshotVersion = 2;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("FlowMonitor::restore: truncated snapshot");
  return value;
}

// FiveTuple is written field by field: the struct has padding bytes whose
// content is indeterminate and must not leak into the snapshot.
void put_tuple(std::ostream& out, const FiveTuple& t) {
  put(out, t.src_ip);
  put(out, t.dst_ip);
  put(out, t.src_port);
  put(out, t.dst_port);
  put(out, t.protocol);
}

[[nodiscard]] FiveTuple get_tuple(std::istream& in) {
  FiveTuple t;
  t.src_ip = get<std::uint32_t>(in);
  t.dst_ip = get<std::uint32_t>(in);
  t.src_port = get<std::uint16_t>(in);
  t.dst_port = get<std::uint16_t>(in);
  t.protocol = get<std::uint8_t>(in);
  return t;
}

}  // namespace

FlowMonitor::FlowMonitor(const Config& config)
    : config_(config),
      table_(config.max_flows),
      volume_(config.max_flows, config.counter_bits,
              core::DiscoParams::for_budget(config.max_flow_bytes, config.counter_bits)),
      size_(config.max_flows, config.counter_bits,
            core::DiscoParams::for_budget(config.max_flow_packets, config.counter_bits)),
      last_seen_ns_(config.max_flows, 0),
      rng_(config.seed) {
  if (config.decision_table) {
    // Transcendental-free update fast path; decisions stay bit-identical,
    // and the process-wide table cache de-duplicates across shards.
    volume_.attach_decision_table();
    size_.attach_decision_table();
  }
  auto& registry = telemetry::Registry::global();
  const std::string& prefix = config_.telemetry_prefix;
  metrics_.ingests = &registry.counter(prefix + ".ingest_total");
  metrics_.rejects = &registry.counter(prefix + ".ingest_rejected_total");
  metrics_.evictions = &registry.counter(prefix + ".evictions_total");
  metrics_.queries = &registry.counter(prefix + ".queries_total");
  metrics_.occupancy = &registry.gauge(prefix + ".table_occupancy");
}

bool FlowMonitor::ingest(const FiveTuple& flow, std::uint32_t length,
                         std::uint64_t now_ns) {
  return ingest_burst(flow, length, 1, now_ns);
}

bool FlowMonitor::ingest_burst(const FiveTuple& flow, std::uint64_t bytes,
                               std::uint64_t packets, std::uint64_t now_ns) {
  const FlowBurst burst{flow, bytes, packets, now_ns};
  return ingest_batch({&burst, 1}) == 1;
}

std::size_t FlowMonitor::ingest_batch(std::span<const FlowBurst> bursts) {
  std::size_t accepted = 0;
  std::uint64_t accepted_packets = 0;
  std::uint64_t rejected_packets = 0;
  for (const FlowBurst& burst : bursts) {
    const auto slot = table_.insert_or_get(burst.flow);
    if (!slot) {
      rejected_packets += burst.packets;
      continue;
    }
    // Volume before size, always: a burst of one packet consumes the RNG
    // stream exactly as the per-packet path did, keeping the batch,
    // per-burst, and per-packet paths (and snapshots taken across them)
    // interchangeable.
    volume_.add(*slot, burst.bytes, rng_);
    size_.add(*slot, burst.packets, rng_);
    last_seen_ns_[*slot] = burst.last_ns;
    accepted_packets += burst.packets;
    ++accepted;
  }
  packets_seen_ += accepted_packets;
  metrics_.rejects->inc(rejected_packets);
  metrics_.ingests->inc(accepted_packets);
  metrics_.occupancy->set(static_cast<std::int64_t>(table_.size()));
  return accepted;
}

std::vector<FlowMonitor::FlowEstimate> FlowMonitor::evict_idle(
    std::uint64_t now_ns, std::uint64_t idle_timeout_ns) {
  std::vector<FlowEstimate> evicted;
  std::vector<FiveTuple> victims;
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    const std::uint64_t seen = last_seen_ns_[slot];
    if (now_ns >= seen && now_ns - seen > idle_timeout_ns) {
      evicted.push_back(
          FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
      victims.push_back(key);
    }
  });
  for (const FiveTuple& key : victims) {
    const auto slot = table_.erase(key);
    if (slot) {
      volume_.set_value(*slot, 0);
      size_.set_value(*slot, 0);
      last_seen_ns_[*slot] = 0;
    }
  }
  metrics_.evictions->inc(evicted.size());
  metrics_.occupancy->set(static_cast<std::int64_t>(table_.size()));
  return evicted;
}

std::optional<FlowMonitor::FlowEstimate> FlowMonitor::query(const FiveTuple& flow) const {
  metrics_.queries->inc();
  const auto slot = table_.find(flow);
  if (!slot) return std::nullopt;
  return FlowEstimate{flow, volume_.estimate(*slot), size_.estimate(*slot)};
}

std::vector<FlowMonitor::FlowEstimate> FlowMonitor::top_k(std::size_t k) const {
  std::vector<FlowEstimate> all;
  all.reserve(table_.size());
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    all.push_back(FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
  });
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const FlowEstimate& a, const FlowEstimate& b) {
                      return a.bytes > b.bytes;
                    });
  all.resize(take);
  return all;
}

FlowMonitor::Totals FlowMonitor::totals() const {
  Totals t;
  t.flows = table_.size();
  table_.for_each([&](std::uint32_t slot, const FiveTuple&) {
    t.bytes += volume_.estimate(slot);
    t.packets += size_.estimate(slot);
  });
  return t;
}

FlowMonitor::MemoryReport FlowMonitor::memory() const {
  return MemoryReport{volume_.storage_bits(), size_.storage_bits(),
                      table_.storage_bits()};
}

FlowMonitor::EpochReport FlowMonitor::rotate() {
  EpochReport report;
  report.epoch = epoch_;
  report.totals = totals();
  report.flows.reserve(table_.size());
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    report.flows.push_back(
        FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
  });
  table_.clear();
  volume_.reset();
  size_.reset();
  std::fill(last_seen_ns_.begin(), last_seen_ns_.end(), 0);
  ++epoch_;
  metrics_.occupancy->set(0);
  return report;
}

void FlowMonitor::snapshot(std::ostream& out) const {
  put(out, kSnapshotMagic);
  put(out, kSnapshotVersion);
  put(out, static_cast<std::uint64_t>(config_.max_flows));
  put(out, static_cast<std::int32_t>(config_.counter_bits));
  put(out, config_.max_flow_bytes);
  put(out, config_.max_flow_packets);
  put(out, config_.seed);
  put(out, epoch_);
  put(out, packets_seen_);
  put(out, rng_.state());
  put(out, static_cast<std::uint64_t>(table_.size()));
  // Entries are keyed by flow, not slot: restore re-derives slot numbers, so
  // snapshots are insensitive to the eviction history's slot fragmentation.
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    put_tuple(out, key);
    put(out, volume_.value(slot));
    put(out, size_.value(slot));
    put(out, last_seen_ns_[slot]);
  });
  if (!out) throw std::runtime_error("FlowMonitor::snapshot: write failed");
}

FlowMonitor FlowMonitor::restore(std::istream& in) {
  if (get<std::uint32_t>(in) != kSnapshotMagic) {
    throw std::runtime_error("FlowMonitor::restore: bad magic");
  }
  if (get<std::uint32_t>(in) != kSnapshotVersion) {
    throw std::runtime_error("FlowMonitor::restore: unsupported version");
  }
  Config config;
  config.max_flows = static_cast<std::size_t>(get<std::uint64_t>(in));
  if (config.max_flows == 0 || config.max_flows > (std::size_t{1} << 26)) {
    // Sanity bound: a corrupted size field must not drive a multi-GB
    // allocation.  64M flows is far beyond any monitored-link population.
    throw std::runtime_error("FlowMonitor::restore: implausible max_flows");
  }
  config.counter_bits = get<std::int32_t>(in);
  config.max_flow_bytes = get<std::uint64_t>(in);
  config.max_flow_packets = get<std::uint64_t>(in);
  config.seed = get<std::uint64_t>(in);

  FlowMonitor monitor(config);
  monitor.epoch_ = get<std::uint64_t>(in);
  monitor.packets_seen_ = get<std::uint64_t>(in);
  monitor.rng_.set_state(get<util::Rng::State>(in));

  const auto flow_count = get<std::uint64_t>(in);
  if (flow_count > config.max_flows) {
    throw std::runtime_error("FlowMonitor::restore: snapshot exceeds capacity");
  }
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    const auto key = get_tuple(in);
    const auto volume_value = get<std::uint64_t>(in);
    const auto size_value = get<std::uint64_t>(in);
    const auto last_seen = get<std::uint64_t>(in);
    const auto slot = monitor.table_.insert_or_get(key);
    if (!slot) {
      throw std::runtime_error("FlowMonitor::restore: corrupt key section");
    }
    monitor.volume_.set_value(*slot, volume_value);
    monitor.size_.set_value(*slot, size_value);
    monitor.last_seen_ns_[*slot] = last_seen;
  }
  monitor.metrics_.occupancy->set(static_cast<std::int64_t>(monitor.table_.size()));
  return monitor;
}

}  // namespace disco::flowtable
