#include "flowtable/monitor.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "telemetry/registry.hpp"

namespace disco::flowtable {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4e4f4d44;  // "DMON" LE
// v3 adds the pressure block after the RNG state: pressure-stream RNG state,
// cumulative PressureStats, and each counter array's effective base b with
// its rescale count (so a RescaleB deployment restores to the scale its raw
// counters are actually expressed in).  v2 snapshots (no pressure block) are
// still readable.
constexpr std::uint32_t kSnapshotVersion = 3;
constexpr std::uint32_t kSnapshotVersionV2 = 2;

// Stream-splitting constant for the pressure RNG (same golden-ratio constant
// SplitMix64 uses): one user seed yields two decorrelated streams.
constexpr std::uint64_t kPressureSeedSalt = 0x9e3779b97f4a7c15ULL;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("FlowMonitor::restore: truncated snapshot");
  return value;
}

// FiveTuple is written field by field: the struct has padding bytes whose
// content is indeterminate and must not leak into the snapshot.
void put_tuple(std::ostream& out, const FiveTuple& t) {
  put(out, t.src_ip);
  put(out, t.dst_ip);
  put(out, t.src_port);
  put(out, t.dst_port);
  put(out, t.protocol);
}

[[nodiscard]] FiveTuple get_tuple(std::istream& in) {
  FiveTuple t;
  t.src_ip = get<std::uint32_t>(in);
  t.dst_ip = get<std::uint32_t>(in);
  t.src_port = get<std::uint16_t>(in);
  t.dst_port = get<std::uint16_t>(in);
  t.protocol = get<std::uint8_t>(in);
  return t;
}

}  // namespace

FlowMonitor::FlowMonitor(const Config& config)
    : config_(config),
      table_(config.max_flows),
      volume_(config.estimator, config.max_flows, config.counter_bits,
              config.max_flow_bytes),
      size_(config.estimator, config.max_flows, config.counter_bits,
            config.max_flow_packets),
      last_seen_ns_(config.max_flows, 0),
      rng_(config.seed),
      pressure_rng_(config.seed ^ kPressureSeedSalt) {
  if (config.decision_table) {
    // Transcendental-free update fast path; decisions stay bit-identical,
    // and the process-wide table cache de-duplicates across shards.
    // (CounterBank makes this a no-op for the additive estimator.)
    volume_.attach_decision_table();
    size_.attach_decision_table();
  }
  if (config.hugepages) {
    // Advisory only: the arrays are already allocated, and khugepaged
    // collapses the ranges in the background where THP is enabled.
    table_.advise_hugepages();
    volume_.advise_hugepages();
    size_.advise_hugepages();
  }
  if (config_.pressure.saturation == SaturationPolicy::RescaleB) {
    volume_.enable_rescale(config_.pressure.rescale_growth,
                           config_.pressure.max_rescales);
    size_.enable_rescale(config_.pressure.rescale_growth,
                         config_.pressure.max_rescales);
  }
  auto& registry = telemetry::Registry::global();
  const std::string& prefix = config_.telemetry_prefix;
  metrics_.ingests = &registry.counter(prefix + ".ingest_total");
  metrics_.rejects = &registry.counter(prefix + ".ingest_rejected_total");
  metrics_.evictions = &registry.counter(prefix + ".evictions_total");
  metrics_.queries = &registry.counter(prefix + ".queries_total");
  metrics_.occupancy = &registry.gauge(prefix + ".table_occupancy");
  metrics_.flows_rejected = &registry.counter(prefix + ".flows_rejected_total");
  metrics_.flows_evicted = &registry.counter(prefix + ".flows_evicted_total");
  metrics_.saturations = &registry.counter(prefix + ".counters_saturated_total");
  metrics_.rescales = &registry.counter(prefix + ".rescale_events_total");
}

bool FlowMonitor::ingest(const FiveTuple& flow, std::uint32_t length,
                         std::uint64_t now_ns) {
  return ingest_burst(flow, length, 1, now_ns);
}

bool FlowMonitor::ingest_burst(const FiveTuple& flow, std::uint64_t bytes,
                               std::uint64_t packets, std::uint64_t now_ns) {
  const FlowBurst burst{flow, bytes, packets, now_ns};
  return ingest_batch({&burst, 1}) == 1;
}

std::size_t FlowMonitor::ingest_batch(std::span<const FlowBurst> bursts) {
  // The two-phase prefetch walk is only taken under plain Drop admission:
  // the other policies evict and inherit counters between lookups, so
  // reordering probes ahead of updates would change what they observe.
  // Drop's inserts consume no randomness and never touch counters, which
  // is what makes the phases bit-identical to the single-pass loop.
  if (config_.prefetch_depth > 0 && bursts.size() > 1 &&
      config_.pressure.admission == AdmissionPolicy::Drop) {
    return ingest_batch_prefetch(bursts);
  }
  std::size_t accepted = 0;
  std::uint64_t accepted_packets = 0;
  std::uint64_t rejected_packets = 0;
  std::uint64_t rejected_bursts = 0;
  for (const FlowBurst& burst : bursts) {
    auto slot = table_.insert_or_get(burst.flow);
    if (!slot && config_.pressure.admission != AdmissionPolicy::Drop) {
      // Policy decisions run entirely off the counter-update path: the
      // transcendental-free hot loop below is untouched, and only the
      // dedicated pressure RNG is consumed.
      slot = admit_under_pressure(burst);
    }
    if (!slot) {
      rejected_packets += burst.packets;
      ++rejected_bursts;
      continue;
    }
    // Volume before size, always: a burst of one packet consumes the RNG
    // stream exactly as the per-packet path did, keeping the batch,
    // per-burst, and per-packet paths (and snapshots taken across them)
    // interchangeable.
    volume_.add(*slot, burst.bytes, rng_);
    size_.add(*slot, burst.packets, rng_);
    last_seen_ns_[*slot] = burst.last_ns;
    accepted_packets += burst.packets;
    ++accepted;
  }
  packets_seen_ += accepted_packets;
  pressure_.flows_rejected += rejected_bursts;
  metrics_.rejects->inc(rejected_packets);
  metrics_.flows_rejected->inc(rejected_bursts);
  metrics_.ingests->inc(accepted_packets);
  metrics_.occupancy->set(static_cast<std::int64_t>(table_.size()));
  sync_pressure_counters();
  return accepted;
}

std::size_t FlowMonitor::ingest_batch_prefetch(
    std::span<const FlowBurst> bursts) {
  // Window-at-a-time so the scratch arrays live on the stack regardless of
  // the caller's batch size (the pipeline pops <= 256 messages per visit).
  constexpr std::size_t kWindow = 256;
  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  std::uint64_t hashes[kWindow];
  std::uint32_t slots[kWindow];

  std::size_t accepted = 0;
  std::uint64_t accepted_packets = 0;
  std::uint64_t rejected_packets = 0;
  std::uint64_t rejected_bursts = 0;
  for (std::size_t base = 0; base < bursts.size(); base += kWindow) {
    const std::size_t n = std::min(kWindow, bursts.size() - base);
    const std::span<const FlowBurst> window = bursts.subspan(base, n);
    const std::size_t depth = std::min(config_.prefetch_depth, n);

    // Phase 1: probe the window, keeping `depth` tag-group prefetches in
    // flight ahead of the probes, and pull each accepted slot's counter
    // words toward the cache for phase 2.
    for (std::size_t j = 0; j < depth; ++j) {
      hashes[j] = FlowTable::hash_of(window[j].flow);
      table_.prefetch(hashes[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j + depth < n) {
        hashes[j + depth] = FlowTable::hash_of(window[j + depth].flow);
        table_.prefetch(hashes[j + depth]);
      }
      const auto slot = table_.insert_or_get(window[j].flow, hashes[j]);
      if (slot) {
        slots[j] = *slot;
        volume_.prefetch(*slot);
        size_.prefetch(*slot);
      } else {
        slots[j] = kNoSlot;
      }
    }

    // Phase 2: counter updates in burst order -- the same volume-then-size
    // sequence per burst as the single-pass loop, so the RNG stream is
    // identical burst for burst.
    for (std::size_t j = 0; j < n; ++j) {
      const FlowBurst& burst = window[j];
      if (slots[j] == kNoSlot) {
        rejected_packets += burst.packets;
        ++rejected_bursts;
        continue;
      }
      volume_.add(slots[j], burst.bytes, rng_);
      size_.add(slots[j], burst.packets, rng_);
      last_seen_ns_[slots[j]] = burst.last_ns;
      accepted_packets += burst.packets;
      ++accepted;
    }
  }
  packets_seen_ += accepted_packets;
  pressure_.flows_rejected += rejected_bursts;
  metrics_.rejects->inc(rejected_packets);
  metrics_.flows_rejected->inc(rejected_bursts);
  metrics_.ingests->inc(accepted_packets);
  metrics_.occupancy->set(static_cast<std::int64_t>(table_.size()));
  sync_pressure_counters();
  return accepted;
}

std::optional<std::uint32_t> FlowMonitor::admit_under_pressure(
    const FlowBurst& burst) {
  const auto victim = select_victim();
  if (!victim) return std::nullopt;

  if (config_.pressure.admission == AdmissionPolicy::RandomizedAdmission) {
    // RAP: admit with probability proportional to the newcomer's increment
    // relative to the victim's standing -- p = l / (l + f(c_victim)).  A
    // mouse burst displacing an elephant is vanishingly unlikely; a heavy
    // flow wins a slot within O(1/its traffic share) bursts.
    const double l = static_cast<double>(burst.bytes);
    const double standing = volume_.estimate(*victim);
    const double p = (l + standing) > 0.0 ? l / (l + standing) : 1.0;
    if (!pressure_rng_.bernoulli(p)) return std::nullopt;
  }

  const FiveTuple victim_key = table_.keys()[*victim];
  table_.erase(victim_key);
  // The freed slot is the next one insert_or_get hands out (LIFO free list),
  // so the newcomer lands exactly where the victim's counters live.
  const auto slot = table_.insert_or_get(burst.flow);
  if (slot && config_.pressure.admission == AdmissionPolicy::EvictSmallest) {
    // EvictSmallest discards the victim's estimate; the newcomer starts
    // cold.  RAP skips this -- the newcomer INHERITS the victim's counters,
    // so no admitted traffic is ever under-counted (the RAP invariant).
    volume_.set_value(*slot, 0);
    size_.set_value(*slot, 0);
    last_seen_ns_[*slot] = 0;
  }
  ++pressure_.flows_evicted;
  metrics_.flows_evicted->inc();
  return slot;
}

std::optional<std::uint32_t> FlowMonitor::select_victim() {
  const std::size_t slots = table_.keys().size();
  if (slots == 0 || table_.size() == 0) return std::nullopt;
  const unsigned samples = std::max(1u, config_.pressure.victim_samples);
  std::optional<std::uint32_t> best;
  std::uint64_t best_counter = ~std::uint64_t{0};
  for (unsigned s = 0; s < samples; ++s) {
    const auto idx = static_cast<std::uint32_t>(
        pressure_rng_.uniform_u64(0, slots - 1));
    if (!table_.slot_used(idx)) continue;  // freed slot awaiting reuse
    const std::uint64_t c = volume_.value(idx);
    if (!best || c < best_counter) {
      best = idx;
      best_counter = c;
    }
  }
  if (best) return best;
  // Every sample hit a freed slot (only possible right after heavy idle
  // eviction); fall back to the first occupied one.
  for (std::uint32_t i = 0; i < slots; ++i) {
    if (table_.slot_used(i)) return i;
  }
  return std::nullopt;
}

void FlowMonitor::sync_pressure_counters() {
  const std::uint64_t saturations =
      volume_.overflow_count() + size_.overflow_count();
  const std::uint64_t rescales =
      volume_.rescale_count() + size_.rescale_count();
  if (saturations > saturations_seen_) {
    const std::uint64_t d = saturations - saturations_seen_;
    pressure_.counters_saturated += d;
    metrics_.saturations->inc(d);
    saturations_seen_ = saturations;
  }
  if (rescales > rescales_seen_) {
    const std::uint64_t d = rescales - rescales_seen_;
    pressure_.rescale_events += d;
    metrics_.rescales->inc(d);
    rescales_seen_ = rescales;
  }
}

std::vector<FlowMonitor::FlowEstimate> FlowMonitor::evict_idle(
    std::uint64_t now_ns, std::uint64_t idle_timeout_ns) {
  std::vector<FlowEstimate> evicted;
  std::vector<FiveTuple> victims;
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    const std::uint64_t seen = last_seen_ns_[slot];
    if (now_ns >= seen && now_ns - seen > idle_timeout_ns) {
      evicted.push_back(
          FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
      victims.push_back(key);
    }
  });
  for (const FiveTuple& key : victims) {
    const auto slot = table_.erase(key);
    if (slot) {
      volume_.set_value(*slot, 0);
      size_.set_value(*slot, 0);
      last_seen_ns_[*slot] = 0;
    }
  }
  metrics_.evictions->inc(evicted.size());
  metrics_.occupancy->set(static_cast<std::int64_t>(table_.size()));
  return evicted;
}

std::optional<FlowMonitor::FlowEstimate> FlowMonitor::query(const FiveTuple& flow) const {
  metrics_.queries->inc();
  const auto slot = table_.find(flow);
  if (!slot) return std::nullopt;
  return FlowEstimate{flow, volume_.estimate(*slot), size_.estimate(*slot)};
}

std::vector<FlowMonitor::FlowEstimate> FlowMonitor::top_k(std::size_t k) const {
  std::vector<FlowEstimate> all;
  all.reserve(table_.size());
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    all.push_back(FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
  });
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const FlowEstimate& a, const FlowEstimate& b) {
                      return a.bytes > b.bytes;
                    });
  all.resize(take);
  return all;
}

FlowMonitor::Totals FlowMonitor::totals() const {
  Totals t;
  t.flows = table_.size();
  table_.for_each([&](std::uint32_t slot, const FiveTuple&) {
    t.bytes += volume_.estimate(slot);
    t.packets += size_.estimate(slot);
  });
  return t;
}

FlowMonitor::MemoryReport FlowMonitor::memory() const {
  return MemoryReport{volume_.storage_bits(), size_.storage_bits(),
                      table_.storage_bits()};
}

void FlowMonitor::subscribe(EpochSubscriber subscriber) {
  if (subscriber) subscribers_.push_back(std::move(subscriber));
}

FlowMonitor::EpochReport FlowMonitor::rotate() {
  sync_pressure_counters();
  EpochReport report;
  report.epoch = epoch_;
  report.totals = totals();
  report.pressure = pressure_;
  report.volume_b = volume_.effective_b();
  report.size_b = size_.effective_b();
  report.volume_error_unit = volume_.error_unit();
  report.size_error_unit = size_.error_unit();
  report.flows.reserve(table_.size());
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    report.flows.push_back(
        FlowEstimate{key, volume_.estimate(slot), size_.estimate(slot)});
  });
  table_.clear();
  volume_.reset();
  size_.reset();
  // DiscoArray::reset() zeroes per-epoch overflow tallies but keeps the
  // rescaled scale (a deployment property); realign the sync watermarks.
  saturations_seen_ = 0;
  rescales_seen_ = volume_.rescale_count() + size_.rescale_count();
  std::fill(last_seen_ns_.begin(), last_seen_ns_.end(), 0);
  ++epoch_;
  metrics_.occupancy->set(0);
  // Notify after the monitor is fully reset for the next epoch, so a
  // subscriber observing telemetry or table state sees the new epoch.
  for (const auto& subscriber : subscribers_) subscriber(report);
  return report;
}

void FlowMonitor::snapshot(std::ostream& out) const {
  if (config_.estimator != EstimatorKind::Disco) {
    // The v3 format stores each array's effective base b -- a DISCO-mode
    // notion.  Additive deployments are epoch-scoped (rotate() re-exacts
    // the scale), so checkpointing them has no use case yet; fail loudly
    // rather than write a snapshot restore() would misinterpret.
    throw std::runtime_error(
        "FlowMonitor::snapshot: additive-error estimator is not snapshotable");
  }
  put(out, kSnapshotMagic);
  put(out, kSnapshotVersion);
  put(out, static_cast<std::uint64_t>(config_.max_flows));
  put(out, static_cast<std::int32_t>(config_.counter_bits));
  put(out, config_.max_flow_bytes);
  put(out, config_.max_flow_packets);
  put(out, config_.seed);
  put(out, epoch_);
  put(out, packets_seen_);
  put(out, rng_.state());
  // v3 pressure block: stream state, cumulative stats, and the effective
  // scale of each counter array (b drifts upward under RescaleB; the raw
  // counter values below are only meaningful under the b they were written
  // with).
  put(out, pressure_rng_.state());
  put(out, pressure_.flows_rejected);
  put(out, pressure_.flows_evicted);
  put(out, pressure_.counters_saturated);
  put(out, pressure_.rescale_events);
  put(out, volume_.effective_b());
  put(out, volume_.rescale_count());
  put(out, size_.effective_b());
  put(out, size_.rescale_count());
  put(out, static_cast<std::uint64_t>(table_.size()));
  // Entries are keyed by flow, not slot: restore re-derives slot numbers, so
  // snapshots are insensitive to the eviction history's slot fragmentation.
  table_.for_each([&](std::uint32_t slot, const FiveTuple& key) {
    put_tuple(out, key);
    put(out, volume_.value(slot));
    put(out, size_.value(slot));
    put(out, last_seen_ns_[slot]);
  });
  if (!out) throw std::runtime_error("FlowMonitor::snapshot: write failed");
}

FlowMonitor FlowMonitor::restore(std::istream& in) {
  if (get<std::uint32_t>(in) != kSnapshotMagic) {
    throw std::runtime_error("FlowMonitor::restore: bad magic");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kSnapshotVersion && version != kSnapshotVersionV2) {
    throw std::runtime_error("FlowMonitor::restore: unsupported version");
  }
  Config config;
  config.max_flows = static_cast<std::size_t>(get<std::uint64_t>(in));
  if (config.max_flows == 0 || config.max_flows > (std::size_t{1} << 26)) {
    // Sanity bound: a corrupted size field must not drive a multi-GB
    // allocation.  64M flows is far beyond any monitored-link population.
    throw std::runtime_error("FlowMonitor::restore: implausible max_flows");
  }
  config.counter_bits = get<std::int32_t>(in);
  config.max_flow_bytes = get<std::uint64_t>(in);
  config.max_flow_packets = get<std::uint64_t>(in);
  config.seed = get<std::uint64_t>(in);

  FlowMonitor monitor(config);
  monitor.epoch_ = get<std::uint64_t>(in);
  monitor.packets_seen_ = get<std::uint64_t>(in);
  monitor.rng_.set_state(get<util::Rng::State>(in));

  if (version >= 3) {
    monitor.pressure_rng_.set_state(get<util::Rng::State>(in));
    monitor.pressure_.flows_rejected = get<std::uint64_t>(in);
    monitor.pressure_.flows_evicted = get<std::uint64_t>(in);
    monitor.pressure_.counters_saturated = get<std::uint64_t>(in);
    monitor.pressure_.rescale_events = get<std::uint64_t>(in);
    const auto volume_b = get<double>(in);
    const auto volume_rescales = get<std::uint64_t>(in);
    const auto size_b = get<double>(in);
    const auto size_rescales = get<std::uint64_t>(in);
    if (!(volume_b > 1.0) || !(size_b > 1.0)) {
      throw std::runtime_error("FlowMonitor::restore: implausible base b");
    }
    monitor.volume_.restore_scale(volume_b, volume_rescales);
    monitor.size_.restore_scale(size_b, size_rescales);
    // Freshly constructed arrays have zero overflow tallies; rescale counts
    // were just restored, so the sync watermarks start exactly there.
    monitor.saturations_seen_ = 0;
    monitor.rescales_seen_ = volume_rescales + size_rescales;
  }

  const auto flow_count = get<std::uint64_t>(in);
  if (flow_count > config.max_flows) {
    throw std::runtime_error("FlowMonitor::restore: snapshot exceeds capacity");
  }
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    const auto key = get_tuple(in);
    const auto volume_value = get<std::uint64_t>(in);
    const auto size_value = get<std::uint64_t>(in);
    const auto last_seen = get<std::uint64_t>(in);
    const auto slot = monitor.table_.insert_or_get(key);
    if (!slot) {
      throw std::runtime_error("FlowMonitor::restore: corrupt key section");
    }
    monitor.volume_.set_value(*slot, volume_value);
    monitor.size_.set_value(*slot, size_value);
    monitor.last_seen_ns_[*slot] = last_seen;
  }
  monitor.metrics_.occupancy->set(static_cast<std::int64_t>(monitor.table_.size()));
  return monitor;
}

}  // namespace disco::flowtable
