// A pre-aggregated run of same-flow packets -- the unit of batched ingest.
//
// Produced by the pipeline's BurstCoalescer (src/pipeline/burst_coalescer.hpp
// aliases this as BurstUpdate) and consumed by FlowMonitor::ingest_burst /
// ingest_batch as ONE discounted volume update and ONE discounted size
// update.  Lives in flowtable so the monitor's batch API does not depend on
// the pipeline layer above it.
#pragma once

#include <cstdint>

#include "flowtable/flow_key.hpp"

namespace disco::flowtable {

struct FlowBurst {
  FiveTuple flow{};
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t last_ns = 0;  ///< newest packet's timestamp (idle eviction)
};

}  // namespace disco::flowtable
