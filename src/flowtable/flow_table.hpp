// Fixed-capacity open-addressing flow table, generic over the key type.
//
// A line card allocates its flow table once; there is no rehashing at line
// rate.  BasicFlowTable maps keys to dense counter slots with linear
// probing, supports tombstone-free deletion (backward shift) with slot
// recycling, and reports (rather than hides) overload: when the table is
// full, new flows are rejected and counted.  Probe statistics make hash
// behaviour observable in tests.
//
// Key requirements: equality-comparable, hashable via std::hash<Key>, and
// cheap to copy (keys are stored twice: bucket array + slot-ordered list).
// `FlowTable` is the IPv4 5-tuple instantiation; `FlowTableV6` the IPv6 one.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "flowtable/flow_key.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "util/fault.hpp"

namespace disco::flowtable {

template <typename Key>
class BasicFlowTable {
 public:
  /// `capacity` is the number of flows the table can hold; the bucket array
  /// is sized to the next power of two of capacity / max_load.
  explicit BasicFlowTable(std::size_t capacity, double max_load = 0.75)
      : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("FlowTable: zero capacity");
    if (capacity > (std::size_t{1} << 32)) {
      // Also guards next_pow2 against overflow on absurd (e.g. corrupted
      // snapshot) capacities.
      throw std::invalid_argument("FlowTable: capacity beyond 2^32 flows");
    }
    if (!(max_load > 0.0) || max_load > 0.95) {
      throw std::invalid_argument("FlowTable: max_load must be in (0, 0.95]");
    }
    const std::size_t buckets = next_pow2(
        static_cast<std::size_t>(static_cast<double>(capacity) / max_load) + 1);
    buckets_.resize(buckets);
    mask_ = buckets - 1;
    keys_.reserve(capacity);
    probe_hist_ =
        &telemetry::Registry::global().histogram("flow_table.probe_length");
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Returns the dense slot of `key`, inserting it if new.  nullopt when the
  /// table is at capacity and `key` is not present.
  [[nodiscard]] std::optional<std::uint32_t> insert_or_get(const Key& key) {
    ++lookups_;
    std::size_t i = probe_start(key);
    for (std::uint64_t len = 1;; ++len) {
      ++probes_;
      Bucket& b = buckets_[i];
      if (b.slot == kEmpty) {
        probe_hist_->record(len);
        // kAllocFailure models the slot allocator running dry early (e.g. a
        // smaller SRAM part): each new-flow allocation attempt consults the
        // armed plan, and an injected failure takes the exact code path a
        // genuinely full table does.  Compiles to the plain capacity check
        // when DISCO_FAULTS is off.
        if (util::fault::fires(util::fault::Point::kAllocFailure) ||
            size_ >= capacity_) {
          ++rejected_;
          return std::nullopt;
        }
        std::uint32_t slot;
        if (!free_slots_.empty()) {
          slot = free_slots_.back();
          free_slots_.pop_back();
          keys_[slot] = key;
          slot_used_[slot] = true;
        } else {
          slot = static_cast<std::uint32_t>(keys_.size());
          keys_.push_back(key);
          slot_used_.push_back(true);
        }
        b.key = key;
        b.slot = slot;
        ++size_;
        return slot;
      }
      if (b.key == key) {
        probe_hist_->record(len);
        return b.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Lookup without insertion.
  [[nodiscard]] std::optional<std::uint32_t> find(const Key& key) const noexcept {
    ++lookups_;
    std::size_t i = probe_start(key);
    for (std::uint64_t len = 1;; ++len) {
      ++probes_;
      const Bucket& b = buckets_[i];
      if (b.slot == kEmpty) {
        probe_hist_->record(len);
        return std::nullopt;
      }
      if (b.key == key) {
        probe_hist_->record(len);
        return b.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes a flow, freeing its slot for reuse by later inserts (the
  /// monitor's idle-eviction path).  Uses backward-shift deletion so probe
  /// sequences stay intact without tombstones.  Returns the freed slot, or
  /// nullopt if the key was absent.
  std::optional<std::uint32_t> erase(const Key& key) noexcept {
    ++lookups_;
    std::size_t i = probe_start(key);
    for (std::uint64_t len = 1;; ++len) {
      ++probes_;
      Bucket& b = buckets_[i];
      if (b.slot == kEmpty) {
        probe_hist_->record(len);
        return std::nullopt;
      }
      if (b.key == key) {
        probe_hist_->record(len);
        break;
      }
      i = (i + 1) & mask_;
    }
    const std::uint32_t freed = buckets_[i].slot;
    slot_used_[freed] = false;
    free_slots_.push_back(freed);
    --size_;

    // Backward-shift deletion: pull cluster members whose home position lies
    // at or before the gap, keeping every probe sequence unbroken.
    std::size_t gap = i;
    std::size_t k = (i + 1) & mask_;
    while (buckets_[k].slot != kEmpty) {
      const std::size_t home = probe_start(buckets_[k].key);
      // Move bucket k into the gap unless its home lies cyclically within
      // (gap, k] -- in that case it is already as close to home as allowed.
      const bool home_in_between = gap < k ? (home > gap && home <= k)
                                           : (home > gap || home <= k);
      if (!home_in_between) {
        buckets_[gap] = buckets_[k];
        gap = k;
      }
      k = (k + 1) & mask_;
    }
    buckets_[gap].slot = kEmpty;
    return freed;
  }

  /// Calls fn(slot, key) for every active flow.  Slots are NOT necessarily
  /// dense once erase() has been used; iterate via this, not by index.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t slot = 0; slot < keys_.size(); ++slot) {
      if (slot_used_[slot]) fn(slot, keys_[slot]);
    }
  }

  /// Keys in slot order; entries of freed slots are stale -- pair with
  /// for_each()/slot_used() when erase() is in play.
  [[nodiscard]] const std::vector<Key>& keys() const noexcept { return keys_; }
  [[nodiscard]] bool slot_used(std::uint32_t slot) const noexcept {
    return slot < slot_used_.size() && slot_used_[slot];
  }

  // --- observability --------------------------------------------------------
  [[nodiscard]] std::uint64_t rejected_flows() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t total_probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t total_lookups() const noexcept { return lookups_; }
  [[nodiscard]] double mean_probe_length() const noexcept {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(probes_) / static_cast<double>(lookups_);
  }

  /// SRAM footprint of the table structure itself (keys + slot ids).
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return buckets_.size() * (sizeof(Key) + 4) * 8;
  }

  /// Removes all flows (start of a new measurement epoch).  Capacity and
  /// statistics counters are preserved.
  void clear() noexcept {
    for (Bucket& b : buckets_) b.slot = kEmpty;
    keys_.clear();
    slot_used_.clear();
    free_slots_.clear();
    size_ = 0;
  }

 private:
  struct Bucket {
    Key key{};
    std::uint32_t slot = kEmpty;
  };
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  static std::size_t next_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  [[nodiscard]] std::size_t probe_start(const Key& key) const noexcept {
    return std::hash<Key>{}(key)&mask_;
  }

  std::size_t capacity_;
  std::size_t mask_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<Key> keys_;
  std::vector<bool> slot_used_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  mutable std::uint64_t probes_ = 0;
  mutable std::uint64_t lookups_ = 0;
  std::uint64_t rejected_ = 0;
  // Shared per-process probe-length distribution (docs/telemetry.md); the
  // registry owns it, so tables stay freely copyable and movable.
  telemetry::LatencyHistogram* probe_hist_ = nullptr;
};

/// The IPv4 5-tuple table used by FlowMonitor.
using FlowTable = BasicFlowTable<FiveTuple>;

/// IPv6 instantiation (see flow_key.hpp for the key).
using FlowTableV6 = BasicFlowTable<FiveTupleV6>;

}  // namespace disco::flowtable
