// Fixed-capacity open-addressing flow table, generic over the key type.
//
// A line card allocates its flow table once; there is no rehashing at line
// rate.  BasicFlowTable maps keys to dense counter slots with linear
// probing, supports tombstone-free deletion (backward shift) with slot
// recycling, and reports (rather than hides) overload: when the table is
// full, new flows are rejected and counted.  Probe statistics make hash
// behaviour observable in tests.
//
// Layout (PR "SIMD tag-probe"): alongside the bucket array the table keeps
// a parallel 1-byte fingerprint ("tag") per bucket -- 0 for empty, else the
// top 7 hash bits with the high bit set (flowtable/tag_probe.hpp).  Probes
// scan tags in groups of 16 with one SSE2 compare+movemask (scalar byte
// loop on other targets -- bit-identical masks), so a lookup touches one
// cache line of tags and runs a full-key compare only on the ~1/128 of
// occupied buckets whose tag collides.  The probe SEQUENCE is untouched:
// candidates are still examined in linear-probe order from `hash & mask`,
// and the first empty bucket still terminates, so probe statistics, insert
// positions, and backward-shift deletion behave exactly as the scalar
// table always did.  The tag array carries a 16-byte mirror of its first
// group past the end, so an unaligned group read never wraps mid-load.
//
// The UseSimd template knob exists for the differential suite, which runs
// the SSE2 and scalar engines side by side in one binary and requires
// bit-identical tables; production code uses the default.
//
// Key requirements: equality-comparable, hashable via std::hash<Key>, and
// cheap to copy (keys are stored twice: bucket array + slot-ordered list).
// `FlowTable` is the IPv4 5-tuple instantiation; `FlowTableV6` the IPv6 one.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "flowtable/flow_key.hpp"
#include "flowtable/tag_probe.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "util/fault.hpp"
#include "util/hugepage.hpp"
#include "util/prefetch.hpp"

namespace disco::flowtable {

template <typename Key, bool UseSimd = tagprobe::kHaveSimd>
class BasicFlowTable {
 public:
  /// `capacity` is the number of flows the table can hold; the bucket array
  /// is sized to the next power of two of capacity / max_load.
  explicit BasicFlowTable(std::size_t capacity, double max_load = 0.75)
      : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("FlowTable: zero capacity");
    if (capacity > (std::size_t{1} << 32)) {
      // Also guards next_pow2 against overflow on absurd (e.g. corrupted
      // snapshot) capacities.
      throw std::invalid_argument("FlowTable: capacity beyond 2^32 flows");
    }
    if (!(max_load > 0.0) || max_load > 0.95) {
      throw std::invalid_argument("FlowTable: max_load must be in (0, 0.95]");
    }
    // At least one probe group of buckets, so the group scan's wrap-around
    // mirror (below) is always a full group.  Sizing guarantees
    // buckets > capacity, so a probe can always terminate at an empty tag.
    std::size_t buckets = next_pow2(
        static_cast<std::size_t>(static_cast<double>(capacity) / max_load) + 1);
    if (buckets < tagprobe::kGroupWidth) buckets = tagprobe::kGroupWidth;
    buckets_.resize(buckets);
    // kGroupWidth extra tags mirror tags_[0..kGroupWidth): a group read
    // starting near the end runs into the copy instead of wrapping.
    tags_.assign(buckets + tagprobe::kGroupWidth, tagprobe::kEmptyTag);
    mask_ = buckets - 1;
    keys_.reserve(capacity);
    probe_hist_ =
        &telemetry::Registry::global().histogram("flow_table.probe_length");
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// The hash this table probes with -- exposed so batch callers can hash
  /// once, prefetch(), then probe with the insert_or_get/find overloads
  /// below without hashing twice.
  [[nodiscard]] static std::uint64_t hash_of(const Key& key) noexcept {
    return static_cast<std::uint64_t>(std::hash<Key>{}(key));
  }

  /// Pulls the tag group and bucket line for `hash` toward the cache --
  /// the batched-ingest path issues these a few keys ahead of the probes.
  void prefetch(std::uint64_t hash) const noexcept {
    const std::size_t i = static_cast<std::size_t>(hash) & mask_;
    util::prefetch_read(tags_.data() + i);
    util::prefetch_read(buckets_.data() + i);
  }

  /// Returns the dense slot of `key`, inserting it if new.  nullopt when the
  /// table is at capacity and `key` is not present.
  [[nodiscard]] std::optional<std::uint32_t> insert_or_get(const Key& key) {
    return insert_or_get(key, hash_of(key));
  }

  /// insert_or_get with a caller-supplied hash (must equal hash_of(key)).
  [[nodiscard]] std::optional<std::uint32_t> insert_or_get(
      const Key& key, std::uint64_t hash) {
    const Probe p = probe(key, hash);
    account(p.length);
    if (p.found) return buckets_[p.index].slot;
    // kAllocFailure models the slot allocator running dry early (e.g. a
    // smaller SRAM part): each new-flow allocation attempt consults the
    // armed plan, and an injected failure takes the exact code path a
    // genuinely full table does.  Compiles to the plain capacity check
    // when DISCO_FAULTS is off.
    if (util::fault::fires(util::fault::Point::kAllocFailure) ||
        size_ >= capacity_) {
      ++rejected_;
      return std::nullopt;
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      keys_[slot] = key;
      slot_used_[slot] = true;
    } else {
      slot = static_cast<std::uint32_t>(keys_.size());
      keys_.push_back(key);
      slot_used_.push_back(true);
    }
    Bucket& b = buckets_[p.index];
    b.key = key;
    b.slot = slot;
    set_tag(p.index, tagprobe::make_tag(hash));
    ++size_;
    return slot;
  }

  /// Lookup without insertion.
  [[nodiscard]] std::optional<std::uint32_t> find(const Key& key) const noexcept {
    return find(key, hash_of(key));
  }

  /// find with a caller-supplied hash (must equal hash_of(key)).
  [[nodiscard]] std::optional<std::uint32_t> find(
      const Key& key, std::uint64_t hash) const noexcept {
    const Probe p = probe(key, hash);
    account(p.length);
    if (!p.found) return std::nullopt;
    return buckets_[p.index].slot;
  }

  /// Removes a flow, freeing its slot for reuse by later inserts (the
  /// monitor's idle-eviction path).  Uses backward-shift deletion so probe
  /// sequences stay intact without tombstones.  Returns the freed slot, or
  /// nullopt if the key was absent.
  std::optional<std::uint32_t> erase(const Key& key) noexcept {
    const Probe p = probe(key, hash_of(key));
    account(p.length);
    if (!p.found) return std::nullopt;
    const std::size_t i = p.index;
    const std::uint32_t freed = buckets_[i].slot;
    slot_used_[freed] = false;
    free_slots_.push_back(freed);
    --size_;

    // Backward-shift deletion: pull cluster members whose home position lies
    // at or before the gap, keeping every probe sequence unbroken.  Tags
    // move with their buckets.
    std::size_t gap = i;
    std::size_t k = (i + 1) & mask_;
    while (tags_[k] != tagprobe::kEmptyTag) {
      const std::uint64_t h = hash_of(buckets_[k].key);
      const std::size_t home = static_cast<std::size_t>(h) & mask_;
      // Move bucket k into the gap unless its home lies cyclically within
      // (gap, k] -- in that case it is already as close to home as allowed.
      const bool home_in_between = gap < k ? (home > gap && home <= k)
                                           : (home > gap || home <= k);
      if (!home_in_between) {
        buckets_[gap] = buckets_[k];
        set_tag(gap, tagprobe::make_tag(h));
        gap = k;
      }
      k = (k + 1) & mask_;
    }
    buckets_[gap].slot = kEmpty;
    set_tag(gap, tagprobe::kEmptyTag);
    return freed;
  }

  /// Calls fn(slot, key) for every active flow.  Slots are NOT necessarily
  /// dense once erase() has been used; iterate via this, not by index.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t slot = 0; slot < keys_.size(); ++slot) {
      if (slot_used_[slot]) fn(slot, keys_[slot]);
    }
  }

  /// Keys in slot order; entries of freed slots are stale -- pair with
  /// for_each()/slot_used() when erase() is in play.
  [[nodiscard]] const std::vector<Key>& keys() const noexcept { return keys_; }
  [[nodiscard]] bool slot_used(std::uint32_t slot) const noexcept {
    return slot < slot_used_.size() && slot_used_[slot];
  }

  // --- observability --------------------------------------------------------
  [[nodiscard]] std::uint64_t rejected_flows() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t total_probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t total_lookups() const noexcept { return lookups_; }
  [[nodiscard]] double mean_probe_length() const noexcept {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(probes_) / static_cast<double>(lookups_);
  }

  /// SRAM footprint of the table structure itself (keys + slot ids + tags).
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return (buckets_.size() * (sizeof(Key) + 4) + tags_.size()) * 8;
  }

  /// Asks the kernel to back the bucket and tag arrays with transparent
  /// huge pages (util/hugepage.hpp; advisory, Linux-only).  Call once after
  /// construction; at millions of flows this trims probe-path TLB misses.
  void advise_hugepages() noexcept {
    util::advise_hugepages(buckets_.data(), buckets_.size() * sizeof(Bucket));
    util::advise_hugepages(tags_.data(), tags_.size());
  }

  /// Removes all flows (start of a new measurement epoch).  Capacity and
  /// statistics counters are preserved.
  void clear() noexcept {
    for (Bucket& b : buckets_) b.slot = kEmpty;
    tags_.assign(tags_.size(), tagprobe::kEmptyTag);
    keys_.clear();
    slot_used_.clear();
    free_slots_.clear();
    size_ = 0;
  }

 private:
  struct Bucket {
    Key key{};
    std::uint32_t slot = kEmpty;
  };
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  /// Probe-length histogram sampling: 1 in 64 lookups (starting with the
  /// first, so the metric is live as soon as traffic flows).  record()
  /// already honors both telemetry toggles -- a compile-time stub under
  /// DISCO_TELEMETRY=0, a relaxed enabled() load when runtime-disabled --
  /// but when telemetry IS on, each record pays three relaxed fetch_adds
  /// on the registry-shared histogram.  Sampling takes that off the
  /// per-lookup path while keeping the distribution shape; the measured
  /// before/after is in docs/telemetry.md.
  static constexpr std::uint64_t kProbeSampleMask = 63;

  static std::size_t next_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  /// Where a lookup for `key` terminated: the matching bucket (found) or
  /// the first empty bucket of its probe sequence (!found -- the insert
  /// position).  `length` counts buckets from home through the terminal
  /// one, exactly the scalar table's per-bucket probe count.
  struct Probe {
    std::size_t index = 0;
    std::uint64_t length = 0;
    bool found = false;
  };

  [[nodiscard]] Probe probe(const Key& key, std::uint64_t hash) const noexcept {
    const std::uint8_t tag = tagprobe::make_tag(hash);
    const std::size_t start = static_cast<std::size_t>(hash) & mask_;
    std::size_t base = start;
    for (;;) {
      const tagprobe::GroupMask g =
          tagprobe::scan<UseSimd>(tags_.data() + base, tag);
      // Candidates past the first empty tag belong to other probe
      // sequences (linear probing never stores a key beyond its first
      // empty), so only bits below it are examined -- in probe order.
      const unsigned first_empty =
          g.empty != 0 ? static_cast<unsigned>(std::countr_zero(g.empty))
                       : static_cast<unsigned>(tagprobe::kGroupWidth);
      std::uint32_t match = g.match;
      while (match != 0) {
        const unsigned off = static_cast<unsigned>(std::countr_zero(match));
        if (off >= first_empty) break;
        const std::size_t idx = (base + off) & mask_;
        if (buckets_[idx].key == key) {
          return Probe{idx, ((idx - start) & mask_) + 1, true};
        }
        match &= match - 1;
      }
      if (first_empty < tagprobe::kGroupWidth) {
        const std::size_t idx = (base + first_empty) & mask_;
        return Probe{idx, ((idx - start) & mask_) + 1, false};
      }
      base = (base + tagprobe::kGroupWidth) & mask_;
    }
  }

  /// Folds one completed lookup into the probe statistics (every lookup)
  /// and the shared histogram (sampled).
  void account(std::uint64_t probe_length) const noexcept {
    probes_ += probe_length;
    if (((lookups_++) & kProbeSampleMask) == 0) {
      probe_hist_->record(probe_length);
    }
  }

  /// Writes a tag, keeping the wrap-around mirror of the first group in
  /// sync.
  void set_tag(std::size_t i, std::uint8_t tag) noexcept {
    tags_[i] = tag;
    if (i < tagprobe::kGroupWidth) tags_[buckets_.size() + i] = tag;
  }

  std::size_t capacity_;
  std::size_t mask_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<std::uint8_t> tags_;
  std::vector<Key> keys_;
  std::vector<bool> slot_used_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  mutable std::uint64_t probes_ = 0;
  mutable std::uint64_t lookups_ = 0;
  std::uint64_t rejected_ = 0;
  // Shared per-process probe-length distribution (docs/telemetry.md); the
  // registry owns it, so tables stay freely copyable and movable.
  telemetry::LatencyHistogram* probe_hist_ = nullptr;
};

/// The IPv4 5-tuple table used by FlowMonitor.
using FlowTable = BasicFlowTable<FiveTuple>;

/// IPv6 instantiation (see flow_key.hpp for the key).
using FlowTableV6 = BasicFlowTable<FiveTupleV6>;

}  // namespace disco::flowtable
