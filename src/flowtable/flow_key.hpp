// Flow identity: the classic 5-tuple and its hash.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

namespace disco::flowtable {

/// IPv4 5-tuple.  Ports are host byte order; protocol is the IP protocol
/// number (6 = TCP, 17 = UDP, ...).
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

/// 64-bit mix of the tuple fields (xorshift-multiply avalanche, the same
/// family as SplitMix64's finaliser).  Deterministic across runs -- flow
/// placement in the table is part of an experiment's reproducible state.
[[nodiscard]] constexpr std::uint64_t hash_tuple(const FiveTuple& t) noexcept {
  std::uint64_t h = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
  h ^= (static_cast<std::uint64_t>(t.src_port) << 24) ^
       (static_cast<std::uint64_t>(t.dst_port) << 8) ^ t.protocol;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// IPv6 5-tuple.  Addresses are 16 raw bytes in network order.
struct FiveTupleV6 {
  std::array<std::uint8_t, 16> src_ip{};
  std::array<std::uint8_t, 16> dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FiveTupleV6&, const FiveTupleV6&) = default;
};

/// 64-bit mix of the IPv6 tuple: fold the addresses through the same
/// multiply-xorshift avalanche, 8 bytes at a time.
[[nodiscard]] inline std::uint64_t hash_tuple(const FiveTupleV6& t) noexcept {
  auto fold = [](std::uint64_t h, const std::uint8_t* p) {
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i) w = (w << 8) | p[i];
    h ^= w;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  std::uint64_t h = (static_cast<std::uint64_t>(t.src_port) << 40) ^
                    (static_cast<std::uint64_t>(t.dst_port) << 8) ^ t.protocol;
  h = fold(h, t.src_ip.data());
  h = fold(h, t.src_ip.data() + 8);
  h = fold(h, t.dst_ip.data());
  h = fold(h, t.dst_ip.data() + 8);
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace disco::flowtable

template <>
struct std::hash<disco::flowtable::FiveTuple> {
  std::size_t operator()(const disco::flowtable::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(disco::flowtable::hash_tuple(t));
  }
};

template <>
struct std::hash<disco::flowtable::FiveTupleV6> {
  std::size_t operator()(const disco::flowtable::FiveTupleV6& t) const noexcept {
    return static_cast<std::size_t>(disco::flowtable::hash_tuple(t));
  }
};
