#include "flowtable/sharded_monitor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/registry.hpp"

namespace disco::flowtable {

ShardedFlowMonitor::ShardedFlowMonitor(const Config& config) {
  if (config.shards == 0 || config.shards > 1024) {
    throw std::invalid_argument("ShardedFlowMonitor: shards must be in [1, 1024]");
  }
  auto& registry = telemetry::Registry::global();
  shards_.reserve(config.shards);
  for (unsigned s = 0; s < config.shards; ++s) {
    FlowMonitor::Config shard_config = config.base;
    // Split capacity with 25% headroom per shard: hashing is not perfectly
    // balanced, and a shard rejecting flows while siblings have room would
    // be a silent capacity loss.
    shard_config.max_flows =
        std::max<std::size_t>(16, (config.base.max_flows / config.shards) * 5 / 4);
    shard_config.seed = config.base.seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    shard_config.telemetry_prefix =
        "sharded_monitor.shard_" + std::to_string(s);
    shards_.push_back(std::make_unique<Shard>(shard_config));
    shards_.back()->ingests =
        &registry.counter(shard_config.telemetry_prefix + ".ingest_total");
    shards_.back()->contention = &registry.counter(
        shard_config.telemetry_prefix + ".lock_contention_total");
  }
}

bool ShardedFlowMonitor::ingest(const FiveTuple& flow, std::uint32_t length,
                                std::uint64_t now_ns) {
  Shard& shard = *shards_[shard_of(flow)];
  // try-lock-then-lock makes cross-thread contention countable without
  // slowing the uncontended path (one CAS either way).
  bool contended = false;
  const util::MutexLock lock(shard.mutex, contended);
  if (contended) shard.contention->inc();
  return shard.monitor.ingest(flow, length, now_ns);
}

std::uint64_t ShardedFlowMonitor::shard_ingests(unsigned shard) const {
  return shards_.at(shard)->ingests->value();
}

std::uint64_t ShardedFlowMonitor::lock_contentions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->contention->value();
  return total;
}

std::optional<FlowMonitor::FlowEstimate> ShardedFlowMonitor::query(
    const FiveTuple& flow) const {
  const Shard& shard = *shards_[shard_of(flow)];
  const util::MutexLock lock(shard.mutex);
  return shard.monitor.query(flow);
}

FlowMonitor::Totals ShardedFlowMonitor::totals() const {
  FlowMonitor::Totals aggregate;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    const auto t = shard->monitor.totals();
    aggregate.bytes += t.bytes;
    aggregate.packets += t.packets;
    aggregate.flows += t.flows;
  }
  return aggregate;
}

std::vector<FlowMonitor::FlowEstimate> ShardedFlowMonitor::top_k(
    std::size_t k) const {
  std::vector<FlowMonitor::FlowEstimate> all;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    auto local = shard->monitor.top_k(k);
    all.insert(all.end(), local.begin(), local.end());
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(),
                    [](const FlowMonitor::FlowEstimate& a,
                       const FlowMonitor::FlowEstimate& b) {
                      return a.bytes > b.bytes;
                    });
  all.resize(take);
  return all;
}

FlowMonitor::MemoryReport ShardedFlowMonitor::memory() const {
  FlowMonitor::MemoryReport aggregate;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    const auto m = shard->monitor.memory();
    aggregate.volume_counter_bits += m.volume_counter_bits;
    aggregate.size_counter_bits += m.size_counter_bits;
    aggregate.flow_table_bits += m.flow_table_bits;
  }
  return aggregate;
}

void ShardedFlowMonitor::subscribe(FlowMonitor::EpochSubscriber subscriber) {
  if (subscriber) subscribers_.push_back(std::move(subscriber));
}

FlowMonitor::EpochReport ShardedFlowMonitor::rotate() {
  FlowMonitor::EpochReport merged;
  bool first = true;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    auto report = shard->monitor.rotate();
    if (first) {
      merged.epoch = report.epoch;
      first = false;
    }
    merged.flows.insert(merged.flows.end(), report.flows.begin(),
                        report.flows.end());
    merged.totals.bytes += report.totals.bytes;
    merged.totals.packets += report.totals.packets;
    merged.totals.flows += report.totals.flows;
    merged.pressure += report.pressure;
    // RescaleB may have diverged the shards' effective bases; the max keeps
    // intervals derived from the merged report conservative for every flow.
    merged.volume_b = std::max(merged.volume_b, report.volume_b);
    merged.size_b = std::max(merged.size_b, report.size_b);
    // Additive-mode scale-ups diverge per shard the same way; max keeps the
    // merged additive-error unit conservative too.
    merged.volume_error_unit =
        std::max(merged.volume_error_unit, report.volume_error_unit);
    merged.size_error_unit =
        std::max(merged.size_error_unit, report.size_error_unit);
  }
  // Subscribers run outside every shard lock: a module that queries this
  // monitor from its callback must not deadlock.
  for (const auto& subscriber : subscribers_) subscriber(merged);
  return merged;
}

PressureStats ShardedFlowMonitor::pressure() const {
  PressureStats aggregate;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    aggregate += shard->monitor.pressure();
  }
  return aggregate;
}

std::vector<FlowMonitor::FlowEstimate> ShardedFlowMonitor::evict_idle(
    std::uint64_t now_ns, std::uint64_t idle_timeout_ns) {
  std::vector<FlowMonitor::FlowEstimate> merged;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    auto evicted = shard->monitor.evict_idle(now_ns, idle_timeout_ns);
    merged.insert(merged.end(), evicted.begin(), evicted.end());
  }
  return merged;
}

std::uint64_t ShardedFlowMonitor::packets_seen() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    total += shard->monitor.packets_seen();
  }
  return total;
}

}  // namespace disco::flowtable
