#include "flowtable/sharded_monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace disco::flowtable {

ShardedFlowMonitor::ShardedFlowMonitor(const Config& config) {
  if (config.shards == 0 || config.shards > 1024) {
    throw std::invalid_argument("ShardedFlowMonitor: shards must be in [1, 1024]");
  }
  shards_.reserve(config.shards);
  for (unsigned s = 0; s < config.shards; ++s) {
    FlowMonitor::Config shard_config = config.base;
    // Split capacity with 25% headroom per shard: hashing is not perfectly
    // balanced, and a shard rejecting flows while siblings have room would
    // be a silent capacity loss.
    shard_config.max_flows =
        std::max<std::size_t>(16, (config.base.max_flows / config.shards) * 5 / 4);
    shard_config.seed = config.base.seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    shards_.push_back(std::make_unique<Shard>(shard_config));
  }
}

bool ShardedFlowMonitor::ingest(const FiveTuple& flow, std::uint32_t length,
                                std::uint64_t now_ns) {
  Shard& shard = *shards_[shard_of(flow)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.monitor.ingest(flow, length, now_ns);
}

std::optional<FlowMonitor::FlowEstimate> ShardedFlowMonitor::query(
    const FiveTuple& flow) const {
  const Shard& shard = *shards_[shard_of(flow)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.monitor.query(flow);
}

FlowMonitor::Totals ShardedFlowMonitor::totals() const {
  FlowMonitor::Totals aggregate;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    const auto t = shard->monitor.totals();
    aggregate.bytes += t.bytes;
    aggregate.packets += t.packets;
    aggregate.flows += t.flows;
  }
  return aggregate;
}

std::vector<FlowMonitor::FlowEstimate> ShardedFlowMonitor::top_k(
    std::size_t k) const {
  std::vector<FlowMonitor::FlowEstimate> all;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    auto local = shard->monitor.top_k(k);
    all.insert(all.end(), local.begin(), local.end());
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(),
                    [](const FlowMonitor::FlowEstimate& a,
                       const FlowMonitor::FlowEstimate& b) {
                      return a.bytes > b.bytes;
                    });
  all.resize(take);
  return all;
}

FlowMonitor::MemoryReport ShardedFlowMonitor::memory() const {
  FlowMonitor::MemoryReport aggregate;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    const auto m = shard->monitor.memory();
    aggregate.volume_counter_bits += m.volume_counter_bits;
    aggregate.size_counter_bits += m.size_counter_bits;
    aggregate.flow_table_bits += m.flow_table_bits;
  }
  return aggregate;
}

FlowMonitor::EpochReport ShardedFlowMonitor::rotate() {
  FlowMonitor::EpochReport merged;
  bool first = true;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    auto report = shard->monitor.rotate();
    if (first) {
      merged.epoch = report.epoch;
      first = false;
    }
    merged.flows.insert(merged.flows.end(), report.flows.begin(),
                        report.flows.end());
    merged.totals.bytes += report.totals.bytes;
    merged.totals.packets += report.totals.packets;
    merged.totals.flows += report.totals.flows;
  }
  return merged;
}

std::vector<FlowMonitor::FlowEstimate> ShardedFlowMonitor::evict_idle(
    std::uint64_t now_ns, std::uint64_t idle_timeout_ns) {
  std::vector<FlowMonitor::FlowEstimate> merged;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    auto evicted = shard->monitor.evict_idle(now_ns, idle_timeout_ns);
    merged.insert(merged.end(), evicted.begin(), evicted.end());
  }
  return merged;
}

std::uint64_t ShardedFlowMonitor::packets_seen() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->monitor.packets_seen();
  }
  return total;
}

}  // namespace disco::flowtable
