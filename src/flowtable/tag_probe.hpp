// Group-of-16 fingerprint ("tag") probing -- the SIMD kernel of
// BasicFlowTable's Swiss-table-style layout.
//
// The flow table keeps a parallel array of 1-byte tags, one per bucket:
// 0 marks an empty bucket, and an occupied bucket stores the top 7 bits of
// its key's hash with the high bit forced on (so a real tag is never 0).
// A lookup scans tags 16 at a time from the (unaligned) probe position:
// one SSE2 compare+movemask yields a bitmask of candidate buckets and a
// bitmask of empties, so a probe touches one cache line of tags -- and runs
// zero full-key compares -- before the first candidate.  With 7 tag bits,
// ~1/128 of non-matching occupied buckets survive to a key compare.
//
// This header is the ONLY place in src/ allowed to use raw vector
// intrinsics (tools/lint_disco.py, rule simd-intrinsics-confined); the rest
// of the tree consumes the portable scan<UseSimd>() wrapper.  The scalar
// path computes bit-identical masks with a plain byte loop, which is what
// makes the differential suite's SIMD-vs-scalar comparison exact:
// identical masks => identical probe decisions => identical tables.
//
// The group width is pinned at 16 for both paths.  An AVX2 32-wide scan
// would change probe-group geometry (and therefore nothing observable, but
// it doubles the wrap-around mirror); 16 tags already cover a quarter of a
// cache line and the movemask is one uop, so SSE2 is the sweet spot -- and
// it is baseline x86-64, so every 64-bit x86 build gets it without
// -march flags.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(DISCO_FORCE_SCALAR_PROBE) && \
    (defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC)))
#define DISCO_TAGPROBE_SIMD 1
#include <emmintrin.h>
#else
#define DISCO_TAGPROBE_SIMD 0
#endif

namespace disco::flowtable::tagprobe {

/// Buckets scanned per compare.  The table mirrors this many tags past the
/// end of its array so an unaligned group read never wraps.
inline constexpr std::size_t kGroupWidth = 16;

/// Tag value of an empty bucket.  make_tag never returns it.
inline constexpr std::uint8_t kEmptyTag = 0;

/// True when this build probes with SSE2; false on non-x86 targets and
/// under -DDISCO_SIMD=OFF (which defines DISCO_FORCE_SCALAR_PROBE).
inline constexpr bool kHaveSimd = DISCO_TAGPROBE_SIMD != 0;

/// The probe ISA compiled into this binary, for bench/host metadata.
[[nodiscard]] constexpr const char* isa_name() noexcept {
  return kHaveSimd ? "sse2" : "scalar";
}

/// Fingerprint of a hash: its top 7 bits, with the high bit set so an
/// occupied bucket can never collide with kEmptyTag.  The table indexes
/// with the LOW hash bits (and shard routing mixes the high 32), so the
/// tag adds bits a cluster's buckets do not already agree on.
[[nodiscard]] constexpr std::uint8_t make_tag(std::uint64_t hash) noexcept {
  return static_cast<std::uint8_t>(0x80u | (hash >> 57));
}

/// Result of scanning one group: bit j set in `match` when tags[j] equals
/// the needle, in `empty` when tags[j] is kEmptyTag.
struct GroupMask {
  std::uint32_t match = 0;
  std::uint32_t empty = 0;
};

/// Reference scan: a plain byte loop.  The SIMD path must (and does)
/// produce exactly these masks -- the differential suite pins it.
[[nodiscard]] inline GroupMask scan_scalar(const std::uint8_t* tags,
                                           std::uint8_t needle) noexcept {
  GroupMask m;
  for (std::size_t j = 0; j < kGroupWidth; ++j) {
    m.match |= static_cast<std::uint32_t>(tags[j] == needle ? 1u : 0u) << j;
    m.empty |= static_cast<std::uint32_t>(tags[j] == kEmptyTag ? 1u : 0u) << j;
  }
  return m;
}

#if DISCO_TAGPROBE_SIMD
/// SSE2 scan: one unaligned 16-byte load, two compares, two movemasks.
[[nodiscard]] inline GroupMask scan_sse2(const std::uint8_t* tags,
                                         std::uint8_t needle) noexcept {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  GroupMask m;
  m.match = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(needle)))));
  m.empty = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(group, _mm_setzero_si128())));
  return m;
}
#endif

/// Scans the group starting at `tags` for `needle`.  `UseSimd` selects the
/// engine per table instantiation (the differential tests run both in one
/// binary); a UseSimd=true table degrades to the scalar engine when the
/// build has no SIMD, so the default-instantiated aliases always compile.
template <bool UseSimd>
[[nodiscard]] inline GroupMask scan(const std::uint8_t* tags,
                                    std::uint8_t needle) noexcept {
#if DISCO_TAGPROBE_SIMD
  if constexpr (UseSimd) return scan_sse2(tags, needle);
#endif
  return scan_scalar(tags, needle);
}

}  // namespace disco::flowtable::tagprobe
