// CounterBank -- one counter array, two selectable estimator families.
//
// FlowMonitor's volume and size counters can run either estimator:
//
//   * EstimatorKind::Disco (default): core::DiscoArray, the paper's
//     logarithmic counters -- multiplicative error bounded by Theorem 2,
//     snapshot/restore, RescaleB, decision-table fast path.
//   * EstimatorKind::AdditiveError: core::AdditiveErrorArray -- cheaper
//     shift-and-round updates with an additive error envelope
//     (core/additive.hpp), for workloads that tolerate a noise floor on
//     mice in exchange for faster ingest and near-exact elephants.
//
// The bank is a tagged union with branch dispatch: the kind is fixed at
// construction, so the branch in add() is perfectly predicted and costs
// nothing next to the counter update itself.  Methods that only exist for
// one family (decision tables, RescaleB, scale restore) are documented
// no-ops for the other, which keeps FlowMonitor free of kind checks.
#pragma once

#include <cstdint>
#include <optional>

#include "core/additive.hpp"
#include "core/disco.hpp"
#include "util/rng.hpp"

namespace disco::flowtable {

/// Which estimator family backs a monitor's counter arrays.
enum class EstimatorKind {
  Disco,          ///< logarithmic DISCO counters (multiplicative error)
  AdditiveError,  ///< additive-error counters (sampled exact counting)
};

class CounterBank {
 public:
  /// Builds `size` counters of `bits` bits each.  `max_flow` provisions the
  /// DISCO base b (EstimatorKind::Disco only; the additive family's range
  /// is managed dynamically by scale-ups).
  CounterBank(EstimatorKind kind, std::size_t size, int bits,
              std::uint64_t max_flow)
      : kind_(kind) {
    if (kind_ == EstimatorKind::Disco) {
      disco_.emplace(size, bits, core::DiscoParams::for_budget(max_flow, bits));
    } else {
      additive_.emplace(size, bits);
    }
  }

  [[nodiscard]] EstimatorKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_disco() const noexcept {
    return kind_ == EstimatorKind::Disco;
  }

  /// The wrapped DiscoArray (Disco kind only -- tests and the snapshot
  /// path use it; nullptr for the additive family).
  [[nodiscard]] const core::DiscoArray* disco() const noexcept {
    return disco_ ? &*disco_ : nullptr;
  }
  [[nodiscard]] const core::AdditiveErrorArray* additive() const noexcept {
    return additive_ ? &*additive_ : nullptr;
  }

  // --- hot path --------------------------------------------------------------
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) noexcept {
    if (kind_ == EstimatorKind::Disco) [[likely]] {
      disco_->add(i, l, rng);
    } else {
      additive_->add(i, l, rng);
    }
  }

  void prefetch(std::size_t i) const noexcept {
    if (kind_ == EstimatorKind::Disco) [[likely]] {
      disco_->prefetch(i);
    } else {
      additive_->prefetch(i);
    }
  }

  // --- queries ---------------------------------------------------------------
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return is_disco() ? disco_->estimate(i) : additive_->estimate(i);
  }
  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept {
    return is_disco() ? disco_->value(i) : additive_->value(i);
  }
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return is_disco() ? disco_->storage_bits() : additive_->storage_bits();
  }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept {
    return is_disco() ? disco_->overflow_count() : additive_->overflow_count();
  }
  [[nodiscard]] std::uint64_t rescale_count() const noexcept {
    return is_disco() ? disco_->rescale_count() : additive_->rescale_count();
  }

  /// Effective DISCO base for epoch reports: the additive family counts on
  /// a linear grid, reported as b = 1.0 -- exactly the degenerate value
  /// downstream interval math treats as "no multiplicative error"
  /// (src/modules/confidence.hpp).  Its error is carried separately by
  /// error_unit().
  [[nodiscard]] double effective_b() const noexcept {
    return is_disco() ? disco_->params().b() : 1.0;
  }

  /// Additive counting grid 2^s for epoch reports (0.0 for DISCO kinds --
  /// their error is multiplicative, carried by effective_b()).
  [[nodiscard]] double error_unit() const noexcept {
    return is_disco() ? 0.0 : additive_->unit();
  }

  // --- lifecycle / policy ----------------------------------------------------
  void set_value(std::size_t i, std::uint64_t v) {
    if (is_disco()) {
      disco_->set_value(i, v);
    } else {
      additive_->set_value(i, v);
    }
  }

  void reset() noexcept {
    if (is_disco()) {
      disco_->reset();
    } else {
      additive_->reset();
    }
  }

  /// Disco only (the additive update needs no table); no-op otherwise.
  void attach_decision_table() {
    if (is_disco()) disco_->attach_decision_table();
  }

  /// Disco only: SaturationPolicy::RescaleB.  The additive family already
  /// rescales natively (halve-all), so this is a no-op for it.
  void enable_rescale(double growth, unsigned max_rescales) noexcept {
    if (is_disco()) disco_->enable_rescale(growth, max_rescales);
  }

  /// Disco only (snapshot/restore is DISCO-mode-only; monitor.cpp guards).
  void restore_scale(double b, std::uint64_t rescales) {
    if (is_disco()) disco_->restore_scale(b, rescales);
  }

  void advise_hugepages() noexcept {
    if (is_disco()) {
      disco_->advise_hugepages();
    } else {
      additive_->advise_hugepages();
    }
  }

 private:
  EstimatorKind kind_;
  std::optional<core::DiscoArray> disco_;
  std::optional<core::AdditiveErrorArray> additive_;
};

}  // namespace disco::flowtable
