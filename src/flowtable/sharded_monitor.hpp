// Thread-safe sharded monitor: the multi-MicroEngine deployment pattern on a
// host CPU.
//
// The paper scales DISCO across MicroEngines by letting several engines
// update counters concurrently; the software analogue is sharding.  Flow
// keys are partitioned by (the high bits of) their hash across independent
// FlowMonitor shards, each guarded by its own mutex, so
//   * a packet touches exactly one shard -- cross-thread contention occurs
//     only when two threads hit the same shard simultaneously;
//   * per-flow state never straddles shards, so every estimate is exactly
//     what a single-shard monitor would produce for that flow;
//   * aggregate queries (totals, top-k) lock shards one at a time and are
//     linearisable per shard, not globally -- the usual monitoring trade.
//
// Sharding uses the hash's HIGH bits while the flow table's probe sequence
// uses the LOW bits, so shard choice and in-table placement stay
// decorrelated.
//
// Telemetry: each shard registers its monitor metrics under
// `sharded_monitor.shard_<i>.*`, plus a `lock_contention_total` counter fed
// by try-lock-then-lock on the ingest path -- the software analogue of the
// paper's MicroEngines contending for an SRAM channel.  See
// docs/telemetry.md for the catalogue.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flowtable/monitor.hpp"
#include "util/thread_annotations.hpp"

namespace disco::flowtable {

class ShardedFlowMonitor {
 public:
  struct Config {
    FlowMonitor::Config base;  ///< per-deployment totals; capacity is split
    unsigned shards = 8;
  };

  explicit ShardedFlowMonitor(const Config& config);

  /// Thread-safe packet ingest.  Returns false if the owning shard's flow
  /// table is full.  `now_ns` feeds idle eviction, as in FlowMonitor.
  bool ingest(const FiveTuple& flow, std::uint32_t length,
              std::uint64_t now_ns = 0);

  /// Thread-safe per-flow query.
  [[nodiscard]] std::optional<FlowMonitor::FlowEstimate> query(
      const FiveTuple& flow) const;

  /// Aggregates across shards (locking each in turn).
  [[nodiscard]] FlowMonitor::Totals totals() const;
  [[nodiscard]] std::vector<FlowMonitor::FlowEstimate> top_k(std::size_t k) const;
  [[nodiscard]] FlowMonitor::MemoryReport memory() const;
  [[nodiscard]] std::uint64_t packets_seen() const;

  /// Ends the measurement epoch on every shard and returns the merged
  /// report.  Shards rotate one at a time; packets ingested concurrently
  /// land in either the old or the new epoch of their shard (the standard
  /// epoch-boundary semantics of a distributed monitor).  Registered epoch
  /// subscribers observe the MERGED report exactly once per rotate, on the
  /// rotating thread, after every shard lock has been released -- so module
  /// state is owned by whoever calls rotate(), never by a shard.
  FlowMonitor::EpochReport rotate();

  /// Subscribes a streaming consumer to merged epoch reports (see
  /// FlowMonitor::subscribe and docs/modules.md).  Not thread-safe against
  /// concurrent rotate(): register subscribers before the monitor goes live.
  void subscribe(FlowMonitor::EpochSubscriber subscriber);

  /// Idle eviction across all shards; returns the merged evicted set.
  std::vector<FlowMonitor::FlowEstimate> evict_idle(std::uint64_t now_ns,
                                                    std::uint64_t idle_timeout_ns);

  /// Degradation counters summed across shards (docs/robustness.md).  Each
  /// shard applies config.base.pressure independently on its own slice of
  /// the capacity budget.
  [[nodiscard]] PressureStats pressure() const;

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Packets ingested by one shard (its `ingest_total` counter).  Zero when
  /// telemetry is compiled out or was disabled during the run.
  [[nodiscard]] std::uint64_t shard_ingests(unsigned shard) const;

  /// Ingest calls that found their shard's mutex already held (summed over
  /// shards) -- the contention signal to tune `shards` against.
  [[nodiscard]] std::uint64_t lock_contentions() const;

 private:
  struct Shard {
    explicit Shard(const FlowMonitor::Config& config) : monitor(config) {}
    mutable util::Mutex mutex;
    /// FlowMonitor is single-threaded by design; the shard mutex is the ONLY
    /// thing making concurrent access safe, so the analysis enforces that no
    /// path reaches the monitor without it.
    FlowMonitor monitor DISCO_GUARDED_BY(mutex);
    telemetry::Counter* ingests = nullptr;     ///< same counter the monitor bumps
    telemetry::Counter* contention = nullptr;  ///< set once at construction
  };

  [[nodiscard]] std::size_t shard_of(const FiveTuple& flow) const noexcept {
    // Top 32 bits of the key hash; the flow table consumes the low bits.
    return static_cast<std::size_t>((hash_tuple(flow) >> 32) % shards_.size());
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<FlowMonitor::EpochSubscriber> subscribers_;
};

}  // namespace disco::flowtable
