// Bounded-memory pressure policies -- what a monitor does when the paper's
// fixed-SRAM assumption actually binds (docs/robustness.md).
//
// DISCO's deployment target is a fixed counter array on an IXP2850: when the
// flow table fills or a counter crowds the top of its range, the hardware
// cannot allocate more memory -- it must shed load in a controlled way.  The
// host implementation mirrors that with two orthogonal policy axes, both
// configured per monitor through FlowMonitor::Config::pressure:
//
//   Admission (table full, new flow arrives)
//     Drop                 reject the flow; its packets are counted as
//                          rejected and otherwise unaccounted (the seed
//                          behaviour, and the default).
//     RandomizedAdmission  RAP (Ben Basat et al., PAPERS.md): admit with
//                          probability proportional to the incoming burst's
//                          discounted increment -- p = l / (l + f(c_victim))
//                          -- evicting a sampled-minimum victim whose counter
//                          the newcomer INHERITS, so surviving estimates
//                          never under-count and heavy flows win the table
//                          in O(their traffic share).
//     EvictSmallest        deterministically evict the sampled flow with the
//                          smallest DISCO volume counter and admit the
//                          newcomer at zero; the victim's estimate is
//                          discarded (counted in flows_evicted).
//
//   Saturation (a DISCO counter would exceed its fixed width)
//     Saturate             clamp at the top value and count the overflow
//                          (the seed behaviour, and the default).
//     RescaleB             ICE-Buckets-style scale management: re-derive the
//                          whole array under a larger base b (budget grown
//                          by rescale_growth) with randomized-rounded
//                          counter remapping, preserving unbiasedness at the
//                          cost of a higher per-update CV bound.
//
// Victim selection samples `victim_samples` occupied slots and takes the one
// with the smallest volume counter -- O(1) per rejection instead of an O(n)
// scan, the standard approximation (sampled Space-Saving / RAP); with K
// samples the victim is in the true bottom quantile q with probability
// 1 - (1-q)^K, and a heavy flow is essentially never chosen.
//
// Every degradation event is observable: PressureStats counts it, the
// telemetry registry mirrors it (docs/telemetry.md), and epoch reports carry
// it to collectors (flowtable/report_io.hpp, format v2).
#pragma once

#include <cstdint>

namespace disco::flowtable {

enum class AdmissionPolicy : std::uint8_t {
  Drop = 0,
  RandomizedAdmission = 1,
  EvictSmallest = 2,
};

enum class SaturationPolicy : std::uint8_t {
  Saturate = 0,
  RescaleB = 1,
};

struct PressureConfig {
  AdmissionPolicy admission = AdmissionPolicy::Drop;
  SaturationPolicy saturation = SaturationPolicy::Saturate;
  /// Occupied slots sampled per victim selection (RAP / EvictSmallest).
  unsigned victim_samples = 8;
  /// Budget multiplier per RescaleB event: each rescale re-provisions the
  /// counter array for growth x the previous representable maximum.
  double rescale_growth = 2.0;
  /// Hard cap on rescale events per array; past it the array saturates
  /// (every rescale raises b and therefore the Theorem 2 CV bound, so
  /// unbounded growth would silently trade all accuracy away).
  unsigned max_rescales = 16;
};

/// Cumulative degradation counters since monitor construction.  Sharded and
/// pipeline monitors aggregate by summing shards; epoch reports embed a
/// snapshot (taken at rotate time) so collectors can see HOW a report was
/// degraded, not just what it contains.
struct PressureStats {
  std::uint64_t flows_rejected = 0;     ///< bursts refused at a full table
  std::uint64_t flows_evicted = 0;      ///< pressure evictions (not idle/rotate)
  std::uint64_t counters_saturated = 0; ///< updates clamped at counter max
  std::uint64_t rescale_events = 0;     ///< RescaleB re-derivations applied

  PressureStats& operator+=(const PressureStats& o) noexcept {
    flows_rejected += o.flows_rejected;
    flows_evicted += o.flows_evicted;
    counters_saturated += o.counters_saturated;
    rescale_events += o.rescale_events;
    return *this;
  }
};

}  // namespace disco::flowtable
