#include "trace/trace_stats.hpp"

#include <algorithm>

namespace disco::trace {

std::vector<FlowTruth> flow_truths(const std::vector<FlowRecord>& flows) {
  std::vector<FlowTruth> truths;
  truths.reserve(flows.size());
  for (const FlowRecord& f : flows) {
    truths.push_back(FlowTruth{f.id, f.packets(), f.bytes(), f.length_variance()});
  }
  return truths;
}

TraceSummary summarize(const std::vector<FlowRecord>& flows) {
  TraceSummary s;
  s.flow_count = flows.size();
  if (flows.empty()) return s;
  std::uint64_t high_variance = 0;
  double variance_sum = 0.0;
  for (const FlowRecord& f : flows) {
    const std::uint64_t packets = f.packets();
    const std::uint64_t bytes = f.bytes();
    s.total_packets += packets;
    s.total_bytes += bytes;
    s.max_flow_packets = std::max(s.max_flow_packets, packets);
    s.max_flow_bytes = std::max(s.max_flow_bytes, bytes);
    const double variance = f.length_variance();
    variance_sum += variance;
    if (variance > 10.0) ++high_variance;
  }
  const auto n = static_cast<double>(flows.size());
  s.mean_packets_per_flow = static_cast<double>(s.total_packets) / n;
  s.mean_bytes_per_flow = static_cast<double>(s.total_bytes) / n;
  s.share_length_variance_gt10 = static_cast<double>(high_variance) / n;
  s.mean_length_variance = variance_sum / n;
  return s;
}

std::vector<FlowTruth> truths_from_packets(const std::vector<PacketRecord>& packets,
                                           std::uint32_t flow_count) {
  // Two passes: exact totals streamed, then variance via per-flow means.
  std::vector<FlowTruth> truths(flow_count);
  for (std::uint32_t id = 0; id < flow_count; ++id) truths[id].id = id;
  for (const PacketRecord& p : packets) {
    FlowTruth& t = truths.at(p.flow_id);
    ++t.packets;
    t.bytes += p.length;
  }
  std::vector<double> m2(flow_count, 0.0);
  std::vector<double> mean(flow_count, 0.0);
  std::vector<std::uint64_t> seen(flow_count, 0);
  for (const PacketRecord& p : packets) {
    const std::uint32_t id = p.flow_id;
    ++seen[id];
    const double delta = static_cast<double>(p.length) - mean[id];
    mean[id] += delta / static_cast<double>(seen[id]);
    m2[id] += delta * (static_cast<double>(p.length) - mean[id]);
  }
  for (std::uint32_t id = 0; id < flow_count; ++id) {
    truths[id].length_variance =
        seen[id] < 2 ? 0.0 : m2[id] / static_cast<double>(seen[id] - 1);
  }
  return truths;
}

}  // namespace disco::trace
