#include "trace/pcap.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace disco::trace {
namespace {

constexpr std::size_t kEthernetHeader = 14;
constexpr std::size_t kIpv4Header = 20;
constexpr std::size_t kUdpHeader = 8;
constexpr std::size_t kHeaders = kEthernetHeader + kIpv4Header + kUdpHeader;
constexpr std::uint32_t kMinWireBytes = kIpv4Header + kUdpHeader;

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("pcap: truncated input");
  return v;
}

void put_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void put_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

[[nodiscard]] std::uint16_t read_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t read_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

/// RFC 1071 ones'-complement checksum over the IPv4 header.
[[nodiscard]] std::uint16_t ipv4_checksum(const std::uint8_t* header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kIpv4Header; i += 2) {
    sum += read_be16(header + i);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

void write_pcap(std::ostream& out, const std::vector<PacketRecord>& packets) {
  // Global header.
  put(out, kPcapMagicNanos);
  put(out, static_cast<std::uint16_t>(2));  // version 2.4
  put(out, static_cast<std::uint16_t>(4));
  put(out, std::int32_t{0});                 // thiszone
  put(out, std::uint32_t{0});                // sigfigs
  put(out, kPcapSnaplen);
  put(out, std::uint32_t{1});                // linktype: Ethernet

  std::array<std::uint8_t, kHeaders> frame{};
  for (const PacketRecord& p : packets) {
    const std::uint32_t wire_bytes = std::max(p.length, kMinWireBytes);

    // Record header: ts_sec, ts_nsec, incl_len (headers only), orig_len.
    put(out, static_cast<std::uint32_t>(p.timestamp_ns / 1'000'000'000ull));
    put(out, static_cast<std::uint32_t>(p.timestamp_ns % 1'000'000'000ull));
    put(out, static_cast<std::uint32_t>(kHeaders));
    put(out, wire_bytes + static_cast<std::uint32_t>(kEthernetHeader));

    frame.fill(0);
    // Ethernet: synthetic MACs, EtherType IPv4.
    frame[5] = 0x01;
    frame[11] = 0x02;
    put_be16(frame.data() + 12, 0x0800);
    // IPv4.
    std::uint8_t* ip = frame.data() + kEthernetHeader;
    ip[0] = 0x45;  // version 4, IHL 5
    put_be16(ip + 2, static_cast<std::uint16_t>(
                         std::min<std::uint32_t>(wire_bytes, 0xffff)));
    ip[8] = 64;    // TTL
    ip[9] = 17;    // UDP
    put_be32(ip + 12, 0x0a000000u + p.flow_id);  // src: 10.x.x.x + flow id
    put_be32(ip + 16, 0xc0a80001u);              // dst: 192.168.0.1
    put_be16(ip + 10, ipv4_checksum(ip));
    // UDP.
    std::uint8_t* udp = ip + kIpv4Header;
    put_be16(udp, static_cast<std::uint16_t>(p.flow_id & 0xffff));
    put_be16(udp + 2, 4789);
    put_be16(udp + 4,
             static_cast<std::uint16_t>(std::min<std::uint32_t>(
                 wire_bytes - static_cast<std::uint32_t>(kIpv4Header), 0xffff)));

    out.write(reinterpret_cast<const char*>(frame.data()), frame.size());
  }
  if (!out) throw std::runtime_error("pcap: write failed");
}

std::vector<PacketRecord> read_pcap(std::istream& in) {
  if (get<std::uint32_t>(in) != kPcapMagicNanos) {
    throw std::runtime_error("pcap: bad magic (expect nanosecond pcap)");
  }
  (void)get<std::uint16_t>(in);  // version major
  (void)get<std::uint16_t>(in);  // version minor
  (void)get<std::int32_t>(in);
  (void)get<std::uint32_t>(in);
  (void)get<std::uint32_t>(in);  // snaplen
  if (get<std::uint32_t>(in) != 1) {
    throw std::runtime_error("pcap: unsupported linktype (want Ethernet)");
  }

  std::vector<PacketRecord> packets;
  std::array<std::uint8_t, kHeaders> frame{};
  for (;;) {
    std::uint32_t ts_sec = 0;
    in.read(reinterpret_cast<char*>(&ts_sec), sizeof(ts_sec));
    if (in.eof()) break;
    if (!in) throw std::runtime_error("pcap: truncated record header");
    const auto ts_nsec = get<std::uint32_t>(in);
    const auto incl_len = get<std::uint32_t>(in);
    const auto orig_len = get<std::uint32_t>(in);
    if (incl_len != kHeaders) {
      throw std::runtime_error("pcap: unexpected capture length");
    }
    // A record claiming fewer original bytes than the synthetic headers
    // occupy (zero-length packets included) cannot have come from
    // write_pcap; without this check the payload-length subtraction below
    // would wrap to ~4 GB.
    if (orig_len < kHeaders) {
      throw std::runtime_error("pcap: original length shorter than headers");
    }
    in.read(reinterpret_cast<char*>(frame.data()), frame.size());
    if (!in) throw std::runtime_error("pcap: truncated frame");

    const std::uint8_t* ip = frame.data() + kEthernetHeader;
    if (read_be16(frame.data() + 12) != 0x0800 || ip[9] != 17) {
      throw std::runtime_error("pcap: not a synthetic IPv4/UDP frame");
    }
    PacketRecord p;
    p.flow_id = read_be32(ip + 12) - 0x0a000000u;
    p.length = orig_len - static_cast<std::uint32_t>(kEthernetHeader);
    p.timestamp_ns =
        static_cast<std::uint64_t>(ts_sec) * 1'000'000'000ull + ts_nsec;
    packets.push_back(p);
  }
  return packets;
}

void write_pcap_file(const std::string& path, const std::vector<PacketRecord>& packets) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open for write: " + path);
  write_pcap(out, packets);
}

std::vector<PacketRecord> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  return read_pcap(in);
}

}  // namespace disco::trace
