#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace disco::trace {
namespace {

template <typename T>
void put(std::ostream& out, T value) {
  // The repository targets little-endian hosts (x86-64 / aarch64); a static
  // assert in read keeps surprises loud if that ever changes.
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const std::vector<PacketRecord>& packets,
                 std::uint32_t flow_count) {
  put(out, kTraceMagic);
  put(out, kTraceVersion);
  put(out, flow_count);
  put(out, static_cast<std::uint64_t>(packets.size()));
  for (const PacketRecord& p : packets) {
    put(out, p.flow_id);
    put(out, p.length);
    put(out, p.timestamp_ns);
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

TraceData read_trace(std::istream& in) {
  static_assert(sizeof(PacketRecord) >= 16, "record layout sanity");
  if (get<std::uint32_t>(in) != kTraceMagic) {
    throw std::runtime_error("trace_io: bad magic (not a DTRC trace)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kTraceVersion) {
    throw std::runtime_error("trace_io: unsupported version " + std::to_string(version));
  }
  TraceData data;
  data.flow_count = get<std::uint32_t>(in);
  const auto count = get<std::uint64_t>(in);
  // A corrupted count field must not drive a giant up-front allocation; cap
  // the reservation and let truncated streams fail on the first short read.
  data.packets.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    PacketRecord p;
    p.flow_id = get<std::uint32_t>(in);
    p.length = get<std::uint32_t>(in);
    p.timestamp_ns = get<std::uint64_t>(in);
    data.packets.push_back(p);
  }
  return data;
}

void write_trace_file(const std::string& path, const std::vector<PacketRecord>& packets,
                      std::uint32_t flow_count) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open for write: " + path);
  write_trace(out, packets, flow_count);
}

TraceData read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open for read: " + path);
  return read_trace(in);
}

void write_trace_csv(std::ostream& out, const std::vector<PacketRecord>& packets) {
  out << "flow_id,length,timestamp_ns\n";
  for (const PacketRecord& p : packets) {
    out << p.flow_id << ',' << p.length << ',' << p.timestamp_ns << '\n';
  }
  if (!out) throw std::runtime_error("trace_io: CSV write failed");
}

}  // namespace disco::trace
