// Binary and CSV trace serialisation.
//
// The binary format ("DTRC") is a flat little-endian record stream with a
// fixed header -- the shape a capture appliance would emit.  It exists so
// experiments can be re-run on identical traffic, traces can be shipped
// between machines, and the examples can demonstrate the offline half of the
// paper's "both off-line and on-line access" claim.
//
// Layout:
//   magic   u32  'D' 'T' 'R' 'C'
//   version u32  (currently 1)
//   flows   u32  number of distinct flow ids
//   packets u64  record count
//   records: packets x { flow_id u32, length u32, timestamp_ns u64 }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/packet.hpp"

namespace disco::trace {

inline constexpr std::uint32_t kTraceMagic = 0x43525444;  // "DTRC" LE
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes packets to a binary trace stream.  Throws std::runtime_error on
/// I/O failure.
void write_trace(std::ostream& out, const std::vector<PacketRecord>& packets,
                 std::uint32_t flow_count);

/// Reads a binary trace stream written by write_trace.  Throws
/// std::runtime_error on malformed input (bad magic, truncated records,
/// version mismatch).
struct TraceData {
  std::uint32_t flow_count = 0;
  std::vector<PacketRecord> packets;
};
[[nodiscard]] TraceData read_trace(std::istream& in);

/// File-path conveniences.
void write_trace_file(const std::string& path, const std::vector<PacketRecord>& packets,
                      std::uint32_t flow_count);
[[nodiscard]] TraceData read_trace_file(const std::string& path);

/// Human-readable CSV export: "flow_id,length,timestamp_ns" per line with a
/// header row.
void write_trace_csv(std::ostream& out, const std::vector<PacketRecord>& packets);

}  // namespace disco::trace
