// Random distributions used by the synthetic traffic generators.
//
// Each distribution is a small polymorphic sampler; generation cost is
// negligible next to the counting work, so a virtual call is the right
// trade for composability.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace disco::trace {

/// Distribution over per-flow packet counts.
class CountDistribution {
 public:
  virtual ~CountDistribution() = default;
  /// Draws a packet count >= 1.
  [[nodiscard]] virtual std::uint64_t sample(util::Rng& rng) const = 0;
};

/// Distribution over packet lengths in bytes.
class LengthDistribution {
 public:
  virtual ~LengthDistribution() = default;
  /// Draws a packet length >= 1.
  [[nodiscard]] virtual std::uint32_t sample(util::Rng& rng) const = 0;
};

// --- packet count distributions -------------------------------------------

/// Pareto Type I: P(X > x) = (scale/x)^shape for x >= scale.  Heavy-tailed;
/// the paper's Scenario 1 uses shape 1.053, scale 4.  `cap` bounds the tail
/// so a single astronomically large flow cannot dominate run time; 0 means
/// uncapped.
class ParetoCount final : public CountDistribution {
 public:
  ParetoCount(double shape, double scale, std::uint64_t cap = 0);
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const override;

 private:
  double shape_;
  double scale_;
  std::uint64_t cap_;
};

/// Exponential with the given mean, floored at min_count (Scenario 2).
class ExponentialCount final : public CountDistribution {
 public:
  ExponentialCount(double mean, std::uint64_t min_count = 1);
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const override;

 private:
  double mean_;
  std::uint64_t min_;
};

/// Uniform integer in [lo, hi] (Scenario 3: 2..1600).
class UniformCount final : public CountDistribution {
 public:
  UniformCount(std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const override;

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

/// Bounded Zipf: P(X = k) proportional to 1/k^alpha for k in [1, n].  The
/// canonical heavy-tailed flow-size law for module statistical validation
/// (see docs/modules.md): a handful of ranks dominate, exactly the shape
/// top-k / heavy-hitter consumers must get right.  Sampling is inverse-CDF
/// over a precomputed cumulative table, one uniform draw per sample.
class ZipfCount final : public CountDistribution {
 public:
  /// `alpha` >= 0 (0 degenerates to uniform over [1, n]); `n` >= 1.
  ZipfCount(double alpha, std::uint64_t n);
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const override;

 private:
  std::vector<double> cdf_;  ///< cdf_[k-1] = P(X <= k), cdf_.back() == 1
};

/// Always the same count (degenerate; used by theory-validation benches).
class FixedCount final : public CountDistribution {
 public:
  explicit FixedCount(std::uint64_t n) : n_(n) {}
  [[nodiscard]] std::uint64_t sample(util::Rng&) const override { return n_; }

 private:
  std::uint64_t n_;
};

// --- packet length distributions ------------------------------------------

/// The paper's synthetic packet length: exponential with mean `mean`,
/// clipped into [lo, hi] ("truncate exponential distribution between 40 and
/// 1500 with location parameter lambda = 100").  Clipping (rather than
/// rejection) reproduces the scenarios' reported per-flow byte averages.
class TruncatedExponentialLength final : public LengthDistribution {
 public:
  TruncatedExponentialLength(double mean, std::uint32_t lo, std::uint32_t hi);
  [[nodiscard]] std::uint32_t sample(util::Rng& rng) const override;

 private:
  double mean_;
  std::uint32_t lo_;
  std::uint32_t hi_;
};

/// Uniform length in [lo, hi] (the NP experiment: 64 B .. 1 KB).
class UniformLength final : public LengthDistribution {
 public:
  UniformLength(std::uint32_t lo, std::uint32_t hi);
  [[nodiscard]] std::uint32_t sample(util::Rng& rng) const override;

 private:
  std::uint32_t lo_;
  std::uint32_t hi_;
};

/// Constant length (flow size counting reduces to this with l = 1).
class ConstantLength final : public LengthDistribution {
 public:
  explicit ConstantLength(std::uint32_t l) : l_(l) {}
  [[nodiscard]] std::uint32_t sample(util::Rng&) const override { return l_; }

 private:
  std::uint32_t l_;
};

/// Internet-like bimodal mix standing in for the NLANR real trace: a spike of
/// small (ACK-sized) packets, a spike at full MTU, and a uniform middle.
/// Defaults give a mean near 620 B and a very high per-flow length variance,
/// matching the properties the paper's accuracy results depend on.
class BimodalLength final : public LengthDistribution {
 public:
  struct Config {
    double small_weight = 0.50;   ///< P(length in [small_lo, small_hi])
    double full_weight = 0.28;    ///< P(length == mtu)
    std::uint32_t small_lo = 40;
    std::uint32_t small_hi = 64;
    std::uint32_t mtu = 1500;
  };

  BimodalLength() : BimodalLength(Config{}) {}
  explicit BimodalLength(const Config& config);
  [[nodiscard]] std::uint32_t sample(util::Rng& rng) const override;

 private:
  Config config_;
};

// Shared-pointer helpers: generators hold distributions by shared_ptr so a
// scenario object is freely copyable.
using CountDistPtr = std::shared_ptr<const CountDistribution>;
using LengthDistPtr = std::shared_ptr<const LengthDistribution>;

}  // namespace disco::trace
