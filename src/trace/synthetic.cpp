#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace disco::trace {

Scenario::Scenario(std::string name, CountDistPtr count_dist, LengthDistPtr length_dist)
    : name_(std::move(name)),
      count_dist_(std::move(count_dist)),
      length_dist_(std::move(length_dist)) {
  if (!count_dist_ || !length_dist_) {
    throw std::invalid_argument("Scenario: null distribution");
  }
}

FlowRecord Scenario::make_flow(std::uint32_t id, util::Rng& rng) const {
  FlowRecord flow;
  flow.id = id;
  const std::uint64_t packets = count_dist_->sample(rng);
  flow.lengths.reserve(packets);
  for (std::uint64_t i = 0; i < packets; ++i) {
    flow.lengths.push_back(length_dist_->sample(rng));
  }
  return flow;
}

std::vector<FlowRecord> Scenario::make_flows(std::uint32_t flow_count,
                                             util::Rng& rng) const {
  std::vector<FlowRecord> flows;
  flows.reserve(flow_count);
  for (std::uint32_t id = 0; id < flow_count; ++id) {
    flows.push_back(make_flow(id, rng));
  }
  return flows;
}

namespace {

LengthDistPtr paper_synthetic_lengths() {
  return std::make_shared<TruncatedExponentialLength>(100.0, 40, 1500);
}

}  // namespace

Scenario scenario1() {
  // Cap the Pareto tail at 2^20 packets: shape 1.053 has infinite variance
  // and a single 10^8-packet flow would swamp run time without changing any
  // conclusion (the paper's own trace is finite for the same reason).
  return Scenario("scenario1-pareto",
                  std::make_shared<ParetoCount>(1.053, 4.0, std::uint64_t{1} << 20),
                  paper_synthetic_lengths());
}

Scenario scenario2() {
  return Scenario("scenario2-exponential",
                  std::make_shared<ExponentialCount>(800.0),
                  paper_synthetic_lengths());
}

Scenario scenario3() {
  return Scenario("scenario3-uniform",
                  std::make_shared<UniformCount>(2, 1600),
                  paper_synthetic_lengths());
}

Scenario real_trace_model() {
  // Pareto(1.1) packet counts, scale 60, capped; bimodal lengths with mean
  // ~620 B.  Mean flow volume lands near the NLANR trace's 409.5 KB.
  return Scenario("real-trace-model",
                  std::make_shared<ParetoCount>(1.1, 60.0, std::uint64_t{1} << 19),
                  std::make_shared<BimodalLength>());
}

Scenario zipf_scenario(double alpha, std::uint64_t max_packets) {
  return Scenario("zipf-" + std::to_string(alpha),
                  std::make_shared<ZipfCount>(alpha, max_packets),
                  std::make_shared<TruncatedExponentialLength>(700.0, 40, 1500));
}

Scenario as_flow_size(const Scenario& s) {
  // Re-draws counts from the same scenario but collapses every length to 1.
  class CountAdapter final : public CountDistribution {
   public:
    explicit CountAdapter(const Scenario& inner) : inner_(inner) {}
    std::uint64_t sample(util::Rng& rng) const override {
      // Flow sizes must match the original scenario's *packet counts*; draw a
      // flow and discard the lengths.  Cheap relative to counting work.
      return inner_.make_flow(0, rng).packets();
    }

   private:
    Scenario inner_;
  };
  return Scenario(s.name() + "-flowsize", std::make_shared<CountAdapter>(s),
                  std::make_shared<ConstantLength>(1));
}

std::vector<FlowRecord> make_8020_flows(std::uint32_t flow_count, double mean_packets,
                                        std::uint32_t len_lo, std::uint32_t len_hi,
                                        util::Rng& rng) {
  if (flow_count == 0 || !(mean_packets >= 1.0) || len_lo < 1 || len_hi < len_lo) {
    throw std::invalid_argument("make_8020_flows: bad parameters");
  }
  // Pareto weights with shape log4(5) ~ 1.16 give the canonical 80/20 split.
  const double shape = std::log(5.0) / std::log(4.0);
  std::vector<double> weights(flow_count);
  double total = 0.0;
  for (auto& w : weights) {
    const double u = 1.0 - rng.next_double();
    w = 1.0 / std::pow(u, 1.0 / shape);
    total += w;
  }
  const double budget = mean_packets * static_cast<double>(flow_count);
  UniformLength lengths(len_lo, len_hi);

  std::vector<FlowRecord> flows;
  flows.reserve(flow_count);
  for (std::uint32_t id = 0; id < flow_count; ++id) {
    FlowRecord flow;
    flow.id = id;
    const auto packets = static_cast<std::uint64_t>(
        std::max(1.0, std::round(budget * weights[id] / total)));
    flow.lengths.reserve(packets);
    for (std::uint64_t i = 0; i < packets; ++i) {
      flow.lengths.push_back(lengths.sample(rng));
    }
    flows.push_back(std::move(flow));
  }
  return flows;
}

PacketStream::PacketStream(std::vector<FlowRecord> flows, std::uint32_t burst_lo,
                           std::uint32_t burst_hi, std::uint64_t seed)
    : flows_(std::move(flows)),
      next_index_(flows_.size(), 0),
      remaining_(flows_.size()),
      burst_lo_(burst_lo),
      burst_hi_(burst_hi),
      rng_(seed) {
  if (burst_lo < 1 || burst_hi < burst_lo) {
    throw std::invalid_argument("PacketStream: need 1 <= burst_lo <= burst_hi");
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    remaining_.set(i, flows_[i].lengths.size());
    total_packets_ += flows_[i].lengths.size();
  }
}

std::optional<PacketRecord> PacketStream::next() {
  if (remaining_.total() == 0) return std::nullopt;

  if (burst_left_ == 0) {
    // Start a new burst: pick a flow weighted by remaining packets, and
    // avoid repeating the previous burst's flow while alternatives remain.
    std::size_t pick = remaining_.sample(rng_.uniform_u64(0, remaining_.total() - 1));
    if (have_current_ && pick == current_flow_ &&
        remaining_.value(current_flow_) < remaining_.total()) {
      // Resample over the other flows by masking the current one out.
      const std::uint64_t cur_weight = remaining_.value(current_flow_);
      std::uint64_t target =
          rng_.uniform_u64(0, remaining_.total() - cur_weight - 1);
      if (target >= remaining_.prefix_sum(current_flow_)) target += cur_weight;
      pick = remaining_.sample(target);
    }
    current_flow_ = pick;
    have_current_ = true;
    const std::uint64_t left = remaining_.value(pick);
    const std::uint64_t want = rng_.uniform_u64(burst_lo_, burst_hi_);
    burst_left_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(want, left));
  }

  const FlowRecord& flow = flows_[current_flow_];
  PacketRecord pkt;
  pkt.flow_id = flow.id;
  pkt.length = flow.lengths[next_index_[current_flow_]++];
  pkt.timestamp_ns = clock_ns_;
  clock_ns_ += 1 + pkt.length;  // nominal serialisation time; keeps order total
  ++emitted_;
  --burst_left_;
  remaining_.add(current_flow_, -1);
  if (remaining_.value(current_flow_) == 0) burst_left_ = 0;
  return pkt;
}

std::vector<PacketRecord> PacketStream::drain() {
  std::vector<PacketRecord> all;
  all.reserve(total_packets_);
  while (auto p = next()) all.push_back(*p);
  return all;
}

}  // namespace disco::trace
