// Ground-truth statistics over a set of flows.
//
// The evaluation compares estimator output against exact per-flow truth, and
// Table III needs intra-flow packet-length-variance statistics; both are
// computed here.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/packet.hpp"

namespace disco::trace {

/// Exact per-flow truth for one flow.
struct FlowTruth {
  std::uint32_t id = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double length_variance = 0.0;
};

/// Aggregate workload descriptors (the numbers the paper quotes when it
/// introduces each trace: flow count, mean flow size, variance shares...).
struct TraceSummary {
  std::uint64_t flow_count = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  double mean_packets_per_flow = 0.0;
  double mean_bytes_per_flow = 0.0;
  std::uint64_t max_flow_bytes = 0;
  std::uint64_t max_flow_packets = 0;
  /// Share of flows whose packet-length variance exceeds 10 (Table III).
  double share_length_variance_gt10 = 0.0;
  /// Mean packet-length variance across flows (paper: 10^3..10^4 range).
  double mean_length_variance = 0.0;
};

[[nodiscard]] std::vector<FlowTruth> flow_truths(const std::vector<FlowRecord>& flows);

[[nodiscard]] TraceSummary summarize(const std::vector<FlowRecord>& flows);

/// Rebuilds per-flow truth from an interleaved packet stream (the offline
/// path: exact accounting from a stored trace).
[[nodiscard]] std::vector<FlowTruth> truths_from_packets(
    const std::vector<PacketRecord>& packets, std::uint32_t flow_count);

}  // namespace disco::trace
