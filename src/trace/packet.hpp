// Packet and flow records -- the common currency of the traffic substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disco::trace {

/// One packet as seen by the monitoring component.  Real monitors parse the
/// 5-tuple from headers; the synthetic substrate pre-resolves it to a dense
/// flow id (the flowtable module maps 5-tuples to ids when needed).
struct PacketRecord {
  std::uint32_t flow_id = 0;
  std::uint32_t length = 0;       ///< bytes on the wire
  std::uint64_t timestamp_ns = 0; ///< arrival time (0 when irrelevant)

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

/// A complete flow: its dense id and per-packet lengths in arrival order.
/// The accuracy evaluation iterates flows independently (counter updates of
/// distinct flows never interact), so this is the natural unit of work.
struct FlowRecord {
  std::uint32_t id = 0;
  std::vector<std::uint32_t> lengths;

  [[nodiscard]] std::size_t packets() const noexcept { return lengths.size(); }

  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t total = 0;
    for (std::uint32_t l : lengths) total += l;
    return total;
  }

  /// Unbiased sample variance of the packet lengths; the paper uses this to
  /// explain why ANLS-I fails (Table III reports the share of flows with
  /// variance > 10).
  [[nodiscard]] double length_variance() const noexcept {
    const std::size_t n = lengths.size();
    if (n < 2) return 0.0;
    double mean = 0.0;
    for (std::uint32_t l : lengths) mean += static_cast<double>(l);
    mean /= static_cast<double>(n);
    double m2 = 0.0;
    for (std::uint32_t l : lengths) {
      const double d = static_cast<double>(l) - mean;
      m2 += d * d;
    }
    return m2 / static_cast<double>(n - 1);
  }
};

}  // namespace disco::trace
