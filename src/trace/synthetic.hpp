// Synthetic traffic scenarios: the paper's three synthetic workloads, the
// stand-in for the NLANR OC-192 real trace, and the 80/20 pattern used by
// the network-processor experiment (Table V).
//
// Substitution note (see DESIGN.md): the original NLANR trace (40 GB,
// 100,728 flows, mean flow 409.5 KB) is no longer distributable, so
// real_trace_model() generates a workload with the same load-bearing
// properties -- Pareto-tailed flow volumes with a comparable mean, bimodal
// Internet packet lengths, and high intra-flow length variance -- at a
// configurable flow count so tests run in milliseconds and benches can scale
// toward paper size.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "trace/distributions.hpp"
#include "trace/packet.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace disco::trace {

/// A named pair of (packet count, packet length) distributions from which
/// flows are drawn.  Copyable; flow generation is driven by the caller's RNG
/// so scenarios themselves are stateless.
class Scenario {
 public:
  Scenario(std::string name, CountDistPtr count_dist, LengthDistPtr length_dist);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Draws one flow with the given dense id.
  [[nodiscard]] FlowRecord make_flow(std::uint32_t id, util::Rng& rng) const;

  /// Draws `flow_count` flows with ids 0..flow_count-1.
  [[nodiscard]] std::vector<FlowRecord> make_flows(std::uint32_t flow_count,
                                                   util::Rng& rng) const;

 private:
  std::string name_;
  CountDistPtr count_dist_;
  LengthDistPtr length_dist_;
};

/// Paper Scenario 1: Pareto(shape 1.053, scale 4) packets per flow,
/// clip-truncated exponential lengths in [40, 1500] with mean 100.
[[nodiscard]] Scenario scenario1();

/// Paper Scenario 2: Exponential(mean 800) packets per flow, same lengths.
[[nodiscard]] Scenario scenario2();

/// Paper Scenario 3: Uniform[2, 1600] packets per flow, same lengths.
[[nodiscard]] Scenario scenario3();

/// NLANR OC-192 stand-in: Pareto-tailed packet counts (mean ~660, capped)
/// and bimodal lengths (mean ~620 B), giving mean flow volume near the
/// paper's 409.5 KB with heavy dispersion.
[[nodiscard]] Scenario real_trace_model();

/// Flow size (packet-count) view of any scenario: every packet length is 1,
/// so counting bytes of the derived scenario counts packets of the original.
[[nodiscard]] Scenario as_flow_size(const Scenario& s);

/// Zipf-skewed workload for distributed-aggregation experiments: packet
/// counts Zipf(alpha) over [1, max_packets] (heavy hitters + a long mouse
/// tail), truncated-exponential lengths (mean 700 B in [40, 1500]).  The
/// multi-process soak harness regenerates THIS scenario from one seed in
/// every monitor process and in the test that computes ground truth, so its
/// definition is shared here rather than duplicated per binary
/// (docs/collector.md, tests/test_collector_soak.cpp).
[[nodiscard]] Scenario zipf_scenario(double alpha = 1.1,
                                     std::uint64_t max_packets = 2048);

/// The NP experiment's traffic pattern: `flow_count` flows where 20% of
/// flows carry 80% of the volume, packet lengths uniform in
/// [len_lo, len_hi].  `mean_packets` scales total workload size.
[[nodiscard]] std::vector<FlowRecord> make_8020_flows(std::uint32_t flow_count,
                                                      double mean_packets,
                                                      std::uint32_t len_lo,
                                                      std::uint32_t len_hi,
                                                      util::Rng& rng);

/// Interleaves a set of flows into a packet arrival stream with controlled
/// burst structure: each scheduling step picks a still-active flow with
/// probability proportional to its REMAINING packets (so elephants and mice
/// drain at the same relative rate and the stream has no single-flow tail),
/// then emits a burst of uniform random size in [burst_lo, burst_hi]
/// (clipped to the flow's remaining packets).  Back-to-back bursts of the
/// same flow are avoided while other flows remain, so burst_lo = burst_hi =
/// 1 yields the paper's "any two packets of a flow are separated by packets
/// of other flows" pattern.
class PacketStream {
 public:
  PacketStream(std::vector<FlowRecord> flows, std::uint32_t burst_lo,
               std::uint32_t burst_hi, std::uint64_t seed);

  /// Next packet in arrival order, or nullopt when the trace is exhausted.
  [[nodiscard]] std::optional<PacketRecord> next();

  /// Total packets across all flows (for preallocation / progress).
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return total_packets_; }

  /// Drains the whole stream into a vector (small traces / tests).
  [[nodiscard]] std::vector<PacketRecord> drain();

 private:
  std::vector<FlowRecord> flows_;
  std::vector<std::size_t> next_index_;  // per flow: next packet to emit
  util::FenwickTree remaining_;          // per flow: packets left
  std::uint32_t burst_lo_;
  std::uint32_t burst_hi_;
  util::Rng rng_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t clock_ns_ = 0;
  // Current burst state.
  std::size_t current_flow_ = 0;
  bool have_current_ = false;
  std::uint32_t burst_left_ = 0;
};

}  // namespace disco::trace
