#include "trace/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace disco::trace {

ParetoCount::ParetoCount(double shape, double scale, std::uint64_t cap)
    : shape_(shape), scale_(scale), cap_(cap) {
  if (!(shape > 0.0) || !(scale >= 1.0)) {
    throw std::invalid_argument("ParetoCount: shape > 0 and scale >= 1 required");
  }
}

std::uint64_t ParetoCount::sample(util::Rng& rng) const {
  // Inverse CDF: x = scale / U^(1/shape), U in (0, 1].
  const double u = 1.0 - rng.next_double();  // (0, 1]
  const double x = scale_ / std::pow(u, 1.0 / shape_);
  auto n = static_cast<std::uint64_t>(x);
  if (n < 1) n = 1;
  if (cap_ != 0 && n > cap_) n = cap_;
  return n;
}

ExponentialCount::ExponentialCount(double mean, std::uint64_t min_count)
    : mean_(mean), min_(min_count) {
  if (!(mean > 0.0)) throw std::invalid_argument("ExponentialCount: mean > 0");
}

std::uint64_t ExponentialCount::sample(util::Rng& rng) const {
  const double u = 1.0 - rng.next_double();  // (0, 1]
  const double x = -mean_ * std::log(u);
  const auto n = static_cast<std::uint64_t>(x);
  return std::max(n, min_);
}

ZipfCount::ZipfCount(double alpha, std::uint64_t n) {
  if (!(alpha >= 0.0) || n < 1) {
    throw std::invalid_argument("ZipfCount: alpha >= 0 and n >= 1 required");
  }
  if (n > (std::uint64_t{1} << 24)) {
    throw std::invalid_argument("ZipfCount: n too large for a cdf table");
  }
  cdf_.reserve(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -alpha);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

std::uint64_t ZipfCount::sample(util::Rng& rng) const {
  const double u = rng.next_double();  // [0, 1)
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

UniformCount::UniformCount(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {
  if (lo < 1 || hi < lo) throw std::invalid_argument("UniformCount: need 1 <= lo <= hi");
}

std::uint64_t UniformCount::sample(util::Rng& rng) const {
  return rng.uniform_u64(lo_, hi_);
}

TruncatedExponentialLength::TruncatedExponentialLength(double mean, std::uint32_t lo,
                                                       std::uint32_t hi)
    : mean_(mean), lo_(lo), hi_(hi) {
  if (!(mean > 0.0) || lo < 1 || hi < lo) {
    throw std::invalid_argument("TruncatedExponentialLength: bad parameters");
  }
}

std::uint32_t TruncatedExponentialLength::sample(util::Rng& rng) const {
  const double u = 1.0 - rng.next_double();
  const double x = -mean_ * std::log(u);
  const auto l = static_cast<std::uint32_t>(std::lround(x));
  return std::clamp(l, lo_, hi_);
}

UniformLength::UniformLength(std::uint32_t lo, std::uint32_t hi) : lo_(lo), hi_(hi) {
  if (lo < 1 || hi < lo) throw std::invalid_argument("UniformLength: need 1 <= lo <= hi");
}

std::uint32_t UniformLength::sample(util::Rng& rng) const {
  return static_cast<std::uint32_t>(rng.uniform_u64(lo_, hi_));
}

BimodalLength::BimodalLength(const Config& config) : config_(config) {
  if (config.small_weight < 0.0 || config.full_weight < 0.0 ||
      config.small_weight + config.full_weight > 1.0 ||
      config.small_lo < 1 || config.small_hi < config.small_lo ||
      config.mtu <= config.small_hi) {
    throw std::invalid_argument("BimodalLength: inconsistent configuration");
  }
}

std::uint32_t BimodalLength::sample(util::Rng& rng) const {
  const double u = rng.next_double();
  if (u < config_.small_weight) {
    return static_cast<std::uint32_t>(
        rng.uniform_u64(config_.small_lo, config_.small_hi));
  }
  if (u < config_.small_weight + config_.full_weight) {
    return config_.mtu;
  }
  return static_cast<std::uint32_t>(
      rng.uniform_u64(config_.small_hi + 1, config_.mtu - 1));
}

}  // namespace disco::trace
