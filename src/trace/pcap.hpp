// Classic libpcap file export/import for synthetic traces.
//
// Interop escape hatch: a trace generated here can be inspected with
// tcpdump/wireshark, and the flow mapping survives a round trip.  Each
// PacketRecord becomes one Ethernet + IPv4 + UDP frame whose header fields
// encode the record:
//   * IPv4 total length  = 20 + 8 + payload so the wire length matches the
//     record's `length` (minimum 46 B on the wire -- records shorter than an
//     IP+UDP header cannot be represented and are clamped; real traces never
//     contain them);
//   * source IP          = 10.0.0.0/8 + flow_id (dense ids fit /8);
//   * UDP source port    = low 16 bits of flow_id (redundant check);
//   * pcap timestamps    = the record's timestamp_ns.
// Frames are truncated captures (snaplen = headers only): byte-accurate
// accounting needs lengths, not payload bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/packet.hpp"

namespace disco::trace {

inline constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4d;  // nanosecond pcap
inline constexpr std::uint32_t kPcapSnaplen = 42;  // Ethernet + IPv4 + UDP

/// Writes `packets` as a nanosecond-resolution pcap stream.  Throws
/// std::runtime_error on I/O failure.
void write_pcap(std::ostream& out, const std::vector<PacketRecord>& packets);

/// Parses a pcap stream produced by write_pcap back into packet records.
/// Throws std::runtime_error on malformed input (bad magic, truncation,
/// non-IPv4/UDP frames).
[[nodiscard]] std::vector<PacketRecord> read_pcap(std::istream& in);

/// File-path conveniences.
void write_pcap_file(const std::string& path, const std::vector<PacketRecord>& packets);
[[nodiscard]] std::vector<PacketRecord> read_pcap_file(const std::string& path);

}  // namespace disco::trace
