// Transparent-hugepage advice for large flat arrays.
//
// The flow table's bucket/tag arrays and the bit-packed counter stores are
// allocated once at construction and then random-accessed at line rate; at
// millions of flows they span thousands of 4 KiB pages, and TLB misses on
// the probe path become measurable.  `advise_hugepages` asks the kernel
// (MADV_HUGEPAGE) to back the range with transparent huge pages -- purely
// advisory, and a no-op on non-Linux builds or kernels with THP disabled.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#endif

namespace disco::util {

/// Requests transparent-hugepage backing for [p, p + bytes).  madvise needs
/// page-aligned addresses, so the range is shrunk inward to page boundaries;
/// returns true when the kernel accepted the (possibly empty) advice.
inline bool advise_hugepages(void* p, std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (p == nullptr || bytes == 0) return false;
  const auto page = static_cast<std::uintptr_t>(sysconf(_SC_PAGESIZE));
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (begin + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (begin + bytes) & ~(page - 1);
  if (hi <= lo) return true;  // range smaller than one page: nothing to advise
  return madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE) == 0;
#else
  (void)p;
  (void)bytes;
  return false;
#endif
}

/// True when the running kernel exposes transparent hugepages in a mode
/// madvise() can use ("always" or "madvise").  Bench metadata records this
/// so BENCH_*.json throughput numbers are interpretable across hosts.
inline bool hugepages_available() noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  std::FILE* f =
      std::fopen("/sys/kernel/mm/transparent_hugepage/enabled", "re");
  if (f == nullptr) return false;
  char buf[128] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // The active mode is bracketed, e.g. "always [madvise] never".
  return std::strstr(buf, "[always]") != nullptr ||
         std::strstr(buf, "[madvise]") != nullptr;
#else
  return false;
#endif
}

}  // namespace disco::util
