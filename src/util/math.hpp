// Numeric core shared by DISCO and its baselines.
//
// The central object is GeometricScale, the paper's regulation function
//
//     f(c) = (b^c - 1) / (b - 1),            b > 1      (eq. 1)
//
// together with its inverse f^-1(n) = log_b(1 + n (b-1)).  With the b values
// used in practice (1.0005 .. 1.1) the naive formulas cancel catastrophically,
// so everything is computed through expm1/log1p.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace disco::util {

/// Number of bits needed to store value v (0 -> 0 bits, 1 -> 1, 255 -> 8...).
[[nodiscard]] constexpr int bit_width_u64(std::uint64_t v) noexcept {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// The paper's counter-regulation function f and friends for a fixed base b.
///
/// All heavy-path calls are inline and allocation-free; constructing a
/// GeometricScale costs two libm calls.
class GeometricScale {
 public:
  /// b must be > 1; typical values lie in (1.0001, 1.5].
  explicit GeometricScale(double b);

  [[nodiscard]] double b() const noexcept { return b_; }
  [[nodiscard]] double ln_b() const noexcept { return ln_b_; }

  /// f(c) = (b^c - 1)/(b - 1), defined for real c >= 0.
  [[nodiscard]] double f(double c) const noexcept {
    return std::expm1(c * ln_b_) / bm1_;
  }

  /// f^-1(n) = log_b(1 + n (b-1)), defined for real n >= 0.
  [[nodiscard]] double f_inv(double n) const noexcept {
    return std::log1p(n * bm1_) / ln_b_;
  }

  /// Increment width at counter value c: f(c+1) - f(c) = b^c.
  [[nodiscard]] double step(double c) const noexcept {
    return std::exp(c * ln_b_);
  }

 private:
  double b_;
  double ln_b_;
  double bm1_;  // b - 1
};

/// Smallest b > 1 such that a counter of `counter_bits` bits (max value
/// 2^bits - 1) can represent a flow of length `max_flow`:  f_b(2^bits - 1) >=
/// max_flow.  This is how an operator provisions DISCO for a given SRAM
/// budget; the evaluation section sweeps counter_bits and derives b this way.
///
/// Solved by bisection on b in (1, 4]; throws std::invalid_argument for
/// impossible requests (max_flow representable only with b <= 1, i.e.
/// max_flow <= 2^bits - 1, returns the smallest sensible b instead of 1).
[[nodiscard]] double choose_b(std::uint64_t max_flow, int counter_bits);

/// Relative gap |a - b| / max(|b|, eps); convenience for tests and reports.
[[nodiscard]] inline double relative_error(double estimate, double truth) noexcept {
  const double denom = std::fabs(truth) > 1e-300 ? std::fabs(truth) : 1e-300;
  return std::fabs(estimate - truth) / denom;
}

}  // namespace disco::util
