// Software-prefetch portability shim.
//
// The batched ingest path (FlowMonitor::ingest_batch) hashes a window of
// keys up front and prefetches their tag groups and counter words before
// probing, hiding the DRAM latency of a cold flow table behind useful work.
// `__builtin_prefetch` is a GCC/Clang extension; this wrapper compiles to
// nothing on other compilers so the batch path stays portable.
#pragma once

namespace disco::util {

/// Hints the cache hierarchy to pull the line holding `p` for a read.
/// Purely advisory: never faults, even on unmapped addresses.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace disco::util
