// Bit-packed fixed-width counter storage.
//
// The paper evaluates counters by the number of SRAM bits they occupy
// ("largest counter bits").  To keep that measurement honest the counter
// arrays in this repository store values packed at exactly W bits each; an
// update that would exceed 2^W - 1 is reported as an overflow instead of
// being silently widened.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/hugepage.hpp"
#include "util/prefetch.hpp"

namespace disco::util {

/// Array of `size` unsigned counters, each exactly `width` bits (1..64),
/// packed contiguously into 64-bit words.  get/set are O(1) and touch at most
/// two words.
class BitPackedArray {
 public:
  BitPackedArray(std::size_t size, int width) : size_(size), width_(width) {
    if (width < 1 || width > 64) {
      throw std::invalid_argument("BitPackedArray: width must be in [1, 64]");
    }
    const std::size_t total_bits = size * static_cast<std::size_t>(width);
    words_.assign((total_bits + 63) / 64, 0);
    mask_ = width == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << width) - 1);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return mask_; }

  /// Total SRAM footprint in bits (the quantity the paper budgets).
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return size_ * static_cast<std::size_t>(width_);
  }

  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    assert(i < size_);
    const std::size_t bit = i * static_cast<std::size_t>(width_);
    const std::size_t word = bit / 64;
    const unsigned off = static_cast<unsigned>(bit % 64);
    std::uint64_t v = words_[word] >> off;
    if (off + static_cast<unsigned>(width_) > 64) {
      v |= words_[word + 1] << (64 - off);
    }
    return v & mask_;
  }

  /// Stores v at slot i.  Precondition: v fits in `width` bits.
  void set(std::size_t i, std::uint64_t v) noexcept {
    assert(i < size_);
    assert(v <= mask_);
    const std::size_t bit = i * static_cast<std::size_t>(width_);
    const std::size_t word = bit / 64;
    const unsigned off = static_cast<unsigned>(bit % 64);
    words_[word] = (words_[word] & ~(mask_ << off)) | (v << off);
    if (off + static_cast<unsigned>(width_) > 64) {
      const unsigned hi_bits = off + static_cast<unsigned>(width_) - 64;
      const std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;
      words_[word + 1] = (words_[word + 1] & ~hi_mask) | (v >> (64 - off));
    }
  }

  /// Adds `delta` to slot i.  Returns false (leaving the slot saturated at
  /// max_value) on overflow, true otherwise.
  [[nodiscard]] bool try_add(std::size_t i, std::uint64_t delta) noexcept {
    const std::uint64_t cur = get(i);
    if (delta > mask_ - cur) {
      set(i, mask_);
      return false;
    }
    set(i, cur + delta);
    return true;
  }

  void fill_zero() noexcept { words_.assign(words_.size(), 0); }

  /// Pulls the word(s) holding slot i toward the cache -- the batched
  /// ingest path prefetches counter words between probing and updating.
  void prefetch(std::size_t i) const noexcept {
    prefetch_read(words_.data() + (i * static_cast<std::size_t>(width_)) / 64);
  }

  /// Advisory transparent-hugepage backing for the packed words
  /// (util/hugepage.hpp; no-op off Linux).
  void advise_hugepages() noexcept {
    util::advise_hugepages(words_.data(),
                           words_.size() * sizeof(std::uint64_t));
  }

 private:
  std::size_t size_;
  int width_;
  std::uint64_t mask_;
  std::vector<std::uint64_t> words_;
};

}  // namespace disco::util
