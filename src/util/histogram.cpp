#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace disco::util {

void StreamingStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::coefficient_of_variation() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev() / std::fabs(mean_);
}

double SampleSet::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double SampleSet::max() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("SampleSet::quantile: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::cdf(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(int points) const {
  std::vector<std::pair<double, double>> curve;
  if (values_.empty() || points < 2) return curve;
  const double hi = max();
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = hi * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(x, cdf(x));
  }
  return curve;
}

}  // namespace disco::util
