// Deterministic pseudo-random number generation for all DISCO experiments.
//
// Every stochastic component in this repository draws randomness through the
// engines defined here, seeded explicitly, so that every experiment --
// simulation, test, or benchmark -- is reproducible bit for bit across runs
// and machines. We implement the generators ourselves (SplitMix64 for seed
// expansion, xoshiro256** as the workhorse engine) rather than relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstdint>
#include <limits>

namespace disco::util {

/// SplitMix64: a tiny, high-quality 64-bit generator.  Used mainly to expand
/// a single user seed into the 256-bit state required by Xoshiro256StarStar,
/// per the construction recommended by the xoshiro authors.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit PRNG (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// plugged into <random> distributions if ever needed.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed = 0x9d1ce4e5b9ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (p outside [0,1] clamps).
  constexpr bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Uniform integer in [lo, hi], inclusive.  Uses Lemire-style rejection to
  /// avoid modulo bias.
  constexpr std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo + 1;  // hi == max, lo == 0 never used here
    if (range == 0) return next();            // full 64-bit range requested
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Derive an independent child generator (used to give each flow /
  /// MicroEngine / experiment repetition its own stream).
  constexpr Xoshiro256StarStar fork() noexcept {
    return Xoshiro256StarStar(next());
  }

  /// Full engine state, for checkpoint/restore of long-lived components
  /// (e.g. FlowMonitor snapshots): restoring the state resumes the exact
  /// random stream.
  struct State {
    std::uint64_t s[4];
  };

  [[nodiscard]] constexpr State state() const noexcept {
    return State{{state_[0], state_[1], state_[2], state_[3]}};
  }

  constexpr void set_state(const State& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s.s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Default engine alias used across the library.
using Rng = Xoshiro256StarStar;

}  // namespace disco::util
