// Clang Thread Safety Analysis annotations, and mutex types that carry them.
//
// The concurrency invariants of this repo -- "Registry's maps are only
// touched under mutex_", "run_on_worker is only called while control_mutex_
// serialises the control plane", "a Shard's monitor is only reached through
// its mutex" -- were previously enforced by convention, TSan runs, and code
// review.  These macros make them part of the type system: building with
//
//     cmake -B build-analyze -S . -DDISCO_ANALYZE=ON -DCMAKE_CXX_COMPILER=clang++
//
// turns on -Wthread-safety -Werror=thread-safety-analysis, and Clang proves
// at compile time that every access to a DISCO_GUARDED_BY member happens
// with its capability held, and that every DISCO_REQUIRES function is only
// called from contexts that hold it.  See docs/static-analysis.md.
//
// On GCC (the default toolchain here) every macro expands to nothing; the
// annotations are free documentation.  The macro set mirrors the standard
// Clang/Abseil vocabulary so readers coming from either recognise it:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// libstdc++'s std::mutex is not annotated as a capability, so annotating
// members with GUARDED_BY(some_std_mutex) would be rejected by the analysis
// (-Wthread-safety-attributes).  util::Mutex wraps std::mutex with the
// capability attributes, and util::MutexLock is the matching scoped lock;
// lock-protected structures in this repo use these instead of the std types
// so the analysis sees every acquire and release.
#pragma once

#include <mutex>

// clang-format off
#if defined(__clang__) && defined(__has_attribute)
#  if __has_attribute(capability)
#    define DISCO_THREAD_ANNOTATION(x) __attribute__((x))
#  endif
#endif
#ifndef DISCO_THREAD_ANNOTATION
#  define DISCO_THREAD_ANNOTATION(x)  // no-op: not Clang, or too old
#endif

/// Declares a type to be a lockable capability ("mutex", "shard", ...).
#define DISCO_CAPABILITY(name)        DISCO_THREAD_ANNOTATION(capability(name))
/// Declares an RAII type whose lifetime equals a capability hold.
#define DISCO_SCOPED_CAPABILITY       DISCO_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read or written while `mu` is held.
#define DISCO_GUARDED_BY(mu)          DISCO_THREAD_ANNOTATION(guarded_by(mu))
/// Pointee may only be dereferenced while `mu` is held.
#define DISCO_PT_GUARDED_BY(mu)       DISCO_THREAD_ANNOTATION(pt_guarded_by(mu))
/// Function may only be called while already holding the capabilities.
#define DISCO_REQUIRES(...)           DISCO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function may only be called while NOT holding them (non-reentrancy).
#define DISCO_EXCLUDES(...)           DISCO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define DISCO_ACQUIRE(...)            DISCO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define DISCO_RELEASE(...)            DISCO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define DISCO_TRY_ACQUIRE(result, ...) \
  DISCO_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function returns a reference to the capability guarding something.
#define DISCO_RETURN_CAPABILITY(mu)   DISCO_THREAD_ANNOTATION(lock_returned(mu))
/// Escape hatch; every use must carry a justification comment.
#define DISCO_NO_THREAD_SAFETY_ANALYSIS \
  DISCO_THREAD_ANNOTATION(no_thread_safety_analysis)
// clang-format on

namespace disco::util {

/// std::mutex with the capability attributes the analysis needs.  Same cost,
/// same semantics; `native()` exposes the wrapped mutex for APIs that demand
/// the std type (condition_variable waits) -- accesses made through it are
/// invisible to the analysis, so such call sites document their locking by
/// hand.
class DISCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DISCO_ACQUIRE() { mutex_.lock(); }
  void unlock() DISCO_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() DISCO_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped lock over util::Mutex -- the std::lock_guard of this vocabulary.
class DISCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DISCO_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  /// Contention-visible acquire: tries first and reports whether the lock
  /// was already held (ShardedFlowMonitor's try-lock-then-lock idiom, which
  /// counts cross-thread contention without slowing the uncontended path).
  MutexLock(Mutex& mutex, bool& contended) DISCO_ACQUIRE(mutex)
      : mutex_(mutex) {
    if (mutex_.try_lock()) {
      contended = false;
    } else {
      contended = true;
      mutex_.lock();
    }
  }

  ~MutexLock() DISCO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace disco::util
