// Deterministic fault injection -- the harness that drives the bounded-memory
// robustness layer (docs/robustness.md) through exhaustion on purpose.
//
// A *fault point* is a named site in the library where a scarce resource can
// run out in production: flow-table slot allocation, pipeline ring space, the
// monotonic clock feeding burst boundaries, the byte sink behind report
// writes.  Tests arm a point with a Plan (skip N calls, then fail M, then
// optionally every K-th, or Bernoulli(p) from a fixed seed) and the library
// behaves exactly as if the real resource had failed -- same code path, same
// counters, same recovery -- repeatably, because every schedule is a pure
// function of the plan and the call index.
//
// Cost model: the whole harness compiles to nothing unless the build sets
// -DDISCO_FAULTS=ON (CMake option, macro DISCO_FAULTS=1).  In the default
// build `fires()` is a constexpr `false` and `skew_clock()` the identity, so
// instrumented call sites are bit-identical to uninstrumented ones -- the
// acceptance bar for shipping fault points inside hot paths.
//
// Thread safety (fault builds): `fires()`/`skew_clock()` are lock-free and
// callable from any thread (the pipeline producers hit kRingFull
// concurrently).  arm()/disarm() are for quiesced test setup only; arming
// while worker threads run is a test bug, not a supported mode.
#pragma once

#include <cstdint>

#ifndef DISCO_FAULTS
#define DISCO_FAULTS 0
#endif

namespace disco::util::fault {

/// The library's injection sites.  Keep in sync with docs/robustness.md.
enum class Point : unsigned {
  kAllocFailure = 0,  ///< flow-table slot allocation (BasicFlowTable::insert_or_get)
  kRingFull,          ///< pipeline ring accept (PipelineMonitor::ingest)
  kClockSkew,         ///< packet timestamps at burst boundaries (pipeline ingest)
  kShortWrite,        ///< report byte sink (write_report)
  kCount,
};

inline constexpr unsigned kPointCount = static_cast<unsigned>(Point::kCount);

/// A deterministic failure schedule.  With `probability == 0` the schedule is
/// a pure countdown: calls 0..start_after-1 pass, the next `fail_count` fail,
/// and afterwards every `period`-th call fails (period == 0: no tail).  With
/// `probability > 0`, each call past `start_after` fails independently with
/// that probability, derived from `seed` and the call index alone -- the same
/// plan produces the same schedule on every run and every thread interleaving.
struct Plan {
  std::uint64_t start_after = 0;
  std::uint64_t fail_count = 0;
  std::uint64_t period = 0;
  double probability = 0.0;
  std::uint64_t seed = 0x5eedfa11;
  std::int64_t skew_ns = 0;  ///< applied by skew_clock() while the plan fires
};

#if DISCO_FAULTS

/// Installs `plan` at `p` and zeroes its call/trip counters.
void arm(Point p, const Plan& plan) noexcept;

/// Removes the plan at `p`; the point passes again.
void disarm(Point p) noexcept;

/// Removes every plan (test fixture teardown).
void disarm_all() noexcept;

/// Calls observed / failures injected at `p` since the last arm().
[[nodiscard]] std::uint64_t calls(Point p) noexcept;
[[nodiscard]] std::uint64_t trips(Point p) noexcept;

/// Consumes one call at `p`: true when the armed plan says this call fails.
/// Unarmed points always return false.
[[nodiscard]] bool fires(Point p) noexcept;

/// Clock-skew transform for timestamps crossing burst boundaries: when
/// kClockSkew fires for this call, returns `now_ns + skew_ns` (saturating at
/// 0 for negative skews), otherwise `now_ns` unchanged.
[[nodiscard]] std::uint64_t skew_clock(std::uint64_t now_ns) noexcept;

#else  // DISCO_FAULTS == 0: every entry point is a free no-op.

constexpr void arm(Point, const Plan&) noexcept {}
constexpr void disarm(Point) noexcept {}
constexpr void disarm_all() noexcept {}
[[nodiscard]] constexpr std::uint64_t calls(Point) noexcept { return 0; }
[[nodiscard]] constexpr std::uint64_t trips(Point) noexcept { return 0; }
[[nodiscard]] constexpr bool fires(Point) noexcept { return false; }
[[nodiscard]] constexpr std::uint64_t skew_clock(std::uint64_t now_ns) noexcept {
  return now_ns;
}

#endif  // DISCO_FAULTS

}  // namespace disco::util::fault
