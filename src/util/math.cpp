#include "util/math.hpp"

#include <algorithm>

namespace disco::util {

GeometricScale::GeometricScale(double b) : b_(b), ln_b_(std::log(b)), bm1_(b - 1.0) {
  if (!(b > 1.0) || !std::isfinite(b)) {
    throw std::invalid_argument("GeometricScale: base b must be finite and > 1");
  }
}

double choose_b(std::uint64_t max_flow, int counter_bits) {
  if (counter_bits < 1 || counter_bits > 62) {
    throw std::invalid_argument("choose_b: counter_bits must be in [1, 62]");
  }
  if (max_flow == 0) {
    throw std::invalid_argument("choose_b: max_flow must be positive");
  }
  const double c_max = static_cast<double>((std::uint64_t{1} << counter_bits) - 1);
  const double n = static_cast<double>(max_flow);

  // If the counter can hold max_flow directly, any b > 1 works; return a
  // base tiny enough that counting is (near-)exact.
  if (n <= c_max) return 1.0 + 1e-12;

  // g(b) = f_b(c_max) - n is increasing in b; bisect for the root.
  auto g = [&](double b) {
    return std::expm1(c_max * std::log(b)) / (b - 1.0) - n;
  };
  double lo = 1.0 + 1e-12;
  double hi = 4.0;
  if (g(hi) < 0.0) {
    throw std::invalid_argument("choose_b: flow too large even for b = 4");
  }
  for (int i = 0; i < 200 && (hi - lo) > 1e-15; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;  // upper end guarantees f(c_max) >= max_flow
}

}  // namespace disco::util
