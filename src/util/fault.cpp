#include "util/fault.hpp"

#if DISCO_FAULTS

#include <atomic>

#include "util/rng.hpp"
#include "util/atomic.hpp"

namespace disco::util::fault {
namespace {

// Per-point state.  `epoch` invalidates in-flight readers of a stale plan:
// fires() snapshots the plan only when the armed flag (acquire) matches the
// epoch it read, and tests arm() from quiesced setup code, so the plan
// fields themselves need no per-field atomicity.
struct PointState {
  Plan plan;
  util::atomic<bool> armed{false};
  util::atomic<std::uint64_t> call_count{0};
  util::atomic<std::uint64_t> trip_count{0};
};

PointState g_points[kPointCount];

PointState& state(Point p) noexcept {
  return g_points[static_cast<unsigned>(p)];
}

/// Stateless Bernoulli draw for call `index` under `seed`: one SplitMix64
/// step, so concurrent callers at different indices agree with a serial
/// replay of the same plan.
bool probabilistic_hit(std::uint64_t seed, std::uint64_t index,
                       double probability) noexcept {
  SplitMix64 mix(seed ^ (index * 0x9e3779b97f4a7c15ULL));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return u < probability;
}

bool plan_fires(const Plan& plan, std::uint64_t index) noexcept {
  if (index < plan.start_after) return false;
  const std::uint64_t past = index - plan.start_after;
  if (plan.probability > 0.0) {
    return probabilistic_hit(plan.seed, index, plan.probability);
  }
  if (past < plan.fail_count) return true;
  if (plan.period != 0) return (past - plan.fail_count) % plan.period == 0;
  return false;
}

}  // namespace

void arm(Point p, const Plan& plan) noexcept {
  PointState& s = state(p);
  s.armed.store(false, std::memory_order_release);
  s.plan = plan;
  s.call_count.store(0, std::memory_order_relaxed);
  s.trip_count.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void disarm(Point p) noexcept {
  state(p).armed.store(false, std::memory_order_release);
}

void disarm_all() noexcept {
  for (unsigned i = 0; i < kPointCount; ++i) {
    g_points[i].armed.store(false, std::memory_order_release);
  }
}

std::uint64_t calls(Point p) noexcept {
  return state(p).call_count.load(std::memory_order_relaxed);
}

std::uint64_t trips(Point p) noexcept {
  return state(p).trip_count.load(std::memory_order_relaxed);
}

bool fires(Point p) noexcept {
  PointState& s = state(p);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t index =
      s.call_count.fetch_add(1, std::memory_order_relaxed);
  if (!plan_fires(s.plan, index)) return false;
  s.trip_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t skew_clock(std::uint64_t now_ns) noexcept {
  if (!fires(Point::kClockSkew)) return now_ns;
  const std::int64_t skew = state(Point::kClockSkew).plan.skew_ns;
  if (skew >= 0) return now_ns + static_cast<std::uint64_t>(skew);
  const auto back = static_cast<std::uint64_t>(-skew);
  return now_ns >= back ? now_ns - back : 0;
}

}  // namespace disco::util::fault

#else  // DISCO_FAULTS == 0

// Intentionally empty: the header provides constexpr no-ops, and this
// translation unit exists so the build graph is identical in both modes.
namespace disco::util::fault {
namespace {
[[maybe_unused]] constexpr int kFaultsCompiledOut = 0;
}  // namespace
}  // namespace disco::util::fault

#endif  // DISCO_FAULTS
