// The single entry point for atomics in this codebase (lint rule
// atomic-shim-confined keeps it that way; see tools/lint_disco.py and
// docs/static-analysis.md, "Model checking").
//
// Normal builds: zero-cost aliases.  util::atomic<T> IS std::atomic<T>,
// util::shared<T> IS T, util::atomic_fence is std::atomic_thread_fence --
// no wrapper object, no extra indirection, same layout (static_asserts
// below, plus the BM_SpscRingShim / BM_SpscRingRaw bench pair guards the
// "same generated code" claim from bench JSON).
//
// DISCO_MODELCHECK builds: every operation routes through the model
// checker in src/verify, which explores schedules and weak-memory
// reads-from choices and race-checks every util::shared access.  The
// modeled types still behave correctly outside an exploration (they fall
// back to a real std::atomic cell), so a -DDISCO_MODELCHECK=ON build runs
// the entire ordinary test suite too.
//
// util::shared<T> marks plain data whose thread-safety is *protocol*
// (published by a release store, claimed by an acquire load) rather than a
// lock or an atomic -- ring slots are the canonical case.  In normal
// builds it vanishes; under the checker it is what race detection bites
// on.  Code using it must keep working when shared<T> is a class with only
// assignment and conversion-to-T (e.g. take `auto*` from span APIs, not
// `T*`).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#if defined(DISCO_MODELCHECK) && DISCO_MODELCHECK

#include "verify/model.hpp"

namespace disco::util {

template <typename T>
using atomic = verify::ModelAtomic<T>;

template <typename T>
using shared = verify::Shared<T>;

inline void atomic_fence(std::memory_order order) noexcept {
  verify::model_fence(order);
}

}  // namespace disco::util

#else  // normal build: bare std::atomic

namespace disco::util {

template <typename T>
using atomic = std::atomic<T>;

template <typename T>
using shared = T;

inline void atomic_fence(std::memory_order order) noexcept {
  std::atomic_thread_fence(order);
}

namespace shim_detail {
// The shim must be invisible in normal builds: the exact std type, and a
// shared<T> that is literally T.
static_assert(std::is_same_v<atomic<std::uint64_t>, std::atomic<std::uint64_t>>);
static_assert(std::is_same_v<atomic<bool>, std::atomic<bool>>);
static_assert(std::is_same_v<shared<std::uint64_t>, std::uint64_t>);
static_assert(sizeof(atomic<std::uint64_t>) == sizeof(std::uint64_t));
static_assert(alignof(atomic<std::uint64_t>) == alignof(std::uint64_t));
}  // namespace shim_detail

}  // namespace disco::util

#endif  // DISCO_MODELCHECK

namespace disco {
// Issue-facing spellings: disco::atomic<T> / disco::atomic_fence.
template <typename T>
using atomic = util::atomic<T>;
using util::atomic_fence;
}  // namespace disco
