// Fixed-point "Log & Exp" lookup table -- the IXP2850 implementation path.
//
// The paper's network-processor implementation cannot evaluate log_b / b^x
// directly; it precomputes both into a single combined table of 3 K 32-bit
// entries (96 Kb of on-chip memory): "the leftmost 20 bits are used for power
// computation and the rightmost 12 bits are employed to keep logarithm
// results", with "simple shift and sum" extending the table beyond 3072.
//
// The paper does not spell out the entry encoding, so this module documents
// the engineering interpretation we implement (and an ablation bench sweeps
// the resolution parameters):
//
//   * entry c packs a 20-bit mantissa of f(c) = (b^c - 1)/(b - 1) and a
//     12-bit mantissa of the increment width b^c = f(c+1) - f(c);
//   * mantissa exponents (the "shift" part) live in a small side array --
//     on hardware they are derivable from c because f grows geometrically;
//   * values for c beyond the table use the identity
//         f(x + y) = f(x) * b^y + f(y)
//     evaluated with table entries only (the paper's shift-and-sum);
//   * probabilities are realised by exact integer comparison against a
//     uniform draw, so the fixed-point DISCO update is *unbiased with respect
//     to the quantised estimator* -- quantisation only adds variance.
//
// All table values are integers; the quantised regulation function ftilde is
// forced to be strictly increasing so that update probabilities are always
// well defined.  Where the true f leaves uint64 range (large c at steep
// bases -- far past any physical byte count) ftilde saturates monotonically
// at UINT64_MAX instead of invoking shift/multiply overflow.
//
// Relation to core/decision_table.hpp: both are precomputed f/b^c tables,
// but they answer different questions.  This one models the *hardware*
// constraint -- 32-bit entries with 20/12-bit quantised mantissas, so its
// decisions define a slightly different (still unbiased w.r.t. ftilde)
// estimator.  The host-side DecisionTable stores full-precision doubles
// (the exact values GeometricScale computes), so it is a pure lookup
// acceleration of the double path with bit-identical decisions -- no new
// estimator, no added variance, just no transcendentals on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/math.hpp"

namespace disco::util {

/// Combined power/log lookup table for a fixed base b.
class LogExpTable {
 public:
  struct Config {
    double b = 1.002;        ///< regulation base, > 1
    int entries = 3072;      ///< table length (paper: 3 K)
    int pow_mantissa_bits = 20;  ///< f(c) mantissa width (paper: 20)
    int log_mantissa_bits = 12;  ///< b^c mantissa width (paper: 12)
  };

  explicit LogExpTable(const Config& config);
  explicit LogExpTable(double b) : LogExpTable(Config{.b = b}) {}

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] double b() const noexcept { return config_.b; }

  /// On-chip memory footprint in bits: `entries` packed 32-bit words plus the
  /// side exponent bytes.  With the default config this is 96 Kb + 6 KB side.
  [[nodiscard]] std::size_t storage_bits() const noexcept;

  /// Quantised f(c); exact table lookup for c < entries, shift-and-sum
  /// extension above.  Strictly increasing in c until it saturates at
  /// UINT64_MAX (only where the true f already exceeds uint64 range).
  [[nodiscard]] std::uint64_t f(std::uint64_t c) const noexcept;

  /// Quantised increment width b^c (= f(c+1) - f(c) in the unquantised
  /// world; here reconstructed from its own mantissa for c < entries).
  [[nodiscard]] std::uint64_t step(std::uint64_t c) const noexcept;

  /// Smallest j > c with f(j) >= target.  Preconditions: target > f(c).
  /// This is the integer form of ceil(f^-1(target)) used by the DISCO update.
  [[nodiscard]] std::uint64_t inverse_at_least(std::uint64_t target,
                                               std::uint64_t c) const noexcept;

 private:
  [[nodiscard]] std::uint64_t table_f(std::uint32_t c) const noexcept;
  [[nodiscard]] std::uint64_t table_step(std::uint32_t c) const noexcept;

  Config config_;
  // Packed entries: pow mantissa in the high field, log (step) mantissa low.
  std::vector<std::uint32_t> packed_;
  // Side exponents (shift amounts); uint8 suffices for 64-bit dynamic range.
  std::vector<std::uint8_t> pow_shift_;
  std::vector<std::uint8_t> step_shift_;
  std::uint32_t pow_mask_ = 0;
  std::uint32_t log_mask_ = 0;
};

}  // namespace disco::util
