// Fenwick (binary indexed) tree over non-negative weights with
// sample-by-prefix-sum -- O(log n) point update and weighted sampling.
//
// Used by the traffic interleaver to schedule flows proportionally to their
// remaining packets, so heavy flows drain at the same relative rate as mice
// and the arrival stream has no artificial single-flow tail.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace disco::util {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0), values_(n, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept {
    assert(i < values_.size());
    return values_[i];
  }

  /// Sets the weight at index i.
  void set(std::size_t i, std::uint64_t w) noexcept {
    assert(i < values_.size());
    const std::int64_t delta =
        static_cast<std::int64_t>(w) - static_cast<std::int64_t>(values_[i]);
    values_[i] = w;
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) + delta);
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree_[j]) + delta);
    }
  }

  void add(std::size_t i, std::int64_t delta) noexcept {
    set(i, static_cast<std::uint64_t>(
               static_cast<std::int64_t>(values_[i]) + delta));
  }

  /// Sum of weights in [0, i).
  [[nodiscard]] std::uint64_t prefix_sum(std::size_t i) const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  /// Smallest index i with prefix_sum(i+1) > target, i.e. the index selected
  /// by throwing `target` (in [0, total())) onto the cumulative weights.
  [[nodiscard]] std::size_t sample(std::uint64_t target) const noexcept {
    assert(target < total_);
    std::size_t pos = 0;
    std::size_t mask = pow2_floor(tree_.size() - 1);
    std::uint64_t remaining = target;
    while (mask > 0) {
      const std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= remaining) {
        remaining -= tree_[next];
        pos = next;
      }
      mask >>= 1;
    }
    return pos;  // 0-based index of the selected element
  }

 private:
  static std::size_t pow2_floor(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p * 2 <= n) p *= 2;
    return p;
  }

  std::vector<std::uint64_t> tree_;
  std::vector<std::uint64_t> values_;
  std::uint64_t total_ = 0;
};

}  // namespace disco::util
