// Indexed max-heap: a binary heap over (key, priority) pairs that supports
// update-priority-by-key in O(log n).  Used by the SD counter architecture's
// largest-counter-first counter-management algorithm, where the priority of
// a counter changes on every increment.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace disco::util {

/// Max-heap over dense keys 0..n-1 with 64-bit priorities.  All keys are
/// always present (priority 0 initially); `increase`/`set` reposition keys.
class IndexedMaxHeap {
 public:
  explicit IndexedMaxHeap(std::size_t n) : heap_(n), pos_(n), prio_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) {
      heap_[i] = i;
      pos_[i] = i;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] std::uint64_t priority(std::size_t key) const noexcept {
    assert(key < prio_.size());
    return prio_[key];
  }

  /// Key with the largest priority (ties arbitrary).
  [[nodiscard]] std::size_t top() const noexcept {
    assert(!heap_.empty());
    return heap_[0];
  }

  [[nodiscard]] std::uint64_t top_priority() const noexcept {
    return prio_[top()];
  }

  void set(std::size_t key, std::uint64_t priority) noexcept {
    assert(key < prio_.size());
    const std::uint64_t old = prio_[key];
    prio_[key] = priority;
    if (priority > old) {
      sift_up(pos_[key]);
    } else if (priority < old) {
      sift_down(pos_[key]);
    }
  }

  void increase(std::size_t key, std::uint64_t delta) noexcept {
    set(key, prio_[key] + delta);
  }

 private:
  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (prio_[heap_[parent]] >= prio_[heap_[i]]) break;
      swap_nodes(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && prio_[heap_[l]] > prio_[heap_[best]]) best = l;
      if (r < n && prio_[heap_[r]] > prio_[heap_[best]]) best = r;
      if (best == i) break;
      swap_nodes(i, best);
      i = best;
    }
  }

  void swap_nodes(std::size_t i, std::size_t j) noexcept {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i]] = i;
    pos_[heap_[j]] = j;
  }

  std::vector<std::size_t> heap_;  // heap index -> key
  std::vector<std::size_t> pos_;   // key -> heap index
  std::vector<std::uint64_t> prio_;
};

}  // namespace disco::util
