#include "util/log_table.hpp"

#include <cmath>
#include <stdexcept>

namespace disco::util {

LogExpTable::LogExpTable(const Config& config) : config_(config) {
  if (config.entries < 2) {
    throw std::invalid_argument("LogExpTable: need at least 2 entries");
  }
  if (config.pow_mantissa_bits < 4 || config.pow_mantissa_bits > 32 ||
      config.log_mantissa_bits < 4 || config.log_mantissa_bits > 32 ||
      config.pow_mantissa_bits + config.log_mantissa_bits > 64) {
    throw std::invalid_argument("LogExpTable: mantissa widths out of range");
  }
  const GeometricScale scale(config.b);  // validates b

  const int n = config.entries;
  packed_.resize(static_cast<std::size_t>(n));
  pow_shift_.resize(static_cast<std::size_t>(n));
  step_shift_.resize(static_cast<std::size_t>(n));
  pow_mask_ = config.pow_mantissa_bits >= 32
                  ? ~std::uint32_t{0}
                  : ((std::uint32_t{1} << config.pow_mantissa_bits) - 1);
  log_mask_ = config.log_mantissa_bits >= 32
                  ? ~std::uint32_t{0}
                  : ((std::uint32_t{1} << config.log_mantissa_bits) - 1);

  // Quantise y to `bits` mantissa bits: y ~= mantissa << shift.
  auto quantize = [](double y, int bits, std::uint32_t& mantissa,
                     std::uint8_t& shift) {
    if (y < 0.5) {  // f(0) = 0
      mantissa = 0;
      shift = 0;
      return;
    }
    int e = 0;
    double m = y;
    const double limit = static_cast<double>((std::uint64_t{1} << bits) - 1);
    while (m > limit) {
      m /= 2.0;
      ++e;
    }
    mantissa = static_cast<std::uint32_t>(std::llround(m));
    if (static_cast<double>(mantissa) > limit) {  // rounding pushed past limit
      mantissa >>= 1;
      ++e;
    }
    shift = static_cast<std::uint8_t>(e);
  };

  std::uint64_t prev_f = 0;
  for (int c = 0; c < n; ++c) {
    std::uint32_t fm = 0;
    std::uint32_t sm = 0;
    std::uint8_t fs = 0;
    std::uint8_t ss = 0;
    quantize(scale.f(static_cast<double>(c)), config.pow_mantissa_bits, fm, fs);
    quantize(scale.step(static_cast<double>(c)), config.log_mantissa_bits, sm, ss);
    if (sm == 0) sm = 1;  // increment width is at least one byte/packet

    // Enforce strict monotonicity of the quantised f so that update
    // probabilities have positive denominators.  The adjustment is at most
    // one ulp of the mantissa grid.
    std::uint64_t fv = static_cast<std::uint64_t>(fm) << fs;
    if (c > 0 && fv <= prev_f) {
      fv = prev_f + 1;
      // Re-derive a representable mantissa/shift for the bumped value.
      int e = 0;
      std::uint64_t m = fv;
      const std::uint64_t limit = (std::uint64_t{1} << config.pow_mantissa_bits) - 1;
      while (m > limit) {
        m = (m + 1) >> 1;  // round up so monotonicity survives re-encoding
        ++e;
      }
      fm = static_cast<std::uint32_t>(m);
      fs = static_cast<std::uint8_t>(e);
      fv = static_cast<std::uint64_t>(fm) << fs;
    }
    prev_f = fv;

    packed_[static_cast<std::size_t>(c)] =
        ((fm & pow_mask_) << config.log_mantissa_bits) | (sm & log_mask_);
    pow_shift_[static_cast<std::size_t>(c)] = fs;
    step_shift_[static_cast<std::size_t>(c)] = ss;
  }
}

std::size_t LogExpTable::storage_bits() const noexcept {
  const auto n = static_cast<std::size_t>(config_.entries);
  const auto entry_bits = static_cast<std::size_t>(config_.pow_mantissa_bits +
                                                   config_.log_mantissa_bits);
  return n * entry_bits + n * 16;  // packed fields + two side shift bytes
}

std::uint64_t LogExpTable::table_f(std::uint32_t c) const noexcept {
  const std::uint32_t w = packed_[c];
  const std::uint32_t m = (w >> config_.log_mantissa_bits) & pow_mask_;
  return static_cast<std::uint64_t>(m) << pow_shift_[c];
}

std::uint64_t LogExpTable::table_step(std::uint32_t c) const noexcept {
  const std::uint32_t m = packed_[c] & log_mask_;
  return static_cast<std::uint64_t>(m) << step_shift_[c];
}

std::uint64_t LogExpTable::f(std::uint64_t c) const noexcept {
  const auto n = static_cast<std::uint64_t>(config_.entries);
  if (c < n) return table_f(static_cast<std::uint32_t>(c));
  // Shift-and-sum extension: f(x + y) = f(x) * b^y + f(y) with y = n - 1.
  const std::uint64_t y = n - 1;
  std::uint64_t acc = 0;
  std::uint64_t rem = c;
  // Peel chunks of y from the outside in: f(rem) = f(rem - y) * b^y + f(y).
  // Iteratively: acc' = acc * b^y + f(y), applied k times over f(r).
  std::uint64_t chunks = 0;
  while (rem >= n) {
    rem -= y;
    ++chunks;
  }
  acc = table_f(static_cast<std::uint32_t>(rem));
  const std::uint64_t by = table_step(static_cast<std::uint32_t>(y));
  const std::uint64_t fy = table_f(static_cast<std::uint32_t>(y));
  for (std::uint64_t i = 0; i < chunks; ++i) {
    acc = acc * by + fy;
  }
  return acc;
}

std::uint64_t LogExpTable::step(std::uint64_t c) const noexcept {
  const auto n = static_cast<std::uint64_t>(config_.entries);
  if (c < n) return table_step(static_cast<std::uint32_t>(c));
  // b^(x + y) = b^x * b^y.
  const std::uint64_t y = n - 1;
  std::uint64_t acc = 1;
  std::uint64_t rem = c;
  const std::uint64_t by = table_step(static_cast<std::uint32_t>(y));
  while (rem >= n) {
    rem -= y;
    acc *= by;
  }
  return acc * table_step(static_cast<std::uint32_t>(rem));
}

std::uint64_t LogExpTable::inverse_at_least(std::uint64_t target,
                                            std::uint64_t c) const noexcept {
  // Gallop out from c, then binary search.  f is strictly increasing, so the
  // search is well defined; typical deltas are tiny (the whole point of
  // discount counting), so the gallop usually terminates in a step or two.
  std::uint64_t lo = c + 1;
  if (f(lo) >= target) return lo;
  std::uint64_t span = 1;
  std::uint64_t hi = lo;
  while (f(hi) < target) {
    lo = hi;
    hi += span;
    span *= 2;
  }
  // Invariant: f(lo) < target <= f(hi).
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace disco::util
