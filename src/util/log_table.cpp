#include "util/log_table.hpp"

#include <cmath>
#include <stdexcept>

namespace disco::util {

namespace {

// `m << s` with saturation instead of 64-bit shift UB / wraparound.  Stored
// shifts are capped at build time, but the monotonicity ladder can push an
// entry's re-encoded shift past the cap in extreme configurations; encode
// and decode must agree on one defined meaning for those encodings.
std::uint64_t sat_shift(std::uint64_t m, unsigned s) noexcept {
  if (m == 0) return 0;
  if (s >= 64 || m > (~std::uint64_t{0} >> s)) return ~std::uint64_t{0};
  return m << s;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > ~std::uint64_t{0} / b) return ~std::uint64_t{0};
  return a * b;
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  return a > ~std::uint64_t{0} - b ? ~std::uint64_t{0} : a + b;
}

}  // namespace

LogExpTable::LogExpTable(const Config& config) : config_(config) {
  if (config.entries < 2) {
    throw std::invalid_argument("LogExpTable: need at least 2 entries");
  }
  if (config.pow_mantissa_bits < 4 || config.pow_mantissa_bits > 32 ||
      config.log_mantissa_bits < 4 || config.log_mantissa_bits > 32 ||
      config.pow_mantissa_bits + config.log_mantissa_bits > 64) {
    throw std::invalid_argument("LogExpTable: mantissa widths out of range");
  }
  const GeometricScale scale(config.b);  // validates b

  const int n = config.entries;
  packed_.resize(static_cast<std::size_t>(n));
  pow_shift_.resize(static_cast<std::size_t>(n));
  step_shift_.resize(static_cast<std::size_t>(n));
  pow_mask_ = config.pow_mantissa_bits >= 32
                  ? ~std::uint32_t{0}
                  : ((std::uint32_t{1} << config.pow_mantissa_bits) - 1);
  log_mask_ = config.log_mantissa_bits >= 32
                  ? ~std::uint32_t{0}
                  : ((std::uint32_t{1} << config.log_mantissa_bits) - 1);

  // Quantise y to `bits` mantissa bits: y ~= mantissa << shift.  The shift
  // is capped so the encoded value keeps headroom below 2^64: true f values
  // past that exceed any physical byte count, and all the estimator needs
  // up there is a well-defined, strictly increasing encoding -- the
  // monotonicity ladder below supplies it.  (Uncapped, the 64-bit decode
  // shift was undefined behaviour; caught by UBSan.)
  auto quantize = [](double y, int bits, std::uint32_t& mantissa,
                     std::uint8_t& shift) {
    if (y < 0.5) {  // f(0) = 0
      mantissa = 0;
      shift = 0;
      return;
    }
    int e = 0;
    double m = y;
    const double limit = static_cast<double>((std::uint64_t{1} << bits) - 1);
    while (m > limit) {
      m /= 2.0;
      ++e;
    }
    mantissa = static_cast<std::uint32_t>(std::llround(m));
    if (static_cast<double>(mantissa) > limit) {  // rounding pushed past limit
      mantissa >>= 1;
      ++e;
    }
    const int max_e = 60 - bits;  // value <= ~2^60: 16x ladder headroom
    if (e > max_e) {
      e = max_e;
      mantissa = static_cast<std::uint32_t>((std::uint64_t{1} << bits) - 1);
    }
    shift = static_cast<std::uint8_t>(e);
  };

  std::uint64_t prev_f = 0;
  for (int c = 0; c < n; ++c) {
    std::uint32_t fm = 0;
    std::uint32_t sm = 0;
    std::uint8_t fs = 0;
    std::uint8_t ss = 0;
    quantize(scale.f(static_cast<double>(c)), config.pow_mantissa_bits, fm, fs);
    quantize(scale.step(static_cast<double>(c)), config.log_mantissa_bits, sm, ss);
    if (sm == 0) sm = 1;  // increment width is at least one byte/packet

    // Enforce strict monotonicity of the quantised f so that update
    // probabilities have positive denominators.  The adjustment is at most
    // one ulp of the mantissa grid.  Past the quantize cap the f entries
    // form a prev+1 ladder; the cap's headroom keeps the ladder inside
    // uint64 for every realistic configuration (and sat_shift keeps even
    // a saturated ladder well defined).
    std::uint64_t fv = sat_shift(fm, fs);
    if (c > 0 && fv <= prev_f) {
      fv = prev_f + 1;
      // Re-derive a representable mantissa/shift for the bumped value.
      int e = 0;
      std::uint64_t m = fv;
      const std::uint64_t limit = (std::uint64_t{1} << config.pow_mantissa_bits) - 1;
      while (m > limit) {
        m = (m + 1) >> 1;  // round up so monotonicity survives re-encoding
        ++e;
      }
      fm = static_cast<std::uint32_t>(m);
      fs = static_cast<std::uint8_t>(e);
      fv = sat_shift(fm, fs);
    }
    prev_f = fv;

    packed_[static_cast<std::size_t>(c)] =
        ((fm & pow_mask_) << config.log_mantissa_bits) | (sm & log_mask_);
    pow_shift_[static_cast<std::size_t>(c)] = fs;
    step_shift_[static_cast<std::size_t>(c)] = ss;
  }
}

std::size_t LogExpTable::storage_bits() const noexcept {
  const auto n = static_cast<std::size_t>(config_.entries);
  const auto entry_bits = static_cast<std::size_t>(config_.pow_mantissa_bits +
                                                   config_.log_mantissa_bits);
  return n * entry_bits + n * 16;  // packed fields + two side shift bytes
}

std::uint64_t LogExpTable::table_f(std::uint32_t c) const noexcept {
  const std::uint32_t w = packed_[c];
  const std::uint32_t m = (w >> config_.log_mantissa_bits) & pow_mask_;
  return sat_shift(m, pow_shift_[c]);
}

std::uint64_t LogExpTable::table_step(std::uint32_t c) const noexcept {
  const std::uint32_t m = packed_[c] & log_mask_;
  return sat_shift(m, step_shift_[c]);
}

std::uint64_t LogExpTable::f(std::uint64_t c) const noexcept {
  const auto n = static_cast<std::uint64_t>(config_.entries);
  if (c < n) return table_f(static_cast<std::uint32_t>(c));
  // Shift-and-sum extension: f(x + y) = f(x) * b^y + f(y) with y = n - 1.
  const std::uint64_t y = n - 1;
  std::uint64_t acc = 0;
  std::uint64_t rem = c;
  // Peel chunks of y from the outside in: f(rem) = f(rem - y) * b^y + f(y).
  // Iteratively: acc' = acc * b^y + f(y), applied k times over f(r).
  std::uint64_t chunks = 0;
  while (rem >= n) {
    rem -= y;
    ++chunks;
  }
  acc = table_f(static_cast<std::uint32_t>(rem));
  const std::uint64_t by = table_step(static_cast<std::uint32_t>(y));
  const std::uint64_t fy = table_f(static_cast<std::uint32_t>(y));
  for (std::uint64_t i = 0; i < chunks; ++i) {
    // Saturating: once the true f leaves uint64 range the estimator pins at
    // UINT64_MAX (monotone, well defined) instead of wrapping non-monotone.
    acc = sat_add(sat_mul(acc, by), fy);
  }
  return acc;
}

std::uint64_t LogExpTable::step(std::uint64_t c) const noexcept {
  const auto n = static_cast<std::uint64_t>(config_.entries);
  if (c < n) return table_step(static_cast<std::uint32_t>(c));
  // b^(x + y) = b^x * b^y.
  const std::uint64_t y = n - 1;
  std::uint64_t acc = 1;
  std::uint64_t rem = c;
  const std::uint64_t by = table_step(static_cast<std::uint32_t>(y));
  while (rem >= n) {
    rem -= y;
    acc = sat_mul(acc, by);
  }
  return sat_mul(acc, table_step(static_cast<std::uint32_t>(rem)));
}

std::uint64_t LogExpTable::inverse_at_least(std::uint64_t target,
                                            std::uint64_t c) const noexcept {
  // Gallop out from c, then binary search.  f is strictly increasing, so the
  // search is well defined; typical deltas are tiny (the whole point of
  // discount counting), so the gallop usually terminates in a step or two.
  std::uint64_t lo = c + 1;
  if (f(lo) >= target) return lo;
  std::uint64_t span = 1;
  std::uint64_t hi = lo;
  while (f(hi) < target) {
    lo = hi;
    hi += span;
    span *= 2;
  }
  // Invariant: f(lo) < target <= f(hi).
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace disco::util
