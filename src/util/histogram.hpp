// Streaming and batch statistics used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <vector>

namespace disco::util {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Coefficient of variation stddev/|mean|; 0 when mean is 0.
  [[nodiscard]] double coefficient_of_variation() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with quantile / CDF queries.  The evaluation keeps
/// per-flow relative errors (1e5-ish values), so storing them outright is the
/// simple and exact choice.
class SampleSet {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// q-quantile with linear interpolation, q in [0, 1].  quantile(0.95) is
  /// the paper's 0.95-optimistic relative error: the smallest r such that at
  /// least 95% of samples are <= r.
  [[nodiscard]] double quantile(double q) const;

  /// Empirical CDF evaluated at x: P(sample <= x).
  [[nodiscard]] double cdf(double x) const;

  /// Evenly spaced (x, P(X<=x)) curve with `points` samples spanning
  /// [0, max]; used to print the paper's Fig. 8.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(int points) const;

  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace disco::util
