// BRICK-style variable-width counter storage (after Hua et al., ANCS 2008).
//
// The paper notes (Section I/II) that BRICK/Counter-Braids-style compact
// storage is *complementary* to DISCO: DISCO shrinks counter values, BRICK
// shrinks the bits spent storing whatever values exist.  This module
// implements a simplified-but-real variable-width store in that spirit so the
// composition can be measured (bench_ablation_brick): counters live
// bit-packed at individually sized widths inside fixed buckets, widths grow
// on demand in `granularity`-bit quanta, and a per-bucket width table plays
// the role of BRICK's rank index.
//
// All storage accounting (payload bits + metadata bits) is real; widening
// rebuilds the bucket's packed payload, and rebuilds are counted.
#pragma once

#include <cstdint>
#include <vector>

namespace disco::counters {

class BrickStore {
 public:
  struct Config {
    std::size_t size = 0;
    std::size_t bucket_size = 64;  ///< logical counters per bucket
    int granularity = 4;           ///< width quantum in bits
    int max_width = 64;            ///< hard cap per counter
  };

  explicit BrickStore(const Config& config);
  BrickStore(std::size_t size, int granularity = 4)
      : BrickStore(Config{size, 64, granularity, 64}) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept;

  /// Stores v, widening the counter (and rebuilding its bucket) if needed.
  /// Throws std::overflow_error if v needs more than max_width bits.
  void set(std::size_t i, std::uint64_t v);

  /// add() convenience mirroring the other counter arrays.
  void add(std::size_t i, std::uint64_t delta) { set(i, get(i) + delta); }

  /// Payload bits + width-table metadata bits actually in use.
  [[nodiscard]] std::size_t storage_bits() const noexcept;

  /// Bucket rebuilds performed so far (each is an O(bucket) bit move).
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  struct Bucket {
    std::vector<std::uint8_t> width;   // per-counter width in bits
    std::vector<std::uint64_t> words;  // packed payload
    std::size_t payload_bits = 0;
  };

  [[nodiscard]] static std::uint64_t read_bits(const std::vector<std::uint64_t>& words,
                                               std::size_t bit, int width) noexcept;
  static void write_bits(std::vector<std::uint64_t>& words, std::size_t bit,
                         int width, std::uint64_t v) noexcept;
  [[nodiscard]] std::size_t offset_of(const Bucket& b, std::size_t slot) const noexcept;
  void widen(Bucket& b, std::size_t slot, int new_width);

  Config config_;
  std::size_t size_;
  std::vector<Bucket> buckets_;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace disco::counters
