#include "counters/anls.hpp"

#include <stdexcept>

namespace disco::counters {

AnlsICounter::AnlsICounter(double p) : p_(p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("AnlsICounter: rate must be in (0, 1]");
  }
}

double AnlsICounter::rate_for_budget(std::uint64_t max_flow, int counter_bits) {
  if (counter_bits < 1 || counter_bits > 62 || max_flow == 0) {
    throw std::invalid_argument("AnlsICounter::rate_for_budget: bad arguments");
  }
  const double capacity =
      static_cast<double>((std::uint64_t{1} << counter_bits) - 1);
  const double p = capacity / static_cast<double>(max_flow);
  return p >= 1.0 ? 1.0 : p;
}

}  // namespace disco::counters
