#include "counters/counter_braids.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace disco::counters {

CounterBraids::CounterBraids(const Config& config)
    : config_(config),
      layer1_(config.layer1_counters != 0
                  ? config.layer1_counters
                  : config.flow_capacity + config.flow_capacity / 2,
              config.layer1_bits),
      overflowed_(layer1_.size(), 1),
      layer2_((config.layer2_counters != 0
                   ? config.layer2_counters
                   : std::max<std::size_t>(8, layer1_.size() / 4)),
              0) {
  if (config.flow_capacity == 0) {
    throw std::invalid_argument("CounterBraids: zero flow capacity");
  }
  if (config.layer1_hashes < 2 || config.layer1_hashes > 8 ||
      config.layer2_hashes < 2 || config.layer2_hashes > 8) {
    throw std::invalid_argument("CounterBraids: hash counts must be in [2, 8]");
  }
  if (layer1_.size() < static_cast<std::size_t>(config.layer1_hashes) ||
      layer2_.size() < static_cast<std::size_t>(config.layer2_hashes)) {
    throw std::invalid_argument("CounterBraids: arrays smaller than hash fan-out");
  }
  // Back-fill derived sizes so config() reports the actual geometry.
  config_.layer1_counters = layer1_.size();
  config_.layer2_counters = layer2_.size();
}

std::uint32_t CounterBraids::hash_edge(std::uint64_t key, int which,
                                       std::uint64_t range) const noexcept {
  // SplitMix64 finaliser over (key, which, seed): high-quality, stateless.
  std::uint64_t z = key ^ (static_cast<std::uint64_t>(which) << 32) ^
                    config_.hash_seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z % range);
}

std::vector<std::uint32_t> CounterBraids::layer1_edges(std::uint32_t flow) const {
  // Edges of one flow must be distinct counters for the decoder's
  // exclude-self sums to be exact; rehash with a growing salt on collision.
  std::vector<std::uint32_t> edges;
  edges.reserve(static_cast<std::size_t>(config_.layer1_hashes));
  int salt = 0;
  while (edges.size() < static_cast<std::size_t>(config_.layer1_hashes)) {
    const std::uint32_t e = hash_edge(flow, salt++, layer1_.size());
    if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
      edges.push_back(e);
    }
  }
  return edges;
}

std::vector<std::uint32_t> CounterBraids::layer2_edges(std::uint32_t l1_index) const {
  std::vector<std::uint32_t> edges;
  edges.reserve(static_cast<std::size_t>(config_.layer2_hashes));
  int salt = 1000;  // disjoint salt space from layer 1
  while (edges.size() < static_cast<std::size_t>(config_.layer2_hashes)) {
    const std::uint32_t e = hash_edge(l1_index, salt++, layer2_.size());
    if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
      edges.push_back(e);
    }
  }
  return edges;
}

void CounterBraids::add(std::uint32_t flow_id, std::uint64_t amount) {
  if (flow_id >= config_.flow_capacity) {
    throw std::out_of_range("CounterBraids::add: flow_id beyond capacity");
  }
  if (amount == 0) return;
  for (std::uint32_t e : layer1_edges(flow_id)) {
    const std::uint64_t total = layer1_.get(e) + amount;
    const std::uint64_t kept = total & layer1_.max_value();
    const std::uint64_t carry = total >> layer1_.width();
    layer1_.set(e, kept);
    if (carry > 0) {
      carries_ += carry;
      overflowed_.set(e, 1);
      for (std::uint32_t e2 : layer2_edges(e)) layer2_[e2] += carry;
    }
  }
}

CounterBraids::DecodeResult CounterBraids::message_passing(
    const std::vector<std::vector<std::uint32_t>>& edges,
    const std::vector<std::uint64_t>& counter_values,
    std::size_t counter_count, int iterations) {
  // CB's alternating min/max decoder (Lu et al., Section 4): messages start
  // as lower bounds (0); each round computes nu_{j->i} = clip(c_j - sum of
  // the *other* flows' messages into j).  When the incoming messages are
  // lower bounds the nus are upper bounds and the flow combines them with
  // MIN; when they are upper bounds the nus are lower bounds and the flow
  // combines with MAX.  The per-flow upper and lower estimate sequences
  // close in on the true counts; equality of consecutive estimates means
  // exact decoding.
  const std::size_t n = edges.size();
  std::vector<std::vector<std::uint64_t>> mu(n);
  for (std::size_t i = 0; i < n; ++i) mu[i].assign(edges[i].size(), 0);

  std::vector<std::uint64_t> incoming(counter_count, 0);
  std::vector<std::uint64_t> nu;  // per-edge scratch
  std::vector<std::uint64_t> estimate(n, 0);
  std::vector<std::uint64_t> prev_estimate(n, ~std::uint64_t{0});

  DecodeResult result;
  int t = 0;
  for (; t < iterations; ++t) {
    const bool upper_round = (t % 2 == 0);  // mu are lower bounds -> nu upper

    std::fill(incoming.begin(), incoming.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = 0; e < edges[i].size(); ++e) {
        incoming[edges[i][e]] += mu[i][e];
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t deg = edges[i].size();
      nu.assign(deg, 0);
      for (std::size_t e = 0; e < deg; ++e) {
        const std::uint32_t j = edges[i][e];
        const std::uint64_t others = incoming[j] - mu[i][e];
        nu[e] = counter_values[j] > others ? counter_values[j] - others : 0;
      }
      if (upper_round) {
        // Exclude-self MIN via min / second-min.
        std::uint64_t min1 = ~std::uint64_t{0};
        std::uint64_t min2 = ~std::uint64_t{0};
        std::size_t min1_at = 0;
        for (std::size_t e = 0; e < deg; ++e) {
          if (nu[e] < min1) {
            min2 = min1;
            min1 = nu[e];
            min1_at = e;
          } else if (nu[e] < min2) {
            min2 = nu[e];
          }
        }
        for (std::size_t e = 0; e < deg; ++e) {
          mu[i][e] = (e == min1_at) ? min2 : min1;
        }
        estimate[i] = min1;
      } else {
        // Exclude-self MAX via max / second-max.
        std::uint64_t max1 = 0;
        std::uint64_t max2 = 0;
        std::size_t max1_at = 0;
        for (std::size_t e = 0; e < deg; ++e) {
          if (nu[e] > max1) {
            max2 = max1;
            max1 = nu[e];
            max1_at = e;
          } else if (nu[e] > max2) {
            max2 = nu[e];
          }
        }
        for (std::size_t e = 0; e < deg; ++e) {
          mu[i][e] = (e == max1_at) ? max2 : max1;
        }
        estimate[i] = max1;
      }
    }

    // An upper-round estimate equal to the previous lower-round estimate
    // (or vice versa) pins every count exactly.
    if (estimate == prev_estimate) {
      result.converged = true;
      ++t;
      break;
    }
    prev_estimate = estimate;
  }
  result.iterations_used = std::min(t, iterations);
  result.counts = std::move(estimate);

  // A-posteriori certificate: decoded counts must reproduce every counter.
  std::vector<std::uint64_t> check(counter_count, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t j : edges[i]) check[j] += result.counts[i];
  }
  result.verified = true;
  for (std::size_t j = 0; j < counter_count; ++j) {
    if (check[j] != counter_values[j]) {
      result.verified = false;
      break;
    }
  }
  return result;
}

CounterBraids::DecodeResult CounterBraids::decode(int iterations) const {
  // Stage 1: recover layer-1 overflow counts from layer 2.  Only flagged
  // counters are unknowns; the status bits pin every other count to zero,
  // which is what keeps this stage decodable (see header).
  std::vector<std::size_t> flagged;
  for (std::size_t j = 0; j < layer1_.size(); ++j) {
    if (overflowed_.get(j) != 0) flagged.push_back(j);
  }
  std::vector<std::vector<std::uint32_t>> l2_edges(flagged.size());
  for (std::size_t u = 0; u < flagged.size(); ++u) {
    l2_edges[u] = layer2_edges(static_cast<std::uint32_t>(flagged[u]));
  }
  const DecodeResult overflow =
      message_passing(l2_edges, layer2_, layer2_.size(), iterations);

  // Stage 2: reconstruct full layer-1 values, then recover flows.
  std::vector<std::uint64_t> full(layer1_.size());
  for (std::size_t j = 0; j < layer1_.size(); ++j) full[j] = layer1_.get(j);
  for (std::size_t u = 0; u < flagged.size(); ++u) {
    full[flagged[u]] += overflow.counts[u] << layer1_.width();
  }
  std::vector<std::vector<std::uint32_t>> l1_edges(config_.flow_capacity);
  for (std::uint32_t i = 0; i < config_.flow_capacity; ++i) {
    l1_edges[i] = layer1_edges(i);
  }
  DecodeResult result = message_passing(l1_edges, full, layer1_.size(), iterations);
  result.converged = result.converged && overflow.converged;
  result.verified = result.verified && overflow.verified;
  return result;
}

std::size_t CounterBraids::storage_bits() const noexcept {
  // Layer-2 counters are modelled at 32 bits (a real deployment would braid
  // further layers; 32 bits upper-bounds any practical depth-2 setup).  The
  // per-counter overflow status bits are part of the bill.
  return layer1_.storage_bits() + overflowed_.storage_bits() +
         layer2_.size() * 32;
}

}  // namespace disco::counters
