#include "counters/sac.hpp"

#include <cmath>
#include <stdexcept>

namespace disco::counters {

SacArray::SacArray(const Config& config)
    : k_bits_(config.estimation_bits),
      s_bits_(config.total_bits - config.estimation_bits),
      r_(config.initial_r),
      a_max_((std::uint64_t{1} << config.estimation_bits) - 1),
      mode_max_((std::uint64_t{1} << (config.total_bits - config.estimation_bits)) - 1),
      a_(config.size, config.estimation_bits),
      mode_(config.size, config.total_bits - config.estimation_bits) {
  if (config.estimation_bits < 1 || config.total_bits <= config.estimation_bits) {
    throw std::invalid_argument("SacArray: need 1 <= k < total_bits");
  }
  if (config.initial_r < 1 || config.initial_r > 16) {
    throw std::invalid_argument("SacArray: initial_r out of range");
  }
}

std::uint64_t SacArray::probabilistic_shift(std::uint64_t v, int shift,
                                            util::Rng& rng) const noexcept {
  if (shift <= 0) return v;
  if (shift >= 64) return rng.bernoulli(0.0) ? 1 : 0;  // value below one ulp
  const std::uint64_t base = v >> shift;
  const std::uint64_t frac = v & ((std::uint64_t{1} << shift) - 1);
  const bool round_up =
      frac != 0 && rng.uniform_u64(0, (std::uint64_t{1} << shift) - 1) < frac;
  return base + (round_up ? 1 : 0);
}

void SacArray::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  for (;;) {
    const std::uint64_t mode = mode_.get(i);
    const int shift = r_ * static_cast<int>(mode);
    const std::uint64_t a = a_.get(i);

    // Escalate based on the *worst-case* increment ceil(l / 2^shift), never
    // on the sampled one: accepting a draw only when it happens to fit would
    // condition the accepted increments low and bias the estimator.
    std::uint64_t max_inc;
    if (shift >= 64) {
      max_inc = 1;
    } else {
      const std::uint64_t frac_mask = shift == 0
                                          ? 0
                                          : (std::uint64_t{1} << shift) - 1;
      max_inc = (l >> shift) + ((l & frac_mask) != 0 ? 1 : 0);
    }
    if (max_inc <= a_max_ - a) {
      a_.set(i, a + probabilistic_shift(l, shift, rng));
      return;
    }

    // A could overflow: escalate this counter's mode (renormalising A by
    // 2^r), or the global r if mode is saturated.
    if (mode < mode_max_) {
      mode_.set(i, mode + 1);
      a_.set(i, probabilistic_shift(a, r_, rng));
    } else {
      global_renormalize(rng);
    }
  }
}

void SacArray::global_renormalize(util::Rng& rng) {
  ++global_renorms_;
  const int old_r = r_;
  ++r_;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    const std::uint64_t a = a_.get(i);
    const std::uint64_t mode = mode_.get(i);
    if (a == 0 && mode == 0) continue;
    // Re-encode value a * 2^(old_r * mode) under the new r: pick the smallest
    // mode' whose scale still admits an estimation part below 2^k.
    const int old_shift = old_r * static_cast<int>(mode);
    std::uint64_t new_mode = 0;
    for (;;) {
      const int new_shift = r_ * static_cast<int>(new_mode);
      const int delta = old_shift - new_shift;
      const std::uint64_t scaled =
          delta >= 0 ? (delta < 64 ? a << std::min(delta, 63) : ~std::uint64_t{0})
                     : (a >> std::min(-delta, 63));
      if (scaled <= a_max_ || new_mode == mode_max_) break;
      ++new_mode;
    }
    const int new_shift = r_ * static_cast<int>(new_mode);
    std::uint64_t new_a;
    if (new_shift >= old_shift) {
      new_a = probabilistic_shift(a, new_shift - old_shift, rng);
    } else {
      new_a = a << (old_shift - new_shift);
    }
    if (new_a > a_max_) new_a = a_max_;  // saturate; accounted as estimator error
    a_.set(i, new_a);
    mode_.set(i, new_mode);
  }
}

double SacArray::estimate(std::size_t i) const noexcept {
  const auto a = static_cast<double>(a_.get(i));
  const int shift = r_ * static_cast<int>(mode_.get(i));
  return a * std::exp2(shift);
}

void SacArray::reset() noexcept {
  a_.fill_zero();
  mode_.fill_zero();
  r_ = 1;
  global_renorms_ = 0;
}

}  // namespace disco::counters
