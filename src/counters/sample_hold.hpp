// Sample-and-Hold (Estan & Varghese, SIGCOMM 2002 -- the paper's reference
// [7], "New directions in traffic measurement and accounting").
//
// The classic heavy-hitter baseline: each byte of a packet samples the flow
// into the table with probability p; once a flow is HELD (has an entry)
// every subsequent byte is counted exactly.  Estimates add the expected
// pre-detection loss 1/p.  Small flows are usually invisible; elephants are
// counted almost exactly after an expected 1/p bytes -- the mirror image of
// DISCO's uniform relative error, measured side by side in
// bench_ablation_sample_hold.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace disco::counters {

class SampleAndHold {
 public:
  /// `byte_sampling_rate` is p: probability any single byte triggers holding.
  explicit SampleAndHold(double byte_sampling_rate) : p_(byte_sampling_rate) {
    if (!(p_ > 0.0) || p_ > 1.0) {
      throw std::invalid_argument("SampleAndHold: rate must be in (0, 1]");
    }
  }

  /// Counts a packet of l bytes.
  void add(std::uint64_t l, util::Rng& rng) noexcept {
    if (held_) {
      count_ += l;
      return;
    }
    // P(at least one of l bytes sampled) = 1 - (1-p)^l; on detection the
    // remainder of the packet is counted (the canonical implementation
    // counts the whole triggering packet).
    const double p_detect = -std::expm1(static_cast<double>(l) * std::log1p(-p_));
    if (rng.bernoulli(p_detect)) {
      held_ = true;
      count_ = l;
    }
  }

  [[nodiscard]] bool held() const noexcept { return held_; }
  [[nodiscard]] std::uint64_t raw_count() const noexcept { return count_; }

  /// Unbiased-ish estimate: held count plus the expected bytes missed before
  /// detection (1/p - the geometric mean wait), 0 for never-held flows.
  [[nodiscard]] double estimate() const noexcept {
    return held_ ? static_cast<double>(count_) + 1.0 / p_ - 1.0 : 0.0;
  }

  void reset() noexcept {
    held_ = false;
    count_ = 0;
  }

 private:
  double p_;
  bool held_ = false;
  std::uint64_t count_ = 0;
};

}  // namespace disco::counters
