// SAC -- Small Active Counters (Stanojevic, INFOCOM 2007).
//
// The strongest prior SRAM-only baseline: the paper compares DISCO against
// SAC in every accuracy experiment (Figs. 5-10, Table II).
//
// A q-bit SAC counter is split into an estimation part A of k bits and an
// exponent part `mode` of s = q - k bits; a global parameter r is shared by
// the whole array.  The represented value is
//
//     estimate = A * 2^(r * mode).
//
// An increment of l adds l / 2^(r*mode), probabilistically rounding the
// fraction.  When A overflows, `mode` grows and A renormalises (divides by
// 2^r, again with probabilistic rounding).  When any counter's `mode`
// saturates, the *global* r grows and EVERY counter renormalises -- the
// array-wide stall the paper criticises; we count those events.
//
// Notation caution: the DISCO paper's "k is set to be 3" follows the
// original SAC paper's convention where k is the width of the *mode*
// (exponent) field; the estimation part A receives the remaining bits.  The
// method adapter (stats::SacMethod) applies that split; this class itself is
// parameterised by the estimation width and leaves policy to callers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitpack.hpp"
#include "util/rng.hpp"

namespace disco::counters {

class SacArray {
 public:
  struct Config {
    std::size_t size = 0;       ///< number of counters
    int total_bits = 10;        ///< q = k + s bits per counter
    int estimation_bits = 3;    ///< k (paper uses 3 throughout)
    int initial_r = 1;          ///< starting global exponent base
  };

  explicit SacArray(const Config& config);
  SacArray(std::size_t size, int total_bits, int estimation_bits = 3)
      : SacArray(Config{size, total_bits, estimation_bits, 1}) {}

  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }
  [[nodiscard]] int total_bits() const noexcept { return k_bits_ + s_bits_; }
  [[nodiscard]] int estimation_bits() const noexcept { return k_bits_; }
  [[nodiscard]] int exponent_bits() const noexcept { return s_bits_; }
  [[nodiscard]] int r() const noexcept { return r_; }

  /// Counter SRAM footprint; the global r is a register, not SRAM.
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return a_.storage_bits() + mode_.storage_bits();
  }

  /// Number of array-wide renormalisations triggered so far (each one stalls
  /// updates on real hardware -- the cost DISCO avoids).
  [[nodiscard]] std::uint64_t global_renormalizations() const noexcept {
    return global_renorms_;
  }

  /// Adds l (bytes, or 1 for flow size counting) to counter i.
  void add(std::size_t i, std::uint64_t l, util::Rng& rng);

  /// Current estimate A * 2^(r*mode).
  [[nodiscard]] double estimate(std::size_t i) const noexcept;

  /// Raw stored fields, exposed for tests and bit accounting.
  [[nodiscard]] std::uint64_t estimation_part(std::size_t i) const noexcept {
    return a_.get(i);
  }
  [[nodiscard]] std::uint64_t mode_part(std::size_t i) const noexcept {
    return mode_.get(i);
  }

  void reset() noexcept;

 private:
  /// v / 2^shift with the fraction resolved by a Bernoulli trial, keeping
  /// the expectation exact.
  [[nodiscard]] std::uint64_t probabilistic_shift(std::uint64_t v, int shift,
                                                  util::Rng& rng) const noexcept;

  /// Grows the global r and renormalises every counter.
  void global_renormalize(util::Rng& rng);

  int k_bits_;
  int s_bits_;
  int r_;
  std::uint64_t a_max_;     ///< 2^k - 1
  std::uint64_t mode_max_;  ///< 2^s - 1
  util::BitPackedArray a_;
  util::BitPackedArray mode_;
  std::uint64_t global_renorms_ = 0;
};

}  // namespace disco::counters
