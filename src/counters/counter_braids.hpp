// Counter Braids (Lu, Montanari, Prabhakar, Dharmapurikar, Kabbani --
// SIGMETRICS 2008): the paper's reference [14], cited as complementary to
// DISCO ("BRICK/CB and the method proposed in this paper are complementary
// to each other and can work together").
//
// CB shares a small array of counters among all flows instead of giving each
// flow its own: every flow increments k random layer-1 counters; layer-1
// counters that overflow carry into a (much smaller) layer-2 array through a
// second hash stage -- the "braid".  Counting is exact-in-principle: given
// the flow list, an iterative message-passing decoder (min-sum on the
// bipartite flow/counter graph) recovers every flow's exact count with high
// probability when the load is below the decoding threshold.
//
// Trade-off versus DISCO (measured in bench_ablation_cb): CB needs no
// per-flow counter and can be exact, but decoding is offline (no per-packet
// estimates) and degrades sharply past its load threshold; DISCO gives
// on-line per-packet estimates with a small, bounded relative error.  The
// two compose: DISCO's small counter values can be braided just like exact
// values, cutting CB's required depth.
//
// This implementation is the standard two-layer construction:
//   * layer-1: m1 counters of d1 bits, k1 hashes per flow;
//   * layer-2: m2 counters (64-bit here; layer-2 is tiny), k2 hashes per
//     overflowing layer-1 counter;
//   * updates add to the k1 layer-1 counters; each wrap of a layer-1 counter
//     sends one carry into its k2 layer-2 counters and sets the counter's
//     one-bit overflow status flag (as in the original CB construction --
//     without the flag, stage-1 decoding would have to guess which of the m1
//     counters overflowed and becomes ambiguous);
//   * decoding first recovers the overflow counts of the *flagged* layer-1
//     counters from layer 2 by message passing, reconstructs full layer-1
//     values, then recovers the per-flow counts, again by message passing.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitpack.hpp"

namespace disco::counters {

class CounterBraids {
 public:
  /// Dimensioning guidance: layer-1 decodes reliably while
  /// flow_capacity / layer1_counters stays below ~0.8 (k1 = 3); layer 2
  /// decodes reliably while the number of *overflowing* layer-1 counters
  /// stays below ~0.5 x layer2_counters (k2 = 2), so pick layer1_bits large
  /// enough that only heavy-hitter counters overflow.  For byte counting
  /// with per-counter sums around 2^B, layer1_bits ~ B keeps overflows to
  /// the elephant tail.
  struct Config {
    std::size_t flow_capacity = 1024;  ///< flows the decoder will know about
    std::size_t layer1_counters = 0;   ///< m1; 0 = 1.5x flow_capacity
    int layer1_bits = 8;               ///< d1
    int layer1_hashes = 3;             ///< k1
    std::size_t layer2_counters = 0;   ///< m2; 0 = m1 / 4
    int layer2_hashes = 2;             ///< k2
    std::uint64_t hash_seed = 0xCB0305;
  };

  explicit CounterBraids(const Config& config);

  /// Adds `amount` (bytes, packets, or a DISCO counter delta) to flow
  /// `flow_id` in [0, flow_capacity).
  void add(std::uint32_t flow_id, std::uint64_t amount);

  /// Message-passing decode: returns the recovered per-flow counts for
  /// flows [0, flow_capacity).  `iterations` bounds the min-sum rounds.
  ///
  /// `converged` reports message-passing reaching a fixed point; on loopy
  /// residual graphs min-sum can oscillate in a 2-cycle even when the
  /// estimates are already exact, so the operative success signal is
  /// `verified`: an a-posteriori certificate that the decoded counts
  /// reproduce every counter sum exactly (for both layers).
  struct DecodeResult {
    std::vector<std::uint64_t> counts;
    bool converged = false;
    bool verified = false;
    int iterations_used = 0;
  };
  [[nodiscard]] DecodeResult decode(int iterations = 50) const;

  /// Counter-array SRAM footprint in bits (both layers).
  [[nodiscard]] std::size_t storage_bits() const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t layer1_carries() const noexcept { return carries_; }

  /// Exposed for tests: raw layer-1 / layer-2 state.
  [[nodiscard]] std::uint64_t layer1_value(std::size_t j) const noexcept {
    return layer1_.get(j);
  }
  [[nodiscard]] std::uint64_t layer2_value(std::size_t j) const noexcept {
    return layer2_[j];
  }

 private:
  [[nodiscard]] std::uint32_t hash_edge(std::uint64_t key, int which,
                                        std::uint64_t range) const noexcept;
  [[nodiscard]] std::vector<std::uint32_t> layer1_edges(std::uint32_t flow) const;
  [[nodiscard]] std::vector<std::uint32_t> layer2_edges(std::uint32_t l1_index) const;

  /// Generic min-sum decode of `node_count` unknowns from `counter_values`
  /// over the given edge lists (edges[i] = counters of unknown i).
  static DecodeResult message_passing(
      const std::vector<std::vector<std::uint32_t>>& edges,
      const std::vector<std::uint64_t>& counter_values,
      std::size_t counter_count, int iterations);

  Config config_;
  util::BitPackedArray layer1_;
  util::BitPackedArray overflowed_;  // 1-bit status flag per layer-1 counter
  std::vector<std::uint64_t> layer2_;
  std::uint64_t carries_ = 0;
};

}  // namespace disco::counters
