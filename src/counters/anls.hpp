// ANLS -- Adaptive Non-Linear Sampling (Hu et al., INFOCOM 2008) -- and the
// two straw-man extensions to flow volume counting the paper evaluates.
//
// ANLS proper counts *packets*: with probability p(c) = 1/(f(c+1) - f(c)) the
// counter increments by one; f(c) is the unbiased estimate.  With the paper's
// f (eq. 1) p(c) = b^-c.  When DISCO counts flow size (l = 1) it degenerates
// to exactly this scheme (paper Section IV-C).
//
// The extensions (paper Section II-B, evaluated in Tables III and IV):
//
//   * ANLS-I ("E1"): sample packets and accumulate the *bytes* of sampled
//     packets; the inverse estimate divides by the sampling rate.  The
//     paper's own E1 example uses a fixed rate (estimate = c/p), and that is
//     what we implement, provisioned so the counter fits the bit budget.
//     Its failure mode -- estimation error driven by intra-flow packet
//     length variance -- is intrinsic to E1 regardless of how the rate
//     adapts, which is precisely what Table III demonstrates.
//
//   * ANLS-II ("E2"): treat a packet of l bytes as l independent unit
//     packets and run the ANLS trial l times.  Statistically sound (it is
//     DISCO's estimator with theta = 1) but costs O(l) per packet -- the
//     paper's Table IV shows DISCO is >= 10x faster.  We keep the literal
//     per-byte loop so the timing comparison is faithful.
#pragma once

#include <cstdint>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace disco::counters {

/// Classic ANLS flow-size counter.
class AnlsCounter {
 public:
  explicit AnlsCounter(double b) : scale_(b) {}

  /// One packet arrival.
  void add_packet(util::Rng& rng) noexcept {
    const double p = std::exp(-static_cast<double>(value_) * scale_.ln_b());
    if (rng.bernoulli(p)) ++value_;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept {
    return scale_.f(static_cast<double>(value_));
  }
  void reset() noexcept { value_ = 0; }

 private:
  util::GeometricScale scale_;
  std::uint64_t value_ = 0;
};

/// ANLS-I / E1: byte-accumulating packet sampling with fixed rate p.
class AnlsICounter {
 public:
  /// p in (0, 1]: probability a packet is sampled.
  explicit AnlsICounter(double p);

  /// Provisioning helper used by the evaluation: the largest rate whose
  /// expected counter value p * max_flow still fits `counter_bits` bits.
  [[nodiscard]] static double rate_for_budget(std::uint64_t max_flow, int counter_bits);

  void add(std::uint64_t l, util::Rng& rng) noexcept {
    if (rng.bernoulli(p_)) value_ += l;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept {
    return static_cast<double>(value_) / p_;
  }
  void reset() noexcept { value_ = 0; }

 private:
  double p_;
  std::uint64_t value_ = 0;
};

/// ANLS-II / E2: per-byte ANLS trials.  Estimator-identical to ANLS on the
/// byte stream; cost is O(l) per packet by construction.
class AnlsIICounter {
 public:
  explicit AnlsIICounter(double b) : scale_(b) {}

  void add(std::uint64_t l, util::Rng& rng) noexcept {
    // Deliberately the literal per-byte loop (see header comment): E2 runs
    // one full ANLS sampling round per byte, and each round evaluates the
    // definitional sampling probability p(c) = 1/(f(c+1) - f(c)) -- two
    // regulation-function lookups plus a division, exactly the work a round
    // costs on the NP.  This is the per-packet O(l) cost Table IV measures.
    for (std::uint64_t i = 0; i < l; ++i) {
      const auto c = static_cast<double>(value_);
      const double p = 1.0 / (scale_.f(c + 1.0) - scale_.f(c));
      if (rng.bernoulli(p)) ++value_;
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept {
    return scale_.f(static_cast<double>(value_));
  }
  void reset() noexcept { value_ = 0; }

 private:
  util::GeometricScale scale_;
  std::uint64_t value_ = 0;
};

}  // namespace disco::counters
