// Adaptive NetFlow / "Building a Better NetFlow" (Estan, Keys, Moore,
// Varghese -- SIGCOMM 2004, the paper's reference [6], called BNF).
//
// Fixed flow-entry memory with an adaptive packet sampling rate: packets are
// sampled with the current rate p; when the entry table fills, p is halved
// and every existing count is renormalised by binomial subsampling (each
// recorded packet survives with probability 1/2), freeing entries whose
// counts drop to zero.  Estimates divide by the final rate.
//
// The paper notes that for flow size counting SAC behaves like BNF; this
// implementation makes the comparison direct (bench_ablation_sample_hold)
// and showcases the renormalisation stalls DISCO avoids -- the same critique
// the paper levels at SAC's global renormalisation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace disco::counters {

class AdaptiveNetFlow {
 public:
  struct Config {
    std::size_t max_entries = 1024;
    double initial_rate = 1.0;
    double decrease_factor = 0.5;  ///< p multiplier per renormalisation
  };

  explicit AdaptiveNetFlow(const Config& config);

  /// One packet of flow `flow_id` (flow size counting, as in BNF).
  void add_packet(std::uint64_t flow_id, util::Rng& rng);

  /// Estimated packets of the flow: count / p (0 for untracked flows).
  [[nodiscard]] double estimate(std::uint64_t flow_id) const noexcept;

  [[nodiscard]] double rate() const noexcept { return p_; }
  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t renormalizations() const noexcept { return renorms_; }
  /// Total per-entry subsampling operations performed by renormalisations --
  /// the work (and stall time) the adaptation costs.
  [[nodiscard]] std::uint64_t renormalization_work() const noexcept {
    return renorm_work_;
  }

 private:
  void renormalize(util::Rng& rng);

  /// Binomial(count, factor) subsample; exact for small counts, Gaussian
  /// approximation (clamped) beyond -- renormalisation touches every entry,
  /// so per-entry cost matters.
  [[nodiscard]] static std::uint64_t subsample(std::uint64_t count, double factor,
                                               util::Rng& rng);

  Config config_;
  double p_;
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
  std::uint64_t renorms_ = 0;
  std::uint64_t renorm_work_ = 0;
};

}  // namespace disco::counters
