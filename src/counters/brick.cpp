#include "counters/brick.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"

namespace disco::counters {

BrickStore::BrickStore(const Config& config) : config_(config), size_(config.size) {
  if (config.bucket_size == 0 || config.granularity < 1 ||
      config.granularity > 64 || config.max_width < config.granularity ||
      config.max_width > 64) {
    throw std::invalid_argument("BrickStore: inconsistent configuration");
  }
  const std::size_t n_buckets =
      (size_ + config.bucket_size - 1) / config.bucket_size;
  buckets_.resize(n_buckets);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const std::size_t count =
        std::min(config.bucket_size, size_ - b * config.bucket_size);
    buckets_[b].width.assign(count,
                             static_cast<std::uint8_t>(config.granularity));
    buckets_[b].payload_bits = count * static_cast<std::size_t>(config.granularity);
    buckets_[b].words.assign((buckets_[b].payload_bits + 63) / 64, 0);
  }
}

std::uint64_t BrickStore::read_bits(const std::vector<std::uint64_t>& words,
                                    std::size_t bit, int width) noexcept {
  const std::size_t word = bit / 64;
  const unsigned off = static_cast<unsigned>(bit % 64);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::uint64_t v = words[word] >> off;
  if (off + static_cast<unsigned>(width) > 64) {
    v |= words[word + 1] << (64 - off);
  }
  return v & mask;
}

void BrickStore::write_bits(std::vector<std::uint64_t>& words, std::size_t bit,
                            int width, std::uint64_t v) noexcept {
  const std::size_t word = bit / 64;
  const unsigned off = static_cast<unsigned>(bit % 64);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  words[word] = (words[word] & ~(mask << off)) | ((v & mask) << off);
  if (off + static_cast<unsigned>(width) > 64) {
    const unsigned hi_bits = off + static_cast<unsigned>(width) - 64;
    const std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;
    words[word + 1] = (words[word + 1] & ~hi_mask) | ((v & mask) >> (64 - off));
  }
}

std::size_t BrickStore::offset_of(const Bucket& b, std::size_t slot) const noexcept {
  std::size_t off = 0;
  for (std::size_t i = 0; i < slot; ++i) off += b.width[i];
  return off;
}

std::uint64_t BrickStore::get(std::size_t i) const noexcept {
  const Bucket& b = buckets_[i / config_.bucket_size];
  const std::size_t slot = i % config_.bucket_size;
  return read_bits(b.words, offset_of(b, slot), b.width[slot]);
}

void BrickStore::widen(Bucket& b, std::size_t slot, int new_width) {
  ++rebuilds_;
  // Unpack, adjust, repack -- the O(bucket) cost BRICK pays on expansion.
  std::vector<std::uint64_t> values(b.width.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < b.width.size(); ++i) {
    values[i] = read_bits(b.words, off, b.width[i]);
    off += b.width[i];
  }
  b.width[slot] = static_cast<std::uint8_t>(new_width);
  b.payload_bits = 0;
  for (std::uint8_t w : b.width) b.payload_bits += w;
  b.words.assign((b.payload_bits + 63) / 64, 0);
  off = 0;
  for (std::size_t i = 0; i < b.width.size(); ++i) {
    write_bits(b.words, off, b.width[i], values[i]);
    off += b.width[i];
  }
}

void BrickStore::set(std::size_t i, std::uint64_t v) {
  Bucket& b = buckets_[i / config_.bucket_size];
  const std::size_t slot = i % config_.bucket_size;
  const int needed = std::max(util::bit_width_u64(v), 1);
  if (needed > config_.max_width) {
    throw std::overflow_error("BrickStore: value exceeds max_width");
  }
  if (needed > b.width[slot]) {
    // Round the new width up to the granularity quantum.
    const int g = config_.granularity;
    const int new_width = std::min(config_.max_width, ((needed + g - 1) / g) * g);
    widen(b, slot, new_width);
  }
  write_bits(b.words, offset_of(b, slot), b.width[slot], v);
}

std::size_t BrickStore::storage_bits() const noexcept {
  // Payload plus metadata: each counter's width fits in ceil(log2(64/g+1))
  // bits; charge 4 bits per counter, the worst case for granularity 4.
  std::size_t bits = 0;
  for (const Bucket& b : buckets_) {
    bits += b.payload_bits + 4 * b.width.size();
  }
  return bits;
}

}  // namespace disco::counters
