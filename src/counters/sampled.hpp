// Uniform packet sampling (Sampled NetFlow) -- the classic flow-size
// baseline the related-work section starts from: sample each packet with
// probability p; with c sampled packets, n-hat = c / p is unbiased.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace disco::counters {

class SampledNetFlow {
 public:
  explicit SampledNetFlow(double p) : p_(p) {
    if (!(p > 0.0) || p > 1.0) {
      throw std::invalid_argument("SampledNetFlow: rate must be in (0, 1]");
    }
  }

  /// One packet arrival (flow size counting).
  void add_packet(util::Rng& rng) noexcept {
    if (rng.bernoulli(p_)) ++value_;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] double estimate() const noexcept {
    return static_cast<double>(value_) / p_;
  }
  [[nodiscard]] double rate() const noexcept { return p_; }
  void reset() noexcept { value_ = 0; }

 private:
  double p_;
  std::uint64_t value_ = 0;
};

}  // namespace disco::counters
