#include "counters/adaptive_netflow.hpp"

#include <cmath>
#include <stdexcept>

namespace disco::counters {

AdaptiveNetFlow::AdaptiveNetFlow(const Config& config)
    : config_(config), p_(config.initial_rate) {
  if (config.max_entries == 0) {
    throw std::invalid_argument("AdaptiveNetFlow: zero entry budget");
  }
  if (!(config.initial_rate > 0.0) || config.initial_rate > 1.0 ||
      !(config.decrease_factor > 0.0) || config.decrease_factor >= 1.0) {
    throw std::invalid_argument("AdaptiveNetFlow: rates out of range");
  }
  table_.reserve(config.max_entries);
}

std::uint64_t AdaptiveNetFlow::subsample(std::uint64_t count, double factor,
                                         util::Rng& rng) {
  if (count == 0) return 0;
  if (count <= 64) {
    std::uint64_t kept = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (rng.bernoulli(factor)) ++kept;
    }
    return kept;
  }
  // Gaussian approximation of Binomial(count, factor), clamped to range.
  const double n = static_cast<double>(count);
  const double mean = n * factor;
  const double sd = std::sqrt(n * factor * (1.0 - factor));
  // Box-Muller from two uniforms.
  const double u1 = 1.0 - rng.next_double();
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double sample = std::round(mean + sd * z);
  if (sample <= 0.0) return 0;
  if (sample >= n) return count;
  return static_cast<std::uint64_t>(sample);
}

void AdaptiveNetFlow::renormalize(util::Rng& rng) {
  ++renorms_;
  p_ *= config_.decrease_factor;
  for (auto it = table_.begin(); it != table_.end();) {
    ++renorm_work_;
    it->second = subsample(it->second, config_.decrease_factor, rng);
    if (it->second == 0) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdaptiveNetFlow::add_packet(std::uint64_t flow_id, util::Rng& rng) {
  if (!rng.bernoulli(p_)) return;
  const auto it = table_.find(flow_id);
  if (it != table_.end()) {
    ++it->second;
    return;
  }
  // New flow: make room first if the table is at budget.  Halving the rate
  // may evict enough zero-count entries; repeat until there is space (the
  // sampled packet itself is then recorded at the *new* rate, so it is
  // dropped unless it re-passes the coin flip -- the BNF behaviour).
  while (table_.size() >= config_.max_entries) {
    renormalize(rng);
    if (!rng.bernoulli(config_.decrease_factor)) return;
  }
  table_.emplace(flow_id, 1);
}

double AdaptiveNetFlow::estimate(std::uint64_t flow_id) const noexcept {
  const auto it = table_.find(flow_id);
  return it == table_.end() ? 0.0 : static_cast<double>(it->second) / p_;
}

}  // namespace disco::counters
