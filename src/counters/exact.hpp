// Exact full-size counters -- ground truth and the SD baseline's ideal.
#pragma once

#include <cstdint>
#include <vector>

#include "util/math.hpp"

namespace disco::counters {

/// Plain 64-bit counters.  Used as ground truth by every experiment and as
/// the cost model for "full-size counter" baselines (counter bits grow
/// linearly -- slope one on the paper's Fig. 9).
class ExactArray {
 public:
  explicit ExactArray(std::size_t size) : values_(size, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  void add(std::size_t i, std::uint64_t l) noexcept { values_[i] += l; }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept { return values_[i]; }

  /// Bits a fixed-width exact deployment needs for this value ("largest
  /// counter bits" methodology).
  [[nodiscard]] static int bits_required(std::uint64_t value) noexcept {
    return util::bit_width_u64(value);
  }

  void reset() noexcept { values_.assign(values_.size(), 0); }

 private:
  std::vector<std::uint64_t> values_;
};

}  // namespace disco::counters
