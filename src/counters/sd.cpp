#include "counters/sd.hpp"

#include <stdexcept>

namespace disco::counters {

SdArray::SdArray(const Config& config)
    : config_(config),
      sram_(config.size, config.sram_bits),
      dram_(config.size, 0),
      heap_(config.size),
      ticks_to_service_(config.dram_service_interval) {
  if (config.sram_bits < 1 || config.sram_bits > 32) {
    throw std::invalid_argument("SdArray: sram_bits must be in [1, 32]");
  }
  if (config.dram_service_interval < 1) {
    throw std::invalid_argument("SdArray: dram_service_interval must be >= 1");
  }
}

void SdArray::flush(std::size_t i) {
  const std::uint64_t v = sram_.get(i);
  if (v == 0) return;
  dram_[i] += v;
  sram_.set(i, 0);
  if (config_.cma == Cma::kLargestCounterFirst) heap_.set(i, 0);
}

void SdArray::background_service() {
  ++flushes_;
  if (config_.cma == Cma::kLargestCounterFirst) {
    flush(heap_.top());
  } else {
    // Round-robin sweeps the array; skipping empties would need the very
    // priority structure this policy exists to avoid.
    flush(rr_cursor_);
    rr_cursor_ = (rr_cursor_ + 1) % sram_.size();
  }
}

void SdArray::add(std::size_t i, std::uint64_t l) {
  // Byte counting can exceed the SRAM capacity in a single packet; peel off
  // full-capacity chunks as emergency flushes (each one a stall).
  const std::uint64_t cap = sram_.max_value();
  std::uint64_t remaining = l;
  for (;;) {
    const std::uint64_t cur = sram_.get(i);
    if (remaining <= cap - cur) break;
    const std::uint64_t chunk = cap - cur;
    dram_[i] += cur + chunk;
    sram_.set(i, 0);
    if (config_.cma == Cma::kLargestCounterFirst) heap_.set(i, 0);
    ++stalls_;
    remaining -= chunk;
  }
  (void)sram_.try_add(i, remaining);
  if (config_.cma == Cma::kLargestCounterFirst) {
    heap_.set(i, sram_.get(i));
  }

  if (--ticks_to_service_ <= 0) {
    ticks_to_service_ = config_.dram_service_interval;
    background_service();
  }
}

void SdArray::reset() {
  sram_.fill_zero();
  dram_.assign(dram_.size(), 0);
  for (std::size_t i = 0; i < dram_.size(); ++i) heap_.set(i, 0);
  rr_cursor_ = 0;
  ticks_to_service_ = config_.dram_service_interval;
  flushes_ = 0;
  stalls_ = 0;
}

}  // namespace disco::counters
