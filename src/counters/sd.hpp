// SD -- the hybrid SRAM & DRAM full-size counter architecture (Shah et al.,
// IEEE Micro 2002; Ramabhadran & Varghese 2003; Zhao et al. 2006).
//
// The paper's related-work category 1: every counter keeps its low-order
// bits in SRAM and its full value in DRAM.  A Counter Management Algorithm
// (CMA) flushes SRAM counters to DRAM at the (slow) DRAM service rate before
// they overflow.  Counting is exact, but reads must touch DRAM, flush
// traffic crosses the system bus, and a dedicated DRAM is required -- the
// costs DISCO avoids.
//
// This model makes those costs measurable: DRAM service happens once every
// `dram_service_interval` updates; a counter that would overflow between
// service slots forces an emergency flush that stalls the update path (a
// real line card would drop or back-pressure).  Statistics count flushes
// (bus transactions), stalls, and read latency classes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitpack.hpp"
#include "util/indexed_heap.hpp"

namespace disco::counters {

class SdArray {
 public:
  /// CMA policy for picking the SRAM counter to flush at each service slot.
  enum class Cma {
    kLargestCounterFirst,  ///< LCF(-style): flush the fullest counter
    kRoundRobin,           ///< cyclic sweep, no priority structure
  };

  struct Config {
    std::size_t size = 0;
    int sram_bits = 6;                  ///< low-order bits held on chip
    int dram_service_interval = 10;     ///< updates per DRAM write slot
    Cma cma = Cma::kLargestCounterFirst;
  };

  explicit SdArray(const Config& config);

  [[nodiscard]] std::size_t size() const noexcept { return sram_.size(); }
  [[nodiscard]] int sram_bits() const noexcept { return sram_.width(); }
  [[nodiscard]] std::size_t sram_storage_bits() const noexcept {
    return sram_.storage_bits();
  }

  /// Adds l to counter i (exact).
  void add(std::size_t i, std::uint64_t l);

  /// Exact value; models the slow read path (SRAM part + DRAM part).
  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept {
    return dram_[i] + sram_.get(i);
  }
  [[nodiscard]] double estimate(std::size_t i) const noexcept {
    return static_cast<double>(value(i));
  }

  // --- cost statistics -----------------------------------------------------
  /// Scheduled background flushes (each is one SRAM->bus->DRAM transaction).
  [[nodiscard]] std::uint64_t scheduled_flushes() const noexcept { return flushes_; }
  /// Emergency flushes: the CMA failed to keep up and the update path stalled.
  [[nodiscard]] std::uint64_t emergency_stalls() const noexcept { return stalls_; }
  /// Total bytes moved across the system bus by flushes (8 B per DRAM word).
  [[nodiscard]] std::uint64_t bus_bytes() const noexcept {
    return (flushes_ + stalls_) * 8;
  }

  void reset();

 private:
  void flush(std::size_t i);
  void background_service();

  Config config_;
  util::BitPackedArray sram_;
  std::vector<std::uint64_t> dram_;
  util::IndexedMaxHeap heap_;   // LCF priority = current SRAM value
  std::size_t rr_cursor_ = 0;   // round-robin CMA state
  int ticks_to_service_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace disco::counters
