// Vector clocks for the model-checking harness (docs/static-analysis.md,
// "Model checking").
//
// A VectorClock maps each model thread to a monotonically increasing event
// stamp; C ⊑ C' (leq) is the happens-before partial order, merge is the
// least upper bound.  The checker keeps one clock per thread (its knowledge
// of every other thread), attaches clocks to release stores so acquire
// loads can join them, and compares a single (writer, stamp) epoch against
// a reader's clock to decide whether two plain accesses are ordered -- the
// FastTrack-style epoch test, O(1) per access.
//
// Capacity is a fixed kMaxThreads: model executions are deliberately tiny
// (2-4 threads), so a flat array beats any sparse representation and keeps
// merge/leq branch-free loops the compiler unrolls.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace disco::verify {

/// Model threads per execution, including the setup/check context (id 0).
inline constexpr unsigned kMaxThreads = 8;

class VectorClock {
 public:
  [[nodiscard]] std::uint32_t at(unsigned thread) const noexcept {
    return c_[thread];
  }

  void set(unsigned thread, std::uint32_t stamp) noexcept { c_[thread] = stamp; }

  /// Advances `thread`'s own component (one event happened there).
  std::uint32_t tick(unsigned thread) noexcept { return ++c_[thread]; }

  /// Pointwise maximum: after merge(o), everything o knew, this knows.
  void merge(const VectorClock& other) noexcept {
    for (unsigned t = 0; t < kMaxThreads; ++t) {
      if (other.c_[t] > c_[t]) c_[t] = other.c_[t];
    }
  }

  /// this ⊑ other: every event this clock knows, other also knows.
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    for (unsigned t = 0; t < kMaxThreads; ++t) {
      if (c_[t] > other.c_[t]) return false;
    }
    return true;
  }

  /// Epoch test: does the single event (thread, stamp) happen-before a
  /// context holding this clock?
  [[nodiscard]] bool covers(unsigned thread, std::uint32_t stamp) const noexcept {
    return c_[thread] >= stamp;
  }

  void clear() noexcept { c_.fill(0); }

  [[nodiscard]] bool is_zero() const noexcept {
    for (unsigned t = 0; t < kMaxThreads; ++t) {
      if (c_[t] != 0) return false;
    }
    return true;
  }

  /// Compact "[3 0 7]" rendering (trailing zero components elided) for
  /// race-trace readability.
  [[nodiscard]] std::string str() const {
    unsigned last = kMaxThreads;
    while (last > 1 && c_[last - 1] == 0) --last;
    std::string out = "[";
    for (unsigned t = 0; t < last; ++t) {
      if (t != 0) out += ' ';
      out += std::to_string(c_[t]);
    }
    out += ']';
    return out;
  }

  friend bool operator==(const VectorClock& a, const VectorClock& b) noexcept {
    return a.c_ == b.c_;
  }

 private:
  std::array<std::uint32_t, kMaxThreads> c_{};
};

}  // namespace disco::verify
