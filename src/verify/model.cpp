// Implementation of the model-checking harness declared in model.hpp.
//
// One Execution object drives one run of a driver.  Worker bodies run on
// real std::threads, but cooperatively: a single `active_` token (guarded
// by `gate_`) names the one thread allowed to execute, and the token only
// moves at modeled operations.  That strict handover is what lets every
// structure below be plain, unlocked C++ -- by construction there is never
// a second thread inside the checker.
//
// Decisions (which thread runs next, which store a weak load reads) are
// delegated to a Controller.  RandomController walks the tree with a
// per-execution seeded RNG; DfsController records the path as
// {chosen, arity} nodes and backtracks by incrementing the deepest
// non-exhausted node and replaying the prefix -- the classic stateless
// model-checking loop, with an optional CHESS preemption bound applied
// before the controller is consulted.
#include "verify/model.hpp"

#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

namespace disco::verify {
namespace {

// ---------------------------------------------------------------------------
// Controllers.
// ---------------------------------------------------------------------------

class Controller {
 public:
  virtual ~Controller() = default;
  /// Picks one of n alternatives at the next decision point.
  virtual unsigned choose(unsigned n) = 0;
  /// Prepares the next execution; false means the tree is fully explored.
  virtual bool next_execution() = 0;
};

class RandomController final : public Controller {
 public:
  explicit RandomController(std::uint64_t seed) : seed_(seed) { reseed(); }

  unsigned choose(unsigned n) override {
    return static_cast<unsigned>(rng_() % n);
  }

  bool next_execution() override {
    ++index_;
    reseed();
    return true;
  }

 private:
  void reseed() {
    // splitmix-style mixing so consecutive indices give unrelated walks.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (index_ + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    rng_.seed(z ^ (z >> 31));
  }

  std::uint64_t seed_;
  std::uint64_t index_ = 0;
  std::mt19937_64 rng_;
};

class DfsController final : public Controller {
 public:
  unsigned choose(unsigned n) override {
    if (cursor_ < path_.size()) {
      const Node& node = path_[cursor_++];
      if (node.arity != n) {
        // Replay diverged: the driver consulted a different number of
        // alternatives than last time on the identical decision prefix.
        // That means it has hidden nondeterminism (time, RNG, real thread
        // communication) and DFS results would be meaningless.
        throw std::logic_error(
            "verify: driver is nondeterministic (decision arity changed "
            "during DFS replay)");
      }
      return node.chosen;
    }
    path_.push_back(Node{0, n});
    ++cursor_;
    return 0;
  }

  bool next_execution() override {
    while (!path_.empty() && path_.back().chosen + 1 >= path_.back().arity) {
      path_.pop_back();
    }
    if (path_.empty()) return false;
    ++path_.back().chosen;
    cursor_ = 0;
    return true;
  }

 private:
  struct Node {
    unsigned chosen;
    unsigned arity;
  };
  std::vector<Node> path_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Per-execution state.
// ---------------------------------------------------------------------------

const char* order_name(std::memory_order order) {
  switch (order) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

bool has_acquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_consume ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

bool has_release(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

/// One entry in a location's modification order.
struct StoreRecord {
  std::uint64_t value = 0;
  unsigned writer = 0;
  std::uint32_t stamp = 0;   ///< writer's clock component at the store
  std::uint64_t event = 0;   ///< global event number, for trace cross-refs
  VectorClock release;       ///< clock an acquire load of this store joins
};

struct Location {
  enum class Kind { kUnknown, kAtomic, kPlain, kMutex };

  const void* addr = nullptr;
  Kind kind = Kind::kUnknown;
  std::string name;
  bool dead = false;

  // Atomic locations: bounded store history.  `base` is the modification
  // order index of stores.front(); indices only grow as old stores are
  // trimmed.
  std::deque<StoreRecord> stores;
  std::uint64_t base = 0;
  std::array<std::uint64_t, kMaxThreads> read_floor{};  ///< index + 1; 0 = none
  std::array<std::uint32_t, kMaxThreads> stale_run{};

  // Plain locations: FastTrack epochs.
  unsigned last_writer = 0;
  std::uint32_t write_stamp = 0;
  std::uint64_t write_event = 0;
  std::array<std::uint32_t, kMaxThreads> read_stamps{};
  std::array<std::uint64_t, kMaxThreads> read_events{};

  // Mutex locations.
  bool locked = false;
  unsigned owner = 0;
  VectorClock handoff;  ///< accumulated release clock of past unlocks
};

struct Event {
  std::uint64_t seq = 0;
  unsigned thread = 0;
  const char* op = "";
  const Location* where = nullptr;
  std::uint64_t value = 0;
  bool has_value = false;
  std::int64_t reads_from = -1;  ///< event number of the store read, or -1
  bool stale = false;
};

struct ThreadCtx {
  enum class State { kUnused, kReady, kBlocked, kFinished };

  unsigned id = 0;
  State state = State::kUnused;
  std::function<void()> body;
  std::thread os;
  std::condition_variable cv;
  const void* waiting_on = nullptr;

  VectorClock clock;
  VectorClock fence_release;  ///< clock at the last release fence
  VectorClock acq_pending;    ///< release clocks seen by relaxed loads since
                              ///< the last acquire fence
};

constexpr std::size_t kTraceEvents = 96;

class Execution {
 public:
  Execution(const Options& options, Controller& controller)
      : opts_(options), ctl_(controller) {
    threads_[0].id = 0;
    threads_[0].state = ThreadCtx::State::kReady;
    threads_[0].clock.tick(0);
  }

  ~Execution() = default;

  // -- driver-facing ------------------------------------------------------

  void run_threads(std::vector<std::function<void()>> bodies);
  void spin_yield() { schedule(SchedKind::kYield); }
  void check(bool condition, const char* what) {
    if (condition || failed_) return;
    fail(std::string("CHECK FAILED: ") + what + "  (thread T" +
         std::to_string(tls_tid) + ")");
  }
  void set_label(const void* addr, const char* name) {
    location(addr, Location::Kind::kUnknown).name = name;
  }

  // -- modeled operations -------------------------------------------------

  std::uint64_t atomic_load(const std::atomic<std::uint64_t>* cell,
                            std::memory_order order);
  void atomic_store(std::atomic<std::uint64_t>* cell, std::uint64_t value,
                    std::memory_order order);
  std::uint64_t atomic_rmw(std::atomic<std::uint64_t>* cell, detail::Rmw op,
                           std::uint64_t operand, std::uint64_t mask,
                           std::memory_order order);
  bool atomic_cas(std::atomic<std::uint64_t>* cell, std::uint64_t& expected,
                  std::uint64_t desired, std::memory_order success,
                  std::memory_order failure);
  void fence(std::memory_order order);
  void plain_read(const void* addr);
  void plain_write(const void* addr);
  void mutex_lock(const void* addr);
  void mutex_unlock(const void* addr);
  void forget(const void* addr) noexcept {
    auto it = locations_.find(addr);
    if (it != locations_.end()) it->second->dead = true;
  }

  // -- results ------------------------------------------------------------

  bool failed() const { return failed_; }
  bool pruned() const { return pruned_; }
  const std::string& report() const { return failure_; }

 private:
  enum class SchedKind { kStep, kYield, kBlocked };

  ThreadCtx& self() { return threads_[tls_tid]; }

  static void trampoline(Execution* exec, unsigned id);

  void schedule(SchedKind kind);
  void switch_to(unsigned next, bool exiting);
  unsigned pick_runnable(bool exclude_self);
  void thread_finished();
  void declare_deadlock();

  Location& location(const void* addr, Location::Kind kind);
  /// Registers the pre-execution value (whatever `cell` holds) as the
  /// initial store, hb-before everything via the spawn edge, so weak loads
  /// can still read it after later stores land.
  static void ensure_init(Location& loc,
                          const std::atomic<std::uint64_t>* cell) {
    if (!loc.stores.empty()) return;
    StoreRecord init;
    init.value = cell->load(std::memory_order_relaxed);
    loc.stores.push_back(std::move(init));
  }
  StoreRecord& append_store(Location& loc, std::atomic<std::uint64_t>* cell,
                            std::uint64_t value, std::memory_order order,
                            const VectorClock* merge_release);
  void apply_load_sync(ThreadCtx& me, const StoreRecord& store,
                       std::memory_order order);

  void record(const Location* where, const char* op, std::uint64_t value,
              bool has_value, std::int64_t reads_from = -1,
              bool stale = false);
  void fail(std::string what);
  std::string format_trace() const;

  Options opts_;
  Controller& ctl_;

  std::array<ThreadCtx, kMaxThreads> threads_{};
  unsigned nthreads_ = 1;
  bool running_ = false;  ///< inside run_threads (workers exist)

  std::mutex gate_;
  unsigned active_ = 0;

  std::uint64_t steps_ = 0;
  std::uint64_t events_ = 0;
  unsigned preemptions_ = 0;
  bool failed_ = false;
  bool pruned_ = false;
  bool finishing_ = false;

  std::string failure_;
  std::array<Event, kTraceEvents> trace_{};

  std::unordered_map<const void*, std::unique_ptr<Location>> locations_;
  std::vector<std::unique_ptr<Location>> graveyard_;
  std::array<unsigned, 4> name_counters_{};  // indexed by Location::Kind

 public:
  static thread_local Execution* tls_exec;
  static thread_local unsigned tls_tid;
};

thread_local Execution* Execution::tls_exec = nullptr;
thread_local unsigned Execution::tls_tid = 0;

Execution* current_execution() noexcept { return Execution::tls_exec; }

// ---------------------------------------------------------------------------
// Scheduling.
// ---------------------------------------------------------------------------

unsigned Execution::pick_runnable(bool exclude_self) {
  // Deterministic candidate order (by id) so DFS replays are stable.
  unsigned candidates[kMaxThreads];
  unsigned n = 0;
  for (unsigned t = 1; t < nthreads_; ++t) {
    if (threads_[t].state != ThreadCtx::State::kReady) continue;
    if (exclude_self && t == tls_tid) continue;
    candidates[n++] = t;
  }
  if (n == 0) return kMaxThreads;  // nobody runnable
  if (n == 1) return candidates[0];
  if (finishing_) {
    // Fair round-robin: first candidate strictly after the current thread.
    for (unsigned i = 0; i < n; ++i) {
      if (candidates[i] > tls_tid) return candidates[i];
    }
    return candidates[0];
  }
  return candidates[ctl_.choose(n)];
}

void Execution::schedule(SchedKind kind) {
  if (!running_) return;  // main thread outside run_threads: nothing to do
  if (++steps_ > opts_.max_steps && !finishing_) {
    pruned_ = true;
    finishing_ = true;
  }
  if (steps_ > opts_.max_steps * 10 + 1000000) {
    // Even fair finishing-mode scheduling did not drain the driver: its
    // exit condition is unreachable (e.g. it waits for values nobody will
    // push).  Failing loudly beats a silent ctest hang; we cannot unwind
    // an exception through the noexcept frames under test, so abort.
    std::fprintf(stderr,
                 "verify: driver livelock -- %llu steps without finishing "
                 "(max_steps=%llu); the driver's exit condition looks "
                 "unreachable\n%s",
                 static_cast<unsigned long long>(steps_),
                 static_cast<unsigned long long>(opts_.max_steps),
                 format_trace().c_str());
    std::abort();
  }

  ThreadCtx& me = self();
  if (kind == SchedKind::kBlocked) {
    unsigned next = pick_runnable(/*exclude_self=*/true);
    if (next == kMaxThreads) {
      declare_deadlock();
      return;  // failed_ now set; caller breaks out of its wait loop
    }
    switch_to(next, /*exiting=*/false);
    return;
  }

  if (finishing_) {
    if (kind == SchedKind::kYield) {
      unsigned next = pick_runnable(/*exclude_self=*/true);
      if (next != kMaxThreads) switch_to(next, /*exiting=*/false);
    }
    return;
  }

  if (kind == SchedKind::kYield) {
    // Voluntary: switching is free and preferred, staying is not explored
    // (the caller told us it cannot make progress right now).
    unsigned next = pick_runnable(/*exclude_self=*/true);
    if (next != kMaxThreads) switch_to(next, /*exiting=*/false);
    return;
  }

  // Ordinary step: possibly preempt.
  if (opts_.preemption_bound >= 0 &&
      preemptions_ >= static_cast<unsigned>(opts_.preemption_bound)) {
    return;  // budget spent: keep running the current thread
  }
  unsigned next = pick_runnable(/*exclude_self=*/false);
  if (next == kMaxThreads || next == tls_tid) return;
  ++preemptions_;
  switch_to(next, /*exiting=*/false);
}

void Execution::switch_to(unsigned next, bool exiting) {
  unsigned me = tls_tid;
  std::unique_lock<std::mutex> lk(gate_);
  active_ = next;
  threads_[next].cv.notify_one();
  if (exiting) return;
  threads_[me].cv.wait(lk, [&] { return active_ == me; });
}

void Execution::declare_deadlock() {
  if (!failed_) {
    std::string what = "DEADLOCK: no runnable thread.";
    for (unsigned t = 1; t < nthreads_; ++t) {
      const ThreadCtx& ctx = threads_[t];
      if (ctx.state != ThreadCtx::State::kBlocked) continue;
      what += "\n  T" + std::to_string(t) + " blocked on ";
      auto it = locations_.find(ctx.waiting_on);
      what += it != locations_.end() ? it->second->name : "<mutex>";
    }
    fail(std::move(what));
  }
  // failed_ => finishing_: the blocked callers force-acquire and drain.
  for (unsigned t = 1; t < nthreads_; ++t) {
    if (threads_[t].state == ThreadCtx::State::kBlocked) {
      threads_[t].state = ThreadCtx::State::kReady;
      threads_[t].waiting_on = nullptr;
    }
  }
}

void Execution::trampoline(Execution* exec, unsigned id) {
  {
    std::unique_lock<std::mutex> lk(exec->gate_);
    exec->threads_[id].cv.wait(lk, [&] { return exec->active_ == id; });
  }
  tls_exec = exec;
  tls_tid = id;
  exec->threads_[id].body();
  exec->thread_finished();
  tls_exec = nullptr;
  tls_tid = 0;
}

void Execution::thread_finished() {
  ThreadCtx& me = self();
  me.state = ThreadCtx::State::kFinished;
  unsigned next = pick_runnable(/*exclude_self=*/true);
  if (next == kMaxThreads) {
    bool any_blocked = false;
    for (unsigned t = 1; t < nthreads_; ++t) {
      any_blocked |= threads_[t].state == ThreadCtx::State::kBlocked;
    }
    if (any_blocked) {
      declare_deadlock();
      next = pick_runnable(/*exclude_self=*/true);
    }
  }
  if (next != kMaxThreads) {
    switch_to(next, /*exiting=*/true);
  } else {
    switch_to(0, /*exiting=*/true);  // everyone done: wake the driver
  }
}

void Execution::run_threads(std::vector<std::function<void()>> bodies) {
  if (tls_tid != 0 || running_) {
    throw std::logic_error("verify: run_threads must not nest");
  }
  if (bodies.empty() || bodies.size() > kMaxThreads - 1) {
    throw std::logic_error("verify: run_threads needs 1..kMaxThreads-1 bodies");
  }

  nthreads_ = static_cast<unsigned>(bodies.size()) + 1;
  ThreadCtx& main = threads_[0];
  main.clock.tick(0);  // spawn event
  for (unsigned t = 1; t < nthreads_; ++t) {
    ThreadCtx& ctx = threads_[t];
    ctx.id = t;
    ctx.body = std::move(bodies[t - 1]);
    ctx.state = ThreadCtx::State::kReady;
    ctx.waiting_on = nullptr;
    ctx.clock = main.clock;  // everything the driver did pre-spawn
    ctx.clock.tick(t);
    ctx.fence_release.clear();
    ctx.acq_pending.clear();
  }
  running_ = true;
  preemptions_ = 0;
  main.state = ThreadCtx::State::kBlocked;
  for (unsigned t = 1; t < nthreads_; ++t) {
    threads_[t].os = std::thread(&Execution::trampoline, this, t);
  }

  unsigned first = pick_runnable(/*exclude_self=*/true);
  {
    std::unique_lock<std::mutex> lk(gate_);
    active_ = first;
    threads_[first].cv.notify_one();
    main.cv.wait(lk, [&] { return active_ == 0; });
  }

  for (unsigned t = 1; t < nthreads_; ++t) {
    threads_[t].os.join();
    main.clock.merge(threads_[t].clock);  // join edge
    threads_[t].state = ThreadCtx::State::kUnused;
    threads_[t].body = nullptr;
  }
  running_ = false;
  nthreads_ = 1;
  main.state = ThreadCtx::State::kReady;
}

// ---------------------------------------------------------------------------
// Locations and stores.
// ---------------------------------------------------------------------------

Location& Execution::location(const void* addr, Location::Kind kind) {
  auto it = locations_.find(addr);
  if (it != locations_.end() && it->second->dead) {
    // Address reuse: keep the old object alive for the trace, start fresh.
    graveyard_.push_back(std::move(it->second));
    locations_.erase(it);
    it = locations_.end();
  }
  if (it == locations_.end()) {
    auto loc = std::make_unique<Location>();
    loc->addr = addr;
    it = locations_.emplace(addr, std::move(loc)).first;
  }
  Location& loc = *it->second;
  if (loc.kind == Location::Kind::kUnknown &&
      kind != Location::Kind::kUnknown) {
    loc.kind = kind;
    if (loc.name.empty()) {
      static constexpr const char* kPrefix[] = {"?", "A", "V", "X"};
      unsigned idx = name_counters_[static_cast<unsigned>(kind)]++;
      loc.name = std::string(kPrefix[static_cast<unsigned>(kind)]) +
                 std::to_string(idx);
    }
  }
  return loc;
}

StoreRecord& Execution::append_store(Location& loc,
                                     std::atomic<std::uint64_t>* cell,
                                     std::uint64_t value,
                                     std::memory_order order,
                                     const VectorClock* merge_release) {
  ThreadCtx& me = self();
  StoreRecord rec;
  rec.value = value;
  rec.writer = tls_tid;
  rec.stamp = me.clock.tick(tls_tid);
  rec.event = events_;  // caller records the event right after
  // A release store publishes everything this thread has done; a relaxed
  // store publishes only up to the thread's last release fence (possibly
  // nothing).  An RMW additionally carries forward the clock of the store
  // it replaced, approximating C++ release sequences.
  rec.release = has_release(order) ? me.clock : me.fence_release;
  if (merge_release != nullptr) rec.release.merge(*merge_release);

  loc.stores.push_back(std::move(rec));
  cell->store(value, std::memory_order_relaxed);  // mirror newest value
  while (loc.stores.size() > opts_.store_history) {
    loc.stores.pop_front();
    ++loc.base;
  }
  // Own stores are coherence floors for our own later reads.
  std::uint64_t newest = loc.base + loc.stores.size() - 1;
  loc.read_floor[tls_tid] = newest + 1;
  return loc.stores.back();
}

void Execution::apply_load_sync(ThreadCtx& me, const StoreRecord& store,
                                std::memory_order order) {
  if (has_acquire(order)) {
    me.clock.merge(store.release);
  } else {
    // Remembered so a later acquire *fence* upgrades this relaxed load.
    me.acq_pending.merge(store.release);
  }
}

// ---------------------------------------------------------------------------
// Modeled atomic operations.
// ---------------------------------------------------------------------------

std::uint64_t Execution::atomic_load(const std::atomic<std::uint64_t>* cell,
                                     std::memory_order order) {
  schedule(SchedKind::kStep);
  Location& loc = location(cell, Location::Kind::kAtomic);
  ensure_init(loc, cell);
  ThreadCtx& me = self();

  const std::uint64_t newest = loc.base + loc.stores.size() - 1;
  // Happens-before floor: the newest store this thread already knows about
  // (coherence forbids reading anything older than it).
  std::uint64_t lo = loc.base;
  for (std::uint64_t i = newest + 1; i-- > loc.base;) {
    const StoreRecord& s = loc.stores[static_cast<std::size_t>(i - loc.base)];
    if (me.clock.covers(s.writer, s.stamp)) {
      lo = i;
      break;
    }
  }
  if (loc.read_floor[tls_tid] > 0 && loc.read_floor[tls_tid] - 1 > lo) {
    lo = loc.read_floor[tls_tid] - 1;  // read-read coherence
  }
  // seq_cst loads are pinned to the newest store (we model a single total
  // order for them rather than full C++ SC -- documented simplification),
  // and so is everything once a verdict is in or the memory-liveness bound
  // for this thread/location is spent.
  std::uint64_t pick = newest;
  if (lo < newest && order != std::memory_order_seq_cst && !finishing_ &&
      loc.stale_run[tls_tid] < opts_.stale_read_bound) {
    pick = lo + ctl_.choose(static_cast<unsigned>(newest - lo + 1));
  }
  const bool stale = pick != newest;
  loc.stale_run[tls_tid] = stale ? loc.stale_run[tls_tid] + 1 : 0;
  if (loc.read_floor[tls_tid] < pick + 1) loc.read_floor[tls_tid] = pick + 1;

  const StoreRecord& store =
      loc.stores[static_cast<std::size_t>(pick - loc.base)];
  apply_load_sync(me, store, order);
  me.clock.tick(tls_tid);

  static constexpr const char* kOp[] = {"load.relaxed", "load.consume",
                                        "load.acquire", "load.release",
                                        "load.acq_rel", "load.seq_cst"};
  record(&loc, kOp[static_cast<int>(order)], store.value, true,
         static_cast<std::int64_t>(store.event), stale);
  return store.value;
}

void Execution::atomic_store(std::atomic<std::uint64_t>* cell,
                             std::uint64_t value, std::memory_order order) {
  schedule(SchedKind::kStep);
  Location& loc = location(cell, Location::Kind::kAtomic);
  ensure_init(loc, cell);
  ++events_;
  append_store(loc, cell, value, order, nullptr);
  static constexpr const char* kOp[] = {"store.relaxed", "store.consume",
                                        "store.acquire", "store.release",
                                        "store.acq_rel", "store.seq_cst"};
  --events_;  // record() re-increments; keep store.event == its event number
  record(&loc, kOp[static_cast<int>(order)], value, true);
}

std::uint64_t Execution::atomic_rmw(std::atomic<std::uint64_t>* cell,
                                    detail::Rmw op, std::uint64_t operand,
                                    std::uint64_t mask,
                                    std::memory_order order) {
  schedule(SchedKind::kStep);
  Location& loc = location(cell, Location::Kind::kAtomic);
  ensure_init(loc, cell);
  // An RMW always reads the newest store in modification order.
  const StoreRecord prev = loc.stores.back();
  ThreadCtx& me = self();
  apply_load_sync(me, prev, order);

  std::uint64_t next = prev.value;
  switch (op) {
    case detail::Rmw::kAdd: next = (prev.value + operand) & mask; break;
    case detail::Rmw::kSub: next = (prev.value - operand) & mask; break;
    case detail::Rmw::kAnd: next = prev.value & operand; break;
    case detail::Rmw::kOr: next = prev.value | operand; break;
    case detail::Rmw::kXor: next = prev.value ^ operand; break;
    case detail::Rmw::kExchange: next = operand & mask; break;
  }
  ++events_;
  append_store(loc, cell, next, order, &prev.release);
  --events_;
  record(&loc, "rmw", next, true, static_cast<std::int64_t>(prev.event));
  return prev.value;
}

bool Execution::atomic_cas(std::atomic<std::uint64_t>* cell,
                           std::uint64_t& expected, std::uint64_t desired,
                           std::memory_order success,
                           std::memory_order failure) {
  schedule(SchedKind::kStep);
  Location& loc = location(cell, Location::Kind::kAtomic);
  ensure_init(loc, cell);
  const StoreRecord prev = loc.stores.back();
  ThreadCtx& me = self();
  if (prev.value == expected) {
    apply_load_sync(me, prev, success);
    ++events_;
    append_store(loc, cell, desired, success, &prev.release);
    --events_;
    record(&loc, "cas.ok", desired, true,
           static_cast<std::int64_t>(prev.event));
    return true;
  }
  // Failed CAS: a load (with the failure order) of the newest store.
  apply_load_sync(me, prev, failure);
  me.clock.tick(tls_tid);
  record(&loc, "cas.fail", prev.value, true,
         static_cast<std::int64_t>(prev.event));
  expected = prev.value;
  return false;
}

void Execution::fence(std::memory_order order) {
  schedule(SchedKind::kStep);
  ThreadCtx& me = self();
  if (has_acquire(order)) {
    me.clock.merge(me.acq_pending);
    me.acq_pending.clear();
  }
  if (has_release(order)) {
    me.fence_release = me.clock;
  }
  me.clock.tick(tls_tid);
  record(nullptr,
         order == std::memory_order_seq_cst  ? "fence.seq_cst"
         : has_release(order)                ? "fence.release"
                                             : "fence.acquire",
         0, false);
}

// ---------------------------------------------------------------------------
// Plain accesses (race detection only -- not scheduling points).
// ---------------------------------------------------------------------------

void Execution::plain_read(const void* addr) {
  Location& loc = location(addr, Location::Kind::kPlain);
  ThreadCtx& me = self();
  if (!failed_ && loc.write_stamp != 0 &&
      !me.clock.covers(loc.last_writer, loc.write_stamp)) {
    record(&loc, "read", 0, false);
    fail("DATA RACE on " + loc.name + ": plain read by T" +
         std::to_string(tls_tid) + " (clock " + me.clock.str() +
         ") is concurrent with the plain write by T" +
         std::to_string(loc.last_writer) + " at event #" +
         std::to_string(loc.write_event) + " (epoch T" +
         std::to_string(loc.last_writer) + ":" +
         std::to_string(loc.write_stamp) + ")");
    return;
  }
  me.clock.tick(tls_tid);
  loc.read_stamps[tls_tid] = me.clock.at(tls_tid);
  loc.read_events[tls_tid] = events_ + 1;
  record(&loc, "read", 0, false);
}

void Execution::plain_write(const void* addr) {
  Location& loc = location(addr, Location::Kind::kPlain);
  ThreadCtx& me = self();
  if (!failed_) {
    if (loc.write_stamp != 0 &&
        !me.clock.covers(loc.last_writer, loc.write_stamp)) {
      record(&loc, "write", 0, false);
      fail("DATA RACE on " + loc.name + ": plain write by T" +
           std::to_string(tls_tid) + " (clock " + me.clock.str() +
           ") is concurrent with the plain write by T" +
           std::to_string(loc.last_writer) + " at event #" +
           std::to_string(loc.write_event));
      return;
    }
    for (unsigned t = 0; t < kMaxThreads; ++t) {
      if (t == tls_tid || loc.read_stamps[t] == 0) continue;
      if (!me.clock.covers(t, loc.read_stamps[t])) {
        record(&loc, "write", 0, false);
        fail("DATA RACE on " + loc.name + ": plain write by T" +
             std::to_string(tls_tid) + " (clock " + me.clock.str() +
             ") is concurrent with the plain read by T" + std::to_string(t) +
             " at event #" + std::to_string(loc.read_events[t]) + " (epoch T" +
             std::to_string(t) + ":" + std::to_string(loc.read_stamps[t]) +
             ")");
        return;
      }
    }
  }
  me.clock.tick(tls_tid);
  loc.last_writer = tls_tid;
  loc.write_stamp = me.clock.at(tls_tid);
  loc.write_event = events_ + 1;
  // This write is ordered after every recorded read (just checked), so by
  // transitivity future accesses only need to be checked against the write.
  loc.read_stamps.fill(0);
  record(&loc, "write", 0, false);
}

// ---------------------------------------------------------------------------
// Mutexes.
// ---------------------------------------------------------------------------

void Execution::mutex_lock(const void* addr) {
  schedule(SchedKind::kStep);
  Location& loc = location(addr, Location::Kind::kMutex);
  ThreadCtx& me = self();
  while (loc.locked && !failed_) {
    me.state = ThreadCtx::State::kBlocked;
    me.waiting_on = addr;
    schedule(SchedKind::kBlocked);
    // Resumed: either the mutex was released (unlock marked us kReady) or a
    // deadlock verdict flipped failed_ and force-released everyone.
  }
  me.state = ThreadCtx::State::kReady;
  me.waiting_on = nullptr;
  loc.locked = true;
  loc.owner = tls_tid;
  me.clock.merge(loc.handoff);
  me.clock.tick(tls_tid);
  record(&loc, "lock", 0, false);
}

void Execution::mutex_unlock(const void* addr) {
  schedule(SchedKind::kStep);
  Location& loc = location(addr, Location::Kind::kMutex);
  ThreadCtx& me = self();
  loc.locked = false;
  loc.handoff.merge(me.clock);
  me.clock.tick(tls_tid);
  for (unsigned t = 1; t < nthreads_; ++t) {
    if (threads_[t].state == ThreadCtx::State::kBlocked &&
        threads_[t].waiting_on == addr) {
      threads_[t].state = ThreadCtx::State::kReady;
      threads_[t].waiting_on = nullptr;
    }
  }
  record(&loc, "unlock", 0, false);
}

// ---------------------------------------------------------------------------
// Traces and failure reports.
// ---------------------------------------------------------------------------

void Execution::record(const Location* where, const char* op,
                       std::uint64_t value, bool has_value,
                       std::int64_t reads_from, bool stale) {
  Event& ev = trace_[events_ % kTraceEvents];
  ++events_;
  ev.seq = events_;
  ev.thread = tls_tid;
  ev.op = op;
  ev.where = where;
  ev.value = value;
  ev.has_value = has_value;
  ev.reads_from = reads_from;
  ev.stale = stale;
}

std::string Execution::format_trace() const {
  std::string out = "  last events (oldest first):\n";
  const std::uint64_t from =
      events_ > kTraceEvents ? events_ - kTraceEvents : 0;
  for (std::uint64_t i = from; i < events_; ++i) {
    const Event& ev = trace_[i % kTraceEvents];
    char head[64];
    std::snprintf(head, sizeof(head), "    #%-4llu T%u  ",
                  static_cast<unsigned long long>(ev.seq), ev.thread);
    out += head;
    if (ev.where != nullptr) {
      out += ev.where->name;
      out += ' ';
    }
    out += ev.op;
    if (ev.has_value) {
      out += " = ";
      out += std::to_string(ev.value);
    }
    if (ev.reads_from >= 0) {
      out += "  (reads-from #";
      out += std::to_string(ev.reads_from);
      if (ev.stale) out += ", stale";
      out += ')';
    }
    out += '\n';
  }
  return out;
}

void Execution::fail(std::string what) {
  if (failed_) return;
  failed_ = true;
  finishing_ = true;
  failure_ = "verify: " + what + "\n" + format_trace();
}

// ---------------------------------------------------------------------------
// detail:: entry points and the public API.
// ---------------------------------------------------------------------------

Execution* exec() { return current_execution(); }

struct TlsGuard {
  explicit TlsGuard(Execution* e) {
    Execution::tls_exec = e;
    Execution::tls_tid = 0;
  }
  ~TlsGuard() { Execution::tls_exec = nullptr; }
};

}  // namespace

namespace detail {

bool modeled() noexcept { return exec() != nullptr; }

std::uint64_t atomic_load(const std::atomic<std::uint64_t>* cell,
                          std::memory_order order) {
  return exec()->atomic_load(cell, order);
}

void atomic_store(std::atomic<std::uint64_t>* cell, std::uint64_t value,
                  std::memory_order order) {
  exec()->atomic_store(cell, value, order);
}

std::uint64_t atomic_rmw(std::atomic<std::uint64_t>* cell, Rmw op,
                         std::uint64_t operand, std::uint64_t mask,
                         std::memory_order order) {
  return exec()->atomic_rmw(cell, op, operand, mask, order);
}

bool atomic_cas(std::atomic<std::uint64_t>* cell, std::uint64_t& expected,
                std::uint64_t desired, std::memory_order success,
                std::memory_order failure) {
  return exec()->atomic_cas(cell, expected, desired, success, failure);
}

void fence(std::memory_order order) { exec()->fence(order); }

void plain_read(const void* addr) { exec()->plain_read(addr); }

void plain_write(const void* addr) { exec()->plain_write(addr); }

void mutex_lock(const void* addr) { exec()->mutex_lock(addr); }

void mutex_unlock(const void* addr) { exec()->mutex_unlock(addr); }

void forget(const void* addr) noexcept {
  if (Execution* e = exec()) e->forget(addr);
}

}  // namespace detail

void run_threads(std::vector<std::function<void()>> bodies) {
  Execution* e = exec();
  if (e == nullptr) {
    throw std::logic_error("verify: run_threads outside explore()");
  }
  e->run_threads(std::move(bodies));
}

void mc_check(bool condition, const char* what) {
  if (Execution* e = exec()) {
    e->check(condition, what);
    return;
  }
  if (!condition) {
    throw std::logic_error(std::string("verify: mc_check failed outside "
                                       "explore(): ") +
                           what);
  }
}

void spin_yield() {
  if (Execution* e = exec()) {
    e->spin_yield();
    return;
  }
  std::this_thread::yield();
}

void label(const void* addr, const char* name) {
  if (Execution* e = exec()) e->set_label(addr, name);
}

Result explore(const Options& options, const std::function<void()>& driver) {
  if (exec() != nullptr) {
    throw std::logic_error("verify: explore() must not nest");
  }
  std::unique_ptr<Controller> controller;
  if (options.exhaustive) {
    controller = std::make_unique<DfsController>();
  } else {
    controller = std::make_unique<RandomController>(options.seed);
  }

  Result result;
  for (;;) {
    Execution execution(options, *controller);
    {
      TlsGuard guard(&execution);
      driver();
    }
    ++result.executions;
    if (execution.pruned()) ++result.pruned;
    if (execution.failed()) {
      result.failed = true;
      result.report = execution.report();
      break;
    }
    if (!controller->next_execution()) {
      result.exhausted = options.exhaustive;
      break;
    }
    if (result.executions >= options.max_executions) break;
  }
  return result;
}

}  // namespace disco::verify
