// Model-checking harness for the repo's lock-free code -- a small
// relacy/CDSChecker-style stateless explorer (docs/static-analysis.md,
// "Model checking").
//
// A *driver* is an ordinary function: it builds the state under test on its
// stack, hands thread bodies to run_threads(), and asserts invariants with
// mc_check() after the join.  explore() runs that driver many times, each
// time steering every scheduling decision and every atomic read through a
// Controller:
//
//   * RANDOM mode (Options.exhaustive = false) performs seeded random walks
//     -- cheap, reproducible smoke over deep interleavings;
//   * EXHAUSTIVE mode enumerates the full decision tree by DFS, optionally
//     under a CHESS-style preemption bound (Options.preemption_bound): with
//     bound p every schedule that needs at most p involuntary context
//     switches is covered, which finds the overwhelming majority of real
//     concurrency bugs at a tiny fraction of the unbounded tree.
//
// Weak memory is simulated, not just SC interleavings: every atomic
// location keeps a short history of stores, and a non-seq_cst load may read
// any store that coherence and happens-before still allow -- the checker
// *branches* on that choice, so store-buffering outcomes and stale relaxed
// reads are explored deterministically.  Happens-before is tracked with
// vector clocks (acquire loads join the clock attached by release stores;
// fences follow the C++ upgrade rules; mutexes and thread create/join edge
// normally), and every plain access through verify::Shared<T> is checked
// against those clocks FastTrack-style: a pair of unordered accesses, one
// of them a write, is a data race and fails the exploration with a
// per-thread event trace.
//
// Threads are real std::threads driven cooperatively: exactly one runs at a
// time, and control passes only at modeled operations, so checker state
// needs no internal locking.  Failure never unwinds through user frames
// (the ring's methods are noexcept): once a verdict is reached the
// execution switches to a fair "finishing" mode -- round-robin scheduling,
// loads pinned to the newest store, mutexes force-granted -- and runs the
// driver to natural completion.
//
// Production code reaches this header only through util/atomic.hpp, and
// only when built with -DDISCO_MODELCHECK=ON (or a per-target
// DISCO_MODELCHECK=1, the way tests/CMakeLists.txt compiles the
// test_modelcheck_* drivers).  The checker itself is ordinary portable
// C++ with no dependency on that macro.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "verify/vector_clock.hpp"

namespace disco::verify {

// --------------------------------------------------------------------------
// Exploration API.
// --------------------------------------------------------------------------

struct Options {
  /// Base seed for RANDOM mode (execution i walks with seed ^ f(i)).
  std::uint64_t seed = 1;
  /// RANDOM mode: number of walks.  EXHAUSTIVE mode: safety cap on the tree
  /// (exceeding it clears Result.exhausted instead of running forever).
  std::uint64_t max_executions = 4096;
  /// DFS over the full decision tree instead of random walks.
  bool exhaustive = false;
  /// CHESS-style bound on involuntary context switches per execution in
  /// EXHAUSTIVE mode; -1 = unbounded.  Voluntary switches (spin_yield,
  /// blocking, finishing) are always free.
  int preemption_bound = -1;
  /// Per-execution step bound: exceeding it marks the schedule pruned and
  /// finishes it fairly (livelock guard; counted in Result.pruned).
  std::uint64_t max_steps = 200000;
  /// Stores kept per atomic location; older stores stop being readable
  /// (bounding the weak-memory window, like a finite store buffer).
  unsigned store_history = 8;
  /// Consecutive non-newest reads a thread may take from one location
  /// before being forced to the newest store -- the memory-liveness bound
  /// that keeps polling loops finite under DFS.
  unsigned stale_read_bound = 2;
};

struct Result {
  std::uint64_t executions = 0;  ///< drivers actually run
  std::uint64_t pruned = 0;      ///< executions cut short by max_steps
  bool exhausted = false;        ///< EXHAUSTIVE: the whole tree was covered
  bool failed = false;           ///< race / assertion / deadlock found
  std::string report;            ///< human-readable verdict + event trace
};

/// Runs `driver` under every schedule the options ask for.  Returns after
/// the first failure (Result.report explains it) or when the budget /
/// decision tree is spent.  Re-entrant; not thread-safe (one exploration
/// per thread at a time).
Result explore(const Options& options, const std::function<void()>& driver);

/// Spawns one model thread per body, runs them under the active
/// exploration to completion, joins them (with the usual happens-before
/// edges), and returns.  Must be called from inside a driver; at most
/// kMaxThreads - 1 bodies; no nesting.
void run_threads(std::vector<std::function<void()>> bodies);

/// Driver-visible assertion: records a failure (with trace) instead of
/// aborting, so the execution can finish cleanly.  Usable from thread
/// bodies and from the post-join section of a driver.
void mc_check(bool condition, const char* what);

/// Voluntary yield for polling loops ("ring empty, let someone else run").
/// Under exploration this is a scheduling point that prefers another
/// runnable thread and never costs preemption budget; outside exploration
/// it is std::this_thread::yield().
void spin_yield();

/// Attaches a human-readable name to the atomic / shared variable / mutex
/// at `addr` for event traces ("done_flag" instead of "A3").  No-op
/// outside an exploration.
void label(const void* addr, const char* name);

// --------------------------------------------------------------------------
// Modeled primitives.  detail:: functions are implemented in model.cpp and
// are only ever called while an exploration is active on this thread.
// --------------------------------------------------------------------------

namespace detail {

/// True when the calling thread is running inside an exploration.
[[nodiscard]] bool modeled() noexcept;

enum class Rmw { kAdd, kSub, kAnd, kOr, kXor, kExchange };

std::uint64_t atomic_load(const std::atomic<std::uint64_t>* cell,
                          std::memory_order order);
void atomic_store(std::atomic<std::uint64_t>* cell, std::uint64_t value,
                  std::memory_order order);
std::uint64_t atomic_rmw(std::atomic<std::uint64_t>* cell, Rmw op,
                         std::uint64_t operand, std::uint64_t mask,
                         std::memory_order order);
bool atomic_cas(std::atomic<std::uint64_t>* cell, std::uint64_t& expected,
                std::uint64_t desired, std::memory_order success,
                std::memory_order failure);
void fence(std::memory_order order);
void plain_read(const void* addr);
void plain_write(const void* addr);
void mutex_lock(const void* addr);
void mutex_unlock(const void* addr);
/// The object at `addr` is being destroyed; its history stays available for
/// traces but the address may be reused by a new object.
void forget(const void* addr) noexcept;

}  // namespace detail

// --------------------------------------------------------------------------
// ModelAtomic<T>: the DISCO_MODELCHECK face of disco::util::atomic<T>.
// Mirrors the std::atomic member set this repo uses; every operation is a
// scheduling point and a reads-from choice under exploration, and a plain
// std::atomic operation (on `cell_`, which always holds the newest value)
// when no exploration is active -- so a DISCO_MODELCHECK=ON build still
// runs the ordinary test suite correctly, just slower.
// --------------------------------------------------------------------------

template <typename T>
class ModelAtomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "ModelAtomic models word-sized trivially copyable types");

 public:
  constexpr ModelAtomic() noexcept : ModelAtomic(T{}) {}
  constexpr ModelAtomic(T value) noexcept : cell_(to_bits(value)) {}
  ~ModelAtomic() { detail::forget(&cell_); }

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order) const noexcept {
    if (detail::modeled()) return from_bits(detail::atomic_load(&cell_, order));
    return from_bits(cell_.load(order));
  }

  void store(T value, std::memory_order order) noexcept {
    if (detail::modeled()) {
      detail::atomic_store(&cell_, to_bits(value), order);
      return;
    }
    cell_.store(to_bits(value), order);
  }

  T exchange(T value, std::memory_order order) noexcept {
    if (detail::modeled()) {
      return from_bits(detail::atomic_rmw(&cell_, detail::Rmw::kExchange,
                                          to_bits(value), mask(), order));
    }
    return from_bits(cell_.exchange(to_bits(value), order));
  }

  T fetch_add(T delta, std::memory_order order) noexcept {
    static_assert(sizeof(T) == 8, "sub-word RMW arithmetic is not modeled");
    if (detail::modeled()) {
      return from_bits(detail::atomic_rmw(&cell_, detail::Rmw::kAdd,
                                          to_bits(delta), mask(), order));
    }
    return from_bits(cell_.fetch_add(to_bits(delta), order));
  }

  T fetch_sub(T delta, std::memory_order order) noexcept {
    static_assert(sizeof(T) == 8, "sub-word RMW arithmetic is not modeled");
    if (detail::modeled()) {
      return from_bits(detail::atomic_rmw(&cell_, detail::Rmw::kSub,
                                          to_bits(delta), mask(), order));
    }
    return from_bits(cell_.fetch_sub(to_bits(delta), order));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) noexcept {
    std::uint64_t bits = to_bits(expected);
    bool ok;
    if (detail::modeled()) {
      ok = detail::atomic_cas(&cell_, bits, to_bits(desired), success, failure);
    } else {
      ok = cell_.compare_exchange_strong(bits, to_bits(desired), success,
                                         failure);
    }
    expected = from_bits(bits);
    return ok;
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) noexcept {
    // The model never fails spuriously: weak == strong here (legal -- weak
    // is allowed to behave strongly; it only narrows the explored space).
    return compare_exchange_strong(expected, desired, success, failure);
  }

 private:
  static constexpr std::uint64_t mask() noexcept {
    return sizeof(T) == 8 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << (8 * sizeof(T))) - 1;
  }
  static constexpr std::uint64_t to_bits(T value) noexcept {
    if constexpr (std::is_integral_v<T>) {
      return static_cast<std::uint64_t>(value) & mask();
    } else {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(T));
      return bits;
    }
  }
  static constexpr T from_bits(std::uint64_t bits) noexcept {
    if constexpr (std::is_integral_v<T>) {
      return static_cast<T>(bits & mask());
    } else {
      T value{};
      std::memcpy(&value, &bits, sizeof(T));
      return value;
    }
  }

  /// Always holds the newest value in modification order, so non-modeled
  /// contexts (and the finishing mode's forced-fresh loads) read something
  /// meaningful, and construction before an exploration seeds the initial
  /// store.  mutable: std::atomic::load is const and so is ours, but the
  /// modeled path updates checker bookkeeping keyed on this address.
  mutable std::atomic<std::uint64_t> cell_;
};

// --------------------------------------------------------------------------
// Shared<T>: a plain (non-atomic) variable under race detection -- the
// DISCO_MODELCHECK face of disco::util::shared<T> (which is just T in
// normal builds).  Reads and writes are NOT scheduling points (the race
// verdict is pure clock math, independent of where the scheduler actually
// preempted), which keeps the explored tree small.
// --------------------------------------------------------------------------

template <typename T>
class Shared {
 public:
  Shared() = default;
  Shared(const T& value) : value_(value) {}
  ~Shared() { detail::forget(this); }

  Shared(const Shared& other) : value_(other.read()) {
    if (detail::modeled()) detail::plain_write(this);
  }
  Shared& operator=(const Shared& other) {
    *this = other.read();
    return *this;
  }
  Shared& operator=(const T& value) {
    if (detail::modeled()) detail::plain_write(this);
    value_ = value;
    return *this;
  }

  operator T() const { return read(); }

 private:
  [[nodiscard]] T read() const {
    if (detail::modeled()) detail::plain_read(this);
    return value_;
  }

  T value_{};
};

// --------------------------------------------------------------------------
// Mutex: a model-aware lock for drivers that mirror the repo's mutex-backed
// protocols (subscribe-during-rotate).  Blocking deschedules the thread;
// lock/unlock carry the usual acquire/release clock edges; an all-blocked
// state is reported as a deadlock with a trace.  Outside an exploration it
// degrades to a trivial spin on an atomic flag (drivers are the only
// intended users).
// --------------------------------------------------------------------------

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (detail::modeled()) {
      detail::mutex_lock(this);
      return;
    }
    while (plain_locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() {
    if (detail::modeled()) {
      detail::mutex_unlock(this);
      return;
    }
    plain_locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> plain_locked_{false};
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Modeled equivalent of std::atomic_thread_fence -- the implementation
/// behind disco::util::atomic_fence in DISCO_MODELCHECK builds.
inline void model_fence(std::memory_order order) noexcept {
  if (detail::modeled()) {
    detail::fence(order);
    return;
  }
  std::atomic_thread_fence(order);
}

}  // namespace disco::verify
