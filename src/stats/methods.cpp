#include "stats/methods.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace disco::stats {

// --- DiscoMethod -----------------------------------------------------------

void DiscoMethod::prepare(std::size_t flows, int bits, std::uint64_t max_flow) {
  array_.emplace(flows, bits, max_flow);
}

void DiscoMethod::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  array_->add(i, l, rng);
}

double DiscoMethod::estimate(std::size_t i) const { return array_->estimate(i); }

std::uint64_t DiscoMethod::counter_value(std::size_t i) const {
  return array_->value(i);
}

std::size_t DiscoMethod::storage_bits() const { return array_->storage_bits(); }

// --- DiscoFixedMethod ------------------------------------------------------

void DiscoFixedMethod::prepare(std::size_t flows, int bits, std::uint64_t max_flow) {
  auto config = table_config_;
  config.b = util::choose_b(max_flow, bits);
  table_ = std::make_unique<util::LogExpTable>(config);
  array_.emplace(flows, bits, *table_);
}

void DiscoFixedMethod::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  array_->add(i, l, rng);
}

double DiscoFixedMethod::estimate(std::size_t i) const { return array_->estimate(i); }

std::uint64_t DiscoFixedMethod::counter_value(std::size_t i) const {
  return array_->value(i);
}

std::size_t DiscoFixedMethod::storage_bits() const {
  // Counters plus the shared on-chip table.
  return array_->storage_bits() + table_->storage_bits();
}

// --- SacMethod --------------------------------------------------------------

void SacMethod::prepare(std::size_t flows, int bits, std::uint64_t /*max_flow*/) {
  // The paper sets "k = 3" in the original SAC notation, where k is the
  // *exponent* (mode) field; the estimation part gets the remaining
  // bits - 3.  That is what makes SAC's accuracy improve with counter size
  // in Figs. 5-7 (its mantissa grows) while DISCO improves via a smaller b.
  if (bits < exponent_bits_ + 2) {
    throw std::invalid_argument("SacMethod: bits too small for k=3 split");
  }
  array_.emplace(flows, bits, /*estimation_bits=*/bits - exponent_bits_);
}

void SacMethod::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  array_->add(i, l, rng);
}

double SacMethod::estimate(std::size_t i) const { return array_->estimate(i); }

std::uint64_t SacMethod::counter_value(std::size_t i) const {
  // Concatenated (mode, A) fields -- the raw stored bits.
  return (array_->mode_part(i) << array_->estimation_bits()) |
         array_->estimation_part(i);
}

std::size_t SacMethod::storage_bits() const { return array_->storage_bits(); }

// --- AnlsIMethod -------------------------------------------------------------

void AnlsIMethod::prepare(std::size_t flows, int bits, std::uint64_t max_flow) {
  bits_ = bits;
  const double p = counters::AnlsICounter::rate_for_budget(max_flow, bits);
  counters_.assign(flows, counters::AnlsICounter(p));
}

void AnlsIMethod::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  counters_[i].add(l, rng);
}

double AnlsIMethod::estimate(std::size_t i) const { return counters_[i].estimate(); }

std::uint64_t AnlsIMethod::counter_value(std::size_t i) const {
  return counters_[i].value();
}

std::size_t AnlsIMethod::storage_bits() const {
  return counters_.size() * static_cast<std::size_t>(bits_);
}

// --- AnlsIIMethod ------------------------------------------------------------

void AnlsIIMethod::prepare(std::size_t flows, int bits, std::uint64_t max_flow) {
  bits_ = bits;
  const double b = util::choose_b(max_flow, bits);
  counters_.assign(flows, counters::AnlsIICounter(b));
}

void AnlsIIMethod::add(std::size_t i, std::uint64_t l, util::Rng& rng) {
  counters_[i].add(l, rng);
}

double AnlsIIMethod::estimate(std::size_t i) const { return counters_[i].estimate(); }

std::uint64_t AnlsIIMethod::counter_value(std::size_t i) const {
  return counters_[i].value();
}

std::size_t AnlsIIMethod::storage_bits() const {
  return counters_.size() * static_cast<std::size_t>(bits_);
}

// --- ExactMethod --------------------------------------------------------------

void ExactMethod::prepare(std::size_t flows, int bits, std::uint64_t /*max_flow*/) {
  bits_ = bits;
  array_.emplace(flows);
}

void ExactMethod::add(std::size_t i, std::uint64_t l, util::Rng& /*rng*/) {
  array_->add(i, l);
}

double ExactMethod::estimate(std::size_t i) const {
  return static_cast<double>(array_->value(i));
}

std::uint64_t ExactMethod::counter_value(std::size_t i) const {
  return array_->value(i);
}

std::size_t ExactMethod::storage_bits() const {
  return array_->size() * static_cast<std::size_t>(bits_);
}

// --- SdMethod -------------------------------------------------------------------

void SdMethod::prepare(std::size_t flows, int bits, std::uint64_t /*max_flow*/) {
  counters::SdArray::Config config;
  config.size = flows;
  config.sram_bits = bits;
  array_.emplace(config);
}

void SdMethod::add(std::size_t i, std::uint64_t l, util::Rng& /*rng*/) {
  array_->add(i, l);
}

double SdMethod::estimate(std::size_t i) const { return array_->estimate(i); }

std::uint64_t SdMethod::counter_value(std::size_t i) const {
  return array_->value(i);
}

std::size_t SdMethod::storage_bits() const { return array_->sram_storage_bits(); }

// --- factory ----------------------------------------------------------------------

MethodPtr make_method(const std::string& name) {
  if (name == "DISCO") return std::make_unique<DiscoMethod>();
  if (name == "DISCO-fixed") return std::make_unique<DiscoFixedMethod>();
  if (name == "SAC") return std::make_unique<SacMethod>();
  if (name == "ANLS-I") return std::make_unique<AnlsIMethod>();
  if (name == "ANLS-II") return std::make_unique<AnlsIIMethod>();
  if (name == "exact") return std::make_unique<ExactMethod>();
  if (name == "SD") return std::make_unique<SdMethod>();
  throw std::invalid_argument("make_method: unknown method '" + name + "'");
}

}  // namespace disco::stats
