// Plain-text table rendering for bench output -- the benches print the same
// rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace disco::stats {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  /// CSV form of the same data (for plotting).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.0316").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Scientific-ish compact formatting for wide-range values ("4.1e+07").
[[nodiscard]] std::string fmt_sci(double value, int precision = 2);

}  // namespace disco::stats
