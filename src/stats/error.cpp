#include "stats/error.hpp"

#include <cmath>
#include <stdexcept>

namespace disco::stats {

ErrorReport relative_error_report(const std::vector<double>& estimates,
                                  const std::vector<std::uint64_t>& truths) {
  if (estimates.size() != truths.size()) {
    throw std::invalid_argument("relative_error_report: size mismatch");
  }
  ErrorReport report;
  report.samples.reserve(estimates.size());
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    if (truths[i] == 0) continue;
    const double n = static_cast<double>(truths[i]);
    const double r = std::fabs(estimates[i] - n) / n;
    report.samples.add(r);
    sum += r;
    ++counted;
    if (r > report.maximum) report.maximum = r;
  }
  if (counted > 0) {
    report.average = sum / static_cast<double>(counted);
    report.optimistic95 = report.samples.quantile(0.95);
  }
  return report;
}

}  // namespace disco::stats
