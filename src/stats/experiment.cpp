#include "stats/experiment.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace disco::stats {

const char* to_string(CountingMode mode) noexcept {
  return mode == CountingMode::kVolume ? "volume" : "size";
}

std::uint64_t max_flow_length(const std::vector<trace::FlowRecord>& flows,
                              CountingMode mode) noexcept {
  std::uint64_t max_len = 0;
  for (const auto& f : flows) {
    const std::uint64_t len =
        mode == CountingMode::kVolume ? f.bytes() : f.packets();
    max_len = std::max(max_len, len);
  }
  return max_len;
}

AccuracyResult run_accuracy(CounterMethod& method,
                            const std::vector<trace::FlowRecord>& flows,
                            CountingMode mode, int bits, std::uint64_t seed) {
  AccuracyResult result;
  result.method = method.name();
  result.mode = mode;
  result.bits = bits;

  const std::uint64_t max_flow = std::max<std::uint64_t>(1, max_flow_length(flows, mode));
  method.prepare(flows.size(), bits, max_flow);

  util::Rng rng(seed);
  result.truths.resize(flows.size());
  result.estimates.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const trace::FlowRecord& flow = flows[i];
    if (mode == CountingMode::kVolume) {
      for (std::uint32_t l : flow.lengths) method.add(i, l, rng);
      result.truths[i] = flow.bytes();
    } else {
      for (std::size_t p = 0; p < flow.packets(); ++p) method.add(i, 1, rng);
      result.truths[i] = flow.packets();
    }
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    result.estimates[i] = method.estimate(i);
    result.max_counter_value =
        std::max(result.max_counter_value, method.counter_value(i));
  }
  result.max_counter_bits = util::bit_width_u64(result.max_counter_value);
  result.storage_bits = method.storage_bits();
  result.errors = relative_error_report(result.estimates, result.truths);
  return result;
}

}  // namespace disco::stats
