// Relative-error metrics exactly as defined in the paper's Section V-A.
//
//   R        = |n_hat - n| / n                      (per-flow relative error)
//   R_bar    = mean of R over all counters          (average relative error)
//   R_max    = max of R over all counters           (worst case)
//   R_o(a)   = sup { r : Pr(R <= r) >= a }          (a-optimistic error)
#pragma once

#include <cstdint>
#include <vector>

#include "util/histogram.hpp"

namespace disco::stats {

/// Full relative-error profile of one (method, workload, configuration) run.
struct ErrorReport {
  double average = 0.0;
  double maximum = 0.0;
  double optimistic95 = 0.0;  ///< R_o(0.95)
  util::SampleSet samples;    ///< per-flow R values, for CDFs and quantiles

  [[nodiscard]] double optimistic(double alpha) const {
    return samples.quantile(alpha);
  }
};

/// Builds an ErrorReport from paired estimates and ground-truth values.
/// Flows with zero truth are skipped (no packets arrived; R is undefined).
[[nodiscard]] ErrorReport relative_error_report(const std::vector<double>& estimates,
                                                const std::vector<std::uint64_t>& truths);

}  // namespace disco::stats
