// The accuracy-experiment harness behind Figs. 5-10 and Tables II-III.
//
// An experiment is: a flow population (trace substrate), a counting mode
// (flow volume = bytes, flow size = packets), a per-counter bit budget, and a
// counting method.  The harness feeds every packet of every flow to the
// method and compares the final estimates with exact truth.
//
// Counter updates of distinct flows never interact (SAC's global
// renormalisation is the one exception, and it is array-wide state handled
// inside the method), so packets are replayed flow-by-flow; interleaving
// would change nothing about accuracy and only cost memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/error.hpp"
#include "stats/methods.hpp"
#include "trace/packet.hpp"

namespace disco::stats {

enum class CountingMode {
  kVolume,  ///< count bytes: update increment is the packet length
  kSize,    ///< count packets: update increment is 1
};

[[nodiscard]] const char* to_string(CountingMode mode) noexcept;

struct AccuracyResult {
  std::string method;
  CountingMode mode = CountingMode::kVolume;
  int bits = 0;
  ErrorReport errors;
  /// Per-flow parallel arrays (flows with zero truth included here, skipped
  /// in `errors`): truth, estimate.  Feed Fig. 10-style scatters.
  std::vector<std::uint64_t> truths;
  std::vector<double> estimates;
  std::uint64_t max_counter_value = 0;
  int max_counter_bits = 0;       ///< "largest counter bits" (paper's metric)
  std::size_t storage_bits = 0;   ///< allocated SRAM
};

/// Runs one (method, trace, mode, bits) accuracy experiment.  `seed` drives
/// every probabilistic update; identical seeds give identical results.
[[nodiscard]] AccuracyResult run_accuracy(CounterMethod& method,
                                          const std::vector<trace::FlowRecord>& flows,
                                          CountingMode mode, int bits,
                                          std::uint64_t seed);

/// Largest per-flow truth under `mode` -- the provisioning input.
[[nodiscard]] std::uint64_t max_flow_length(const std::vector<trace::FlowRecord>& flows,
                                            CountingMode mode) noexcept;

}  // namespace disco::stats
