#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace disco::stats {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace disco::stats
