// Uniform adapter layer over every counting method in the repository.
//
// The evaluation harness (experiment.hpp) drives all methods through this
// interface: allocate counters for a flow population under a per-counter bit
// budget, feed packets, read estimates.  Each adapter owns the provisioning
// logic the paper implies for its method (e.g. DISCO derives b from the bit
// budget and the largest expected flow; ANLS-I derives its sampling rate the
// same way; SAC splits its budget into k estimation + s exponent bits).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/disco.hpp"
#include "core/disco_fixed.hpp"
#include "counters/anls.hpp"
#include "counters/exact.hpp"
#include "counters/sac.hpp"
#include "counters/sd.hpp"
#include "util/log_table.hpp"
#include "util/rng.hpp"

namespace disco::stats {

/// One counting method, array form.
class CounterMethod {
 public:
  virtual ~CounterMethod() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocates `flows` counters of `bits` bits each, provisioned so flows up
  /// to `max_flow` (bytes or packets, per the experiment) are representable.
  virtual void prepare(std::size_t flows, int bits, std::uint64_t max_flow) = 0;

  /// Feeds an update of l (bytes; 1 for flow size counting) to counter i.
  virtual void add(std::size_t i, std::uint64_t l, util::Rng& rng) = 0;

  [[nodiscard]] virtual double estimate(std::size_t i) const = 0;

  /// The raw stored counter value (for "largest counter bits" accounting).
  [[nodiscard]] virtual std::uint64_t counter_value(std::size_t i) const = 0;

  /// Counter SRAM actually allocated, in bits.
  [[nodiscard]] virtual std::size_t storage_bits() const = 0;
};

using MethodPtr = std::unique_ptr<CounterMethod>;

/// DISCO, double-precision math path (the reference implementation).
class DiscoMethod final : public CounterMethod {
 public:
  [[nodiscard]] std::string name() const override { return "DISCO"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  std::optional<core::DiscoArray> array_;
};

/// DISCO on the fixed-point Log&Exp table (the NP implementation path).
class DiscoFixedMethod final : public CounterMethod {
 public:
  explicit DiscoFixedMethod(util::LogExpTable::Config table_config = {})
      : table_config_(table_config) {}

  [[nodiscard]] std::string name() const override { return "DISCO-fixed"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  util::LogExpTable::Config table_config_;
  std::unique_ptr<util::LogExpTable> table_;
  std::optional<core::FixedPointDiscoArray> array_;
};

/// SAC with the paper's k = 3 exponent (mode) bits; the estimation part gets
/// the remaining budget (original SAC notation: q = l + k with k the mode).
class SacMethod final : public CounterMethod {
 public:
  explicit SacMethod(int exponent_bits = 3) : exponent_bits_(exponent_bits) {}

  [[nodiscard]] std::string name() const override { return "SAC"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  int exponent_bits_;
  std::optional<counters::SacArray> array_;
};

/// ANLS-I (E1): byte-accumulating fixed-rate sampling.
class AnlsIMethod final : public CounterMethod {
 public:
  [[nodiscard]] std::string name() const override { return "ANLS-I"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  std::vector<counters::AnlsICounter> counters_;
  int bits_ = 0;
};

/// ANLS-II (E2): per-byte ANLS trials; accuracy like DISCO, O(l) updates.
class AnlsIIMethod final : public CounterMethod {
 public:
  [[nodiscard]] std::string name() const override { return "ANLS-II"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  std::vector<counters::AnlsIICounter> counters_;
  int bits_ = 0;
};

/// Exact 64-bit counters (ground truth; also the SD/full-size ideal).
class ExactMethod final : public CounterMethod {
 public:
  [[nodiscard]] std::string name() const override { return "exact"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  std::optional<counters::ExactArray> array_;
  int bits_ = 64;
};

/// SD hybrid architecture: exact values, SRAM bits = budget, DRAM behind.
class SdMethod final : public CounterMethod {
 public:
  [[nodiscard]] std::string name() const override { return "SD"; }
  void prepare(std::size_t flows, int bits, std::uint64_t max_flow) override;
  void add(std::size_t i, std::uint64_t l, util::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t i) const override;
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const override;
  [[nodiscard]] std::size_t storage_bits() const override;

 private:
  std::optional<counters::SdArray> array_;
};

/// Factory for the standard method lineup by name ("DISCO", "DISCO-fixed",
/// "SAC", "ANLS-I", "ANLS-II", "exact", "SD"); throws on unknown names.
[[nodiscard]] MethodPtr make_method(const std::string& name);

}  // namespace disco::stats
