#include "telemetry/export.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace disco::telemetry {
namespace {

// Doubles print with enough digits to round-trip exactly (%.17g collapses to
// short forms for the common integral quantiles).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// --- minimal JSON reader -----------------------------------------------------
// Just enough JSON to invert to_json: objects, arrays, strings, numbers.
// Kept private to this translation unit; the public surface is
// snapshot_from_json only.

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("snapshot_from_json: " + std::string(what) +
                             " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            code = code * 16;
            const char h = text_[pos_++];
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Metric names are ASCII; only the control-character escapes that
          // append_json_string can emit need decoding.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("malformed number");
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& parent, const std::string& key) {
  const JsonValue* v = parent.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error("snapshot_from_json: missing numeric field '" + key + "'");
  }
  return v->number;
}

std::uint64_t require_u64(const JsonValue& parent, const std::string& key) {
  return static_cast<std::uint64_t>(require_number(parent, key));
}

}  // namespace

const char* to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out << to_string(m.type) << ' ' << m.name << ' ';
    if (m.type == MetricType::kHistogram) {
      out << "count=" << m.histogram.count << " sum=" << m.histogram.sum
          << " p50=" << fmt_double(m.histogram.p50)
          << " p95=" << fmt_double(m.histogram.p95)
          << " p99=" << fmt_double(m.histogram.p99);
    } else {
      out << m.value;
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first_metric = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out += first_metric ? "\n" : ",\n";
    first_metric = false;
    out += "    {\"name\": ";
    append_json_string(out, m.name);
    out += ", \"type\": \"";
    out += to_string(m.type);
    out += '"';
    if (m.type == MetricType::kHistogram) {
      out += ", \"count\": " + std::to_string(m.histogram.count);
      out += ", \"sum\": " + std::to_string(m.histogram.sum);
      out += ", \"p50\": " + fmt_double(m.histogram.p50);
      out += ", \"p95\": " + fmt_double(m.histogram.p95);
      out += ", \"p99\": " + fmt_double(m.histogram.p99);
      out += ", \"buckets\": [";
      bool first_bucket = true;
      for (const auto& b : m.histogram.buckets) {
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += "{\"le\": " + std::to_string(b.upper) +
               ", \"count\": " + std::to_string(b.count) + '}';
      }
      out += ']';
    } else {
      out += ", \"value\": " + std::to_string(m.value);
    }
    out += '}';
  }
  out += "\n  ]\n}";
  return out;
}

Snapshot snapshot_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("snapshot_from_json: root is not an object");
  }
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("snapshot_from_json: missing 'metrics' array");
  }
  Snapshot snapshot;
  for (const JsonValue& entry : metrics->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("snapshot_from_json: metric entry is not an object");
    }
    MetricSnapshot m;
    const JsonValue* name = entry.find("name");
    const JsonValue* type = entry.find("type");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        type == nullptr || type->kind != JsonValue::Kind::kString) {
      throw std::runtime_error("snapshot_from_json: metric missing name/type");
    }
    m.name = name->string;
    if (type->string == "counter") {
      m.type = MetricType::kCounter;
    } else if (type->string == "gauge") {
      m.type = MetricType::kGauge;
    } else if (type->string == "histogram") {
      m.type = MetricType::kHistogram;
    } else {
      throw std::runtime_error("snapshot_from_json: unknown metric type '" +
                               type->string + "'");
    }
    if (m.type == MetricType::kHistogram) {
      m.histogram.count = require_u64(entry, "count");
      m.histogram.sum = require_u64(entry, "sum");
      m.histogram.p50 = require_number(entry, "p50");
      m.histogram.p95 = require_number(entry, "p95");
      m.histogram.p99 = require_number(entry, "p99");
      const JsonValue* buckets = entry.find("buckets");
      if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
        throw std::runtime_error("snapshot_from_json: histogram missing buckets");
      }
      for (const JsonValue& b : buckets->array) {
        m.histogram.buckets.push_back(
            {require_u64(b, "le"), require_u64(b, "count")});
      }
    } else {
      m.value = static_cast<std::int64_t>(require_number(entry, "value"));
    }
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

}  // namespace disco::telemetry
