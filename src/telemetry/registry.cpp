#include "telemetry/registry.hpp"

#if DISCO_TELEMETRY

#include <algorithm>

namespace disco::telemetry {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(gauges_, name);
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(histograms_, name);
}

Snapshot Registry::snapshot() const {
  const util::MutexLock lock(mutex_);
  Snapshot snapshot;
  snapshot.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot m;
    m.name = name;
    m.type = MetricType::kCounter;
    m.value = static_cast<std::int64_t>(counter->value());
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot m;
    m.name = name;
    m.type = MetricType::kGauge;
    m.value = gauge->value();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot m;
    m.name = name;
    m.type = MetricType::kHistogram;
    m.histogram.count = hist->count();
    m.histogram.sum = hist->sum();
    m.histogram.p50 = hist->quantile(0.50);
    m.histogram.p95 = hist->quantile(0.95);
    m.histogram.p99 = hist->quantile(0.99);
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      const std::uint64_t n = hist->bucket_count(i);
      if (n != 0) {
        m.histogram.buckets.push_back({LatencyHistogram::bucket_upper(i), n});
      }
    }
    snapshot.metrics.push_back(std::move(m));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void Registry::reset_values() {
  const util::MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace disco::telemetry

#endif  // DISCO_TELEMETRY
