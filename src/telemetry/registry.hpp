// Process-wide metric registry.
//
// Components ask the registry for named metrics once (at construction) and
// keep the returned reference for the hot path; the registry owns every
// metric, so addresses are stable for the life of the process and two
// components asking for the same name share one metric (a family aggregated
// across instances -- the Prometheus default-registry model).  Lookup takes
// a mutex; it is a setup-time operation, never per-packet.
//
// Naming convention: dotted paths, `<subsystem>.<metric>[_total]`, e.g.
//   flow_monitor.ingest_total            (Counter)
//   sharded_monitor.shard_3.ingest_total (Counter, per-shard family member)
//   flow_table.probe_length              (LatencyHistogram)
// The catalogue of metrics emitted by this repo lives in docs/telemetry.md.
//
// With DISCO_TELEMETRY=0 the registry degenerates to a stub handing out
// shared no-op metrics and empty snapshots; call sites compile unchanged.
#pragma once

#include <string_view>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

#if DISCO_TELEMETRY
#include <map>
#include <memory>
#include <string>

#include "util/thread_annotations.hpp"
#endif

namespace disco::telemetry {

#if DISCO_TELEMETRY

class Registry {
 public:
  /// The process-wide registry every built-in instrumentation point uses.
  [[nodiscard]] static Registry& global();

  /// Finds or creates the named metric.  References stay valid for the
  /// registry's lifetime.  One name should keep one type; if it is reused
  /// with a different type, each type's metric exists independently (the
  /// snapshot will contain both entries).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  /// Copies every metric's current value, sorted by name.  Histogram entries
  /// carry p50/p95/p99 and their non-empty buckets.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered).  For test
  /// isolation and epoch-style resets; not thread-safe against concurrent
  /// updates in the sense that in-flight increments may survive.
  void reset_values();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  /// Finds or creates a metric in one of the maps below.  The maps own the
  /// metrics through unique_ptr, so the returned reference survives later
  /// rebalancing of the map itself.
  template <typename Map>
  [[nodiscard]] auto& find_or_create(Map& map, std::string_view name)
      DISCO_REQUIRES(mutex_) {
    auto it = map.find(name);
    if (it == map.end()) {
      it = map.emplace(std::string(name),
                       std::make_unique<typename Map::mapped_type::element_type>())
               .first;
    }
    return *it->second;
  }

  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DISCO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DISCO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_
      DISCO_GUARDED_BY(mutex_);
};

#else  // DISCO_TELEMETRY == 0

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry registry;
    return registry;
  }
  [[nodiscard]] Counter& counter(std::string_view) {
    static Counter stub;
    return stub;
  }
  [[nodiscard]] Gauge& gauge(std::string_view) {
    static Gauge stub;
    return stub;
  }
  [[nodiscard]] LatencyHistogram& histogram(std::string_view) {
    static LatencyHistogram stub;
    return stub;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  void reset_values() {}

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
};

#endif  // DISCO_TELEMETRY

}  // namespace disco::telemetry
